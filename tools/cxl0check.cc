/**
 * @file
 * cxl0check — the scenario batch runner.
 *
 * Loads one or more .cxl0 scenario files (or a whole corpus
 * directory), routes each through one of the four checkers via the
 * unified CheckRequest API, checks the declared outcome anchors, and
 * reports per-case and aggregate results — optionally as JSON in the
 * same shape as the tracked BENCH_*.json artifacts.
 *
 *   cxl0check corpus/litmus/litmus04.cxl0
 *   cxl0check --corpus corpus/litmus --threads 2 --out BENCH_corpus.json
 *   cxl0check --checker refinement --spec base --impl lwb file.cxl0
 *   cxl0check --export corpus/litmus      # re-export the built-ins
 *   cxl0check --dump file.cxl0            # print the canonical form
 *
 * Exit status: 0 when every case passes its anchors, 1 when any case
 * fails (or a file fails to parse), 2 on usage or I/O errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lang/run.hh"
#include "lang/scenario.hh"

using namespace cxl0;
namespace fs = std::filesystem;

namespace
{

struct CaseResult
{
    std::string name; //!< file stem, suffixed #N when stems repeat
    std::string file;
    lang::RunResult run;
    bool parsed = true;
    std::string parseError;

    bool pass() const { return parsed && run.pass; }
};

bool
readFile(const std::string &path, std::string &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Whole-string numeric flag value; false on garbage or overflow. */
bool
parseCount(const char *s, long long &out)
{
    errno = 0;
    char *end = nullptr;
    out = std::strtoll(s, &end, 10);
    return end != s && *end == '\0' && errno == 0;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] [scenario.cxl0 ...]\n"
        "  --corpus DIR      run every *.cxl0 under DIR (sorted)\n"
        "  --checker KIND    explore|feasible|refinement|inclusion\n"
        "                    (default: explore when the file has a\n"
        "                    program, feasibility when trace-only)\n"
        "  --threads N       worker threads (CheckRequest::numThreads)\n"
        "  --max-configs N   override the configuration budget\n"
        "  --max-depth N     override the depth bound\n"
        "  --crash N         override max crashes per machine\n"
        "  --policy P        dfs|bfs frontier ordering\n"
        "  --reduction R     none|tau|ample partial-order reduction\n"
        "                    (explorer; default ample)\n"
        "  --spec V          refinement spec variant (base|lwb|psn)\n"
        "  --impl V          refinement impl variant (base|lwb|psn)\n"
        "  --out FILE        write the aggregate JSON report\n"
        "  --export DIR      write the built-in litmus corpus to DIR\n"
        "  --dump FILE       print FILE's canonical form and exit\n"
        "  --quiet           only print failures and the summary\n",
        argv0);
    return 2;
}

void
jsonEscape(std::string &out, const std::string &s)
{
    char buf[8];
    for (char c : s) {
        unsigned char u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (u < 0x20) {
            std::snprintf(buf, sizeof buf, "\\u%04x", u);
            out += buf;
        } else {
            out += c;
        }
    }
}

std::string
jsonReport(const std::vector<CaseResult> &cases)
{
    std::string out = "{\n  \"bench\": \"corpus\",\n";
    char buf[512];
    std::snprintf(buf, sizeof buf, "  \"corpus_size\": %zu,\n",
                  cases.size());
    out += buf;
    out += "  \"cases\": {\n";
    for (size_t i = 0; i < cases.size(); ++i) {
        const CaseResult &c = cases[i];
        out += "    \"";
        jsonEscape(out, c.name);
        out += "\": ";
        if (!c.parsed) {
            out += "{\"parse_error\": \"";
            jsonEscape(out, c.parseError);
            out += "\", \"anchors_pass\": false}";
        } else {
            const check::CheckReport &r = c.run.report;
            double sec =
                r.stats.seconds > 0 ? r.stats.seconds : 1e-9;
            std::snprintf(
                buf, sizeof buf,
                "{\"checker\": \"%s\", \"verdict\": \"%s\", "
                "\"configs\": %zu, \"seconds\": %.6f, "
                "\"configs_per_sec\": %.0f, \"outcomes\": %zu, "
                "\"tau_skipped\": %zu, \"ample_skipped\": %zu, "
                "\"steals_attempted\": %zu, "
                "\"steals_succeeded\": %zu, "
                "\"truncated\": %s, \"anchors_pass\": %s}",
                lang::checkerKindName(c.run.checker),
                check::checkVerdictName(r.verdict),
                r.stats.configsVisited, r.stats.seconds,
                static_cast<double>(r.stats.configsVisited) / sec,
                r.outcomes.size(), r.stats.tauMovesSkipped,
                r.stats.ampleSkipped, r.stats.stealsAttempted,
                r.stats.stealsSucceeded,
                r.truncated ? "true" : "false",
                c.pass() ? "true" : "false");
            out += buf;
        }
        out += i + 1 < cases.size() ? ",\n" : "\n";
    }
    out += "  },\n";
    size_t passed = 0;
    for (const CaseResult &c : cases)
        passed += c.pass();
    std::snprintf(buf, sizeof buf,
                  "  \"cases_passed\": %zu,\n"
                  "  \"all_anchors_pass\": %s\n}\n",
                  passed,
                  passed == cases.size() ? "true" : "false");
    out += buf;
    return out;
}

int
exportCorpus(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "error: cannot create %s: %s\n",
                     dir.c_str(), ec.message().c_str());
        return 2;
    }
    for (const lang::CorpusFile &f : lang::exportBuiltinCorpus()) {
        std::string path = dir + "/" + f.filename;
        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            return 2;
        }
        out << f.text;
        std::printf("exported %s\n", path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    lang::RunOptions opts;
    const char *out_path = nullptr;
    bool quiet = false;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--corpus") == 0) {
            std::string dir = value(i);
            std::error_code ec;
            std::vector<std::string> found;
            try {
                for (const auto &e :
                     fs::directory_iterator(dir, ec))
                    if (e.path().extension() == ".cxl0")
                        found.push_back(e.path().string());
            } catch (const fs::filesystem_error &e) {
                // The iterator's increment throws on I/O errors.
                std::fprintf(stderr, "error: cannot read %s: %s\n",
                             dir.c_str(), e.what());
                return 2;
            }
            if (ec) {
                std::fprintf(stderr, "error: cannot read %s: %s\n",
                             dir.c_str(), ec.message().c_str());
                return 2;
            }
            std::sort(found.begin(), found.end());
            files.insert(files.end(), found.begin(), found.end());
        } else if (std::strcmp(a, "--checker") == 0) {
            const char *k = value(i);
            if (std::strcmp(k, "explore") == 0)
                opts.checker = lang::CheckerKind::Explore;
            else if (std::strcmp(k, "feasible") == 0)
                opts.checker = lang::CheckerKind::Feasible;
            else if (std::strcmp(k, "refinement") == 0)
                opts.checker = lang::CheckerKind::Refinement;
            else if (std::strcmp(k, "inclusion") == 0)
                opts.checker = lang::CheckerKind::Inclusion;
            else
                return usage(argv[0]);
        } else if (std::strcmp(a, "--threads") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1 || n > 1024) {
                std::fprintf(stderr,
                             "error: --threads wants 1..1024\n");
                return 2;
            }
            opts.numThreads = static_cast<size_t>(n);
        } else if (std::strcmp(a, "--max-configs") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1) {
                std::fprintf(stderr,
                             "error: --max-configs wants >= 1\n");
                return 2;
            }
            opts.maxConfigs = static_cast<size_t>(n);
        } else if (std::strcmp(a, "--max-depth") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 0) {
                std::fprintf(stderr,
                             "error: --max-depth wants >= 0\n");
                return 2;
            }
            opts.maxDepth = static_cast<size_t>(n);
        } else if (std::strcmp(a, "--crash") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 0 || n > 1000) {
                std::fprintf(stderr,
                             "error: --crash wants 0..1000\n");
                return 2;
            }
            opts.maxCrashesPerNode = static_cast<int>(n);
        } else if (std::strcmp(a, "--policy") == 0) {
            const char *p = value(i);
            if (std::strcmp(p, "dfs") == 0)
                opts.policy = check::FrontierPolicy::DepthFirst;
            else if (std::strcmp(p, "bfs") == 0)
                opts.policy = check::FrontierPolicy::BreadthFirst;
            else
                return usage(argv[0]);
        } else if (std::strcmp(a, "--reduction") == 0) {
            const char *r = value(i);
            if (std::strcmp(r, "none") == 0)
                opts.reduction = check::Reduction::None;
            else if (std::strcmp(r, "tau") == 0)
                opts.reduction = check::Reduction::Tau;
            else if (std::strcmp(r, "ample") == 0)
                opts.reduction = check::Reduction::Ample;
            else
                return usage(argv[0]);
        } else if (std::strcmp(a, "--spec") == 0) {
            if (!lang::variantFromWord(value(i), opts.refineSpec))
                return usage(argv[0]);
        } else if (std::strcmp(a, "--impl") == 0) {
            if (!lang::variantFromWord(value(i), opts.refineImpl))
                return usage(argv[0]);
        } else if (std::strcmp(a, "--out") == 0) {
            out_path = value(i);
        } else if (std::strcmp(a, "--export") == 0) {
            return exportCorpus(value(i));
        } else if (std::strcmp(a, "--dump") == 0) {
            std::string text, err;
            if (!readFile(value(i), text, err)) {
                std::fprintf(stderr, "error: %s\n", err.c_str());
                return 2;
            }
            lang::ParseResult pr = lang::parseScenario(text);
            if (!pr.ok()) {
                std::fprintf(stderr, "%s\n",
                             pr.error->render(argv[i]).c_str());
                return 1;
            }
            std::fputs(lang::dumpScenario(pr.scenario).c_str(),
                       stdout);
            return 0;
        } else if (std::strcmp(a, "--quiet") == 0 ||
                   std::strcmp(a, "-q") == 0) {
            quiet = true;
        } else if (a[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(a);
        }
    }

    if (files.empty())
        return usage(argv[0]);

    std::vector<CaseResult> cases;
    std::map<std::string, int> stems;
    for (const std::string &path : files) {
        CaseResult c;
        c.file = path;
        c.name = fs::path(path).stem().string();
        // Stems repeat across directories; keep JSON keys unique.
        int n = ++stems[c.name];
        if (n > 1) {
            c.name.push_back('#');
            c.name += std::to_string(n);
        }
        std::string text, err;
        if (!readFile(path, text, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 2;
        }
        lang::ParseResult pr = lang::parseScenario(text);
        if (!pr.ok()) {
            c.parsed = false;
            c.parseError = pr.error->render(path);
            std::fprintf(stderr, "%s\n", c.parseError.c_str());
        } else {
            c.run = lang::runScenario(pr.scenario, opts);
            if (!c.run.error.empty())
                std::fprintf(stderr, "%s: %s\n", path.c_str(),
                             c.run.error.c_str());
        }
        if (!quiet || !c.pass())
            std::printf("case %-24s %s\n", c.name.c_str(),
                        c.parsed ? c.run.describe().c_str()
                                 : "parse error");
        cases.push_back(std::move(c));
    }

    size_t passed = 0;
    for (const CaseResult &c : cases)
        passed += c.pass();
    std::printf("corpus: %zu/%zu case(s) pass\n", passed,
                cases.size());

    if (out_path) {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         out_path);
            return 2;
        }
        out << jsonReport(cases);
        std::printf("wrote %s\n", out_path);
    }
    return passed == cases.size() ? 0 : 1;
}
