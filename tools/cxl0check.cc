/**
 * @file
 * cxl0check — the scenario batch runner and campaign driver.
 *
 * Scenario mode loads one or more .cxl0 files (or a whole corpus
 * directory), routes each through one of the four checkers via the
 * unified CheckRequest API, checks the declared outcome anchors, and
 * reports per-case and aggregate results — optionally as JSON in the
 * same shape as the tracked BENCH_*.json artifacts.
 *
 *   cxl0check corpus/litmus/litmus04.cxl0
 *   cxl0check --corpus corpus/litmus --threads 2 --out BENCH_corpus.json
 *   cxl0check --checker refinement --spec base --impl lwb file.cxl0
 *   cxl0check --export corpus/litmus      # re-export the built-ins
 *   cxl0check --dump file.cxl0            # print the canonical form
 *
 * The `campaign` subcommand runs the crash-injection campaign from
 * src/inject over the durable data structures, and `replay` re-runs
 * a shrunk corpus artifact:
 *
 *   cxl0check campaign --out BENCH_campaign.json
 *   cxl0check campaign --modes flit-original --expect-violations \
 *       --corpus-dir corpus/campaign
 *   cxl0check replay corpus/campaign/register-flit-original-*.txt
 *
 * The `fuzz` subcommand runs the differential fuzzing farm from
 * src/fuzz (seeded scenario generation, cross-checker agreement
 * gates, shrinking, and the result-cache byte-identity trial), and
 * `serve` multiplexes a batch of scenario requests through one
 * ScenarioService (persistent interning contexts + content-addressed
 * result cache). `hash` prints a scenario's content address.
 *
 *   cxl0check fuzz --seed 1 --count 500 --out BENCH_fuzz.json
 *   cxl0check fuzz --replay corpus/fuzz
 *   cxl0check serve --corpus corpus/litmus --repeat 2 --verify-hits
 *   cxl0check hash corpus/litmus/litmus04.cxl0
 *
 * Exit status: 0 when every case passes (campaign: no durable-mode
 * violation and --expect-violations, if given, is met; fuzz: no
 * divergences, no crashes, cache hits byte-identical), 1 when any
 * case fails or a file fails to parse, 2 on usage errors.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/spill.hh"
#include "fuzz/farm.hh"
#include "inject/campaign.hh"
#include "lang/run.hh"
#include "lang/scenario.hh"
#include "lang/service.hh"
#include "obs/progress.hh"
#include "obs/telemetry.hh"

using namespace cxl0;
namespace fs = std::filesystem;

namespace
{

/**
 * Shared telemetry wiring for every subcommand:
 *
 *   --trace-out FILE   span trace as Chrome trace-event JSON
 *   --progress         live progress line on stderr
 *   --heartbeat FILE   append progress snapshots as JSONL
 *
 * Flags are recognized by tryParse() from inside each subcommand's
 * option loop; begin() installs the process-wide Telemetry (and
 * starts the sampler when asked for), finish() stops the sampler,
 * writes the trace file, and uninstalls. Telemetry is metadata, not
 * identity: turning any of these on never changes a verdict, an
 * outcome set, or a JSON report field other than the wall-clock ones
 * already excluded under --stable-json.
 */
struct TelemetryCli
{
    std::string traceOut;
    std::string heartbeatPath;
    bool progress = false;

    std::unique_ptr<obs::Telemetry> tel;
    std::unique_ptr<obs::ProgressSampler> sampler;

    /** Consume a telemetry flag at argv[i]; false when not ours. */
    bool tryParse(int argc, char **argv, int &i)
    {
        const char *a = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n",
                             a);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(a, "--trace-out") == 0)
            traceOut = val();
        else if (std::strcmp(a, "--heartbeat") == 0)
            heartbeatPath = val();
        else if (std::strcmp(a, "--progress") == 0)
            progress = true;
        else
            return false;
        return true;
    }

    static void appendUsage()
    {
        std::fputs(
            "  --trace-out FILE  write a Chrome trace-event span\n"
            "                    trace (load in Perfetto)\n"
            "  --progress        live progress line on stderr\n"
            "  --heartbeat FILE  append progress snapshots (JSONL)\n",
            stderr);
    }

    void begin(const std::string &label)
    {
        if (traceOut.empty() && heartbeatPath.empty() && !progress)
            return;
        obs::TelemetryOptions topt;
        topt.trace = !traceOut.empty();
        tel = std::make_unique<obs::Telemetry>(topt);
        obs::install(tel.get());
        if (progress || !heartbeatPath.empty()) {
            obs::ProgressOptions popt;
            popt.stderrLine = progress;
            popt.heartbeatPath = heartbeatPath;
            popt.label = label;
            sampler =
                std::make_unique<obs::ProgressSampler>(*tel, popt);
            sampler->start();
        }
    }

    /** Tear down; false when the trace file cannot be written. */
    bool finish()
    {
        bool ok = true;
        if (sampler) {
            sampler->stop();
            sampler.reset();
        }
        if (tel) {
            obs::install(nullptr);
            if (!traceOut.empty()) {
                if (tel->tracer().writeFile(traceOut)) {
                    std::printf("wrote %s\n", traceOut.c_str());
                } else {
                    std::fprintf(stderr,
                                 "error: cannot write %s\n",
                                 traceOut.c_str());
                    ok = false;
                }
            }
            tel.reset();
        }
        return ok;
    }
};

struct CaseResult
{
    std::string name; //!< file stem, suffixed #N when stems repeat
    std::string file;
    lang::RunResult run;
    bool parsed = true;
    std::string parseError;

    bool pass() const { return parsed && run.pass; }
};

bool
readFile(const std::string &path, std::string &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Whole-string numeric flag value; false on garbage or overflow. */
bool
parseCount(const char *s, long long &out)
{
    errno = 0;
    char *end = nullptr;
    out = std::strtoll(s, &end, 10);
    return end != s && *end == '\0' && errno == 0;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] [scenario.cxl0 ...]\n"
        "  --corpus DIR      run every *.cxl0 under DIR (sorted)\n"
        "  --checker KIND    explore|feasible|refinement|inclusion\n"
        "                    (default: explore when the file has a\n"
        "                    program, feasibility when trace-only)\n"
        "  --threads N       worker threads (CheckRequest::numThreads)\n"
        "  --max-configs N   override the configuration budget\n"
        "  --max-depth N     override the depth bound\n"
        "  --time-budget-ms N  per-case wall-clock budget; crossing\n"
        "                    it truncates gracefully (verdict\n"
        "                    inconclusive, truncated in the JSON)\n"
        "  --crash N         override max crashes per machine\n"
        "  --policy P        dfs|bfs frontier ordering\n"
        "  --reduction R     none|tau|ample|crash-ample|sleep|full\n"
        "                    partial-order reduction stack\n"
        "                    (explorer; default ample)\n"
        "  --spec V          refinement spec variant (base|lwb|psn)\n"
        "  --impl V          refinement impl variant (base|lwb|psn)\n"
        "  --out FILE        write the aggregate JSON report\n"
        "  --stable-json     zero wall-clock fields in the JSON\n"
        "  --spill-dir DIR   out-of-core mode: interning tables in\n"
        "                    file-backed (mmap) segments under DIR,\n"
        "                    frontiers spill their cold end there\n"
        "                    when over budget; reports are identical\n"
        "  --spill-budget-mb N  per-shard frontier bytes before the\n"
        "                    cold half spills (default 32)\n"
        "  --visited-budget-mb N  per-shard hot visited-set bytes\n"
        "                    before a sorted run flushes to disk\n"
        "                    (default 16)\n"
        "  --checkpoint-every N  snapshot the search every N admitted\n"
        "                    configurations (explorer; quiescent,\n"
        "                    atomically replaced)\n"
        "  --checkpoint-dir DIR  where snapshots and the final report\n"
        "                    go (default: the --resume dir)\n"
        "  --resume DIR      resume a killed run from its snapshot;\n"
        "                    the completed run's report is\n"
        "                    byte-identical to an uninterrupted one\n"
        "  --halt-after-checkpoints N  stop right after the Nth\n"
        "                    snapshot (in-process SIGKILL stand-in\n"
        "                    for resume testing)\n"
        "  --export DIR      write the built-in litmus corpus to DIR\n"
        "  --dump FILE       print FILE's canonical form and exit\n"
        "  --quiet           only print failures and the summary\n",
        argv0);
    TelemetryCli::appendUsage();
    return 2;
}

void
jsonEscape(std::string &out, const std::string &s)
{
    char buf[8];
    for (char c : s) {
        unsigned char u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (u < 0x20) {
            std::snprintf(buf, sizeof buf, "\\u%04x", u);
            out += buf;
        } else {
            out += c;
        }
    }
}

std::string
jsonReport(const std::vector<CaseResult> &cases, bool stable)
{
    std::string out = "{\n  \"bench\": \"corpus\",\n";
    char buf[512];
    std::snprintf(buf, sizeof buf, "  \"corpus_size\": %zu,\n",
                  cases.size());
    out += buf;
    out += "  \"cases\": {\n";
    for (size_t i = 0; i < cases.size(); ++i) {
        const CaseResult &c = cases[i];
        out += "    \"";
        jsonEscape(out, c.name);
        out += "\": ";
        if (!c.parsed) {
            out += "{\"parse_error\": \"";
            jsonEscape(out, c.parseError);
            out += "\", \"anchors_pass\": false}";
        } else {
            const check::CheckReport &r = c.run.report;
            double sec =
                r.stats.seconds > 0 ? r.stats.seconds : 1e-9;
            std::snprintf(
                buf, sizeof buf,
                "{\"checker\": \"%s\", \"verdict\": \"%s\", "
                "\"configs\": %zu, \"seconds\": %.6f, "
                "\"wall_ms\": %.3f, "
                "\"configs_per_sec\": %.0f, \"outcomes\": %zu, "
                "\"tau_skipped\": %zu, \"ample_skipped\": %zu, "
                "\"crash_ample_skipped\": %zu, "
                "\"sleep_set_skipped\": %zu, "
                "\"symmetry_merged\": %zu, "
                "\"steals_attempted\": %zu, "
                "\"steals_succeeded\": %zu, "
                "\"truncated\": %s, \"timed_out\": %s, "
                "\"anchors_pass\": %s}",
                lang::checkerKindName(c.run.checker),
                check::checkVerdictName(r.verdict),
                r.stats.configsVisited,
                stable ? 0.0 : r.stats.seconds,
                stable ? 0.0 : r.wallMs,
                stable ? 0.0
                       : static_cast<double>(r.stats.configsVisited) /
                             sec,
                r.outcomes.size(), r.stats.tauMovesSkipped,
                r.stats.ampleSkipped, r.stats.crashAmpleSkipped,
                r.stats.sleepSetSkipped, r.stats.symmetryMerged,
                r.stats.stealsAttempted,
                r.stats.stealsSucceeded,
                r.truncated ? "true" : "false",
                r.timedOut ? "true" : "false",
                c.pass() ? "true" : "false");
            out += buf;
        }
        out += i + 1 < cases.size() ? ",\n" : "\n";
    }
    out += "  },\n";
    size_t passed = 0;
    for (const CaseResult &c : cases)
        passed += c.pass();
    std::snprintf(buf, sizeof buf,
                  "  \"cases_passed\": %zu,\n"
                  "  \"all_anchors_pass\": %s\n}\n",
                  passed,
                  passed == cases.size() ? "true" : "false");
    out += buf;
    return out;
}

int
exportCorpus(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "error: cannot create %s: %s\n",
                     dir.c_str(), ec.message().c_str());
        return 2;
    }
    for (const lang::CorpusFile &f : lang::exportBuiltinCorpus()) {
        std::string path = dir + "/" + f.filename;
        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            return 2;
        }
        out << f.text;
        std::printf("exported %s\n", path.c_str());
    }
    return 0;
}

/** Collect (sorted) every *.cxl0 under `dir` into `files`. */
bool
scanCorpusDir(const std::string &dir, std::vector<std::string> &files)
{
    std::error_code ec;
    std::vector<std::string> found;
    try {
        for (const auto &e : fs::directory_iterator(dir, ec))
            if (e.path().extension() == ".cxl0")
                found.push_back(e.path().string());
    } catch (const fs::filesystem_error &e) {
        // The iterator's increment throws on I/O errors.
        std::fprintf(stderr, "error: cannot read %s: %s\n",
                     dir.c_str(), e.what());
        return false;
    }
    if (ec) {
        std::fprintf(stderr, "error: cannot read %s: %s\n",
                     dir.c_str(), ec.message().c_str());
        return false;
    }
    std::sort(found.begin(), found.end());
    files.insert(files.end(), found.begin(), found.end());
    return true;
}

/** Split a comma-separated flag value into its nonempty items. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    std::stringstream ss(s);
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
campaignUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: cxl0check %s [options]\n"
        "  --structures LIST   comma list of structures (default: all)\n"
        "  --modes LIST        comma list of persist modes\n"
        "                      (default: flit-cxl0)\n"
        "  --variant V         base|lwb|psn model variant\n"
        "  --lwb-structure S   additionally verify S under LWB\n"
        "  --policy P          manual|random propagation override\n"
        "                      (default: per-mode, see src/inject)\n"
        "  --seed N            campaign seed (workloads + sampling)\n"
        "  --ops N             workload operations per case\n"
        "  --workload-threads N  logical workload threads\n"
        "  --max-value N       argument value bound\n"
        "  --nodes N           machines in the system\n"
        "  --crash-budget N    crash points per unit (0 = exhaustive)\n"
        "  --hist-max-ops N    linearizability op bound\n"
        "  --time-budget-ms N  wall-clock budget per case check\n"
        "  --retries N         widened retries on op-bound truncation\n"
        "  --no-shrink         skip minimizing violations\n"
        "  --corpus-dir DIR    write shrunk artifacts under DIR\n"
        "  --out FILE          write the campaign JSON report\n"
        "  --stable-json       zero wall-clock fields in the JSON\n"
        "  --expect-violations require at least one violation\n"
        "  --quiet             only print the summary\n",
        argv0);
    TelemetryCli::appendUsage();
    return 2;
}

int
campaignMain(int argc, char **argv)
{
    inject::CampaignOptions opts;
    TelemetryCli tcli;
    const char *out_path = nullptr;
    bool stable_json = false;
    bool expect_violations = false;
    bool quiet = false;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    auto count = [&](int &i, long long lo, long long hi) -> long long {
        const char *flag = argv[i];
        long long n;
        if (!parseCount(value(i), n) || n < lo || n > hi) {
            std::fprintf(stderr, "error: %s wants %lld..%lld\n", flag,
                         lo, hi);
            std::exit(2);
        }
        return n;
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--structures") == 0) {
            opts.structures.clear();
            for (const std::string &name : splitList(value(i))) {
                auto s = inject::structureFromName(name);
                if (!s) {
                    std::fprintf(stderr,
                                 "error: unknown structure '%s'\n",
                                 name.c_str());
                    return 2;
                }
                opts.structures.push_back(*s);
            }
            if (opts.structures.empty())
                return campaignUsage(argv[0]);
        } else if (std::strcmp(a, "--modes") == 0) {
            opts.modes.clear();
            for (const std::string &name : splitList(value(i))) {
                auto m = inject::persistModeFromName(name);
                if (!m) {
                    std::fprintf(stderr,
                                 "error: unknown persist mode '%s'\n",
                                 name.c_str());
                    return 2;
                }
                opts.modes.push_back(*m);
            }
            if (opts.modes.empty())
                return campaignUsage(argv[0]);
        } else if (std::strcmp(a, "--variant") == 0) {
            if (!lang::variantFromWord(value(i), opts.variant))
                return campaignUsage(argv[0]);
        } else if (std::strcmp(a, "--lwb-structure") == 0) {
            const char *name = value(i);
            auto s = inject::structureFromName(name);
            if (!s) {
                std::fprintf(stderr,
                             "error: unknown structure '%s'\n", name);
                return 2;
            }
            opts.lwbStructure = *s;
        } else if (std::strcmp(a, "--policy") == 0) {
            const char *p = value(i);
            if (std::strcmp(p, "manual") == 0)
                opts.policyOverride =
                    runtime::PropagationPolicy::Manual;
            else if (std::strcmp(p, "random") == 0)
                opts.policyOverride =
                    runtime::PropagationPolicy::Random;
            else
                return campaignUsage(argv[0]);
        } else if (std::strcmp(a, "--seed") == 0) {
            opts.seed = static_cast<uint64_t>(
                count(i, 0, std::numeric_limits<long long>::max()));
        } else if (std::strcmp(a, "--ops") == 0) {
            opts.params.numOps =
                static_cast<size_t>(count(i, 1, 64));
        } else if (std::strcmp(a, "--workload-threads") == 0) {
            opts.params.numThreads =
                static_cast<int>(count(i, 1, 8));
        } else if (std::strcmp(a, "--max-value") == 0) {
            opts.params.maxValue =
                static_cast<Value>(count(i, 1, 1000));
        } else if (std::strcmp(a, "--nodes") == 0) {
            opts.nodes = static_cast<size_t>(count(i, 2, 8));
        } else if (std::strcmp(a, "--crash-budget") == 0) {
            opts.crashBudget =
                static_cast<size_t>(count(i, 0, 1000000));
        } else if (std::strcmp(a, "--hist-max-ops") == 0) {
            opts.limits.histMaxOps =
                static_cast<size_t>(count(i, 1, 63));
        } else if (std::strcmp(a, "--time-budget-ms") == 0) {
            opts.limits.caseTimeBudgetMs = static_cast<uint64_t>(
                count(i, 0, std::numeric_limits<long long>::max()));
        } else if (std::strcmp(a, "--retries") == 0) {
            opts.limits.retries =
                static_cast<size_t>(count(i, 0, 16));
        } else if (std::strcmp(a, "--no-shrink") == 0) {
            opts.shrinkViolations = false;
        } else if (std::strcmp(a, "--corpus-dir") == 0) {
            opts.corpusDir = value(i);
        } else if (std::strcmp(a, "--out") == 0) {
            out_path = value(i);
        } else if (std::strcmp(a, "--stable-json") == 0) {
            stable_json = true;
        } else if (std::strcmp(a, "--expect-violations") == 0) {
            expect_violations = true;
        } else if (tcli.tryParse(argc, argv, i)) {
            // Telemetry flags: handled by the helper.
        } else if (std::strcmp(a, "--quiet") == 0 ||
                   std::strcmp(a, "-q") == 0) {
            quiet = true;
        } else {
            return campaignUsage(argv[0]);
        }
    }

    tcli.begin("campaign");
    auto t0 = std::chrono::steady_clock::now();
    inject::CampaignReport report;
    try {
        report = inject::runCampaign(opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: campaign failed: %s\n", e.what());
        return 2;
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (!tcli.finish())
        return 2;

    if (!quiet) {
        for (const auto &[key, b] : report.perStructure)
            std::printf("unit %-16s %4zu case(s): %zu pass, "
                        "%zu violation(s), %zu truncated, %zu skipped\n",
                        key.c_str(), b.cases, b.pass, b.violations,
                        b.truncated, b.skipped);
        for (const inject::ShrunkRecord &r : report.shrunk)
            std::printf("shrunk %-40s -> %zu op(s), crash step %llu%s%s\n",
                        r.bucket.c_str(), r.minimized.ops.size(),
                        static_cast<unsigned long long>(
                            r.minimized.crashStep),
                        r.artifactPath.empty() ? "" : ", ",
                        r.artifactPath.c_str());
    }
    std::printf("campaign: %zu case(s), %zu pass, %zu violation(s) "
                "(%zu durable), %zu truncated, %zu skipped, %.2fs\n",
                report.cases, report.pass, report.violations,
                report.durableViolations, report.truncated,
                report.skipped, seconds);

    if (out_path) {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n", out_path);
            return 2;
        }
        out << inject::campaignJson(opts, report, seconds, stable_json);
        std::printf("wrote %s\n", out_path);
    }

    if (!report.allDurablePass) {
        std::fprintf(stderr,
                     "FAIL: durable-mode violation(s) detected\n");
        return 1;
    }
    if (expect_violations && report.violations == 0) {
        std::fprintf(stderr, "FAIL: expected at least one violation, "
                             "found none\n");
        return 1;
    }
    return 0;
}

int
replayUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: cxl0check %s [options] artifact.txt ...\n"
        "  --expect V          pass|violation|truncated|skipped\n"
        "                      (default: violation — corpus artifacts\n"
        "                      are minimized violations)\n"
        "  --hist-max-ops N    linearizability op bound\n"
        "  --time-budget-ms N  wall-clock budget per check\n",
        argv0);
    TelemetryCli::appendUsage();
    return 2;
}

int
replayMain(int argc, char **argv)
{
    inject::RunLimits limits;
    TelemetryCli tcli;
    std::string expect = "violation";
    std::vector<std::string> files;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--expect") == 0) {
            expect = value(i);
        } else if (std::strcmp(a, "--hist-max-ops") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1 || n > 63)
                return replayUsage(argv[0]);
            limits.histMaxOps = static_cast<size_t>(n);
        } else if (std::strcmp(a, "--time-budget-ms") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 0)
                return replayUsage(argv[0]);
            limits.caseTimeBudgetMs = static_cast<uint64_t>(n);
        } else if (tcli.tryParse(argc, argv, i)) {
            // Telemetry flags: handled by the helper.
        } else if (a[0] == '-') {
            return replayUsage(argv[0]);
        } else {
            files.push_back(a);
        }
    }
    if (files.empty())
        return replayUsage(argv[0]);

    tcli.begin("replay");
    bool all_match = true;
    for (const std::string &path : files) {
        const obs::ScopedSpan replaySpan(obs::threadRing(),
                                         "replay:case");
        std::string text, err;
        if (!readFile(path, text, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            all_match = false;
            continue;
        }
        std::string perr;
        auto parsed = inject::parseArtifact(text, &perr);
        if (!parsed) {
            std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                         perr.c_str());
            all_match = false;
            continue;
        }
        inject::CaseOutcome out;
        try {
            out = inject::runCase(*parsed, limits);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s: replay threw: %s\n",
                         path.c_str(), e.what());
            all_match = false;
            continue;
        }
        const char *got = inject::verdictName(out.verdict);
        bool match = expect == got;
        std::printf("replay %-48s %s%s\n", path.c_str(), got,
                    match ? "" : " (MISMATCH)");
        if (!match && !out.lin.explanation.empty())
            std::printf("    %s\n", out.lin.explanation.c_str());
        all_match &= match;
    }
    if (!tcli.finish())
        return 2;
    return all_match ? 0 : 1;
}

// ------------------------------------------------------ fuzz command

int
fuzzUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: cxl0check %s [options]\n"
        "  --seed N            farm seed (per-case seeds derive)\n"
        "  --count N           scenarios to generate (default 100)\n"
        "  --max-configs N     per-run configuration budget\n"
        "  --alt-threads N     the N of the 1-vs-N thread gate\n"
        "  --time-budget-ms N  per-run wall-clock budget\n"
        "  --soak              raise the generator bounds (bigger\n"
        "                      systems, longer programs); runs that\n"
        "                      outgrow the budgets are skipped, so\n"
        "                      pair with --time-budget-ms (defaults\n"
        "                      to 2000 when unset) and a larger\n"
        "                      --max-configs\n"
        "  --no-reference      skip the deep-copy reference gate\n"
        "  --no-shrink         skip minimizing findings\n"
        "  --no-cache-trial    skip the verify-hits cache trial\n"
        "  --keep N            export the N largest clean scenarios\n"
        "                      with exact outcome anchors locked\n"
        "  --corpus-dir DIR    write kept exports + finding\n"
        "                      artifacts under DIR\n"
        "  --cache-capacity N  cache-trial in-memory entries\n"
        "  --cache-dir DIR     cache-trial on-disk store\n"
        "  --out FILE          write the farm JSON report\n"
        "  --stable-json       zero wall-clock fields in the JSON\n"
        "  --replay DIR        re-run the gates over every .cxl0\n"
        "                      under DIR instead of generating\n"
        "  --quiet             only print findings and the summary\n",
        argv0);
    TelemetryCli::appendUsage();
    return 2;
}

int
fuzzReplay(const std::string &dir, const fuzz::DiffOptions &diff,
           bool quiet)
{
    std::vector<std::string> files;
    if (!scanCorpusDir(dir, files))
        return 2;
    if (files.empty()) {
        std::printf("fuzz replay: no .cxl0 files under %s\n",
                    dir.c_str());
        return 0;
    }
    size_t clean = 0, skipped = 0, failed = 0;
    for (const std::string &path : files) {
        std::string text, err;
        if (!readFile(path, text, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            ++failed;
            continue;
        }
        lang::ParseResult pr = lang::parseScenario(text);
        if (!pr.ok()) {
            std::fprintf(stderr, "%s\n",
                         pr.error->render(path).c_str());
            ++failed;
            continue;
        }
        fuzz::DiffResult r = fuzz::runDifferential(pr.scenario, diff);
        bool ok = r.skipped || r.clean();
        if (!ok)
            ++failed;
        else if (r.skipped)
            ++skipped;
        else
            ++clean;
        if (!quiet || !ok)
            std::printf("replay %-40s %s (%zu gate(s))\n",
                        path.c_str(),
                        r.skipped    ? "skipped"
                        : r.clean()  ? "clean"
                        : r.crashed  ? "CRASH"
                                     : "DIVERGED",
                        r.gatesRun);
        for (const fuzz::DiffFinding &f : r.findings)
            std::printf("    [%s] %s\n", f.gate.c_str(),
                        f.detail.c_str());
    }
    std::printf("fuzz replay: %zu clean, %zu skipped, %zu failing\n",
                clean, skipped, failed);
    return failed == 0 ? 0 : 1;
}

int
fuzzMain(int argc, char **argv)
{
    fuzz::FarmOptions opts;
    TelemetryCli tcli;
    const char *out_path = nullptr;
    const char *replay_dir = nullptr;
    const char *corpus_dir = nullptr;
    bool stable_json = false;
    bool soak = false;
    bool quiet = false;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    auto count = [&](int &i, long long lo, long long hi) -> long long {
        const char *flag = argv[i];
        long long n;
        if (!parseCount(value(i), n) || n < lo || n > hi) {
            std::fprintf(stderr, "error: %s wants %lld..%lld\n", flag,
                         lo, hi);
            std::exit(2);
        }
        return n;
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--seed") == 0) {
            opts.seed = static_cast<uint64_t>(
                count(i, 0, std::numeric_limits<long long>::max()));
        } else if (std::strcmp(a, "--count") == 0) {
            opts.count = static_cast<size_t>(count(i, 1, 10000000));
        } else if (std::strcmp(a, "--max-configs") == 0) {
            opts.diff.maxConfigs = static_cast<size_t>(
                count(i, 1, std::numeric_limits<long long>::max()));
        } else if (std::strcmp(a, "--alt-threads") == 0) {
            opts.diff.altThreads =
                static_cast<size_t>(count(i, 1, 1024));
        } else if (std::strcmp(a, "--time-budget-ms") == 0) {
            opts.diff.timeBudgetMs = static_cast<uint64_t>(
                count(i, 1, std::numeric_limits<long long>::max()));
        } else if (std::strcmp(a, "--soak") == 0) {
            soak = true;
        } else if (std::strcmp(a, "--no-reference") == 0) {
            opts.diff.runReference = false;
        } else if (std::strcmp(a, "--no-shrink") == 0) {
            opts.shrink = false;
        } else if (std::strcmp(a, "--no-cache-trial") == 0) {
            opts.cacheTrial = false;
        } else if (std::strcmp(a, "--keep") == 0) {
            opts.keep = static_cast<size_t>(count(i, 0, 10000));
        } else if (std::strcmp(a, "--corpus-dir") == 0) {
            corpus_dir = value(i);
        } else if (std::strcmp(a, "--cache-capacity") == 0) {
            opts.cacheCapacity =
                static_cast<size_t>(count(i, 1, 100000000));
        } else if (std::strcmp(a, "--cache-dir") == 0) {
            opts.cacheDir = value(i);
        } else if (std::strcmp(a, "--out") == 0) {
            out_path = value(i);
        } else if (std::strcmp(a, "--stable-json") == 0) {
            stable_json = true;
        } else if (std::strcmp(a, "--replay") == 0) {
            replay_dir = value(i);
        } else if (tcli.tryParse(argc, argv, i)) {
            // Telemetry flags: handled by the helper.
        } else if (std::strcmp(a, "--quiet") == 0 ||
                   std::strcmp(a, "-q") == 0) {
            quiet = true;
        } else {
            return fuzzUsage(argv[0]);
        }
    }

    if (soak) {
        // Soak mode: push the generator past the default bounds (the
        // defaults are sized to finish untruncated on the default
        // budget; soak deliberately is not). The time budget keeps a
        // pathological draw from stalling the whole farm — truncated
        // baselines are counted skipped, never diverged.
        opts.gen.maxMachines = 4;
        opts.gen.maxAddrs = 3;
        opts.gen.maxThreads = 4;
        opts.gen.maxInstrsPerThread = 7;
        opts.gen.maxRegs = 4;
        opts.gen.maxValue = 3;
        if (opts.diff.timeBudgetMs == 0)
            opts.diff.timeBudgetMs = 2000;
    }

    tcli.begin("fuzz");
    if (replay_dir) {
        int rc = fuzzReplay(replay_dir, opts.diff, quiet);
        if (!tcli.finish())
            return 2;
        return rc;
    }

    fuzz::FarmReport report = fuzz::runFarm(opts);
    if (!tcli.finish())
        return 2;

    if (!quiet)
        for (const fuzz::FarmFinding &f : report.findings)
            std::printf("finding seed %llu [%s]: %s\n",
                        static_cast<unsigned long long>(f.seed),
                        f.gate.c_str(), f.detail.c_str());

    if (corpus_dir &&
        (!report.kept.empty() || !report.findings.empty())) {
        std::error_code ec;
        fs::create_directories(corpus_dir, ec);
        if (ec) {
            std::fprintf(stderr, "error: cannot create %s: %s\n",
                         corpus_dir, ec.message().c_str());
            return 2;
        }
        auto writeArtifact = [&](const std::string &filename,
                                 const std::string &text) -> bool {
            std::string path =
                std::string(corpus_dir) + "/" + filename;
            std::ofstream out(path, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             path.c_str());
                return false;
            }
            out << text;
            std::printf("wrote %s\n", path.c_str());
            return true;
        };
        for (const lang::CorpusFile &f : report.kept)
            if (!writeArtifact(f.filename, f.text))
                return 2;
        for (const fuzz::FarmFinding &f : report.findings)
            if (!writeArtifact(f.filename, f.artifact))
                return 2;
    }

    std::printf("fuzz: %zu generated, %zu clean, %zu skipped, "
                "%zu diverged, %zu crashed, %zu gate run(s), "
                "cache %zu/%zu hit(s)%s, %.2fs\n",
                report.generated, report.clean, report.skipped,
                report.diverged, report.crashed, report.gatesRun,
                report.cacheHits, report.cacheLookups,
                report.cacheByteIdentical
                    ? ""
                    : " (NOT byte-identical)",
                report.seconds);

    if (out_path) {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         out_path);
            return 2;
        }
        out << fuzz::farmJson(opts, report, stable_json);
        std::printf("wrote %s\n", out_path);
    }
    return report.pass() ? 0 : 1;
}

// ----------------------------------------------------- serve command

int
serveUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: cxl0check %s [options] [scenario.cxl0 ...]\n"
        "  --corpus DIR        serve every *.cxl0 under DIR (sorted)\n"
        "  --repeat N          serve the batch N times (default 2;\n"
        "                      repeats exercise the result cache)\n"
        "  --threads N         worker threads per request\n"
        "  --cache-capacity N  in-memory result-cache entries\n"
        "  --cache-dir DIR     enable the on-disk result store\n"
        "  --verify-hits       recompute every hit and require\n"
        "                      byte-identity (the correctness gate)\n"
        "  --out FILE          write the aggregate JSON report\n"
        "  --stable-json       zero wall-clock fields in the JSON\n"
        "  --quiet             only print failures and the summary\n",
        argv0);
    TelemetryCli::appendUsage();
    return 2;
}

int
serveMain(int argc, char **argv)
{
    lang::ServiceOptions so;
    TelemetryCli tcli;
    std::vector<std::string> files;
    size_t repeat = 2;
    const char *out_path = nullptr;
    bool stable_json = false;
    bool quiet = false;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    auto count = [&](int &i, long long lo, long long hi) -> long long {
        const char *flag = argv[i];
        long long n;
        if (!parseCount(value(i), n) || n < lo || n > hi) {
            std::fprintf(stderr, "error: %s wants %lld..%lld\n", flag,
                         lo, hi);
            std::exit(2);
        }
        return n;
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--corpus") == 0) {
            if (!scanCorpusDir(value(i), files))
                return 2;
        } else if (std::strcmp(a, "--repeat") == 0) {
            repeat = static_cast<size_t>(count(i, 1, 1000000));
        } else if (std::strcmp(a, "--threads") == 0) {
            so.run.numThreads =
                static_cast<size_t>(count(i, 1, 1024));
        } else if (std::strcmp(a, "--cache-capacity") == 0) {
            so.cacheCapacity =
                static_cast<size_t>(count(i, 1, 100000000));
        } else if (std::strcmp(a, "--cache-dir") == 0) {
            so.cacheDir = value(i);
        } else if (std::strcmp(a, "--verify-hits") == 0) {
            so.verifyHits = true;
        } else if (std::strcmp(a, "--out") == 0) {
            out_path = value(i);
        } else if (std::strcmp(a, "--stable-json") == 0) {
            stable_json = true;
        } else if (tcli.tryParse(argc, argv, i)) {
            // Telemetry flags: handled by the helper.
        } else if (std::strcmp(a, "--quiet") == 0 ||
                   std::strcmp(a, "-q") == 0) {
            quiet = true;
        } else if (a[0] == '-') {
            return serveUsage(argv[0]);
        } else {
            files.push_back(a);
        }
    }
    if (files.empty())
        return serveUsage(argv[0]);
    tcli.begin("serve");

    // Parse the whole batch up front: a serve loop should never pay
    // the parse twice, and a broken file fails fast.
    struct Loaded
    {
        std::string name;
        lang::Scenario sc;
    };
    std::vector<Loaded> batch;
    bool parse_ok = true;
    for (const std::string &path : files) {
        std::string text, err;
        if (!readFile(path, text, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            parse_ok = false;
            continue;
        }
        lang::ParseResult pr = lang::parseScenario(text);
        if (!pr.ok()) {
            std::fprintf(stderr, "%s\n",
                         pr.error->render(path).c_str());
            parse_ok = false;
            continue;
        }
        batch.push_back({fs::path(path).stem().string(),
                         std::move(pr.scenario)});
    }

    auto t0 = std::chrono::steady_clock::now();
    lang::ScenarioService service(so);
    size_t requests = 0, passed = 0;
    bool byte_identical = true;
    for (size_t rep = 0; rep < repeat; ++rep) {
        for (const Loaded &l : batch) {
            lang::ScenarioService::Response resp;
            try {
                resp = service.handle(l.sc);
            } catch (const std::exception &e) {
                resp.result.error = e.what();
            }
            ++requests;
            passed += resp.result.pass;
            byte_identical &= resp.byteIdentical;
            if (!quiet || !resp.result.pass)
                std::printf("serve %-24s %-4s %s\n", l.name.c_str(),
                            resp.cacheHit ? "hit" : "miss",
                            resp.result.error.empty()
                                ? resp.result.describe().c_str()
                                : resp.result.error.c_str());
        }
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (!tcli.finish())
        return 2;

    const check::CacheStats &cs = service.cacheStats();
    std::printf("serve: %zu request(s), %zu passed, %zu cache "
                "hit(s), %zu miss(es)%s, %zu pooled context(s) "
                "(%zu reuse(s)), %.2fs\n",
                requests, passed, cs.hits, cs.misses,
                byte_identical ? "" : " (NOT byte-identical)",
                service.contexts().size(),
                service.contexts().reuses(), seconds);

    if (out_path) {
        double secs = stable_json ? 0.0 : seconds;
        double rate = (stable_json || seconds <= 0.0)
                          ? 0.0
                          : static_cast<double>(requests) / seconds;
        size_t lookups = cs.hits + cs.misses;
        std::ostringstream os;
        os << "{\n";
        os << "  \"bench\": \"serve\",\n";
        os << "  \"corpus_size\": " << batch.size() << ",\n";
        os << "  \"repeat\": " << repeat << ",\n";
        os << "  \"requests\": " << requests << ",\n";
        os << "  \"passed\": " << passed << ",\n";
        os << "  \"cache\": {\"lookups\": " << lookups
           << ", \"hits\": " << cs.hits << ", \"misses\": "
           << cs.misses << ", \"evictions\": " << cs.evictions
           << ", \"disk_hits\": " << cs.diskHits
           << ", \"disk_writes\": " << cs.diskWrites
           << ", \"corrupt\": " << cs.corrupt << ", \"hit_rate\": "
           << (lookups == 0 ? 0.0
                            : static_cast<double>(cs.hits) /
                                  static_cast<double>(lookups))
           << ", \"byte_identical\": "
           << (byte_identical ? "true" : "false") << "},\n";
        os << "  \"contexts\": {\"pooled\": "
           << service.contexts().size() << ", \"reuses\": "
           << service.contexts().reuses() << ", \"bytes\": "
           << (stable_json ? 0 : service.contexts().bytes())
           << "},\n";
        os << "  \"all_pass\": "
           << (passed == requests && parse_ok && byte_identical
                   ? "true"
                   : "false")
           << ",\n";
        os << "  \"seconds\": " << secs << ",\n";
        os << "  \"requests_per_sec\": " << rate << "\n";
        os << "}\n";
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         out_path);
            return 2;
        }
        out << os.str();
        std::printf("wrote %s\n", out_path);
    }
    return passed == requests && parse_ok && byte_identical ? 0 : 1;
}

// ------------------------------------------------------ hash command

int
hashMain(int argc, char **argv)
{
    bool print_key = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--key") == 0)
            print_key = true;
        else if (argv[i][0] == '-')
            files.clear();
        else
            files.push_back(argv[i]);
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: cxl0check hash [--key] scenario.cxl0 "
                     "...\n  --key  print the full canonical cache "
                     "key instead of the 64-bit address\n");
        return 2;
    }
    bool ok = true;
    for (const std::string &path : files) {
        std::string text, err;
        if (!readFile(path, text, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            ok = false;
            continue;
        }
        lang::ParseResult pr = lang::parseScenario(text);
        if (!pr.ok()) {
            std::fprintf(stderr, "%s\n",
                         pr.error->render(path).c_str());
            ok = false;
            continue;
        }
        if (print_key) {
            std::fputs(
                lang::cacheKey(pr.scenario, lang::RunOptions{})
                    .c_str(),
                stdout);
        } else {
            std::printf("%016llx  %s\n",
                        static_cast<unsigned long long>(
                            lang::scenarioHash(pr.scenario)),
                        path.c_str());
        }
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "campaign") == 0)
        return campaignMain(argc - 1, argv + 1);
    if (argc >= 2 && std::strcmp(argv[1], "replay") == 0)
        return replayMain(argc - 1, argv + 1);
    if (argc >= 2 && std::strcmp(argv[1], "fuzz") == 0)
        return fuzzMain(argc - 1, argv + 1);
    if (argc >= 2 && std::strcmp(argv[1], "serve") == 0)
        return serveMain(argc - 1, argv + 1);
    if (argc >= 2 && std::strcmp(argv[1], "hash") == 0)
        return hashMain(argc - 1, argv + 1);
    std::vector<std::string> files;
    lang::RunOptions opts;
    TelemetryCli tcli;
    const char *out_path = nullptr;
    bool stable_json = false;
    bool quiet = false;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--corpus") == 0) {
            if (!scanCorpusDir(value(i), files))
                return 2;
        } else if (std::strcmp(a, "--checker") == 0) {
            const char *k = value(i);
            if (std::strcmp(k, "explore") == 0)
                opts.checker = lang::CheckerKind::Explore;
            else if (std::strcmp(k, "feasible") == 0)
                opts.checker = lang::CheckerKind::Feasible;
            else if (std::strcmp(k, "refinement") == 0)
                opts.checker = lang::CheckerKind::Refinement;
            else if (std::strcmp(k, "inclusion") == 0)
                opts.checker = lang::CheckerKind::Inclusion;
            else
                return usage(argv[0]);
        } else if (std::strcmp(a, "--threads") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1 || n > 1024) {
                std::fprintf(stderr,
                             "error: --threads wants 1..1024\n");
                return 2;
            }
            opts.numThreads = static_cast<size_t>(n);
        } else if (std::strcmp(a, "--max-configs") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1) {
                std::fprintf(stderr,
                             "error: --max-configs wants >= 1\n");
                return 2;
            }
            opts.maxConfigs = static_cast<size_t>(n);
        } else if (std::strcmp(a, "--max-depth") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 0) {
                std::fprintf(stderr,
                             "error: --max-depth wants >= 0\n");
                return 2;
            }
            opts.maxDepth = static_cast<size_t>(n);
        } else if (std::strcmp(a, "--time-budget-ms") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1) {
                std::fprintf(stderr,
                             "error: --time-budget-ms wants >= 1\n");
                return 2;
            }
            opts.timeBudgetMs = static_cast<uint64_t>(n);
        } else if (std::strcmp(a, "--crash") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 0 || n > 1000) {
                std::fprintf(stderr,
                             "error: --crash wants 0..1000\n");
                return 2;
            }
            opts.maxCrashesPerNode = static_cast<int>(n);
        } else if (std::strcmp(a, "--policy") == 0) {
            const char *p = value(i);
            if (std::strcmp(p, "dfs") == 0)
                opts.policy = check::FrontierPolicy::DepthFirst;
            else if (std::strcmp(p, "bfs") == 0)
                opts.policy = check::FrontierPolicy::BreadthFirst;
            else
                return usage(argv[0]);
        } else if (std::strcmp(a, "--reduction") == 0) {
            check::Reduction r;
            if (!check::parseReduction(value(i), &r))
                return usage(argv[0]);
            opts.reduction = r;
        } else if (std::strcmp(a, "--spec") == 0) {
            model::ModelVariant v;
            if (!lang::variantFromWord(value(i), v))
                return usage(argv[0]);
            opts.refineSpec = v;
        } else if (std::strcmp(a, "--impl") == 0) {
            model::ModelVariant v;
            if (!lang::variantFromWord(value(i), v))
                return usage(argv[0]);
            opts.refineImpl = v;
        } else if (std::strcmp(a, "--out") == 0) {
            out_path = value(i);
        } else if (std::strcmp(a, "--stable-json") == 0) {
            stable_json = true;
        } else if (std::strcmp(a, "--spill-dir") == 0) {
            opts.ooc.spillDir = value(i);
        } else if (std::strcmp(a, "--spill-budget-mb") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1 || n > 1 << 20) {
                std::fprintf(
                    stderr,
                    "error: --spill-budget-mb wants 1..1048576\n");
                return 2;
            }
            opts.ooc.frontierSpillBudgetBytes =
                static_cast<size_t>(n) << 20;
        } else if (std::strcmp(a, "--visited-budget-mb") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1 || n > 1 << 20) {
                std::fprintf(
                    stderr,
                    "error: --visited-budget-mb wants 1..1048576\n");
                return 2;
            }
            opts.ooc.visitedSpillBudgetBytes =
                static_cast<size_t>(n) << 20;
        } else if (std::strcmp(a, "--checkpoint-every") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1) {
                std::fprintf(
                    stderr,
                    "error: --checkpoint-every wants >= 1\n");
                return 2;
            }
            opts.ooc.checkpointEvery = static_cast<size_t>(n);
        } else if (std::strcmp(a, "--checkpoint-dir") == 0) {
            opts.ooc.checkpointDir = value(i);
        } else if (std::strcmp(a, "--resume") == 0) {
            opts.ooc.resumeFrom = value(i);
        } else if (std::strcmp(a, "--halt-after-checkpoints") == 0) {
            long long n;
            if (!parseCount(value(i), n) || n < 1) {
                std::fprintf(
                    stderr,
                    "error: --halt-after-checkpoints wants >= 1\n");
                return 2;
            }
            opts.ooc.haltAfterCheckpoints = static_cast<size_t>(n);
        } else if (tcli.tryParse(argc, argv, i)) {
            // Telemetry flags: handled by the helper.
        } else if (std::strcmp(a, "--export") == 0) {
            return exportCorpus(value(i));
        } else if (std::strcmp(a, "--dump") == 0) {
            std::string text, err;
            if (!readFile(value(i), text, err)) {
                std::fprintf(stderr, "error: %s\n", err.c_str());
                return 2;
            }
            lang::ParseResult pr = lang::parseScenario(text);
            if (!pr.ok()) {
                std::fprintf(stderr, "%s\n",
                             pr.error->render(argv[i]).c_str());
                return 1;
            }
            std::fputs(lang::dumpScenario(pr.scenario).c_str(),
                       stdout);
            return 0;
        } else if (std::strcmp(a, "--quiet") == 0 ||
                   std::strcmp(a, "-q") == 0) {
            quiet = true;
        } else if (a[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(a);
        }
    }

    if (files.empty())
        return usage(argv[0]);

    // A resumed run keeps snapshotting (and leaves its final report)
    // in the directory it resumed from unless told otherwise.
    if (opts.ooc.checkpointDir.empty() &&
        !opts.ooc.resumeFrom.empty())
        opts.ooc.checkpointDir = opts.ooc.resumeFrom;
    if (opts.ooc.checkpointEvery > 0 &&
        opts.ooc.checkpointDir.empty()) {
        std::fprintf(stderr,
                     "error: --checkpoint-every needs "
                     "--checkpoint-dir (or --resume)\n");
        return 2;
    }

    // The process-global arena makes the interning tables' large
    // segments file-backed for every scenario in the batch; it must
    // outlive all of their tables, hence this scope.
    std::unique_ptr<ScopedSpillArena> arena;
    if (!opts.ooc.spillDir.empty()) {
        if (!ensureDir(opts.ooc.spillDir)) {
            std::fprintf(stderr, "error: cannot create %s\n",
                         opts.ooc.spillDir.c_str());
            return 2;
        }
        arena =
            std::make_unique<ScopedSpillArena>(opts.ooc.spillDir);
    }

    tcli.begin("corpus");
    std::vector<CaseResult> cases;
    std::map<std::string, int> stems;
    for (const std::string &path : files) {
        CaseResult c;
        c.file = path;
        c.name = fs::path(path).stem().string();
        // Stems repeat across directories; keep JSON keys unique.
        int n = ++stems[c.name];
        if (n > 1) {
            c.name.push_back('#');
            c.name += std::to_string(n);
        }
        std::string text, err;
        bool read_ok;
        lang::ParseResult pr;
        {
            const obs::ScopedSpan parseSpan(obs::threadRing(),
                                            "parse");
            read_ok = readFile(path, text, err);
            if (read_ok)
                pr = lang::parseScenario(text);
        }
        if (!read_ok) {
            // An unreadable file fails its case but never aborts the
            // rest of the batch.
            c.parsed = false;
            c.parseError = err;
            std::fprintf(stderr, "error: %s\n", err.c_str());
        } else {
            if (!pr.ok()) {
                c.parsed = false;
                c.parseError = pr.error->render(path);
                std::fprintf(stderr, "%s\n", c.parseError.c_str());
            } else {
                try {
                    c.run = lang::runScenario(pr.scenario, opts);
                } catch (const std::exception &e) {
                    // A scenario that parses but carries an invalid
                    // configuration throws from the checker (fatal's
                    // file:line diagnostic is already on stderr);
                    // contain it to this case.
                    c.run = lang::RunResult{};
                    c.run.error = e.what();
                }
                if (!c.run.error.empty())
                    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                                 c.run.error.c_str());
            }
        }
        if (!quiet || !c.pass())
            std::printf("case %-24s %s\n", c.name.c_str(),
                        c.parsed ? c.run.describe().c_str()
                                 : "parse error");
        cases.push_back(std::move(c));
    }

    size_t passed = 0;
    for (const CaseResult &c : cases)
        passed += c.pass();
    std::printf("corpus: %zu/%zu case(s) pass\n", passed,
                cases.size());
    if (!tcli.finish())
        return 2;

    if (out_path) {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         out_path);
            return 2;
        }
        out << jsonReport(cases, stable_json);
        std::printf("wrote %s\n", out_path);
    }
    return passed == cases.size() ? 0 : 1;
}
