/**
 * @file
 * Crash-injection campaign as a tracked bench: sweep every owner
 * crash point of every durable structure (plus the queue under LWB),
 * report per-structure throughput, and gate both directions — the
 * durable sweep must be violation-free AND the deliberately unsound
 * flit-original sweep must reproduce violations (the oracle-is-live
 * check). With --out, writes the durable sweep's report in the
 * tracked BENCH_campaign.json shape.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/stats.hh"
#include "inject/campaign.hh"

using namespace cxl0;
using namespace cxl0::inject;

int
main(int argc, char **argv)
{
    const char *out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out <json-path>]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("== crash-injection campaign bench ==\n\n");

    CampaignOptions durable;
    durable.seed = 1;
    durable.lwbStructure = Structure::Queue;
    auto t0 = std::chrono::steady_clock::now();
    CampaignReport rep = runCampaign(durable);
    double durable_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    TextTable table(
        {"unit", "cases", "pass", "violations", "truncated"});
    for (const auto &[name, s] : rep.perStructure)
        table.addRow({name, std::to_string(s.cases),
                      std::to_string(s.pass),
                      std::to_string(s.violations),
                      std::to_string(s.truncated)});
    std::printf("%s\n", table.render().c_str());
    std::printf("durable sweep: %zu cases in %.3fs (%.0f cases/sec)\n",
                rep.cases, durable_s, rep.cases / durable_s);

    CampaignOptions unsound;
    unsound.seed = 1;
    unsound.modes = {flit::PersistMode::FlitOriginal};
    t0 = std::chrono::steady_clock::now();
    CampaignReport bad = runCampaign(unsound);
    double unsound_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    std::printf("flit-original sweep: %zu cases, %zu violation(s) in "
                "%zu bucket(s), %.3fs\n",
                bad.cases, bad.violations, bad.buckets.size(),
                unsound_s);

    if (out_path) {
        std::ofstream out(out_path);
        out << campaignJson(durable, rep, durable_s,
                            /*stable=*/false);
        std::printf("wrote %s\n", out_path);
    }

    const bool ok = rep.allDurablePass && bad.violations > 0;
    std::printf("\nRESULT: %s\n",
                ok ? "durable structures clean, oracle live"
                   : "GATE FAILURE");
    return ok ? 0 : 1;
}
