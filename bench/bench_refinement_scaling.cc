/**
 * @file
 * R-scale — refinement throughput/memory scaling, with JSON output
 * for trajectory tracking (BENCH_*.json), shaped like
 * bench_explorer_scaling.
 *
 * Workloads: depth-bounded trace-refinement queries over the §3.5
 * variant configuration and uniform systems, all drawing labels from
 * Alphabet::standard (the full op/value/node vocabulary).
 *
 * For every case two modes run:
 *   interned    the frame-interned engine search (the default)
 *   reference   the deep-copy seed algorithm
 * plus a threads series (numThreads = 1/2/4 over the work-stealing
 * sharded pair search, with per-count steal counters), and the JSON
 * reports configs/sec, peak visited-set bytes,
 * interned frame counts, verdicts, interned-vs-reference speedup and
 * memory ratios, and the 4-thread-vs-1-thread throughput ratio. Two
 * gates make this a correctness/architecture smoke check: verdicts
 * must agree across modes *and* across thread counts on every case,
 * and the cases marked `standard_gate` (the standard-alphabet
 * depth-bounded runs of the ISSUE acceptance criteria) must show a
 * >= 2x peak-memory improvement from frame interning.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/refinement.hh"

using namespace cxl0;
using namespace cxl0::check;
using model::Cxl0Model;
using model::MachineConfig;
using model::ModelVariant;
using model::SystemConfig;

namespace
{

struct Case
{
    std::string name;
    SystemConfig config;
    ModelVariant spec;
    ModelVariant impl;
    size_t depth;
    /** Counts toward the >= 2x standard-alphabet memory gate. */
    bool standardGate;
};

/** §3.5 setting: machine 0 NVMM, machine 1 volatile, x0 on machine 0. */
SystemConfig
variantConfig()
{
    return SystemConfig({MachineConfig{true}, MachineConfig{false}},
                        {0});
}

struct ModeResult
{
    CheckReport report;
    double configsPerSec = 0;
};

ModeResult
run(const Case &c, bool reference, size_t num_threads = 1)
{
    Cxl0Model spec(c.config, c.spec), impl(c.config, c.impl);
    Alphabet alphabet = Alphabet::standard(c.config);
    CheckRequest req;
    req.maxDepth = c.depth;
    req.numThreads = num_threads;
    // Best of three: the search is deterministic, so the fastest run
    // is the least-perturbed one and tracks best across machines.
    ModeResult m;
    for (int rep = 0; rep < 3; ++rep) {
        CheckReport r =
            reference
                ? checkRefinementReference(spec, impl, alphabet, req)
                : checkRefinement(spec, impl, alphabet, req);
        if (rep == 0 || r.stats.seconds < m.report.stats.seconds)
            m.report = std::move(r);
    }
    double sec = m.report.stats.seconds > 0 ? m.report.stats.seconds
                                            : 1e-9;
    m.configsPerSec =
        static_cast<double>(m.report.stats.configsVisited) / sec;
    return m;
}

void
emitMode(std::string *out, const char *mode, const ModeResult &m,
         bool last)
{
    // The reduction counters are zero on refinement searches today
    // (the crash-aware stack lives in the litmus explorer); they are
    // emitted anyway so both BENCH_*.json emitters share one schema
    // and the trajectory tooling never branches on bench kind.
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "      \"%s\": {\"configs\": %zu, \"seconds\": %.6f, "
        "\"wall_ms\": %.3f, "
        "\"configs_per_sec\": %.0f, \"peak_visited_bytes\": %zu, "
        "\"frames_interned\": %zu, \"verdict\": \"%s\", "
        "\"crash_ample_skipped\": %zu, \"sleep_set_skipped\": %zu, "
        "\"symmetry_merged\": %zu, "
        "\"truncated\": %s}%s\n",
        mode, m.report.stats.configsVisited, m.report.stats.seconds,
        m.report.wallMs,
        m.configsPerSec, m.report.stats.peakVisitedBytes,
        m.report.stats.framesInterned,
        checkVerdictName(m.report.verdict),
        m.report.stats.crashAmpleSkipped,
        m.report.stats.sleepSetSkipped,
        m.report.stats.symmetryMerged,
        m.report.truncated ? "true" : "false", last ? "" : ",");
    *out += buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --out requires a path\n");
                return 2;
            }
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out <json-path>]\n", argv[0]);
            return 2;
        }
    }

    std::vector<Case> cases{
        // The standard-alphabet depth-bounded runs of the acceptance
        // criteria: §3.5 variant pairs and a two-machine uniform
        // system, depth 4.
        {"std_variant_base_lwb_d4", variantConfig(),
         ModelVariant::Base, ModelVariant::Lwb, 4, true},
        {"std_variant_base_psn_d4", variantConfig(),
         ModelVariant::Base, ModelVariant::Psn, 4, true},
        {"std_uniform2x1_self_d4", SystemConfig::uniform(2, 1, true),
         ModelVariant::Base, ModelVariant::Base, 4, true},
        // A violated refinement: verdicts (and counterexample
        // discovery) must agree; the run fails fast, so no memory
        // gate.
        {"variant_lwb_base_d4", variantConfig(), ModelVariant::Lwb,
         ModelVariant::Base, 4, false},
        // Scale cases for the speed trajectory.
        {"uniform2x2_self_d3", SystemConfig::uniform(2, 2, true),
         ModelVariant::Base, ModelVariant::Base, 3, false},
        {"uniform3x1_self_d3", SystemConfig::uniform(3, 1, true),
         ModelVariant::Base, ModelVariant::Base, 3, false},
        {"uniform2x1_self_d5", SystemConfig::uniform(2, 1, true),
         ModelVariant::Base, ModelVariant::Base, 5, false},
    };

    std::string json = "{\n  \"bench\": \"refinement_scaling\",\n"
                       "  \"cases\": {\n";
    bool all_match = true;
    bool mem_gate = true;
    for (size_t i = 0; i < cases.size(); ++i) {
        const Case &c = cases[i];
        ModeResult fast = run(c, false);
        ModeResult ref = run(c, true);

        // Threads series: verdicts must be invariant across worker
        // counts (the ISSUE determinism criterion at bench scale).
        // The 1-thread entry is the `fast` run already measured.
        const size_t thread_series[] = {1, 2, 4};
        ModeResult threads[3];
        threads[0] = fast;
        bool threads_match = true;
        for (size_t ti = 1; ti < 3; ++ti) {
            threads[ti] = run(c, false, thread_series[ti]);
            threads_match &= threads[ti].report.verdict ==
                             fast.report.verdict;
        }

        bool match =
            fast.report.verdict == ref.report.verdict && threads_match;
        all_match &= match;

        double speedup =
            ref.report.stats.seconds /
            (fast.report.stats.seconds > 0 ? fast.report.stats.seconds
                                           : 1e-9);
        double mem_ratio =
            fast.report.stats.peakVisitedBytes > 0
                ? static_cast<double>(
                      ref.report.stats.peakVisitedBytes) /
                      static_cast<double>(
                          fast.report.stats.peakVisitedBytes)
                : 0;
        bool gate_ok = !c.standardGate || mem_ratio >= 2.0;
        mem_gate &= gate_ok;

        double speedup_4t =
            threads[0].configsPerSec > 0
                ? threads[2].configsPerSec / threads[0].configsPerSec
                : 0;

        json += "    \"" + c.name + "\": {\n";
        emitMode(&json, "interned", fast, false);
        emitMode(&json, "reference", ref, false);
        json += "      \"threads\": {\n";
        for (size_t ti = 0; ti < 3; ++ti) {
            char tbuf[320];
            std::snprintf(
                tbuf, sizeof tbuf,
                "        \"%zu\": {\"configs\": %zu, "
                "\"seconds\": %.6f, \"configs_per_sec\": %.0f, "
                "\"verdict\": \"%s\", \"steals_attempted\": %zu, "
                "\"steals_succeeded\": %zu}%s\n",
                thread_series[ti],
                threads[ti].report.stats.configsVisited,
                threads[ti].report.stats.seconds,
                threads[ti].configsPerSec,
                checkVerdictName(threads[ti].report.verdict),
                threads[ti].report.stats.stealsAttempted,
                threads[ti].report.stats.stealsSucceeded,
                ti + 1 < 3 ? "," : "");
            json += tbuf;
        }
        json += "      },\n";
        char buf[320];
        std::snprintf(buf, sizeof buf,
                      "      \"verdicts_match\": %s, "
                      "\"speedup_vs_reference\": %.2f, "
                      "\"memory_ratio_vs_reference\": %.2f, "
                      "\"speedup_4t_vs_1t\": %.2f, "
                      "\"standard_gate\": %s\n    }%s\n",
                      match ? "true" : "false", speedup, mem_ratio,
                      speedup_4t, c.standardGate ? "true" : "false",
                      i + 1 < cases.size() ? "," : "");
        json += buf;
    }
    json += "  },\n  \"all_verdicts_match\": ";
    json += all_match ? "true" : "false";
    json += ",\n  \"standard_memory_gate_passed\": ";
    json += mem_gate ? "true" : "false";
    json += "\n}\n";

    std::fputs(json.c_str(), stdout);
    if (out_path) {
        std::FILE *f = std::fopen(out_path, "w");
        if (!f) {
            std::fprintf(stderr, "error: cannot write %s\n", out_path);
            return 2;
        }
        std::fputs(json.c_str(), f);
        std::fclose(f);
    }
    return all_match && mem_gate ? 0 : 1;
}
