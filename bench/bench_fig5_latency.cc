/**
 * @file
 * E5 — Figure 5 reproduction: latency of CXL0 primitives per access
 * category, median over 1000 simulated accesses (the paper's
 * statistic), plus the ratio relations §5.2 reports.
 */

#include <cstdio>

#include "common/rng.hh"
#include "common/stats.hh"
#include "sim/fabric.hh"

using namespace cxl0;
using namespace cxl0::sim;

namespace
{

constexpr int kSamples = 1000;

/**
 * Median latency of one primitive in one category, measured through
 * the fabric exactly as §5.2 configures it: loads start from the
 * invalid state; stores write full lines.
 */
double
measure(AccessCategory cat, MeasuredPrimitive prim)
{
    FabricSim fab(FabricConfig{2, 2, 42});
    AgentKind agent = (cat == AccessCategory::HostToHM ||
                       cat == AccessCategory::HostToHDM)
                          ? AgentKind::Host
                          : AgentKind::Device;
    Addr x = (cat == AccessCategory::HostToHM ||
              cat == AccessCategory::DevToHM)
                 ? 0
                 : 2;
    if (cat == AccessCategory::DevToHDMDevBias)
        fab.setBias(x, BiasMode::DeviceBias);

    Accumulator acc;
    for (int k = 0; k < kSamples; ++k) {
        // Reset to the invalid state for every measurement.
        fab.setLineState(x, CacheState::I, CacheState::I);
        double ns = 0;
        switch (prim) {
          case MeasuredPrimitive::Read:
            ns = fab.read(agent, x);
            break;
          case MeasuredPrimitive::LStore:
            ns = fab.lstore(agent, x, k);
            break;
          case MeasuredPrimitive::RStore:
            ns = fab.rstore(agent, x, k);
            break;
          case MeasuredPrimitive::MStore:
            ns = fab.mstore(agent, x, k);
            break;
          case MeasuredPrimitive::LFlush:
            ns = fab.lflush(agent, x);
            break;
          case MeasuredPrimitive::RFlush:
            ns = fab.rflush(agent, x);
            break;
        }
        acc.add(ns);
    }
    return acc.median();
}

} // namespace

int
main()
{
    std::printf("== E5: Figure 5 — latency of CXL0 primitives "
                "(median of %d) ==\n\n", kSamples);

    const AccessCategory cats[] = {
        AccessCategory::HostToHM, AccessCategory::HostToHDM,
        AccessCategory::DevToHM, AccessCategory::DevToHDMHostBias,
        AccessCategory::DevToHDMDevBias};
    const MeasuredPrimitive prims[] = {
        MeasuredPrimitive::Read,   MeasuredPrimitive::LStore,
        MeasuredPrimitive::RStore, MeasuredPrimitive::MStore,
        MeasuredPrimitive::LFlush, MeasuredPrimitive::RFlush};

    LatencyModel reference;
    TextTable table({"access category", "Read", "LStore", "RStore",
                     "MStore", "LFlush", "RFlush"});
    std::map<std::pair<int, int>, double> medians;
    for (AccessCategory cat : cats) {
        std::vector<std::string> row{accessCategoryName(cat)};
        for (MeasuredPrimitive p : prims) {
            if (!reference.measurable(cat, p)) {
                row.push_back("n/m");
                continue;
            }
            double med = measure(cat, p);
            medians[{static_cast<int>(cat), static_cast<int>(p)}] = med;
            row.push_back(formatDouble(med, 0) + " ns");
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(n/m = not measurable: Table 1's \"???\" rows)\n\n");

    auto med = [&](AccessCategory c, MeasuredPrimitive p) {
        return medians[{static_cast<int>(c), static_cast<int>(p)}];
    };

    struct Claim
    {
        const char *what;
        double got;
        double paper;
    };
    Claim claims[] = {
        {"host remote/local Read ratio (paper: 2.34x)",
         med(AccessCategory::HostToHDM, MeasuredPrimitive::Read) /
             med(AccessCategory::HostToHM, MeasuredPrimitive::Read),
         2.34},
        {"device remote/local Read ratio (paper: 1.94x)",
         med(AccessCategory::DevToHM, MeasuredPrimitive::Read) /
             med(AccessCategory::DevToHDMDevBias,
                 MeasuredPrimitive::Read),
         1.94},
        {"device->HM RStore/LStore ratio (paper: 2.08x)",
         med(AccessCategory::DevToHM, MeasuredPrimitive::RStore) /
             med(AccessCategory::DevToHM, MeasuredPrimitive::LStore),
         2.08},
        {"device->HM MStore/RStore ratio (paper: 1.45x)",
         med(AccessCategory::DevToHM, MeasuredPrimitive::MStore) /
             med(AccessCategory::DevToHM, MeasuredPrimitive::RStore),
         1.45},
        {"device->HM RFlush/MStore ratio (paper: ~1.0x)",
         med(AccessCategory::DevToHM, MeasuredPrimitive::RFlush) /
             med(AccessCategory::DevToHM, MeasuredPrimitive::MStore),
         1.0},
    };

    bool ok = true;
    std::printf("shape checks against the paper's reported ratios:\n");
    for (const Claim &c : claims) {
        bool match = c.got > c.paper * 0.9 && c.got < c.paper * 1.1;
        ok &= match;
        std::printf("  %-48s measured %.2fx  %s\n", c.what, c.got,
                    match ? "ok" : "OUT OF RANGE");
    }
    std::printf("\n%s\n", ok ? "RESULT: latency shape matches Fig. 5"
                             : "RESULT: MISMATCH against Fig. 5");
    return ok ? 0 : 1;
}
