/**
 * @file
 * E-scale — explorer throughput/memory scaling, with JSON output for
 * trajectory tracking (BENCH_*.json).
 *
 * Workload: T threads on T machines, each doing
 *     LStore(x_t, t+1); Load(x_{t+1 mod T}); Load(x_t)
 * with one crash allowed per machine — the crash-enabled configs are
 * where interleaving x tau-placement x crash-placement explodes.
 *
 * For every case seven modes run:
 *   interned           the packed/hash-consed search with the
 *                      ample-set reduction (the default)
 *   interned_tau       same, tau footprint reduction only
 *   interned_noreduce  same, no reduction at all
 *   interned_crashample / interned_sleep / interned_full
 *                      the crash-aware reduction stack (crash-step
 *                      ample, + sleep sets, + crash-budget symmetry)
 *   reference          the deep-copy seed algorithm
 * plus a threads series (numThreads = 1/2/4 over the work-stealing
 * sharded frontier, with per-count steal counters) and a
 * full-reduction thread sweep (numThreads = 1/2/4/8), and the JSON
 * reports configs/sec, peak visited-set bytes, wall-clock seconds
 * and process peak-RSS per reduction mode, outcome counts, a
 * per-case `reduction` series (configs explored under none/tau/
 * ample/crash-ample/sleep/full), interned-vs-reference speedup and
 * memory ratios, and the 4-thread-vs-1-thread throughput ratio.
 * Outcome sets are asserted identical across every reduction mode
 * *and* every thread count before anything is reported — the exit
 * status is the drift gate CI relies on.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

#include "check/explorer.hh"
#include "check/litmus.hh"
#include "common/spill.hh"
#include "obs/progress.hh"
#include "obs/telemetry.hh"

using namespace cxl0;
using namespace cxl0::check;
using model::Cxl0Model;
using model::Op;
using model::SystemConfig;

namespace
{

struct Case
{
    std::string name;
    SystemConfig config;
    Program program;
    ExploreOptions options;
};

Case
ringCase(size_t threads, int crashes, bool heavy = false)
{
    Case c{std::to_string(threads) + "threads" +
               (crashes ? "_crash" : "_nocrash") +
               (heavy ? "_heavy" : ""),
           SystemConfig::uniform(threads, 1, true), Program{},
           ExploreOptions{}};
    for (size_t t = 0; t < threads; ++t) {
        Addr own = static_cast<Addr>(t);
        Addr next = static_cast<Addr>((t + 1) % threads);
        std::vector<ProgInstr> code{
            ProgInstr::store(Op::LStore, own,
                             Operand::immediate(
                                 static_cast<Value>(t + 1))),
            ProgInstr::load(next, 0), ProgInstr::load(own, 1)};
        if (heavy) {
            code.push_back(ProgInstr::store(
                Op::LStore, next, Operand::regRef(1)));
            code.push_back(ProgInstr::load(next, 2));
        }
        c.program.threads.push_back(
            {static_cast<NodeId>(t), std::move(code)});
    }
    c.options.maxCrashesPerNode = crashes;
    return c;
}

struct ModeResult
{
    ExploreResult res;
    double configsPerSec = 0;
    size_t peakRssKb = 0;
};

/** Process high-water RSS in KiB. Monotone across the process
 *  lifetime, so per-mode readings record the watermark *after* that
 *  mode ran — comparable across trajectory runs that keep the mode
 *  order fixed. */
size_t
peakRssKb()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<size_t>(ru.ru_maxrss);
}

ModeResult
run(const Cxl0Model &model, const Case &c, Reduction red,
    bool reference, size_t num_threads = 1, int reps = 5)
{
    ExploreOptions opts = c.options;
    opts.reduction = red;
    opts.numThreads = num_threads;
    Explorer ex(model, c.program, opts);
    // Best of N: exploration is deterministic, so the fastest run
    // is the least-perturbed one and tracks best across machines.
    ModeResult m;
    for (int rep = 0; rep < reps; ++rep) {
        ExploreResult r = reference ? ex.exploreReference()
                                    : ex.explore();
        if (rep == 0 || r.stats.seconds < m.res.stats.seconds)
            m.res = std::move(r);
    }
    double sec = m.res.stats.seconds > 0 ? m.res.stats.seconds : 1e-9;
    m.configsPerSec =
        static_cast<double>(m.res.stats.configsVisited) / sec;
    m.peakRssKb = peakRssKb();
    return m;
}

/** One phase of the out-of-core RSS gate: a sampled-RSS run. */
struct OocPhase
{
    ExploreResult res;
    uint64_t peakRssBytes = 0;
    std::vector<obs::ProgressSampler::RssSample> rss;
};

/**
 * Run the case under its own high-frequency RSS sampler. Unlike the
 * per-mode getrusage watermark (monotone over the process), the
 * sampled series is phase-local, which is what makes a
 * spilled-vs-in-memory comparison meaningful at all — and why the
 * out-of-core section must run before every other mode inflates the
 * heap.
 */
OocPhase
sampledRun(const Case &c, size_t budget, size_t num_threads,
           const OutOfCoreOptions *ooc)
{
    obs::Telemetry tel;
    obs::ProgressOptions popt;
    popt.intervalMs = 2;
    obs::ProgressSampler sampler(tel, popt);
    sampler.start();

    ExploreOptions opts = c.options;
    opts.reduction = Reduction::None;
    opts.numThreads = num_threads;
    opts.maxConfigs = budget;
    Cxl0Model model(c.config);
    OocPhase p;
    p.res = Explorer(model, c.program, opts).check(nullptr, ooc);

    sampler.stop();
    p.rss = sampler.rssSamples();
    p.peakRssBytes = sampler.peakRssBytes();
    uint64_t now = obs::currentRssBytes();
    if (now > p.peakRssBytes)
        p.peakRssBytes = now;
    return p;
}

void
emitMode(std::string *out, const char *mode, const ModeResult &m,
         bool last)
{
    char buf[768];
    std::snprintf(
        buf, sizeof buf,
        "      \"%s\": {\"configs\": %zu, \"seconds\": %.6f, "
        "\"wall_ms\": %.3f, "
        "\"configs_per_sec\": %.0f, \"peak_visited_bytes\": %zu, "
        "\"peak_rss_kb\": %zu, "
        "\"outcomes\": %zu, \"tau_skipped\": %zu, "
        "\"ample_skipped\": %zu, \"crash_ample_skipped\": %zu, "
        "\"sleep_set_skipped\": %zu, \"symmetry_merged\": %zu, "
        "\"truncated\": %s}%s\n",
        mode, m.res.stats.configsVisited, m.res.stats.seconds,
        m.res.wallMs,
        m.configsPerSec, m.res.stats.peakVisitedBytes, m.peakRssKb,
        m.res.outcomes.size(), m.res.stats.tauMovesSkipped,
        m.res.stats.ampleSkipped, m.res.stats.crashAmpleSkipped,
        m.res.stats.sleepSetSkipped, m.res.stats.symmetryMerged,
        m.res.truncated ? "true" : "false", last ? "" : ",");
    *out += buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = nullptr;
    const char *rss_out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --out requires a path\n");
                return 2;
            }
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--rss-out") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --rss-out requires a path\n");
                return 2;
            }
            rss_out_path = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--out <json-path>] "
                "[--rss-out <rss-series-json-path>]\n",
                argv[0]);
            return 2;
        }
    }

    // ---- Out-of-core gate -------------------------------------------
    // crash_heavy at a 10x config budget with spilling enabled must
    // hold its sampled peak RSS within 1.5x of the in-memory 1x run:
    // the frontier's cold end lives in (unlinked) spill files and the
    // interning segments in shed-able file-backed mappings, so a 10x
    // larger search must not cost 10x the resident footprint. Runs
    // FIRST: both phases sample live RSS, and every later mode only
    // inflates the heap they would inherit.
    // 1x sized so real search data dominates the fixed process
    // footprint in both phases: at smaller budgets the ratio mostly
    // measured allocator noise on a few-MB baseline and flapped
    // around the gate.
    const Case ooc_case = ringCase(3, 1, true);
    const size_t ooc_budget_1x = 50000;
    OocPhase ooc_base = sampledRun(ooc_case, ooc_budget_1x, 2, nullptr);
    OocPhase ooc_spilled;
    {
        const std::string spill_dir =
            "/tmp/cxl0-bench-spill-" + std::to_string(::getpid());
        ensureDir(spill_dir);
        // Arena scope spans the whole run: the tables' segments map
        // through it and must not outlive it.
        ScopedSpillArena arena(spill_dir);
        OutOfCoreOptions ooc;
        ooc.spillDir = spill_dir;
        // Deliberately tiny: the gate wants the spill path exercised,
        // not merely available. The visited budget rides the clamp
        // floor (one 256 KiB hot table per shard), so most of the
        // visited set lives in cold pread-probed runs.
        ooc.frontierSpillBudgetBytes = 1u << 14;
        ooc.visitedSpillBudgetBytes = 1u << 14;
        ooc_spilled =
            sampledRun(ooc_case, 10 * ooc_budget_1x, 2, &ooc);
        ::rmdir(spill_dir.c_str()); // files are unlinked-at-create
    }
    const double ooc_ratio =
        ooc_base.peakRssBytes > 0
            ? static_cast<double>(ooc_spilled.peakRssBytes) /
                  static_cast<double>(ooc_base.peakRssBytes)
            : 0.0;
    const bool ooc_spill_engaged =
        ooc_spilled.res.stats.spilledConfigs > 0;
    const bool ooc_gate = ooc_spill_engaged && ooc_ratio > 0.0 &&
                          ooc_ratio <= 1.5;

    std::vector<Case> cases{ringCase(2, 1), ringCase(3, 0),
                            ringCase(3, 1), ringCase(3, 1, true)};
    for (const LitmusProgram &lp : explorerPrograms()) {
        Case c{std::string("litmus_") + std::to_string(lp.id),
               lp.config, lp.program, lp.options};
        cases.push_back(std::move(c));
    }

    // A live RSS high-water series over the whole bench run: the
    // sampler thread ticks while the modes execute, and the summary
    // gates on having actually captured samples — a regression here
    // means the observability layer silently stopped observing.
    obs::Telemetry tel;
    const obs::ScopedTelemetry scope(&tel);
    obs::ProgressOptions popt;
    popt.intervalMs = 50;
    obs::ProgressSampler sampler(tel, popt);
    sampler.start();

    std::string json = "{\n  \"bench\": \"explorer_scaling\",\n"
                       "  \"cases\": {\n";
    bool all_match = true;
    for (size_t i = 0; i < cases.size(); ++i) {
        const Case &c = cases[i];
        Cxl0Model model(c.config);
        ModeResult fast = run(model, c, Reduction::Ample, false);
        ModeResult tau = run(model, c, Reduction::Tau, false);
        ModeResult noreduce = run(model, c, Reduction::None, false);
        ModeResult crashample =
            run(model, c, Reduction::CrashAmple, false);
        ModeResult sleep = run(model, c, Reduction::Sleep, false);
        ModeResult full = run(model, c, Reduction::Full, false);
        ModeResult ref = run(model, c, Reduction::None, true);
        // Threads series over the work-stealing sharded frontier:
        // the 1-thread entry is the sequential search `fast` already
        // measured, 2/4 exercise cross-shard handoff and stealing.
        // Outcome sets must not move.
        const size_t thread_series[] = {1, 2, 4};
        ModeResult threads[3];
        threads[0] = fast;
        bool threads_match = true;
        for (size_t ti = 1; ti < 3; ++ti) {
            threads[ti] = run(model, c, Reduction::Ample, false,
                              thread_series[ti]);
            threads_match &= !threads[ti].res.truncated &&
                             threads[ti].res.outcomes ==
                                 fast.res.outcomes;
        }

        // The crash-aware stack must also be schedule-invariant:
        // the full reduction re-runs at 1/2/4/8 workers and every
        // outcome set must stay put (single rep — the counts are
        // deterministic, only the gate matters here).
        bool full_threads_match = true;
        for (size_t nt : {size_t{2}, size_t{4}, size_t{8}}) {
            ModeResult ft =
                run(model, c, Reduction::Full, false, nt, 1);
            // Unique-config count (configsInterned) is the
            // deterministic metric; per-pop configsVisited can
            // jitter under sleep-word re-expansion.
            full_threads_match &=
                !ft.res.truncated &&
                ft.res.outcomes == full.res.outcomes &&
                ft.res.stats.configsInterned ==
                    full.res.stats.configsInterned;
        }

        // The drift gate: every reduction mode and every thread
        // count must reproduce the reference outcome set exactly.
        bool match = !fast.res.truncated && !tau.res.truncated &&
                     !noreduce.res.truncated && !ref.res.truncated &&
                     !crashample.res.truncated &&
                     !sleep.res.truncated && !full.res.truncated &&
                     threads_match && full_threads_match &&
                     fast.res.outcomes == ref.res.outcomes &&
                     tau.res.outcomes == ref.res.outcomes &&
                     noreduce.res.outcomes == ref.res.outcomes &&
                     crashample.res.outcomes == ref.res.outcomes &&
                     sleep.res.outcomes == ref.res.outcomes &&
                     full.res.outcomes == ref.res.outcomes;
        all_match &= match;

        double speedup = ref.res.stats.seconds > 0
                             ? ref.res.stats.seconds /
                                   (fast.res.stats.seconds > 0
                                        ? fast.res.stats.seconds
                                        : 1e-9)
                             : 0;
        double mem_ratio =
            fast.res.stats.peakVisitedBytes > 0
                ? static_cast<double>(ref.res.stats.peakVisitedBytes) /
                      static_cast<double>(
                          fast.res.stats.peakVisitedBytes)
                : 0;

        double speedup_4t =
            threads[0].configsPerSec > 0
                ? threads[2].configsPerSec / threads[0].configsPerSec
                : 0;

        json += "    \"" + c.name + "\": {\n";
        emitMode(&json, "interned", fast, false);
        emitMode(&json, "interned_tau", tau, false);
        emitMode(&json, "interned_noreduce", noreduce, false);
        emitMode(&json, "interned_crashample", crashample, false);
        emitMode(&json, "interned_sleep", sleep, false);
        emitMode(&json, "interned_full", full, false);
        emitMode(&json, "reference", ref, false);
        // The reduction series: configs each mode had to explore for
        // the same outcome set (the trajectory metric the reduction
        // stack moves), plus per-mode wall-clock and peak RSS.
        {
            char rbuf[1024];
            std::snprintf(
                rbuf, sizeof rbuf,
                "      \"reduction\": {\"none\": %zu, \"tau\": %zu, "
                "\"ample\": %zu, \"crash_ample\": %zu, "
                "\"sleep\": %zu, \"full\": %zu, "
                "\"outcomes_equal\": %s,\n"
                "        \"timing\": {"
                "\"none\": {\"seconds\": %.6f, \"peak_rss_kb\": %zu}, "
                "\"ample\": {\"seconds\": %.6f, \"peak_rss_kb\": %zu}, "
                "\"crash_ample\": {\"seconds\": %.6f, "
                "\"peak_rss_kb\": %zu}, "
                "\"sleep\": {\"seconds\": %.6f, \"peak_rss_kb\": %zu}, "
                "\"full\": {\"seconds\": %.6f, "
                "\"peak_rss_kb\": %zu}}},\n",
                noreduce.res.stats.configsInterned,
                tau.res.stats.configsInterned,
                fast.res.stats.configsInterned,
                crashample.res.stats.configsInterned,
                sleep.res.stats.configsInterned,
                full.res.stats.configsInterned,
                match ? "true" : "false",
                noreduce.res.stats.seconds, noreduce.peakRssKb,
                fast.res.stats.seconds, fast.peakRssKb,
                crashample.res.stats.seconds, crashample.peakRssKb,
                sleep.res.stats.seconds, sleep.peakRssKb,
                full.res.stats.seconds, full.peakRssKb);
            json += rbuf;
        }
        json += "      \"threads\": {\n";
        for (size_t ti = 0; ti < 3; ++ti) {
            char tbuf[320];
            std::snprintf(
                tbuf, sizeof tbuf,
                "        \"%zu\": {\"configs\": %zu, "
                "\"seconds\": %.6f, \"configs_per_sec\": %.0f, "
                "\"outcomes\": %zu, \"steals_attempted\": %zu, "
                "\"steals_succeeded\": %zu}%s\n",
                thread_series[ti],
                threads[ti].res.stats.configsVisited,
                threads[ti].res.stats.seconds,
                threads[ti].configsPerSec,
                threads[ti].res.outcomes.size(),
                threads[ti].res.stats.stealsAttempted,
                threads[ti].res.stats.stealsSucceeded,
                ti + 1 < 3 ? "," : "");
            json += tbuf;
        }
        json += "      },\n";
        char buf[320];
        std::snprintf(buf, sizeof buf,
                      "      \"outcomes_match\": %s, "
                      "\"speedup_vs_reference\": %.2f, "
                      "\"memory_ratio_vs_reference\": %.2f, "
                      "\"speedup_4t_vs_1t\": %.2f\n    }%s\n",
                      match ? "true" : "false", speedup, mem_ratio,
                      speedup_4t, i + 1 < cases.size() ? "," : "");
        json += buf;
    }
    sampler.stop();
    const std::vector<obs::ProgressSampler::RssSample> &rss =
        sampler.rssSamples();
    // The RSS gate: the sampler must have ticked at least once and
    // seen a live process footprint. Folded into the exit status so
    // CI catches a sampler that never ran.
    bool rss_gate =
        !rss.empty() && sampler.peakRssBytes() > 0;
    {
        char rbuf[256];
        std::snprintf(rbuf, sizeof rbuf,
                      "  },\n  \"peak_rss_samples\": %zu,\n"
                      "  \"sampled_peak_rss_kb\": %zu,\n"
                      "  \"rss_gate\": %s,\n",
                      rss.size(),
                      static_cast<size_t>(sampler.peakRssBytes() /
                                          1024),
                      rss_gate ? "true" : "false");
        json += rbuf;
    }
    {
        char obuf[1024];
        std::snprintf(
            obuf, sizeof obuf,
            "  \"out_of_core\": {\n"
            "    \"base\": {\"max_configs\": %zu, \"configs\": %zu, "
            "\"outcomes\": %zu, \"truncated\": %s, "
            "\"peak_rss_kb\": %zu},\n"
            "    \"spilled\": {\"max_configs\": %zu, "
            "\"configs\": %zu, \"outcomes\": %zu, \"truncated\": %s, "
            "\"peak_rss_kb\": %zu, \"spilled_configs\": %zu, "
            "\"spill_bytes\": %zu, \"inbox_batches\": %zu, "
            "\"states_interned\": %zu, \"table_bytes\": %zu, "
            "\"peak_visited_bytes\": %zu},\n"
            "    \"rss_ratio\": %.3f, \"spill_engaged\": %s, "
            "\"rss_gate_ooc\": %s},\n",
            ooc_budget_1x, ooc_base.res.stats.configsVisited,
            ooc_base.res.outcomes.size(),
            ooc_base.res.truncated ? "true" : "false",
            static_cast<size_t>(ooc_base.peakRssBytes / 1024),
            10 * ooc_budget_1x, ooc_spilled.res.stats.configsVisited,
            ooc_spilled.res.outcomes.size(),
            ooc_spilled.res.truncated ? "true" : "false",
            static_cast<size_t>(ooc_spilled.peakRssBytes / 1024),
            ooc_spilled.res.stats.spilledConfigs,
            ooc_spilled.res.stats.spillBytes,
            ooc_spilled.res.stats.inboxBatches,
            ooc_spilled.res.stats.statesInterned,
            ooc_spilled.res.stats.tableBytes,
            ooc_spilled.res.stats.peakVisitedBytes,
            ooc_ratio, ooc_spill_engaged ? "true" : "false",
            ooc_gate ? "true" : "false");
        json += obuf;
    }
    json += "  \"all_outcomes_match\": ";
    json += all_match ? "true" : "false";
    json += "\n}\n";

    std::fputs(json.c_str(), stdout);
    if (out_path) {
        std::FILE *f = std::fopen(out_path, "w");
        if (!f) {
            std::fprintf(stderr, "error: cannot write %s\n", out_path);
            return 2;
        }
        std::fputs(json.c_str(), f);
        std::fclose(f);
    }
    if (rss_out_path) {
        // The per-phase RSS series of the out-of-core gate, as a CI
        // artifact: each point is (ms into the phase, resident
        // bytes), base then spilled.
        std::string series =
            "{\n  \"bench\": \"explorer_scaling_rss\",\n";
        auto emitSeries =
            [&](const char *name,
                const std::vector<obs::ProgressSampler::RssSample>
                    &samples,
                bool last) {
                series += std::string("  \"") + name + "\": [";
                for (size_t si = 0; si < samples.size(); ++si) {
                    char sbuf[96];
                    std::snprintf(
                        sbuf, sizeof sbuf,
                        "%s{\"t_ms\": %llu, \"rss_bytes\": %llu}",
                        si ? ", " : "",
                        static_cast<unsigned long long>(
                            samples[si].tMs),
                        static_cast<unsigned long long>(
                            samples[si].rssBytes));
                    series += sbuf;
                }
                series += last ? "]\n" : "],\n";
            };
        emitSeries("base", ooc_base.rss, false);
        emitSeries("spilled", ooc_spilled.rss, true);
        series += "}\n";
        std::FILE *f = std::fopen(rss_out_path, "w");
        if (!f) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         rss_out_path);
            return 2;
        }
        std::fputs(series.c_str(), f);
        std::fclose(f);
    }
    if (!ooc_gate)
        std::fprintf(stderr,
                     "FAIL: out-of-core RSS gate (ratio %.3f, spill "
                     "engaged: %s)\n",
                     ooc_ratio, ooc_spill_engaged ? "yes" : "no");
    return all_match && rss_gate && ooc_gate ? 0 : 1;
}
