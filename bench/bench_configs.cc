/**
 * @file
 * E9 — §4's system-model variations: the primitive-availability matrix
 * per deployment stage, and the check that every restricted
 * configuration stays within general CXL0 (bounded refinement).
 */

#include <cstdio>

#include "check/refinement.hh"
#include "common/stats.hh"
#include "model/topology.hh"

using namespace cxl0;
using namespace cxl0::model;

namespace
{

std::string
availability(const Restrictions &r, NodeId node)
{
    const Op all[] = {Op::Load,   Op::LStore, Op::RStore, Op::MStore,
                      Op::LFlush, Op::RFlush, Op::Gpf,    Op::LRmw,
                      Op::RRmw,   Op::MRmw};
    std::string out;
    for (Op op : all) {
        if (r.allows(node, op)) {
            if (!out.empty())
                out += " ";
            out += opName(op);
        }
    }
    return out.empty() ? "(none)" : out;
}

} // namespace

int
main()
{
    std::printf("== E9: §4 system-model variations ==\n\n");

    TextTable table({"configuration", "node", "available primitives"});

    {
        Cxl0Model m =
            makeHostDevicePair(SystemConfig::uniform(2, 1, true));
        table.addRow({"host-device pair", "host (0)",
                      availability(m.restrictions(), 0)});
        table.addRow({"", "device (1)",
                      availability(m.restrictions(), 1)});
    }
    {
        Cxl0Model m = makePartitionedPool(2, 1);
        table.addRow({"partitioned pool", "host (each)",
                      availability(m.restrictions(), 0)});
    }
    {
        Cxl0Model m = makeSharedPool(2, 1, true);
        table.addRow({"shared pool (coherent)", "host (each)",
                      availability(m.restrictions(), 0)});
    }
    {
        Cxl0Model m = makeSharedPool(2, 1, false);
        table.addRow({"shared pool (non-coherent bypass)", "host (each)",
                      availability(m.restrictions(), 0)});
    }
    std::printf("%s\n", table.render().c_str());

    // Every restricted configuration refines the general model over
    // the same shape (the paper's "CXL0 captures each setting").
    std::printf("refinement against general CXL0:\n");
    bool ok = true;

    auto check_refines = [&ok](const char *name, const Cxl0Model &m) {
        Cxl0Model general(m.config());
        check::Alphabet a;
        a.ops = {Op::Load, Op::LStore, Op::MStore, Op::RFlush,
                 Op::Crash};
        a.values = {0, 1};
        a.maxCrashesPerNode = 1;
        auto r = check::checkRefinement(general, m, 3, a);
        ok &= r.refines;
        std::printf("  %-34s : %s\n", name,
                    r.refines ? "refines CXL0" : r.describe().c_str());
    };

    check_refines("host-device pair",
                  makeHostDevicePair(SystemConfig::uniform(2, 1, true)));
    check_refines("partitioned pool", makePartitionedPool(2, 1));
    check_refines("shared pool (coherent)", makeSharedPool(2, 1, true));
    check_refines("shared pool (bypass)", makeSharedPool(2, 1, false));

    // The partitioned pool survives host crashes (external failure
    // domain), unlike a plain volatile machine.
    Cxl0Model pool = makePartitionedPool(1, 1);
    State s = pool.initialState();
    auto stored = pool.apply(s, Label::mstore(0, 0, 7));
    bool pool_durable =
        stored && pool.applyCrash(*stored, 0).memory(0) == 7;
    ok &= pool_durable;
    std::printf("  %-34s : %s\n", "pool survives host crash",
                pool_durable ? "yes" : "NO");

    std::printf("\n%s\n", ok ? "RESULT: matches §4"
                             : "RESULT: MISMATCH");
    return ok ? 0 : 1;
}
