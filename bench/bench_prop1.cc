/**
 * @file
 * E3 — Proposition 1 reproduction: exhaustive checking of all eight
 * simulation statements over bounded systems (the paper proves these
 * in Rocq; we verify them by finite-state exhaustion).
 */

#include <chrono>
#include <cstdio>

#include "check/simulation.hh"
#include "common/stats.hh"

using namespace cxl0;
using namespace cxl0::check;
using model::MachineConfig;
using model::ModelVariant;
using model::SystemConfig;

int
main()
{
    std::printf("== E3: Proposition 1, exhaustively checked ==\n\n");

    struct Case
    {
        const char *name;
        SystemConfig cfg;
        ModelVariant variant;
    };
    Case cases[] = {
        {"2 machines, 1 addr each, NV",
         SystemConfig::uniform(2, 1, true), ModelVariant::Base},
        {"2 machines, 1 addr each, volatile",
         SystemConfig::uniform(2, 1, false), ModelVariant::Base},
        {"3 machines, single shared addr",
         SystemConfig({MachineConfig{true}, MachineConfig{true},
                       MachineConfig{true}},
                      {2}),
         ModelVariant::Base},
        {"2 machines, 2 addrs on one owner",
         SystemConfig({MachineConfig{true}, MachineConfig{true}},
                      {0, 0}),
         ModelVariant::Base},
        {"PSN variant", SystemConfig::uniform(2, 1, true),
         ModelVariant::Psn},
        {"LWB variant", SystemConfig::uniform(2, 1, true),
         ModelVariant::Lwb},
    };

    TextTable table({"system", "variant", "states", "result", "ms"});
    bool all_hold = true;
    for (const Case &c : cases) {
        auto states = enumerateStates(c.cfg, 1);
        auto start = std::chrono::steady_clock::now();
        SimulationResult r = checkProp1(c.cfg, c.variant, 1);
        auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        all_hold &= r.holds;
        table.addRow({c.name, model::variantName(c.variant),
                      std::to_string(states.size()),
                      r.holds ? "holds" : "VIOLATED",
                      std::to_string(ms)});
        if (!r.holds)
            std::printf("counterexample: %s\n", r.counterexample.c_str());
    }
    std::printf("%s\n", table.render().c_str());

    // Items list, for the record.
    std::printf("checked statements:\n");
    for (const Prop1Item &item : prop1Items(0, 1, 0, 0, 1))
        std::printf("  (%d) %s\n", item.number, item.name.c_str());

    std::printf("\n%s\n",
                all_hold ? "RESULT: Proposition 1 holds in all cases"
                         : "RESULT: VIOLATION found");
    return all_hold ? 0 : 1;
}
