/**
 * @file
 * E4 — Table 1 reproduction: observable CXL transactions for every
 * CXL0 primitive, from both agents, to both memory targets, across
 * every reachable MESI state pair, captured by the simulated protocol
 * analyzer.
 */

#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "common/stats.hh"
#include "sim/fabric.hh"

using namespace cxl0;
using namespace cxl0::sim;

namespace
{

const CacheState kStates[] = {CacheState::M, CacheState::E,
                              CacheState::S, CacheState::I};

bool
legalPair(CacheState h, CacheState d)
{
    bool hw = h == CacheState::M || h == CacheState::E;
    bool dw = d == CacheState::M || d == CacheState::E;
    return !(hw && d != CacheState::I) && !(dw && h != CacheState::I);
}

using OpFn = double (FabricSim::*)(AgentKind, Addr, Value);
using FlushFn = double (FabricSim::*)(AgentKind, Addr);

/** Run one primitive from a prepared state; return the capture. */
std::string
capture(AgentKind agent, MemKind target, const std::string &prim,
        CacheState h, CacheState d)
{
    MeasuredPrimitive mp =
        prim == "Read"     ? MeasuredPrimitive::Read
        : prim == "LStore" ? MeasuredPrimitive::LStore
        : prim == "RStore" ? MeasuredPrimitive::RStore
        : prim == "MStore" ? MeasuredPrimitive::MStore
        : prim == "LFlush" ? MeasuredPrimitive::LFlush
                           : MeasuredPrimitive::RFlush;
    if (!FabricSim::primitiveAvailable(agent, mp))
        return "???"; // not generatable (§5.1)
    FabricSim fab(FabricConfig{2, 2, 1});
    Addr x = target == MemKind::HM ? 0 : 2;
    fab.setLineState(x, h, d);
    fab.analyzer().clear();
    try {
        if (prim == "Read")
            fab.read(agent, x);
        else if (prim == "LStore")
            fab.lstore(agent, x, 1);
        else if (prim == "RStore")
            fab.rstore(agent, x, 1);
        else if (prim == "MStore")
            fab.mstore(agent, x, 1);
        else if (prim == "LFlush")
            fab.lflush(agent, x);
        else if (prim == "RFlush")
            fab.rflush(agent, x);
    } catch (const std::invalid_argument &) {
        return "???"; // not generatable (§5.1)
    }
    return fab.analyzer().describe();
}

/** Aggregate distinct captures over all legal state pairs. */
std::string
sweep(AgentKind agent, MemKind target, const std::string &prim)
{
    std::set<std::string> seen;
    for (CacheState h : kStates) {
        for (CacheState d : kStates) {
            if (!legalPair(h, d))
                continue;
            seen.insert(capture(agent, target, prim, h, d));
        }
    }
    if (seen.count("???"))
        return "???";
    std::string out;
    for (const std::string &s : seen)
        out += (out.empty() ? "" : ", ") + s;
    return out;
}

} // namespace

int
main()
{
    std::printf("== E4: Table 1 — observable CXL transactions per "
                "CXL0 primitive ==\n\n");

    const char *prims[] = {"Read",   "LStore", "RStore",
                           "MStore", "LFlush", "RFlush"};

    for (AgentKind agent : {AgentKind::Host, AgentKind::Device}) {
        TextTable table({"CXL0 primitive", "to HM",
                         "to HDM in Host-Bias"});
        for (const char *prim : prims) {
            table.addRow({prim, sweep(agent, MemKind::HM, prim),
                          sweep(agent, MemKind::HDM, prim)});
        }
        std::printf("%s node:\n%s\n", agentName(agent),
                    table.render().c_str());
    }

    // Per-state detail for one representative row (device MStore to
    // HM), showing the many-to-one mapping the paper highlights.
    std::printf("detail: Device MStore to HM by (host,device) state:\n");
    TextTable detail({"(host,dev)", "observed transactions"});
    for (CacheState h : kStates) {
        for (CacheState d : kStates) {
            if (!legalPair(h, d))
                continue;
            std::string pair = std::string("(") + cacheStateName(h) +
                               "," + cacheStateName(d) + ")";
            detail.addRow({pair, capture(AgentKind::Device, MemKind::HM,
                                         "MStore", h, d)});
        }
    }
    std::printf("%s\n", detail.render().c_str());

    // Sanity assertions mirroring the paper's headline findings.
    bool ok = true;
    ok &= sweep(AgentKind::Host, MemKind::HM, "RStore") == "???";
    ok &= sweep(AgentKind::Host, MemKind::HM, "LFlush") == "???";
    ok &= sweep(AgentKind::Device, MemKind::HM, "LFlush") == "???";
    ok &= sweep(AgentKind::Device, MemKind::HM, "RStore")
              .find("ItoMWr") != std::string::npos;
    ok &= sweep(AgentKind::Host, MemKind::HDM, "MStore")
              .find("MemWr") != std::string::npos;
    std::printf("%s\n", ok ? "RESULT: mapping matches Table 1"
                           : "RESULT: MISMATCH against Table 1");
    return ok ? 0 : 1;
}
