/**
 * @file
 * E6 — §6's motivating example: x=1; r1=x; r2=x; assert(r1==r2) run
 * through the exhaustive program explorer, with the remote owner of x
 * allowed to crash. The paper marks the program with a cross (the
 * assertion can fail); the MStore repair forecloses it.
 */

#include <cstdio>

#include "check/explorer.hh"
#include "common/stats.hh"

using namespace cxl0;
using namespace cxl0::check;
using model::Op;

namespace
{

struct Variant
{
    const char *name;
    Op storeFlavour;
    bool expectViolation;
};

bool
runVariant(const Variant &v, size_t *outcomes, size_t *violations)
{
    model::SystemConfig cfg =
        model::SystemConfig::uniform(2, 1, true); // x on node 0 ("M2")
    model::Cxl0Model m(cfg);
    Program p;
    p.threads.push_back(
        {1,
         {ProgInstr::store(v.storeFlavour, 0, Operand::immediate(1)),
          ProgInstr::load(0, 0), ProgInstr::load(0, 1)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0};
    auto result = Explorer(m, p, opts).explore();
    if (result.truncated) {
        std::fprintf(stderr,
                     "error: exploration truncated; results would "
                     "undercount outcomes\n");
        return false;
    }
    const auto &set = result.outcomes;
    *outcomes = set.size();
    *violations = 0;
    for (const Outcome &o : set)
        if (o.regs[0][0] != o.regs[0][1])
            ++*violations;
    return (*violations > 0) == v.expectViolation;
}

} // namespace

int
main()
{
    std::printf("== E6: motivating example (§6) — x=1; r1=x; r2=x; "
                "assert(r1==r2) ==\n");
    std::printf("x lives on machine M2; M2 may crash once.\n\n");

    Variant variants[] = {
        {"LStore (the paper's program)", Op::LStore, true},
        {"RStore", Op::RStore, true},
        {"MStore (the repair)", Op::MStore, false},
    };

    TextTable table({"store used for x=1", "final outcomes",
                     "assertion-violating", "paper"});
    bool ok = true;
    for (const Variant &v : variants) {
        size_t outcomes = 0, violations = 0;
        ok &= runVariant(v, &outcomes, &violations);
        table.addRow({v.name, std::to_string(outcomes),
                      std::to_string(violations),
                      v.expectViolation ? "can fail (x)"
                                        : "cannot fail"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n", ok ? "RESULT: matches §6's analysis"
                           : "RESULT: MISMATCH");
    return ok ? 0 : 1;
}
