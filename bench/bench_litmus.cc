/**
 * @file
 * E1 — Figure 3 reproduction: litmus tests 1-9 plus §6's test 13.
 *
 * Prints each serialized trace with the verdict computed by the trace
 * checker next to the paper's verdict, and exits non-zero on any
 * mismatch.
 */

#include <cstdio>

#include "check/litmus.hh"
#include "common/stats.hh"

using namespace cxl0;
using namespace cxl0::check;

int
main()
{
    std::printf("== E1: Figure 3 litmus tests (base model CXL0) ==\n\n");

    TextTable table({"#", "trace", "paper", "reproduced", "match"});
    bool all_match = true;

    std::vector<LitmusTest> tests = figure3Tests();
    tests.push_back(motivatingExample());

    for (const LitmusTest &t : tests) {
        Verdict got = runLitmus(t, model::ModelVariant::Base);
        bool match = got == t.expectBase;
        all_match &= match;
        table.addRow({std::to_string(t.id),
                      model::describeTrace(t.trace),
                      verdictName(t.expectBase), verdictName(got),
                      match ? "yes" : "NO"});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("lessons:\n");
    for (const LitmusTest &t : tests)
        std::printf("  %2d: %s\n", t.id, t.lesson.c_str());

    // Beyond-paper litmus tests (ids 14-19): our extensions, verdicts
    // derived from the semantics and locked as regression oracles.
    std::printf("\nextended litmus tests (beyond the paper):\n\n");
    TextTable extra({"#", "trace", "verdict", "stable"});
    for (const LitmusTest &t : extendedTests()) {
        Verdict got = runLitmus(t, model::ModelVariant::Base);
        bool match = got == t.expectBase;
        all_match &= match;
        extra.addRow({std::to_string(t.id),
                      model::describeTrace(t.trace), verdictName(got),
                      match ? "yes" : "NO"});
    }
    std::printf("%s\n", extra.render().c_str());

    std::printf("\n%s\n", all_match
                              ? "RESULT: all verdicts match the paper"
                              : "RESULT: MISMATCH against the paper");
    return all_match ? 0 : 1;
}
