/**
 * @file
 * E8 — ablation of the persistence strategies of §6.1 with
 * google-benchmark. Wall-clock time on the emulation host is
 * meaningless for CXL behaviour, so each benchmark also reports the
 * *simulated* nanoseconds per operation charged by the runtime's
 * calibrated cost model, plus the number of explicit flushes — the
 * quantities §6.1's performance discussion is about:
 *
 *   none < flit-cxl0-addropt <= flit-cxl0 < persist-all
 *
 * (flit-original is cheaper than flit-cxl0 but unsound; see E7.)
 */

#include <benchmark/benchmark.h>

#include "ds/kv.hh"
#include "ds/map.hh"
#include "ds/queue.hh"
#include "ds/stack.hh"
#include "flit/flit.hh"

using namespace cxl0;
using flit::PersistMode;

namespace
{

constexpr size_t kCells = 1 << 20;

PersistMode
modeOf(int64_t idx)
{
    switch (idx) {
      case 0: return PersistMode::None;
      case 1: return PersistMode::FlitCxl0;
      case 2: return PersistMode::FlitCxl0AddrOpt;
      case 3: return PersistMode::FlitOriginal;
      case 4: return PersistMode::PersistAll;
      case 5: return PersistMode::FlitAsync;
      default: return PersistMode::FlitVerified;
    }
}

runtime::CxlSystem
makeSystem()
{
    runtime::SystemOptions o(
        model::SystemConfig::uniform(2, kCells, true));
    o.policy = runtime::PropagationPolicy::Random;
    o.evictionChancePct = 10;
    o.seed = 12345;
    return runtime::CxlSystem(std::move(o));
}

void
reportSim(benchmark::State &state, const runtime::CxlSystem &sys,
          const flit::FlitRuntime &rt)
{
    double ops = static_cast<double>(state.iterations());
    if (ops <= 0)
        return;
    state.counters["sim_ns_per_op"] = sys.clockNs() / ops;
    state.counters["flushes_per_op"] =
        static_cast<double>(rt.flushCount()) / ops;
    state.SetLabel(flit::persistModeName(rt.mode()));
}

void
BM_StackPushPop(benchmark::State &state)
{
    runtime::CxlSystem sys = makeSystem();
    flit::FlitRuntime rt(sys, modeOf(state.range(0)));
    ds::TreiberStack stack(rt, 0);
    // Writer runs on the non-owner machine: the paper's remote case.
    Value v = 0;
    for (auto _ : state) {
        stack.push(1, ++v);
        benchmark::DoNotOptimize(stack.pop(1));
    }
    reportSim(state, sys, rt);
}
BENCHMARK(BM_StackPushPop)->DenseRange(0, 6)->Iterations(3000);

void
BM_QueueEnqDeq(benchmark::State &state)
{
    runtime::CxlSystem sys = makeSystem();
    flit::FlitRuntime rt(sys, modeOf(state.range(0)));
    ds::MsQueue q(rt, 0);
    Value v = 0;
    for (auto _ : state) {
        q.enqueue(1, ++v);
        benchmark::DoNotOptimize(q.dequeue(1));
    }
    reportSim(state, sys, rt);
}
BENCHMARK(BM_QueueEnqDeq)->DenseRange(0, 6)->Iterations(3000);

void
BM_MapPutGet(benchmark::State &state)
{
    runtime::CxlSystem sys = makeSystem();
    flit::FlitRuntime rt(sys, modeOf(state.range(0)));
    ds::HashMap map(rt, 0, 64);
    Value k = 0;
    for (auto _ : state) {
        map.put(1, k % 128, k);
        benchmark::DoNotOptimize(map.get(1, k % 128));
        ++k;
    }
    reportSim(state, sys, rt);
}
BENCHMARK(BM_MapPutGet)->DenseRange(0, 6)->Iterations(1500);

void
BM_CounterIncrement(benchmark::State &state)
{
    runtime::CxlSystem sys = makeSystem();
    flit::FlitRuntime rt(sys, modeOf(state.range(0)));
    ds::DurableCounter ctr(rt, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(ctr.fetchAdd(1, 1));
    reportSim(state, sys, rt);
}
BENCHMARK(BM_CounterIncrement)->DenseRange(0, 6)->Iterations(5000);

/**
 * Read-heavy workload: FliT's shared_load only flushes when a store
 * is in flight, so its read path should be nearly free (the original
 * FliT paper's key property, preserved by the adaptation).
 */
void
BM_ReadMostly(benchmark::State &state)
{
    runtime::CxlSystem sys = makeSystem();
    flit::FlitRuntime rt(sys, modeOf(state.range(0)));
    ds::HashMap map(rt, 0, 64);
    for (Value k = 0; k < 64; ++k)
        map.put(1, k, k);
    Value k = 0;
    for (auto _ : state) {
        if (k % 16 == 0)
            map.put(1, k % 64, k);
        else
            benchmark::DoNotOptimize(map.get(1, k % 64));
        ++k;
    }
    reportSim(state, sys, rt);
}
BENCHMARK(BM_ReadMostly)->DenseRange(0, 6)->Iterations(3000);

/**
 * Owner-local workload: the §6.1 address-based optimization (LFlush
 * for owned words) should beat plain flit-cxl0 here.
 */
void
BM_OwnerLocalWrites(benchmark::State &state)
{
    runtime::CxlSystem sys = makeSystem();
    flit::FlitRuntime rt(sys, modeOf(state.range(0)));
    ds::DurableRegister reg(rt, 0);
    Value v = 0;
    for (auto _ : state)
        reg.write(0, ++v); // writer == owner
    reportSim(state, sys, rt);
}
BENCHMARK(BM_OwnerLocalWrites)->DenseRange(0, 6)->Iterations(5000);

} // namespace

BENCHMARK_MAIN();
