/**
 * @file
 * E7 — correctness of the FliT adaptation (§6.1): durable
 * linearizability of transformed objects under injected partial
 * crashes, checked with the history checker, across persistence
 * modes. The adapted transformation (and the persist-all baseline)
 * must always pass; the naive port of original FliT must exhibit a
 * violation.
 */

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/stats.hh"
#include "ds/kv.hh"
#include "ds/stack.hh"
#include "flit/flit.hh"
#include "hist/checker.hh"

using namespace cxl0;
using flit::PersistMode;

namespace
{

runtime::CxlSystem
makeSystem(uint64_t seed, runtime::PropagationPolicy policy)
{
    runtime::SystemOptions o(
        model::SystemConfig::uniform(2, 8192, true));
    o.policy = policy;
    o.seed = seed;
    o.cost = runtime::CostModel::zero();
    return runtime::CxlSystem(std::move(o));
}

/** One crashy concurrent stack run; returns durable-linearizability. */
bool
stackRunIsDurable(PersistMode mode, uint64_t seed)
{
    runtime::CxlSystem sys =
        makeSystem(seed, runtime::PropagationPolicy::Random);
    flit::FlitRuntime rt(sys, mode);
    ds::TreiberStack stack(rt, 0);
    hist::HistoryRecorder rec;
    std::atomic<bool> crashed{false};

    auto worker = [&](int tid, NodeId node, int base) {
        for (int k = 0; k < 3; ++k) {
            if (node == 0 && crashed.load())
                return;
            if (k % 2 == 0) {
                size_t h = rec.invoke(tid, "push", base + k);
                stack.push(node, base + k);
                if (node == 0 && crashed.load())
                    return;
                rec.respond(h, 0);
            } else {
                size_t h = rec.invoke(tid, "pop");
                auto v = stack.pop(node);
                if (node == 0 && crashed.load())
                    return;
                rec.respond(h, v ? *v : hist::kEmptyRet);
            }
        }
    };

    std::thread t0(worker, 0, 0, 100);
    std::thread t1(worker, 1, 1, 200);
    std::this_thread::yield();
    sys.crash(0);
    crashed.store(true);
    t0.join();
    t1.join();

    for (int k = 0; k < 4; ++k) {
        size_t h = rec.invoke(2, "pop");
        auto v = stack.pop(1);
        rec.respond(h, v ? *v : hist::kEmptyRet);
    }
    return hist::checkDurablyLinearizable(rec.snapshot(),
                                          *hist::makeStackSpec())
        .linearizable;
}

/**
 * The deterministic register counterexample (litmus test 4's shape):
 * a completed write whose value dies with the owner.
 */
bool
registerRunIsDurable(PersistMode mode)
{
    runtime::CxlSystem sys =
        makeSystem(1, runtime::PropagationPolicy::Manual);
    flit::FlitRuntime rt(sys, mode);
    ds::DurableRegister reg(rt, 0);
    hist::HistoryRecorder rec;

    size_t w = rec.invoke(0, "write", 77);
    reg.write(1, 77);
    rec.respond(w, 0);
    sys.evictCacheOf(1);
    sys.crash(0);
    size_t r = rec.invoke(1, "read");
    rec.respond(r, reg.read(1));

    return hist::checkDurablyLinearizable(rec.snapshot(),
                                          *hist::makeRegisterSpec())
        .linearizable;
}

} // namespace

int
main()
{
    std::printf("== E7: durable linearizability of transformed "
                "objects under partial crashes ==\n\n");

    const PersistMode modes[] = {
        PersistMode::FlitCxl0, PersistMode::FlitCxl0AddrOpt,
        PersistMode::PersistAll, PersistMode::FlitAsync,
        PersistMode::FlitVerified, PersistMode::FlitOriginal,
        PersistMode::None};

    TextTable table({"mode", "register write/crash/read",
                     "concurrent stack x10 crashy runs",
                     "durable per §6?"});
    bool ok = true;
    for (PersistMode mode : modes) {
        bool reg_ok = registerRunIsDurable(mode);
        int stack_pass = 0;
        for (uint64_t seed = 1; seed <= 10; ++seed)
            stack_pass += stackRunIsDurable(mode, seed);
        bool claimed = flit::modeIsDurable(mode);
        // Durable modes must pass everything; the unsound modes must
        // fail at least the deterministic register counterexample.
        bool consistent =
            claimed ? (reg_ok && stack_pass == 10) : !reg_ok;
        ok &= consistent;
        table.addRow({flit::persistModeName(mode),
                      reg_ok ? "durable" : "VIOLATION",
                      std::to_string(stack_pass) + "/10",
                      claimed ? "yes" : "no"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n",
                ok ? "RESULT: matches §6.1 (adapted FliT is durable; "
                     "the naive port is not)"
                   : "RESULT: MISMATCH");
    return ok ? 0 : 1;
}
