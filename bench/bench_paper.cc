/**
 * @file
 * Tracked aggregate of the seed paper benches, in one JSON artifact
 * (BENCH_paper.json): the Figure 5 latency medians and §5.2 ratio
 * relations, the Table 1 observability assertions, the §6.1 FliT
 * durability verdict per persistence mode, and the §6.1 cost
 * relations measured on the runtime's calibrated cost model
 * (simulated ns and explicit flushes — wall-clock on the emulation
 * host is meaningless for CXL behaviour, so nothing here gates on
 * it): durability costs over the no-persistence baseline on every
 * workload, the address-based optimization (LFlush for owned words)
 * strictly beats plain flit-cxl0 on owner-local writes, and the
 * naive FliT port is cheaper than the adaptation — which is exactly
 * why its unsoundness (also gated here) matters. Every quantity is
 * produced by a seeded simulation, so the artifact is byte-stable
 * across runs; --stable-json additionally zeroes the one wall-clock
 * field (seconds) for tracked-diff hygiene. Exits nonzero when any
 * paper relation fails.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "ds/kv.hh"
#include "ds/stack.hh"
#include "flit/flit.hh"
#include "hist/checker.hh"
#include "sim/fabric.hh"

using namespace cxl0;
using namespace cxl0::sim;
using flit::PersistMode;

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

// ---- Figure 5: latency medians and §5.2 ratio relations ----------

constexpr int kSamples = 1000;

double
measureLatency(AccessCategory cat, MeasuredPrimitive prim)
{
    FabricSim fab(FabricConfig{2, 2, 42});
    AgentKind agent = (cat == AccessCategory::HostToHM ||
                       cat == AccessCategory::HostToHDM)
                          ? AgentKind::Host
                          : AgentKind::Device;
    Addr x = (cat == AccessCategory::HostToHM ||
              cat == AccessCategory::DevToHM)
                 ? 0
                 : 2;
    if (cat == AccessCategory::DevToHDMDevBias)
        fab.setBias(x, BiasMode::DeviceBias);

    Accumulator acc;
    for (int k = 0; k < kSamples; ++k) {
        fab.setLineState(x, CacheState::I, CacheState::I);
        double ns = 0;
        switch (prim) {
          case MeasuredPrimitive::Read:
            ns = fab.read(agent, x);
            break;
          case MeasuredPrimitive::LStore:
            ns = fab.lstore(agent, x, k);
            break;
          case MeasuredPrimitive::RStore:
            ns = fab.rstore(agent, x, k);
            break;
          case MeasuredPrimitive::MStore:
            ns = fab.mstore(agent, x, k);
            break;
          case MeasuredPrimitive::LFlush:
            ns = fab.lflush(agent, x);
            break;
          case MeasuredPrimitive::RFlush:
            ns = fab.rflush(agent, x);
            break;
        }
        acc.add(ns);
    }
    return acc.median();
}

struct RatioClaim
{
    std::string what;
    double measured;
    double paper;
    bool ok;
};

struct Fig5Result
{
    // category name -> primitive name -> median ns (measurable only).
    std::vector<std::pair<std::string,
                          std::vector<std::pair<std::string, double>>>>
        medians;
    std::vector<RatioClaim> claims;
    bool pass = true;
};

Fig5Result
runFig5()
{
    const AccessCategory cats[] = {
        AccessCategory::HostToHM, AccessCategory::HostToHDM,
        AccessCategory::DevToHM, AccessCategory::DevToHDMHostBias,
        AccessCategory::DevToHDMDevBias};
    const MeasuredPrimitive prims[] = {
        MeasuredPrimitive::Read,   MeasuredPrimitive::LStore,
        MeasuredPrimitive::RStore, MeasuredPrimitive::MStore,
        MeasuredPrimitive::LFlush, MeasuredPrimitive::RFlush};
    const char *primNames[] = {"Read",   "LStore", "RStore",
                               "MStore", "LFlush", "RFlush"};

    LatencyModel reference;
    Fig5Result res;
    std::map<std::pair<int, int>, double> med;
    for (AccessCategory cat : cats) {
        std::vector<std::pair<std::string, double>> row;
        for (size_t i = 0; i < 6; ++i) {
            if (!reference.measurable(cat, prims[i]))
                continue;
            double m = measureLatency(cat, prims[i]);
            med[{static_cast<int>(cat),
                 static_cast<int>(prims[i])}] = m;
            row.emplace_back(primNames[i], m);
        }
        res.medians.emplace_back(accessCategoryName(cat),
                                 std::move(row));
    }

    auto m = [&](AccessCategory c, MeasuredPrimitive p) {
        return med[{static_cast<int>(c), static_cast<int>(p)}];
    };
    auto claim = [&](const char *what, double got, double paper) {
        bool ok = got > paper * 0.9 && got < paper * 1.1;
        res.claims.push_back({what, got, paper, ok});
        res.pass &= ok;
    };
    claim("host remote/local Read ratio",
          m(AccessCategory::HostToHDM, MeasuredPrimitive::Read) /
              m(AccessCategory::HostToHM, MeasuredPrimitive::Read),
          2.34);
    claim("device remote/local Read ratio",
          m(AccessCategory::DevToHM, MeasuredPrimitive::Read) /
              m(AccessCategory::DevToHDMDevBias,
                MeasuredPrimitive::Read),
          1.94);
    claim("device->HM RStore/LStore ratio",
          m(AccessCategory::DevToHM, MeasuredPrimitive::RStore) /
              m(AccessCategory::DevToHM, MeasuredPrimitive::LStore),
          2.08);
    claim("device->HM MStore/RStore ratio",
          m(AccessCategory::DevToHM, MeasuredPrimitive::MStore) /
              m(AccessCategory::DevToHM, MeasuredPrimitive::RStore),
          1.45);
    claim("device->HM RFlush/MStore ratio",
          m(AccessCategory::DevToHM, MeasuredPrimitive::RFlush) /
              m(AccessCategory::DevToHM, MeasuredPrimitive::MStore),
          1.0);
    return res;
}

// ---- Table 1: observability assertions ---------------------------

const CacheState kStates[] = {CacheState::M, CacheState::E,
                              CacheState::S, CacheState::I};

bool
legalPair(CacheState h, CacheState d)
{
    bool hw = h == CacheState::M || h == CacheState::E;
    bool dw = d == CacheState::M || d == CacheState::E;
    return !(hw && d != CacheState::I) && !(dw && h != CacheState::I);
}

std::string
sweepCaptures(AgentKind agent, MemKind target, const std::string &prim)
{
    std::set<std::string> seen;
    for (CacheState h : kStates) {
        for (CacheState d : kStates) {
            if (!legalPair(h, d))
                continue;
            MeasuredPrimitive mp =
                prim == "Read"     ? MeasuredPrimitive::Read
                : prim == "LStore" ? MeasuredPrimitive::LStore
                : prim == "RStore" ? MeasuredPrimitive::RStore
                : prim == "MStore" ? MeasuredPrimitive::MStore
                : prim == "LFlush" ? MeasuredPrimitive::LFlush
                                   : MeasuredPrimitive::RFlush;
            if (!FabricSim::primitiveAvailable(agent, mp)) {
                seen.insert("???");
                continue;
            }
            FabricSim fab(FabricConfig{2, 2, 1});
            Addr x = target == MemKind::HM ? 0 : 2;
            fab.setLineState(x, h, d);
            fab.analyzer().clear();
            try {
                if (prim == "Read")
                    fab.read(agent, x);
                else if (prim == "LStore")
                    fab.lstore(agent, x, 1);
                else if (prim == "RStore")
                    fab.rstore(agent, x, 1);
                else if (prim == "MStore")
                    fab.mstore(agent, x, 1);
                else if (prim == "LFlush")
                    fab.lflush(agent, x);
                else if (prim == "RFlush")
                    fab.rflush(agent, x);
                seen.insert(fab.analyzer().describe());
            } catch (const std::invalid_argument &) {
                seen.insert("???");
            }
        }
    }
    if (seen.count("???"))
        return "???";
    std::string out;
    for (const std::string &s : seen)
        out += (out.empty() ? "" : ", ") + s;
    return out;
}

struct NamedCheck
{
    std::string what;
    bool ok;
};

std::vector<NamedCheck>
runTable1()
{
    std::vector<NamedCheck> checks;
    auto add = [&](const char *what, bool ok) {
        checks.push_back({what, ok});
    };
    add("host RStore to HM not generatable",
        sweepCaptures(AgentKind::Host, MemKind::HM, "RStore") ==
            "???");
    add("host LFlush to HM not generatable",
        sweepCaptures(AgentKind::Host, MemKind::HM, "LFlush") ==
            "???");
    add("device LFlush to HM not generatable",
        sweepCaptures(AgentKind::Device, MemKind::HM, "LFlush") ==
            "???");
    add("device RStore to HM emits ItoMWr",
        sweepCaptures(AgentKind::Device, MemKind::HM, "RStore")
                .find("ItoMWr") != std::string::npos);
    add("host MStore to HDM emits MemWr",
        sweepCaptures(AgentKind::Host, MemKind::HDM, "MStore")
                .find("MemWr") != std::string::npos);
    return checks;
}

// ---- §6.1 FliT: durability verdicts and cost ordering ------------

runtime::CxlSystem
makeFlitSystem(uint64_t seed, runtime::PropagationPolicy policy)
{
    runtime::SystemOptions o(
        model::SystemConfig::uniform(2, 8192, true));
    o.policy = policy;
    o.seed = seed;
    o.cost = runtime::CostModel::zero();
    return runtime::CxlSystem(std::move(o));
}

/**
 * The deterministic register counterexample (litmus test 4's shape):
 * a completed write whose value dies with the owner. Durable modes
 * must pass it; the naive FliT port must fail it.
 */
bool
registerRunIsDurable(PersistMode mode)
{
    runtime::CxlSystem sys =
        makeFlitSystem(1, runtime::PropagationPolicy::Manual);
    flit::FlitRuntime rt(sys, mode);
    ds::DurableRegister reg(rt, 0);
    hist::HistoryRecorder rec;

    size_t w = rec.invoke(0, "write", 77);
    reg.write(1, 77);
    rec.respond(w, 0);
    sys.evictCacheOf(1);
    sys.crash(0);
    size_t r = rec.invoke(1, "read");
    rec.respond(r, reg.read(1));

    return hist::checkDurablyLinearizable(rec.snapshot(),
                                          *hist::makeRegisterSpec())
        .linearizable;
}

struct ModeCost
{
    PersistMode mode;
    bool claimedDurable;
    bool registerDurable;
    bool consistent;
    /** Remote stack push/pop: the paper's remote-writer case. */
    double stackNsPerOp;
    double stackFlushesPerOp;
    /** Owner-local register writes: where the §6.1 address-based
     *  optimization (LFlush for owned words) pays off. */
    double localNsPerOp;
    double localFlushesPerOp;
};

runtime::CxlSystem
makeCostSystem()
{
    runtime::SystemOptions o(
        model::SystemConfig::uniform(2, 8192, true));
    o.policy = runtime::PropagationPolicy::Random;
    o.evictionChancePct = 10;
    o.seed = 12345;
    return runtime::CxlSystem(std::move(o));
}

/**
 * Two sequential workloads on the calibrated cost model —
 * single-threaded and seeded, so the measured simulated cost is
 * exactly reproducible.
 */
ModeCost
measureMode(PersistMode mode)
{
    constexpr int kOps = 2000;
    ModeCost mc;
    mc.mode = mode;
    mc.claimedDurable = flit::modeIsDurable(mode);
    mc.registerDurable = registerRunIsDurable(mode);
    mc.consistent = mc.claimedDurable ? mc.registerDurable
                                      : !mc.registerDurable;
    {
        runtime::CxlSystem sys = makeCostSystem();
        flit::FlitRuntime rt(sys, mode);
        ds::TreiberStack stack(rt, 0);
        Value v = 0;
        for (int k = 0; k < kOps; ++k) {
            stack.push(1, ++v);
            stack.pop(1);
        }
        mc.stackNsPerOp = sys.clockNs() / (2.0 * kOps);
        mc.stackFlushesPerOp =
            static_cast<double>(rt.flushCount()) / (2.0 * kOps);
    }
    {
        runtime::CxlSystem sys = makeCostSystem();
        flit::FlitRuntime rt(sys, mode);
        ds::DurableRegister reg(rt, 0);
        Value v = 0;
        for (int k = 0; k < 2 * kOps; ++k)
            reg.write(0, ++v); // writer == owner
        mc.localNsPerOp = sys.clockNs() / (2.0 * kOps);
        mc.localFlushesPerOp =
            static_cast<double>(rt.flushCount()) / (2.0 * kOps);
    }
    return mc;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = nullptr;
    bool stable = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--stable-json") == 0) {
            stable = true;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--out <json-path>] [--stable-json]\n",
                argv[0]);
            return 2;
        }
    }

    std::printf("== paper bench aggregate: Fig. 5, Table 1, §6.1 ==\n\n");
    auto t0 = std::chrono::steady_clock::now();

    Fig5Result fig5 = runFig5();
    std::printf("Fig. 5 ratio relations:\n");
    for (const RatioClaim &c : fig5.claims)
        std::printf("  %-40s measured %.2fx (paper %.2fx)  %s\n",
                    c.what.c_str(), c.measured, c.paper,
                    c.ok ? "ok" : "OUT OF RANGE");

    std::vector<NamedCheck> table1 = runTable1();
    bool table1_pass = true;
    std::printf("\nTable 1 observability:\n");
    for (const NamedCheck &c : table1) {
        table1_pass &= c.ok;
        std::printf("  %-40s %s\n", c.what.c_str(),
                    c.ok ? "ok" : "FAIL");
    }

    const PersistMode modes[] = {
        PersistMode::None,          PersistMode::FlitCxl0,
        PersistMode::FlitCxl0AddrOpt, PersistMode::FlitOriginal,
        PersistMode::PersistAll};
    std::vector<ModeCost> costs;
    bool flit_consistent = true;
    std::printf("\n§6.1 persistence modes (remote stack push/pop + "
                "owner-local writes):\n");
    for (PersistMode mode : modes) {
        ModeCost mc = measureMode(mode);
        flit_consistent &= mc.consistent;
        costs.push_back(mc);
        std::printf("  %-18s stack %.1f ns/op (%.2f fl/op), local "
                    "%.1f ns/op (%.2f fl/op), register %s (durable "
                    "per §6: %s)\n",
                    flit::persistModeName(mode), mc.stackNsPerOp,
                    mc.stackFlushesPerOp, mc.localNsPerOp,
                    mc.localFlushesPerOp,
                    mc.registerDurable ? "durable" : "VIOLATION",
                    mc.claimedDurable ? "yes" : "no");
    }
    auto costOf = [&](PersistMode m) -> const ModeCost & {
        for (const ModeCost &mc : costs)
            if (mc.mode == m)
                return mc;
        return costs.front();
    };
    const ModeCost &none = costOf(PersistMode::None);
    const ModeCost &cxl0 = costOf(PersistMode::FlitCxl0);
    const ModeCost &addropt = costOf(PersistMode::FlitCxl0AddrOpt);
    const ModeCost &orig = costOf(PersistMode::FlitOriginal);
    const ModeCost &all = costOf(PersistMode::PersistAll);
    // The §6.1 cost relations the simulator's calibrated model
    // supports deterministically: durability is never free, the
    // address-based optimization strictly wins on owner-local
    // writes (LFlush instead of RFlush) and never loses, and the
    // naive port undercuts the adaptation — its entire temptation,
    // given that the durability gate above shows it unsound.
    struct Relation
    {
        const char *what;
        bool ok;
    };
    Relation relations[] = {
        {"none cheapest on the remote stack",
         none.stackNsPerOp < cxl0.stackNsPerOp &&
             none.stackNsPerOp < addropt.stackNsPerOp &&
             none.stackNsPerOp < all.stackNsPerOp},
        {"none cheapest on owner-local writes",
         none.localNsPerOp < cxl0.localNsPerOp &&
             none.localNsPerOp < addropt.localNsPerOp &&
             none.localNsPerOp < all.localNsPerOp},
        {"addropt <= flit-cxl0 everywhere",
         addropt.stackNsPerOp <= cxl0.stackNsPerOp &&
             addropt.localNsPerOp <= cxl0.localNsPerOp},
        {"addropt strictly wins owner-local",
         addropt.localNsPerOp < cxl0.localNsPerOp},
        {"naive port cheaper than the adaptation",
         orig.stackNsPerOp < cxl0.stackNsPerOp &&
             orig.localNsPerOp <= cxl0.localNsPerOp},
        {"flit modes flush; none does not",
         none.stackFlushesPerOp == 0 && none.localFlushesPerOp == 0 &&
             cxl0.stackFlushesPerOp > 0 && cxl0.localFlushesPerOp > 0 &&
             addropt.localFlushesPerOp > 0},
    };
    bool ordering = true;
    for (const Relation &r : relations) {
        ordering &= r.ok;
        std::printf("  %-42s %s\n", r.what, r.ok ? "ok" : "FAIL");
    }

    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    bool all_pass =
        fig5.pass && table1_pass && flit_consistent && ordering;

    std::ostringstream js;
    js << "{\n";
    js << "  \"bench\": \"paper\",\n";
    js << "  \"fig5\": {\n    \"medians_ns\": {\n";
    for (size_t i = 0; i < fig5.medians.size(); ++i) {
        js << "      \"" << jsonEscape(fig5.medians[i].first)
           << "\": {";
        const auto &row = fig5.medians[i].second;
        for (size_t j = 0; j < row.size(); ++j)
            js << (j ? ", " : "") << "\"" << row[j].first
               << "\": " << row[j].second;
        js << "}" << (i + 1 < fig5.medians.size() ? "," : "")
           << "\n";
    }
    js << "    },\n    \"claims\": [\n";
    for (size_t i = 0; i < fig5.claims.size(); ++i) {
        const RatioClaim &c = fig5.claims[i];
        js << "      {\"what\": \"" << jsonEscape(c.what)
           << "\", \"measured\": " << c.measured
           << ", \"paper\": " << c.paper << ", \"ok\": "
           << (c.ok ? "true" : "false") << "}"
           << (i + 1 < fig5.claims.size() ? "," : "") << "\n";
    }
    js << "    ],\n    \"pass\": " << (fig5.pass ? "true" : "false")
       << "\n  },\n";
    js << "  \"table1\": {\n    \"checks\": [\n";
    for (size_t i = 0; i < table1.size(); ++i) {
        js << "      {\"what\": \"" << jsonEscape(table1[i].what)
           << "\", \"ok\": " << (table1[i].ok ? "true" : "false")
           << "}" << (i + 1 < table1.size() ? "," : "") << "\n";
    }
    js << "    ],\n    \"pass\": "
       << (table1_pass ? "true" : "false") << "\n  },\n";
    js << "  \"flit\": {\n    \"modes\": [\n";
    for (size_t i = 0; i < costs.size(); ++i) {
        const ModeCost &mc = costs[i];
        js << "      {\"mode\": \""
           << flit::persistModeName(mc.mode)
           << "\", \"stack_sim_ns_per_op\": " << mc.stackNsPerOp
           << ", \"stack_flushes_per_op\": " << mc.stackFlushesPerOp
           << ", \"local_sim_ns_per_op\": " << mc.localNsPerOp
           << ", \"local_flushes_per_op\": " << mc.localFlushesPerOp
           << ", \"register_durable\": "
           << (mc.registerDurable ? "true" : "false")
           << ", \"claimed_durable\": "
           << (mc.claimedDurable ? "true" : "false") << "}"
           << (i + 1 < costs.size() ? "," : "") << "\n";
    }
    js << "    ],\n    \"relations\": [\n";
    for (size_t i = 0; i < std::size(relations); ++i) {
        js << "      {\"what\": \"" << jsonEscape(relations[i].what)
           << "\", \"ok\": " << (relations[i].ok ? "true" : "false")
           << "}" << (i + 1 < std::size(relations) ? "," : "")
           << "\n";
    }
    js << "    ],\n    \"pass\": "
       << (flit_consistent && ordering ? "true" : "false")
       << "\n  },\n";
    js << "  \"all_pass\": " << (all_pass ? "true" : "false")
       << ",\n";
    js << "  \"seconds\": " << (stable ? 0.0 : seconds) << "\n";
    js << "}\n";

    if (out_path) {
        std::ofstream out(out_path);
        out << js.str();
        std::printf("\nwrote %s\n", out_path);
    }

    std::printf("\nRESULT: %s\n",
                all_pass ? "all paper relations hold"
                         : "MISMATCH against the paper");
    return all_pass ? 0 : 1;
}
