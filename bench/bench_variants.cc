/**
 * @file
 * E2 — §3.5 reproduction: tests 10-12 under (CXL0, CXL0_LWB,
 * CXL0_PSN), plus the automated refinement results (every variant
 * refines CXL0; the variants are incomparable).
 */

#include <cstdio>

#include "check/litmus.hh"
#include "check/refinement.hh"
#include "common/stats.hh"

using namespace cxl0;
using namespace cxl0::check;
using model::ModelVariant;

namespace
{

const char *
mark(Verdict v)
{
    return v == Verdict::Allowed ? "v" : "x";
}

} // namespace

int
main()
{
    std::printf("== E2: model-variant litmus tests 10-12 (§3.5) ==\n\n");

    TextTable table({"#", "trace", "paper (CXL0,LWB,PSN)",
                     "reproduced", "match"});
    bool all_match = true;
    for (const LitmusTest &t : variantTests()) {
        Verdict base = runLitmus(t, ModelVariant::Base);
        Verdict lwb = runLitmus(t, ModelVariant::Lwb);
        Verdict psn = runLitmus(t, ModelVariant::Psn);
        bool match = base == t.expectBase && lwb == t.expectLwb &&
                     psn == t.expectPsn;
        all_match &= match;
        std::string paper = std::string(mark(t.expectBase)) + "," +
                            mark(t.expectLwb) + "," + mark(t.expectPsn);
        std::string got = std::string(mark(base)) + "," + mark(lwb) +
                          "," + mark(psn);
        table.addRow({std::to_string(t.id),
                      model::describeTrace(t.trace), paper, got,
                      match ? "yes" : "NO"});
    }
    std::printf("%s\n", table.render().c_str());

    // Automated refinement results (the paper's FDR4 experiment).
    model::SystemConfig cfg({model::MachineConfig{true},
                             model::MachineConfig{false}},
                            {0});
    model::Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb),
        psn(cfg, ModelVariant::Psn);

    Alphabet small;
    small.ops = {model::Op::Load, model::Op::LStore, model::Op::RStore,
                 model::Op::Crash};
    small.values = {0, 1};
    small.maxCrashesPerNode = 1;
    Alphabet crashy;
    crashy.ops = {model::Op::Load, model::Op::LStore, model::Op::Crash};
    crashy.values = {0, 1};
    crashy.maxCrashesPerNode = 2;

    struct Row
    {
        const char *what;
        RefinementResult result;
        bool expectRefines;
    };
    Row rows[] = {
        {"CXL0_LWB refines CXL0", checkRefinement(base, lwb, 4, small),
         true},
        {"CXL0_PSN refines CXL0", checkRefinement(base, psn, 4, small),
         true},
        {"CXL0 refines CXL0_LWB", checkRefinement(lwb, base, 4, small),
         false},
        {"CXL0 refines CXL0_PSN", checkRefinement(psn, base, 5, crashy),
         false},
        {"CXL0_LWB refines CXL0_PSN",
         checkRefinement(psn, lwb, 5, crashy), false},
        {"CXL0_PSN refines CXL0_LWB",
         checkRefinement(lwb, psn, 4, small), false},
    };

    std::printf("bounded refinement checks (FDR4's role):\n");
    bool refinement_ok = true;
    for (const Row &row : rows) {
        bool match = row.result.refines == row.expectRefines;
        refinement_ok &= match;
        std::printf("  %-28s : %-12s %s\n", row.what,
                    row.result.refines ? "refines" : "violated",
                    row.result.refines
                        ? ""
                        : row.result.describe().c_str());
    }
    std::printf("\n%s\n",
                all_match && refinement_ok
                    ? "RESULT: all verdicts match the paper"
                    : "RESULT: MISMATCH against the paper");
    return all_match && refinement_ok ? 0 : 1;
}
