/**
 * @file
 * The observability layer's own tests: registry merge semantics,
 * tracer ring/JSON invariants, the muted-panic counter, the sampler
 * lifecycle (including the start/stop races the TSan job hammers),
 * and — the load-bearing one — report byte-identity with telemetry
 * on vs off across all four checkers at 1 and 4 worker threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/cache.hh"
#include "common/logging.hh"
#include "lang/run.hh"
#include "lang/scenario.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace
{

using namespace cxl0;

// ------------------------------------------------------ the registry

TEST(Metrics, CountersSumAcrossShards)
{
    obs::Registry reg;
    obs::MetricId c = reg.define("test.counter",
                                 obs::MetricKind::Counter);
    reg.add(0, c, 3);
    reg.add(1, c, 4);
    reg.add(63, c, 5);
    // Shard 64 aliases slot 0 (shard % kMetricShards) — still summed
    // once, because it lands in an existing cell.
    reg.add(64, c, 10);
    EXPECT_EQ(reg.value(c), 22u);
}

TEST(Metrics, GaugesMergeAsMax)
{
    obs::Registry reg;
    obs::MetricId g = reg.define("test.gauge",
                                 obs::MetricKind::Gauge);
    reg.set(0, g, 7);
    reg.set(1, g, 40);
    reg.set(2, g, 12);
    EXPECT_EQ(reg.value(g), 40u);
    reg.set(1, g, 1); // a gauge can go down per shard
    EXPECT_EQ(reg.value(g), 12u);
}

TEST(Metrics, HistogramsBucketAndSum)
{
    obs::Registry reg;
    obs::MetricId h = reg.define("test.hist",
                                 obs::MetricKind::Histogram);
    reg.observe(0, h, 0);
    reg.observe(0, h, 1);
    reg.observe(1, h, 1000);
    EXPECT_EQ(reg.value(h), 3u); // total observations
    std::vector<obs::Registry::Sample> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "test.hist");
    uint64_t total = 0;
    for (uint64_t b : snap[0].buckets)
        total += b;
    EXPECT_EQ(total, 3u);
    EXPECT_EQ(snap[0].buckets[obs::Registry::bucketOf(1000)], 1u);
}

TEST(Metrics, DefineIsIdempotent)
{
    obs::Registry reg;
    obs::MetricId a = reg.define("dup", obs::MetricKind::Counter);
    obs::MetricId b = reg.define("dup", obs::MetricKind::Counter);
    EXPECT_EQ(a, b);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, Bucketing)
{
    EXPECT_EQ(obs::Registry::bucketOf(0), 0u);
    EXPECT_EQ(obs::Registry::bucketOf(1), 1u);
    EXPECT_EQ(obs::Registry::bucketOf(2), 2u);
    EXPECT_EQ(obs::Registry::bucketOf(3), 2u);
    EXPECT_EQ(obs::Registry::bucketOf(4), 3u);
}

// -------------------------------------------------------- the tracer

TEST(Trace, ScopedSpansStayBalanced)
{
    obs::Tracer tracer(16);
    obs::TraceRing *ring = tracer.acquireRing("t0");
    ASSERT_NE(ring, nullptr);
    {
        obs::ScopedSpan outer(ring, "outer");
        obs::ScopedSpan inner(ring, "inner");
    }
    ASSERT_EQ(ring->size(), 4u);
    EXPECT_EQ(ring->events()[0].phase, 'B');
    EXPECT_EQ(ring->events()[3].phase, 'E');
    EXPECT_STREQ(ring->events()[3].name, "outer");
}

TEST(Trace, FullRingDropsAndStaysBalanced)
{
    // Capacity 3: span a takes two slots, span b's B takes the last
    // one — its E rides the nesting-depth overshoot so the pair
    // still closes. Span c's B is dropped, and ScopedSpan then must
    // not write an orphan E.
    obs::Tracer tracer(3);
    obs::TraceRing *ring = tracer.acquireRing("t0");
    ASSERT_NE(ring, nullptr);
    { obs::ScopedSpan a(ring, "a"); }
    { obs::ScopedSpan b(ring, "b"); }
    { obs::ScopedSpan c(ring, "c"); }
    size_t b_count = 0, e_count = 0;
    for (const obs::TraceEvent &e : ring->events()) {
        b_count += e.phase == 'B';
        e_count += e.phase == 'E';
    }
    EXPECT_EQ(b_count, 2u);
    EXPECT_EQ(e_count, b_count);
    EXPECT_EQ(tracer.droppedEvents(), 1u);
}

TEST(Trace, JsonShapeAndBalance)
{
    obs::Tracer tracer(64);
    obs::TraceRing *r0 = tracer.acquireRing("shard-0");
    obs::TraceRing *r1 = tracer.acquireRing("shard-1");
    ASSERT_NE(r0, nullptr);
    ASSERT_NE(r1, nullptr);
    { obs::ScopedSpan s(r0, "expand"); }
    r0->instant("steal", 3);
    r1->counter("frontier", 17);
    std::string json = tracer.toJson();
    // Envelope + per-ring thread metadata.
    EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"shard-0\""), std::string::npos);
    EXPECT_NE(json.find("\"shard-1\""), std::string::npos);
    // Balanced B/E pairs.
    size_t b_count = 0, e_count = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"B\"", pos)) !=
           std::string::npos)
        ++b_count, pos += 8;
    pos = 0;
    while ((pos = json.find("\"ph\":\"E\"", pos)) !=
           std::string::npos)
        ++e_count, pos += 8;
    EXPECT_EQ(b_count, e_count);
    EXPECT_EQ(b_count, 1u);
    // Instants carry scope, counters carry a value.
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":17"), std::string::npos);
    // Distinct tids per ring.
    EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(Trace, RingBudgetExhaustsToNull)
{
    obs::Tracer tracer(8, /*maxRings=*/2);
    EXPECT_NE(tracer.acquireRing("a"), nullptr);
    EXPECT_NE(tracer.acquireRing("b"), nullptr);
    EXPECT_EQ(tracer.acquireRing("c"), nullptr);
    // Null rings are safe everywhere.
    obs::ScopedSpan s(nullptr, "noop");
}

// ------------------------------------------------- muted-panic count

TEST(Logging, ScopedQuietErrorsCountsMutedPanics)
{
    uint64_t before_thread = mutedPanicCount();
    uint64_t before_total = mutedPanicTotal();
    {
        ScopedQuietErrors quiet;
        EXPECT_EQ(quiet.muted(), 0u);
        try {
            CXL0_PANIC("muted test panic");
        } catch (const std::exception &) {
        }
        try {
            CXL0_PANIC("second muted test panic");
        } catch (const std::exception &) {
        }
        EXPECT_EQ(quiet.muted(), 2u);
    }
    EXPECT_EQ(mutedPanicCount() - before_thread, 2u);
    EXPECT_EQ(mutedPanicTotal() - before_total, 2u);
}

// ------------------------------------------------------- the sampler

TEST(Progress, StopAlwaysEmitsAFinalHeartbeat)
{
    obs::Telemetry tel;
    obs::ProgressOptions opts;
    opts.intervalMs = 100000; // never fires on its own
    obs::ProgressSampler sampler(tel, opts);
    sampler.start();
    sampler.stop();
    EXPECT_GE(sampler.heartbeats(), 1u);
    EXPECT_GE(sampler.rssSamples().size(), 1u);
    EXPECT_GT(sampler.peakRssBytes(), 0u);
}

TEST(Progress, HeartbeatJsonlHasTheContractFields)
{
    std::string path = testing::TempDir() + "obs_heartbeat.jsonl";
    std::remove(path.c_str());
    obs::Telemetry tel;
    {
        obs::ProgressOptions opts;
        opts.intervalMs = 100000;
        opts.heartbeatPath = path;
        opts.label = "unit";
        obs::ProgressSampler sampler(tel, opts);
        sampler.start();
        sampler.stop();
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("\"label\":\"unit\""), std::string::npos);
    EXPECT_NE(line.find("\"configs\":"), std::string::npos);
    EXPECT_NE(line.find("\"rss_bytes\":"), std::string::npos);
    EXPECT_NE(line.find("\"muted_panics\":"), std::string::npos);
    EXPECT_NE(line.find("\"spilled_configs\":"), std::string::npos);
    EXPECT_NE(line.find("\"spill_bytes\":"), std::string::npos);
    EXPECT_NE(line.find("\"checkpoint_count\":"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Progress, StartStopRacesAreSafe)
{
    // The TSan target: many threads calling start()/stop()
    // concurrently must neither race on the sampler thread handle
    // nor deadlock. (Run under -fsanitize=thread in CI.)
    obs::Telemetry tel;
    obs::ProgressOptions opts;
    opts.intervalMs = 1;
    obs::ProgressSampler sampler(tel, opts);
    std::atomic<bool> go{false};
    std::vector<std::thread> racers;
    for (int t = 0; t < 4; ++t) {
        racers.emplace_back([&, t] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 50; ++i) {
                if ((i + t) % 2 == 0)
                    sampler.start();
                else
                    sampler.stop();
            }
        });
    }
    go.store(true);
    for (std::thread &t : racers)
        t.join();
    sampler.stop();
    EXPECT_GE(sampler.heartbeats(), 1u);
}

TEST(Progress, CurrentRssIsLive)
{
    EXPECT_GT(obs::currentRssBytes(), 0u);
}

// ----------------------------------- telemetry is metadata, not identity

lang::Scenario
loadCorpusScenario(const std::string &stem)
{
    std::string path = std::string(CXL0_SOURCE_DIR) +
                       "/corpus/litmus/" + stem + ".cxl0";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    lang::ParseResult pr = lang::parseScenario(ss.str());
    EXPECT_TRUE(pr.ok())
        << (pr.ok() ? "" : pr.error->render(path));
    return pr.scenario;
}

struct IdentityCase
{
    const char *stem;
    lang::CheckerKind checker;
};

/**
 * The determinism contract, gated: for every checker and for worker
 * counts 1 and 4, the report projection of a run with full telemetry
 * (tracing + metric publication + a fast live sampler) is
 * byte-identical to the telemetry-off run, and the interned-config
 * count does not move.
 */
TEST(TelemetryIdentity, ReportsAreByteIdenticalAcrossAllCheckers)
{
    const IdentityCase cases[] = {
        {"psn_ring", lang::CheckerKind::Explore},
        {"litmus01_trace", lang::CheckerKind::Feasible},
        {"refine_base_lwb", lang::CheckerKind::Refinement},
        {"incl_rstore_stronger", lang::CheckerKind::Inclusion},
    };
    for (const IdentityCase &c : cases) {
        lang::Scenario sc = loadCorpusScenario(c.stem);
        for (size_t threads : {size_t{1}, size_t{4}}) {
            lang::RunOptions opts;
            opts.checker = c.checker;
            opts.numThreads = threads;

            lang::RunResult off = lang::runScenario(sc, opts);
            ASSERT_TRUE(off.error.empty())
                << c.stem << ": " << off.error;
            std::string off_bytes =
                check::serializeReport(off.report);

            lang::RunResult on;
            {
                obs::TelemetryOptions topt;
                topt.trace = true;
                obs::Telemetry tel(topt);
                obs::ScopedTelemetry scope(&tel);
                obs::ProgressOptions popt;
                popt.intervalMs = 1; // tick *during* the search
                obs::ProgressSampler sampler(tel, popt);
                sampler.start();
                on = lang::runScenario(sc, opts);
                sampler.stop();
                EXPECT_GE(sampler.heartbeats(), 1u);
            }
            EXPECT_EQ(check::serializeReport(on.report), off_bytes)
                << c.stem << " at " << threads << " thread(s)";
            EXPECT_EQ(on.report.stats.configsInterned,
                      off.report.stats.configsInterned)
                << c.stem << " at " << threads << " thread(s)";
            EXPECT_EQ(on.pass, off.pass);
        }
    }
}

TEST(TelemetryIdentity, TraceFileIsWellFormedForAShardedRun)
{
    lang::Scenario sc = loadCorpusScenario("psn_ring");
    lang::RunOptions opts;
    opts.checker = lang::CheckerKind::Explore;
    opts.numThreads = 4;

    obs::TelemetryOptions topt;
    topt.trace = true;
    obs::Telemetry tel(topt);
    {
        obs::ScopedTelemetry scope(&tel);
        lang::RunResult r = lang::runScenario(sc, opts);
        ASSERT_TRUE(r.error.empty());
    }
    std::string json = tel.tracer().toJson();
    // One driver ring + one ring per worker shard.
    EXPECT_NE(json.find("\"driver\""), std::string::npos);
    for (int w = 0; w < 4; ++w) {
        std::string name =
            "\"explore-shard-" + std::to_string(w) + "\"";
        EXPECT_NE(json.find(name), std::string::npos) << name;
    }
    size_t b_count = 0, e_count = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"B\"", pos)) !=
           std::string::npos)
        ++b_count, pos += 8;
    pos = 0;
    while ((pos = json.find("\"ph\":\"E\"", pos)) !=
           std::string::npos)
        ++e_count, pos += 8;
    EXPECT_EQ(b_count, e_count);
    EXPECT_GT(b_count, 0u);
}

TEST(TelemetryIdentity, RegistrySeesSearchCounters)
{
    lang::Scenario sc = loadCorpusScenario("psn_ring");
    lang::RunOptions opts;
    opts.checker = lang::CheckerKind::Explore;
    opts.numThreads = 1;

    obs::Telemetry tel;
    lang::RunResult r;
    {
        obs::ScopedTelemetry scope(&tel);
        r = lang::runScenario(sc, opts);
    }
    ASSERT_TRUE(r.error.empty());
    // The final worker publish flushes the closing partial delta, so
    // the registry's total matches the report exactly.
    EXPECT_EQ(tel.registry().value(tel.mConfigsVisited),
              r.report.stats.configsVisited);
    EXPECT_EQ(tel.registry().value(tel.mConfigsInterned),
              r.report.stats.configsInterned);
}

TEST(TelemetryIdentity, WallMsIsMeasuredButNeverSerialized)
{
    lang::Scenario sc = loadCorpusScenario("psn_ring");
    lang::RunOptions opts;
    opts.checker = lang::CheckerKind::Explore;
    lang::RunResult r = lang::runScenario(sc, opts);
    ASSERT_TRUE(r.error.empty());
    EXPECT_GT(r.report.wallMs, 0.0);
    // wallMs is telemetry: the cache's stable projection must not
    // contain it (it would poison byte-identity verification).
    check::CheckReport parsed;
    ASSERT_TRUE(check::parseReport(
        check::serializeReport(r.report), parsed));
    EXPECT_EQ(parsed.wallMs, 0.0);
}

} // namespace
