/**
 * @file
 * Differential testing: the transaction-level fabric simulator and
 * the abstract runtime must agree on every observable value.
 *
 * Both systems model the same host-device pairing (host owns HM,
 * device owns HDM); driving them with identical random operation
 * sequences, every read must return the same value, and after a final
 * flush of every line both must hold the same persistent image. This
 * ties the Table-1-level simulator to the CXL0-level runtime.
 */

#include <gtest/gtest.h>

#include "runtime/system.hh"
#include "sim/fabric.hh"

namespace
{

using namespace cxl0;
using sim::AgentKind;
using sim::FabricConfig;
using sim::FabricSim;

constexpr size_t kLinesPerSide = 4;

/** host == node 0 owns HM (addrs 0..3); device == node 1 owns HDM. */
NodeId
nodeOf(AgentKind agent)
{
    return agent == AgentKind::Host ? 0 : 1;
}

class DifferentialSuite : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DifferentialSuite, FabricAndRuntimeAgreeOnValues)
{
    FabricSim fab(FabricConfig{kLinesPerSide, kLinesPerSide, 1});
    runtime::SystemOptions opts(
        model::SystemConfig::uniform(2, kLinesPerSide, true));
    opts.policy = runtime::PropagationPolicy::Manual;
    runtime::CxlSystem sys(std::move(opts));

    Rng rng(GetParam());
    for (int step = 0; step < 300; ++step) {
        AgentKind agent =
            rng.chance(1, 2) ? AgentKind::Host : AgentKind::Device;
        NodeId by = nodeOf(agent);
        Addr x = static_cast<Addr>(rng.nextBelow(2 * kLinesPerSide));
        Value v = rng.nextInRange(1, 99);

        switch (rng.nextBelow(5)) {
          case 0: {
            Value fab_v = 0;
            fab.read(agent, x, &fab_v);
            Value sys_v = sys.load(by, x);
            ASSERT_EQ(fab_v, sys_v)
                << "step " << step << " read of x" << x;
            break;
          }
          case 1:
            fab.lstore(agent, x, v);
            sys.lstore(by, x, v);
            break;
          case 2:
            fab.mstore(agent, x, v);
            sys.mstore(by, x, v);
            break;
          case 3:
            fab.rflush(agent, x);
            sys.rflush(by, x);
            break;
          case 4:
            // RStore exists only on the device side (Table 1).
            if (agent == AgentKind::Device) {
                fab.rstore(agent, x, v);
                sys.rstore(by, x, v);
            }
            break;
        }
        ASSERT_TRUE(fab.coherenceInvariantHolds());
        ASSERT_TRUE(sys.invariantHolds());
    }

    // Power down: flush everything and compare persistent images.
    for (Addr x = 0; x < 2 * kLinesPerSide; ++x) {
        fab.rflush(AgentKind::Host, x);
        fab.rflush(AgentKind::Device, x);
        sys.rflush(0, x);
    }
    for (Addr x = 0; x < 2 * kLinesPerSide; ++x) {
        EXPECT_EQ(fab.memValue(x), sys.peekMemory(x))
            << "persistent image differs at x" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSuite,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<uint64_t> &i) {
                             return "seed" + std::to_string(i.param);
                         });

TEST(Differential, MStoreAgreesOnPersistenceImmediately)
{
    FabricSim fab(FabricConfig{1, 1, 1});
    runtime::SystemOptions opts(
        model::SystemConfig::uniform(2, 1, true));
    opts.policy = runtime::PropagationPolicy::Manual;
    runtime::CxlSystem sys(std::move(opts));

    fab.mstore(AgentKind::Device, 0, 9);
    sys.mstore(1, 0, 9);
    EXPECT_EQ(fab.memValue(0), 9);
    EXPECT_EQ(sys.peekMemory(0), 9);
}

TEST(Differential, LStoreAgreesOnNonPersistence)
{
    FabricSim fab(FabricConfig{1, 1, 1});
    runtime::SystemOptions opts(
        model::SystemConfig::uniform(2, 1, true));
    opts.policy = runtime::PropagationPolicy::Manual;
    runtime::CxlSystem sys(std::move(opts));

    fab.lstore(AgentKind::Host, 0, 7);
    sys.lstore(0, 0, 7);
    EXPECT_EQ(fab.memValue(0), 0);
    EXPECT_EQ(sys.peekMemory(0), 0);
    Value fv = 0;
    fab.read(AgentKind::Device, 0, &fv);
    EXPECT_EQ(fv, sys.load(1, 0));
}

} // namespace
