#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "sim/latency.hh"

namespace
{

using namespace cxl0::sim;
using cxl0::Accumulator;
using cxl0::Rng;

TEST(Latency, UnmeasurablePrimitivesMatchTable1)
{
    LatencyModel m;
    // RStore and LFlush cannot be generated from the host; LFlush
    // from neither side (§5.1).
    EXPECT_FALSE(m.measurable(AccessCategory::HostToHM,
                              MeasuredPrimitive::RStore));
    EXPECT_FALSE(m.measurable(AccessCategory::HostToHDM,
                              MeasuredPrimitive::RStore));
    for (auto c : {AccessCategory::HostToHM, AccessCategory::HostToHDM,
                   AccessCategory::DevToHM,
                   AccessCategory::DevToHDMHostBias,
                   AccessCategory::DevToHDMDevBias}) {
        EXPECT_FALSE(m.measurable(c, MeasuredPrimitive::LFlush));
    }
    // Device RStores are measurable.
    EXPECT_TRUE(m.measurable(AccessCategory::DevToHM,
                             MeasuredPrimitive::RStore));
}

TEST(Latency, HostRemoteReadRatioIs2Point34)
{
    LatencyModel m;
    EXPECT_NEAR(m.ratio(AccessCategory::HostToHDM,
                        AccessCategory::HostToHM,
                        MeasuredPrimitive::Read),
                2.34, 0.05);
}

TEST(Latency, DeviceRemoteReadRatioIs1Point94)
{
    LatencyModel m;
    EXPECT_NEAR(m.ratio(AccessCategory::DevToHM,
                        AccessCategory::DevToHDMDevBias,
                        MeasuredPrimitive::Read),
                1.94, 0.05);
}

TEST(Latency, DeviceStoreChainToHM)
{
    // §5.2: MStore is 1.45x slower than RStore, which is 2.08x slower
    // than LStore, for device writes to host-attached memory.
    LatencyModel m;
    double ls = m.ns(AccessCategory::DevToHM, MeasuredPrimitive::LStore);
    double rs = m.ns(AccessCategory::DevToHM, MeasuredPrimitive::RStore);
    double ms = m.ns(AccessCategory::DevToHM, MeasuredPrimitive::MStore);
    EXPECT_NEAR(rs / ls, 2.08, 0.05);
    EXPECT_NEAR(ms / rs, 1.45, 0.05);
}

TEST(Latency, RFlushTracksMStore)
{
    LatencyModel m;
    for (auto c : {AccessCategory::HostToHM, AccessCategory::HostToHDM,
                   AccessCategory::DevToHM,
                   AccessCategory::DevToHDMHostBias,
                   AccessCategory::DevToHDMDevBias}) {
        double ms = m.ns(c, MeasuredPrimitive::MStore);
        double rf = m.ns(c, MeasuredPrimitive::RFlush);
        EXPECT_NEAR(rf / ms, 1.0, 0.05)
            << accessCategoryName(c);
    }
}

TEST(Latency, HostLStoreUsesWriteBuffer)
{
    // Host LStores are much faster than device LStores (write
    // buffers vs a single IP cache level).
    LatencyModel m;
    EXPECT_LT(m.ns(AccessCategory::HostToHM, MeasuredPrimitive::LStore),
              m.ns(AccessCategory::DevToHM, MeasuredPrimitive::LStore));
}

TEST(Latency, DeviceLStoreSlowerToHMThanHDM)
{
    // The CXL IP uses two differently sized caches depending on the
    // target (§5.2).
    LatencyModel m;
    EXPECT_GT(m.ns(AccessCategory::DevToHM, MeasuredPrimitive::LStore),
              m.ns(AccessCategory::DevToHDMDevBias,
                   MeasuredPrimitive::LStore));
}

TEST(Latency, SampleMedianConvergesToNominal)
{
    LatencyModel m;
    Rng rng(7);
    Accumulator acc;
    for (int i = 0; i < 1000; ++i)
        acc.add(m.sample(AccessCategory::HostToHDM,
                         MeasuredPrimitive::Read, rng));
    EXPECT_NEAR(acc.median(),
                m.ns(AccessCategory::HostToHDM, MeasuredPrimitive::Read),
                5.0);
}

TEST(Latency, SampleJitterBounded)
{
    LatencyModel m;
    Rng rng(9);
    double base =
        m.ns(AccessCategory::DevToHM, MeasuredPrimitive::MStore);
    for (int i = 0; i < 500; ++i) {
        double s = m.sample(AccessCategory::DevToHM,
                            MeasuredPrimitive::MStore, rng);
        EXPECT_GE(s, base * 0.94);
        EXPECT_LE(s, base * 1.06);
    }
}

TEST(Latency, SamplingUnmeasurableThrows)
{
    LatencyModel m;
    Rng rng(1);
    EXPECT_THROW(m.sample(AccessCategory::HostToHM,
                          MeasuredPrimitive::LFlush, rng),
                 std::invalid_argument);
}

TEST(Latency, SetOverridesEntry)
{
    LatencyModel m;
    m.set(AccessCategory::HostToHM, MeasuredPrimitive::Read, 42.0);
    EXPECT_DOUBLE_EQ(
        m.ns(AccessCategory::HostToHM, MeasuredPrimitive::Read), 42.0);
}

TEST(Latency, NamesRender)
{
    EXPECT_STREQ(accessCategoryName(AccessCategory::DevToHDMDevBias),
                 "Device to HDM in Device-Bias");
    EXPECT_STREQ(measuredPrimitiveName(MeasuredPrimitive::RFlush),
                 "RFlush");
}

} // namespace
