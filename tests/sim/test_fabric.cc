#include <gtest/gtest.h>

#include "sim/fabric.hh"

namespace
{

using namespace cxl0::sim;
using cxl0::Value;

class FabricTest : public ::testing::Test
{
  protected:
    FabricTest() : fab(FabricConfig{4, 4, 1})
    {
        hm = 0;                            // a host-attached line
        hdm = 4;                           // a device-memory line
    }

    FabricSim fab;
    cxl0::Addr hm, hdm;
};

TEST_F(FabricTest, AddressPartitioning)
{
    EXPECT_EQ(fab.memKindOf(hm), MemKind::HM);
    EXPECT_EQ(fab.memKindOf(hdm), MemKind::HDM);
    EXPECT_EQ(fab.numLines(), 8u);
}

TEST_F(FabricTest, CategoriesFollowAgentAndBias)
{
    EXPECT_EQ(fab.categoryOf(AgentKind::Host, hm),
              AccessCategory::HostToHM);
    EXPECT_EQ(fab.categoryOf(AgentKind::Host, hdm),
              AccessCategory::HostToHDM);
    EXPECT_EQ(fab.categoryOf(AgentKind::Device, hm),
              AccessCategory::DevToHM);
    EXPECT_EQ(fab.categoryOf(AgentKind::Device, hdm),
              AccessCategory::DevToHDMHostBias);
    fab.setBias(hdm, BiasMode::DeviceBias);
    EXPECT_EQ(fab.categoryOf(AgentKind::Device, hdm),
              AccessCategory::DevToHDMDevBias);
}

TEST_F(FabricTest, HostReadMissFillsExclusive)
{
    fab.read(AgentKind::Host, hm);
    EXPECT_EQ(fab.hostState(hm), CacheState::E);
    // Local HM miss with an idle device: no link traffic.
    EXPECT_EQ(fab.analyzer().count(), 0u);
}

TEST_F(FabricTest, HostReadHdmMissEmitsMemRdData)
{
    fab.read(AgentKind::Host, hdm);
    ASSERT_EQ(fab.analyzer().count(), 1u);
    EXPECT_EQ(fab.analyzer().capture()[0].type, Transaction::MemRdData);
    EXPECT_EQ(fab.analyzer().capture()[0].channel, Channel::MemM2S);
    EXPECT_EQ(fab.hostState(hdm), CacheState::S);
}

TEST_F(FabricTest, HostReadSnoopsDeviceCopyOfHm)
{
    fab.setLineState(hm, CacheState::I, CacheState::S);
    fab.read(AgentKind::Host, hm);
    ASSERT_EQ(fab.analyzer().count(), 1u);
    EXPECT_EQ(fab.analyzer().capture()[0].type, Transaction::SnpInv);
    EXPECT_EQ(fab.deviceState(hm), CacheState::I);
}

TEST_F(FabricTest, ValuesFlowThroughStores)
{
    fab.lstore(AgentKind::Host, hm, 42);
    Value v = 0;
    fab.read(AgentKind::Device, hm, &v);
    EXPECT_EQ(v, 42);
}

TEST_F(FabricTest, MStorePersistsImmediately)
{
    fab.mstore(AgentKind::Device, hm, 9);
    EXPECT_EQ(fab.memValue(hm), 9);
    EXPECT_EQ(fab.deviceState(hm), CacheState::I);
    EXPECT_EQ(fab.hostState(hm), CacheState::I);
}

TEST_F(FabricTest, LStoreDoesNotPersist)
{
    fab.lstore(AgentKind::Host, hm, 7);
    EXPECT_EQ(fab.memValue(hm), 0);
    EXPECT_EQ(fab.latestValue(hm), 7);
    EXPECT_EQ(fab.hostState(hm), CacheState::M);
}

TEST_F(FabricTest, RFlushWritesBackDirtyLine)
{
    fab.lstore(AgentKind::Host, hm, 7);
    fab.rflush(AgentKind::Host, hm);
    EXPECT_EQ(fab.memValue(hm), 7);
    EXPECT_EQ(fab.hostState(hm), CacheState::I);
}

TEST_F(FabricTest, DeviceRStorePushesIntoHostDomain)
{
    fab.rstore(AgentKind::Device, hm, 5);
    ASSERT_EQ(fab.analyzer().count(), 1u);
    EXPECT_EQ(fab.analyzer().capture()[0].type, Transaction::ItoMWr);
    EXPECT_EQ(fab.hostState(hm), CacheState::M);
    EXPECT_EQ(fab.deviceState(hm), CacheState::I);
    EXPECT_EQ(fab.latestValue(hm), 5);
    EXPECT_EQ(fab.memValue(hm), 0); // owner cache, not yet memory
}

TEST_F(FabricTest, HostRStoreUnavailable)
{
    EXPECT_THROW(fab.rstore(AgentKind::Host, hm, 1),
                 std::invalid_argument);
}

TEST_F(FabricTest, LFlushUnavailableFromBothSides)
{
    EXPECT_THROW(fab.lflush(AgentKind::Host, hm),
                 std::invalid_argument);
    EXPECT_THROW(fab.lflush(AgentKind::Device, hdm),
                 std::invalid_argument);
}

TEST_F(FabricTest, DeviceBiasAccessesGenerateNoTraffic)
{
    fab.setBias(hdm, BiasMode::DeviceBias);
    fab.read(AgentKind::Device, hdm);
    fab.lstore(AgentKind::Device, hdm, 3);
    fab.rflush(AgentKind::Device, hdm);
    EXPECT_EQ(fab.analyzer().count(), 0u);
    EXPECT_EQ(fab.memValue(hdm), 3);
}

TEST_F(FabricTest, HostBiasDeviceReadEmitsRdShared)
{
    fab.read(AgentKind::Device, hdm);
    ASSERT_EQ(fab.analyzer().count(), 1u);
    EXPECT_EQ(fab.analyzer().capture()[0].type, Transaction::RdShared);
}

TEST_F(FabricTest, CoherenceInvariantMaintainedAcrossMixedOps)
{
    fab.lstore(AgentKind::Host, hm, 1);
    EXPECT_TRUE(fab.coherenceInvariantHolds());
    fab.lstore(AgentKind::Device, hm, 2);
    EXPECT_TRUE(fab.coherenceInvariantHolds());
    fab.read(AgentKind::Host, hm);
    EXPECT_TRUE(fab.coherenceInvariantHolds());
    fab.mstore(AgentKind::Device, hdm, 3);
    EXPECT_TRUE(fab.coherenceInvariantHolds());
    Value v = 0;
    fab.read(AgentKind::Host, hdm, &v);
    EXPECT_EQ(v, 3);
    EXPECT_TRUE(fab.coherenceInvariantHolds());
}

TEST_F(FabricTest, DirtySnoopWritesBack)
{
    fab.lstore(AgentKind::Device, hm, 8); // device M
    EXPECT_EQ(fab.deviceState(hm), CacheState::M);
    fab.read(AgentKind::Host, hm);        // SnpInv, dirty data saved
    EXPECT_EQ(fab.memValue(hm), 8);
}

TEST_F(FabricTest, SetLineStateRejectsIllegalPairs)
{
    EXPECT_THROW(fab.setLineState(hm, CacheState::M, CacheState::S),
                 std::invalid_argument);
    EXPECT_THROW(fab.setLineState(hm, CacheState::S, CacheState::E),
                 std::invalid_argument);
    EXPECT_NO_THROW(fab.setLineState(hm, CacheState::S, CacheState::S));
}

TEST_F(FabricTest, ClockAdvancesWithCharges)
{
    double before = fab.clockNs();
    double lat = fab.read(AgentKind::Host, hdm);
    EXPECT_GT(lat, 0.0);
    EXPECT_DOUBLE_EQ(fab.clockNs(), before + lat);
}

TEST_F(FabricTest, OutOfRangeAddressRejected)
{
    EXPECT_THROW(fab.read(AgentKind::Host, 99),
                 std::invalid_argument);
    EXPECT_THROW(fab.setBias(hm, BiasMode::DeviceBias),
                 std::invalid_argument);
}

} // namespace
