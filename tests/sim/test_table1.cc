/**
 * @file
 * Table 1 conformance: sweep every reachable MESI state pair for every
 * CXL0 primitive on both agents and both memory targets, and check the
 * observed link transactions fall within the sets the paper reports.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/fabric.hh"

namespace
{

using namespace cxl0::sim;

const CacheState kAllStates[] = {CacheState::M, CacheState::E,
                                 CacheState::S, CacheState::I};

/** Legal MESI pairs under single-writer exclusion. */
bool
legalPair(CacheState host, CacheState dev)
{
    bool hw = host == CacheState::M || host == CacheState::E;
    bool dw = dev == CacheState::M || dev == CacheState::E;
    if (hw && dev != CacheState::I)
        return false;
    if (dw && host != CacheState::I)
        return false;
    return true;
}

/** Observed transaction types for one primitive from one state pair. */
std::set<Transaction>
observe(AgentKind agent, MemKind target,
        void (*op)(FabricSim &, AgentKind, cxl0::Addr),
        CacheState host, CacheState dev)
{
    FabricSim fab(FabricConfig{2, 2, 1});
    cxl0::Addr x = target == MemKind::HM ? 0 : 2;
    fab.setLineState(x, host, dev);
    fab.analyzer().clear();
    op(fab, agent, x);
    std::set<Transaction> out;
    for (const auto &t : fab.analyzer().capture())
        out.insert(t.type);
    return out;
}

void doRead(FabricSim &f, AgentKind a, cxl0::Addr x) { f.read(a, x); }
void doLStore(FabricSim &f, AgentKind a, cxl0::Addr x)
{
    f.lstore(a, x, 1);
}
void doRStore(FabricSim &f, AgentKind a, cxl0::Addr x)
{
    f.rstore(a, x, 1);
}
void doMStore(FabricSim &f, AgentKind a, cxl0::Addr x)
{
    f.mstore(a, x, 1);
}
void doRFlush(FabricSim &f, AgentKind a, cxl0::Addr x)
{
    f.rflush(a, x);
}

/** Check every observation is inside `allowed` for all legal pairs. */
void
sweep(AgentKind agent, MemKind target,
      void (*op)(FabricSim &, AgentKind, cxl0::Addr),
      const std::set<Transaction> &allowed, const char *row)
{
    for (CacheState h : kAllStates) {
        for (CacheState d : kAllStates) {
            if (!legalPair(h, d))
                continue;
            for (Transaction t : observe(agent, target, op, h, d)) {
                EXPECT_TRUE(allowed.count(t))
                    << row << ": unexpected " << transactionName(t)
                    << " from (" << cacheStateName(h) << ","
                    << cacheStateName(d) << ")";
            }
        }
    }
}

// --- Host rows of Table 1 ---

TEST(Table1, HostReadHm)
{
    sweep(AgentKind::Host, MemKind::HM, doRead,
          {Transaction::SnpInv}, "Host Read HM");
    // The (*, I) cases observe no transaction.
    for (CacheState h : kAllStates) {
        EXPECT_TRUE(observe(AgentKind::Host, MemKind::HM, doRead, h,
                            CacheState::I)
                        .empty());
    }
}

TEST(Table1, HostReadHdm)
{
    sweep(AgentKind::Host, MemKind::HDM, doRead,
          {Transaction::MemRdData}, "Host Read HDM");
    // (I, *) triggers MemRdData; valid host states observe None.
    auto miss = observe(AgentKind::Host, MemKind::HDM, doRead,
                        CacheState::I, CacheState::I);
    EXPECT_TRUE(miss.count(Transaction::MemRdData));
    EXPECT_TRUE(observe(AgentKind::Host, MemKind::HDM, doRead,
                        CacheState::E, CacheState::I)
                    .empty());
}

TEST(Table1, HostLStoreHm)
{
    sweep(AgentKind::Host, MemKind::HM, doLStore,
          {Transaction::SnpInv}, "Host LStore HM");
}

TEST(Table1, HostLStoreHdm)
{
    sweep(AgentKind::Host, MemKind::HDM, doLStore,
          {Transaction::MemRdData, Transaction::MemRd},
          "Host LStore HDM");
    // From S the upgrade is a plain MemRd.
    auto up = observe(AgentKind::Host, MemKind::HDM, doLStore,
                      CacheState::S, CacheState::I);
    EXPECT_TRUE(up.count(Transaction::MemRd));
}

TEST(Table1, HostMStoreHm)
{
    // Non-temporal store + fence: SnpInv in every state.
    for (CacheState h : kAllStates) {
        for (CacheState d : kAllStates) {
            if (!legalPair(h, d))
                continue;
            auto obs =
                observe(AgentKind::Host, MemKind::HM, doMStore, h, d);
            EXPECT_EQ(obs, std::set<Transaction>{Transaction::SnpInv});
        }
    }
}

TEST(Table1, HostMStoreHdm)
{
    for (CacheState h : kAllStates) {
        auto obs = observe(AgentKind::Host, MemKind::HDM, doMStore, h,
                           CacheState::I);
        EXPECT_EQ(obs, std::set<Transaction>{Transaction::MemWr});
    }
}

TEST(Table1, HostRFlushHm)
{
    sweep(AgentKind::Host, MemKind::HM, doRFlush,
          {Transaction::SnpInv}, "Host RFlush HM");
}

TEST(Table1, HostRFlushHdm)
{
    sweep(AgentKind::Host, MemKind::HDM, doRFlush,
          {Transaction::MemInv, Transaction::MemWr},
          "Host RFlush HDM");
    auto dirty = observe(AgentKind::Host, MemKind::HDM, doRFlush,
                         CacheState::M, CacheState::I);
    EXPECT_EQ(dirty, std::set<Transaction>{Transaction::MemWr});
    auto clean = observe(AgentKind::Host, MemKind::HDM, doRFlush,
                         CacheState::S, CacheState::S);
    EXPECT_EQ(clean, std::set<Transaction>{Transaction::MemInv});
}

// --- Device rows of Table 1 ---

TEST(Table1, DeviceReadHm)
{
    sweep(AgentKind::Device, MemKind::HM, doRead,
          {Transaction::RdShared}, "Device Read HM");
}

TEST(Table1, DeviceReadHdmHostBias)
{
    sweep(AgentKind::Device, MemKind::HDM, doRead,
          {Transaction::RdShared}, "Device Read HDM");
}

TEST(Table1, DeviceLStore)
{
    sweep(AgentKind::Device, MemKind::HM, doLStore,
          {Transaction::RdOwn}, "Device LStore HM");
    sweep(AgentKind::Device, MemKind::HDM, doLStore,
          {Transaction::RdOwn}, "Device LStore HDM");
}

TEST(Table1, DeviceRStoreHm)
{
    for (CacheState h : kAllStates) {
        for (CacheState d : kAllStates) {
            if (!legalPair(h, d))
                continue;
            auto obs =
                observe(AgentKind::Device, MemKind::HM, doRStore, h, d);
            EXPECT_EQ(obs, std::set<Transaction>{Transaction::ItoMWr});
        }
    }
}

TEST(Table1, DeviceRStoreHdm)
{
    sweep(AgentKind::Device, MemKind::HDM, doRStore,
          {Transaction::RdOwn}, "Device RStore HDM");
}

TEST(Table1, DeviceMStoreHm)
{
    sweep(AgentKind::Device, MemKind::HM, doMStore,
          {Transaction::RdOwn, Transaction::DirtyEvict,
           Transaction::WOWrInvF, Transaction::WrInv},
          "Device MStore HM");
    // The invalid case takes the (RdOwn +) DirtyEvict path.
    auto cold = observe(AgentKind::Device, MemKind::HM, doMStore,
                        CacheState::I, CacheState::I);
    EXPECT_TRUE(cold.count(Transaction::RdOwn));
    EXPECT_TRUE(cold.count(Transaction::DirtyEvict));
}

TEST(Table1, DeviceMStoreHdmHostBias)
{
    sweep(AgentKind::Device, MemKind::HDM, doMStore,
          {Transaction::MemRd}, "Device MStore HDM");
    // Only when the host holds the line is traffic needed.
    auto none = observe(AgentKind::Device, MemKind::HDM, doMStore,
                        CacheState::I, CacheState::M);
    EXPECT_TRUE(none.empty());
    auto recall = observe(AgentKind::Device, MemKind::HDM, doMStore,
                          CacheState::S, CacheState::I);
    EXPECT_EQ(recall, std::set<Transaction>{Transaction::MemRd});
}

TEST(Table1, DeviceRFlushHm)
{
    sweep(AgentKind::Device, MemKind::HM, doRFlush,
          {Transaction::CleanEvict, Transaction::DirtyEvict},
          "Device RFlush HM");
    auto dirty = observe(AgentKind::Device, MemKind::HM, doRFlush,
                         CacheState::I, CacheState::M);
    EXPECT_EQ(dirty, std::set<Transaction>{Transaction::DirtyEvict});
    auto clean = observe(AgentKind::Device, MemKind::HM, doRFlush,
                         CacheState::I, CacheState::S);
    EXPECT_EQ(clean, std::set<Transaction>{Transaction::CleanEvict});
}

TEST(Table1, DeviceRFlushHdm)
{
    sweep(AgentKind::Device, MemKind::HDM, doRFlush,
          {Transaction::MemRd}, "Device RFlush HDM");
}

TEST(Table1, ManyToOneMappingExists)
{
    // §5.1's headline: multiple concrete transactions map to one CXL0
    // primitive. Count distinct non-empty observation sets for the
    // device MStore row.
    std::set<std::set<Transaction>> variants;
    for (CacheState h : kAllStates) {
        for (CacheState d : kAllStates) {
            if (!legalPair(h, d))
                continue;
            variants.insert(
                observe(AgentKind::Device, MemKind::HM, doMStore, h, d));
        }
    }
    EXPECT_GE(variants.size(), 2u);
}

} // namespace
