#include <gtest/gtest.h>

#include "sim/transaction.hh"

namespace
{

using namespace cxl0::sim;

TEST(Transaction, NamesMatchTable1Vocabulary)
{
    EXPECT_STREQ(transactionName(Transaction::SnpInv), "SnpInv");
    EXPECT_STREQ(transactionName(Transaction::MemRdData), "MemRdData");
    EXPECT_STREQ(transactionName(Transaction::MemWr), "MemWr");
    EXPECT_STREQ(transactionName(Transaction::RdShared), "RdShared");
    EXPECT_STREQ(transactionName(Transaction::RdOwn), "RdOwn");
    EXPECT_STREQ(transactionName(Transaction::ItoMWr), "ItoMWr");
    EXPECT_STREQ(transactionName(Transaction::DirtyEvict), "DirtyEvict");
    EXPECT_STREQ(transactionName(Transaction::CleanEvict), "CleanEvict");
    EXPECT_STREQ(transactionName(Transaction::WOWrInvF), "WOWrInv/F");
    EXPECT_STREQ(transactionName(Transaction::WrInv), "WrInv");
    EXPECT_STREQ(transactionName(Transaction::MemInv), "MemInv");
    EXPECT_STREQ(transactionName(Transaction::None), "None");
}

TEST(Transaction, ChannelNames)
{
    EXPECT_STREQ(channelName(Channel::CacheH2D), "CXL.cache H2D");
    EXPECT_STREQ(channelName(Channel::CacheD2H), "CXL.cache D2H");
    EXPECT_STREQ(channelName(Channel::MemM2S), "CXL.mem M2S");
}

TEST(Transaction, DescribeSingle)
{
    ObservedTransaction t{Channel::CacheH2D, Transaction::SnpInv};
    EXPECT_EQ(t.describe(), "SnpInv");
    ObservedTransaction none{Channel::None, Transaction::None};
    EXPECT_EQ(none.describe(), "None");
}

TEST(Transaction, DescribeSequenceJoinsWithPlus)
{
    std::vector<ObservedTransaction> ts{
        {Channel::CacheD2H, Transaction::RdOwn},
        {Channel::CacheD2H, Transaction::DirtyEvict}};
    EXPECT_EQ(describeTransactions(ts), "RdOwn + DirtyEvict");
}

TEST(Transaction, DescribeEmptyIsNone)
{
    EXPECT_EQ(describeTransactions({}), "None");
    std::vector<ObservedTransaction> only_none{
        {Channel::None, Transaction::None}};
    EXPECT_EQ(describeTransactions(only_none), "None");
}

TEST(Transaction, OrderingIsTotal)
{
    ObservedTransaction a{Channel::CacheH2D, Transaction::SnpInv};
    ObservedTransaction b{Channel::MemM2S, Transaction::MemWr};
    EXPECT_TRUE(a < b || b < a);
    EXPECT_FALSE(a < a);
}

} // namespace
