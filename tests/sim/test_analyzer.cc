#include <gtest/gtest.h>

#include "sim/analyzer.hh"

namespace
{

using namespace cxl0::sim;

TEST(Analyzer, StartsEmpty)
{
    ProtocolAnalyzer a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_TRUE(a.capture().empty());
    EXPECT_EQ(a.describe(), "None");
}

TEST(Analyzer, RecordsInOrder)
{
    ProtocolAnalyzer a;
    a.record(Channel::CacheD2H, Transaction::RdOwn);
    a.record(Channel::CacheD2H, Transaction::DirtyEvict);
    ASSERT_EQ(a.capture().size(), 2u);
    EXPECT_EQ(a.capture()[0].type, Transaction::RdOwn);
    EXPECT_EQ(a.capture()[1].type, Transaction::DirtyEvict);
    EXPECT_EQ(a.describe(), "RdOwn + DirtyEvict");
}

TEST(Analyzer, CountIgnoresNone)
{
    ProtocolAnalyzer a;
    a.record(Channel::None, Transaction::None);
    a.record(Channel::MemM2S, Transaction::MemWr);
    EXPECT_EQ(a.count(), 1u);
}

TEST(Analyzer, ClearResets)
{
    ProtocolAnalyzer a;
    a.record(Channel::MemM2S, Transaction::MemWr);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_TRUE(a.capture().empty());
}

TEST(Analyzer, HistogramAggregates)
{
    ProtocolAnalyzer a;
    a.record(Channel::CacheH2D, Transaction::SnpInv);
    a.record(Channel::CacheH2D, Transaction::SnpInv);
    a.record(Channel::MemM2S, Transaction::MemWr);
    auto h = a.histogram();
    EXPECT_EQ(h[Transaction::SnpInv], 2u);
    EXPECT_EQ(h[Transaction::MemWr], 1u);
    EXPECT_EQ(h.count(Transaction::RdOwn), 0u);
}

} // namespace
