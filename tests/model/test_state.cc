#include <gtest/gtest.h>

#include <unordered_set>

#include "model/state.hh"

namespace
{

using cxl0::kBottom;
using cxl0::model::State;
using cxl0::model::StateHash;

TEST(State, InitialStateIsEmptyCachesZeroMemory)
{
    State s(2, 3);
    for (cxl0::NodeId i = 0; i < 2; ++i)
        for (cxl0::Addr x = 0; x < 3; ++x)
            EXPECT_FALSE(s.cacheValid(i, x));
    for (cxl0::Addr x = 0; x < 3; ++x)
        EXPECT_EQ(s.memory(x), 0);
    EXPECT_TRUE(s.allCachesEmpty());
    EXPECT_TRUE(s.invariantHolds());
}

TEST(State, SetAndReadCache)
{
    State s(2, 2);
    s.setCache(1, 0, 7);
    EXPECT_TRUE(s.cacheValid(1, 0));
    EXPECT_EQ(s.cache(1, 0), 7);
    EXPECT_FALSE(s.cacheValid(0, 0));
    EXPECT_FALSE(s.allCachesEmpty());
}

TEST(State, InvalidateEverywhere)
{
    State s(3, 1);
    s.setCache(0, 0, 1);
    s.setCache(1, 0, 1);
    s.invalidateEverywhere(0);
    EXPECT_TRUE(s.allCachesEmpty());
}

TEST(State, InvalidateOthersKeepsOwnEntry)
{
    State s(3, 1);
    s.setCache(0, 0, 1);
    s.setCache(1, 0, 1);
    s.setCache(2, 0, 1);
    s.invalidateOthers(1, 0);
    EXPECT_FALSE(s.cacheValid(0, 0));
    EXPECT_TRUE(s.cacheValid(1, 0));
    EXPECT_FALSE(s.cacheValid(2, 0));
}

TEST(State, ClearCacheDropsAllLines)
{
    State s(2, 2);
    s.setCache(0, 0, 1);
    s.setCache(0, 1, 2);
    s.setCache(1, 0, 1);
    s.clearCache(0);
    EXPECT_FALSE(s.cacheValid(0, 0));
    EXPECT_FALSE(s.cacheValid(0, 1));
    EXPECT_TRUE(s.cacheValid(1, 0));
}

TEST(State, AnyCachedFindsTheUniqueValue)
{
    State s(3, 2);
    EXPECT_EQ(s.anyCached(0), kBottom);
    s.setCache(2, 0, 9);
    EXPECT_EQ(s.anyCached(0), 9);
    EXPECT_TRUE(s.cachedAnywhere(0));
    EXPECT_FALSE(s.cachedAnywhere(1));
}

TEST(State, InvariantDetectsDivergentCaches)
{
    State s(2, 1);
    s.setCache(0, 0, 1);
    s.setCache(1, 0, 2);
    EXPECT_FALSE(s.invariantHolds());
    s.setCache(1, 0, 1);
    EXPECT_TRUE(s.invariantHolds());
}

TEST(State, CacheMayDisagreeWithMemory)
{
    // §3.3: the cached value may be newer than the owner's memory.
    State s(1, 1);
    s.setCache(0, 0, 5);
    s.setMemory(0, 0);
    EXPECT_TRUE(s.invariantHolds());
}

TEST(State, EqualityAndHashAgree)
{
    State a(2, 2), b(2, 2);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    b.setCache(0, 1, 3);
    EXPECT_NE(a, b);
    a.setCache(0, 1, 3);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(State, HashDistinguishesCacheFromMemory)
{
    State a(1, 1), b(1, 1);
    a.setCache(0, 0, 1);
    b.setMemory(0, 1);
    EXPECT_NE(a, b);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(State, UsableInUnorderedSet)
{
    std::unordered_set<State, StateHash> set;
    State a(2, 1);
    set.insert(a);
    EXPECT_FALSE(set.insert(a).second);
    a.setMemory(0, 4);
    EXPECT_TRUE(set.insert(a).second);
    EXPECT_EQ(set.size(), 2u);
}

TEST(State, DescribeShowsValidEntries)
{
    State s(2, 2);
    s.setCache(0, 1, 8);
    s.setMemory(0, 3);
    std::string d = s.describe();
    EXPECT_NE(d.find("x1=8"), std::string::npos);
    EXPECT_NE(d.find("x0=3"), std::string::npos);
}

} // namespace
