#include <gtest/gtest.h>

#include <stdexcept>

#include "model/config.hh"

namespace
{

using cxl0::model::MachineConfig;
using cxl0::model::SystemConfig;

TEST(SystemConfig, UniformBuildsExpectedShape)
{
    SystemConfig cfg = SystemConfig::uniform(3, 2, true);
    EXPECT_EQ(cfg.numNodes(), 3u);
    EXPECT_EQ(cfg.numAddrs(), 6u);
    EXPECT_EQ(cfg.ownerOf(0), 0);
    EXPECT_EQ(cfg.ownerOf(1), 0);
    EXPECT_EQ(cfg.ownerOf(2), 1);
    EXPECT_EQ(cfg.ownerOf(5), 2);
    for (cxl0::NodeId n = 0; n < 3; ++n)
        EXPECT_TRUE(cfg.isPersistent(n));
}

TEST(SystemConfig, AddrsOwnedByPartitionsTheSpace)
{
    SystemConfig cfg = SystemConfig::uniform(2, 3, false);
    auto a0 = cfg.addrsOwnedBy(0);
    auto a1 = cfg.addrsOwnedBy(1);
    EXPECT_EQ(a0.size(), 3u);
    EXPECT_EQ(a1.size(), 3u);
    for (cxl0::Addr x : a0)
        EXPECT_EQ(cfg.ownerOf(x), 0);
    for (cxl0::Addr x : a1)
        EXPECT_EQ(cfg.ownerOf(x), 1);
}

TEST(SystemConfig, MixedPersistence)
{
    SystemConfig cfg({MachineConfig{true}, MachineConfig{false}}, {0, 1});
    EXPECT_TRUE(cfg.isPersistent(0));
    EXPECT_FALSE(cfg.isPersistent(1));
}

TEST(SystemConfig, RejectsEmptyMachineList)
{
    EXPECT_THROW(SystemConfig({}, {}), std::invalid_argument);
}

TEST(SystemConfig, RejectsOutOfRangeOwner)
{
    EXPECT_THROW(SystemConfig({MachineConfig{}}, {1}),
                 std::invalid_argument);
}

TEST(SystemConfig, MemoryOnlyNodesAllowed)
{
    // A node may own all memory while others own none (§3.1: some
    // nodes may be only memory nodes).
    SystemConfig cfg({MachineConfig{}, MachineConfig{true}}, {1, 1});
    EXPECT_TRUE(cfg.addrsOwnedBy(0).empty());
    EXPECT_EQ(cfg.addrsOwnedBy(1).size(), 2u);
}

TEST(SystemConfig, DescribeMentionsEveryMachine)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    std::string d = cfg.describe();
    EXPECT_NE(d.find("M0"), std::string::npos);
    EXPECT_NE(d.find("M1"), std::string::npos);
}

} // namespace
