#include <gtest/gtest.h>

#include "model/semantics.hh"

namespace
{

using namespace cxl0::model;
using cxl0::kBottom;

class SemanticsTest : public ::testing::Test
{
  protected:
    // Two machines, one address each, both persistent.
    SemanticsTest()
        : cfg(SystemConfig::uniform(2, 1, true)), model(cfg),
          init(model.initialState())
    {
    }

    SystemConfig cfg;
    Cxl0Model model;
    State init;
};

TEST_F(SemanticsTest, LStoreWritesLocalCacheAndInvalidatesOthers)
{
    State s = init;
    s.setCache(1, 0, 5); // another cache holds x0
    auto next = model.apply(s, Label::lstore(0, 0, 7));
    ASSERT_TRUE(next);
    EXPECT_EQ(next->cache(0, 0), 7);
    EXPECT_FALSE(next->cacheValid(1, 0));
    EXPECT_EQ(next->memory(0), 0);
}

TEST_F(SemanticsTest, RStoreWritesOwnerCache)
{
    // addr 1 is owned by node 1; node 0 issues the RStore.
    auto next = model.apply(init, Label::rstore(0, 1, 3));
    ASSERT_TRUE(next);
    EXPECT_FALSE(next->cacheValid(0, 1));
    EXPECT_EQ(next->cache(1, 1), 3);
    EXPECT_EQ(next->memory(1), 0);
}

TEST_F(SemanticsTest, RStoreByOwnerActsLikeLStore)
{
    auto r = model.apply(init, Label::rstore(1, 1, 3));
    auto l = model.apply(init, Label::lstore(1, 1, 3));
    ASSERT_TRUE(r);
    ASSERT_TRUE(l);
    EXPECT_EQ(*r, *l);
}

TEST_F(SemanticsTest, MStoreWritesMemoryAndInvalidatesAllCaches)
{
    State s = init;
    s.setCache(0, 1, 9);
    auto next = model.apply(s, Label::mstore(0, 1, 4));
    ASSERT_TRUE(next);
    EXPECT_EQ(next->memory(1), 4);
    EXPECT_FALSE(next->cacheValid(0, 1));
    EXPECT_FALSE(next->cacheValid(1, 1));
}

TEST_F(SemanticsTest, LoadFromMemoryWhenNoCacheHolds)
{
    State s = init;
    s.setMemory(1, 6);
    auto v = model.loadable(s, 0, 1);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 6);
    auto next = model.apply(s, Label::load(0, 1, 6));
    ASSERT_TRUE(next);
    // LOAD-from-M leaves the state unchanged.
    EXPECT_EQ(*next, s);
}

TEST_F(SemanticsTest, LoadFromRemoteCacheCopiesIntoIssuer)
{
    State s = init;
    s.setCache(1, 0, 8); // node 1 caches node 0's address
    auto next = model.apply(s, Label::load(0, 0, 8));
    ASSERT_TRUE(next);
    EXPECT_EQ(next->cache(0, 0), 8);
    EXPECT_EQ(next->cache(1, 0), 8); // the source keeps its copy
}

TEST_F(SemanticsTest, LoadWithWrongValueIsNotEnabled)
{
    State s = init;
    s.setMemory(0, 2);
    EXPECT_FALSE(model.apply(s, Label::load(0, 0, 1)));
    EXPECT_TRUE(model.apply(s, Label::load(0, 0, 2)));
}

TEST_F(SemanticsTest, CachedValueShadowsMemory)
{
    State s = init;
    s.setMemory(0, 2);
    s.setCache(1, 0, 5);
    auto v = model.loadable(s, 0, 0);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 5);
}

TEST_F(SemanticsTest, LFlushBlockedWhileLineCached)
{
    State s = init;
    s.setCache(0, 0, 1);
    EXPECT_FALSE(model.apply(s, Label::lflush(0, 0)));
    // Another machine's copy does not block an LFlush.
    State t = init;
    t.setCache(1, 0, 1);
    EXPECT_TRUE(model.apply(t, Label::lflush(0, 0)));
}

TEST_F(SemanticsTest, RFlushBlockedWhileAnyCacheHoldsLine)
{
    State s = init;
    s.setCache(1, 0, 1);
    EXPECT_FALSE(model.apply(s, Label::rflush(0, 0)));
    EXPECT_TRUE(model.apply(init, Label::rflush(0, 0)));
}

TEST_F(SemanticsTest, GpfRequiresAllCachesEmpty)
{
    State s = init;
    s.setCache(1, 1, 1);
    EXPECT_FALSE(model.apply(s, Label::gpf(0)));
    EXPECT_TRUE(model.apply(init, Label::gpf(0)));
}

TEST_F(SemanticsTest, FlushesDoNotChangeState)
{
    auto next = model.apply(init, Label::rflush(0, 0));
    ASSERT_TRUE(next);
    EXPECT_EQ(*next, init);
}

TEST_F(SemanticsTest, TauPropagatesNonOwnerCacheToOwnerCache)
{
    State s = init;
    s.setCache(0, 1, 5); // node 0 caches node 1's address
    auto succs = model.tauSuccessors(s);
    ASSERT_EQ(succs.size(), 1u);
    EXPECT_FALSE(succs[0].cacheValid(0, 1));
    EXPECT_EQ(succs[0].cache(1, 1), 5);
    EXPECT_EQ(succs[0].memory(1), 0);
}

TEST_F(SemanticsTest, TauPropagatesOwnerCacheToMemory)
{
    State s = init;
    s.setCache(0, 0, 5); // owner caches its own address
    auto succs = model.tauSuccessors(s);
    ASSERT_EQ(succs.size(), 1u);
    EXPECT_FALSE(succs[0].cacheValid(0, 0));
    EXPECT_EQ(succs[0].memory(0), 5);
}

TEST_F(SemanticsTest, TauClosureReachesFullDrain)
{
    State s = init;
    s.setCache(0, 1, 5);
    bool found_drained = false;
    for (const State &t : model.tauClosure(s)) {
        if (t.allCachesEmpty() && t.memory(1) == 5)
            found_drained = true;
        EXPECT_TRUE(t.invariantHolds());
    }
    EXPECT_TRUE(found_drained);
}

TEST_F(SemanticsTest, CrashClearsCacheKeepsPersistentMemory)
{
    State s = init;
    s.setCache(0, 0, 3);
    s.setMemory(0, 2);
    State next = model.applyCrash(s, 0);
    EXPECT_FALSE(next.cacheValid(0, 0));
    EXPECT_EQ(next.memory(0), 2); // persistent memory survives
}

TEST_F(SemanticsTest, CrashResetsVolatileMemory)
{
    SystemConfig vcfg = SystemConfig::uniform(2, 1, false);
    Cxl0Model vmodel(vcfg);
    State s = vmodel.initialState();
    s.setMemory(0, 2);
    s.setMemory(1, 7);
    State next = vmodel.applyCrash(s, 0);
    EXPECT_EQ(next.memory(0), 0); // volatile, owned by crashed node
    EXPECT_EQ(next.memory(1), 7); // other node unaffected
}

TEST_F(SemanticsTest, CrashLeavesOtherCachesInBaseModel)
{
    State s = init;
    s.setCache(1, 0, 3); // node 1 caches node 0's address
    State next = model.applyCrash(s, 0);
    EXPECT_EQ(next.cache(1, 0), 3);
}

TEST_F(SemanticsTest, RmwRequiresExpectedValue)
{
    State s = init;
    s.setMemory(0, 2);
    EXPECT_FALSE(model.apply(s, Label::lrmw(0, 0, 1, 9)));
    auto next = model.apply(s, Label::lrmw(0, 0, 2, 9));
    ASSERT_TRUE(next);
    EXPECT_EQ(next->cache(0, 0), 9);
    EXPECT_EQ(next->memory(0), 2); // L-RMW does not touch memory
}

TEST_F(SemanticsTest, RRmwWritesOwnerCache)
{
    auto next = model.apply(init, Label::rrmw(0, 1, 0, 5));
    ASSERT_TRUE(next);
    EXPECT_EQ(next->cache(1, 1), 5);
    EXPECT_FALSE(next->cacheValid(0, 1));
}

TEST_F(SemanticsTest, MRmwWritesMemory)
{
    auto next = model.apply(init, Label::mrmw(0, 1, 0, 5));
    ASSERT_TRUE(next);
    EXPECT_EQ(next->memory(1), 5);
    EXPECT_FALSE(next->cachedAnywhere(1));
}

TEST_F(SemanticsTest, RmwReadsFromCacheToo)
{
    State s = init;
    s.setCache(1, 0, 4); // remote cache holds the current value
    auto next = model.apply(s, Label::lrmw(0, 0, 4, 6));
    ASSERT_TRUE(next);
    EXPECT_EQ(next->cache(0, 0), 6);
    EXPECT_FALSE(next->cacheValid(1, 0));
}

TEST_F(SemanticsTest, StepsPreserveGlobalInvariant)
{
    // Drive a short scripted run and check the invariant throughout.
    State s = init;
    for (const Label &l :
         {Label::lstore(0, 1, 1), Label::load(1, 1, 1),
          Label::rstore(0, 0, 2), Label::mstore(1, 1, 3),
          Label::load(0, 1, 3)}) {
        auto next = model.apply(s, l);
        ASSERT_TRUE(next) << l.describe();
        s = *next;
        EXPECT_TRUE(s.invariantHolds()) << l.describe();
    }
}

TEST_F(SemanticsTest, EnabledLabelsContainsOnlyApplicable)
{
    State s = init;
    s.setCache(0, 1, 1);
    for (const Label &l : model.enabledLabels(s, 1)) {
        EXPECT_TRUE(model.apply(s, l)) << l.describe();
        EXPECT_NE(l.op, Op::Tau);
    }
}

TEST_F(SemanticsTest, WithoutCrashesSemanticsIsSequentiallyConsistent)
{
    // §3.3: without crashes every load reads the last written value,
    // regardless of the store flavour used.
    for (Op store : {Op::LStore, Op::RStore, Op::MStore}) {
        State s = init;
        auto w = model.apply(s, Label{store, 0, 1, 42, 0});
        ASSERT_TRUE(w);
        auto v = model.loadable(*w, 1, 1);
        ASSERT_TRUE(v);
        EXPECT_EQ(*v, 42);
    }
}

TEST(Restrictions, EmptyMaskAllowsEverything)
{
    Restrictions r;
    EXPECT_TRUE(r.allows(0, Op::RStore));
    EXPECT_TRUE(r.allows(5, Op::Gpf));
}

TEST(Restrictions, MasksAreEnforcedByApply)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Restrictions r;
    r.allowedOps = {opBit(Op::Load) | opBit(Op::LStore),
                    opBit(Op::Load)};
    Cxl0Model model(cfg, ModelVariant::Base, r);
    State init = model.initialState();
    EXPECT_TRUE(model.apply(init, Label::lstore(0, 0, 1)));
    EXPECT_FALSE(model.apply(init, Label::mstore(0, 0, 1)));
    EXPECT_FALSE(model.apply(init, Label::lstore(1, 0, 1)));
    // Crash is always allowed.
    EXPECT_TRUE(model.apply(init, Label::crash(1)));
}

TEST(Restrictions, CacheToCachePropagationCanBeDisabled)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Restrictions r;
    r.allowCacheToCache = false;
    Cxl0Model model(cfg, ModelVariant::Base, r);
    State s = model.initialState();
    s.setCache(1, 0, 5); // non-owner holds the line
    EXPECT_TRUE(model.tauSuccessors(s).empty());
}

TEST(Restrictions, MismatchedMaskCountRejected)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Restrictions r;
    r.allowedOps = {0};
    EXPECT_THROW(Cxl0Model(cfg, ModelVariant::Base, r),
                 std::invalid_argument);
}

} // namespace
