#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "model/state_table.hh"

namespace
{

using cxl0::kBottom;
using cxl0::Rng;
using cxl0::Value;
using cxl0::model::State;
using cxl0::model::StateId;
using cxl0::model::StateTable;
using cxl0::model::ValueSpanTable;

TEST(StateTable, InterningIsIdempotent)
{
    StateTable table(2, 3);
    State s(2, 3);
    s.setCache(0, 1, 7);
    s.setMemory(2, 9);

    bool fresh = false;
    StateId a = table.intern(s, &fresh);
    EXPECT_TRUE(fresh);
    StateId b = table.intern(s, &fresh);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(a, b);
    EXPECT_EQ(table.size(), 1u);

    // An equal state built independently maps to the same id.
    State t(2, 3);
    t.setMemory(2, 9);
    t.setCache(0, 1, 7);
    EXPECT_EQ(table.intern(t), a);
    EXPECT_EQ(table.size(), 1u);
}

TEST(StateTable, DistinctStatesGetDistinctIds)
{
    StateTable table(2, 2);
    State s(2, 2);
    StateId base = table.intern(s);
    s.setCache(1, 0, 5);
    StateId cached = table.intern(s);
    s.setMemory(1, 5);
    StateId stored = table.intern(s);
    EXPECT_NE(base, cached);
    EXPECT_NE(cached, stored);
    EXPECT_NE(base, stored);
    EXPECT_EQ(table.size(), 3u);
}

TEST(StateTable, MaterializeRoundTrips)
{
    StateTable table(3, 2);
    State s(3, 2);
    s.setCache(2, 1, 11);
    s.setCache(0, 0, 4);
    s.setMemory(0, 4);
    StateId id = table.intern(s);

    State out = table.materialize(id);
    EXPECT_EQ(out, s);
    EXPECT_EQ(out.hash(), s.hash());
    EXPECT_EQ(table.hashOf(id), s.hash());

    // In-place materialization reuses the buffers of a shaped state.
    State reuse(3, 2);
    table.materialize(id, reuse);
    EXPECT_EQ(reuse, s);
}

TEST(StateTable, IdsSurviveTableGrowth)
{
    // Intern well past the initial index capacity, then verify every
    // id still resolves to its original contents (the arena must never
    // move or corrupt entries while the probe index rehashes).
    StateTable table(2, 2);
    Rng rng(0xfeedULL);
    std::vector<State> originals;
    std::vector<StateId> ids;
    for (int i = 0; i < 2000; ++i) {
        State s(2, 2);
        for (cxl0::NodeId n = 0; n < 2; ++n)
            for (cxl0::Addr x = 0; x < 2; ++x)
                if (rng.chance(1, 2))
                    s.setCache(n, x, rng.nextInRange(0, 200));
        for (cxl0::Addr x = 0; x < 2; ++x)
            s.setMemory(x, rng.nextInRange(0, 200));
        ids.push_back(table.intern(s));
        originals.push_back(std::move(s));
    }
    for (size_t i = 0; i < originals.size(); ++i) {
        EXPECT_EQ(table.materialize(ids[i]), originals[i]);
        EXPECT_EQ(table.intern(originals[i]), ids[i]);
    }
}

TEST(StateHash, IncrementalEqualsFullRehashUnderRandomMutations)
{
    // Drive a state through a long random mutation sequence; after
    // every mutation the incrementally maintained digest must equal a
    // full rescan of both vectors.
    const size_t nodes = 3, addrs = 4;
    Rng rng(0x5eedULL);
    State s(nodes, addrs);
    ASSERT_EQ(s.hash(), s.recomputeHash());
    for (int step = 0; step < 5000; ++step) {
        switch (rng.nextBelow(6)) {
          case 0:
            s.setCache(rng.nextBelow(nodes), rng.nextBelow(addrs),
                       rng.nextInRange(-50, 50));
            break;
          case 1:
            s.setCache(rng.nextBelow(nodes), rng.nextBelow(addrs),
                       kBottom);
            break;
          case 2:
            s.setMemory(rng.nextBelow(addrs), rng.nextInRange(-50, 50));
            break;
          case 3:
            s.invalidateEverywhere(rng.nextBelow(addrs));
            break;
          case 4:
            s.invalidateOthers(rng.nextBelow(nodes),
                               rng.nextBelow(addrs));
            break;
          case 5:
            s.clearCache(rng.nextBelow(nodes));
            break;
        }
        ASSERT_EQ(s.hash(), s.recomputeHash()) << "after step " << step;
    }
}

TEST(StateHash, PathIndependent)
{
    // Zobrist hashing: any mutation order reaching the same content
    // yields the same digest (required for interning correctness).
    State a(2, 2), b(2, 2);
    a.setCache(0, 0, 1);
    a.setCache(1, 1, 2);
    a.setMemory(0, 3);

    b.setMemory(0, 3);
    b.setCache(1, 1, 2);
    b.setCache(0, 0, 9); // overwritten below
    b.setCache(0, 0, 1);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(FrameTable, CanonicalizesAndDeduplicates)
{
    cxl0::model::FrameTable table;
    std::vector<StateId> a{3, 1, 2, 1};
    cxl0::model::FrameId fa = table.intern(a);
    // The scratch vector is canonicalized in place.
    EXPECT_EQ(a, (std::vector<StateId>{1, 2, 3}));
    EXPECT_EQ(table.sizeOf(fa), 3u);
    EXPECT_EQ(table.begin(fa)[0], 1u);
    EXPECT_EQ(table.begin(fa)[2], 3u);

    // Any permutation (with duplicates) of the same set maps to the
    // same id; set equality is id equality.
    std::vector<StateId> b{2, 3, 3, 1};
    EXPECT_EQ(table.intern(b), fa);
    EXPECT_EQ(table.size(), 1u);

    std::vector<StateId> c{1, 2};
    cxl0::model::FrameId fc = table.intern(c);
    EXPECT_NE(fc, fa);
    EXPECT_EQ(table.size(), 2u);
}

TEST(FrameTable, EmptyFrameIsValid)
{
    cxl0::model::FrameTable table;
    std::vector<StateId> none;
    cxl0::model::FrameId f = table.intern(none);
    EXPECT_EQ(table.sizeOf(f), 0u);
    std::vector<StateId> none2;
    EXPECT_EQ(table.intern(none2), f);
}

TEST(FrameTable, IdsSurviveTableGrowth)
{
    // Intern far past the initial probe capacity; every id must still
    // resolve to its original contents and re-intern to itself.
    cxl0::model::FrameTable table;
    Rng rng(0xabcdULL);
    std::vector<std::vector<StateId>> originals;
    std::vector<cxl0::model::FrameId> ids;
    for (int i = 0; i < 1500; ++i) {
        std::vector<StateId> frame;
        size_t len = rng.nextBelow(6);
        for (size_t k = 0; k < len; ++k)
            frame.push_back(
                static_cast<StateId>(rng.nextBelow(100000)));
        std::vector<StateId> scratch = frame;
        cxl0::model::FrameId id = table.intern(scratch);
        ids.push_back(id);
        originals.push_back(std::move(scratch)); // canonical form
    }
    for (size_t i = 0; i < originals.size(); ++i) {
        ASSERT_EQ(table.sizeOf(ids[i]), originals[i].size());
        EXPECT_TRUE(std::equal(originals[i].begin(),
                               originals[i].end(),
                               table.begin(ids[i])));
        std::vector<StateId> again = originals[i];
        EXPECT_EQ(table.intern(again), ids[i]);
    }
    EXPECT_GT(table.bytes(), 0u);
}

TEST(StateTableConcurrency, EightThreadsInternOverlappingStates)
{
    // The sharded searches intern into one shared table from every
    // worker. Eight threads intern overlapping state populations
    // (every state is interned by at least two threads); afterwards
    // ids must be dense, stable, and content-faithful: equal content
    // -> equal id across threads, and every id materializes back to
    // the state that produced it. Run under ThreadSanitizer in CI.
    constexpr size_t kThreads = 8;
    constexpr int kStatesPerThread = 400;
    StateTable table(2, 2);

    // Deterministic population: thread t interns states derived from
    // seeds t and (t+1) % kThreads, so neighbours overlap fully.
    auto stateFor = [](size_t seed, int i) {
        State s(2, 2);
        Rng rng(0x9000 + seed * 7919 + i);
        for (cxl0::NodeId n = 0; n < 2; ++n)
            for (cxl0::Addr x = 0; x < 2; ++x)
                if (rng.chance(1, 2))
                    s.setCache(n, x, rng.nextInRange(0, 40));
        for (cxl0::Addr x = 0; x < 2; ++x)
            s.setMemory(x, rng.nextInRange(0, 40));
        return s;
    };

    std::vector<std::vector<StateId>> ids(kThreads);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (size_t seed : {t, (t + 1) % kThreads})
                for (int i = 0; i < kStatesPerThread; ++i)
                    ids[t].push_back(
                        table.intern(stateFor(seed, i)));
        });
    }
    for (std::thread &th : threads)
        th.join();

    // Ids are dense: every id below size() resolves; none above was
    // handed out.
    size_t total = table.size();
    for (size_t t = 0; t < kThreads; ++t)
        for (StateId id : ids[t])
            EXPECT_LT(id, total);

    // Id stability across threads: thread t's second population is
    // thread (t+1)'s first, so the id sequences must coincide.
    for (size_t t = 0; t < kThreads; ++t) {
        const auto &mine = ids[t];
        const auto &theirs = ids[(t + 1) % kThreads];
        for (int i = 0; i < kStatesPerThread; ++i)
            EXPECT_EQ(mine[kStatesPerThread + i], theirs[i]);
    }

    // Content-faithful round trips, and re-interning changes nothing.
    for (size_t t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kStatesPerThread; ++i) {
            State expect = stateFor(t, i);
            EXPECT_EQ(table.materialize(ids[t][i]), expect);
            EXPECT_EQ(table.intern(expect), ids[t][i]);
        }
    }
    EXPECT_EQ(table.size(), total);
}

TEST(StateTableConcurrency, EightThreadsInternOverlappingFrames)
{
    // Same discipline for the frame table: overlapping frame
    // populations from eight threads, then id stability and span
    // fidelity. Run under ThreadSanitizer in CI.
    constexpr size_t kThreads = 8;
    constexpr int kFramesPerThread = 300;
    cxl0::model::FrameTable table;

    auto frameFor = [](size_t seed, int i) {
        std::vector<StateId> f;
        Rng rng(0x7000 + seed * 6007 + i);
        size_t len = rng.nextBelow(9);
        for (size_t k = 0; k < len; ++k)
            f.push_back(static_cast<StateId>(rng.nextBelow(50000)));
        std::sort(f.begin(), f.end());
        f.erase(std::unique(f.begin(), f.end()), f.end());
        return f;
    };

    std::vector<std::vector<cxl0::model::FrameId>> ids(kThreads);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (size_t seed : {t, (t + 1) % kThreads}) {
                for (int i = 0; i < kFramesPerThread; ++i) {
                    std::vector<StateId> scratch = frameFor(seed, i);
                    ids[t].push_back(table.intern(scratch));
                }
            }
        });
    }
    for (std::thread &th : threads)
        th.join();

    size_t total = table.size();
    for (size_t t = 0; t < kThreads; ++t) {
        const auto &mine = ids[t];
        const auto &theirs = ids[(t + 1) % kThreads];
        for (int i = 0; i < kFramesPerThread; ++i) {
            EXPECT_LT(mine[i], total);
            EXPECT_EQ(mine[kFramesPerThread + i], theirs[i]);
        }
    }
    for (size_t t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kFramesPerThread; ++i) {
            std::vector<StateId> expect = frameFor(t, i);
            ASSERT_EQ(table.sizeOf(ids[t][i]), expect.size());
            EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                                   table.begin(ids[t][i])));
        }
    }
}

/** 4 machines, one address owned by machine 0, threads on machine 0
 *  only: machines 1-3 neither host nor own, so they form the orbit. */
cxl0::model::SystemConfig
spareMachinesConfig()
{
    std::vector<cxl0::model::MachineConfig> machines(4);
    machines[0].persistentMemory = true;
    return cxl0::model::SystemConfig(std::move(machines),
                                     std::vector<cxl0::NodeId>{0});
}

TEST(MachineSymmetry, OrbitExcludesHostsAndOwners)
{
    using cxl0::model::MachineSymmetry;
    // Machines hosting a thread or owning an address never rename.
    MachineSymmetry sym(spareMachinesConfig(),
                        {true, false, false, false});
    ASSERT_TRUE(sym.any());
    EXPECT_EQ(sym.orbit(),
              (std::vector<cxl0::NodeId>{1, 2, 3}));

    // Hosting a thread removes a machine from the orbit...
    MachineSymmetry hosting(spareMachinesConfig(),
                            {true, false, true, false});
    EXPECT_EQ(hosting.orbit(),
              (std::vector<cxl0::NodeId>{1, 3}));

    // ...and in the uniform configuration every machine owns an
    // address, so there is nothing to rename at all.
    MachineSymmetry none(
        cxl0::model::SystemConfig::uniform(3, 1, true),
        {true, true, true});
    EXPECT_FALSE(none.any());
    EXPECT_TRUE(none.orbit().empty());
}

TEST(MachineSymmetry, SingletonOrbitIsDropped)
{
    // One interchangeable machine permits no permutation; the orbit
    // must collapse to empty rather than report any() == true.
    cxl0::model::MachineSymmetry sym(spareMachinesConfig(),
                                     {true, true, true, false});
    EXPECT_FALSE(sym.any());
    EXPECT_TRUE(sym.orbit().empty());
}

TEST(MachineSymmetry, CanonicalizeSortsTriplesAndIsIdempotent)
{
    cxl0::model::MachineSymmetry sym(spareMachinesConfig(),
                                     {true, false, false, false});
    ASSERT_TRUE(sym.any());

    // Distinct cache rows on the orbit, deliberately out of order.
    State s(4, 1);
    s.setCache(1, 0, 9);
    s.setCache(2, 0, kBottom);
    s.setCache(3, 0, 5);
    int budgets[4] = {1, 7, 8, 6};
    uint8_t aux[4] = {0, 2, 3, 1};

    State canon = s;
    int cb[4] = {1, 7, 8, 6};
    uint8_t ca[4] = {0, 2, 3, 1};
    EXPECT_TRUE(sym.canonicalize(canon, cb, ca));
    // Rows sort with kBottom first, then ascending values; budgets
    // and aux travel with their rows.
    EXPECT_EQ(canon.cache(1, 0), kBottom);
    EXPECT_EQ(canon.cache(2, 0), 5);
    EXPECT_EQ(canon.cache(3, 0), 9);
    EXPECT_EQ(cb[1], 8);
    EXPECT_EQ(cb[2], 6);
    EXPECT_EQ(cb[3], 7);
    EXPECT_EQ(ca[1], 3);
    EXPECT_EQ(ca[2], 1);
    EXPECT_EQ(ca[3], 2);
    // The incremental hash must track the rewrite.
    EXPECT_EQ(canon.hash(), canon.recomputeHash());

    // A canonical form is a fixpoint: re-canonicalizing is the
    // identity and reports false.
    State again = canon;
    int cb2[4] = {cb[0], cb[1], cb[2], cb[3]};
    uint8_t ca2[4] = {ca[0], ca[1], ca[2], ca[3]};
    EXPECT_FALSE(sym.canonicalize(again, cb2, ca2));
    EXPECT_EQ(again, canon);

    // Every permutation of the orbit triples lands on the same
    // representative — the property the explorer's interning relies
    // on to merge orbits regardless of worker scheduling.
    State perm(4, 1);
    perm.setCache(1, 0, 5);
    perm.setCache(2, 0, 9);
    perm.setCache(3, 0, kBottom);
    int pb[4] = {1, 6, 7, 8};
    uint8_t pa[4] = {0, 1, 2, 3};
    EXPECT_TRUE(sym.canonicalize(perm, pb, pa));
    EXPECT_EQ(perm, canon);
    EXPECT_TRUE(std::equal(pb, pb + 4, cb));
    EXPECT_TRUE(std::equal(pa, pa + 4, ca));
}

TEST(MachineSymmetry, BudgetsAndAuxBreakCacheRowTies)
{
    cxl0::model::MachineSymmetry sym(spareMachinesConfig(),
                                     {true, false, false, false});
    // Identical cache rows: ordering falls through to budgets, then
    // to the aux byte (the explorer's crash-sleep bit).
    State s(4, 1);
    int budgets[4] = {0, 3, 1, 1};
    uint8_t aux[4] = {0, 0, 1, 0};
    EXPECT_TRUE(sym.canonicalize(s, budgets, aux));
    EXPECT_EQ(budgets[1], 1);
    EXPECT_EQ(aux[1], 0);
    EXPECT_EQ(budgets[2], 1);
    EXPECT_EQ(aux[2], 1);
    EXPECT_EQ(budgets[3], 3);
    // Null aux is allowed; ties beyond budgets keep stable order.
    State t(4, 1);
    int tb[4] = {0, 2, 1, 1};
    EXPECT_TRUE(sym.canonicalize(t, tb, nullptr));
    EXPECT_EQ(tb[1], 1);
    EXPECT_EQ(tb[2], 1);
    EXPECT_EQ(tb[3], 2);
}

TEST(ValueSpanTable, InternsFixedStrideSpans)
{
    ValueSpanTable table(3);
    Value a[3] = {1, 2, 3};
    Value b[3] = {1, 2, 4};
    uint64_t ha = cxl0::model::hashValueSpan(a, 3);
    uint64_t hb = cxl0::model::hashValueSpan(b, 3);
    EXPECT_NE(ha, hb);

    uint32_t ia = table.intern(a, ha);
    uint32_t ib = table.intern(b, hb);
    EXPECT_NE(ia, ib);
    EXPECT_EQ(table.intern(a, ha), ia);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.at(ia)[2], 3);
    EXPECT_EQ(table.at(ib)[2], 4);
    EXPECT_GT(table.bytes(), 0u);
}

} // namespace
