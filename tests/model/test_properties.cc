/**
 * @file
 * Property-based sweeps over the CXL0 semantics: random walks through
 * the LTS (enabled labels + tau + crashes) must preserve the global
 * cache invariant, keep loads deterministic, and respect the
 * monotonicity properties the paper relies on implicitly.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "model/semantics.hh"

namespace
{

using namespace cxl0::model;
using cxl0::Rng;
using cxl0::Value;

struct WalkCase
{
    const char *name;
    size_t nodes;
    size_t addrsPerNode;
    bool persistent;
    ModelVariant variant;
    uint64_t seed;
};

class RandomWalkSuite : public ::testing::TestWithParam<WalkCase>
{
};

TEST_P(RandomWalkSuite, InvariantAndDeterminismHoldThroughout)
{
    const WalkCase &c = GetParam();
    SystemConfig cfg =
        SystemConfig::uniform(c.nodes, c.addrsPerNode, c.persistent);
    Cxl0Model m(cfg, c.variant);
    State s = m.initialState();
    Rng rng(c.seed);

    for (int step = 0; step < 400; ++step) {
        // Collect all enabled moves: labels, tau steps, crashes.
        std::vector<Label> labels = m.enabledLabels(s, 2);
        std::vector<State> taus = m.tauSuccessors(s);
        size_t moves = labels.size() + taus.size();
        ASSERT_GT(moves, 0u); // the LTS never deadlocks
        size_t pick = rng.nextBelow(moves);
        if (pick < labels.size()) {
            auto next = m.apply(s, labels[pick]);
            ASSERT_TRUE(next) << labels[pick].describe();
            s = std::move(*next);
        } else {
            s = taus[pick - labels.size()];
        }

        // P1: the global cache invariant (§3.3) is inductive.
        ASSERT_TRUE(s.invariantHolds());

        // P2: loads are deterministic when enabled — loadable is a
        // function; and in Base/PSN it is total.
        for (cxl0::NodeId i = 0; i < cfg.numNodes(); ++i) {
            for (cxl0::Addr x = 0; x < cfg.numAddrs(); ++x) {
                auto v1 = m.loadable(s, i, x);
                auto v2 = m.loadable(s, i, x);
                ASSERT_EQ(v1, v2);
                if (c.variant != ModelVariant::Lwb) {
                    ASSERT_TRUE(v1.has_value());
                }
            }
        }

        // P3: all machines that can observe a value agree on it
        // (coherence: reads-see-last-write has a unique witness).
        for (cxl0::Addr x = 0; x < cfg.numAddrs(); ++x) {
            std::optional<Value> seen;
            for (cxl0::NodeId i = 0; i < cfg.numNodes(); ++i) {
                auto v = m.loadable(s, i, x);
                if (!v)
                    continue;
                if (seen) {
                    ASSERT_EQ(*seen, *v);
                }
                seen = v;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Walks, RandomWalkSuite,
    ::testing::Values(
        WalkCase{"base_2n", 2, 2, true, ModelVariant::Base, 11},
        WalkCase{"base_3n", 3, 1, true, ModelVariant::Base, 12},
        WalkCase{"base_volatile", 2, 2, false, ModelVariant::Base, 13},
        WalkCase{"psn", 2, 2, true, ModelVariant::Psn, 14},
        WalkCase{"lwb", 2, 2, true, ModelVariant::Lwb, 15},
        WalkCase{"lwb_volatile", 2, 1, false, ModelVariant::Lwb, 16}),
    [](const ::testing::TestParamInfo<WalkCase> &info) {
        return info.param.name;
    });

TEST(ModelProperties, TauStrictlyReducesCachedEntries)
{
    // Every tau step moves exactly one entry down the hierarchy, so
    // the total number of valid cache entries never increases and
    // drains terminate.
    SystemConfig cfg = SystemConfig::uniform(3, 2, true);
    Cxl0Model m(cfg);
    Rng rng(21);
    State s = m.initialState();
    // Fill some caches via stores.
    for (int k = 0; k < 10; ++k) {
        auto next = m.apply(
            s, Label::lstore(static_cast<cxl0::NodeId>(rng.nextBelow(3)),
                             static_cast<cxl0::Addr>(rng.nextBelow(6)),
                             rng.nextInRange(0, 5)));
        ASSERT_TRUE(next);
        s = std::move(*next);
    }
    auto count_valid = [&](const State &st) {
        size_t n = 0;
        for (cxl0::NodeId i = 0; i < 3; ++i)
            for (cxl0::Addr x = 0; x < 6; ++x)
                n += st.cacheValid(i, x);
        return n;
    };
    // Follow tau steps to exhaustion.
    size_t guard = 0;
    for (;;) {
        auto taus = m.tauSuccessors(s);
        if (taus.empty())
            break;
        size_t before = count_valid(s);
        s = taus[rng.nextBelow(taus.size())];
        ASSERT_LE(count_valid(s), before);
        ASSERT_LT(++guard, 100u) << "tau drain must terminate";
    }
    EXPECT_TRUE(s.allCachesEmpty());
}

TEST(ModelProperties, CrashIsIdempotent)
{
    SystemConfig cfg = SystemConfig::uniform(2, 2, false);
    for (ModelVariant variant :
         {ModelVariant::Base, ModelVariant::Psn, ModelVariant::Lwb}) {
        Cxl0Model m(cfg, variant);
        Rng rng(31);
        State s = m.initialState();
        for (int k = 0; k < 8; ++k) {
            auto next = m.apply(
                s,
                Label::lstore(static_cast<cxl0::NodeId>(rng.nextBelow(2)),
                              static_cast<cxl0::Addr>(rng.nextBelow(4)),
                              rng.nextInRange(0, 5)));
            ASSERT_TRUE(next);
            s = std::move(*next);
        }
        State once = m.applyCrash(s, 0);
        State twice = m.applyCrash(once, 0);
        EXPECT_EQ(once, twice) << variantName(variant);
    }
}

TEST(ModelProperties, GpfEnabledExactlyWhenAllCachesEmpty)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model m(cfg);
    State s = m.initialState();
    EXPECT_TRUE(m.apply(s, Label::gpf(0)));
    auto stored = m.apply(s, Label::lstore(0, 0, 1));
    ASSERT_TRUE(stored);
    EXPECT_FALSE(m.apply(*stored, Label::gpf(0)));
    EXPECT_FALSE(m.apply(*stored, Label::gpf(1)));
    // Drain, then GPF is enabled again.
    bool enabled_somewhere = false;
    for (const State &t : m.tauClosure(*stored))
        enabled_somewhere |= m.apply(t, Label::gpf(1)).has_value();
    EXPECT_TRUE(enabled_somewhere);
}

TEST(ModelProperties, MStoreCommutesWithImmediateCrashOfIssuer)
{
    // An MStore by a non-owner followed by the *issuer's* crash
    // leaves the same memory as the crash arriving after persistence
    // — the issuer's state is irrelevant to the stored value.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model m(cfg);
    State s = m.initialState();
    auto stored = m.apply(s, Label::mstore(1, 0, 5));
    ASSERT_TRUE(stored);
    State after = m.applyCrash(*stored, 1);
    EXPECT_EQ(after.memory(0), 5);
}

} // namespace
