#include <gtest/gtest.h>

#include "model/label.hh"

namespace
{

using namespace cxl0::model;

TEST(Label, ClassifiersPartitionOps)
{
    EXPECT_TRUE(isStore(Op::LStore));
    EXPECT_TRUE(isStore(Op::RStore));
    EXPECT_TRUE(isStore(Op::MStore));
    EXPECT_FALSE(isStore(Op::Load));
    EXPECT_FALSE(isStore(Op::LRmw));

    EXPECT_TRUE(isRmw(Op::LRmw));
    EXPECT_TRUE(isRmw(Op::RRmw));
    EXPECT_TRUE(isRmw(Op::MRmw));
    EXPECT_FALSE(isRmw(Op::MStore));

    EXPECT_TRUE(isFlush(Op::LFlush));
    EXPECT_TRUE(isFlush(Op::RFlush));
    EXPECT_TRUE(isFlush(Op::Gpf));
    EXPECT_FALSE(isFlush(Op::Load));
}

TEST(Label, NamedConstructorsFillFields)
{
    Label l = Label::lstore(2, 3, 7);
    EXPECT_EQ(l.op, Op::LStore);
    EXPECT_EQ(l.node, 2);
    EXPECT_EQ(l.addr, 3u);
    EXPECT_EQ(l.value, 7);

    Label rmw = Label::lrmw(1, 0, 4, 5);
    EXPECT_EQ(rmw.expected, 4);
    EXPECT_EQ(rmw.value, 5);

    Label c = Label::crash(3);
    EXPECT_EQ(c.op, Op::Crash);
    EXPECT_EQ(c.node, 3);
}

TEST(Label, DescribeMatchesPaperNotation)
{
    EXPECT_EQ(Label::lstore(1, 2, 1).describe(), "LStore1(x2,1)");
    EXPECT_EQ(Label::load(0, 0, 0).describe(), "Load0(x0,0)");
    EXPECT_EQ(Label::rflush(2, 1).describe(), "RFlush2(x1)");
    EXPECT_EQ(Label::crash(1).describe(), "E1");
    EXPECT_EQ(Label::lrmw(0, 1, 2, 3).describe(), "L-RMW0(x1,2->3)");
    EXPECT_EQ(Label::gpf(0).describe(), "GPF0");
}

TEST(Label, EqualityComparesAllFields)
{
    EXPECT_EQ(Label::lstore(0, 0, 1), Label::lstore(0, 0, 1));
    EXPECT_NE(Label::lstore(0, 0, 1), Label::lstore(0, 0, 2));
    EXPECT_NE(Label::lstore(0, 0, 1), Label::rstore(0, 0, 1));
}

TEST(Label, DescribeTraceJoinsWithSemicolons)
{
    std::vector<Label> t{Label::lstore(0, 0, 1), Label::crash(0)};
    EXPECT_EQ(describeTrace(t), "LStore0(x0,1); E0");
}

TEST(Label, OpNamesAreStable)
{
    EXPECT_STREQ(opName(Op::Load), "Load");
    EXPECT_STREQ(opName(Op::Gpf), "GPF");
    EXPECT_STREQ(opName(Op::Tau), "tau");
    EXPECT_STREQ(opName(Op::Crash), "E");
}

} // namespace
