#include <gtest/gtest.h>

#include "model/semantics.hh"

namespace
{

using namespace cxl0::model;

class VariantTest : public ::testing::Test
{
  protected:
    // §3.5 setting: machine 0 has NVMM, machine 1 volatile memory;
    // one address owned by each.
    VariantTest()
        : cfg({MachineConfig{true}, MachineConfig{false}}, {0, 1})
    {
    }

    SystemConfig cfg;
};

TEST_F(VariantTest, VariantNames)
{
    EXPECT_STREQ(variantName(ModelVariant::Base), "CXL0");
    EXPECT_STREQ(variantName(ModelVariant::Psn), "CXL0_PSN");
    EXPECT_STREQ(variantName(ModelVariant::Lwb), "CXL0_LWB");
}

TEST_F(VariantTest, PsnCrashPoisonsRemoteCopiesOfOwnedLines)
{
    Cxl0Model psn(cfg, ModelVariant::Psn);
    State s = psn.initialState();
    s.setCache(1, 0, 5); // machine 1 caches machine 0's address
    s.setCache(1, 1, 7); // machine 1 caches its own address
    State next = psn.applyCrash(s, 0);
    // x0 belongs to the crashed machine: poisoned everywhere.
    EXPECT_FALSE(next.cacheValid(1, 0));
    // x1 does not belong to machine 0: untouched.
    EXPECT_EQ(next.cache(1, 1), 7);
}

TEST_F(VariantTest, BaseCrashKeepsRemoteCopies)
{
    Cxl0Model base(cfg, ModelVariant::Base);
    State s = base.initialState();
    s.setCache(1, 0, 5);
    State next = base.applyCrash(s, 0);
    EXPECT_EQ(next.cache(1, 0), 5);
}

TEST_F(VariantTest, PsnCrashStillResetsVolatileMemory)
{
    Cxl0Model psn(cfg, ModelVariant::Psn);
    State s = psn.initialState();
    s.setMemory(1, 9);
    State next = psn.applyCrash(s, 1);
    EXPECT_EQ(next.memory(1), 0);
    // Machine 0's NVMM untouched by machine 1's crash.
    s.setMemory(0, 3);
    next = psn.applyCrash(s, 1);
    EXPECT_EQ(next.memory(0), 3);
}

TEST_F(VariantTest, LwbServesLocalCacheDirectly)
{
    Cxl0Model lwb(cfg, ModelVariant::Lwb);
    State s = lwb.initialState();
    s.setCache(1, 0, 5);
    auto v = lwb.loadable(s, 1, 0);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 5);
    // The LWB load does not mutate state.
    auto next = lwb.apply(s, Label::load(1, 0, 5));
    ASSERT_TRUE(next);
    EXPECT_EQ(*next, s);
}

TEST_F(VariantTest, LwbBlocksLoadWhileRemoteCacheHoldsLine)
{
    Cxl0Model lwb(cfg, ModelVariant::Lwb);
    State s = lwb.initialState();
    s.setCache(1, 0, 5); // machine 1 holds x0; machine 0 loads x0
    EXPECT_FALSE(lwb.loadable(s, 0, 0));
    EXPECT_FALSE(lwb.apply(s, Label::load(0, 0, 5)));
    // After full drain the load is served from memory.
    bool some_drained_state_allows_load = false;
    for (const State &t : lwb.tauClosure(s)) {
        if (auto v = lwb.loadable(t, 0, 0)) {
            EXPECT_EQ(*v, 5); // must come from memory after drain
            some_drained_state_allows_load = true;
        }
    }
    EXPECT_TRUE(some_drained_state_allows_load);
}

TEST_F(VariantTest, LwbLoadFromMemoryWhenAllClear)
{
    Cxl0Model lwb(cfg, ModelVariant::Lwb);
    State s = lwb.initialState();
    s.setMemory(0, 4);
    auto v = lwb.loadable(s, 1, 0);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 4);
}

TEST_F(VariantTest, BaseLoadServedFromRemoteCache)
{
    Cxl0Model base(cfg, ModelVariant::Base);
    State s = base.initialState();
    s.setCache(1, 0, 5);
    auto v = base.loadable(s, 0, 0);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 5);
}

TEST_F(VariantTest, VariantStepsStayWithinBaseBehaviour)
{
    // Every non-crash step of a variant is also a base step with the
    // same label and effect (crash differs only for PSN, load effect
    // differs for LWB but the post-state is base-reachable after tau).
    Cxl0Model base(cfg, ModelVariant::Base);
    Cxl0Model lwb(cfg, ModelVariant::Lwb);
    State s = base.initialState();
    auto w = base.apply(s, Label::lstore(0, 0, 1));
    ASSERT_TRUE(w);
    // Base allows exactly the loads LWB allows on the writer's node.
    auto v_base = base.loadable(*w, 0, 0);
    auto v_lwb = lwb.loadable(*w, 0, 0);
    ASSERT_TRUE(v_base);
    ASSERT_TRUE(v_lwb);
    EXPECT_EQ(*v_base, *v_lwb);
}

} // namespace
