#include <gtest/gtest.h>

#include "model/topology.hh"

namespace
{

using namespace cxl0::model;

TEST(Topology, HostDevicePairRestrictionsMatchPaper)
{
    // §4: host issues everything but RStore, LFlush, R-RMW, M-RMW;
    // device issues all stores but no LFlush or remote RMWs.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model m = makeHostDevicePair(cfg);
    const Restrictions &r = m.restrictions();

    // Host = node 0.
    EXPECT_TRUE(r.allows(0, Op::Load));
    EXPECT_TRUE(r.allows(0, Op::LStore));
    EXPECT_TRUE(r.allows(0, Op::MStore));
    EXPECT_TRUE(r.allows(0, Op::RFlush));
    EXPECT_TRUE(r.allows(0, Op::Gpf));
    EXPECT_TRUE(r.allows(0, Op::LRmw));
    EXPECT_FALSE(r.allows(0, Op::RStore));
    EXPECT_FALSE(r.allows(0, Op::LFlush));
    EXPECT_FALSE(r.allows(0, Op::RRmw));
    EXPECT_FALSE(r.allows(0, Op::MRmw));

    // Device = node 1.
    EXPECT_TRUE(r.allows(1, Op::LStore));
    EXPECT_TRUE(r.allows(1, Op::RStore));
    EXPECT_TRUE(r.allows(1, Op::MStore));
    EXPECT_TRUE(r.allows(1, Op::RFlush));
    EXPECT_FALSE(r.allows(1, Op::LFlush));
    EXPECT_FALSE(r.allows(1, Op::RRmw));
    EXPECT_FALSE(r.allows(1, Op::MRmw));
}

TEST(Topology, HostDevicePairNeedsTwoMachines)
{
    SystemConfig cfg = SystemConfig::uniform(3, 1, true);
    EXPECT_THROW(makeHostDevicePair(cfg), std::invalid_argument);
}

TEST(Topology, PartitionedPoolShape)
{
    Cxl0Model m = makePartitionedPool(2, 3);
    // Each host owns its partition, modeled as persistent memory in
    // an external failure domain.
    EXPECT_EQ(m.config().numNodes(), 2u);
    EXPECT_EQ(m.config().numAddrs(), 6u);
    EXPECT_TRUE(m.config().isPersistent(0));
    EXPECT_TRUE(m.config().isPersistent(1));
    EXPECT_EQ(m.config().addrsOwnedBy(0).size(), 3u);
    EXPECT_EQ(m.config().addrsOwnedBy(1).size(), 3u);
}

TEST(Topology, PartitionedPoolSurvivesHostCrash)
{
    // The pool is an external failure domain: a host crash loses the
    // cache but never the partition contents.
    Cxl0Model m = makePartitionedPool(2, 1);
    State s = m.initialState();
    auto w = m.apply(s, Label::mstore(0, 0, 9));
    ASSERT_TRUE(w);
    State after = m.applyCrash(*w, 0);
    EXPECT_EQ(after.memory(0), 9);
}

TEST(Topology, PartitionedPoolExcludesInterHostInteraction)
{
    Cxl0Model m = makePartitionedPool(2, 1);
    const Restrictions &r = m.restrictions();
    EXPECT_FALSE(r.allows(0, Op::RStore));
    EXPECT_FALSE(r.allows(0, Op::RRmw));
    EXPECT_FALSE(r.allows(0, Op::MRmw));
    EXPECT_TRUE(r.allows(0, Op::LStore));
    EXPECT_TRUE(r.allows(0, Op::MStore));
    EXPECT_TRUE(r.allows(0, Op::LFlush));
    EXPECT_TRUE(r.allows(0, Op::RFlush));
    EXPECT_FALSE(r.allowCacheToCache);
    EXPECT_FALSE(r.serveLoadFromRemoteCache);
}

TEST(Topology, PartitionedPoolLFlushEquivalentToRFlush)
{
    // §4: with no cache-to-cache propagation, the owner's line drains
    // straight to memory, so the two flushes coincide semantically.
    Cxl0Model m = makePartitionedPool(1, 1);
    State s = m.initialState();
    auto stored = m.apply(s, Label::lstore(0, 0, 1));
    ASSERT_TRUE(stored);
    // Both flushes block until the same drain has happened.
    EXPECT_FALSE(m.apply(*stored, Label::lflush(0, 0)));
    EXPECT_FALSE(m.apply(*stored, Label::rflush(0, 0)));
    bool both_enabled_somewhere = false;
    for (const State &t : m.tauClosure(*stored)) {
        bool lf = m.apply(t, Label::lflush(0, 0)).has_value();
        bool rf = m.apply(t, Label::rflush(0, 0)).has_value();
        EXPECT_EQ(lf, rf);
        both_enabled_somewhere |= (lf && rf);
    }
    EXPECT_TRUE(both_enabled_somewhere);
}

TEST(Topology, SharedPoolCoherentRestrictions)
{
    Cxl0Model m = makeSharedPool(2, 2, true);
    const Restrictions &r = m.restrictions();
    EXPECT_EQ(m.config().numNodes(), 3u);
    EXPECT_EQ(m.config().ownerOf(0), 2);
    EXPECT_FALSE(r.allows(0, Op::RStore));
    EXPECT_FALSE(r.allows(0, Op::LFlush));
    EXPECT_FALSE(r.allows(0, Op::RRmw));
    EXPECT_TRUE(r.allows(0, Op::LStore));
    EXPECT_TRUE(r.allows(0, Op::MStore));
    EXPECT_TRUE(r.allows(0, Op::RFlush));
    EXPECT_TRUE(r.allows(0, Op::LRmw));
    // The drain path toward the pool stays enabled (see topology.cc).
    EXPECT_TRUE(r.allowCacheToCache);
    EXPECT_FALSE(r.serveLoadFromRemoteCache);
}

TEST(Topology, SharedPoolBypassOnlyCacheBypassingPrimitives)
{
    Cxl0Model m = makeSharedPool(2, 2, false);
    const Restrictions &r = m.restrictions();
    EXPECT_TRUE(r.allows(0, Op::Load));
    EXPECT_TRUE(r.allows(0, Op::MStore));
    EXPECT_TRUE(r.allows(0, Op::MRmw));
    EXPECT_FALSE(r.allows(0, Op::LStore));
    EXPECT_FALSE(r.allows(0, Op::RStore));
    EXPECT_FALSE(r.allows(0, Op::LFlush));
    EXPECT_FALSE(r.allows(0, Op::RFlush));
    EXPECT_FALSE(r.allows(0, Op::LRmw));
}

TEST(Topology, SharedPoolBypassNeverPopulatesCaches)
{
    // With only MStore / LOAD-from-M / M-RMW, caches stay empty, so
    // the coherence assumption is never exercised.
    Cxl0Model m = makeSharedPool(2, 1, false);
    State s = m.initialState();
    auto w = m.apply(s, Label::mstore(0, 0, 1));
    ASSERT_TRUE(w);
    EXPECT_TRUE(w->allCachesEmpty());
    auto v = m.loadable(*w, 1, 0);
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 1);
    auto after_load = m.apply(*w, Label::load(1, 0, 1));
    ASSERT_TRUE(after_load);
    EXPECT_TRUE(after_load->allCachesEmpty());
}

TEST(Topology, PoolSurvivesHostCrash)
{
    // The pool is an external failure domain: host crashes never
    // affect pool contents.
    Cxl0Model m = makeSharedPool(2, 1, true);
    State s = m.initialState();
    auto w = m.apply(s, Label::mstore(0, 0, 7));
    ASSERT_TRUE(w);
    State after = m.applyCrash(*w, 0);
    EXPECT_EQ(after.memory(0), 7);
}

TEST(Topology, NamesAreStable)
{
    EXPECT_STREQ(topologyName(Topology::General), "general");
    EXPECT_STREQ(topologyName(Topology::HostDevicePair),
                 "host-device pair");
    EXPECT_STREQ(topologyName(Topology::PartitionedPool),
                 "partitioned pool");
}

} // namespace
