#include <gtest/gtest.h>

#include "hist/spec.hh"

namespace
{

using namespace cxl0::hist;
using cxl0::Value;

OpRecord
op(const std::string &name, Value arg, std::optional<Value> ret,
   Value arg2 = 0)
{
    OpRecord r;
    r.op = name;
    r.arg = arg;
    r.arg2 = arg2;
    r.ret = ret;
    return r;
}

TEST(StackSpec, LifoDiscipline)
{
    auto s = makeStackSpec();
    EXPECT_TRUE(s->apply(op("push", 1, 0)));
    EXPECT_TRUE(s->apply(op("push", 2, 0)));
    EXPECT_FALSE(s->apply(op("pop", 0, 1))); // 2 is on top
    EXPECT_TRUE(s->apply(op("pop", 0, 2)));
    EXPECT_TRUE(s->apply(op("pop", 0, 1)));
    EXPECT_TRUE(s->apply(op("pop", 0, kEmptyRet)));
}

TEST(StackSpec, UnconstrainedPopAccepted)
{
    auto s = makeStackSpec();
    s->apply(op("push", 1, 0));
    EXPECT_TRUE(s->apply(op("pop", 0, std::nullopt)));
    // The unconstrained pop consumed the element.
    EXPECT_TRUE(s->apply(op("pop", 0, kEmptyRet)));
}

TEST(QueueSpec, FifoDiscipline)
{
    auto q = makeQueueSpec();
    EXPECT_TRUE(q->apply(op("enqueue", 1, 0)));
    EXPECT_TRUE(q->apply(op("enqueue", 2, 0)));
    EXPECT_FALSE(q->apply(op("dequeue", 0, 2)));
    EXPECT_TRUE(q->apply(op("dequeue", 0, 1)));
    EXPECT_TRUE(q->apply(op("dequeue", 0, 2)));
    EXPECT_TRUE(q->apply(op("dequeue", 0, kEmptyRet)));
}

TEST(SetSpec, MembershipReturns)
{
    auto s = makeSetSpec();
    EXPECT_TRUE(s->apply(op("contains", 3, 0)));
    EXPECT_TRUE(s->apply(op("add", 3, 1)));
    EXPECT_FALSE(s->apply(op("add", 3, 1))); // must return 0 now
    EXPECT_TRUE(s->apply(op("add", 3, 0)));
    EXPECT_TRUE(s->apply(op("contains", 3, 1)));
    EXPECT_TRUE(s->apply(op("remove", 3, 1)));
    EXPECT_TRUE(s->apply(op("remove", 3, 0)));
}

TEST(MapSpec, PutGetRemove)
{
    auto m = makeMapSpec();
    EXPECT_TRUE(m->apply(op("get", 1, kEmptyRet)));
    EXPECT_TRUE(m->apply(op("put", 1, 0, 10)));
    EXPECT_TRUE(m->apply(op("get", 1, 10)));
    EXPECT_FALSE(m->apply(op("get", 1, 11)));
    EXPECT_TRUE(m->apply(op("put", 1, 0, 11)));
    EXPECT_TRUE(m->apply(op("get", 1, 11)));
    EXPECT_TRUE(m->apply(op("remove", 1, 1)));
    EXPECT_TRUE(m->apply(op("get", 1, kEmptyRet)));
}

TEST(RegisterSpec, ReadsSeeLastWrite)
{
    auto r = makeRegisterSpec(5);
    EXPECT_TRUE(r->apply(op("read", 0, 5)));
    EXPECT_TRUE(r->apply(op("write", 9, 0)));
    EXPECT_FALSE(r->apply(op("read", 0, 5)));
    EXPECT_TRUE(r->apply(op("read", 0, 9)));
    EXPECT_TRUE(r->apply(op("cas", 9, 1, 12)));
    EXPECT_TRUE(r->apply(op("read", 0, 12)));
    EXPECT_TRUE(r->apply(op("cas", 9, 0, 13))); // failing CAS
    EXPECT_TRUE(r->apply(op("read", 0, 12)));
}

TEST(CounterSpec, AddReturnsOldValue)
{
    auto c = makeCounterSpec();
    EXPECT_TRUE(c->apply(op("add", 4, 0)));
    EXPECT_FALSE(c->apply(op("add", 1, 0))); // old value is 4 now
    EXPECT_TRUE(c->apply(op("add", 1, 4)));
    EXPECT_TRUE(c->apply(op("read", 0, 5)));
}

TEST(Specs, CloneIsDeep)
{
    auto s = makeStackSpec();
    s->apply(op("push", 1, 0));
    auto copy = s->clone();
    EXPECT_TRUE(copy->apply(op("pop", 0, 1)));
    // The original still holds the element.
    EXPECT_TRUE(s->apply(op("pop", 0, 1)));
}

TEST(Specs, FingerprintsTrackState)
{
    auto s = makeStackSpec();
    std::string f0 = s->fingerprint();
    s->apply(op("push", 1, 0));
    std::string f1 = s->fingerprint();
    EXPECT_NE(f0, f1);
    s->apply(op("pop", 0, 1));
    EXPECT_EQ(s->fingerprint(), f0);
}

TEST(Specs, UnknownOperationRejected)
{
    auto s = makeStackSpec();
    EXPECT_FALSE(s->apply(op("enqueue", 1, 0)));
}

} // namespace
