#include <gtest/gtest.h>

#include "hist/checker.hh"

namespace
{

using namespace cxl0::hist;
using cxl0::Value;

/** Build a complete op with explicit stamps. */
OpRecord
done(int tid, const std::string &name, Value arg, Value ret,
     uint64_t inv, uint64_t resp, Value arg2 = 0)
{
    OpRecord r;
    r.threadId = tid;
    r.op = name;
    r.arg = arg;
    r.arg2 = arg2;
    r.ret = ret;
    r.invokeStamp = inv;
    r.responseStamp = resp;
    return r;
}

/** Build a pending op (no response). */
OpRecord
pend(int tid, const std::string &name, Value arg, uint64_t inv)
{
    OpRecord r;
    r.threadId = tid;
    r.op = name;
    r.arg = arg;
    r.invokeStamp = inv;
    return r;
}

TEST(Checker, EmptyHistoryLinearizable)
{
    auto r = checkLinearizable({}, *makeStackSpec());
    EXPECT_TRUE(r.linearizable);
}

TEST(Checker, SequentialLegalHistory)
{
    std::vector<OpRecord> h{done(0, "push", 1, 0, 1, 2),
                            done(0, "pop", 0, 1, 3, 4)};
    EXPECT_TRUE(checkLinearizable(h, *makeStackSpec()).linearizable);
}

TEST(Checker, SequentialIllegalHistory)
{
    std::vector<OpRecord> h{done(0, "push", 1, 0, 1, 2),
                            done(0, "pop", 0, 2, 3, 4)};
    EXPECT_FALSE(checkLinearizable(h, *makeStackSpec()).linearizable);
}

TEST(Checker, OverlappingOpsMayReorder)
{
    // pop overlapping the push may linearize after it even though it
    // was invoked first.
    std::vector<OpRecord> h{done(0, "pop", 0, 1, 1, 4),
                            done(1, "push", 1, 0, 2, 3)};
    EXPECT_TRUE(checkLinearizable(h, *makeStackSpec()).linearizable);
}

TEST(Checker, RealTimeOrderEnforced)
{
    // push completed strictly before the pop was invoked; pop cannot
    // return empty.
    std::vector<OpRecord> h{done(0, "push", 1, 0, 1, 2),
                            done(1, "pop", 0, kEmptyRet, 3, 4)};
    EXPECT_FALSE(checkLinearizable(h, *makeStackSpec()).linearizable);
}

TEST(Checker, PendingOpMayBeDropped)
{
    // A pending push never took effect: the empty pop is fine.
    std::vector<OpRecord> h{pend(0, "push", 1, 1),
                            done(1, "pop", 0, kEmptyRet, 2, 3)};
    EXPECT_TRUE(checkLinearizable(h, *makeStackSpec()).linearizable);
}

TEST(Checker, PendingOpMayAlsoTakeEffect)
{
    // Or it did take effect and the pop observed it.
    std::vector<OpRecord> h{pend(0, "push", 1, 1),
                            done(1, "pop", 0, 1, 2, 3)};
    EXPECT_TRUE(checkLinearizable(h, *makeStackSpec()).linearizable);
}

TEST(Checker, CompletedOpMustNotBeDropped)
{
    // The completed push cannot be forgotten (this is the durability
    // violation shape of §6).
    std::vector<OpRecord> h{done(0, "write", 7, 0, 1, 2),
                            done(1, "read", 0, 0, 3, 4)};
    EXPECT_FALSE(
        checkLinearizable(h, *makeRegisterSpec()).linearizable);
}

TEST(Checker, WitnessIsProduced)
{
    std::vector<OpRecord> h{done(0, "push", 1, 0, 1, 2),
                            done(0, "pop", 0, 1, 3, 4)};
    auto r = checkLinearizable(h, *makeStackSpec());
    ASSERT_TRUE(r.linearizable);
    EXPECT_EQ(r.witness.size(), 2u);
}

TEST(Checker, QueueCrossingHistory)
{
    // Two producers + consumer with overlapping intervals.
    std::vector<OpRecord> h{
        done(0, "enqueue", 1, 0, 1, 5),
        done(1, "enqueue", 2, 0, 2, 4),
        done(2, "dequeue", 0, 2, 6, 7),
        done(2, "dequeue", 0, 1, 8, 9),
    };
    EXPECT_TRUE(checkLinearizable(h, *makeQueueSpec()).linearizable);
}

TEST(Checker, QueueIllegalReordering)
{
    // Non-overlapping enqueues must dequeue in order.
    std::vector<OpRecord> h{
        done(0, "enqueue", 1, 0, 1, 2),
        done(0, "enqueue", 2, 0, 3, 4),
        done(1, "dequeue", 0, 2, 5, 6),
        done(1, "dequeue", 0, 1, 7, 8),
    };
    EXPECT_FALSE(checkLinearizable(h, *makeQueueSpec()).linearizable);
}

TEST(Checker, MapHistory)
{
    std::vector<OpRecord> h{
        done(0, "put", 1, 0, 1, 2, 10),
        done(1, "get", 1, 10, 3, 4),
        done(0, "remove", 1, 1, 5, 6),
        done(1, "get", 1, kEmptyRet, 7, 8),
    };
    EXPECT_TRUE(checkLinearizable(h, *makeMapSpec()).linearizable);
}

TEST(Checker, OversizedHistoryTruncated)
{
    std::vector<OpRecord> h;
    for (uint64_t k = 0; k < 30; ++k)
        h.push_back(done(0, "push", 1, 0, 2 * k + 1, 2 * k + 2));
    auto r = checkLinearizable(h, *makeStackSpec(), 24);
    EXPECT_FALSE(r.linearizable);
    EXPECT_TRUE(r.truncated);
    // The diagnostic names the offending op count.
    EXPECT_NE(r.explanation.find("30 ops"), std::string::npos)
        << r.explanation;
}

TEST(Checker, TimeBudgetYieldsTruncated)
{
    // Mutually overlapping ops blow the search up; a zero-ish budget
    // must abort gracefully with truncated set, never report a
    // violation.
    std::vector<OpRecord> h;
    for (int k = 0; k < 9; ++k)
        h.push_back(done(k, "push", k + 1, 0, k + 1, 100 + k));
    for (int k = 0; k < 9; ++k)
        h.push_back(done(9 + k, "pop", 0, k + 1, 10 + k, 110 + k));
    LinOptions opts;
    opts.timeBudgetMs = 1;
    auto r = checkLinearizable(h, *makeStackSpec(), opts);
    if (!r.linearizable) {
        EXPECT_TRUE(r.truncated);
        EXPECT_NE(r.explanation.find("time budget"), std::string::npos)
            << r.explanation;
    }
}

TEST(Checker, TenOverlappingOpsTractable)
{
    // All ops mutually overlapping: worst case for the search.
    std::vector<OpRecord> h;
    for (int k = 0; k < 5; ++k)
        h.push_back(done(k, "push", k + 1, 0, k + 1, 100 + k));
    for (int k = 0; k < 5; ++k)
        h.push_back(done(5 + k, "pop", 0, k + 1, 6 + k, 110 + k));
    EXPECT_TRUE(checkLinearizable(h, *makeStackSpec()).linearizable);
}

} // namespace
