#include <gtest/gtest.h>

#include <thread>

#include "hist/history.hh"

namespace
{

using namespace cxl0::hist;

TEST(History, InvokeRespondRoundTrip)
{
    HistoryRecorder rec;
    size_t h = rec.invoke(0, "push", 5);
    rec.respond(h, 0);
    auto ops = rec.snapshot();
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].op, "push");
    EXPECT_EQ(ops[0].arg, 5);
    EXPECT_EQ(ops[0].ret, 0);
    EXPECT_FALSE(ops[0].pending());
}

TEST(History, StampsAreStrictlyIncreasing)
{
    HistoryRecorder rec;
    size_t a = rec.invoke(0, "push", 1);
    size_t b = rec.invoke(1, "pop");
    rec.respond(b, 1);
    rec.respond(a, 0);
    auto ops = rec.snapshot();
    EXPECT_LT(ops[a].invokeStamp, ops[b].invokeStamp);
    EXPECT_LT(*ops[b].responseStamp, *ops[a].responseStamp);
    EXPECT_LT(ops[a].invokeStamp, *ops[a].responseStamp);
}

TEST(History, PendingOpsCounted)
{
    HistoryRecorder rec;
    rec.invoke(0, "push", 1);
    size_t b = rec.invoke(1, "push", 2);
    rec.respond(b, 0);
    EXPECT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec.pendingCount(), 1u);
}

TEST(History, DoubleResponseRejected)
{
    HistoryRecorder rec;
    size_t h = rec.invoke(0, "pop");
    rec.respond(h, 1);
    EXPECT_THROW(rec.respond(h, 2), std::logic_error);
}

TEST(History, DescribeRendersOps)
{
    HistoryRecorder rec;
    size_t h = rec.invoke(3, "put", 1, 2);
    rec.respond(h, 0);
    rec.invoke(4, "get", 1);
    std::string s = describeHistory(rec.snapshot());
    EXPECT_NE(s.find("T3:put(1,2)=0"), std::string::npos);
    EXPECT_NE(s.find("[pending]"), std::string::npos);
}

TEST(History, ThreadSafeRecording)
{
    HistoryRecorder rec;
    constexpr int kThreads = 4, kEach = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&rec, t] {
            for (int k = 0; k < kEach; ++k) {
                size_t h = rec.invoke(t, "op", k);
                rec.respond(h, k);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    auto ops = rec.snapshot();
    EXPECT_EQ(ops.size(), kThreads * kEach);
    // All stamps distinct.
    std::set<uint64_t> stamps;
    for (const auto &op : ops) {
        stamps.insert(op.invokeStamp);
        stamps.insert(*op.responseStamp);
    }
    EXPECT_EQ(stamps.size(), 2u * kThreads * kEach);
}

} // namespace
