#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "check/litmus.hh"
#include "lang/scenario.hh"

namespace
{

using namespace cxl0;
using namespace cxl0::lang;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * The round-trip guarantee: parse(dump(p)) == p for every built-in
 * LitmusProgram, with field-wise equality over the whole scenario
 * (config shape, program, request knobs, anchors).
 */
TEST(RoundTrip, EveryBuiltinLitmusProgramSurvives)
{
    auto programs = check::explorerPrograms();
    ASSERT_FALSE(programs.empty());
    for (const check::LitmusProgram &lp : programs) {
        Scenario sc = scenarioFromLitmusProgram(lp);
        std::string text = dumpScenario(sc);
        ParseResult r = parseScenario(text);
        ASSERT_TRUE(r.ok())
            << lp.name << ": " << r.error->render() << "\n" << text;
        EXPECT_EQ(r.scenario, sc) << lp.name << "\n" << text;
    }
}

/** Dump is a fixpoint: dump(parse(dump(s))) == dump(s), anchors in. */
TEST(RoundTrip, ExportedTextIsAFixpoint)
{
    for (const CorpusFile &f : exportBuiltinCorpus()) {
        ParseResult r = parseScenario(f.text);
        ASSERT_TRUE(r.ok()) << f.filename << ": "
                            << r.error->render();
        EXPECT_EQ(dumpScenario(r.scenario), f.text) << f.filename;
    }
}

/**
 * Anti-drift gate between litmus.cc and corpus/litmus/: the tracked
 * corpus files for the built-in programs are byte-for-byte what the
 * serializer exports today (same programs, same locked outcome
 * anchors). If either side moves, re-export with
 * `cxl0check --export corpus/litmus` and review the diff.
 */
TEST(RoundTrip, TrackedCorpusMatchesExport)
{
    std::string dir = std::string(CXL0_SOURCE_DIR) + "/corpus/litmus/";
    auto files = exportBuiltinCorpus();
    ASSERT_EQ(files.size(), check::explorerPrograms().size());
    for (const CorpusFile &f : files)
        EXPECT_EQ(readFile(dir + f.filename), f.text) << f.filename;
}

/** Long identifiers survive: no emitter line-length ceiling. */
TEST(RoundTrip, LongLocationNamesSurvive)
{
    std::string name(600, 'x');
    std::string src = "litmus \"long\"\nmachine 0 nvmm\naddr " +
                      name + " @ 0\nthread 0 on 0 {\n  lstore " +
                      name + " 1\n}\n";
    ParseResult first = parseScenario(src);
    ASSERT_TRUE(first.ok()) << first.error->render();
    std::string canonical = dumpScenario(first.scenario);
    ParseResult second = parseScenario(canonical);
    ASSERT_TRUE(second.ok()) << second.error->render();
    EXPECT_EQ(second.scenario, first.scenario);
}

/** A scenario exercising every directive survives the round trip. */
TEST(RoundTrip, KitchenSinkSurvives)
{
    const char *src = R"(litmus "kitchen sink"
id 42
variant psn

machine 0 nvmm
machine 1 volatile
addr d @ 0
addr f @ 0

registers 3
crash any max 2
max-configs 12345
max-depth 9

thread 0 on 1 {
  lstore d 1
  rstore f r0
  mstore d 2
  lflush d
  rflush f
  gpf
  r0 = load d
  r1 = faa.m f 1
  r2 = cas.r d 0 r1
}

trace {
  lstore 1 d 1
  crash 0
  load 1 d 0
}

trace lhs {
  mrmw 0 d 0 1
}

trace rhs {
  lrmw 0 d 0 1
  rrmw 0 d 1 2
}

verdict forbidden

expect subset {
  ( 0 0 0 )
  ( 1 2 0 ) @crashed 0
}

forbid {
  ( 2 2 2 )
}
)";
    ParseResult first = parseScenario(src);
    ASSERT_TRUE(first.ok()) << first.error->render();
    std::string canonical = dumpScenario(first.scenario);
    ParseResult second = parseScenario(canonical);
    ASSERT_TRUE(second.ok())
        << second.error->render() << "\n" << canonical;
    EXPECT_EQ(second.scenario, first.scenario) << canonical;
    EXPECT_EQ(dumpScenario(second.scenario), canonical);
}

/** The refinement-endpoint clause survives the round trip. */
TEST(RoundTrip, VariantSpecImplClauseSurvives)
{
    const char *src = R"(litmus "refine endpoints"
variant spec=lwb impl=base

machine 0 nvmm
machine 1 volatile
addr x @ 0

crash any max 1
max-depth 4

verdict forbidden
)";
    ParseResult first = parseScenario(src);
    ASSERT_TRUE(first.ok()) << first.error->render();
    ASSERT_TRUE(first.scenario.refineSpec.has_value());
    ASSERT_TRUE(first.scenario.refineImpl.has_value());
    EXPECT_EQ(*first.scenario.refineSpec, model::ModelVariant::Lwb);
    EXPECT_EQ(*first.scenario.refineImpl, model::ModelVariant::Base);

    std::string canonical = dumpScenario(first.scenario);
    EXPECT_NE(canonical.find("variant spec=lwb impl=base"),
              std::string::npos)
        << canonical;
    ParseResult second = parseScenario(canonical);
    ASSERT_TRUE(second.ok())
        << second.error->render() << "\n" << canonical;
    EXPECT_EQ(second.scenario, first.scenario) << canonical;
    EXPECT_EQ(dumpScenario(second.scenario), canonical);
}

/** The tracked refinement corpus files are dump fixpoints. */
TEST(RoundTrip, RefinementCorpusFilesAreFixpoints)
{
    std::string dir = std::string(CXL0_SOURCE_DIR) + "/corpus/litmus/";
    for (const char *name :
         {"refine_base_lwb.cxl0", "refine_lwb_base.cxl0"}) {
        std::string text = readFile(dir + name);
        ASSERT_FALSE(text.empty()) << name;
        ParseResult r = parseScenario(text);
        ASSERT_TRUE(r.ok()) << name << ": " << r.error->render();
        ASSERT_TRUE(r.scenario.refineSpec.has_value()) << name;
        std::string canonical = dumpScenario(r.scenario);
        ParseResult again = parseScenario(canonical);
        ASSERT_TRUE(again.ok()) << name;
        EXPECT_EQ(again.scenario, r.scenario) << name;
    }
}

} // namespace
