#include <gtest/gtest.h>

#include "lang/run.hh"
#include "lang/scenario.hh"
#include "lang/service.hh"

namespace
{

using namespace cxl0;
using namespace cxl0::lang;

Scenario
mustParse(const std::string &text)
{
    ParseResult r = parseScenario(text);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error->render());
    return r.scenario;
}

// One scenario per checker route; the byte-identity gate below runs
// each one twice through a verifying service, so a hit that is not
// byte-identical to its recompute fails the test.
const char *kExplore = R"(litmus "svc: explore"
machine 0 nvmm
machine 1 volatile
addr x @ 0
registers 1
crash any max 1
thread 0 on 0 {
  lstore x 1
  gpf
}
thread 1 on 1 {
  r0 = load x
}
)";

const char *kFeasible = R"(litmus "svc: feasible"
machine 0 nvmm
addr x @ 0
trace {
  rstore 0 x 1
  crash 0
  load 0 x 1
}
verdict allowed
)";

// Saturates (22 pairs) before the depth bound, so the report is
// un-truncated and therefore cacheable; a depth-cut refinement run
// is never stored (the cut is not a graph property).
const char *kRefinement = R"(litmus "svc: refinement"
variant spec=base impl=base
machine 0 nvmm
addr x @ 0
max-depth 6
verdict allowed
)";

const char *kInclusion = R"(litmus "svc: inclusion"
machine 0 nvmm
machine 1 nvmm
addr x @ 1
trace lhs {
  rstore 0 x 1
}
trace rhs {
  lstore 0 x 1
  lflush 0 x
}
verdict allowed
)";

TEST(Service, HitIsByteIdenticalAcrossAllFourCheckers)
{
    const char *texts[] = {kExplore, kFeasible, kRefinement,
                           kInclusion};
    ServiceOptions so;
    so.verifyHits = true;
    ScenarioService svc(so);
    for (const char *text : texts) {
        Scenario sc = mustParse(text);
        ScenarioService::Response miss = svc.handle(sc);
        EXPECT_FALSE(miss.cacheHit) << sc.name;
        EXPECT_TRUE(miss.result.error.empty())
            << sc.name << ": " << miss.result.error;

        ScenarioService::Response hit = svc.handle(sc);
        EXPECT_TRUE(hit.cacheHit) << sc.name;
        EXPECT_TRUE(hit.byteIdentical) << sc.name;
        EXPECT_EQ(hit.result.pass, miss.result.pass) << sc.name;
        EXPECT_EQ(hit.result.checker, miss.result.checker) << sc.name;
        EXPECT_EQ(hit.result.report.verdict, miss.result.report.verdict)
            << sc.name;
        EXPECT_EQ(hit.result.report.outcomes, miss.result.report.outcomes)
            << sc.name;
        EXPECT_EQ(hit.key, miss.key) << sc.name;
    }
    EXPECT_EQ(svc.cacheStats().hits, 4u);
    EXPECT_EQ(svc.cacheStats().misses, 4u);
}

TEST(Service, DifferentRequestsMissEachOther)
{
    Scenario sc = mustParse(kExplore);
    ScenarioService svc;
    RunOptions a; // defaults
    RunOptions b;
    b.numThreads = 2;
    RunOptions c;
    c.reduction = check::Reduction::Tau;

    ScenarioService::Response ra = svc.handle(sc, a);
    ScenarioService::Response rb = svc.handle(sc, b);
    ScenarioService::Response rc = svc.handle(sc, c);
    EXPECT_FALSE(ra.cacheHit);
    EXPECT_FALSE(rb.cacheHit);
    EXPECT_FALSE(rc.cacheHit);
    EXPECT_NE(ra.key, rb.key);
    EXPECT_NE(ra.key, rc.key);
    EXPECT_NE(rb.key, rc.key);
    // But the semantics agree regardless of the knobs.
    EXPECT_EQ(ra.result.report.outcomes, rb.result.report.outcomes);
    EXPECT_EQ(ra.result.report.outcomes, rc.result.report.outcomes);
}

TEST(Service, ContextPoolReusesShapes)
{
    ScenarioService svc;
    Scenario a = mustParse(kExplore);
    Scenario b = a;
    b.name = "svc: explore (renamed)"; // same shape, distinct key
    svc.handle(a);
    svc.handle(b);
    EXPECT_EQ(svc.contexts().size(), 1u);
    EXPECT_GE(svc.contexts().reuses(), 1u);
    // A different system shape pools a second context.
    Scenario c = mustParse(kFeasible);
    svc.handle(c);
    EXPECT_EQ(svc.contexts().size(), 2u);
}

TEST(Service, ScenarioHashIsDeterministic)
{
    Scenario sc = mustParse(kExplore);
    EXPECT_EQ(scenarioHash(sc), scenarioHash(sc));
    RunOptions alt;
    alt.numThreads = 8;
    EXPECT_NE(scenarioHash(sc), scenarioHash(sc, alt));
}

} // namespace
