#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "check/litmus.hh"
#include "lang/run.hh"
#include "lang/scenario.hh"

namespace
{

namespace fs = std::filesystem;
using namespace cxl0;
using namespace cxl0::lang;

std::string
corpusDir()
{
    return std::string(CXL0_SOURCE_DIR) + "/corpus/litmus";
}

/** Every tracked corpus scenario, parsed (parse failures assert). */
std::map<std::string, Scenario>
loadCorpus()
{
    std::map<std::string, Scenario> corpus;
    for (const auto &e : fs::directory_iterator(corpusDir())) {
        if (e.path().extension() != ".cxl0")
            continue;
        std::ifstream in(e.path(), std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        ParseResult r = parseScenario(ss.str());
        EXPECT_TRUE(r.ok()) << e.path().filename().string() << ": "
                            << (r.ok() ? "" : r.error->render());
        if (r.ok())
            corpus[e.path().stem().string()] = std::move(r.scenario);
    }
    return corpus;
}

TEST(Corpus, CoversExportedBuiltinsAndAuthoredCases)
{
    auto corpus = loadCorpus();
    // Exported: tests 4, 12-17 (7 programs). Authored: test 19, the
    // writer/reader message-passing split, the serialized-trace
    // recasts of tests 1-3, 5-9, 18, the base/LWB variants of
    // tests 10-11, the Proposition-1 inclusion pair, and the
    // refinement pair between base and lwb.
    EXPECT_GE(corpus.size(), 25u);
    for (const char *name :
         {"litmus04", "litmus12", "litmus13", "litmus14", "litmus15",
          "litmus16", "litmus17", "litmus19", "mp_split",
          "litmus01_trace", "litmus02_trace", "litmus03_trace",
          "litmus05_trace", "litmus06_trace", "litmus07_trace",
          "litmus08_trace", "litmus09_trace", "litmus10_lwb",
          "litmus11_trace", "litmus11_lwb", "litmus18_trace",
          "incl_rstore_stronger", "incl_lstore_weaker",
          "refine_base_lwb", "refine_lwb_base"})
        EXPECT_TRUE(corpus.count(name)) << name;
    // Every corpus case declares an anchor to check against.
    for (const auto &[name, sc] : corpus)
        EXPECT_TRUE(sc.expectKind != AnchorKind::None ||
                    !sc.forbidden.empty() ||
                    sc.expectedVerdict.has_value())
            << name << " declares no anchors";
}

/**
 * The acceptance gate: every corpus case passes its declared anchors,
 * and the verdict and outcome set are invariant across worker-thread
 * counts (numThreads 1 vs 4).
 */
TEST(Corpus, AllAnchorsPassAndAreThreadCountInvariant)
{
    auto corpus = loadCorpus();
    ASSERT_FALSE(corpus.empty());
    for (const auto &[name, sc] : corpus) {
        RunOptions one;
        one.numThreads = 1;
        RunResult r1 = runScenario(sc, one);
        EXPECT_TRUE(r1.error.empty()) << name << ": " << r1.error;
        EXPECT_TRUE(r1.pass) << name << ": " << r1.describe();

        RunOptions four;
        four.numThreads = 4;
        RunResult r4 = runScenario(sc, four);
        EXPECT_TRUE(r4.pass) << name << ": " << r4.describe();
        EXPECT_EQ(r1.report.verdict, r4.report.verdict) << name;
        EXPECT_EQ(r1.report.outcomes, r4.report.outcomes) << name;
    }
}

/**
 * Reduction soundness at corpus scale: every scenario produces the
 * same verdict and outcome set under reduction=none and
 * reduction=ample, at numThreads 1 and 4. (Trace-driven scenarios
 * ignore the knob; the explorer scenarios are the ones under test.)
 */
TEST(Corpus, ReductionNeverChangesVerdictsOrOutcomes)
{
    auto corpus = loadCorpus();
    ASSERT_FALSE(corpus.empty());
    for (const auto &[name, sc] : corpus) {
        RunOptions none;
        none.reduction = check::Reduction::None;
        RunResult base = runScenario(sc, none);
        for (check::Reduction red :
             {check::Reduction::Tau, check::Reduction::Ample,
              check::Reduction::CrashAmple, check::Reduction::Sleep,
              check::Reduction::Full}) {
            for (size_t threads : {1, 4}) {
                RunOptions opt;
                opt.reduction = red;
                opt.numThreads = threads;
                RunResult r = runScenario(sc, opt);
                EXPECT_EQ(r.pass, base.pass)
                    << name << " " << check::reductionName(red)
                    << " x" << threads;
                EXPECT_EQ(r.report.verdict, base.report.verdict)
                    << name << " " << check::reductionName(red)
                    << " x" << threads;
                EXPECT_EQ(r.report.outcomes, base.report.outcomes)
                    << name << " " << check::reductionName(red)
                    << " x" << threads;
            }
        }
    }
}

/**
 * The corpus copies of the built-in programs reproduce exactly the
 * outcome sets the in-binary explorer computes from litmus.cc — the
 * file-driven path and the compiled path cannot drift apart.
 */
TEST(Corpus, ExportedFilesReproduceInBinaryOutcomeSets)
{
    auto corpus = loadCorpus();
    for (const check::LitmusProgram &lp : check::explorerPrograms()) {
        char name[32];
        std::snprintf(name, sizeof name, "litmus%02d", lp.id);
        ASSERT_TRUE(corpus.count(name)) << name;
        const Scenario &sc = corpus[name];

        model::Cxl0Model fromFile(sc.config(), sc.variant);
        check::CheckReport file =
            check::Explorer(fromFile, sc.program, sc.request).check();

        model::Cxl0Model fromBinary(lp.config, lp.variant);
        check::CheckReport binary =
            check::Explorer(fromBinary, lp.program, lp.options)
                .check();

        ASSERT_FALSE(file.truncated) << name;
        EXPECT_EQ(file.outcomes, binary.outcomes) << name;
    }
}

/** Corpus programs stay within the packed-config explorer's limits. */
TEST(Corpus, ScenariosStayPackable)
{
    for (const auto &[name, sc] : loadCorpus()) {
        EXPECT_LE(sc.program.threads.size(), 32u) << name;
        EXPECT_LE(sc.program.numRegs, 64) << name;
    }
}

} // namespace
