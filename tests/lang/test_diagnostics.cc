#include <gtest/gtest.h>

#include "lang/scenario.hh"

namespace
{

using namespace cxl0::lang;

/** One golden malformed input: the parser must point exactly here. */
struct Golden
{
    const char *title;
    const char *src;
    int line;
    int col;
    const char *message;
};

const Golden kGoldens[] = {
    {"UnknownOp",
     R"(litmus "t"
machine 0 nvmm
addr x @ 0
thread 0 on 0 {
  blarg x 1
}
)",
     5, 3, "unknown op 'blarg'"},

    {"UnknownTraceOp",
     R"(litmus "t"
machine 0 nvmm
addr x @ 0
trace {
  teleport 0 x 1
}
)",
     5, 3, "unknown op 'teleport'"},

    {"DuplicateThreadId",
     R"(litmus "t"
machine 0 nvmm
addr x @ 0
thread 0 on 0 {
  gpf
}
thread 0 on 0 {
  gpf
}
)",
     7, 8, "duplicate thread id 0"},

    {"UndeclaredLocation",
     R"(litmus "t"
machine 0 nvmm
thread 0 on 0 {
  lstore y 1
}
)",
     4, 10, "undeclared location 'y'"},

    {"AnchorUndeclaredRegister",
     R"(litmus "t"
machine 0 nvmm
addr x @ 0
registers 2
thread 0 on 0 {
  r0 = load x
}
expect exact {
  ( 0 0 1 )
}
)",
     9, 9, "anchor references undeclared register r2 (registers 2)"},

    {"TruncatedThreadBlock",
     R"(litmus "t"
machine 0 nvmm
addr x @ 0
thread 0 on 0 {
  r0 = load x)",
     5, 14, "unexpected end of file inside thread block"},

    {"TruncatedExpectBlock",
     R"(litmus "t"
machine 0 nvmm
addr x @ 0
thread 0 on 0 {
  gpf
}
expect exact {
  ( 0 0 0 0 ))",
     8, 14, "unexpected end of file inside expect block"},

    {"ConflictingCrashBudgets",
     R"(litmus "t"
machine 0 nvmm
machine 1 nvmm
addr x @ 0
crash node 0 max 1
crash node 1 max 2
)",
     6, 18, "conflicting crash budgets (max 1 vs max 2)"},

    {"MachineOutOfOrder",
     R"(litmus "t"
machine 1 nvmm
)",
     2, 9, "machine 1 declared out of order (expected machine 0)"},

    {"UnknownDirective",
     R"(litmus "t"
machine 0 nvmm
frobnicate 3
)",
     3, 1, "unknown directive 'frobnicate'"},

    {"MissingName",
     R"(machine 0 nvmm
)",
     2, 1, "scenario is missing the litmus name directive"},

    {"RowThreadMismatch",
     R"(litmus "t"
machine 0 nvmm
addr x @ 0
thread 0 on 0 {
  gpf
}
expect exact {
  ( 0 0 0 0 | 0 0 0 0 )
}
)",
     8, 3, "outcome row has 2 thread section(s), program has 1 "
           "thread(s)"},

    {"LocationShadowsRegister",
     R"(litmus "t"
machine 0 nvmm
addr r1 @ 0
)",
     3, 6, "location name 'r1' would shadow a register"},

    {"NodeOutOfRange",
     R"(litmus "t"
machine 0 nvmm
addr x @ 3
)",
     3, 10, "node 3 out of range (1 machine(s))"},

    {"RegisterOutOfRange",
     R"(litmus "t"
machine 0 nvmm
addr x @ 0
registers 2
thread 0 on 0 {
  r5 = load x
}
)",
     6, 3, "register r5 out of range (registers 2)"},

    {"TrailingJunk",
     R"(litmus "t"
machine 0 nvmm extra
)",
     2, 16, "unexpected 'extra' at end of line"},

    {"DuplicateVariantClause",
     R"(litmus "t"
variant spec=base impl=lwb
variant spec=base impl=psn
machine 0 nvmm
addr x @ 0
)",
     3, 9, "duplicate variant spec=/impl= clause"},

    {"UnknownRefineSpecVariant",
     R"(litmus "t"
variant spec=quux impl=lwb
machine 0 nvmm
addr x @ 0
)",
     2, 14, "unknown variant 'quux' (base, lwb, or psn)"},

    {"VariantClauseExpectsImpl",
     R"(litmus "t"
variant spec=base ompl=lwb
machine 0 nvmm
addr x @ 0
)",
     2, 19, "expected 'impl', got 'ompl'"},
};

class DiagnosticsGolden : public ::testing::TestWithParam<Golden>
{
};

TEST_P(DiagnosticsGolden, PointsAtTheOffendingToken)
{
    const Golden &g = GetParam();
    ParseResult r = parseScenario(g.src);
    ASSERT_FALSE(r.ok()) << g.title << ": expected a parse error";
    EXPECT_EQ(r.error->loc.line, g.line) << g.title;
    EXPECT_EQ(r.error->loc.col, g.col) << g.title;
    EXPECT_EQ(r.error->message, g.message) << g.title;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DiagnosticsGolden, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return info.param.title;
    });

TEST(Diagnostics, RenderIncludesFileLineCol)
{
    ParseResult r = parseScenario("litmus 3\n");
    ASSERT_FALSE(r.ok());
    std::string rendered = r.error->render("corpus/foo.cxl0");
    EXPECT_EQ(rendered.rfind("corpus/foo.cxl0:1:8:", 0), 0u)
        << rendered;
}

TEST(Diagnostics, LexerRejectsBadCharacters)
{
    ParseResult r = parseScenario("litmus \"t\"\nmachine 0 nvmm\n$\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error->loc.line, 3);
    EXPECT_EQ(r.error->loc.col, 1);
    EXPECT_EQ(r.error->message, "unexpected character '$'");
}

TEST(Diagnostics, ThirtyThirdThreadRejected)
{
    // The packed-config explorer and the crashedThreads bitmask cap
    // programs at 32 threads; the 33rd block must be a located error.
    std::string src = "litmus \"t\"\nmachine 0 nvmm\naddr x @ 0\n";
    for (int t = 0; t < 33; ++t)
        src += "thread " + std::to_string(t) + " on 0 {\n  gpf\n}\n";
    ParseResult r = parseScenario(src);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error->loc.line, 3 + 32 * 3 + 1);
    EXPECT_EQ(r.error->loc.col, 8);
    EXPECT_EQ(r.error->message, "too many threads (max 32)");
}

TEST(Diagnostics, OverflowingIntegerLiteralRejected)
{
    ParseResult r = parseScenario(
        "litmus \"t\"\nmachine 0 nvmm\naddr x @ 0\n"
        "thread 0 on 0 {\n  lstore x 99999999999999999999999\n}\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error->loc.line, 5);
    EXPECT_EQ(r.error->loc.col, 12);
    EXPECT_EQ(r.error->message,
              "integer literal 99999999999999999999999 out of range "
              "(64-bit)");
}

TEST(Diagnostics, UnterminatedString)
{
    ParseResult r = parseScenario("litmus \"oops\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error->loc.line, 1);
    EXPECT_EQ(r.error->loc.col, 8);
    EXPECT_EQ(r.error->message, "unterminated string");
}

} // namespace
