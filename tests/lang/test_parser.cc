#include <gtest/gtest.h>

#include "lang/run.hh"
#include "lang/scenario.hh"

namespace
{

using namespace cxl0;
using namespace cxl0::lang;
using check::Operand;
using check::ProgInstr;
using model::Label;
using model::Op;

Scenario
mustParse(const std::string &text)
{
    ParseResult r = parseScenario(text);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error->render());
    return r.scenario;
}

TEST(Parser, FullProgramScenario)
{
    Scenario sc = mustParse(R"(# a comment
litmus "two-location message passing"
id 15
variant lwb

machine 0 nvmm
machine 1 volatile
addr d @ 1
addr f @ 1

registers 2
crash node 1 max 1
max-configs 1000
max-depth 7

thread 0 on 0 {
  lstore d 1
  rflush d
  gpf
  r0 = load f
  r1 = faa.l d 1
}

expect subset {
  ( 0 0 )
}

forbid {
  ( 1 0 ) @crashed 0
}
)");

    EXPECT_EQ(sc.name, "two-location message passing");
    EXPECT_EQ(sc.id, 15);
    EXPECT_EQ(sc.variant, model::ModelVariant::Lwb);
    ASSERT_EQ(sc.machinePersistent.size(), 2u);
    EXPECT_TRUE(sc.machinePersistent[0]);
    EXPECT_FALSE(sc.machinePersistent[1]);
    ASSERT_EQ(sc.addrNames.size(), 2u);
    EXPECT_EQ(sc.addrNames[0], "d");
    EXPECT_EQ(sc.addrOwner[1], 1u);
    EXPECT_EQ(sc.program.numRegs, 2);
    EXPECT_EQ(sc.request.maxCrashesPerNode, 1);
    EXPECT_EQ(sc.request.crashableNodes, std::vector<NodeId>{1});
    EXPECT_EQ(sc.request.maxConfigs, 1000u);
    EXPECT_EQ(sc.request.maxDepth, 7u);

    ASSERT_EQ(sc.program.threads.size(), 1u);
    const auto &code = sc.program.threads[0].code;
    ASSERT_EQ(code.size(), 5u);
    EXPECT_EQ(code[0],
              ProgInstr::store(Op::LStore, 0, Operand::immediate(1)));
    EXPECT_EQ(code[1], ProgInstr::flush(Op::RFlush, 0));
    EXPECT_EQ(code[2], ProgInstr::gpf());
    EXPECT_EQ(code[3], ProgInstr::load(1, 0));
    EXPECT_EQ(code[4],
              ProgInstr::faa(Op::LRmw, 0, Operand::immediate(1), 1));

    EXPECT_EQ(sc.expectKind, AnchorKind::Subset);
    ASSERT_EQ(sc.expected.size(), 1u);
    EXPECT_EQ(sc.expected[0].regs,
              (std::vector<std::vector<Value>>{{0, 0}}));
    EXPECT_EQ(sc.expected[0].crashedThreads, 0u);
    ASSERT_EQ(sc.forbidden.size(), 1u);
    EXPECT_EQ(sc.forbidden[0].crashedThreads, 1u);
}

TEST(Parser, TraceScenarioWithVerdict)
{
    Scenario sc = mustParse(R"(litmus "test 4 as a trace"

machine 0 nvmm
machine 1 nvmm
addr x @ 1

trace {
  lstore 0 x 1
  lflush 0 x
  crash 1
  load 0 x 0
}

verdict allowed
)");

    ASSERT_EQ(sc.trace.size(), 4u);
    EXPECT_EQ(sc.trace[0], Label::lstore(0, 0, 1));
    EXPECT_EQ(sc.trace[1], Label::lflush(0, 0));
    EXPECT_EQ(sc.trace[2], Label::crash(1));
    EXPECT_EQ(sc.trace[3], Label::load(0, 0, 0));
    ASSERT_TRUE(sc.expectedVerdict.has_value());
    EXPECT_EQ(*sc.expectedVerdict, check::Verdict::Allowed);
    EXPECT_TRUE(sc.program.threads.empty());
}

TEST(Parser, LhsRhsTracesAndRmwLabels)
{
    Scenario sc = mustParse(R"(litmus "inclusion shape"
machine 0 nvmm
addr x @ 0

trace lhs {
  mrmw 0 x 0 1
}
trace rhs {
  load 0 x 0
  mstore 0 x 1
}
)");
    ASSERT_EQ(sc.traceLhs.size(), 1u);
    EXPECT_EQ(sc.traceLhs[0], Label::mrmw(0, 0, 0, 1));
    ASSERT_EQ(sc.traceRhs.size(), 2u);
    EXPECT_EQ(sc.traceRhs[1], Label::mstore(0, 0, 1));
}

TEST(Parser, RegisterOperandsAndCas)
{
    Scenario sc = mustParse(R"(litmus "ops"
machine 0 nvmm
addr x @ 0
thread 0 on 0 {
  r0 = load x
  mstore x r0
  r1 = cas.m x 0 r0
}
)");
    const auto &code = sc.program.threads[0].code;
    EXPECT_EQ(code[1],
              ProgInstr::store(Op::MStore, 0, Operand::regRef(0)));
    EXPECT_EQ(code[2],
              ProgInstr::cas(Op::MRmw, 0, Operand::immediate(0),
                             Operand::regRef(0), 1));
}

TEST(Parser, CrashAnyLeavesNodeListEmpty)
{
    Scenario sc = mustParse(R"(litmus "crash any"
machine 0 nvmm
machine 1 nvmm
addr x @ 0
crash any max 2
)");
    EXPECT_EQ(sc.request.maxCrashesPerNode, 2);
    EXPECT_TRUE(sc.request.crashableNodes.empty());
}

TEST(Parser, CrashedListAcceptsCommas)
{
    Scenario sc = mustParse(R"(litmus "crashed rows"
machine 0 nvmm
machine 1 nvmm
addr x @ 0
thread 0 on 0 {
  r0 = load x
}
thread 1 on 1 {
  r0 = load x
}
expect subset {
  ( 0 0 0 0 | 0 0 0 0 ) @crashed 0, 1
}
)");
    ASSERT_EQ(sc.expected.size(), 1u);
    EXPECT_EQ(sc.expected[0].crashedThreads, 3u);
}

TEST(Run, FeasibleTraceMatchesDeclaredVerdict)
{
    // Litmus test 4's serialized trace: Allowed under Base.
    Scenario sc = mustParse(R"(litmus "test 4 as a trace"
machine 0 nvmm
machine 1 nvmm
addr x @ 1
trace {
  lstore 0 x 1
  lflush 0 x
  crash 1
  load 0 x 0
}
verdict allowed
)");
    RunOptions opts; // Auto routes trace-only scenarios to feasible
    RunResult r = runScenario(sc, opts);
    EXPECT_EQ(r.checker, CheckerKind::Feasible);
    EXPECT_TRUE(r.pass) << r.describe();

    // The same trace with an RFlush is Forbidden (test 5).
    sc.trace[1] = Label::rflush(0, 0);
    sc.expectedVerdict = check::Verdict::Forbidden;
    r = runScenario(sc, opts);
    EXPECT_TRUE(r.pass) << r.describe();
}

TEST(Run, RefinementAndInclusionRoute)
{
    Scenario sc = mustParse(R"(litmus "variant shape"
machine 0 nvmm
machine 1 volatile
addr x @ 0

trace lhs {
  lstore 0 x 1
  rflush 0 x
}
trace rhs {
  mstore 0 x 1
}
)");
    // Proposition 1 item 8: MStore simulates LStore+RFlush.
    RunOptions opts;
    opts.checker = CheckerKind::Inclusion;
    RunResult inc = runScenario(sc, opts);
    EXPECT_EQ(inc.report.verdict, check::CheckVerdict::Pass)
        << inc.describe();

    // With no program and no plain trace, Auto routes lhs/rhs
    // scenarios to inclusion.
    RunOptions autoOpts;
    RunResult autoRun = runScenario(sc, autoOpts);
    EXPECT_EQ(autoRun.checker, CheckerKind::Inclusion);
    EXPECT_TRUE(autoRun.error.empty()) << autoRun.error;

    // Every LWB trace is a Base trace (§3.5) at a small bound.
    opts = RunOptions{};
    opts.checker = CheckerKind::Refinement;
    opts.refineSpec = model::ModelVariant::Base;
    opts.refineImpl = model::ModelVariant::Lwb;
    opts.maxDepth = 2;
    opts.maxConfigs = 200000;
    RunResult ref = runScenario(sc, opts);
    EXPECT_NE(ref.report.verdict, check::CheckVerdict::Fail)
        << ref.describe();
}

TEST(Run, RefinementBudgetCutDoesNotPass)
{
    // §3.5 shape where Base has traces LWB forbids. A config budget
    // that cuts the search before the (reachable) counterexample
    // must not report pass — only a depth-bound cut may.
    Scenario sc = mustParse(R"(litmus "variant shape"
machine 0 nvmm
machine 1 volatile
addr x @ 0
)");
    RunOptions opts;
    opts.checker = CheckerKind::Refinement;
    opts.refineSpec = model::ModelVariant::Lwb;
    opts.refineImpl = model::ModelVariant::Base;
    opts.maxDepth = 4;

    opts.maxConfigs = 20; // cut long before the violation
    RunResult cut = runScenario(sc, opts);
    EXPECT_FALSE(cut.pass) << cut.describe();

    opts.maxConfigs = 200000; // enough to find it
    RunResult full = runScenario(sc, opts);
    EXPECT_EQ(full.report.verdict, check::CheckVerdict::Fail)
        << full.describe();
    EXPECT_FALSE(full.pass);
}

TEST(Run, ExplorerHonorsScenarioAnchors)
{
    Scenario sc = mustParse(R"(litmus "rstore may be lost"
machine 0 nvmm
addr x @ 0
registers 1
crash node 0 max 1
thread 0 on 0 {
  rstore x 1
  r0 = load x
}
expect exact {
  ( 0 ) @crashed 0
  ( 1 )
}
)");
    RunOptions opts;
    RunResult r = runScenario(sc, opts);
    EXPECT_EQ(r.checker, CheckerKind::Explore);
    EXPECT_TRUE(r.pass) << r.describe();
}

} // namespace
