#include <gtest/gtest.h>

#include "common/stats.hh"

namespace
{

using cxl0::Accumulator;
using cxl0::TextTable;

TEST(Accumulator, EmptyReturnsZeros)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.median(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, MeanAndSum)
{
    Accumulator a;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        a.add(v);
    EXPECT_DOUBLE_EQ(a.sum(), 10.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

TEST(Accumulator, MedianOddCount)
{
    Accumulator a;
    for (double v : {5.0, 1.0, 3.0})
        a.add(v);
    EXPECT_DOUBLE_EQ(a.median(), 3.0);
}

TEST(Accumulator, MedianEvenCount)
{
    Accumulator a;
    for (double v : {4.0, 1.0, 3.0, 2.0})
        a.add(v);
    EXPECT_DOUBLE_EQ(a.median(), 2.5);
}

TEST(Accumulator, MinMax)
{
    Accumulator a;
    for (double v : {7.0, -2.0, 3.5})
        a.add(v);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(Accumulator, StddevOfConstantIsZero)
{
    Accumulator a;
    for (int i = 0; i < 5; ++i)
        a.add(4.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, StddevSimpleCase)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-9);
}

TEST(Accumulator, PercentileNearestRank)
{
    Accumulator a;
    for (int i = 1; i <= 100; ++i)
        a.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(a.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(a.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(a.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(a.percentile(100), 100.0);
}

TEST(Accumulator, ResetDropsSamples)
{
    Accumulator a;
    a.add(1.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Accumulator, MedianMatchesPaperStyleThousandSamples)
{
    // The paper reports medians over 1000 measurements; sanity-check
    // the order statistic on a deterministic ramp.
    Accumulator a;
    for (int i = 0; i < 1000; ++i)
        a.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(a.median(), 499.5);
}

TEST(TextTable, RendersHeadersAndRows)
{
    TextTable t({"op", "ns"});
    t.addRow({"Read", "110"});
    t.addRow({"MStore", "257"});
    std::string s = t.render();
    EXPECT_NE(s.find("op"), std::string::npos);
    EXPECT_NE(s.find("MStore"), std::string::npos);
    EXPECT_NE(s.find("257"), std::string::npos);
}

TEST(TextTable, PadsShortRows)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"only"});
    std::string s = t.render();
    EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(FormatDouble, FixedPrecision)
{
    EXPECT_EQ(cxl0::formatDouble(2.345, 2), "2.35");
    EXPECT_EQ(cxl0::formatDouble(2.0, 1), "2.0");
}

} // namespace
