#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "common/segmented.hh"
#include "common/spill.hh"

namespace
{

using cxl0::ensureDir;
using cxl0::ScopedSpillArena;
using cxl0::SegmentedArray;
using cxl0::SpillArena;
using cxl0::SpillFile;

/** Fresh scratch directory per test, removed on scope exit. */
struct TempDir
{
    TempDir()
        : path("/tmp/cxl0-spill-test-" + std::to_string(::getpid()) +
               "-" + std::to_string(counter++))
    {
        std::filesystem::remove_all(path);
        ensureDir(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    static int counter;
    std::string path;
};
int TempDir::counter = 0;

TEST(SpillArena, MapsZeroedMemoryAndTracksBytes)
{
    TempDir dir;
    SpillArena arena(dir.path);
    ASSERT_TRUE(arena.valid());
    EXPECT_EQ(arena.mappedBytes(), 0u);

    constexpr size_t kBytes = 1 << 20;
    auto *p = static_cast<unsigned char *>(arena.map(kBytes));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(arena.mappedBytes(), kBytes);
    for (size_t i = 0; i < kBytes; i += 4096)
        EXPECT_EQ(p[i], 0u);

    p[0] = 42;
    p[kBytes - 1] = 7;
    arena.shed();
    // MAP_SHARED file pages survive a shed: the data refaults from
    // the page cache / backing file, it is not recomputed.
    EXPECT_EQ(p[0], 42u);
    EXPECT_EQ(p[kBytes - 1], 7u);

    arena.unmap(p, kBytes);
    EXPECT_EQ(arena.mappedBytes(), 0u);
}

TEST(SpillArena, BackingFilesAreUnlinkedAtCreation)
{
    TempDir dir;
    SpillArena arena(dir.path);
    ASSERT_TRUE(arena.valid());
    void *p = arena.map(1 << 20);
    ASSERT_NE(p, nullptr);
    // The directory stays empty even while the mapping is live:
    // cleanup is automatic on any exit, SIGKILL included.
    size_t entries = 0;
    for (auto &e : std::filesystem::directory_iterator(dir.path)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 0u);
    arena.unmap(p, 1 << 20);
}

TEST(SpillArena, InvalidDirectoryFailsClosed)
{
    SpillArena arena("/proc/definitely/not/writable");
    EXPECT_FALSE(arena.valid());
    EXPECT_EQ(arena.map(1 << 20), nullptr);
}

TEST(SpillArena, InstallIsProcessGlobalAndScoped)
{
    EXPECT_EQ(SpillArena::installed(), nullptr);
    TempDir dir;
    {
        ScopedSpillArena scoped(dir.path);
        EXPECT_EQ(SpillArena::installed(), &scoped.arena());
    }
    EXPECT_EQ(SpillArena::installed(), nullptr);
}

TEST(SegmentedArrayTest, LargeSegmentsMapThroughInstalledArena)
{
    TempDir dir;
    ScopedSpillArena scoped(dir.path);
    // Segment capacities grow geometrically; pushing well past the
    // 256 KiB spill threshold forces at least one mapped segment.
    SegmentedArray<uint64_t, 6> arr;
    constexpr size_t kCount = 200000; // 1.6 MB of u64
    arr.ensure(kCount);
    for (size_t i = 0; i < kCount; ++i)
        arr[i] = i * 3 + 1;
    EXPECT_GT(scoped.arena().mappedBytes(), 0u);

    scoped.arena().shed();
    for (size_t i = 0; i < kCount; i += 777)
        EXPECT_EQ(arr[i], i * 3 + 1);
}

TEST(SpillFileTest, AppendReadAtRoundTrip)
{
    TempDir dir;
    SpillFile f;
    ASSERT_TRUE(f.open(dir.path + "/blocks", /*unlinkAfter=*/true));
    ASSERT_TRUE(f.valid());

    const std::string a = "first block";
    const std::string b = "second, longer block of bytes";
    uint64_t offA = f.append(a.data(), a.size());
    uint64_t offB = f.append(b.data(), b.size());
    EXPECT_EQ(offA, 0u);
    EXPECT_EQ(offB, a.size());
    EXPECT_EQ(f.size(), a.size() + b.size());

    std::string out(b.size(), '\0');
    ASSERT_TRUE(f.readAt(offB, out.data(), out.size()));
    EXPECT_EQ(out, b);
    out.assign(a.size(), '\0');
    ASSERT_TRUE(f.readAt(offA, out.data(), out.size()));
    EXPECT_EQ(out, a);

    // Past-the-end reads fail cleanly instead of short-reading.
    EXPECT_FALSE(f.readAt(f.size() - 2, out.data(), 4));
}

TEST(SpillFileTest, WriteAtUpdatesInPlace)
{
    TempDir dir;
    SpillFile f;
    ASSERT_TRUE(f.open(dir.path + "/blocks", /*unlinkAfter=*/true));
    const char data[8] = {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
    f.append(data, sizeof data);

    const char patch[2] = {'X', 'Y'};
    ASSERT_TRUE(f.writeAt(2, patch, sizeof patch));
    char out[8] = {};
    ASSERT_TRUE(f.readAt(0, out, sizeof out));
    EXPECT_EQ(std::memcmp(out, "abXYefgh", 8), 0);
    EXPECT_EQ(f.size(), sizeof data); // size unchanged by writeAt

    // writeAt only patches already-appended bytes.
    EXPECT_FALSE(f.writeAt(7, patch, sizeof patch));
}

TEST(SpillFileTest, ClearResetsLogicalSize)
{
    TempDir dir;
    SpillFile f;
    ASSERT_TRUE(f.open(dir.path + "/blocks", /*unlinkAfter=*/true));
    f.append("abc", 3);
    f.clear();
    EXPECT_EQ(f.size(), 0u);
    uint64_t off = f.append("xy", 2);
    EXPECT_EQ(off, 0u);
    char out[2];
    ASSERT_TRUE(f.readAt(0, out, 2));
    EXPECT_EQ(std::memcmp(out, "xy", 2), 0);
}

TEST(EnsureDirTest, CreatesNestedAndToleratesExisting)
{
    TempDir dir;
    const std::string nested = dir.path + "/a/b/c";
    EXPECT_TRUE(ensureDir(nested));
    EXPECT_TRUE(std::filesystem::is_directory(nested));
    EXPECT_TRUE(ensureDir(nested)); // idempotent
}

} // namespace
