#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"

namespace
{

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(CXL0_PANIC("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsInvalidArgument)
{
    EXPECT_THROW(CXL0_FATAL("bad config ", "x"), std::invalid_argument);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(CXL0_ASSERT(1 + 1 == 2, "math"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(CXL0_ASSERT(false, "nope"), std::logic_error);
}

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(cxl0::detail::concat("a", 1, "b", 2.5), "a1b2.5");
}

} // namespace
