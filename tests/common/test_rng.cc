#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace
{

using cxl0::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int diff = 0;
    for (int i = 0; i < 32; ++i)
        diff += a.next() != b.next();
    EXPECT_GT(diff, 24);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(13), 13u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng r(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.nextBelow(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng r(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        int64_t v = r.nextInRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceZeroNeverFires)
{
    Rng r(5);
    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(r.chance(0, 10));
}

TEST(Rng, ChanceFullAlwaysFires)
{
    Rng r(5);
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(r.chance(10, 10));
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(17);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        hits += r.chance(1, 4);
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.25, 0.03);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(23);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    r.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(99);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 32; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 4);
}

} // namespace
