#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "ds/log.hh"
#include "harness.hh"

namespace
{

using namespace cxl0;
using ds::DurableLog;
using flit::PersistMode;
using test::Rig;

TEST(Log, AppendAndScanInOrder)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    DurableLog log(*rig.rt, 0, 8);
    EXPECT_EQ(log.append(0, 10), 0u);
    EXPECT_EQ(log.append(1, 20), 1u);
    EXPECT_EQ(log.append(0, 30), 2u);
    EXPECT_EQ(log.scan(1), (std::vector<Value>{10, 20, 30}));
    EXPECT_EQ(log.reserved(0), 3u);
}

TEST(Log, GetRespectsPublication)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    DurableLog log(*rig.rt, 0, 4);
    EXPECT_FALSE(log.get(0, 0).has_value());
    log.append(0, 42);
    EXPECT_EQ(log.get(1, 0), 42);
    EXPECT_FALSE(log.get(1, 1).has_value());
    EXPECT_FALSE(log.get(1, 99).has_value());
}

TEST(Log, FullLogRejectsAppends)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    DurableLog log(*rig.rt, 0, 2);
    EXPECT_TRUE(log.append(0, 1).has_value());
    EXPECT_TRUE(log.append(0, 2).has_value());
    EXPECT_FALSE(log.append(0, 3).has_value());
    EXPECT_EQ(log.scan(0), (std::vector<Value>{1, 2}));
}

TEST(Log, SurvivesCrashesWithDurableMode)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    DurableLog log(*rig.rt, 0, 16);
    for (Value v = 1; v <= 10; ++v)
        log.append(1, v * 11);
    rig.sys->crash(0);
    rig.sys->crash(1);
    auto entries = log.scan(0);
    ASSERT_EQ(entries.size(), 10u);
    for (Value v = 1; v <= 10; ++v)
        EXPECT_EQ(entries[static_cast<size_t>(v) - 1], v * 11);
}

TEST(Log, TornAppendLeavesSkippableHole)
{
    // An appender dying between reservation and publication leaves a
    // hole; later appends and scans work around it, and the torn
    // (pending) append is legitimately omitted.
    Rig rig = Rig::make(PersistMode::FlitCxl0, 4096,
                        cxl0::runtime::PropagationPolicy::Manual);
    DurableLog log(*rig.rt, 0, 8);
    log.append(0, 1);
    auto orphan = log.reserveOnly(1); // the appender dies here
    ASSERT_EQ(orphan, 1u);
    rig.sys->crash(1);
    EXPECT_EQ(log.append(0, 3), 2u);
    EXPECT_EQ(log.scan(0), (std::vector<Value>{1, 3}));
    EXPECT_FALSE(log.get(0, 1).has_value()); // the hole stays a hole
    EXPECT_EQ(log.reserved(0), 3u);
}

TEST(Log, ConcurrentAppendersAllPublished)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 8192,
                        cxl0::runtime::PropagationPolicy::Random, 61);
    DurableLog log(*rig.rt, 0, 256);
    constexpr int kThreads = 4, kEach = 40;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&log, t] {
            NodeId by = static_cast<NodeId>(t % 2);
            for (int k = 0; k < kEach; ++k)
                ASSERT_TRUE(log.append(by, t * 1000 + k).has_value());
        });
    }
    for (auto &th : threads)
        th.join();
    auto entries = log.scan(0);
    EXPECT_EQ(entries.size(), kThreads * kEach);
    std::set<Value> unique(entries.begin(), entries.end());
    EXPECT_EQ(unique.size(), entries.size());
    // Per-producer order is preserved (slots are FAA-ordered and each
    // producer's appends are sequential).
    std::vector<Value> last(kThreads, -1);
    for (Value e : entries) {
        int producer = static_cast<int>(e / 1000);
        EXPECT_GT(e % 1000, last[producer]);
        last[producer] = e % 1000;
    }
}

TEST(Log, SlotsAreExclusiveUnderContention)
{
    Rig rig = Rig::make(PersistMode::PersistAll, 8192,
                        cxl0::runtime::PropagationPolicy::Random, 67);
    DurableLog log(*rig.rt, 0, 64);
    constexpr int kThreads = 4, kEach = 15;
    std::set<size_t> indices;
    std::mutex mu;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int k = 0; k < kEach; ++k) {
                auto idx = log.append(static_cast<NodeId>(t % 2), t);
                ASSERT_TRUE(idx.has_value());
                std::lock_guard<std::mutex> guard(mu);
                EXPECT_TRUE(indices.insert(*idx).second)
                    << "slot " << *idx << " handed out twice";
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(indices.size(), kThreads * kEach);
}

} // namespace
