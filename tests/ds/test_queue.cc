#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "ds/queue.hh"
#include "harness.hh"

namespace
{

using namespace cxl0;
using ds::MsQueue;
using flit::PersistMode;
using test::Rig;

TEST(Queue, FifoOrder)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    MsQueue q(*rig.rt, 0);
    for (Value v = 1; v <= 5; ++v)
        q.enqueue(0, v);
    for (Value v = 1; v <= 5; ++v)
        EXPECT_EQ(q.dequeue(0), v);
    EXPECT_FALSE(q.dequeue(0).has_value());
}

TEST(Queue, EmptyBehaviour)
{
    Rig rig = Rig::make(PersistMode::None);
    MsQueue q(*rig.rt, 0);
    EXPECT_TRUE(q.empty(0));
    EXPECT_FALSE(q.dequeue(1).has_value());
    q.enqueue(1, 9);
    EXPECT_FALSE(q.empty(0));
    EXPECT_EQ(q.dequeue(0), 9);
    EXPECT_TRUE(q.empty(1));
}

TEST(Queue, InterleavedEnqueueDequeue)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    MsQueue q(*rig.rt, 0);
    q.enqueue(0, 1);
    q.enqueue(1, 2);
    EXPECT_EQ(q.dequeue(0), 1);
    q.enqueue(0, 3);
    EXPECT_EQ(q.dequeue(1), 2);
    EXPECT_EQ(q.dequeue(0), 3);
}

TEST(Queue, SnapshotHeadToTail)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    MsQueue q(*rig.rt, 0);
    q.enqueue(0, 4);
    q.enqueue(0, 5);
    q.enqueue(1, 6);
    EXPECT_EQ(q.unsafeSnapshot(0), (std::vector<Value>{4, 5, 6}));
}

TEST(Queue, ConcurrentEnqueuersKeepAllElements)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 8192);
    MsQueue q(*rig.rt, 0);
    constexpr int kThreads = 4, kEach = 75;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&q, t] {
            NodeId by = static_cast<NodeId>(t % 2);
            for (int k = 0; k < kEach; ++k)
                q.enqueue(by, t * 1000 + k);
        });
    }
    for (auto &th : threads)
        th.join();
    std::set<Value> seen;
    while (auto v = q.dequeue(0))
        seen.insert(*v);
    EXPECT_EQ(seen.size(), kThreads * kEach);
}

TEST(Queue, PerProducerOrderPreserved)
{
    // FIFO per producer: each producer's values come out in their
    // enqueue order even under concurrency.
    Rig rig = Rig::make(PersistMode::FlitCxl0, 8192,
                        runtime::PropagationPolicy::Random, 3);
    MsQueue q(*rig.rt, 0);
    constexpr int kThreads = 3, kEach = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&q, t] {
            NodeId by = static_cast<NodeId>(t % 2);
            for (int k = 0; k < kEach; ++k)
                q.enqueue(by, t * 1000 + k);
        });
    }
    for (auto &th : threads)
        th.join();
    std::vector<Value> last(kThreads, -1);
    while (auto v = q.dequeue(1)) {
        int producer = static_cast<int>(*v / 1000);
        Value seqno = *v % 1000;
        EXPECT_GT(seqno, last[producer]);
        last[producer] = seqno;
    }
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(last[t], kEach - 1);
}

TEST(Queue, ConcurrentProducerConsumer)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 8192,
                        runtime::PropagationPolicy::Random, 9);
    MsQueue q(*rig.rt, 0);
    constexpr int kItems = 200;
    std::atomic<int> consumed{0};
    std::thread producer([&q] {
        for (int k = 1; k <= kItems; ++k)
            q.enqueue(0, k);
    });
    std::thread consumer([&] {
        Value last = 0;
        while (consumed.load() < kItems) {
            if (auto v = q.dequeue(1)) {
                EXPECT_GT(*v, last); // single producer: ascending
                last = *v;
                consumed.fetch_add(1);
            }
        }
    });
    producer.join();
    consumer.join();
    EXPECT_EQ(consumed.load(), kItems);
    EXPECT_TRUE(q.empty(0));
}

} // namespace
