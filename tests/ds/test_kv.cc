#include <gtest/gtest.h>

#include <thread>

#include "ds/kv.hh"
#include "harness.hh"

namespace
{

using namespace cxl0;
using ds::DurableCounter;
using ds::DurableRegister;
using ds::KvStore;
using flit::PersistMode;
using test::Rig;

TEST(Register, ReadWriteAcrossNodes)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    DurableRegister r(*rig.rt, 0);
    EXPECT_EQ(r.read(0), 0);
    r.write(1, 5);
    EXPECT_EQ(r.read(0), 5);
    r.write(0, 6);
    EXPECT_EQ(r.read(1), 6);
}

TEST(Register, CompareExchange)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    DurableRegister r(*rig.rt, 0);
    EXPECT_TRUE(r.compareExchange(0, 0, 4));
    EXPECT_FALSE(r.compareExchange(1, 0, 9));
    EXPECT_EQ(r.read(1), 4);
}

TEST(Counter, FetchAddSequence)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    DurableCounter c(*rig.rt, 0);
    EXPECT_EQ(c.fetchAdd(0, 5), 0);
    EXPECT_EQ(c.fetchAdd(1, 3), 5);
    EXPECT_EQ(c.read(0), 8);
    EXPECT_EQ(c.fetchAdd(0, -8), 8);
    EXPECT_EQ(c.read(1), 0);
}

TEST(Counter, ConcurrentIncrementsExact)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 4096,
                        runtime::PropagationPolicy::Random, 37);
    DurableCounter c(*rig.rt, 0);
    constexpr int kThreads = 4, kEach = 250;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c, t] {
            for (int k = 0; k < kEach; ++k)
                c.fetchAdd(static_cast<NodeId>(t % 2), 1);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(c.read(0), kThreads * kEach);
}

TEST(Kv, PutGetRemoveSize)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    KvStore kv(*rig.rt, 0, 8);
    EXPECT_EQ(kv.size(0), 0);
    EXPECT_TRUE(kv.put(0, 1, 10));
    EXPECT_FALSE(kv.put(1, 1, 11)); // overwrite, not fresh
    EXPECT_EQ(kv.size(1), 1);
    EXPECT_EQ(kv.get(0, 1), 11);
    EXPECT_TRUE(kv.remove(0, 1));
    EXPECT_EQ(kv.size(0), 0);
    EXPECT_FALSE(kv.get(1, 1).has_value());
}

TEST(Kv, SnapshotMatchesState)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    KvStore kv(*rig.rt, 0, 8);
    kv.put(0, 1, 10);
    kv.put(0, 2, 20);
    kv.put(1, 3, 30);
    kv.remove(1, 2);
    auto snap = kv.unsafeSnapshot(0);
    EXPECT_EQ(snap.size(), 2u);
    EXPECT_EQ(kv.size(0), 2);
}

TEST(Kv, ManyEntries)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 65536);
    KvStore kv(*rig.rt, 0, 32);
    for (Value k = 0; k < 100; ++k)
        kv.put(static_cast<NodeId>(k % 2), k, k * k);
    EXPECT_EQ(kv.size(0), 100);
    for (Value k = 0; k < 100; ++k)
        EXPECT_EQ(kv.get(static_cast<NodeId>((k + 1) % 2), k), k * k);
}

} // namespace
