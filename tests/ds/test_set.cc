#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ds/set.hh"
#include "harness.hh"

namespace
{

using namespace cxl0;
using ds::SortedListSet;
using flit::PersistMode;
using test::Rig;

TEST(Set, AddRemoveContains)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    SortedListSet s(*rig.rt, 0);
    EXPECT_FALSE(s.contains(0, 5));
    EXPECT_TRUE(s.add(0, 5));
    EXPECT_FALSE(s.add(1, 5)); // duplicate
    EXPECT_TRUE(s.contains(1, 5));
    EXPECT_TRUE(s.remove(0, 5));
    EXPECT_FALSE(s.remove(1, 5)); // already gone
    EXPECT_FALSE(s.contains(0, 5));
}

TEST(Set, ReAddAfterRemove)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    SortedListSet s(*rig.rt, 0);
    EXPECT_TRUE(s.add(0, 7));
    EXPECT_TRUE(s.remove(0, 7));
    EXPECT_TRUE(s.add(0, 7)); // revives the existing record
    EXPECT_TRUE(s.contains(1, 7));
}

TEST(Set, SnapshotIsSortedAscending)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    SortedListSet s(*rig.rt, 0);
    for (Value v : {9, 2, 7, 1, 5})
        s.add(0, v);
    s.remove(0, 7);
    EXPECT_EQ(s.unsafeSnapshot(1), (std::vector<Value>{1, 2, 5, 9}));
}

TEST(Set, ManyKeysAcrossNodes)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 8192);
    SortedListSet s(*rig.rt, 0);
    for (Value v = 0; v < 50; ++v)
        EXPECT_TRUE(s.add(static_cast<NodeId>(v % 2), v));
    for (Value v = 0; v < 50; ++v)
        EXPECT_TRUE(s.contains(static_cast<NodeId>((v + 1) % 2), v));
    for (Value v = 0; v < 50; v += 2)
        EXPECT_TRUE(s.remove(1, v));
    for (Value v = 0; v < 50; ++v)
        EXPECT_EQ(s.contains(0, v), v % 2 == 1);
}

TEST(Set, ConcurrentDisjointAdds)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 16384);
    SortedListSet s(*rig.rt, 0);
    constexpr int kThreads = 4, kEach = 40;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&s, t] {
            NodeId by = static_cast<NodeId>(t % 2);
            for (int k = 0; k < kEach; ++k)
                EXPECT_TRUE(s.add(by, t * 1000 + k));
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(s.unsafeSnapshot(0).size(),
              static_cast<size_t>(kThreads * kEach));
}

TEST(Set, ConcurrentSameKeyAddsExactlyOneWins)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 16384,
                        runtime::PropagationPolicy::Random, 17);
    SortedListSet s(*rig.rt, 0);
    constexpr int kThreads = 6;
    std::atomic<int> wins{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&s, &wins, t] {
            if (s.add(static_cast<NodeId>(t % 2), 42))
                wins.fetch_add(1);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(wins.load(), 1);
    EXPECT_TRUE(s.contains(0, 42));
    EXPECT_EQ(s.unsafeSnapshot(0).size(), 1u);
}

TEST(Set, ConcurrentAddRemoveChurn)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 16384,
                        runtime::PropagationPolicy::Random, 19);
    SortedListSet s(*rig.rt, 0);
    constexpr int kThreads = 4, kOps = 60;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&s, t] {
            Rng rng(700 + t);
            NodeId by = static_cast<NodeId>(t % 2);
            for (int k = 0; k < kOps; ++k) {
                Value key = rng.nextInRange(0, 9);
                if (rng.chance(1, 2))
                    s.add(by, key);
                else
                    s.remove(by, key);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    // Consistency: snapshot agrees with contains() for every key.
    auto snap = s.unsafeSnapshot(0);
    for (Value key = 0; key < 10; ++key) {
        bool in_snap = false;
        for (Value v : snap)
            in_snap |= (v == key);
        EXPECT_EQ(s.contains(1, key), in_snap);
    }
}

} // namespace
