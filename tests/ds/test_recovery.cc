/**
 * @file
 * Durable linearizability of the transformed objects under injected
 * partial crashes (§6's headline theorem), checked with the history
 * checker of src/hist.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ds/kv.hh"
#include "ds/queue.hh"
#include "ds/set.hh"
#include "ds/stack.hh"
#include "harness.hh"
#include "hist/checker.hh"

namespace
{

using namespace cxl0;
using ds::DurableRegister;
using ds::MsQueue;
using ds::TreiberStack;
using flit::PersistMode;
using hist::HistoryRecorder;
using hist::kEmptyRet;
using test::Rig;

TEST(Recovery, CompletedWriteLostByOriginalFlitIsNotDurable)
{
    // Deterministic §6 counterexample as a checked history: the
    // original FliT completes a write whose value then vanishes with
    // the owner's crash — the resulting history fails the checker.
    Rig rig = Rig::make(PersistMode::FlitOriginal, 64,
                        runtime::PropagationPolicy::Manual);
    DurableRegister reg(*rig.rt, 0);
    HistoryRecorder rec;

    size_t w = rec.invoke(0, "write", 77);
    reg.write(1, 77);
    rec.respond(w, 0);

    rig.sys->evictOne(); // value drifts into the owner's cache
    rig.sys->crash(0);   // and dies there

    size_t r = rec.invoke(1, "read");
    rec.respond(r, reg.read(1));

    auto result = hist::checkDurablyLinearizable(
        rec.snapshot(), *hist::makeRegisterSpec());
    EXPECT_FALSE(result.linearizable);
}

TEST(Recovery, SameScenarioWithAdaptedFlitIsDurable)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 64,
                        runtime::PropagationPolicy::Manual);
    DurableRegister reg(*rig.rt, 0);
    HistoryRecorder rec;

    size_t w = rec.invoke(0, "write", 77);
    reg.write(1, 77);
    rec.respond(w, 0);

    rig.sys->evictOne();
    rig.sys->crash(0);

    size_t r = rec.invoke(1, "read");
    rec.respond(r, reg.read(1));

    auto result = hist::checkDurablyLinearizable(
        rec.snapshot(), *hist::makeRegisterSpec());
    EXPECT_TRUE(result.linearizable) << result.explanation;
}

/**
 * Concurrent stack workload with a crash of the home node injected
 * mid-run; the thread "running on" the crashed node stops (its last
 * operation stays pending). The collected history must be durably
 * linearizable for every durable mode and seed.
 */
struct CrashCase
{
    PersistMode mode;
    uint64_t seed;
};

class DurableStackSuite : public ::testing::TestWithParam<CrashCase>
{
};

TEST_P(DurableStackSuite, HistoryWithCrashIsDurablyLinearizable)
{
    const CrashCase &c = GetParam();
    Rig rig = Rig::make(c.mode, 4096,
                        runtime::PropagationPolicy::Random, c.seed);
    TreiberStack stack(*rig.rt, 0);
    HistoryRecorder rec;
    std::atomic<bool> crashed{false};

    auto worker = [&](int tid, NodeId node, int base) {
        for (int k = 0; k < 3; ++k) {
            // A thread on a crashed machine is killed: it stops, and
            // any not-yet-responded op stays pending in the history.
            if (node == 0 && crashed.load())
                return;
            if (k % 2 == 0) {
                size_t h = rec.invoke(tid, "push", base + k);
                stack.push(node, base + k);
                if (node == 0 && crashed.load())
                    return; // died before responding
                rec.respond(h, 0);
            } else {
                size_t h = rec.invoke(tid, "pop");
                auto v = stack.pop(node);
                if (node == 0 && crashed.load())
                    return;
                rec.respond(h, v ? *v : kEmptyRet);
            }
        }
    };

    std::thread t0(worker, 0, 0, 100);
    std::thread t1(worker, 1, 1, 200);
    // Inject the crash of machine 0 somewhere in the middle.
    std::this_thread::yield();
    rig.sys->crash(0);
    crashed.store(true);
    t0.join();
    t1.join();

    // Post-recovery observer drains the stack on machine 1.
    for (int k = 0; k < 4; ++k) {
        size_t h = rec.invoke(2, "pop");
        auto v = stack.pop(1);
        rec.respond(h, v ? *v : kEmptyRet);
    }

    auto result = hist::checkDurablyLinearizable(rec.snapshot(),
                                                 *hist::makeStackSpec());
    EXPECT_TRUE(result.linearizable)
        << flit::persistModeName(c.mode) << " seed " << c.seed << "\n"
        << result.explanation;
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, DurableStackSuite,
    ::testing::Values(CrashCase{PersistMode::FlitCxl0, 1},
                      CrashCase{PersistMode::FlitCxl0, 2},
                      CrashCase{PersistMode::FlitCxl0, 3},
                      CrashCase{PersistMode::FlitCxl0AddrOpt, 4},
                      CrashCase{PersistMode::FlitCxl0AddrOpt, 5},
                      CrashCase{PersistMode::PersistAll, 6},
                      CrashCase{PersistMode::PersistAll, 7}),
    [](const ::testing::TestParamInfo<CrashCase> &info) {
        std::string n = flit::persistModeName(info.param.mode);
        std::replace(n.begin(), n.end(), '-', '_');
        return n + "_seed" + std::to_string(info.param.seed);
    });

TEST(Recovery, QueueSurvivesHomeCrashQuiescently)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 4096,
                        runtime::PropagationPolicy::Random, 11);
    MsQueue q(*rig.rt, 0);
    for (Value v = 1; v <= 6; ++v)
        q.enqueue(1, v);
    q.dequeue(1); // drop 1
    rig.sys->crash(0);
    rig.sys->crash(1);
    EXPECT_EQ(q.unsafeSnapshot(1), (std::vector<Value>{2, 3, 4, 5, 6}));
    for (Value v = 2; v <= 6; ++v)
        EXPECT_EQ(q.dequeue(0), v);
}

TEST(Recovery, StackSurvivesRepeatedCrashes)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 4096,
                        runtime::PropagationPolicy::Random, 13);
    TreiberStack s(*rig.rt, 0);
    for (int round = 0; round < 5; ++round) {
        s.push(1, round * 10);
        s.push(0, round * 10 + 1);
        rig.sys->crash(0);
        rig.sys->crash(1);
    }
    // All 10 pushed values must be present (each push completed).
    EXPECT_EQ(s.unsafeSnapshot(0).size(), 10u);
}

TEST(Recovery, SetMembershipStableAcrossCrash)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0AddrOpt, 4096,
                        runtime::PropagationPolicy::Random, 17);
    cxl0::ds::SortedListSet s(*rig.rt, 0);
    for (Value v = 0; v < 20; ++v)
        s.add(1, v);
    for (Value v = 0; v < 20; v += 3)
        s.remove(1, v);
    rig.sys->crash(0);
    for (Value v = 0; v < 20; ++v)
        EXPECT_EQ(s.contains(0, v), v % 3 != 0) << v;
}

} // namespace
