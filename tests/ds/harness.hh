/**
 * @file
 * Shared helpers for data-structure tests.
 */

#ifndef CXL0_TESTS_DS_HARNESS_HH
#define CXL0_TESTS_DS_HARNESS_HH

#include <memory>

#include "flit/flit.hh"
#include "runtime/system.hh"

namespace cxl0::test
{

/** A 2-node persistent system + transformation runtime bundle. */
struct Rig
{
    std::unique_ptr<runtime::CxlSystem> sys;
    std::unique_ptr<flit::FlitRuntime> rt;

    static Rig
    make(flit::PersistMode mode, size_t cells_per_node = 4096,
         runtime::PropagationPolicy policy =
             runtime::PropagationPolicy::Random,
         uint64_t seed = 1, size_t nodes = 2)
    {
        Rig rig;
        runtime::SystemOptions o(
            model::SystemConfig::uniform(nodes, cells_per_node, true));
        o.policy = policy;
        o.seed = seed;
        o.cost = runtime::CostModel::zero();
        rig.sys = std::make_unique<runtime::CxlSystem>(std::move(o));
        rig.rt = std::make_unique<flit::FlitRuntime>(*rig.sys, mode);
        return rig;
    }
};

} // namespace cxl0::test

#endif // CXL0_TESTS_DS_HARNESS_HH
