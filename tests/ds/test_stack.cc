#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "ds/stack.hh"
#include "harness.hh"

namespace
{

using namespace cxl0;
using ds::TreiberStack;
using flit::PersistMode;
using test::Rig;

TEST(Stack, PushPopLifoOrder)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    TreiberStack s(*rig.rt, 0);
    for (Value v = 1; v <= 5; ++v)
        s.push(0, v);
    for (Value v = 5; v >= 1; --v)
        EXPECT_EQ(s.pop(0), v);
    EXPECT_FALSE(s.pop(0).has_value());
}

TEST(Stack, EmptyBehaviour)
{
    Rig rig = Rig::make(PersistMode::None);
    TreiberStack s(*rig.rt, 0);
    EXPECT_TRUE(s.empty(0));
    EXPECT_FALSE(s.pop(1).has_value());
    s.push(1, 42);
    EXPECT_FALSE(s.empty(0));
    EXPECT_EQ(s.pop(0), 42);
    EXPECT_TRUE(s.empty(1));
}

TEST(Stack, SnapshotMatchesContents)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    TreiberStack s(*rig.rt, 0);
    s.push(0, 1);
    s.push(0, 2);
    s.push(0, 3);
    std::vector<Value> snap = s.unsafeSnapshot(1);
    EXPECT_EQ(snap, (std::vector<Value>{3, 2, 1}));
}

TEST(Stack, CrossNodeOperations)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    TreiberStack s(*rig.rt, 0);
    s.push(1, 10); // pushed from the non-owner machine
    s.push(0, 20);
    EXPECT_EQ(s.pop(1), 20);
    EXPECT_EQ(s.pop(0), 10);
}

class StackModes : public ::testing::TestWithParam<PersistMode>
{
};

TEST_P(StackModes, SequentialSemanticsIdenticalAcrossModes)
{
    Rig rig = Rig::make(GetParam());
    TreiberStack s(*rig.rt, 0);
    for (Value v = 0; v < 20; ++v)
        s.push(static_cast<NodeId>(v % 2), v);
    for (Value v = 19; v >= 0; --v)
        EXPECT_EQ(s.pop(static_cast<NodeId>(v % 2)), v);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, StackModes,
    ::testing::Values(PersistMode::None, PersistMode::FlitCxl0,
                      PersistMode::FlitCxl0AddrOpt,
                      PersistMode::FlitOriginal, PersistMode::PersistAll,
                      PersistMode::FlitAsync, PersistMode::FlitVerified),
    [](const ::testing::TestParamInfo<PersistMode> &info) {
        std::string n = flit::persistModeName(info.param);
        std::replace(n.begin(), n.end(), '-', '_');
        return n;
    });

TEST(Stack, ConcurrentPushersPreserveAllElements)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 8192);
    TreiberStack s(*rig.rt, 0);
    constexpr int kThreads = 4, kEach = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&s, t] {
            NodeId by = static_cast<NodeId>(t % 2);
            for (int k = 0; k < kEach; ++k)
                s.push(by, t * 1000 + k);
        });
    }
    for (auto &th : threads)
        th.join();
    std::set<Value> seen;
    while (auto v = s.pop(0))
        seen.insert(*v);
    EXPECT_EQ(seen.size(), kThreads * kEach);
}

TEST(Stack, ConcurrentMixedWorkloadConserves)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 8192,
                        cxl0::runtime::PropagationPolicy::Random, 5);
    TreiberStack s(*rig.rt, 0);
    constexpr int kThreads = 4, kOps = 100;
    std::atomic<long> pushed{0}, popped{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(900 + t);
            NodeId by = static_cast<NodeId>(t % 2);
            for (int k = 0; k < kOps; ++k) {
                if (rng.chance(60, 100)) {
                    s.push(by, t * 1000 + k);
                    pushed.fetch_add(1);
                } else if (s.pop(by)) {
                    popped.fetch_add(1);
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    long remaining = 0;
    while (s.pop(0))
        ++remaining;
    EXPECT_EQ(pushed.load(), popped.load() + remaining);
}

} // namespace
