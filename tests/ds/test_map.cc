#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "ds/map.hh"
#include "harness.hh"

namespace
{

using namespace cxl0;
using ds::HashMap;
using flit::PersistMode;
using test::Rig;

TEST(Map, PutGetRemove)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    HashMap m(*rig.rt, 0, 8);
    EXPECT_FALSE(m.get(0, 1).has_value());
    m.put(0, 1, 100);
    EXPECT_EQ(m.get(1, 1), 100);
    EXPECT_TRUE(m.remove(0, 1));
    EXPECT_FALSE(m.get(0, 1).has_value());
    EXPECT_FALSE(m.remove(1, 1));
}

TEST(Map, OverwriteTakesNewestValue)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    HashMap m(*rig.rt, 0, 4);
    m.put(0, 5, 1);
    m.put(1, 5, 2);
    m.put(0, 5, 3);
    EXPECT_EQ(m.get(1, 5), 3);
}

TEST(Map, ReinsertAfterRemove)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    HashMap m(*rig.rt, 0, 4);
    m.put(0, 9, 90);
    m.remove(0, 9);
    m.put(0, 9, 91);
    EXPECT_EQ(m.get(1, 9), 91);
}

TEST(Map, CollidingKeysCoexist)
{
    // One bucket forces every key into the same chain.
    Rig rig = Rig::make(PersistMode::FlitCxl0, 8192);
    HashMap m(*rig.rt, 0, 1);
    for (Value k = 0; k < 20; ++k)
        m.put(0, k, k * 10);
    for (Value k = 0; k < 20; ++k)
        EXPECT_EQ(m.get(1, k), k * 10);
}

TEST(Map, SnapshotReflectsLiveEntries)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0);
    HashMap m(*rig.rt, 0, 4);
    m.put(0, 1, 10);
    m.put(0, 2, 20);
    m.put(0, 1, 11); // overwrite
    m.remove(0, 2);
    auto snap = m.unsafeSnapshot(1);
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, 1);
    EXPECT_EQ(snap[0].second, 11);
}

TEST(Map, ConcurrentDisjointWriters)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 32768);
    HashMap m(*rig.rt, 0, 16);
    constexpr int kThreads = 4, kEach = 30;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m, t] {
            NodeId by = static_cast<NodeId>(t % 2);
            for (int k = 0; k < kEach; ++k)
                m.put(by, t * 1000 + k, t);
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        for (int k = 0; k < kEach; ++k)
            EXPECT_EQ(m.get(0, t * 1000 + k), t);
}

TEST(Map, ConcurrentSameKeyLastWriteWins)
{
    Rig rig = Rig::make(PersistMode::FlitCxl0, 32768,
                        runtime::PropagationPolicy::Random, 29);
    HashMap m(*rig.rt, 0, 4);
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m, t] {
            NodeId by = static_cast<NodeId>(t % 2);
            for (int k = 0; k < 25; ++k)
                m.put(by, 7, t * 100 + k);
        });
    }
    for (auto &th : threads)
        th.join();
    auto v = m.get(0, 7);
    ASSERT_TRUE(v.has_value());
    // The winner must be some thread's final write... or at least a
    // written value; precise last-write needs a linearizability
    // checker (see test_recovery.cc). Here: value was truly written.
    bool legal = false;
    for (int t = 0; t < kThreads; ++t)
        legal |= (*v >= t * 100 && *v < t * 100 + 25);
    EXPECT_TRUE(legal);
}

} // namespace
