/**
 * @file
 * Unit tests for the crash-plan layer: discovery, case execution,
 * artifact round trips, and the runtime crash hooks they drive.
 */

#include <gtest/gtest.h>

#include "inject/plan.hh"

namespace cxl0::inject
{
namespace
{

CampaignCase
baseCase(Structure s, flit::PersistMode mode =
                          flit::PersistMode::FlitCxl0)
{
    CampaignCase c;
    c.structure = s;
    c.mode = mode;
    c.policy = runtime::PropagationPolicy::Manual;
    c.seed = 7;
    generateOps(c);
    return c;
}

TEST(Discover, FindsBoundariesAfterSetup)
{
    // Queue construction installs a sentinel node, so its setup
    // issues primitives that must be excluded from the crash range.
    CampaignCase c = baseCase(Structure::Queue);
    Discovery d = discover(c);
    EXPECT_GT(d.setupSteps, 0u) << "construction issues primitives";
    EXPECT_GT(d.totalSteps, d.setupSteps)
        << "the workload issues primitives";
    EXPECT_EQ(d.trace.size(), d.totalSteps);
}

TEST(Discover, DeterministicForSameSeed)
{
    CampaignCase c = baseCase(Structure::Queue);
    Discovery a = discover(c);
    Discovery b = discover(c);
    EXPECT_EQ(a.setupSteps, b.setupSteps);
    EXPECT_EQ(a.totalSteps, b.totalSteps);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.evictions, b.evictions);
}

TEST(RunCase, NoCrashPasses)
{
    for (Structure s : allStructures()) {
        CampaignCase c = baseCase(s);
        CaseOutcome out = runCase(c, RunLimits{});
        EXPECT_EQ(out.verdict, CaseOutcome::Verdict::Pass)
            << structureName(s) << ": " << out.lin.explanation;
    }
}

TEST(RunCase, OwnerCrashEveryStepDurableModePasses)
{
    // The core acceptance property in miniature: a durable mode under
    // deterministic propagation survives an owner crash at every
    // persist boundary of a stack workload.
    CampaignCase c = baseCase(Structure::Stack);
    Discovery d = discover(c);
    for (uint64_t step = d.setupSteps; step < d.totalSteps; ++step) {
        CampaignCase crashy = c;
        crashy.hasCrash = true;
        crashy.crashStep = step;
        crashy.crashNode = 0;
        CaseOutcome out = runCase(crashy, RunLimits{});
        EXPECT_EQ(out.verdict, CaseOutcome::Verdict::Pass)
            << "crash at step " << step << " ("
            << model::opName(out.crashOpKind)
            << "): " << out.lin.explanation;
    }
}

TEST(RunCase, UnsoundModeViolatesSomewhere)
{
    // flit-original only LFlushes, which parks values in the owner's
    // cache; an owner crash between the flush and propagation loses
    // the write. Some crash point must expose this.
    CampaignCase c =
        baseCase(Structure::Register, flit::PersistMode::FlitOriginal);
    Discovery d = discover(c);
    bool violated = false;
    for (uint64_t step = d.setupSteps;
         step < d.totalSteps && !violated; ++step) {
        CampaignCase crashy = c;
        crashy.hasCrash = true;
        crashy.crashStep = step;
        crashy.crashNode = 0;
        violated = runCase(crashy, RunLimits{}).verdict ==
                   CaseOutcome::Verdict::Violation;
    }
    EXPECT_TRUE(violated);
}

TEST(RunCase, CrashedThreadOpStaysPending)
{
    CampaignCase c = baseCase(Structure::Register);
    Discovery d = discover(c);
    // Crash the owner at the last workload primitive: whichever op is
    // in flight on node 0 should unwind as pending, and the history
    // must still include completed observers.
    CampaignCase crashy = c;
    crashy.hasCrash = true;
    crashy.crashStep = d.totalSteps - 1;
    crashy.crashNode = 0;
    CaseOutcome out = runCase(crashy, RunLimits{});
    ASSERT_NE(out.verdict, CaseOutcome::Verdict::Skipped);
    size_t completed = 0;
    for (const auto &op : out.history)
        completed += op.pending() ? 0 : 1;
    EXPECT_GT(completed, 0u);
    EXPECT_EQ(out.verdict, CaseOutcome::Verdict::Pass)
        << out.lin.explanation;
}

TEST(RunCase, UnreachedCrashStepSkips)
{
    CampaignCase c = baseCase(Structure::Counter);
    Discovery d = discover(c);
    CampaignCase crashy = c;
    crashy.hasCrash = true;
    crashy.crashStep = d.totalSteps + 10000;
    crashy.crashNode = 0;
    EXPECT_EQ(runCase(crashy, RunLimits{}).verdict,
              CaseOutcome::Verdict::Skipped);
}

TEST(Artifact, RoundTripsEveryField)
{
    CampaignCase c = baseCase(Structure::Log);
    c.mode = flit::PersistMode::PersistAll;
    c.policy = runtime::PropagationPolicy::Random;
    c.variant = model::ModelVariant::Lwb;
    c.hasCrash = true;
    c.crashStep = 42;
    c.crashNode = 1;
    c.replayEvictions = true;
    c.evictions = {{10, 1, 3}, {12, 0, 7}};
    CaseOutcome out;
    std::string text = writeArtifactText(c, out);
    std::string err;
    auto parsed = parseArtifact(text, &err);
    ASSERT_TRUE(parsed) << err;
    EXPECT_EQ(parsed->structure, c.structure);
    EXPECT_EQ(parsed->mode, c.mode);
    EXPECT_EQ(parsed->variant, c.variant);
    EXPECT_EQ(parsed->policy, c.policy);
    EXPECT_EQ(parsed->seed, c.seed);
    EXPECT_EQ(parsed->nodes, c.nodes);
    EXPECT_EQ(parsed->cellsPerNode, c.cellsPerNode);
    EXPECT_EQ(parsed->logCapacity, c.logCapacity);
    EXPECT_EQ(parsed->hasCrash, true);
    EXPECT_EQ(parsed->crashStep, c.crashStep);
    EXPECT_EQ(parsed->crashNode, c.crashNode);
    EXPECT_EQ(parsed->replayEvictions, true);
    EXPECT_EQ(parsed->evictions, c.evictions);
    EXPECT_EQ(parsed->ops, c.ops);
}

TEST(Artifact, GarbageYieldsLineDiagnostic)
{
    std::string err;
    EXPECT_FALSE(parseArtifact("structure stack\nwat 3\nend\n", &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(parseArtifact("structure nosuch\nend\n", &err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(parseArtifact("structure stack\n", &err));
    EXPECT_NE(err.find("end"), std::string::npos) << err;
}

TEST(Artifact, ReplayReproducesVerdict)
{
    // Find one violating case for the unsound mode, serialize it,
    // parse it back, and re-run: same verdict.
    CampaignCase c =
        baseCase(Structure::Register, flit::PersistMode::FlitOriginal);
    Discovery d = discover(c);
    std::optional<CampaignCase> bad;
    for (uint64_t step = d.setupSteps; step < d.totalSteps && !bad;
         ++step) {
        CampaignCase crashy = c;
        crashy.hasCrash = true;
        crashy.crashStep = step;
        crashy.crashNode = 0;
        if (runCase(crashy, RunLimits{}).verdict ==
            CaseOutcome::Verdict::Violation)
            bad = crashy;
    }
    ASSERT_TRUE(bad);
    CaseOutcome out = runCase(*bad, RunLimits{});
    std::string text = writeArtifactText(*bad, out);
    std::string err;
    auto parsed = parseArtifact(text, &err);
    ASSERT_TRUE(parsed) << err;
    EXPECT_EQ(runCase(*parsed, RunLimits{}).verdict,
              CaseOutcome::Verdict::Violation);
}

} // namespace
} // namespace cxl0::inject
