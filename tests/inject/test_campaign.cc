/**
 * @file
 * End-to-end tests for the campaign runner: durable modes verify
 * clean across every structure, the seeded misconfiguration yields a
 * shrunk replayable artifact, and campaigns are deterministic.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "inject/campaign.hh"

namespace cxl0::inject
{
namespace
{

CampaignOptions
smallOpts()
{
    CampaignOptions opts;
    opts.seed = 11;
    opts.crashBudget = 16;
    opts.params.numOps = 5;
    return opts;
}

TEST(Campaign, AllStructuresDurableModeClean)
{
    CampaignOptions opts = smallOpts();
    opts.modes = {flit::PersistMode::FlitCxl0};
    CampaignReport report = runCampaign(opts);
    EXPECT_GT(report.cases, 0u);
    EXPECT_EQ(report.durableViolations, 0u);
    EXPECT_TRUE(report.allDurablePass);
    // Every structure contributed cases.
    EXPECT_EQ(report.perStructure.size(), allStructures().size());
    for (const auto &[key, b] : report.perStructure)
        EXPECT_GT(b.cases, 0u) << key;
}

TEST(Campaign, WindowClosingModesCleanUnderRandomPropagation)
{
    // persist-all and flit-verified default to adversarial Random
    // propagation and must still verify clean.
    CampaignOptions opts = smallOpts();
    opts.structures = {Structure::Register, Structure::Stack};
    opts.modes = {flit::PersistMode::PersistAll,
                  flit::PersistMode::FlitVerified};
    CampaignReport report = runCampaign(opts);
    EXPECT_GT(report.cases, 0u);
    EXPECT_TRUE(report.allDurablePass);
}

TEST(Campaign, LwbUnitRuns)
{
    CampaignOptions opts = smallOpts();
    opts.structures = {Structure::Register};
    opts.lwbStructure = Structure::Stack;
    CampaignReport report = runCampaign(opts);
    EXPECT_TRUE(report.perStructure.count("stack@lwb"))
        << "LWB unit missing";
    EXPECT_GT(report.perStructure["stack@lwb"].cases, 0u);
    EXPECT_TRUE(report.allDurablePass);
}

TEST(Campaign, MisconfigurationShrinksToReplayableArtifact)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "cxl0_campaign_test_corpus";
    std::filesystem::remove_all(dir);

    CampaignOptions opts = smallOpts();
    opts.structures = {Structure::Register};
    opts.modes = {flit::PersistMode::FlitOriginal};
    opts.corpusDir = dir.string();
    CampaignReport report = runCampaign(opts);

    EXPECT_GT(report.violations, 0u);
    EXPECT_EQ(report.durableViolations, 0u)
        << "flit-original does not claim durability";
    EXPECT_TRUE(report.allDurablePass);
    ASSERT_FALSE(report.shrunk.empty());

    const ShrunkRecord &rec = report.shrunk.front();
    EXPECT_LE(rec.minimized.ops.size(), opts.params.numOps);
    EXPECT_EQ(rec.outcome.verdict, CaseOutcome::Verdict::Violation);
    ASSERT_FALSE(rec.artifactPath.empty());

    // The artifact on disk parses and replays to the same violation.
    std::ifstream f(rec.artifactPath);
    ASSERT_TRUE(f.good());
    std::stringstream buf;
    buf << f.rdbuf();
    std::string err;
    auto parsed = parseArtifact(buf.str(), &err);
    ASSERT_TRUE(parsed) << err;
    EXPECT_EQ(runCase(*parsed, opts.limits).verdict,
              CaseOutcome::Verdict::Violation);

    std::filesystem::remove_all(dir);
}

TEST(Campaign, DeterministicFromFixedSeed)
{
    CampaignOptions opts = smallOpts();
    opts.structures = {Structure::Stack, Structure::Kv};
    opts.modes = {flit::PersistMode::FlitCxl0,
                  flit::PersistMode::FlitOriginal};
    CampaignReport a = runCampaign(opts);
    CampaignReport b = runCampaign(opts);
    EXPECT_EQ(a.cases, b.cases);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(campaignJson(opts, a, 1.23, /*stable=*/true),
              campaignJson(opts, b, 4.56, /*stable=*/true));
}

TEST(Campaign, BucketKeyShape)
{
    CampaignCase c;
    c.structure = Structure::Stack;
    c.mode = flit::PersistMode::FlitOriginal;
    c.ops = {{0, "push", 1, 0}, {1, "pop", 0, 0}, {0, "push", 2, 0}};
    EXPECT_EQ(bucketKey(c, model::Op::LStore),
              "stack/flit-original/LStore/pop+push");
}

TEST(Campaign, CommittedCorpusArtifactsStillViolate)
{
    // The checked-in shrunk artifacts are regression anchors: each
    // must parse and still reproduce its violation verbatim.
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(CXL0_SOURCE_DIR) / "corpus" / "campaign";
    ASSERT_TRUE(fs::is_directory(dir))
        << "missing committed corpus directory " << dir;
    size_t replayed = 0;
    for (const fs::directory_entry &ent : fs::directory_iterator(dir)) {
        if (ent.path().extension() != ".txt")
            continue;
        std::ifstream in(ent.path());
        std::ostringstream text;
        text << in.rdbuf();
        std::string err;
        std::optional<CampaignCase> c = parseArtifact(text.str(), &err);
        ASSERT_TRUE(c.has_value())
            << ent.path().filename() << ": " << err;
        CaseOutcome out = runCase(*c, RunLimits{});
        EXPECT_EQ(out.verdict, CaseOutcome::Verdict::Violation)
            << ent.path().filename() << " replayed as "
            << verdictName(out.verdict);
        ++replayed;
    }
    EXPECT_GE(replayed, 8u) << "corpus unexpectedly small";
}

TEST(Campaign, CorruptionPanicBecomesViolationVerdict)
{
    // Under the unsound flit-original mode a crash can leave a
    // recovered queue with a dangling pointer; the structure panics
    // on it. runCase must contain that panic and report it as the
    // violation it is (never propagate out of the harness).
    CampaignCase c;
    c.structure = Structure::Queue;
    c.mode = flit::PersistMode::FlitOriginal;
    c.seed = 1;
    c.params.numOps = 5;
    generateOps(c);
    Discovery d = discover(c);
    bool saw_corruption = false;
    for (uint64_t step = d.setupSteps; step < d.totalSteps; ++step) {
        CampaignCase probe = c;
        probe.hasCrash = true;
        probe.crashStep = step;
        probe.crashNode = 0;
        CaseOutcome out = runCase(probe, RunLimits{});
        if (out.verdict == CaseOutcome::Verdict::Violation &&
            out.lin.explanation.find("structure corrupted") !=
                std::string::npos)
            saw_corruption = true;
    }
    EXPECT_TRUE(saw_corruption)
        << "no crash point corrupted the flit-original queue";
}

} // namespace
} // namespace cxl0::inject
