#include <gtest/gtest.h>

#include "check/trace.hh"

namespace
{

using namespace cxl0::model;
using cxl0::check::TraceChecker;

class TraceTest : public ::testing::Test
{
  protected:
    TraceTest()
        : cfg(SystemConfig::uniform(2, 1, true)), model(cfg),
          checker(model)
    {
    }

    SystemConfig cfg;
    Cxl0Model model;
    TraceChecker checker;
};

TEST_F(TraceTest, EmptyTraceIsFeasible)
{
    EXPECT_TRUE(checker.feasible({}));
}

TEST_F(TraceTest, StoreThenLoadSeesValue)
{
    EXPECT_TRUE(checker.feasible(
        {Label::lstore(0, 0, 1), Label::load(0, 0, 1)}));
}

TEST_F(TraceTest, LoadOfUnwrittenValueInfeasible)
{
    EXPECT_FALSE(checker.feasible({Label::load(0, 0, 1)}));
}

TEST_F(TraceTest, LoadOfInitialZeroFeasible)
{
    EXPECT_TRUE(checker.feasible({Label::load(1, 0, 0)}));
}

TEST_F(TraceTest, TauInterleavingEnablesFlush)
{
    // LFlush right after LStore needs a tau drain first; the checker
    // must find it.
    EXPECT_TRUE(checker.feasible(
        {Label::lstore(0, 0, 1), Label::lflush(0, 0)}));
}

TEST_F(TraceTest, StaleLoadAfterStoreInfeasibleWithoutCrash)
{
    // Cache coherence: a later load cannot see the old value.
    EXPECT_FALSE(checker.feasible(
        {Label::lstore(0, 0, 1), Label::load(1, 0, 0)}));
}

TEST_F(TraceTest, CrashCanLoseUnflushedStore)
{
    EXPECT_TRUE(checker.feasible({Label::lstore(0, 0, 1),
                                  Label::crash(0),
                                  Label::load(0, 0, 0)}));
}

TEST_F(TraceTest, StatesAfterClosesUnderTau)
{
    auto states =
        checker.statesAfter(model.initialState(), {Label::lstore(0, 0, 1)});
    // At least: value in C0; value in M0 (drained).
    bool in_cache = false, in_mem = false;
    for (const auto &s : states) {
        if (s.cache(0, 0) == 1)
            in_cache = true;
        if (s.memory(0) == 1 && s.allCachesEmpty())
            in_mem = true;
    }
    EXPECT_TRUE(in_cache);
    EXPECT_TRUE(in_mem);
}

TEST_F(TraceTest, FirstBlockedIndexPointsAtOffendingLabel)
{
    std::vector<Label> t{Label::lstore(0, 0, 1), Label::load(0, 0, 2),
                         Label::load(0, 0, 1)};
    EXPECT_EQ(checker.firstBlockedIndex(model.initialState(), t), 1u);
    std::vector<Label> ok{Label::lstore(0, 0, 1), Label::load(0, 0, 1)};
    EXPECT_EQ(checker.firstBlockedIndex(model.initialState(), ok), 2u);
}

TEST_F(TraceTest, RmwTraceRequiresMatchingOldValue)
{
    EXPECT_TRUE(checker.feasible(
        {Label::lstore(0, 0, 1), Label::lrmw(1, 0, 1, 2),
         Label::load(0, 0, 2)}));
    EXPECT_FALSE(checker.feasible(
        {Label::lstore(0, 0, 1), Label::lrmw(1, 0, 0, 2)}));
}

TEST_F(TraceTest, GpfDrainsEverythingBeforeProceeding)
{
    // After GPF the store must be persistent: the stale load is
    // impossible even across a crash.
    EXPECT_FALSE(checker.feasible(
        {Label::lstore(0, 0, 1), Label::gpf(0), Label::crash(0),
         Label::load(0, 0, 0)}));
}

TEST_F(TraceTest, CheckTraceFeasibleReportsPassWithStats)
{
    using cxl0::check::checkTraceFeasible;
    auto r = checkTraceFeasible(
        model, {Label::lstore(0, 0, 1), Label::load(0, 0, 1)});
    EXPECT_EQ(r.verdict, cxl0::check::CheckVerdict::Pass);
    EXPECT_FALSE(r.truncated);
    EXPECT_GT(r.stats.statesInterned, 0u);
    EXPECT_GT(r.stats.framesInterned, 0u);
    EXPECT_GT(r.stats.peakVisitedBytes, 0u);
}

TEST_F(TraceTest, CheckTraceFeasibleFailPointsAtBlockedLabel)
{
    using cxl0::check::checkTraceFeasible;
    // The middle load of a never-stored value blocks at index 1.
    auto r = checkTraceFeasible(model,
                                {Label::lstore(0, 0, 1),
                                 Label::load(0, 0, 2),
                                 Label::load(0, 0, 1)});
    ASSERT_EQ(r.verdict, cxl0::check::CheckVerdict::Fail);
    EXPECT_EQ(r.counterexample.trace.size(), 2u);
    EXPECT_NE(r.counterexample.description.find("index 1"),
              std::string::npos);
}

TEST_F(TraceTest, CheckTraceFeasibleTinyBudgetTruncates)
{
    using cxl0::check::checkTraceFeasible;
    cxl0::check::CheckRequest req;
    req.maxConfigs = 1; // below even the initial tau closure
    auto r = checkTraceFeasible(
        model, {Label::lstore(0, 0, 1), Label::load(0, 0, 1)}, req);
    EXPECT_TRUE(r.truncated);
    EXPECT_EQ(r.verdict, cxl0::check::CheckVerdict::Inconclusive);
}

TEST_F(TraceTest, FrameAfterMatchesStatesAfter)
{
    std::vector<Label> t{Label::lstore(0, 0, 1)};
    auto states = checker.statesAfter(model.initialState(), t);
    auto frame = checker.frameAfter(model.initialState(), t);
    ASSERT_NE(frame, cxl0::model::kNoFrameId);
    EXPECT_EQ(checker.engine().frames().sizeOf(frame), states.size());
}

TEST_F(TraceTest, VolatileOwnerLosesMemoryOnCrash)
{
    SystemConfig vcfg({MachineConfig{false}, MachineConfig{true}}, {0});
    Cxl0Model vmodel(vcfg);
    TraceChecker vchecker(vmodel);
    EXPECT_TRUE(vchecker.feasible(
        {Label::mstore(1, 0, 1), Label::crash(0), Label::load(1, 0, 0)}));
}

} // namespace
