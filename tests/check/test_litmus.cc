#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "check/litmus.hh"

namespace
{

using namespace cxl0::check;
using cxl0::model::ModelVariant;

/**
 * Every litmus test's observed verdict must match the paper, under
 * every model variant (Fig. 3 verdicts for 1-9, the triples of §3.5
 * for 10-12, and §6's motivating example as test 13).
 */
class LitmusSuite : public ::testing::TestWithParam<LitmusTest>
{
};

TEST_P(LitmusSuite, BaseVerdictMatchesPaper)
{
    const LitmusTest &t = GetParam();
    EXPECT_EQ(runLitmus(t, ModelVariant::Base), t.expectBase)
        << "test " << t.id << " (" << t.name << ")";
}

TEST_P(LitmusSuite, LwbVerdictMatchesPaper)
{
    const LitmusTest &t = GetParam();
    EXPECT_EQ(runLitmus(t, ModelVariant::Lwb), t.expectLwb)
        << "test " << t.id << " (" << t.name << ")";
}

TEST_P(LitmusSuite, PsnVerdictMatchesPaper)
{
    const LitmusTest &t = GetParam();
    EXPECT_EQ(runLitmus(t, ModelVariant::Psn), t.expectPsn)
        << "test " << t.id << " (" << t.name << ")";
}

TEST_P(LitmusSuite, VariantsOnlyRestrictBase)
{
    // §3.5: every trace allowed by a variant is also allowed by CXL0.
    const LitmusTest &t = GetParam();
    if (runLitmus(t, ModelVariant::Lwb) == Verdict::Allowed) {
        EXPECT_EQ(runLitmus(t, ModelVariant::Base), Verdict::Allowed);
    }
    if (runLitmus(t, ModelVariant::Psn) == Verdict::Allowed) {
        EXPECT_EQ(runLitmus(t, ModelVariant::Base), Verdict::Allowed);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, LitmusSuite, ::testing::ValuesIn(allTests()),
    [](const ::testing::TestParamInfo<LitmusTest> &info) {
        return "test" + std::to_string(info.param.id);
    });

INSTANTIATE_TEST_SUITE_P(
    Extended, LitmusSuite, ::testing::ValuesIn(extendedTests()),
    [](const ::testing::TestParamInfo<LitmusTest> &info) {
        return "test" + std::to_string(info.param.id);
    });

TEST(LitmusInventory, ThirteenTestsTotal)
{
    EXPECT_EQ(figure3Tests().size(), 9u);
    EXPECT_EQ(variantTests().size(), 3u);
    EXPECT_EQ(allTests().size(), 13u);
    EXPECT_EQ(extendedTests().size(), 6u);
}

TEST(LitmusInventory, IdsMatchPaperNumbering)
{
    auto tests = allTests();
    for (size_t k = 0; k < tests.size(); ++k)
        EXPECT_EQ(tests[k].id, static_cast<int>(k) + 1);
}

TEST(LitmusInventory, AllMatchPaperHelper)
{
    for (const LitmusTest &t : allTests())
        EXPECT_TRUE(litmusMatchesPaper(t)) << "test " << t.id;
}

TEST(LitmusInventory, VerdictNamesRender)
{
    EXPECT_NE(verdictName(Verdict::Allowed).find("Allowed"),
              std::string::npos);
    EXPECT_NE(verdictName(Verdict::Forbidden).find("Forbidden"),
              std::string::npos);
}

TEST(LitmusDetails, Test5BlocksAtTheLoad)
{
    // The infeasibility of test 5 must come from the final load (the
    // RFlush itself is executable), demonstrating that RFlush forces
    // the value into remote persistence.
    LitmusTest t5 = figure3Tests()[4];
    ASSERT_EQ(t5.id, 5);
    cxl0::model::Cxl0Model m(t5.config, ModelVariant::Base);
    TraceChecker checker(m);
    EXPECT_EQ(checker.firstBlockedIndex(m.initialState(), t5.trace),
              t5.trace.size() - 1);
}

// ---------------------------------------------------------------------
// Explorer-program recasts (tests 4, 13, and the §3.5-style 14-16):
// whole reachable outcome sets as regression anchors.
// ---------------------------------------------------------------------

TEST(LitmusPrograms, InventoryCoversRecastTests)
{
    auto programs = explorerPrograms();
    ASSERT_EQ(programs.size(), 7u);
    EXPECT_EQ(programs[2].id, 14);
    EXPECT_EQ(programs[3].id, 15);
    EXPECT_EQ(programs[4].id, 16);
    EXPECT_EQ(programs[5].id, 17); // RMW flavours
    EXPECT_EQ(programs[6].id, 12); // multi-crash schedules
}

/**
 * Exact (flag read, data read) outcome set of a message-passing
 * program, locked in as a regression oracle. Also exercises
 * outcomesWhere with a capturing lambda (the function-pointer form is
 * deprecated).
 */
void
expectOutcomePairs(const LitmusProgram &lp,
                   const std::set<std::pair<cxl0::Value, cxl0::Value>>
                       &expected)
{
    cxl0::model::Cxl0Model model(lp.config, lp.variant);
    Explorer ex(model, lp.program, lp.options);
    CheckReport res = ex.check();
    ASSERT_FALSE(res.truncated) << lp.name;
    ASSERT_EQ(res.verdict, CheckVerdict::Pass) << lp.name;

    std::set<std::pair<cxl0::Value, cxl0::Value>> seen;
    for (const Outcome &o : res.outcomes)
        seen.insert({o.regs[0][0], o.regs[0][1]});
    EXPECT_EQ(seen, expected) << lp.name;

    // The writer itself never crashes (only the owner may), and the
    // crash-free run (both stores observed) always exists.
    const cxl0::Value stored = 1;
    auto both = ex.outcomesWhere(res.outcomes, [&](const Outcome &o) {
        return o.regs[0][0] == stored && o.regs[0][1] == stored;
    });
    EXPECT_FALSE(both.empty()) << lp.name;
    for (const Outcome &o : res.outcomes)
        EXPECT_EQ(o.crashedThreads, 0u) << lp.name;
}

TEST(LitmusPrograms, MStoresForecloseEveryLoss)
{
    // MStore persists atomically with the store, so no crash timing
    // can lose either value: the only reachable read-back is (1,1) —
    // in particular the flag can never outlive the data (test 14).
    expectOutcomePairs(litmus14Program(), {{1, 1}});
}

TEST(LitmusPrograms, PlainLStoresAllowFlagWithoutData)
{
    // Unflushed stores persist out of order: (1,0) — flag observed,
    // data lost — is reachable (test 15), alongside every other
    // combination.
    expectOutcomePairs(litmus15Program(),
                       {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
}

TEST(LitmusPrograms, GpfProtectsOnlyAgainstLaterCrashes)
{
    // Unlike serialized litmus test 16 (which pins the crash *after*
    // the GPF and is Forbidden), the program form lets the crash
    // strike before the barrier, so the full outcome set including
    // the (1,0) split stays reachable. The trace-level verdict is
    // covered by extendedTests(); this anchors the program-level set.
    expectOutcomePairs(litmus16Program(),
                       {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
}

TEST(LitmusPrograms, RmwFlavoursSplitUnderOwnerCrash)
{
    // Tests 17+18 as one program. Locked exact outcome set over
    // (r0, r1, r2, r3) = (FAA old value, CAS success flag, d
    // read-back, f read-back): the L-RMW'd data may or may not
    // survive the owner's crash, the successful M-RMW'd flag always
    // does, and the RMW return values are fixed by §3.3.
    LitmusProgram lp = litmus17Program();
    cxl0::model::Cxl0Model model(lp.config, lp.variant);
    CheckReport res = Explorer(model, lp.program, lp.options).check();
    ASSERT_FALSE(res.truncated);

    std::set<std::vector<cxl0::Value>> seen;
    for (const Outcome &o : res.outcomes)
        seen.insert(o.regs[0]);
    std::set<std::vector<cxl0::Value>> expected{{0, 1, 0, 1},
                                                {0, 1, 1, 1}};
    EXPECT_EQ(seen, expected);
}

TEST(LitmusPrograms, DoubleCrashSchedulesKeepReadCoherence)
{
    // Test 12's shape under Base with two owner crashes. Locked
    // exact (r0, r1) set: the observed-then-lost split (1, 0) is
    // reachable, but a read of 0 can never be followed by a read of
    // 1 — the value is gone for good once both the writer's cache
    // copy and the owner's memory lost it.
    LitmusProgram lp = litmus12Program();
    cxl0::model::Cxl0Model model(lp.config, lp.variant);
    CheckReport res = Explorer(model, lp.program, lp.options).check();
    ASSERT_FALSE(res.truncated);

    std::set<std::pair<cxl0::Value, cxl0::Value>> seen;
    for (const Outcome &o : res.outcomes)
        seen.insert({o.regs[0][0], o.regs[0][1]});
    std::set<std::pair<cxl0::Value, cxl0::Value>> expected{
        {0, 0}, {1, 0}, {1, 1}};
    EXPECT_EQ(seen, expected);
    // The writer's machine never crashes.
    for (const Outcome &o : res.outcomes)
        EXPECT_EQ(o.crashedThreads, 0u);
}

TEST(LitmusDetails, Test12RequiresTwoCrashes)
{
    // Dropping the second crash from test 12 removes the anomaly:
    // the final load of 0 becomes infeasible in the base model too.
    LitmusTest t12 = variantTests()[2];
    ASSERT_EQ(t12.id, 12);
    std::vector<cxl0::model::Label> shortened(t12.trace.begin(),
                                              t12.trace.end());
    shortened.erase(shortened.begin() + 3); // remove second E1
    cxl0::model::Cxl0Model m(t12.config, ModelVariant::Base);
    TraceChecker checker(m);
    EXPECT_FALSE(checker.feasible(shortened));
}

} // namespace
