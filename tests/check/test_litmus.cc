#include <gtest/gtest.h>

#include "check/litmus.hh"

namespace
{

using namespace cxl0::check;
using cxl0::model::ModelVariant;

/**
 * Every litmus test's observed verdict must match the paper, under
 * every model variant (Fig. 3 verdicts for 1-9, the triples of §3.5
 * for 10-12, and §6's motivating example as test 13).
 */
class LitmusSuite : public ::testing::TestWithParam<LitmusTest>
{
};

TEST_P(LitmusSuite, BaseVerdictMatchesPaper)
{
    const LitmusTest &t = GetParam();
    EXPECT_EQ(runLitmus(t, ModelVariant::Base), t.expectBase)
        << "test " << t.id << " (" << t.name << ")";
}

TEST_P(LitmusSuite, LwbVerdictMatchesPaper)
{
    const LitmusTest &t = GetParam();
    EXPECT_EQ(runLitmus(t, ModelVariant::Lwb), t.expectLwb)
        << "test " << t.id << " (" << t.name << ")";
}

TEST_P(LitmusSuite, PsnVerdictMatchesPaper)
{
    const LitmusTest &t = GetParam();
    EXPECT_EQ(runLitmus(t, ModelVariant::Psn), t.expectPsn)
        << "test " << t.id << " (" << t.name << ")";
}

TEST_P(LitmusSuite, VariantsOnlyRestrictBase)
{
    // §3.5: every trace allowed by a variant is also allowed by CXL0.
    const LitmusTest &t = GetParam();
    if (runLitmus(t, ModelVariant::Lwb) == Verdict::Allowed) {
        EXPECT_EQ(runLitmus(t, ModelVariant::Base), Verdict::Allowed);
    }
    if (runLitmus(t, ModelVariant::Psn) == Verdict::Allowed) {
        EXPECT_EQ(runLitmus(t, ModelVariant::Base), Verdict::Allowed);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, LitmusSuite, ::testing::ValuesIn(allTests()),
    [](const ::testing::TestParamInfo<LitmusTest> &info) {
        return "test" + std::to_string(info.param.id);
    });

INSTANTIATE_TEST_SUITE_P(
    Extended, LitmusSuite, ::testing::ValuesIn(extendedTests()),
    [](const ::testing::TestParamInfo<LitmusTest> &info) {
        return "test" + std::to_string(info.param.id);
    });

TEST(LitmusInventory, ThirteenTestsTotal)
{
    EXPECT_EQ(figure3Tests().size(), 9u);
    EXPECT_EQ(variantTests().size(), 3u);
    EXPECT_EQ(allTests().size(), 13u);
    EXPECT_EQ(extendedTests().size(), 6u);
}

TEST(LitmusInventory, IdsMatchPaperNumbering)
{
    auto tests = allTests();
    for (size_t k = 0; k < tests.size(); ++k)
        EXPECT_EQ(tests[k].id, static_cast<int>(k) + 1);
}

TEST(LitmusInventory, AllMatchPaperHelper)
{
    for (const LitmusTest &t : allTests())
        EXPECT_TRUE(litmusMatchesPaper(t)) << "test " << t.id;
}

TEST(LitmusInventory, VerdictNamesRender)
{
    EXPECT_NE(verdictName(Verdict::Allowed).find("Allowed"),
              std::string::npos);
    EXPECT_NE(verdictName(Verdict::Forbidden).find("Forbidden"),
              std::string::npos);
}

TEST(LitmusDetails, Test5BlocksAtTheLoad)
{
    // The infeasibility of test 5 must come from the final load (the
    // RFlush itself is executable), demonstrating that RFlush forces
    // the value into remote persistence.
    LitmusTest t5 = figure3Tests()[4];
    ASSERT_EQ(t5.id, 5);
    cxl0::model::Cxl0Model m(t5.config, ModelVariant::Base);
    TraceChecker checker(m);
    EXPECT_EQ(checker.firstBlockedIndex(m.initialState(), t5.trace),
              t5.trace.size() - 1);
}

TEST(LitmusDetails, Test12RequiresTwoCrashes)
{
    // Dropping the second crash from test 12 removes the anomaly:
    // the final load of 0 becomes infeasible in the base model too.
    LitmusTest t12 = variantTests()[2];
    ASSERT_EQ(t12.id, 12);
    std::vector<cxl0::model::Label> shortened(t12.trace.begin(),
                                              t12.trace.end());
    shortened.erase(shortened.begin() + 3); // remove second E1
    cxl0::model::Cxl0Model m(t12.config, ModelVariant::Base);
    TraceChecker checker(m);
    EXPECT_FALSE(checker.feasible(shortened));
}

} // namespace
