/**
 * @file
 * Out-of-core building blocks: the two-tier VisitedSet and frontier
 * spilling. These are the pieces whose exactness the spill soundness
 * argument leans on (src/check/README.md): spilling must reorder
 * work, never change any dedup or admission answer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "check/engine.hh"
#include "common/spill.hh"

namespace
{

using namespace cxl0::check;
using cxl0::SpillFile;

/** An unlinked scratch SpillFile per test. */
struct ScratchSpill
{
    ScratchSpill()
    {
        const std::string path =
            "/tmp/cxl0-ooc-test-" + std::to_string(::getpid()) +
            "-" + std::to_string(counter++);
        ok = file.open(path, /*unlinkAfter=*/true);
    }
    static int counter;
    SpillFile file;
    bool ok = false;
};
int ScratchSpill::counter = 0;

PackedConfig
mkConfig(uint32_t i, uint32_t sleep = 0)
{
    PackedConfig c;
    c.state = i;
    c.regs = i * 7 + 1;
    c.pc = uint64_t{i} * 13;
    c.alive = 3;
    c.sleep = sleep;
    c.crash = i % 5;
    return c;
}

// The hot budget is clamped up to 256 KiB = 8192 32-byte entries,
// so a flush happens exactly when the hot table reaches 8192.
constexpr uint32_t kFlushEntries = 8192;

TEST(VisitedSetTest, PassthroughWithoutSpillMatchesFlatSet)
{
    VisitedSet vs;
    for (uint32_t i = 0; i < 1000; ++i) {
        EXPECT_TRUE(vs.insert(mkConfig(i)));
        EXPECT_FALSE(vs.insert(mkConfig(i)));
    }
    EXPECT_EQ(vs.size(), 1000u);
    EXPECT_EQ(vs.spilledEntries(), 0u);
    EXPECT_EQ(vs.spilledBytes(), 0u);
    for (uint32_t i = 0; i < 1000; ++i)
        EXPECT_TRUE(vs.contains(mkConfig(i)));
    EXPECT_FALSE(vs.contains(mkConfig(1000)));
}

TEST(VisitedSetTest, SpillModeFlushesRunsAndStaysExact)
{
    ScratchSpill sp;
    ASSERT_TRUE(sp.ok);
    VisitedSet vs;
    vs.configureSpill(&sp.file, 1); // clamped to 256 KiB

    const uint32_t kN = 20000; // forces two flushed runs
    for (uint32_t i = 0; i < kN; ++i)
        ASSERT_TRUE(vs.insert(mkConfig(i)));
    EXPECT_EQ(vs.size(), kN);
    EXPECT_EQ(vs.spilledEntries(), uint64_t{2 * kFlushEntries});
    EXPECT_EQ(vs.spilledBytes(),
              uint64_t{2 * kFlushEntries} * sizeof(PackedConfig));

    // Dedup answers are identical across tiers: every inserted
    // config is found (sleep word excluded from identity), every
    // near-miss is not.
    for (uint32_t i = 0; i < kN; i += 97) {
        EXPECT_TRUE(vs.contains(mkConfig(i, /*sleep=*/0xdead)));
        EXPECT_FALSE(vs.insert(mkConfig(i)));
        PackedConfig miss = mkConfig(i);
        miss.pc ^= 1;
        EXPECT_FALSE(vs.contains(miss));
    }
    EXPECT_EQ(vs.size(), kN);

    // Resident bytes exclude the cold file: far below kN entries.
    EXPECT_LT(vs.bytes(), uint64_t{kN} * sizeof(PackedConfig));
}

TEST(VisitedSetTest, AdmitMergesSleepWordsAcrossTiers)
{
    ScratchSpill sp;
    ASSERT_TRUE(sp.ok);
    VisitedSet vs;
    vs.configureSpill(&sp.file, 1);

    // Fill exactly one flush worth with sleep word 0b11, pushing
    // every entry into a cold run (hot table drains on the flush).
    for (uint32_t i = 0; i < kFlushEntries; ++i)
        ASSERT_TRUE(vs.insert(mkConfig(i, 0b11)));
    ASSERT_EQ(vs.spilledEntries(), uint64_t{kFlushEntries});

    // Cold merge: a covered arrival is a Duplicate; a shrinking one
    // is Readmitted and carries the merged word back out, persisted
    // via write-back (the second round proves persistence).
    PackedConfig covered = mkConfig(5, 0b11);
    EXPECT_EQ(vs.admit(covered), VisitedSet::Admit::Duplicate);
    PackedConfig shrink = mkConfig(5, 0b01);
    EXPECT_EQ(vs.admit(shrink), VisitedSet::Admit::Readmitted);
    EXPECT_EQ(shrink.sleep, 0b01u);
    PackedConfig again = mkConfig(5, 0b01);
    EXPECT_EQ(vs.admit(again), VisitedSet::Admit::Duplicate);

    // Hot merge: same protocol for an entry still in the hot tier.
    PackedConfig fresh = mkConfig(1u << 20, 0b10);
    EXPECT_EQ(vs.admit(fresh), VisitedSet::Admit::Inserted);
    PackedConfig hotShrink = mkConfig(1u << 20, 0b00);
    EXPECT_EQ(vs.admit(hotShrink), VisitedSet::Admit::Readmitted);
    EXPECT_EQ(hotShrink.sleep, 0u);
    PackedConfig hotAgain = mkConfig(1u << 20, 0b11);
    EXPECT_EQ(vs.admit(hotAgain), VisitedSet::Admit::Duplicate);
}

TEST(VisitedSetTest, ForEachCoversBothTiers)
{
    ScratchSpill sp;
    ASSERT_TRUE(sp.ok);
    VisitedSet vs;
    vs.configureSpill(&sp.file, 1);
    const uint32_t kN = kFlushEntries + 1000; // one run + hot tail
    for (uint32_t i = 0; i < kN; ++i)
        ASSERT_TRUE(vs.insert(mkConfig(i)));
    ASSERT_EQ(vs.spilledEntries(), uint64_t{kFlushEntries});

    std::set<uint32_t> seen;
    vs.forEach([&](const PackedConfig &c) {
        EXPECT_TRUE(seen.insert(c.state).second);
    });
    EXPECT_EQ(seen.size(), kN);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), kN - 1);
}

TEST(ConfigFrontierSpill, EmptyFrontierWithSpillConfigured)
{
    ScratchSpill sp;
    ASSERT_TRUE(sp.ok);
    ConfigFrontier f(FrontierPolicy::DepthFirst);
    f.configureSpill(&sp.file, 1);
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.size(), 0u);
    EXPECT_EQ(f.spilledConfigs(), 0u);
    f.push(mkConfig(1));
    EXPECT_FALSE(f.empty());
    PackedConfig c = f.pop();
    EXPECT_EQ(c.state, 1u);
    EXPECT_TRUE(f.empty());
}

TEST(ConfigFrontierSpill, SpillAndRefillPreserveTheQueuedSet)
{
    for (FrontierPolicy policy : {FrontierPolicy::DepthFirst,
                                  FrontierPolicy::BreadthFirst}) {
        ScratchSpill sp;
        ASSERT_TRUE(sp.ok);
        ConfigFrontier f(policy);
        // A one-byte budget spills the cold half on every push past
        // two live entries.
        f.configureSpill(&sp.file, 1);
        const uint32_t kN = 200;
        for (uint32_t i = 0; i < kN; ++i)
            f.push(mkConfig(i));
        EXPECT_EQ(f.size(), size_t{kN});
        EXPECT_GT(f.spilledConfigs(), 0u);
        EXPECT_GT(f.spilledNow(), 0u);
        EXPECT_EQ(f.spillBytes(),
                  f.spilledConfigs() * sizeof(PackedConfig));

        std::set<uint32_t> popped;
        while (!f.empty())
            EXPECT_TRUE(popped.insert(f.pop().state).second);
        EXPECT_EQ(popped.size(), kN);
        EXPECT_EQ(f.spilledNow(), 0u);
        EXPECT_EQ(f.size(), 0u);
    }
}

TEST(ConfigFrontierSpill, StealRefillsWhenAllWorkIsSpilled)
{
    ScratchSpill sp;
    ASSERT_TRUE(sp.ok);
    ConfigFrontier f(FrontierPolicy::DepthFirst);
    f.configureSpill(&sp.file, 1);
    // Budget 1 byte: each push past the second spills half, leaving
    // exactly one in-memory entry. Popping it leaves every queued
    // config in spill blocks — the thief's refill path.
    for (uint32_t i = 0; i < 4; ++i)
        f.push(mkConfig(i));
    (void)f.pop();
    ASSERT_EQ(f.size(), f.spilledNow());
    ASSERT_GT(f.spilledNow(), 0u);

    std::vector<PackedConfig> loot;
    size_t stolen = f.stealHalf(loot);
    EXPECT_EQ(stolen, loot.size());
    EXPECT_GT(stolen, 0u);
    EXPECT_EQ(f.size() + stolen + 1, 4u);

    // Nothing lost, nothing duplicated across pop/steal/drain.
    std::set<uint32_t> seen;
    seen.insert(mkConfig(3).state); // the first pop (DFS hot end)
    for (const PackedConfig &c : loot)
        EXPECT_TRUE(seen.insert(c.state).second);
    while (!f.empty())
        EXPECT_TRUE(seen.insert(f.pop().state).second);
    EXPECT_EQ(seen.size(), 4u);
}

TEST(ConfigFrontierSpill, ForEachQueuedWalksColdToHotDeterministically)
{
    ScratchSpill sp;
    ASSERT_TRUE(sp.ok);
    ConfigFrontier f(FrontierPolicy::DepthFirst);
    f.configureSpill(&sp.file, 1);
    for (uint32_t i = 0; i < 100; ++i)
        f.push(mkConfig(i));
    std::vector<uint32_t> first, second;
    f.forEachQueued(
        [&](const PackedConfig &c) { first.push_back(c.state); });
    f.forEachQueued(
        [&](const PackedConfig &c) { second.push_back(c.state); });
    EXPECT_EQ(first.size(), f.size());
    EXPECT_EQ(first, second);
    // The walk covers every queued config exactly once.
    std::set<uint32_t> uniq(first.begin(), first.end());
    EXPECT_EQ(uniq.size(), first.size());
}

TEST(ShardedFrontierTest, OversizedInboxDrainsDespitePendingFrontier)
{
    // Regression guard for the out-of-core inbox fix: a shard whose
    // frontier never empties (the steady state of a spilling run)
    // must still drain its inbox once it passes the drain threshold,
    // or handed-off configs pile up unboundedly in RAM.
    ShardedFrontier sf(2, FrontierPolicy::DepthFirst);
    sf.pushLocal(0, mkConfig(1u << 24));
    const uint32_t kSends = 5000; // > kInboxDrain = 4096
    for (uint32_t i = 0; i < kSends; ++i)
        sf.send(0, mkConfig(i));

    std::atomic<size_t> admitted{0};
    auto admit = [&](const PackedConfig &) {
        admitted.fetch_add(1);
        return true;
    };
    PackedConfig c;
    ASSERT_TRUE(sf.pop(0, c, admit));
    // One pop sufficed to pull the whole oversized inbox through
    // admission, even though the local frontier still had work.
    EXPECT_EQ(admitted.load(), size_t{kSends});
    sf.done();

    size_t drained = 1;
    while (drained < kSends + 1 && sf.pop(0, c, admit)) {
        ++drained;
        sf.done();
    }
    EXPECT_EQ(drained, size_t{kSends} + 1);
}

} // namespace
