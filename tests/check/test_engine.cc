#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "check/engine.hh"

namespace
{

using namespace cxl0::check;
using namespace cxl0::model;
using cxl0::NodeId;
using cxl0::Value;

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : cfg(SystemConfig::uniform(2, 1, true)), model(cfg),
          engine(model)
    {
    }

    SystemConfig cfg;
    Cxl0Model model;
    SearchEngine engine;
};

TEST_F(EngineTest, TauClosureFrameMatchesModelClosure)
{
    // Close the post-store state set through the engine and through
    // the model directly; the state sets must coincide.
    State s = model.initialState();
    ASSERT_TRUE(model.applyInPlace(s, Label::lstore(0, 0, 1)));

    FrameId closed = engine.closedSingleton(s);
    std::set<uint64_t> via_engine;
    std::vector<State> out;
    engine.materializeFrame(closed, out);
    for (const State &st : out)
        via_engine.insert(st.hash());

    std::set<uint64_t> via_model;
    for (const State &st : model.tauClosure(s))
        via_model.insert(st.hash());
    EXPECT_EQ(via_engine, via_model);

    // Closure is idempotent and memoized: the closed frame closes to
    // itself.
    EXPECT_EQ(engine.tauClosureFrame(closed), closed);
}

TEST_F(EngineTest, ApplyFrameMatchesPerStateApply)
{
    State s = model.initialState();
    FrameId closed = engine.closedSingleton(s);
    Label load = Label::load(1, 0, 0);

    FrameId applied = engine.applyFrame(closed, load);
    ASSERT_NE(applied, kNoFrameId);

    std::vector<State> members;
    engine.materializeFrame(closed, members);
    size_t enabled = 0;
    for (const State &m : members)
        if (model.apply(m, load))
            ++enabled;
    // Deduplicated successors can be fewer, never more.
    EXPECT_GT(enabled, 0u);
    EXPECT_LE(engine.frames().sizeOf(applied), enabled);

    // A label nothing enables returns kNoFrameId.
    EXPECT_EQ(engine.applyFrame(closed, Label::load(0, 0, 7)),
              kNoFrameId);
}

TEST_F(EngineTest, CrashSuccessorMemoIsStable)
{
    StateId init = engine.internState(model.initialState());
    StateId a = engine.crashSuccessorOf(init, 0);
    StateId b = engine.crashSuccessorOf(init, 0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(engine.states().materialize(a).hash(),
              model.applyCrash(model.initialState(), 0).hash());
}

TEST_F(EngineTest, FrameSubsumesIsSetInclusion)
{
    std::vector<StateId> big{1, 3, 5, 9};
    std::vector<StateId> small{3, 9};
    std::vector<StateId> other{3, 7};
    FrameId fb = engine.internFrame(big);
    FrameId fs = engine.internFrame(small);
    FrameId fo = engine.internFrame(other);
    EXPECT_TRUE(engine.frameSubsumes(fb, fs));
    EXPECT_TRUE(engine.frameSubsumes(fb, fb));
    EXPECT_FALSE(engine.frameSubsumes(fs, fb));
    EXPECT_FALSE(engine.frameSubsumes(fb, fo));
}

TEST(BitfieldWord, RoundTripsFields)
{
    BitfieldWord w(3);
    uint64_t word = 0;
    for (size_t i = 0; i < 8; ++i)
        word = w.set(word, i, i % 8);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(w.get(word, i), i % 8);
    // Overwrites only touch their own field.
    word = w.set(word, 3, 7);
    EXPECT_EQ(w.get(word, 3), 7u);
    EXPECT_EQ(w.get(word, 2), 2u);
    EXPECT_EQ(w.get(word, 4), 4u);

    EXPECT_TRUE(BitfieldWord(0).fits(1000));
    EXPECT_TRUE(BitfieldWord(2).fits(32));
    EXPECT_FALSE(BitfieldWord(2).fits(33));
    EXPECT_EQ(BitfieldWord(0).get(~0ull, 5), 0u);
}

TEST(ConfigFrontier, PolicyOrdersPops)
{
    PackedConfig a, b;
    a.state = 1;
    b.state = 2;

    ConfigFrontier dfs(FrontierPolicy::DepthFirst);
    dfs.push(a);
    dfs.push(b);
    EXPECT_EQ(dfs.pop().state, 2u); // LIFO
    EXPECT_EQ(dfs.pop().state, 1u);
    EXPECT_TRUE(dfs.empty());

    ConfigFrontier bfs(FrontierPolicy::BreadthFirst);
    bfs.push(a);
    bfs.push(b);
    EXPECT_EQ(bfs.pop().state, 1u); // FIFO
    EXPECT_EQ(bfs.pop().state, 2u);
    EXPECT_TRUE(bfs.empty());
}

TEST(ConfigFrontier, StealHalfTakesTheColdEnd)
{
    // DFS: the thief takes the bottom of the stack (the coarsest,
    // oldest subtrees); the owner's pop order is undisturbed.
    ConfigFrontier dfs(FrontierPolicy::DepthFirst);
    for (uint32_t i = 1; i <= 5; ++i) {
        PackedConfig c;
        c.state = i;
        dfs.push(c);
    }
    std::vector<PackedConfig> loot;
    EXPECT_EQ(dfs.stealHalf(loot), 3u); // ceil(5 / 2)
    ASSERT_EQ(loot.size(), 3u);
    EXPECT_EQ(loot[0].state, 1u);
    EXPECT_EQ(loot[2].state, 3u);
    EXPECT_EQ(dfs.size(), 2u);
    EXPECT_EQ(dfs.pop().state, 5u); // still LIFO for the owner

    // BFS: the thief takes the back of the queue (farthest from the
    // owner's next pop).
    ConfigFrontier bfs(FrontierPolicy::BreadthFirst);
    for (uint32_t i = 1; i <= 4; ++i) {
        PackedConfig c;
        c.state = i;
        bfs.push(c);
    }
    loot.clear();
    EXPECT_EQ(bfs.stealHalf(loot), 2u);
    ASSERT_EQ(loot.size(), 2u);
    EXPECT_EQ(loot[0].state, 3u);
    EXPECT_EQ(loot[1].state, 4u);
    EXPECT_EQ(bfs.pop().state, 1u); // still FIFO for the owner

    // A singleton frontier is stealable too (the owner will fall
    // back to stealing or sleeping, never deadlock).
    ConfigFrontier one(FrontierPolicy::DepthFirst);
    PackedConfig c;
    c.state = 9;
    one.push(c);
    loot.clear();
    EXPECT_EQ(one.stealHalf(loot), 1u);
    EXPECT_TRUE(one.empty());
}

/**
 * The maximally skewed partition: every configuration starts on
 * shard 0 and shard 0's owner never pops. The only way the barrier
 * can reach zero is workers 1..3 stealing expansion work out of
 * shard 0's frontier — each queued configuration must be returned
 * exactly once, and the steal counters must show real traffic.
 */
TEST(ShardedFrontier, ThievesDrainAMaximallySkewedPartition)
{
    for (FrontierPolicy policy :
         {FrontierPolicy::DepthFirst, FrontierPolicy::BreadthFirst}) {
        ShardedFrontier sf(4, policy);
        constexpr uint32_t kConfigs = 512;
        for (uint32_t i = 0; i < kConfigs; ++i) {
            PackedConfig c;
            c.state = i;
            sf.pushLocal(0, c);
        }

        std::mutex m;
        std::vector<uint32_t> popped;
        auto drain = [&](size_t w) {
            PackedConfig c;
            auto admit = [](const PackedConfig &) { return true; };
            while (sf.pop(w, c, admit)) {
                {
                    std::lock_guard<std::mutex> lock(m);
                    popped.push_back(c.state);
                }
                sf.done();
            }
        };
        std::vector<std::thread> thieves;
        for (size_t w = 1; w < 4; ++w)
            thieves.emplace_back(drain, w);
        for (std::thread &t : thieves)
            t.join();

        ASSERT_EQ(popped.size(), kConfigs);
        std::sort(popped.begin(), popped.end());
        for (uint32_t i = 0; i < kConfigs; ++i)
            ASSERT_EQ(popped[i], i); // each exactly once, none lost

        size_t attempted = 0, succeeded = 0;
        for (size_t w = 1; w < 4; ++w) {
            auto [a, s] = sf.stealCounters(w);
            attempted += a;
            succeeded += s;
        }
        EXPECT_GT(succeeded, 0u);
        EXPECT_GE(attempted, succeeded);
        auto [a0, s0] = sf.stealCounters(0);
        EXPECT_EQ(a0, 0u); // shard 0 never ran, never stole
        EXPECT_EQ(s0, 0u);
    }
}

/**
 * Stealing composes with the inbox handoff: a worker that owns no
 * configuration by hash still terminates, and rejected inbox
 * arrivals are accounted done so the barrier cannot wedge.
 */
TEST(ShardedFrontier, StealingAndInboxRejectionTerminate)
{
    ShardedFrontier sf(3, FrontierPolicy::DepthFirst);
    // Half the sends will be rejected by the admission filter.
    for (uint32_t i = 0; i < 64; ++i) {
        PackedConfig c;
        c.state = i;
        sf.send(i % 3, c);
    }
    std::atomic<size_t> expanded{0};
    auto drain = [&](size_t w) {
        PackedConfig c;
        auto admit = [](const PackedConfig &cc) {
            return cc.state % 2 == 0;
        };
        while (sf.pop(w, c, admit)) {
            expanded.fetch_add(1);
            sf.done();
        }
    };
    std::vector<std::thread> workers;
    for (size_t w = 0; w < 3; ++w)
        workers.emplace_back(drain, w);
    for (std::thread &t : workers)
        t.join();
    EXPECT_EQ(expanded.load(), 32u);
}

TEST(FlatConfigSetTest, InsertContainsAndGrowth)
{
    FlatConfigSet set;
    for (uint32_t i = 0; i < 1000; ++i) {
        PackedConfig c;
        c.state = i;
        c.pc = i * 3;
        EXPECT_TRUE(set.insert(c));
        EXPECT_FALSE(set.insert(c));
    }
    EXPECT_EQ(set.size(), 1000u);
    for (uint32_t i = 0; i < 1000; ++i) {
        PackedConfig c;
        c.state = i;
        c.pc = i * 3;
        EXPECT_TRUE(set.contains(c));
        c.pc += 1;
        EXPECT_FALSE(set.contains(c));
    }
    EXPECT_GT(set.bytes(), 1000 * sizeof(PackedConfig));
}

TEST(FlatDepthMapTest, ProbeLoopInsertsRaisesPrunesRejects)
{
    struct IdHash
    {
        size_t operator()(uint64_t k) const
        {
            return static_cast<size_t>(k * 0x9e3779b97f4a7c15ULL);
        }
    };
    FlatDepthMap<uint64_t, IdHash> memo;
    using O = FlatDepthMap<uint64_t, IdHash>::Outcome;

    EXPECT_EQ(memo.insertOrRaise(42, 3, true), O::Inserted);
    // Shallower or equal remaining depth: nothing new reachable.
    EXPECT_EQ(memo.insertOrRaise(42, 3, true), O::Pruned);
    EXPECT_EQ(memo.insertOrRaise(42, 2, true), O::Pruned);
    // Deeper: re-expand.
    EXPECT_EQ(memo.insertOrRaise(42, 5, true), O::Raised);
    EXPECT_EQ(memo.insertOrRaise(42, 4, true), O::Pruned);
    // Budget refusal applies to fresh keys only.
    EXPECT_EQ(memo.insertOrRaise(43, 1, false), O::Rejected);
    EXPECT_EQ(memo.insertOrRaise(42, 9, false), O::Raised);
    EXPECT_EQ(memo.size(), 1u);

    // Growth keeps every recorded depth findable.
    for (uint64_t k = 100; k < 1500; ++k)
        EXPECT_EQ(memo.insertOrRaise(k, 7, true), O::Inserted);
    for (uint64_t k = 100; k < 1500; ++k)
        EXPECT_EQ(memo.insertOrRaise(k, 7, true), O::Pruned);
    EXPECT_EQ(memo.size(), 1401u);
    EXPECT_GT(memo.bytes(), 0u);
}

TEST(CheckReportTest, DescribeSummarizes)
{
    CheckReport r;
    r.verdict = CheckVerdict::Fail;
    r.truncated = true;
    r.counterexample.description = "boom";
    std::string s = r.describe();
    EXPECT_NE(s.find("fail"), std::string::npos);
    EXPECT_NE(s.find("truncated"), std::string::npos);
    EXPECT_NE(s.find("boom"), std::string::npos);
    EXPECT_EQ(std::string(checkVerdictName(CheckVerdict::Pass)),
              "pass");
    EXPECT_EQ(
        std::string(checkVerdictName(CheckVerdict::Inconclusive)),
        "inconclusive");

    Counterexample none;
    EXPECT_TRUE(none.empty());
    EXPECT_EQ(none.describe(), "(none)");
}

} // namespace
