#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "check/engine.hh"

namespace
{

using namespace cxl0::check;
using namespace cxl0::model;
using cxl0::NodeId;
using cxl0::Value;

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : cfg(SystemConfig::uniform(2, 1, true)), model(cfg),
          engine(model)
    {
    }

    SystemConfig cfg;
    Cxl0Model model;
    SearchEngine engine;
};

TEST_F(EngineTest, TauClosureFrameMatchesModelClosure)
{
    // Close the post-store state set through the engine and through
    // the model directly; the state sets must coincide.
    State s = model.initialState();
    ASSERT_TRUE(model.applyInPlace(s, Label::lstore(0, 0, 1)));

    FrameId closed = engine.closedSingleton(s);
    std::set<uint64_t> via_engine;
    std::vector<State> out;
    engine.materializeFrame(closed, out);
    for (const State &st : out)
        via_engine.insert(st.hash());

    std::set<uint64_t> via_model;
    for (const State &st : model.tauClosure(s))
        via_model.insert(st.hash());
    EXPECT_EQ(via_engine, via_model);

    // Closure is idempotent and memoized: the closed frame closes to
    // itself.
    EXPECT_EQ(engine.tauClosureFrame(closed), closed);
}

TEST_F(EngineTest, ApplyFrameMatchesPerStateApply)
{
    State s = model.initialState();
    FrameId closed = engine.closedSingleton(s);
    Label load = Label::load(1, 0, 0);

    FrameId applied = engine.applyFrame(closed, load);
    ASSERT_NE(applied, kNoFrameId);

    std::vector<State> members;
    engine.materializeFrame(closed, members);
    size_t enabled = 0;
    for (const State &m : members)
        if (model.apply(m, load))
            ++enabled;
    // Deduplicated successors can be fewer, never more.
    EXPECT_GT(enabled, 0u);
    EXPECT_LE(engine.frames().sizeOf(applied), enabled);

    // A label nothing enables returns kNoFrameId.
    EXPECT_EQ(engine.applyFrame(closed, Label::load(0, 0, 7)),
              kNoFrameId);
}

TEST_F(EngineTest, CrashSuccessorMemoIsStable)
{
    StateId init = engine.internState(model.initialState());
    StateId a = engine.crashSuccessorOf(init, 0);
    StateId b = engine.crashSuccessorOf(init, 0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(engine.states().materialize(a).hash(),
              model.applyCrash(model.initialState(), 0).hash());
}

TEST_F(EngineTest, FrameSubsumesIsSetInclusion)
{
    std::vector<StateId> big{1, 3, 5, 9};
    std::vector<StateId> small{3, 9};
    std::vector<StateId> other{3, 7};
    FrameId fb = engine.internFrame(big);
    FrameId fs = engine.internFrame(small);
    FrameId fo = engine.internFrame(other);
    EXPECT_TRUE(engine.frameSubsumes(fb, fs));
    EXPECT_TRUE(engine.frameSubsumes(fb, fb));
    EXPECT_FALSE(engine.frameSubsumes(fs, fb));
    EXPECT_FALSE(engine.frameSubsumes(fb, fo));
}

TEST(BitfieldWord, RoundTripsFields)
{
    BitfieldWord w(3);
    uint64_t word = 0;
    for (size_t i = 0; i < 8; ++i)
        word = w.set(word, i, i % 8);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(w.get(word, i), i % 8);
    // Overwrites only touch their own field.
    word = w.set(word, 3, 7);
    EXPECT_EQ(w.get(word, 3), 7u);
    EXPECT_EQ(w.get(word, 2), 2u);
    EXPECT_EQ(w.get(word, 4), 4u);

    EXPECT_TRUE(BitfieldWord(0).fits(1000));
    EXPECT_TRUE(BitfieldWord(2).fits(32));
    EXPECT_FALSE(BitfieldWord(2).fits(33));
    EXPECT_EQ(BitfieldWord(0).get(~0ull, 5), 0u);
}

TEST(ConfigFrontier, PolicyOrdersPops)
{
    PackedConfig a, b;
    a.state = 1;
    b.state = 2;

    ConfigFrontier dfs(FrontierPolicy::DepthFirst);
    dfs.push(a);
    dfs.push(b);
    EXPECT_EQ(dfs.pop().state, 2u); // LIFO
    EXPECT_EQ(dfs.pop().state, 1u);
    EXPECT_TRUE(dfs.empty());

    ConfigFrontier bfs(FrontierPolicy::BreadthFirst);
    bfs.push(a);
    bfs.push(b);
    EXPECT_EQ(bfs.pop().state, 1u); // FIFO
    EXPECT_EQ(bfs.pop().state, 2u);
    EXPECT_TRUE(bfs.empty());
}

TEST(FlatConfigSetTest, InsertContainsAndGrowth)
{
    FlatConfigSet set;
    for (uint32_t i = 0; i < 1000; ++i) {
        PackedConfig c;
        c.state = i;
        c.pc = i * 3;
        EXPECT_TRUE(set.insert(c));
        EXPECT_FALSE(set.insert(c));
    }
    EXPECT_EQ(set.size(), 1000u);
    for (uint32_t i = 0; i < 1000; ++i) {
        PackedConfig c;
        c.state = i;
        c.pc = i * 3;
        EXPECT_TRUE(set.contains(c));
        c.pc += 1;
        EXPECT_FALSE(set.contains(c));
    }
    EXPECT_GT(set.bytes(), 1000 * sizeof(PackedConfig));
}

TEST(FlatDepthMapTest, ProbeLoopInsertsRaisesPrunesRejects)
{
    struct IdHash
    {
        size_t operator()(uint64_t k) const
        {
            return static_cast<size_t>(k * 0x9e3779b97f4a7c15ULL);
        }
    };
    FlatDepthMap<uint64_t, IdHash> memo;
    using O = FlatDepthMap<uint64_t, IdHash>::Outcome;

    EXPECT_EQ(memo.insertOrRaise(42, 3, true), O::Inserted);
    // Shallower or equal remaining depth: nothing new reachable.
    EXPECT_EQ(memo.insertOrRaise(42, 3, true), O::Pruned);
    EXPECT_EQ(memo.insertOrRaise(42, 2, true), O::Pruned);
    // Deeper: re-expand.
    EXPECT_EQ(memo.insertOrRaise(42, 5, true), O::Raised);
    EXPECT_EQ(memo.insertOrRaise(42, 4, true), O::Pruned);
    // Budget refusal applies to fresh keys only.
    EXPECT_EQ(memo.insertOrRaise(43, 1, false), O::Rejected);
    EXPECT_EQ(memo.insertOrRaise(42, 9, false), O::Raised);
    EXPECT_EQ(memo.size(), 1u);

    // Growth keeps every recorded depth findable.
    for (uint64_t k = 100; k < 1500; ++k)
        EXPECT_EQ(memo.insertOrRaise(k, 7, true), O::Inserted);
    for (uint64_t k = 100; k < 1500; ++k)
        EXPECT_EQ(memo.insertOrRaise(k, 7, true), O::Pruned);
    EXPECT_EQ(memo.size(), 1401u);
    EXPECT_GT(memo.bytes(), 0u);
}

TEST(CheckReportTest, DescribeSummarizes)
{
    CheckReport r;
    r.verdict = CheckVerdict::Fail;
    r.truncated = true;
    r.counterexample.description = "boom";
    std::string s = r.describe();
    EXPECT_NE(s.find("fail"), std::string::npos);
    EXPECT_NE(s.find("truncated"), std::string::npos);
    EXPECT_NE(s.find("boom"), std::string::npos);
    EXPECT_EQ(std::string(checkVerdictName(CheckVerdict::Pass)),
              "pass");
    EXPECT_EQ(
        std::string(checkVerdictName(CheckVerdict::Inconclusive)),
        "inconclusive");

    Counterexample none;
    EXPECT_TRUE(none.empty());
    EXPECT_EQ(none.describe(), "(none)");
}

} // namespace
