#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "check/cache.hh"
#include "lang/run.hh"
#include "lang/scenario.hh"
#include "lang/service.hh"

namespace
{

using namespace cxl0;
using namespace cxl0::check;

lang::Scenario
mustParse(const std::string &text)
{
    lang::ParseResult r = lang::parseScenario(text);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error->render());
    return r.scenario;
}

const char *kExploreScenario = R"(litmus "cache: explore"
machine 0 nvmm
addr x @ 0
registers 1
thread 0 on 0 {
  lstore x 1
  r0 = load x
}
)";

CheckReport
sampleReport()
{
    lang::Scenario sc = mustParse(kExploreScenario);
    return lang::runScenario(sc, {}).report;
}

/** A scratch directory unique to the running test. */
std::filesystem::path
scratchDir(const char *name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        (std::string("cxl0_cache_test_") + name);
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(Cache, SerializeReportRoundtrip)
{
    CheckReport rep = sampleReport();
    ASSERT_FALSE(rep.outcomes.empty());
    std::string text = serializeReport(rep);
    CheckReport parsed;
    ASSERT_TRUE(parseReport(text, parsed));
    EXPECT_EQ(serializeReport(parsed), text);
    EXPECT_EQ(parsed.verdict, rep.verdict);
    EXPECT_EQ(parsed.outcomes, rep.outcomes);
}

TEST(Cache, ParseReportRejectsGarbage)
{
    CheckReport out;
    EXPECT_FALSE(parseReport("", out));
    EXPECT_FALSE(parseReport("not a report\n", out));
    // A truncated-but-valid prefix must not parse either.
    std::string text = serializeReport(sampleReport());
    std::string cut = text.substr(0, text.size() / 2);
    EXPECT_FALSE(parseReport(cut, out));
}

TEST(Cache, LruEvictionAtCapacity)
{
    ResultCache cache(2);
    cache.store("a", "1");
    cache.store("b", "2");
    cache.store("c", "3"); // evicts "a"
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.lookup("a").has_value());
    EXPECT_EQ(cache.lookup("b").value(), "2");
    EXPECT_EQ(cache.lookup("c").value(), "3");
}

TEST(Cache, LookupRefreshesRecency)
{
    ResultCache cache(2);
    cache.store("a", "1");
    cache.store("b", "2");
    ASSERT_TRUE(cache.lookup("a").has_value()); // a is now MRU
    cache.store("c", "3");                      // evicts "b"
    EXPECT_TRUE(cache.lookup("a").has_value());
    EXPECT_FALSE(cache.lookup("b").has_value());
}

TEST(Cache, DiskStoreSurvivesRestart)
{
    std::filesystem::path dir = scratchDir("disk");
    {
        ResultCache cache(8, dir.string());
        cache.store("key one", "value one");
        EXPECT_EQ(cache.stats().diskWrites, 1u);
    }
    ResultCache fresh(8, dir.string());
    auto hit = fresh.lookup("key one");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "value one");
    EXPECT_EQ(fresh.stats().diskHits, 1u);
    // A second lookup is served from memory, not disk.
    ASSERT_TRUE(fresh.lookup("key one").has_value());
    EXPECT_EQ(fresh.stats().diskHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(Cache, CorruptedDiskEntryIsCountedMiss)
{
    std::filesystem::path dir = scratchDir("corrupt");
    {
        ResultCache cache(8, dir.string());
        cache.store("the key", "the value");
    }
    // Garble the single on-disk entry.
    size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        std::ofstream out(e.path(), std::ios::trunc);
        out << "garbage";
        ++files;
    }
    ASSERT_EQ(files, 1u);

    ResultCache fresh(8, dir.string());
    EXPECT_FALSE(fresh.lookup("the key").has_value());
    EXPECT_EQ(fresh.stats().corrupt, 1u);
    EXPECT_EQ(fresh.stats().misses, 1u);

    // Re-storing repairs the entry.
    fresh.store("the key", "the value");
    ResultCache again(8, dir.string());
    EXPECT_TRUE(again.lookup("the key").has_value());
    std::filesystem::remove_all(dir);
}

TEST(Cache, DiskEntryVerifiesFullKey)
{
    // Two different keys must never alias through the disk store,
    // even if an adversary renames files: entries embed the full key.
    std::filesystem::path dir = scratchDir("alias");
    {
        ResultCache cache(8, dir.string());
        cache.store("key A", "value A");
    }
    // Rename the entry to the filename of a different key.
    std::filesystem::path src, dst;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        src = e.path();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(hashKey("key B")));
    dst = src.parent_path() / (std::string(buf) + src.extension().string());
    std::filesystem::rename(src, dst);

    ResultCache fresh(8, dir.string());
    EXPECT_FALSE(fresh.lookup("key B").has_value());
    EXPECT_EQ(fresh.stats().corrupt, 1u);
    std::filesystem::remove_all(dir);
}

TEST(Cache, DifferentRequestsKeyDifferentEntries)
{
    lang::Scenario sc = mustParse(kExploreScenario);
    lang::RunOptions a;
    lang::RunOptions b;
    b.numThreads = 4;
    lang::RunOptions c;
    c.reduction = Reduction::None;
    lang::RunOptions d;
    d.maxConfigs = 1234;
    const std::string ka = lang::cacheKey(sc, a);
    EXPECT_NE(ka, lang::cacheKey(sc, b));
    EXPECT_NE(ka, lang::cacheKey(sc, c));
    EXPECT_NE(ka, lang::cacheKey(sc, d));
    // And a different scenario keys differently under the same opts.
    lang::Scenario other = sc;
    other.program.threads[0].code.pop_back();
    EXPECT_NE(ka, lang::cacheKey(other, a));
}

TEST(Cache, HashKeyIsStable)
{
    EXPECT_EQ(hashKey("abc"), hashKey("abc"));
    EXPECT_NE(hashKey("abc"), hashKey("abd"));
    EXPECT_NE(hashKey(""), hashKey("a"));
}

} // namespace
