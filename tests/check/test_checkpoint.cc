/**
 * @file
 * Checkpoint/resume: snapshot-file round-trips and diagnostics, and
 * the kill-and-resume matrix — every checker kind, threads {1,4},
 * reduction {ample, full} — asserting a halted-then-resumed run
 * reproduces the uninterrupted run's results.
 *
 * What "reproduces" means per cell follows what is actually
 * deterministic: serializeReport's projection (verdict, outcomes,
 * schedule-invariant counters) is byte-stable for every cell except
 * threads 4 + Reduction::Full, where configs-visited and
 * sleep-set-skipped are schedule-dependent even between two
 * *uninterrupted* runs (sleep-word merge timing) — there the test
 * pins the schedule-invariant core instead: verdict, truncation, the
 * full outcome set, and configsInterned.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "check/cache.hh"
#include "check/checkpoint.hh"
#include "lang/run.hh"
#include "lang/scenario.hh"

namespace
{

namespace fs = std::filesystem;
using namespace cxl0::check;
using cxl0::lang::CheckerKind;
using cxl0::lang::checkerKindName;
using cxl0::lang::ParseResult;
using cxl0::lang::parseScenario;
using cxl0::lang::RunOptions;
using cxl0::lang::RunResult;
using cxl0::lang::runScenario;
using cxl0::lang::Scenario;

struct TempDir
{
    TempDir()
        : path("/tmp/cxl0-ckpt-test-" + std::to_string(::getpid()) +
               "-" + std::to_string(counter++))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    static int counter;
    std::string path;
};
int TempDir::counter = 0;

// ------------------------------------------------ snapshot file I/O

CheckpointData
sampleSnapshot()
{
    CheckpointData d;
    d.fingerprint = 0x1122334455667788ull;
    d.totalVisited = 4242;
    d.checkpointsWritten = 3;
    d.regsPerOutcome = 4;
    d.stateStride = 2;
    d.stateHashes = {11, 22, 33};
    d.stateSpans = {1, 2, 3, 4, 5, 6};
    d.regStride = 4;
    d.regHashes = {7, 8};
    d.regSpans = {0, 1, 2, 3, 4, 5, 6, 7};
    d.workers.resize(2);
    for (uint32_t w = 0; w < 2; ++w) {
        WorkerSnapshot &ws = d.workers[w];
        for (uint32_t i = 0; i < 5; ++i) {
            PackedConfig c;
            c.state = w * 100 + i;
            c.regs = i;
            c.pc = i * 3;
            c.alive = 7;
            c.sleep = i & 1;
            c.crash = i;
            ws.visited.push_back(c);
            if (i < 2)
                ws.frontier.push_back(c);
            if (i == 4)
                ws.inbox.push_back(c);
        }
        ws.emitted = {uint64_t{w} << 32 | 1, uint64_t{w} << 32 | 2};
        ws.outcomeCrashed = {0, 1};
        ws.outcomeRegs = {1, 2, 3, 4, 5, 6, 7, 8};
        ws.stats.configsVisited = 10 + w;
        ws.stats.tauMovesSkipped = 20 + w;
        ws.stats.ampleSkipped = 30 + w;
        ws.stats.sleepSetSkipped = 40 + w;
    }
    return d;
}

TEST(CheckpointFileTest, WriteReadRoundTrip)
{
    TempDir dir;
    CheckpointData d = sampleSnapshot();
    ASSERT_TRUE(writeCheckpoint(dir.path, d));
    ASSERT_TRUE(fs::exists(checkpointPath(dir.path)));

    CheckpointData r;
    readCheckpoint(dir.path, r);
    EXPECT_EQ(r.fingerprint, d.fingerprint);
    EXPECT_EQ(r.totalVisited, d.totalVisited);
    EXPECT_EQ(r.checkpointsWritten, d.checkpointsWritten);
    EXPECT_EQ(r.regsPerOutcome, d.regsPerOutcome);
    EXPECT_EQ(r.stateHashes, d.stateHashes);
    EXPECT_EQ(r.stateSpans, d.stateSpans);
    EXPECT_EQ(r.regHashes, d.regHashes);
    EXPECT_EQ(r.regSpans, d.regSpans);
    ASSERT_EQ(r.workers.size(), d.workers.size());
    for (size_t w = 0; w < d.workers.size(); ++w) {
        const WorkerSnapshot &a = d.workers[w];
        const WorkerSnapshot &b = r.workers[w];
        ASSERT_EQ(b.visited.size(), a.visited.size());
        for (size_t i = 0; i < a.visited.size(); ++i) {
            EXPECT_TRUE(b.visited[i] == a.visited[i]);
            EXPECT_EQ(b.visited[i].sleep, a.visited[i].sleep);
        }
        EXPECT_EQ(b.emitted, a.emitted);
        EXPECT_EQ(b.outcomeCrashed, a.outcomeCrashed);
        EXPECT_EQ(b.outcomeRegs, a.outcomeRegs);
        EXPECT_EQ(b.frontier.size(), a.frontier.size());
        EXPECT_EQ(b.inbox.size(), a.inbox.size());
        EXPECT_EQ(b.stats.configsVisited, a.stats.configsVisited);
        EXPECT_EQ(b.stats.sleepSetSkipped, a.stats.sleepSetSkipped);
    }

    // Re-writing replaces the snapshot atomically: no stale tmp left.
    ASSERT_TRUE(writeCheckpoint(dir.path, d));
    size_t entries = 0;
    for (auto &e : fs::directory_iterator(dir.path)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST(CheckpointFileTest, MissingFileThrowsCleanDiagnostic)
{
    TempDir dir;
    CheckpointData d;
    EXPECT_THROW(readCheckpoint(dir.path, d), std::runtime_error);
}

TEST(CheckpointFileTest, CorruptByteFailsChecksumWithDiagnostic)
{
    TempDir dir;
    ASSERT_TRUE(writeCheckpoint(dir.path, sampleSnapshot()));
    const std::string path = checkpointPath(dir.path);
    // Flip one payload byte past the magic.
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);
    char b;
    f.seekg(32);
    f.get(b);
    f.seekp(32);
    f.put(static_cast<char>(b ^ 0x5a));
    f.close();

    CheckpointData d;
    try {
        readCheckpoint(dir.path, d);
        FAIL() << "corrupt checkpoint was accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CheckpointFileTest, TruncatedFileThrowsCleanDiagnostic)
{
    TempDir dir;
    ASSERT_TRUE(writeCheckpoint(dir.path, sampleSnapshot()));
    const std::string path = checkpointPath(dir.path);
    const auto full = fs::file_size(path);
    fs::resize_file(path, full / 2);

    CheckpointData d;
    try {
        readCheckpoint(dir.path, d);
        FAIL() << "truncated checkpoint was accepted";
    } catch (const std::runtime_error &e) {
        // Cutting the file usually lands mid-payload (a "truncated"
        // cursor overrun); cutting inside the trailing checksum
        // reports as a checksum/format failure. Either way the
        // diagnostic is clean and names the problem.
        const std::string what = e.what();
        EXPECT_TRUE(what.find("truncated") != std::string::npos ||
                    what.find("checksum") != std::string::npos ||
                    what.find("not a cxl0 checkpoint") !=
                        std::string::npos)
            << what;
    }
}

TEST(CheckpointFileTest, NotACheckpointFileDiagnostic)
{
    TempDir dir;
    std::ofstream(checkpointPath(dir.path)) << "plain text";
    CheckpointData d;
    try {
        readCheckpoint(dir.path, d);
        FAIL() << "non-checkpoint file was accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("not a cxl0 checkpoint"),
                  std::string::npos)
            << e.what();
    }
}

// --------------------------------------------- kill-and-resume matrix

/**
 * Explorer workload for the matrix: three threads, RMWs, flushes and
 * one crashable budget — ~3.5k configs under Ample, ~2.4k under Full,
 * so at threads 4 every worker clears the 256-pop checkpoint cadence
 * and a checkpoint-every-500 snapshot fires well before the search
 * drains.
 */
const char *kStressScenario = R"(litmus "stress: checkpoint matrix"

machine 0 nvmm
machine 1 nvmm
addr x0 @ 0
addr x1 @ 1

registers 2
crash any max 1

thread 0 on 0 {
  mstore x0 1
  r0 = faa.m x1 1
  lflush x0
  r1 = load x1
}

thread 1 on 1 {
  mstore x1 2
  r0 = faa.m x0 1
  lflush x1
  r1 = load x0
}

thread 2 on 0 {
  rstore x1 3
  rflush x1
  r0 = faa.m x0 2
  r1 = load x1
}
)";

Scenario
mustParse(const std::string &text)
{
    ParseResult r = parseScenario(text);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error->render());
    return r.scenario;
}

std::string
corpusFile(const std::string &rel)
{
    std::ifstream in(std::string(CXL0_SOURCE_DIR) + "/" + rel);
    EXPECT_TRUE(in.good()) << rel;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
}

struct MatrixCell
{
    size_t threads;
    Reduction reduction;
};

const MatrixCell kCells[] = {
    {1, Reduction::Ample},
    {1, Reduction::Full},
    {4, Reduction::Ample},
    {4, Reduction::Full},
};

RunOptions
cellOptions(CheckerKind kind, const MatrixCell &cell)
{
    RunOptions opts;
    opts.checker = kind;
    opts.numThreads = cell.threads;
    opts.reduction = cell.reduction;
    return opts;
}

/**
 * Explorer cells: uninterrupted baseline, then a run halted right
 * after its first snapshot (the in-process SIGKILL stand-in: the
 * truncated result is discarded exactly as a killed process's would
 * be), then a resume from that snapshot. The resumed run must
 * reproduce the baseline.
 */
TEST(KillAndResumeMatrix, ExplorerResumesToBaselineResults)
{
    const Scenario sc = mustParse(kStressScenario);
    for (const MatrixCell &cell : kCells) {
        SCOPED_TRACE("threads=" + std::to_string(cell.threads) +
                     " reduction=" +
                     reductionName(cell.reduction));
        const RunOptions base =
            cellOptions(CheckerKind::Explore, cell);
        const RunResult uninterrupted = runScenario(sc, base);
        ASSERT_TRUE(uninterrupted.error.empty())
            << uninterrupted.error;
        ASSERT_FALSE(uninterrupted.report.truncated);

        TempDir dir;
        RunOptions halted = base;
        halted.ooc.checkpointDir = dir.path;
        halted.ooc.checkpointEvery = 500;
        halted.ooc.haltAfterCheckpoints = 1;
        const RunResult killed = runScenario(sc, halted);
        ASSERT_TRUE(killed.error.empty()) << killed.error;
        // The halt really interrupted the search mid-flight (and an
        // inconclusive run must not have written final.report).
        ASSERT_TRUE(killed.report.truncated);
        ASSERT_LT(killed.report.stats.configsVisited,
                  uninterrupted.report.stats.configsVisited);
        ASSERT_FALSE(fs::exists(dir.path + "/final.report"));
        ASSERT_TRUE(fs::exists(checkpointPath(dir.path)));

        RunOptions resumed = base;
        resumed.ooc.resumeFrom = dir.path;
        const RunResult r = runScenario(sc, resumed);
        ASSERT_TRUE(r.error.empty()) << r.error;

        // The schedule-invariant core must always match.
        EXPECT_EQ(r.report.verdict, uninterrupted.report.verdict);
        EXPECT_FALSE(r.report.truncated);
        EXPECT_TRUE(r.report.outcomes == uninterrupted.report.outcomes);
        EXPECT_EQ(r.report.stats.configsInterned,
                  uninterrupted.report.stats.configsInterned);
        EXPECT_EQ(r.pass, uninterrupted.pass);

        if (cell.threads == 1 || cell.reduction == Reduction::Ample) {
            // Everything serializeReport projects is deterministic
            // here (threads 1: fully; threads 4 + Ample: only steal
            // counters differ between runs and those are excluded
            // from the projection) — so resume must reproduce the
            // report byte for byte.
            EXPECT_EQ(serializeReport(r.report),
                      serializeReport(uninterrupted.report));
        }
        // threads 4 + Full: configs-visited / sleep-set-skipped are
        // schedule-dependent even between two uninterrupted runs
        // (sleep-word merge timing), so byte equality is not a sound
        // assertion for that cell; the invariant core above is.
    }
}

/**
 * Non-explorer cells ride the final-report shortcut: a conclusive
 * run with a checkpoint dir records its deterministic projection as
 * final.report, and a resume re-judges those bytes instead of
 * re-searching — for every checker kind, thread count, and
 * reduction.
 */
TEST(KillAndResumeMatrix, OtherCheckersResumeViaFinalReport)
{
    const struct
    {
        CheckerKind kind;
        const char *file;
    } kScenarios[] = {
        {CheckerKind::Feasible, "corpus/litmus/litmus01_trace.cxl0"},
        {CheckerKind::Refinement, "corpus/litmus/mp_split.cxl0"},
        {CheckerKind::Inclusion,
         "corpus/litmus/incl_lstore_weaker.cxl0"},
    };
    for (const auto &s : kScenarios) {
        const Scenario sc = mustParse(corpusFile(s.file));
        for (const MatrixCell &cell : kCells) {
            SCOPED_TRACE(std::string(checkerKindName(s.kind)) +
                         " threads=" + std::to_string(cell.threads) +
                         " reduction=" +
                         reductionName(cell.reduction));
            RunOptions base = cellOptions(s.kind, cell);
            const RunResult first = runScenario(sc, base);
            ASSERT_TRUE(first.error.empty()) << first.error;

            TempDir dir;
            RunOptions recording = base;
            recording.ooc.checkpointDir = dir.path;
            recording.ooc.checkpointEvery = 500;
            const RunResult recorded = runScenario(sc, recording);
            ASSERT_TRUE(recorded.error.empty()) << recorded.error;
            // Only a conclusive run records its projection
            // (refinement's depth-bound cut is inconclusive-but-
            // tolerated, so it reruns on resume instead).
            EXPECT_EQ(fs::exists(dir.path + "/final.report"),
                      recorded.report.verdict !=
                          CheckVerdict::Inconclusive);

            RunOptions resumed = base;
            resumed.ooc.resumeFrom = dir.path;
            const RunResult r = runScenario(sc, resumed);
            ASSERT_TRUE(r.error.empty()) << r.error;
            EXPECT_EQ(serializeReport(r.report),
                      serializeReport(first.report));
            EXPECT_EQ(r.pass, first.pass);
        }
    }
}

/** A corrupt final.report must fail with a clean diagnostic, not a
 *  wrong resume. */
TEST(KillAndResumeMatrix, CorruptFinalReportDiagnostic)
{
    const Scenario sc = mustParse(kStressScenario);
    TempDir dir;
    std::ofstream(dir.path + "/final.report") << "not a report";
    RunOptions opts;
    opts.checker = CheckerKind::Explore;
    opts.ooc.resumeFrom = dir.path;
    const RunResult r = runScenario(sc, opts);
    ASSERT_FALSE(r.error.empty());
    EXPECT_NE(r.error.find("corrupt"), std::string::npos) << r.error;
}

/** Resuming a different search than the snapshot's must be refused
 *  (fingerprint mismatch), not silently merged. */
TEST(KillAndResumeMatrix, FingerprintMismatchIsRefused)
{
    const Scenario sc = mustParse(kStressScenario);
    TempDir dir;
    RunOptions halted;
    halted.checker = CheckerKind::Explore;
    halted.numThreads = 1;
    halted.reduction = Reduction::Ample;
    halted.ooc.checkpointDir = dir.path;
    halted.ooc.checkpointEvery = 500;
    halted.ooc.haltAfterCheckpoints = 1;
    const RunResult killed = runScenario(sc, halted);
    ASSERT_TRUE(killed.error.empty()) << killed.error;
    ASSERT_TRUE(fs::exists(checkpointPath(dir.path)));

    // Same options, different program: the snapshot must not apply.
    std::string other = kStressScenario;
    other.replace(other.find("mstore x0 1"), 11, "mstore x0 9");
    const Scenario sc2 = mustParse(other);
    RunOptions resumed;
    resumed.checker = CheckerKind::Explore;
    resumed.numThreads = 1;
    resumed.reduction = Reduction::Ample;
    resumed.ooc.resumeFrom = dir.path;
    const RunResult r = runScenario(sc2, resumed);
    ASSERT_FALSE(r.error.empty());
}

/** Checkpoint/resume must compose with spilling: a halted spilled
 *  run resumes to the same outcome set as the in-memory baseline. */
TEST(KillAndResumeMatrix, SpilledRunResumesIdentically)
{
    const Scenario sc = mustParse(kStressScenario);
    RunOptions base;
    base.checker = CheckerKind::Explore;
    base.numThreads = 4;
    base.reduction = Reduction::Ample;
    const RunResult uninterrupted = runScenario(sc, base);
    ASSERT_TRUE(uninterrupted.error.empty());

    TempDir spill, ckpt;
    RunOptions halted = base;
    halted.ooc.spillDir = spill.path;
    halted.ooc.frontierSpillBudgetBytes = 1 << 10;
    halted.ooc.visitedSpillBudgetBytes = 1; // clamped to 256 KiB
    halted.ooc.checkpointDir = ckpt.path;
    halted.ooc.checkpointEvery = 500;
    halted.ooc.haltAfterCheckpoints = 1;
    const RunResult killed = runScenario(sc, halted);
    ASSERT_TRUE(killed.error.empty()) << killed.error;
    ASSERT_TRUE(killed.report.truncated);

    RunOptions resumed = base;
    resumed.ooc.spillDir = spill.path;
    resumed.ooc.frontierSpillBudgetBytes = 1 << 10;
    resumed.ooc.resumeFrom = ckpt.path;
    const RunResult r = runScenario(sc, resumed);
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(serializeReport(r.report),
              serializeReport(uninterrupted.report));
}

} // namespace
