#include <gtest/gtest.h>

#include "check/simulation.hh"

namespace
{

using namespace cxl0::check;
using namespace cxl0::model;
using cxl0::NodeId;

TEST(EnumerateStates, CountsMatchCombinatorics)
{
    // 1 node, 1 addr, values {0,1}: cache in {bot,0,1} x mem in {0,1}
    // = 6 states, all invariant-satisfying.
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    EXPECT_EQ(enumerateStates(cfg, 1).size(), 6u);
}

TEST(EnumerateStates, InvariantFiltersDivergentCaches)
{
    // 2 nodes, 1 addr: cache pairs 3*3=9 minus the two divergent
    // pairs (0,1) and (1,0) = 7; times 2 memory values = 14.
    SystemConfig cfg({MachineConfig{true}, MachineConfig{true}}, {0});
    auto states = enumerateStates(cfg, 1);
    EXPECT_EQ(states.size(), 14u);
    for (const State &s : states)
        EXPECT_TRUE(s.invariantHolds());
}

TEST(CheckTraceInclusion, DetectsNonInclusion)
{
    // MStore is NOT simulated by LStore alone (no flush): from the
    // initial state, MStore reaches a state with memory updated and
    // caches empty... which LStore+tau also reaches. Use a trickier
    // direction: LStore reaches a state with the value only in the
    // issuer's cache, which MStore cannot reach.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    std::vector<State> states{model.initialState()};
    auto r = checkTraceInclusion(model, states,
                                 {Label::lstore(1, 0, 1)},
                                 {Label::mstore(1, 0, 1)});
    EXPECT_FALSE(r.holds);
    EXPECT_FALSE(r.counterexample.empty());
}

TEST(CheckTraceInclusion, IdenticalTracesAlwaysIncluded)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    auto states = enumerateStates(cfg, 1);
    auto r = checkTraceInclusion(model, states,
                                 {Label::rstore(0, 0, 1)},
                                 {Label::rstore(0, 0, 1)});
    EXPECT_TRUE(r.holds) << r.counterexample;
}

TEST(CheckTraceInclusion, ThreadCountNeverChangesTheReport)
{
    // The parallel driver partitions start states across workers but
    // keeps the report deterministic: the lowest failing start index
    // wins, so verdict AND counterexample text are identical for
    // numThreads in {1, 2, 4} — on a passing and on a failing query.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    auto states = enumerateStates(cfg, 1);

    struct Query
    {
        std::vector<Label> lhs, rhs;
    };
    Query queries[] = {
        // Passing: identical traces.
        {{Label::rstore(0, 0, 1)}, {Label::rstore(0, 0, 1)}},
        // Failing: LStore is not simulated by MStore.
        {{Label::lstore(1, 0, 1)}, {Label::mstore(1, 0, 1)}},
    };
    for (const Query &q : queries) {
        CheckRequest one;
        one.numThreads = 1;
        CheckReport ref =
            checkTraceInclusion(model, states, q.lhs, q.rhs, one);
        for (size_t n : {2, 4}) {
            CheckRequest req;
            req.numThreads = n;
            CheckReport res =
                checkTraceInclusion(model, states, q.lhs, q.rhs, req);
            EXPECT_EQ(res.verdict, ref.verdict) << "x" << n;
            EXPECT_EQ(res.counterexample.description,
                      ref.counterexample.description)
                << "x" << n;
            EXPECT_EQ(res.truncated, ref.truncated) << "x" << n;
        }
    }
}

TEST(Prop1Items, EightItemsInstantiate)
{
    auto items = prop1Items(0, 1, 0, 0, 1);
    EXPECT_EQ(items.size(), 8u);
    for (size_t k = 0; k < items.size(); ++k)
        EXPECT_EQ(items[k].number, static_cast<int>(k) + 1);
}

/**
 * Proposition 1, checked exhaustively over every invariant-satisfying
 * state of small systems, for every machine/address/value choice.
 * This is the reproduction of the paper's Rocq development.
 */
struct Prop1Case
{
    const char *name;
    size_t nodes;
    std::vector<NodeId> owners;
    bool persistent;
    ModelVariant variant;
};

class Prop1Suite : public ::testing::TestWithParam<Prop1Case>
{
};

TEST_P(Prop1Suite, AllItemsHold)
{
    const Prop1Case &c = GetParam();
    SystemConfig cfg(
        std::vector<MachineConfig>(c.nodes,
                                   MachineConfig{c.persistent}),
        c.owners);
    auto r = checkProp1(cfg, c.variant, 1);
    EXPECT_TRUE(r.holds) << r.counterexample;
}

using Owners = std::vector<NodeId>;

INSTANTIATE_TEST_SUITE_P(
    BoundedSystems, Prop1Suite,
    ::testing::Values(
        Prop1Case{"two_nodes_nv", 2, Owners{0, 1}, true,
                  ModelVariant::Base},
        Prop1Case{"two_nodes_volatile", 2, Owners{0, 1}, false,
                  ModelVariant::Base},
        Prop1Case{"three_nodes_one_addr", 3, Owners{2}, true,
                  ModelVariant::Base},
        Prop1Case{"two_addrs_same_owner", 2, Owners{0, 0}, true,
                  ModelVariant::Base},
        Prop1Case{"psn_two_nodes", 2, Owners{0, 1}, true,
                  ModelVariant::Psn},
        Prop1Case{"lwb_two_nodes", 2, Owners{0, 1}, true,
                  ModelVariant::Lwb}),
    [](const ::testing::TestParamInfo<Prop1Case> &info) {
        return info.param.name;
    });

TEST(Prop1Mixed, HoldsWithMixedPersistence)
{
    SystemConfig cfg({MachineConfig{true}, MachineConfig{false}},
                     {0, 1});
    auto r = checkProp1(cfg, ModelVariant::Base, 1);
    EXPECT_TRUE(r.holds) << r.counterexample;
}

TEST(Prop1Negative, LStoreAloneDoesNotSimulateRStore)
{
    // Sanity that the checker has teeth: dropping the LFlush from
    // item 7 breaks the simulation.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    auto states = enumerateStates(cfg, 1);
    // lhs: LStore_j alone; rhs: RStore_j. The state with the value in
    // j's cache is not RStore-reachable.
    auto r = checkTraceInclusion(model, states,
                                 {Label::lstore(1, 0, 1)},
                                 {Label::rstore(1, 0, 1)});
    EXPECT_FALSE(r.holds);
}

TEST(Prop1Negative, LFlushDoesNotSimulateRFlush)
{
    // Converse of item 4: LFlush is strictly weaker.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    auto states = enumerateStates(cfg, 1);
    auto r = checkTraceInclusion(model, states,
                                 {Label::lflush(1, 0)},
                                 {Label::rflush(1, 0)});
    EXPECT_FALSE(r.holds);
}

} // namespace
