#include <gtest/gtest.h>

#include <algorithm>

#include "check/refinement.hh"
#include "check/trace.hh"

namespace
{

using namespace cxl0::check;
using namespace cxl0::model;
using cxl0::NodeId;

/** §3.5 setting: machine 0 NVMM, machine 1 volatile, x0 on machine 0. */
SystemConfig
variantConfig()
{
    return SystemConfig({MachineConfig{true}, MachineConfig{false}}, {0});
}

Alphabet
smallAlphabet(const SystemConfig &cfg)
{
    // Loads of both 0 and 1 are needed: the distinguishing traces of
    // §3.5 end with a stale Load(x,0). Stores only ever write 1.
    Alphabet a;
    a.ops = {Op::Load, Op::LStore, Op::RStore, Op::Crash};
    a.values = {0, 1};
    a.nodes.clear();
    for (NodeId n = 0; n < cfg.numNodes(); ++n)
        a.nodes.push_back(n);
    a.maxCrashesPerNode = 1;
    return a;
}

TEST(Refinement, ModelRefinesItself)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg);
    auto r = checkRefinement(base, base, 3, smallAlphabet(cfg));
    EXPECT_TRUE(r.refines) << r.describe();
}

TEST(Refinement, LwbRefinesBase)
{
    // Every CXL0_LWB trace is a CXL0 trace (§3.5).
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb);
    auto r = checkRefinement(base, lwb, 4, smallAlphabet(cfg));
    EXPECT_TRUE(r.refines) << r.describe();
}

TEST(Refinement, PsnRefinesBase)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), psn(cfg, ModelVariant::Psn);
    auto r = checkRefinement(base, psn, 4, smallAlphabet(cfg));
    EXPECT_TRUE(r.refines) << r.describe();
}

TEST(Refinement, BaseDoesNotRefineLwb)
{
    // CXL0 has traces CXL0_LWB forbids (tests 10/11 shape); the
    // checker must produce a concrete counterexample.
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb);
    auto r = checkRefinement(lwb, base, 4, smallAlphabet(cfg));
    EXPECT_FALSE(r.refines);
    EXPECT_FALSE(r.counterexample.empty());
}

/**
 * Alphabet for PSN-separating traces: the paper's witness (test 12)
 * needs two crashes of the owner and five labels, but only loads,
 * LStores, and crashes.
 */
Alphabet
crashyAlphabet(const SystemConfig &cfg)
{
    Alphabet a;
    a.ops = {Op::Load, Op::LStore, Op::Crash};
    a.values = {0, 1};
    a.nodes.clear();
    for (NodeId n = 0; n < cfg.numNodes(); ++n)
        a.nodes.push_back(n);
    a.maxCrashesPerNode = 2;
    return a;
}

TEST(Refinement, BaseDoesNotRefinePsn)
{
    // The separating trace is test 12's shape: LStore2(x1,1); E1;
    // Load1(x1,1); E1; Load2(x1,0) — allowed by CXL0, forbidden by
    // CXL0_PSN (poisoning cuts the cross-crash resurrection).
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), psn(cfg, ModelVariant::Psn);
    auto r = checkRefinement(psn, base, 5, crashyAlphabet(cfg));
    EXPECT_FALSE(r.refines);
}

TEST(Refinement, VariantsAreIncomparable)
{
    // §3.5: the two variants are incomparable — each allows a trace
    // the other forbids. LWB-not-in-PSN needs test 12's double-crash
    // witness; PSN-not-in-LWB is test 10/11's shape.
    SystemConfig cfg = variantConfig();
    Cxl0Model lwb(cfg, ModelVariant::Lwb);
    Cxl0Model psn(cfg, ModelVariant::Psn);
    auto lwb_in_psn = checkRefinement(psn, lwb, 5, crashyAlphabet(cfg));
    auto psn_in_lwb = checkRefinement(lwb, psn, 4, smallAlphabet(cfg));
    EXPECT_FALSE(lwb_in_psn.refines);
    EXPECT_FALSE(psn_in_lwb.refines);
}

TEST(Refinement, CounterexampleIsRealBaseTrace)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb);
    auto r = checkRefinement(lwb, base, 4, smallAlphabet(cfg));
    ASSERT_FALSE(r.refines);
    // The counterexample must be feasible in base and infeasible in
    // the variant.
    TraceChecker base_checker(base), lwb_checker(lwb);
    EXPECT_TRUE(base_checker.feasible(r.counterexample));
    EXPECT_FALSE(lwb_checker.feasible(r.counterexample));
}

TEST(EnumerateTraces, ContainsEmptyTraceAndGrows)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg);
    Alphabet a = smallAlphabet(cfg);
    auto t1 = enumerateTraces(base, 1, a);
    auto t2 = enumerateTraces(base, 2, a);
    EXPECT_GE(t1.size(), 2u);
    EXPECT_GT(t2.size(), t1.size());
    // The empty trace is present.
    EXPECT_TRUE(std::any_of(t1.begin(), t1.end(),
                            [](const auto &t) { return t.empty(); }));
}

TEST(EnumerateTraces, AllEnumeratedTracesFeasible)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model lwb(cfg, ModelVariant::Lwb);
    Alphabet a = smallAlphabet(cfg);
    TraceChecker checker(lwb);
    for (const auto &t : enumerateTraces(lwb, 3, a))
        EXPECT_TRUE(checker.feasible(t)) << describeTrace(t);
}

TEST(Refinement, RestrictedTopologyRefinesGeneralModel)
{
    // §4: every restricted configuration stays within general CXL0.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model general(cfg);
    Restrictions r;
    r.allowedOps = {opBit(Op::Load) | opBit(Op::LStore) |
                        opBit(Op::MStore) | opBit(Op::RFlush),
                    opBit(Op::Load) | opBit(Op::LStore)};
    r.allowCacheToCache = false;
    Cxl0Model restricted(cfg, ModelVariant::Base, r);
    auto res = checkRefinement(general, restricted, 3,
                               smallAlphabet(cfg));
    EXPECT_TRUE(res.refines) << res.describe();
}

// ---------------------------------------------------------------------
// The unified CheckRequest/CheckReport API and the frame-interned
// engine path.
// ---------------------------------------------------------------------

TEST(RefinementReport, CarriesFrameAndStateStats)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb);
    CheckRequest req;
    req.maxDepth = 4;
    CheckReport r = checkRefinement(base, lwb, smallAlphabet(cfg), req);
    EXPECT_NE(r.verdict, CheckVerdict::Fail);
    EXPECT_GT(r.stats.configsVisited, 0u);
    EXPECT_GT(r.stats.configsInterned, 0u);
    EXPECT_GT(r.stats.statesInterned, 0u);
    EXPECT_GT(r.stats.framesInterned, 0u);
    EXPECT_GT(r.stats.peakVisitedBytes, 0u);
    EXPECT_GE(r.stats.seconds, 0.0);
}

TEST(RefinementReport, FailCarriesTypedCounterexample)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb);
    CheckRequest req;
    req.maxDepth = 4;
    CheckReport r = checkRefinement(lwb, base, smallAlphabet(cfg), req);
    ASSERT_EQ(r.verdict, CheckVerdict::Fail);
    ASSERT_FALSE(r.counterexample.trace.empty());
    // The typed counterexample is a real base trace the variant
    // cannot take — same guarantee the legacy shim had.
    TraceChecker base_checker(base), lwb_checker(lwb);
    EXPECT_TRUE(base_checker.feasible(r.counterexample.trace));
    EXPECT_FALSE(lwb_checker.feasible(r.counterexample.trace));
    EXPECT_NE(r.describe().find("fail"), std::string::npos);
}

TEST(RefinementReport, TinyConfigBudgetTruncatesGracefully)
{
    // A config budget far below the reachable frame-pair count must
    // stop the search with truncated=true and a valid (Inconclusive,
    // counterexample-free) partial report — not abort.
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg);
    CheckRequest req;
    req.maxDepth = 4;
    req.maxConfigs = 2;
    CheckReport r = checkRefinement(base, base, smallAlphabet(cfg), req);
    EXPECT_TRUE(r.truncated);
    EXPECT_EQ(r.verdict, CheckVerdict::Inconclusive);
    EXPECT_TRUE(r.counterexample.empty());
    EXPECT_LE(r.stats.configsInterned, 2u);
    EXPECT_GT(r.stats.configsVisited, 0u);

    // The reference implementation degrades the same way.
    CheckReport ref =
        checkRefinementReference(base, base, smallAlphabet(cfg), req);
    EXPECT_TRUE(ref.truncated);
    EXPECT_EQ(ref.verdict, CheckVerdict::Inconclusive);
}

TEST(RefinementReport, DepthBoundReportsTruncation)
{
    // A depth bound that cuts live configurations is reported as
    // truncation: the bounded "refines" is Inconclusive, not Pass.
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg);
    CheckRequest req;
    req.maxDepth = 1;
    CheckReport r = checkRefinement(base, base, smallAlphabet(cfg), req);
    EXPECT_NE(r.verdict, CheckVerdict::Fail);
    EXPECT_TRUE(r.truncated);
    // The legacy shim still reports refines=true for compatibility.
    EXPECT_TRUE(checkRefinement(base, base, 1, smallAlphabet(cfg))
                    .refines);
}

TEST(RefinementReport, ReferenceImplementationAgreesOnAllPairs)
{
    // The frame-interned search and the deep-copy reference must
    // produce identical verdicts on every §3.5 model pair (the same
    // gate bench_refinement_scaling enforces).
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb),
        psn(cfg, ModelVariant::Psn);
    struct Pair
    {
        const Cxl0Model *spec;
        const Cxl0Model *impl;
        size_t depth;
        const char *what;
    };
    Alphabet small = smallAlphabet(cfg);
    Alphabet crashy = crashyAlphabet(cfg);
    std::vector<std::pair<Pair, const Alphabet *>> cases{
        {{&base, &lwb, 4, "lwb in base"}, &small},
        {{&base, &psn, 4, "psn in base"}, &small},
        {{&lwb, &base, 4, "base in lwb"}, &small},
        {{&psn, &base, 5, "base in psn"}, &crashy},
        {{&psn, &lwb, 5, "lwb in psn"}, &crashy},
        {{&lwb, &psn, 4, "psn in lwb"}, &small},
    };
    for (const auto &[c, alphabet] : cases) {
        CheckRequest req;
        req.maxDepth = c.depth;
        CheckReport fast =
            checkRefinement(*c.spec, *c.impl, *alphabet, req);
        CheckReport ref =
            checkRefinementReference(*c.spec, *c.impl, *alphabet, req);
        EXPECT_EQ(fast.verdict, ref.verdict) << c.what;
        if (fast.verdict == CheckVerdict::Fail) {
            // Both counterexamples must be genuine impl traces.
            TraceChecker impl_checker(*c.impl);
            EXPECT_TRUE(impl_checker.feasible(fast.counterexample.trace))
                << c.what;
            EXPECT_TRUE(impl_checker.feasible(ref.counterexample.trace))
                << c.what;
        }
    }
}

TEST(RefinementReport, InternedFramesUseLessMemoryThanReference)
{
    // The tentpole claim in miniature: on a depth-bounded
    // standard-alphabet run the frame-interned search must not
    // deep-copy state-set frames, which shows up as a large
    // peak-memory gap versus the reference (the bench asserts >= 2x
    // on the bigger runs; keep a conservative margin here).
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb);
    CheckRequest req;
    req.maxDepth = 4;
    Alphabet standard = Alphabet::standard(cfg);
    CheckReport fast = checkRefinement(base, lwb, standard, req);
    CheckReport ref =
        checkRefinementReference(base, lwb, standard, req);
    EXPECT_EQ(fast.verdict, ref.verdict);
    ASSERT_GT(fast.stats.peakVisitedBytes, 0u);
    EXPECT_LT(fast.stats.peakVisitedBytes * 2,
              ref.stats.peakVisitedBytes);
}

TEST(RefinementReport, ThreadCountNeverChangesTheVerdict)
{
    // Sharded-parallel refinement: for every §3.5 pair (passing and
    // violated), numThreads in {1, 2, 4, 8} must agree on the
    // verdict, on completeness, on whether a counterexample exists —
    // and on the distinct-pair count for runs that finish their
    // search (a violated run stops at the first violation, whose
    // discovery point legitimately depends on scheduling). The
    // 8-worker runs start from a single root pair on one shard, so
    // every other worker begins life as a thief: this is the
    // steal-determinism gate for the pair search.
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb),
        psn(cfg, ModelVariant::Psn);
    struct Pair
    {
        const Cxl0Model *spec;
        const Cxl0Model *impl;
        const char *what;
    };
    Pair pairs[] = {
        {&base, &lwb, "lwb in base"},
        {&base, &psn, "psn in base"},
        {&lwb, &base, "base in lwb"},
        {&psn, &lwb, "lwb in psn"},
    };
    Alphabet small = smallAlphabet(cfg);
    for (const Pair &p : pairs) {
        CheckRequest one;
        one.maxDepth = 4;
        one.numThreads = 1;
        CheckReport ref =
            checkRefinement(*p.spec, *p.impl, small, one);
        for (size_t n : {2, 4, 8}) {
            CheckRequest req = one;
            req.numThreads = n;
            CheckReport res =
                checkRefinement(*p.spec, *p.impl, small, req);
            EXPECT_EQ(res.verdict, ref.verdict)
                << p.what << " x" << n;
            EXPECT_EQ(res.counterexample.trace.empty(),
                      ref.counterexample.trace.empty())
                << p.what << " x" << n;
            EXPECT_EQ(res.truncated, ref.truncated)
                << p.what << " x" << n;
            if (ref.verdict != CheckVerdict::Fail) {
                EXPECT_EQ(res.stats.configsInterned,
                          ref.stats.configsInterned)
                    << p.what << " x" << n;
            } else {
                // Any counterexample must be a genuine impl trace.
                TraceChecker impl_checker(*p.impl);
                EXPECT_TRUE(impl_checker.feasible(
                    res.counterexample.trace))
                    << p.what << " x" << n;
            }
        }
    }
}

TEST(RefinementReport, ZeroDepthRejected)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg);
    CheckRequest req; // maxDepth stays 0
    EXPECT_THROW(checkRefinement(base, base, smallAlphabet(cfg), req),
                 std::invalid_argument);
}

TEST(Refinement, MismatchedShapesRejected)
{
    Cxl0Model a(SystemConfig::uniform(2, 1, true));
    Cxl0Model b(SystemConfig::uniform(3, 1, true));
    EXPECT_THROW(
        checkRefinement(a, b, 2, Alphabet::standard(a.config())),
        std::invalid_argument);
}

TEST(Refinement, TimeBudgetCutsSearchAsTimedOut)
{
    // A depth-12 standard-alphabet search is far beyond a 1ms budget:
    // the cut must surface as Inconclusive + truncated + timedOut (so
    // callers that tolerate an expected depth cut still see this run
    // as unfinished).
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg);
    CheckRequest req;
    req.maxDepth = 12;
    req.timeBudgetMs = 1;
    CheckReport r =
        checkRefinement(base, base, Alphabet::standard(cfg), req);
    EXPECT_EQ(r.verdict, CheckVerdict::Inconclusive);
    EXPECT_TRUE(r.truncated);
    EXPECT_TRUE(r.timedOut);
    EXPECT_TRUE(r.counterexample.trace.empty());
}

TEST(Refinement, GenerousBudgetNeverReportsTimedOut)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg);
    CheckRequest req;
    req.maxDepth = 3;
    req.timeBudgetMs = 600000;
    CheckReport r =
        checkRefinement(base, base, smallAlphabet(cfg), req);
    EXPECT_FALSE(r.timedOut);
    EXPECT_NE(r.verdict, CheckVerdict::Fail);
}

} // namespace
