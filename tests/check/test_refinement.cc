#include <gtest/gtest.h>

#include <algorithm>

#include "check/refinement.hh"
#include "check/trace.hh"

namespace
{

using namespace cxl0::check;
using namespace cxl0::model;
using cxl0::NodeId;

/** §3.5 setting: machine 0 NVMM, machine 1 volatile, x0 on machine 0. */
SystemConfig
variantConfig()
{
    return SystemConfig({MachineConfig{true}, MachineConfig{false}}, {0});
}

Alphabet
smallAlphabet(const SystemConfig &cfg)
{
    // Loads of both 0 and 1 are needed: the distinguishing traces of
    // §3.5 end with a stale Load(x,0). Stores only ever write 1.
    Alphabet a;
    a.ops = {Op::Load, Op::LStore, Op::RStore, Op::Crash};
    a.values = {0, 1};
    a.nodes.clear();
    for (NodeId n = 0; n < cfg.numNodes(); ++n)
        a.nodes.push_back(n);
    a.maxCrashesPerNode = 1;
    return a;
}

TEST(Refinement, ModelRefinesItself)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg);
    auto r = checkRefinement(base, base, 3, smallAlphabet(cfg));
    EXPECT_TRUE(r.refines) << r.describe();
}

TEST(Refinement, LwbRefinesBase)
{
    // Every CXL0_LWB trace is a CXL0 trace (§3.5).
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb);
    auto r = checkRefinement(base, lwb, 4, smallAlphabet(cfg));
    EXPECT_TRUE(r.refines) << r.describe();
}

TEST(Refinement, PsnRefinesBase)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), psn(cfg, ModelVariant::Psn);
    auto r = checkRefinement(base, psn, 4, smallAlphabet(cfg));
    EXPECT_TRUE(r.refines) << r.describe();
}

TEST(Refinement, BaseDoesNotRefineLwb)
{
    // CXL0 has traces CXL0_LWB forbids (tests 10/11 shape); the
    // checker must produce a concrete counterexample.
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb);
    auto r = checkRefinement(lwb, base, 4, smallAlphabet(cfg));
    EXPECT_FALSE(r.refines);
    EXPECT_FALSE(r.counterexample.empty());
}

/**
 * Alphabet for PSN-separating traces: the paper's witness (test 12)
 * needs two crashes of the owner and five labels, but only loads,
 * LStores, and crashes.
 */
Alphabet
crashyAlphabet(const SystemConfig &cfg)
{
    Alphabet a;
    a.ops = {Op::Load, Op::LStore, Op::Crash};
    a.values = {0, 1};
    a.nodes.clear();
    for (NodeId n = 0; n < cfg.numNodes(); ++n)
        a.nodes.push_back(n);
    a.maxCrashesPerNode = 2;
    return a;
}

TEST(Refinement, BaseDoesNotRefinePsn)
{
    // The separating trace is test 12's shape: LStore2(x1,1); E1;
    // Load1(x1,1); E1; Load2(x1,0) — allowed by CXL0, forbidden by
    // CXL0_PSN (poisoning cuts the cross-crash resurrection).
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), psn(cfg, ModelVariant::Psn);
    auto r = checkRefinement(psn, base, 5, crashyAlphabet(cfg));
    EXPECT_FALSE(r.refines);
}

TEST(Refinement, VariantsAreIncomparable)
{
    // §3.5: the two variants are incomparable — each allows a trace
    // the other forbids. LWB-not-in-PSN needs test 12's double-crash
    // witness; PSN-not-in-LWB is test 10/11's shape.
    SystemConfig cfg = variantConfig();
    Cxl0Model lwb(cfg, ModelVariant::Lwb);
    Cxl0Model psn(cfg, ModelVariant::Psn);
    auto lwb_in_psn = checkRefinement(psn, lwb, 5, crashyAlphabet(cfg));
    auto psn_in_lwb = checkRefinement(lwb, psn, 4, smallAlphabet(cfg));
    EXPECT_FALSE(lwb_in_psn.refines);
    EXPECT_FALSE(psn_in_lwb.refines);
}

TEST(Refinement, CounterexampleIsRealBaseTrace)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg), lwb(cfg, ModelVariant::Lwb);
    auto r = checkRefinement(lwb, base, 4, smallAlphabet(cfg));
    ASSERT_FALSE(r.refines);
    // The counterexample must be feasible in base and infeasible in
    // the variant.
    TraceChecker base_checker(base), lwb_checker(lwb);
    EXPECT_TRUE(base_checker.feasible(r.counterexample));
    EXPECT_FALSE(lwb_checker.feasible(r.counterexample));
}

TEST(EnumerateTraces, ContainsEmptyTraceAndGrows)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model base(cfg);
    Alphabet a = smallAlphabet(cfg);
    auto t1 = enumerateTraces(base, 1, a);
    auto t2 = enumerateTraces(base, 2, a);
    EXPECT_GE(t1.size(), 2u);
    EXPECT_GT(t2.size(), t1.size());
    // The empty trace is present.
    EXPECT_TRUE(std::any_of(t1.begin(), t1.end(),
                            [](const auto &t) { return t.empty(); }));
}

TEST(EnumerateTraces, AllEnumeratedTracesFeasible)
{
    SystemConfig cfg = variantConfig();
    Cxl0Model lwb(cfg, ModelVariant::Lwb);
    Alphabet a = smallAlphabet(cfg);
    TraceChecker checker(lwb);
    for (const auto &t : enumerateTraces(lwb, 3, a))
        EXPECT_TRUE(checker.feasible(t)) << describeTrace(t);
}

TEST(Refinement, RestrictedTopologyRefinesGeneralModel)
{
    // §4: every restricted configuration stays within general CXL0.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model general(cfg);
    Restrictions r;
    r.allowedOps = {opBit(Op::Load) | opBit(Op::LStore) |
                        opBit(Op::MStore) | opBit(Op::RFlush),
                    opBit(Op::Load) | opBit(Op::LStore)};
    r.allowCacheToCache = false;
    Cxl0Model restricted(cfg, ModelVariant::Base, r);
    auto res = checkRefinement(general, restricted, 3,
                               smallAlphabet(cfg));
    EXPECT_TRUE(res.refines) << res.describe();
}

TEST(Refinement, MismatchedShapesRejected)
{
    Cxl0Model a(SystemConfig::uniform(2, 1, true));
    Cxl0Model b(SystemConfig::uniform(3, 1, true));
    EXPECT_THROW(
        checkRefinement(a, b, 2, Alphabet::standard(a.config())),
        std::invalid_argument);
}

} // namespace
