#include <gtest/gtest.h>

#include <algorithm>

#include "check/explorer.hh"

namespace
{

using namespace cxl0::check;
using namespace cxl0::model;
using cxl0::Value;

Operand
imm(Value v)
{
    return Operand::immediate(v);
}

TEST(Explorer, SingleThreadStoreLoad)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {0,
         {ProgInstr::store(Op::LStore, 0, imm(5)), ProgInstr::load(0, 0)}});
    auto outcomes = Explorer(model, p).explore();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes.begin()->regs[0][0], 5);
    EXPECT_EQ(outcomes.begin()->crashedThreads, 0u);
}

TEST(Explorer, TwoThreadsRaceOnStore)
{
    // Both threads store different values then read; every outcome
    // must be coherent (both readers agree with the last store).
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {0, {ProgInstr::store(Op::LStore, 0, imm(1)),
             ProgInstr::load(0, 0)}});
    p.threads.push_back(
        {0, {ProgInstr::store(Op::LStore, 0, imm(2)),
             ProgInstr::load(0, 0)}});
    auto outcomes = Explorer(model, p).explore();
    EXPECT_GT(outcomes.size(), 1u);
    for (const Outcome &o : outcomes) {
        // Readers may see 1 or 2 but never the initial 0 for the
        // thread that wrote last; at minimum no reader sees a value
        // never written.
        for (size_t t = 0; t < 2; ++t)
            EXPECT_TRUE(o.regs[t][0] == 1 || o.regs[t][0] == 2);
    }
}

TEST(Explorer, MotivatingExampleAssertionCanFail)
{
    // §6: x=1; r1=x; r2=x on M1 with x on M2; a crash of M2 can yield
    // r1 != r2.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true); // x0 on node 0
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::LStore, 0, imm(1)),
             ProgInstr::load(0, 0), ProgInstr::load(0, 1)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0}; // only the remote owner crashes
    auto outcomes = Explorer(model, p, opts).explore();
    bool violation = false;
    bool equal_seen = false;
    for (const Outcome &o : outcomes) {
        if ((o.crashedThreads & 1u) != 0)
            continue; // thread itself untouched by node 0 crashes
        if (o.regs[0][0] != o.regs[0][1])
            violation = true;
        else
            equal_seen = true;
    }
    EXPECT_TRUE(violation);
    EXPECT_TRUE(equal_seen);
}

TEST(Explorer, MotivatingExampleFixedByMStore)
{
    // Using MStore for the write forecloses the assertion failure.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::MStore, 0, imm(1)),
             ProgInstr::load(0, 0), ProgInstr::load(0, 1)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0};
    auto outcomes = Explorer(model, p, opts).explore();
    for (const Outcome &o : outcomes)
        EXPECT_EQ(o.regs[0][0], o.regs[0][1]) << o.describe();
}

TEST(Explorer, CasSucceedsExactlyOnceUnderContention)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    for (int t = 0; t < 2; ++t) {
        p.threads.push_back(
            {0, {ProgInstr::cas(Op::LRmw, 0, imm(0), imm(t + 1), 0)}});
    }
    auto outcomes = Explorer(model, p).explore();
    for (const Outcome &o : outcomes) {
        int successes = static_cast<int>(o.regs[0][0] + o.regs[1][0]);
        EXPECT_EQ(successes, 1) << o.describe();
    }
}

TEST(Explorer, FaaReturnsOldValueAndAccumulates)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({0, {ProgInstr::faa(Op::LRmw, 0, imm(3), 0)}});
    p.threads.push_back({0, {ProgInstr::faa(Op::LRmw, 0, imm(5), 0),
                             ProgInstr::load(0, 1)}});
    auto outcomes = Explorer(model, p).explore();
    for (const Outcome &o : outcomes) {
        // Old values must be {0,3} or {0,5} depending on order.
        Value a = o.regs[0][0], b = o.regs[1][0];
        EXPECT_TRUE((a == 0 && b == 3) || (b == 0 && a == 5))
            << o.describe();
    }
}

TEST(Explorer, CrashKillsThreadsOnThatMachine)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({0, {ProgInstr::load(0, 0)}});
    p.threads.push_back({1, {ProgInstr::load(0, 0)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {1};
    auto outcomes = Explorer(model, p, opts).explore();
    bool killed = false;
    for (const Outcome &o : outcomes)
        if (o.crashedThreads & 2u)
            killed = true;
    EXPECT_TRUE(killed);
    for (const Outcome &o : outcomes)
        EXPECT_EQ(o.crashedThreads & 1u, 0u); // node 0 never crashes
}

TEST(Explorer, RegisterOperandsFlowBetweenInstructions)
{
    // r0 = load(x); store(y, r0) — message passing through registers.
    SystemConfig cfg = SystemConfig::uniform(1, 2, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {0, {ProgInstr::store(Op::LStore, 0, imm(7)),
             ProgInstr::load(0, 0),
             ProgInstr::store(Op::LStore, 1, Operand::regRef(0)),
             ProgInstr::load(1, 1)}});
    auto outcomes = Explorer(model, p).explore();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes.begin()->regs[0][1], 7);
}

TEST(Explorer, MStorePersistsAcrossCrashInExploration)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    // Thread on node 1 MStores into node 0's memory, node 0 may crash,
    // then the thread reads back: always 1.
    p.threads.push_back({1, {ProgInstr::store(Op::MStore, 0, imm(1)),
                             ProgInstr::load(0, 0)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0};
    auto outcomes = Explorer(model, p, opts).explore();
    for (const Outcome &o : outcomes)
        EXPECT_EQ(o.regs[0][0], 1) << o.describe();
}

TEST(Explorer, FlushBlocksUntilTauDrains)
{
    // store; lflush; load-from-memory-after-crash can only see the
    // stored value (flush forced local persistence), mirroring litmus
    // test 3 but through the program interface.
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({0, {ProgInstr::store(Op::LStore, 0, imm(1)),
                             ProgInstr::flush(Op::LFlush, 0)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    auto outcomes = Explorer(model, p, opts).explore();
    // Follow-up: check memory persisted in every completed outcome by
    // re-running with a trailing load.
    Program p2 = p;
    p2.threads[0].code.push_back(ProgInstr::load(0, 0));
    auto outcomes2 = Explorer(model, p2, ExploreOptions{}).explore();
    for (const Outcome &o : outcomes2)
        EXPECT_EQ(o.regs[0][0], 1);
    EXPECT_FALSE(outcomes.empty());
}

TEST(Explorer, RejectsBadThreadPlacement)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({3, {ProgInstr::load(0, 0)}});
    EXPECT_THROW(Explorer(model, p), std::invalid_argument);
}

TEST(Explorer, RejectsRegisterOutOfRange)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.numRegs = 1;
    p.threads.push_back({0, {ProgInstr::load(0, 5)}});
    EXPECT_THROW(Explorer(model, p), std::invalid_argument);
}

TEST(Explorer, GpfInstructionForcesPersistence)
{
    // store; GPF; load. Without crashes the load always sees the
    // store. With a crash of the owner permitted, BOTH outcomes are
    // reachable: the crash may strike before the GPF (store lost) or
    // after it (store persistent) — the GPF protects only against
    // later crashes, which is why litmus test 16 places E after GPF.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::LStore, 0, imm(1)), ProgInstr::gpf(),
             ProgInstr::load(0, 0)}});

    auto no_crash = Explorer(model, p).explore();
    for (const Outcome &o : no_crash)
        EXPECT_EQ(o.regs[0][0], 1) << o.describe();

    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0};
    auto crashy = Explorer(model, p, opts).explore();
    bool saw_kept = false, saw_lost = false;
    for (const Outcome &o : crashy) {
        saw_kept |= o.regs[0][0] == 1;
        saw_lost |= o.regs[0][0] == 0;
    }
    EXPECT_TRUE(saw_kept);
    EXPECT_TRUE(saw_lost);
}

TEST(Explorer, RStoreVisibleToOwnerImmediately)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::RStore, 0, imm(4))}});
    p.threads.push_back({0, {ProgInstr::load(0, 0)}});
    auto outcomes = Explorer(model, p).explore();
    bool saw_new = false, saw_old = false;
    for (const Outcome &o : outcomes) {
        saw_new |= o.regs[1][0] == 4;
        saw_old |= o.regs[1][0] == 0;
    }
    EXPECT_TRUE(saw_new);
    EXPECT_TRUE(saw_old); // the load may precede the store
}

TEST(Explorer, RFlushCrashWindowExists)
{
    // A subtle corner of the blocking-flush formulation: RFlush only
    // waits until no cache holds the line. If the owner crashes while
    // the line sits in *its* cache mid-propagation, the line vanishes,
    // the RFlush's precondition becomes true, and the flush returns
    // with the value lost — even though the issuer never crashed.
    // The exhaustive explorer must find this window (and the
    // crash-free runs must never lose the value). FliT inherits this
    // window; PersistMode::FlitVerified closes it by validating after
    // the flush.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::LStore, 0, imm(1)),
             ProgInstr::flush(Op::RFlush, 0), ProgInstr::load(0, 0)}});

    auto no_crash = Explorer(model, p).explore();
    for (const Outcome &o : no_crash)
        EXPECT_EQ(o.regs[0][0], 1) << o.describe();

    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0};
    auto crashy = Explorer(model, p, opts).explore();
    bool lost_after_flush = false;
    for (const Outcome &o : crashy)
        lost_after_flush |= o.regs[0][0] == 0;
    EXPECT_TRUE(lost_after_flush)
        << "the store-to-flush crash window should be reachable";
}

TEST(Explorer, CrashBudgetZeroMeansNoCrashOutcomes)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({0, {ProgInstr::load(0, 0)}});
    auto outcomes = Explorer(model, p).explore();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes.begin()->crashedThreads, 0u);
}

} // namespace
