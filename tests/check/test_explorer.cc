#include <gtest/gtest.h>

#include <algorithm>

#include "check/explorer.hh"
#include "check/litmus.hh"
#include "common/rng.hh"

namespace
{

using namespace cxl0::check;
using namespace cxl0::model;
using cxl0::Addr;
using cxl0::NodeId;
using cxl0::Value;

Operand
imm(Value v)
{
    return Operand::immediate(v);
}

TEST(Explorer, SingleThreadStoreLoad)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {0,
         {ProgInstr::store(Op::LStore, 0, imm(5)), ProgInstr::load(0, 0)}});
    auto outcomes = Explorer(model, p).explore().outcomes;
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes.begin()->regs[0][0], 5);
    EXPECT_EQ(outcomes.begin()->crashedThreads, 0u);
}

TEST(Explorer, TwoThreadsRaceOnStore)
{
    // Both threads store different values then read; every outcome
    // must be coherent (both readers agree with the last store).
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {0, {ProgInstr::store(Op::LStore, 0, imm(1)),
             ProgInstr::load(0, 0)}});
    p.threads.push_back(
        {0, {ProgInstr::store(Op::LStore, 0, imm(2)),
             ProgInstr::load(0, 0)}});
    auto outcomes = Explorer(model, p).explore().outcomes;
    EXPECT_GT(outcomes.size(), 1u);
    for (const Outcome &o : outcomes) {
        // Readers may see 1 or 2 but never the initial 0 for the
        // thread that wrote last; at minimum no reader sees a value
        // never written.
        for (size_t t = 0; t < 2; ++t)
            EXPECT_TRUE(o.regs[t][0] == 1 || o.regs[t][0] == 2);
    }
}

TEST(Explorer, MotivatingExampleAssertionCanFail)
{
    // §6: x=1; r1=x; r2=x on M1 with x on M2; a crash of M2 can yield
    // r1 != r2.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true); // x0 on node 0
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::LStore, 0, imm(1)),
             ProgInstr::load(0, 0), ProgInstr::load(0, 1)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0}; // only the remote owner crashes
    auto outcomes = Explorer(model, p, opts).explore().outcomes;
    bool violation = false;
    bool equal_seen = false;
    for (const Outcome &o : outcomes) {
        if ((o.crashedThreads & 1u) != 0)
            continue; // thread itself untouched by node 0 crashes
        if (o.regs[0][0] != o.regs[0][1])
            violation = true;
        else
            equal_seen = true;
    }
    EXPECT_TRUE(violation);
    EXPECT_TRUE(equal_seen);
}

TEST(Explorer, MotivatingExampleFixedByMStore)
{
    // Using MStore for the write forecloses the assertion failure.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::MStore, 0, imm(1)),
             ProgInstr::load(0, 0), ProgInstr::load(0, 1)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0};
    auto outcomes = Explorer(model, p, opts).explore().outcomes;
    for (const Outcome &o : outcomes)
        EXPECT_EQ(o.regs[0][0], o.regs[0][1]) << o.describe();
}

TEST(Explorer, CasSucceedsExactlyOnceUnderContention)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    for (int t = 0; t < 2; ++t) {
        p.threads.push_back(
            {0, {ProgInstr::cas(Op::LRmw, 0, imm(0), imm(t + 1), 0)}});
    }
    auto outcomes = Explorer(model, p).explore().outcomes;
    for (const Outcome &o : outcomes) {
        int successes = static_cast<int>(o.regs[0][0] + o.regs[1][0]);
        EXPECT_EQ(successes, 1) << o.describe();
    }
}

TEST(Explorer, FaaReturnsOldValueAndAccumulates)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({0, {ProgInstr::faa(Op::LRmw, 0, imm(3), 0)}});
    p.threads.push_back({0, {ProgInstr::faa(Op::LRmw, 0, imm(5), 0),
                             ProgInstr::load(0, 1)}});
    auto outcomes = Explorer(model, p).explore().outcomes;
    for (const Outcome &o : outcomes) {
        // Old values must be {0,3} or {0,5} depending on order.
        Value a = o.regs[0][0], b = o.regs[1][0];
        EXPECT_TRUE((a == 0 && b == 3) || (b == 0 && a == 5))
            << o.describe();
    }
}

TEST(Explorer, CrashKillsThreadsOnThatMachine)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({0, {ProgInstr::load(0, 0)}});
    p.threads.push_back({1, {ProgInstr::load(0, 0)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {1};
    auto outcomes = Explorer(model, p, opts).explore().outcomes;
    bool killed = false;
    for (const Outcome &o : outcomes)
        if (o.crashedThreads & 2u)
            killed = true;
    EXPECT_TRUE(killed);
    for (const Outcome &o : outcomes)
        EXPECT_EQ(o.crashedThreads & 1u, 0u); // node 0 never crashes
}

TEST(Explorer, RegisterOperandsFlowBetweenInstructions)
{
    // r0 = load(x); store(y, r0) — message passing through registers.
    SystemConfig cfg = SystemConfig::uniform(1, 2, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {0, {ProgInstr::store(Op::LStore, 0, imm(7)),
             ProgInstr::load(0, 0),
             ProgInstr::store(Op::LStore, 1, Operand::regRef(0)),
             ProgInstr::load(1, 1)}});
    auto outcomes = Explorer(model, p).explore().outcomes;
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes.begin()->regs[0][1], 7);
}

TEST(Explorer, MStorePersistsAcrossCrashInExploration)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    // Thread on node 1 MStores into node 0's memory, node 0 may crash,
    // then the thread reads back: always 1.
    p.threads.push_back({1, {ProgInstr::store(Op::MStore, 0, imm(1)),
                             ProgInstr::load(0, 0)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0};
    auto outcomes = Explorer(model, p, opts).explore().outcomes;
    for (const Outcome &o : outcomes)
        EXPECT_EQ(o.regs[0][0], 1) << o.describe();
}

TEST(Explorer, FlushBlocksUntilTauDrains)
{
    // store; lflush; load-from-memory-after-crash can only see the
    // stored value (flush forced local persistence), mirroring litmus
    // test 3 but through the program interface.
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({0, {ProgInstr::store(Op::LStore, 0, imm(1)),
                             ProgInstr::flush(Op::LFlush, 0)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    auto outcomes = Explorer(model, p, opts).explore().outcomes;
    // Follow-up: check memory persisted in every completed outcome by
    // re-running with a trailing load.
    Program p2 = p;
    p2.threads[0].code.push_back(ProgInstr::load(0, 0));
    auto outcomes2 = Explorer(model, p2, ExploreOptions{}).explore().outcomes;
    for (const Outcome &o : outcomes2)
        EXPECT_EQ(o.regs[0][0], 1);
    EXPECT_FALSE(outcomes.empty());
}

TEST(Explorer, RejectsBadThreadPlacement)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({3, {ProgInstr::load(0, 0)}});
    EXPECT_THROW(Explorer(model, p), std::invalid_argument);
}

TEST(Explorer, RejectsRegisterOutOfRange)
{
    SystemConfig cfg = SystemConfig::uniform(1, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.numRegs = 1;
    p.threads.push_back({0, {ProgInstr::load(0, 5)}});
    EXPECT_THROW(Explorer(model, p), std::invalid_argument);
}

TEST(Explorer, GpfInstructionForcesPersistence)
{
    // store; GPF; load. Without crashes the load always sees the
    // store. With a crash of the owner permitted, BOTH outcomes are
    // reachable: the crash may strike before the GPF (store lost) or
    // after it (store persistent) — the GPF protects only against
    // later crashes, which is why litmus test 16 places E after GPF.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::LStore, 0, imm(1)), ProgInstr::gpf(),
             ProgInstr::load(0, 0)}});

    auto no_crash = Explorer(model, p).explore().outcomes;
    for (const Outcome &o : no_crash)
        EXPECT_EQ(o.regs[0][0], 1) << o.describe();

    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0};
    auto crashy = Explorer(model, p, opts).explore().outcomes;
    bool saw_kept = false, saw_lost = false;
    for (const Outcome &o : crashy) {
        saw_kept |= o.regs[0][0] == 1;
        saw_lost |= o.regs[0][0] == 0;
    }
    EXPECT_TRUE(saw_kept);
    EXPECT_TRUE(saw_lost);
}

TEST(Explorer, RStoreVisibleToOwnerImmediately)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::RStore, 0, imm(4))}});
    p.threads.push_back({0, {ProgInstr::load(0, 0)}});
    auto outcomes = Explorer(model, p).explore().outcomes;
    bool saw_new = false, saw_old = false;
    for (const Outcome &o : outcomes) {
        saw_new |= o.regs[1][0] == 4;
        saw_old |= o.regs[1][0] == 0;
    }
    EXPECT_TRUE(saw_new);
    EXPECT_TRUE(saw_old); // the load may precede the store
}

TEST(Explorer, RFlushCrashWindowExists)
{
    // A subtle corner of the blocking-flush formulation: RFlush only
    // waits until no cache holds the line. If the owner crashes while
    // the line sits in *its* cache mid-propagation, the line vanishes,
    // the RFlush's precondition becomes true, and the flush returns
    // with the value lost — even though the issuer never crashed.
    // The exhaustive explorer must find this window (and the
    // crash-free runs must never lose the value). FliT inherits this
    // window; PersistMode::FlitVerified closes it by validating after
    // the flush.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {1, {ProgInstr::store(Op::LStore, 0, imm(1)),
             ProgInstr::flush(Op::RFlush, 0), ProgInstr::load(0, 0)}});

    auto no_crash = Explorer(model, p).explore().outcomes;
    for (const Outcome &o : no_crash)
        EXPECT_EQ(o.regs[0][0], 1) << o.describe();

    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0};
    auto crashy = Explorer(model, p, opts).explore().outcomes;
    bool lost_after_flush = false;
    for (const Outcome &o : crashy)
        lost_after_flush |= o.regs[0][0] == 0;
    EXPECT_TRUE(lost_after_flush)
        << "the store-to-flush crash window should be reachable";
}

TEST(Explorer, CrashBudgetZeroMeansNoCrashOutcomes)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back({0, {ProgInstr::load(0, 0)}});
    auto outcomes = Explorer(model, p).explore().outcomes;
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes.begin()->crashedThreads, 0u);
}

// ---------------------------------------------------------------------
// Regression: the packed/interned search must produce outcome sets
// bit-identical to the deep-copy reference implementation (the seed
// algorithm) under every partial-order reduction mode.
// ---------------------------------------------------------------------

void
expectAllModesAgree(const Cxl0Model &model, const Program &p,
                    ExploreOptions opts, const char *what)
{
    opts.reduction = Reduction::None;
    Explorer unreduced(model, p, opts);
    auto ref = unreduced.exploreReference();
    auto fast_none = unreduced.explore();
    ASSERT_FALSE(ref.truncated) << what;
    EXPECT_EQ(fast_none.outcomes, ref.outcomes)
        << what << " (reduction off)";

    // Every tier of the reduction stack preserves the outcome set,
    // and each tier may only ever shrink the *interned* graph (the
    // per-pop visited count can exceed it under sleep-word merging,
    // so the node count is the monotone metric).
    size_t prev_interned = fast_none.stats.configsInterned;
    for (Reduction red :
         {Reduction::Tau, Reduction::Ample, Reduction::CrashAmple,
          Reduction::Sleep, Reduction::Full}) {
        opts.reduction = red;
        auto fast = Explorer(model, p, opts).explore();
        ASSERT_FALSE(fast.truncated)
            << what << " (" << reductionName(red) << ")";
        EXPECT_EQ(fast.outcomes, ref.outcomes)
            << what << " (" << reductionName(red) << ")";
        EXPECT_LE(fast.stats.configsInterned, prev_interned)
            << what << " (" << reductionName(red) << ")";
        prev_interned = fast.stats.configsInterned;
    }
}

TEST(ExplorerRegression, PackedMatchesReferenceOnLitmusPrograms)
{
    for (const LitmusProgram &lp : explorerPrograms()) {
        Cxl0Model model(lp.config, lp.variant);
        expectAllModesAgree(model, lp.program, lp.options,
                            lp.name.c_str());
    }
}

TEST(ExplorerRegression, MotivatingProgramKeepsItsOutcomeSet)
{
    // The §6 program's exact reachable (r1, r2) set, locked in as a
    // regression oracle: (1,1) crash-free or crash-after-reads; (1,0)
    // the paper's assertion violation (value observed then lost);
    // (0,0) the store's line migrates to the owner's cache and dies
    // in the crash before either read.
    LitmusProgram lp = motivatingProgram();
    Cxl0Model model(lp.config, lp.variant);
    auto res = Explorer(model, lp.program, lp.options).explore();
    ASSERT_FALSE(res.truncated);
    std::set<std::pair<Value, Value>> seen;
    for (const Outcome &o : res.outcomes)
        seen.insert({o.regs[0][0], o.regs[0][1]});
    std::set<std::pair<Value, Value>> expected{{0, 0}, {1, 0}, {1, 1}};
    EXPECT_EQ(seen, expected);
}

TEST(ExplorerRegression, PackedMatchesReferenceOnRandomPrograms)
{
    // Differential fuzzing across variants, flavours, crash budgets,
    // and thread mixes. Sizes stay small so the reference search is
    // cheap, but every instruction kind and both explorers' corner
    // paths get exercised.
    cxl0::Rng rng(0xc0ffeeULL);
    for (int trial = 0; trial < 40; ++trial) {
        size_t nodes = 1 + rng.nextBelow(3);
        size_t addrs_per = 1 + rng.nextBelow(2);
        bool persistent = rng.chance(1, 2);
        SystemConfig cfg =
            SystemConfig::uniform(nodes, addrs_per, persistent);
        auto variant = static_cast<ModelVariant>(rng.nextBelow(3));
        Cxl0Model model(cfg, variant);

        Program p;
        p.numRegs = 2;
        size_t nthreads = 1 + rng.nextBelow(2);
        size_t naddrs = cfg.numAddrs();
        for (size_t t = 0; t < nthreads; ++t) {
            ProgThread thread;
            thread.node = static_cast<NodeId>(rng.nextBelow(nodes));
            size_t len = 1 + rng.nextBelow(3);
            for (size_t i = 0; i < len; ++i) {
                Addr x = static_cast<Addr>(rng.nextBelow(naddrs));
                Value v = static_cast<Value>(rng.nextInRange(0, 2));
                switch (rng.nextBelow(6)) {
                  case 0:
                    thread.code.push_back(ProgInstr::load(x, 0));
                    break;
                  case 1: {
                    Op flavours[] = {Op::LStore, Op::RStore,
                                     Op::MStore};
                    thread.code.push_back(ProgInstr::store(
                        flavours[rng.nextBelow(3)], x,
                        Operand::immediate(v)));
                    break;
                  }
                  case 2:
                    thread.code.push_back(ProgInstr::flush(
                        rng.chance(1, 2) ? Op::LFlush : Op::RFlush,
                        x));
                    break;
                  case 3:
                    thread.code.push_back(ProgInstr::gpf());
                    break;
                  case 4:
                    thread.code.push_back(ProgInstr::cas(
                        Op::LRmw, x, Operand::immediate(0),
                        Operand::immediate(v), 1));
                    break;
                  case 5:
                    thread.code.push_back(
                        ProgInstr::faa(Op::MRmw, x,
                                       Operand::immediate(1), 1));
                    break;
                }
            }
            p.threads.push_back(std::move(thread));
        }

        ExploreOptions opts;
        opts.maxCrashesPerNode = static_cast<int>(rng.nextBelow(2));
        expectAllModesAgree(model, p, opts,
                            ("random trial " + std::to_string(trial))
                                .c_str());
    }
}

TEST(ExplorerRegression, TruncationDegradesGracefully)
{
    // A crashy two-thread program whose config count exceeds a tiny
    // budget: both explorers must report truncated=true, keep a
    // nonempty partial outcome set, and not abort the process.
    LitmusProgram lp = motivatingProgram();
    Cxl0Model model(lp.config, lp.variant);
    ExploreOptions opts = lp.options;
    auto full = Explorer(model, lp.program, opts).explore();
    ASSERT_FALSE(full.truncated);

    opts.maxConfigs = 4;
    auto partial = Explorer(model, lp.program, opts).explore();
    EXPECT_TRUE(partial.truncated);
    auto partial_ref =
        Explorer(model, lp.program, opts).exploreReference();
    EXPECT_TRUE(partial_ref.truncated);

    for (const Outcome &o : partial.outcomes)
        EXPECT_TRUE(full.outcomes.count(o))
            << "partial outcome not in the full set: " << o.describe();
}

TEST(ExplorerRegression, TimeBudgetCutsSearchAsTimedOut)
{
    // Three crashy threads over two machines blow far past a 1ms
    // budget; the cut must surface as Inconclusive + truncated +
    // timedOut, with whatever partial outcomes were reached.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    Cxl0Model model(cfg);
    Program p;
    for (int t = 0; t < 3; ++t)
        p.threads.push_back(
            {static_cast<NodeId>(t % 2),
             {ProgInstr::store(Op::LStore, 0, imm(t + 1)),
              ProgInstr::load(0, 0),
              ProgInstr::store(Op::RStore, 1, imm(t + 1)),
              ProgInstr::load(1, 1)}});
    CheckRequest req;
    req.maxCrashesPerNode = 1;
    req.timeBudgetMs = 1;
    CheckReport r = Explorer(model, p, req).check();
    EXPECT_EQ(r.verdict, CheckVerdict::Inconclusive);
    EXPECT_TRUE(r.truncated);
    EXPECT_TRUE(r.timedOut);
}

TEST(ExplorerRegression, CheckReportVerdictTracksTruncation)
{
    // The unified API: a complete run is Pass; a budget-cut run is
    // Inconclusive with truncated=true and a valid partial outcome
    // subset (never an abort).
    LitmusProgram lp = motivatingProgram();
    Cxl0Model model(lp.config, lp.variant);
    CheckReport full = Explorer(model, lp.program, lp.options).check();
    EXPECT_EQ(full.verdict, CheckVerdict::Pass);
    EXPECT_FALSE(full.truncated);

    CheckRequest tiny = lp.options;
    tiny.maxConfigs = 4;
    CheckReport partial = Explorer(model, lp.program, tiny).check();
    EXPECT_EQ(partial.verdict, CheckVerdict::Inconclusive);
    EXPECT_TRUE(partial.truncated);
    EXPECT_GT(partial.stats.configsVisited, 0u);
    for (const Outcome &o : partial.outcomes)
        EXPECT_TRUE(full.outcomes.count(o)) << o.describe();
}

TEST(ExplorerRegression, FrontierPoliciesProduceIdenticalOutcomes)
{
    // The DFS/BFS seam (the sharded-frontier drop-in point) must not
    // change any reachable set.
    for (const LitmusProgram &lp : explorerPrograms()) {
        Cxl0Model model(lp.config, lp.variant);
        CheckRequest dfs = lp.options;
        dfs.frontier = FrontierPolicy::DepthFirst;
        CheckRequest bfs = lp.options;
        bfs.frontier = FrontierPolicy::BreadthFirst;
        CheckReport a = Explorer(model, lp.program, dfs).check();
        CheckReport b = Explorer(model, lp.program, bfs).check();
        ASSERT_FALSE(a.truncated) << lp.name;
        ASSERT_FALSE(b.truncated) << lp.name;
        EXPECT_EQ(a.outcomes, b.outcomes) << lp.name;
        EXPECT_EQ(a.stats.configsInterned, b.stats.configsInterned)
            << lp.name;
    }
}

TEST(ExplorerRegression, ThreadCountNeverChangesTheReport)
{
    // The sharded parallel driver must be invisible in the results:
    // for every litmus anchor, numThreads in {1, 2, 4} yield the
    // same outcome set, the same distinct-config count, the same
    // completeness — and the 1-thread run is the exact sequential
    // search. (Per-worker splits, wall-clock, and byte counts may
    // differ; nothing semantic may.)
    for (const LitmusProgram &lp : explorerPrograms()) {
        Cxl0Model model(lp.config, lp.variant);
        CheckRequest one = lp.options;
        one.numThreads = 1;
        CheckReport base = Explorer(model, lp.program, one).check();
        ASSERT_FALSE(base.truncated) << lp.name;
        for (size_t n : {2, 4}) {
            CheckRequest req = lp.options;
            req.numThreads = n;
            CheckReport res =
                Explorer(model, lp.program, req).check();
            EXPECT_EQ(res.verdict, base.verdict)
                << lp.name << " x" << n;
            EXPECT_EQ(res.outcomes, base.outcomes)
                << lp.name << " x" << n;
            EXPECT_EQ(res.truncated, base.truncated)
                << lp.name << " x" << n;
            EXPECT_EQ(res.stats.configsInterned,
                      base.stats.configsInterned)
                << lp.name << " x" << n;
            EXPECT_EQ(res.stats.configsVisited,
                      base.stats.configsVisited)
                << lp.name << " x" << n;
            EXPECT_EQ(res.stats.ampleSkipped,
                      base.stats.ampleSkipped)
                << lp.name << " x" << n;
        }
    }
}

TEST(ExplorerRegression, ReductionPreservesOutcomesAtEveryThreadCount)
{
    // The reduction-soundness gate over the whole litmus-program
    // corpus: reduction=none and reduction=ample must produce
    // bit-identical outcome sets at numThreads 1 and 4, and the
    // ample counters themselves must be thread-count invariant (the
    // ample condition is per-configuration, so stealing cannot move
    // it).
    for (const LitmusProgram &lp : explorerPrograms()) {
        Cxl0Model model(lp.config, lp.variant);
        CheckRequest none = lp.options;
        none.reduction = Reduction::None;
        none.numThreads = 1;
        CheckReport base = Explorer(model, lp.program, none).check();
        ASSERT_FALSE(base.truncated) << lp.name;

        for (Reduction red :
             {Reduction::None, Reduction::Ample,
              Reduction::CrashAmple, Reduction::Sleep,
              Reduction::Full}) {
            CheckReport first;
            bool have_first = false;
            for (size_t n : {1, 2, 4, 8}) {
                CheckRequest req = lp.options;
                req.reduction = red;
                req.numThreads = n;
                CheckReport res =
                    Explorer(model, lp.program, req).check();
                EXPECT_EQ(res.outcomes, base.outcomes)
                    << lp.name << " " << reductionName(red) << " x"
                    << n;
                EXPECT_FALSE(res.truncated)
                    << lp.name << " x" << n;
                if (!have_first) {
                    first = res;
                    have_first = true;
                } else {
                    // The reduced graph is a pure function of the
                    // configuration, so its interned node count —
                    // and the ample counter — cannot move with the
                    // worker count or steal schedule. (The per-pop
                    // visited count may jitter under sleep-word
                    // merging; the node count may not.)
                    EXPECT_EQ(res.stats.configsInterned,
                              first.stats.configsInterned)
                        << lp.name << " " << reductionName(red)
                        << " x" << n;
                    // Per-expansion counters are exact below the
                    // sleep tier; sleep-word merging re-expands
                    // configurations, so there they jitter with the
                    // schedule like configsVisited does.
                    if (red < Reduction::Sleep)
                        EXPECT_EQ(res.stats.ampleSkipped,
                                  first.stats.ampleSkipped)
                            << lp.name << " " << reductionName(red)
                            << " x" << n;
                }
            }
        }
    }
}

TEST(ExplorerStress, SkewedShardsUnderStealingKeepTheReport)
{
    // The contended case: a 3-thread ring with one crash per machine
    // explodes into deep crash fan-out whose DFS frontier lives in
    // few shards at a time, so 8 workers over it exercise steal-half
    // continuously (the initial partition is maximally skewed: one
    // root configuration on one shard). Everything semantic must be
    // identical to the sequential search.
    SystemConfig cfg = SystemConfig::uniform(3, 1, true);
    Cxl0Model model(cfg);
    Program p;
    for (int t = 0; t < 3; ++t) {
        NodeId node = static_cast<NodeId>(t);
        Addr own = static_cast<Addr>(t);
        Addr next = static_cast<Addr>((t + 1) % 3);
        p.threads.push_back(
            {node,
             {ProgInstr::store(Op::LStore, own,
                               Operand::immediate(t + 1)),
              ProgInstr::load(next, 0), ProgInstr::load(own, 1)}});
    }
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;

    CheckRequest one = opts;
    one.numThreads = 1;
    CheckReport seq = Explorer(model, p, one).check();
    ASSERT_FALSE(seq.truncated);

    for (size_t n : {4, 8}) {
        CheckRequest req = opts;
        req.numThreads = n;
        CheckReport par = Explorer(model, p, req).check();
        EXPECT_EQ(par.verdict, seq.verdict) << "x" << n;
        EXPECT_EQ(par.outcomes, seq.outcomes) << "x" << n;
        EXPECT_EQ(par.truncated, seq.truncated) << "x" << n;
        EXPECT_EQ(par.stats.configsVisited, seq.stats.configsVisited)
            << "x" << n;
        EXPECT_EQ(par.stats.configsInterned,
                  seq.stats.configsInterned)
            << "x" << n;
        EXPECT_EQ(par.stats.ampleSkipped, seq.stats.ampleSkipped)
            << "x" << n;
        // Steal traffic is scheduling-dependent (and usually zero on
        // a single-core runner), but the counters must be coherent.
        EXPECT_GE(par.stats.stealsAttempted,
                  par.stats.stealsSucceeded)
            << "x" << n;
    }
    EXPECT_EQ(seq.stats.stealsAttempted, 0u); // 1 worker never steals
}

TEST(ExplorerRegression, AmpleStrictlyBeatsTauOnTheCrashRing)
{
    // The acceptance shape in miniature: on the crash-enabled ring
    // the ample set must explore strictly fewer configurations than
    // the tau-only reduction, for the same outcome set.
    SystemConfig cfg = SystemConfig::uniform(3, 1, true);
    Cxl0Model model(cfg);
    Program p;
    for (int t = 0; t < 3; ++t) {
        NodeId node = static_cast<NodeId>(t);
        Addr own = static_cast<Addr>(t);
        Addr next = static_cast<Addr>((t + 1) % 3);
        p.threads.push_back(
            {node,
             {ProgInstr::store(Op::LStore, own,
                               Operand::immediate(t + 1)),
              ProgInstr::load(next, 0), ProgInstr::load(own, 1)}});
    }
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.reduction = Reduction::Tau;
    CheckReport tau = Explorer(model, p, opts).check();
    opts.reduction = Reduction::Ample;
    CheckReport ample = Explorer(model, p, opts).check();
    ASSERT_FALSE(tau.truncated);
    ASSERT_FALSE(ample.truncated);
    EXPECT_EQ(ample.outcomes, tau.outcomes);
    EXPECT_LT(ample.stats.configsVisited, tau.stats.configsVisited);
    EXPECT_GT(ample.stats.ampleSkipped, 0u);
}

TEST(ExplorerStress, CrashAwareStackCutsTheHeavyRingFiveFold)
{
    // The crash-heavy acceptance gate: on the 5-instruction ring
    // with one crash per machine, the crash-aware stack (crash-step
    // ample condition, dead-pc and dead-address quotients, sleep
    // sets, machine symmetry) must explore at most a fifth of the
    // ample graph, with a bit-identical outcome set, and the
    // interned node count must not move with the worker count.
    SystemConfig cfg = SystemConfig::uniform(3, 1, true);
    Cxl0Model model(cfg);
    Program p;
    for (int t = 0; t < 3; ++t) {
        NodeId node = static_cast<NodeId>(t);
        Addr own = static_cast<Addr>(t);
        Addr next = static_cast<Addr>((t + 1) % 3);
        p.threads.push_back(
            {node,
             {ProgInstr::store(Op::LStore, own,
                               Operand::immediate(t + 1)),
              ProgInstr::load(next, 0), ProgInstr::load(own, 1),
              ProgInstr::store(Op::LStore, next,
                               Operand::regRef(1)),
              ProgInstr::load(next, 2)}});
    }
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.maxConfigs = 4'000'000;
    opts.reduction = Reduction::Ample;
    CheckReport ample = Explorer(model, p, opts).check();
    ASSERT_FALSE(ample.truncated);

    opts.reduction = Reduction::Full;
    CheckReport full1 = Explorer(model, p, opts).check();
    ASSERT_FALSE(full1.truncated);
    EXPECT_EQ(full1.outcomes, ample.outcomes);
    EXPECT_LE(full1.stats.configsInterned * 5,
              ample.stats.configsInterned);
    EXPECT_GT(full1.stats.crashAmpleSkipped, 0u);
    EXPECT_GT(full1.stats.sleepSetSkipped, 0u);

    opts.numThreads = 4;
    CheckReport full4 = Explorer(model, p, opts).check();
    EXPECT_EQ(full4.outcomes, ample.outcomes);
    EXPECT_EQ(full4.stats.configsInterned,
              full1.stats.configsInterned);
}

TEST(ExplorerRegression, MachineSymmetryCanonicalizesSpareBudgets)
{
    // Machines 1 and 2 host no thread and own nothing, so they form
    // a symmetry orbit — but only machine 1 is crashable, so the
    // initial budget triples over the orbit are out of order and
    // every push from the root must canonicalize them (crash
    // enabledness reads the budget word, not the crashable list, so
    // the renaming is sound). This is the end-to-end wiring check
    // for Reduction::Full's symmetry layer; note that on fully
    // symmetric requests the invisible-crash subsumption prunes
    // spare-machine crashes before symmetry could distinguish them,
    // so symmetryMerged stays 0 there by design.
    SystemConfig cfg({MachineConfig{true}, MachineConfig{false},
                      MachineConfig{false}},
                     {0});
    Cxl0Model model(cfg);
    Program p;
    p.threads.push_back(
        {0,
         {ProgInstr::store(Op::LStore, 0, imm(1)),
          ProgInstr::load(0, 0)}});
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.crashableNodes = {0, 1};
    opts.reduction = Reduction::None;
    CheckReport none = Explorer(model, p, opts).check();
    ASSERT_FALSE(none.truncated);

    opts.reduction = Reduction::Full;
    CheckReport full = Explorer(model, p, opts).check();
    ASSERT_FALSE(full.truncated);
    EXPECT_EQ(full.outcomes, none.outcomes);
    EXPECT_GT(full.stats.symmetryMerged, 0u);

    opts.numThreads = 4;
    CheckReport full4 = Explorer(model, p, opts).check();
    EXPECT_EQ(full4.outcomes, none.outcomes);
    EXPECT_EQ(full4.stats.configsInterned,
              full.stats.configsInterned);
}

TEST(ExplorerRegression, StatsMergeCombinesWorkerPartials)
{
    SearchStats a, b;
    a.configsVisited = 10;
    a.configsInterned = 8;
    a.statesInterned = 100; // shared-table view
    a.peakVisitedBytes = 1000;
    a.tableBytes = 5000;
    a.tauMovesSkipped = 3;
    a.ampleSkipped = 5;
    a.stealsAttempted = 4;
    a.stealsSucceeded = 2;
    a.seconds = 0.5;
    b.configsVisited = 7;
    b.configsInterned = 6;
    b.statesInterned = 100;
    b.peakVisitedBytes = 800;
    b.tableBytes = 5000;
    b.tauMovesSkipped = 1;
    b.ampleSkipped = 2;
    b.stealsAttempted = 1;
    b.stealsSucceeded = 1;
    b.seconds = 0.9;
    a.merge(b);
    EXPECT_EQ(a.configsVisited, 17u);     // per-worker: adds
    EXPECT_EQ(a.configsInterned, 14u);    // per-worker: adds
    EXPECT_EQ(a.peakVisitedBytes, 1800u); // worker-owned: adds
    EXPECT_EQ(a.statesInterned, 100u);    // shared: max, not 200
    EXPECT_EQ(a.tableBytes, 5000u);       // shared: max, not 10000
    EXPECT_EQ(a.tauMovesSkipped, 4u);
    EXPECT_EQ(a.ampleSkipped, 7u);    // per-worker: adds
    EXPECT_EQ(a.stealsAttempted, 5u); // per-worker: adds
    EXPECT_EQ(a.stealsSucceeded, 3u); // per-worker: adds
    EXPECT_DOUBLE_EQ(a.seconds, 0.9); // concurrent wall-clock: max
}

TEST(ExplorerRegression, StatsDescribeTheRun)
{
    LitmusProgram lp = litmus4Program();
    Cxl0Model model(lp.config, lp.variant);
    auto res = Explorer(model, lp.program, lp.options).explore();
    EXPECT_GT(res.stats.configsVisited, 0u);
    EXPECT_GT(res.stats.configsInterned, 0u);
    EXPECT_GT(res.stats.statesInterned, 0u);
    EXPECT_GT(res.stats.peakVisitedBytes, 0u);
    EXPECT_GE(res.stats.seconds, 0.0);
}

TEST(ExplorerRegression, PackedVisitedSetIsLeanerAtScale)
{
    // On a workload large enough to amortize table pre-allocation,
    // interning + 32-byte packed entries must beat deep copies on
    // resident visited-set bytes by a wide margin.
    SystemConfig cfg = SystemConfig::uniform(3, 1, true);
    Cxl0Model model(cfg);
    Program p;
    for (int t = 0; t < 3; ++t) {
        NodeId node = static_cast<NodeId>(t);
        Addr own = static_cast<Addr>(t);
        Addr next = static_cast<Addr>((t + 1) % 3);
        p.threads.push_back(
            {node,
             {ProgInstr::store(Op::LStore, own,
                               Operand::immediate(t + 1)),
              ProgInstr::load(next, 0), ProgInstr::load(own, 1)}});
    }
    ExploreOptions opts;
    opts.maxCrashesPerNode = 1;
    opts.reduction = Reduction::None; // compare identical graphs
    Explorer ex(model, p, opts);
    auto fast = ex.explore();
    auto ref = ex.exploreReference();
    ASSERT_FALSE(fast.truncated);
    EXPECT_EQ(fast.outcomes, ref.outcomes);
    EXPECT_EQ(fast.stats.configsInterned, ref.stats.configsInterned);
    EXPECT_LT(fast.stats.peakVisitedBytes * 5,
              ref.stats.peakVisitedBytes);
}

} // namespace
