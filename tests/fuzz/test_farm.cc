#include <gtest/gtest.h>

#include "fuzz/farm.hh"
#include "lang/run.hh"
#include "lang/scenario.hh"

namespace
{

using namespace cxl0;
using namespace cxl0::fuzz;

TEST(Farm, FixedSeedRunIsCleanWithWarmCache)
{
    FarmOptions opts;
    opts.seed = 1;
    opts.count = 12;
    FarmReport rep = runFarm(opts);

    EXPECT_EQ(rep.generated, 12u);
    EXPECT_TRUE(rep.findings.empty())
        << (rep.findings.empty()
                ? ""
                : rep.findings[0].gate + ": " + rep.findings[0].detail);
    EXPECT_EQ(rep.crashed, 0u);
    EXPECT_EQ(rep.diverged, 0u);
    EXPECT_EQ(rep.clean + rep.skipped, rep.generated);
    EXPECT_GT(rep.clean, 0u);
    EXPECT_GT(rep.gatesRun, 0u);

    // The cache trial replays every clean scenario twice through one
    // service: the second pass must hit, and every hit must be
    // byte-identical to its recompute.
    EXPECT_GT(rep.cacheLookups, 0u);
    EXPECT_GT(rep.cacheHits, 0u);
    EXPECT_TRUE(rep.cacheByteIdentical);
    EXPECT_TRUE(rep.pass());
}

TEST(Farm, RunsAreDeterministic)
{
    FarmOptions opts;
    opts.seed = 7;
    opts.count = 6;
    opts.cacheTrial = false;
    FarmReport a = runFarm(opts);
    FarmReport b = runFarm(opts);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.clean, b.clean);
    EXPECT_EQ(a.skipped, b.skipped);
    EXPECT_EQ(a.gatesRun, b.gatesRun);
    EXPECT_EQ(a.findings.size(), b.findings.size());
}

TEST(Farm, KeptExportsParseAndAnchorPass)
{
    FarmOptions opts;
    opts.seed = 1;
    opts.count = 10;
    opts.keep = 3;
    opts.cacheTrial = false;
    FarmReport rep = runFarm(opts);
    ASSERT_TRUE(rep.findings.empty());
    ASSERT_EQ(rep.kept.size(), 3u);

    for (const lang::CorpusFile &f : rep.kept) {
        EXPECT_NE(f.filename.find("fuzz-"), std::string::npos);
        lang::ParseResult r = lang::parseScenario(f.text);
        ASSERT_TRUE(r.ok())
            << f.filename << ": "
            << (r.ok() ? "" : r.error->render());
        // Anchors are locked to the explored outcome set, so the
        // exported case must pass as a regression test.
        EXPECT_EQ(r.scenario.expectKind, lang::AnchorKind::Exact)
            << f.filename;
        ASSERT_FALSE(r.scenario.expected.empty()) << f.filename;
        lang::RunResult run = lang::runScenario(r.scenario, {});
        EXPECT_TRUE(run.pass)
            << f.filename << ": " << run.describe();
    }
}

TEST(Farm, JsonCarriesTheGate)
{
    FarmOptions opts;
    opts.seed = 3;
    opts.count = 4;
    FarmReport rep = runFarm(opts);
    std::string js = farmJson(opts, rep, /*stable=*/true);
    EXPECT_NE(js.find("\"bench\": \"fuzz\""), std::string::npos);
    EXPECT_NE(js.find("\"all_pass\": true"), std::string::npos);
    EXPECT_NE(js.find("\"byte_identical\": true"), std::string::npos);
    EXPECT_NE(js.find("\"hit_rate\""), std::string::npos);
    // Stable output zeroes the wall-clock fields.
    EXPECT_NE(js.find("\"seconds\": 0"), std::string::npos);
}

} // namespace
