#include <gtest/gtest.h>

#include <set>

#include "fuzz/generate.hh"
#include "lang/scenario.hh"

namespace
{

using namespace cxl0;
using namespace cxl0::fuzz;

TEST(Generate, SeedFullyDeterminesScenario)
{
    for (uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        lang::Scenario a = generateScenario(seed);
        lang::Scenario b = generateScenario(seed);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

TEST(Generate, DistinctSeedsVaryTheScenario)
{
    std::set<std::string> dumps;
    for (uint64_t seed = 1; seed <= 20; ++seed)
        dumps.insert(lang::dumpScenario(generateScenario(seed)));
    // Collisions are possible in principle; 20 identical ones are
    // a broken generator.
    EXPECT_GT(dumps.size(), 10u);
}

TEST(Generate, EveryScenarioRoundtripsCanonically)
{
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        lang::Scenario sc = generateScenario(seed);
        std::string text = lang::dumpScenario(sc);
        lang::ParseResult r = lang::parseScenario(text);
        ASSERT_TRUE(r.ok())
            << "seed " << seed << ": "
            << (r.ok() ? "" : r.error->render()) << "\n"
            << text;
        EXPECT_EQ(r.scenario, sc) << "seed " << seed;
    }
}

TEST(Generate, ScenariosAreWellFormed)
{
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        lang::Scenario sc = generateScenario(seed);
        ASSERT_FALSE(sc.machinePersistent.empty());
        ASSERT_FALSE(sc.addrNames.empty());
        ASSERT_FALSE(sc.program.threads.empty());
        for (const auto &t : sc.program.threads) {
            EXPECT_LT(t.node, sc.machinePersistent.size());
            EXPECT_FALSE(t.code.empty());
            for (const auto &in : t.code) {
                if (in.kind != check::ProgInstr::Kind::Gpf)
                    EXPECT_LT(in.addr, sc.addrNames.size());
                if (in.dest >= 0)
                    EXPECT_LT(in.dest, sc.program.numRegs);
            }
        }
        for (NodeId owner : sc.addrOwner)
            EXPECT_LT(owner, sc.machinePersistent.size());
        for (NodeId n : sc.request.crashableNodes)
            EXPECT_LT(n, sc.machinePersistent.size());
        // config() must be constructible (throws on bad shapes).
        (void)sc.config();
    }
}

TEST(Generate, OptionsBoundTheDraw)
{
    GenOptions opts;
    opts.maxMachines = 1;
    opts.maxThreads = 1;
    opts.maxAddrs = 1;
    opts.allowCrash = false;
    opts.allowVariants = false;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        lang::Scenario sc = generateScenario(seed, opts);
        EXPECT_EQ(sc.machinePersistent.size(), 1u);
        EXPECT_EQ(sc.program.threads.size(), 1u);
        EXPECT_EQ(sc.addrNames.size(), 1u);
        EXPECT_EQ(sc.request.maxCrashesPerNode, 0);
        EXPECT_EQ(sc.variant, model::ModelVariant::Base);
    }
}

TEST(Generate, ScenarioSeedSpreadsFarmIndices)
{
    std::set<uint64_t> seeds;
    for (size_t i = 0; i < 100; ++i)
        seeds.insert(scenarioSeed(1, i));
    EXPECT_EQ(seeds.size(), 100u);
    // And is itself deterministic.
    EXPECT_EQ(scenarioSeed(7, 3), scenarioSeed(7, 3));
    EXPECT_NE(scenarioSeed(7, 3), scenarioSeed(8, 3));
}

} // namespace
