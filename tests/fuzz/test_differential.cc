#include <gtest/gtest.h>

#include "fuzz/differential.hh"
#include "fuzz/generate.hh"
#include "lang/scenario.hh"

namespace
{

using namespace cxl0;
using namespace cxl0::fuzz;

lang::Scenario
mustParse(const std::string &text)
{
    lang::ParseResult r = lang::parseScenario(text);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error->render());
    return r.scenario;
}

TEST(Differential, CleanScenarioRunsEveryGate)
{
    lang::Scenario sc = mustParse(R"(litmus "diff: clean"
machine 0 nvmm
machine 1 volatile
addr x @ 0
registers 1
crash any max 1
thread 0 on 0 {
  lstore x 1
  gpf
}
thread 1 on 1 {
  r0 = load x
}
)");
    DiffResult res = runDifferential(sc);
    EXPECT_FALSE(res.skipped);
    EXPECT_FALSE(res.crashed);
    EXPECT_TRUE(res.clean())
        << (res.findings.empty() ? "" : res.findings[0].detail);
    // roundtrip + determinism/serde + telemetry + 5 reductions +
    // 2 thread-count gates + frontier + reference = 12 comparison
    // gates.
    EXPECT_EQ(res.gatesRun, 12u);
    EXPECT_TRUE(res.gatesSkipped.empty());
    EXPECT_FALSE(res.baseline.outcomes.empty());
}

TEST(Differential, TruncatedBaselineIsSkippedNotDiverging)
{
    lang::Scenario sc = mustParse(R"(litmus "diff: truncated"
machine 0 nvmm
machine 1 nvmm
addr x @ 0
addr y @ 1
registers 2
crash any max 1
thread 0 on 0 {
  lstore x 1
  rstore y 1
  r0 = load y
}
thread 1 on 1 {
  mstore y 2
  r1 = load x
}
)");
    DiffOptions opts;
    opts.maxConfigs = 3; // guaranteed truncation
    DiffResult res = runDifferential(sc, opts);
    EXPECT_TRUE(res.skipped);
    EXPECT_TRUE(res.findings.empty());
    // Only the roundtrip gate (which needs no baseline) ran; every
    // outcome-comparison gate was skipped.
    EXPECT_EQ(res.gatesRun, 1u);
}

TEST(Differential, ReferenceGateHonorsConfigCap)
{
    lang::Scenario sc = mustParse(R"(litmus "diff: ref cap"
machine 0 nvmm
addr x @ 0
registers 1
thread 0 on 0 {
  lstore x 1
  r0 = load x
}
)");
    DiffOptions opts;
    opts.referenceConfigCap = 0; // cap below any real run
    DiffResult res = runDifferential(sc, opts);
    EXPECT_TRUE(res.clean());
    bool refSkipped = false;
    for (const std::string &g : res.gatesSkipped)
        refSkipped |= g.find("reference") != std::string::npos;
    EXPECT_TRUE(refSkipped);

    opts.runReference = false;
    opts.referenceConfigCap = 50000;
    DiffResult off = runDifferential(sc, opts);
    EXPECT_TRUE(off.clean());
    // Everything except the reference gate.
    EXPECT_EQ(off.gatesRun, 11u);
}

TEST(Differential, FixedSeedSweepIsCleanOrSkipped)
{
    // The farm's core invariant on a small fixed window: no seed
    // diverges or crashes (skips from budget overflow are fine).
    DiffOptions opts;
    opts.maxConfigs = 100000;
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        lang::Scenario sc = generateScenario(scenarioSeed(1, seed));
        DiffResult res = runDifferential(sc, opts);
        EXPECT_TRUE(res.crashed == false && res.findings.empty())
            << "seed index " << seed << ": "
            << (res.findings.empty() ? "crash"
                                     : res.findings[0].gate + ": " +
                                           res.findings[0].detail);
    }
}

TEST(Differential, RegressionCorpusCaseStaysClean)
{
    // The shrunk artifact of the ample-reduction completion bug;
    // keep it exercised directly in tier-1, not only via the
    // cxl0check replay path.
    lang::Scenario sc = mustParse(R"(litmus "regress: ample completion"
machine 0 nvmm
machine 1 volatile
addr x1 @ 0
registers 1
crash node 1 max 1
thread 0 on 0 {
  r0 = faa.m x1 1
  gpf
}
thread 1 on 1 {
  r0 = faa.l x1 r0
}
)");
    DiffResult res = runDifferential(sc);
    EXPECT_TRUE(res.clean())
        << (res.findings.empty() ? "" : res.findings[0].detail);
    EXPECT_EQ(res.baseline.outcomes.size(), 4u);
}

} // namespace
