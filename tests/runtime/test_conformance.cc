/**
 * @file
 * Runtime <-> model conformance: every execution the runtime produces
 * must be a feasible trace of the abstract CXL0 LTS.
 *
 * The test drives CxlSystem with random operation sequences (stores of
 * all flavours, loads, flushes, RMWs, GPF, crashes), records the
 * corresponding labels — loads and RMWs with the values the runtime
 * actually observed — and asserts the TraceChecker can execute the
 * label sequence with tau steps interleaved. This pins the executable
 * runtime to the formal semantics: random evictions, forced drains
 * inside flushes, and LWB blocking must all be explainable as legal
 * tau propagation.
 */

#include <gtest/gtest.h>

#include "check/trace.hh"
#include "runtime/system.hh"

namespace
{

using namespace cxl0;
using check::TraceChecker;
using model::Label;
using model::ModelVariant;
using model::SystemConfig;
using runtime::CxlSystem;
using runtime::PropagationPolicy;
using runtime::SystemOptions;

struct ConformanceCase
{
    const char *name;
    ModelVariant variant;
    bool persistent;
    uint64_t seed;
};

class ConformanceSuite
    : public ::testing::TestWithParam<ConformanceCase>
{
};

TEST_P(ConformanceSuite, RandomRunIsFeasibleModelTrace)
{
    const ConformanceCase &c = GetParam();
    SystemConfig cfg = SystemConfig::uniform(2, 2, c.persistent);
    SystemOptions opts(cfg);
    opts.variant = c.variant;
    opts.policy = PropagationPolicy::Random;
    opts.evictionChancePct = 25;
    opts.seed = c.seed;
    CxlSystem sys(std::move(opts));

    model::Cxl0Model m(cfg, c.variant);
    TraceChecker checker(m);

    Rng rng(c.seed * 7919 + 13);
    std::vector<Label> trace;
    for (int step = 0; step < 25; ++step) {
        NodeId by = static_cast<NodeId>(rng.nextBelow(2));
        Addr x = static_cast<Addr>(rng.nextBelow(4));
        Value v = rng.nextInRange(0, 3);
        switch (rng.nextBelow(9)) {
          case 0:
            sys.lstore(by, x, v);
            trace.push_back(Label::lstore(by, x, v));
            break;
          case 1:
            sys.rstore(by, x, v);
            trace.push_back(Label::rstore(by, x, v));
            break;
          case 2:
            sys.mstore(by, x, v);
            trace.push_back(Label::mstore(by, x, v));
            break;
          case 3: {
            Value got = sys.load(by, x);
            trace.push_back(Label::load(by, x, got));
            break;
          }
          case 4:
            sys.lflush(by, x);
            trace.push_back(Label::lflush(by, x));
            break;
          case 5:
            sys.rflush(by, x);
            trace.push_back(Label::rflush(by, x));
            break;
          case 6: {
            auto r = sys.casL(by, x, v, v + 1);
            if (r.success)
                trace.push_back(Label::lrmw(by, x, v, v + 1));
            else
                trace.push_back(Label::load(by, x, r.previous));
            break;
          }
          case 7: {
            Value old = sys.faaM(by, x, 1);
            trace.push_back(Label::mrmw(by, x, old, old + 1));
            break;
          }
          case 8:
            if (rng.chance(1, 3)) {
                sys.crash(by);
                trace.push_back(Label::crash(by));
            } else {
                sys.gpf(by);
                trace.push_back(Label::gpf(by));
            }
            break;
        }
        // Check incrementally so a failure points at the first
        // non-conforming step.
        ASSERT_TRUE(checker.feasible(trace))
            << c.name << ": runtime produced a trace the model "
            << "cannot execute:\n"
            << model::describeTrace(trace);
    }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, ConformanceSuite,
    ::testing::Values(
        ConformanceCase{"base_nv_1", ModelVariant::Base, true, 1},
        ConformanceCase{"base_nv_2", ModelVariant::Base, true, 2},
        ConformanceCase{"base_volatile", ModelVariant::Base, false, 3},
        ConformanceCase{"psn_nv", ModelVariant::Psn, true, 4},
        ConformanceCase{"psn_volatile", ModelVariant::Psn, false, 5},
        ConformanceCase{"lwb_nv", ModelVariant::Lwb, true, 6}),
    [](const ::testing::TestParamInfo<ConformanceCase> &info) {
        return info.param.name;
    });

TEST(Conformance, EagerPolicyAlsoConforms)
{
    // Eager draining after stores is just aggressive tau scheduling.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    SystemOptions opts(cfg);
    opts.policy = PropagationPolicy::Eager;
    CxlSystem sys(std::move(opts));
    model::Cxl0Model m(cfg);
    TraceChecker checker(m);

    std::vector<Label> trace;
    sys.lstore(1, 0, 1);
    trace.push_back(Label::lstore(1, 0, 1));
    trace.push_back(Label::load(0, 0, sys.load(0, 0)));
    sys.crash(0);
    trace.push_back(Label::crash(0));
    trace.push_back(Label::load(1, 0, sys.load(1, 0)));
    EXPECT_TRUE(checker.feasible(trace))
        << model::describeTrace(trace);
}

TEST(Conformance, AsyncFlushFenceConforms)
{
    // rflushAsync + fence together behave like the model's RFlush
    // (the fence point is where the RFlush label sits).
    SystemConfig cfg = SystemConfig::uniform(2, 2, true);
    SystemOptions opts(cfg);
    opts.policy = PropagationPolicy::Manual;
    CxlSystem sys(std::move(opts));
    model::Cxl0Model m(cfg);
    TraceChecker checker(m);

    std::vector<Label> trace;
    sys.lstore(1, 0, 1);
    trace.push_back(Label::lstore(1, 0, 1));
    sys.lstore(1, 2, 2);
    trace.push_back(Label::lstore(1, 2, 2));
    sys.rflushAsync(1, 0);
    sys.rflushAsync(1, 2);
    sys.fence(1);
    trace.push_back(Label::rflush(1, 0));
    trace.push_back(Label::rflush(1, 2));
    sys.crash(0);
    trace.push_back(Label::crash(0));
    trace.push_back(Label::load(0, 0, sys.load(0, 0)));
    trace.push_back(Label::load(0, 2, sys.load(0, 2)));
    EXPECT_TRUE(checker.feasible(trace))
        << model::describeTrace(trace);
    EXPECT_EQ(sys.peekMemory(0), 1);
}

} // namespace
