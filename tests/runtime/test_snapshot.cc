#include <gtest/gtest.h>

#include "runtime/snapshot.hh"

namespace
{

using namespace cxl0::runtime;
using cxl0::model::SystemConfig;

SystemOptions
manual()
{
    SystemOptions o(SystemConfig::uniform(2, 4, true));
    o.policy = PropagationPolicy::Manual;
    return o;
}

TEST(Snapshot, CapturesCachedValuesViaGpf)
{
    CxlSystem sys(manual());
    sys.lstore(0, 0, 7);  // cached only
    sys.lstore(1, 5, 9);  // cached only, remote addr owned by node 1
    MemoryImage img = takeSnapshot(sys, 0);
    // The GPF drained everything first.
    EXPECT_EQ(img.memory[0], 7);
    EXPECT_EQ(img.memory[5], 9);
    EXPECT_EQ(img.memory.size(), sys.config().numAddrs());
}

TEST(Snapshot, RestoreRollsBack)
{
    CxlSystem sys(manual());
    sys.mstore(0, 0, 1);
    sys.mstore(0, 1, 2);
    MemoryImage img = takeSnapshot(sys, 0);
    sys.mstore(0, 0, 100);
    sys.lstore(1, 1, 200);
    restoreSnapshot(sys, 0, img);
    EXPECT_EQ(sys.load(1, 0), 1);
    EXPECT_EQ(sys.load(0, 1), 2);
}

TEST(Snapshot, SurvivesCrashesByConstruction)
{
    CxlSystem sys(manual());
    sys.lstore(1, 0, 42);
    MemoryImage img = takeSnapshot(sys, 1);
    sys.crash(0);
    sys.crash(1);
    // The snapshot was fully persistent, so the post-crash state
    // still matches it.
    EXPECT_EQ(sys.load(0, 0), img.memory[0]);
    EXPECT_EQ(img.memory[0], 42);
}

TEST(Snapshot, DiffFindsChangedCells)
{
    CxlSystem sys(manual());
    sys.mstore(0, 0, 1);
    MemoryImage img = takeSnapshot(sys, 0);
    sys.mstore(0, 2, 5);
    sys.lstore(1, 3, 6); // cached; diff's GPF will drain it
    auto changed = diffSnapshot(sys, 0, img);
    EXPECT_EQ(changed, (std::vector<cxl0::Addr>{2, 3}));
}

TEST(Snapshot, DiffOfUnchangedSystemIsEmpty)
{
    CxlSystem sys(manual());
    sys.mstore(0, 0, 1);
    MemoryImage img = takeSnapshot(sys, 0);
    EXPECT_TRUE(diffSnapshot(sys, 0, img).empty());
}

TEST(Snapshot, RestoreRejectsWrongShape)
{
    CxlSystem sys(manual());
    MemoryImage img;
    img.memory = {1, 2};
    EXPECT_THROW(restoreSnapshot(sys, 0, img), std::invalid_argument);
    EXPECT_THROW(diffSnapshot(sys, 0, img), std::invalid_argument);
}

TEST(Snapshot, RoundTripIdentity)
{
    CxlSystem sys(manual());
    for (cxl0::Addr x = 0; x < sys.config().numAddrs(); ++x)
        sys.mstore(0, x, static_cast<cxl0::Value>(x) * 3);
    MemoryImage a = takeSnapshot(sys, 0);
    restoreSnapshot(sys, 0, a);
    MemoryImage b = takeSnapshot(sys, 0);
    EXPECT_EQ(a, b);
}

} // namespace
