#include <gtest/gtest.h>

#include "model/topology.hh"
#include "runtime/system.hh"

namespace
{

using namespace cxl0::runtime;
using cxl0::kBottom;
using cxl0::model::MachineConfig;
using cxl0::model::ModelVariant;
using cxl0::model::SystemConfig;

SystemOptions
manualOptions(size_t nodes, size_t addrs_per_node, bool persistent)
{
    SystemOptions o(
        SystemConfig::uniform(nodes, addrs_per_node, persistent));
    o.policy = PropagationPolicy::Manual;
    return o;
}

TEST(System, AllocateHandsOutOwnedCells)
{
    CxlSystem sys(manualOptions(2, 3, true));
    for (int k = 0; k < 3; ++k) {
        cxl0::Addr x = sys.allocate(1);
        EXPECT_EQ(sys.config().ownerOf(x), 1);
    }
    EXPECT_EQ(sys.freeCells(1), 0u);
    EXPECT_EQ(sys.freeCells(0), 3u);
    EXPECT_THROW(sys.allocate(1), std::invalid_argument);
}

TEST(System, StoreLoadRoundTrip)
{
    CxlSystem sys(manualOptions(2, 1, true));
    sys.lstore(0, 0, 5);
    EXPECT_EQ(sys.load(0, 0), 5);
    EXPECT_EQ(sys.load(1, 0), 5); // coherence across nodes
}

TEST(System, LStoreStaysInCacheUnderManualPolicy)
{
    CxlSystem sys(manualOptions(2, 1, true));
    sys.lstore(1, 0, 7); // node 1 stores to node 0's address
    EXPECT_EQ(sys.peekCache(1, 0), 7);
    EXPECT_EQ(sys.peekMemory(0), 0);
}

TEST(System, MStoreReachesMemoryImmediately)
{
    CxlSystem sys(manualOptions(2, 1, true));
    sys.mstore(1, 0, 7);
    EXPECT_EQ(sys.peekMemory(0), 7);
    EXPECT_EQ(sys.peekCache(1, 0), kBottom);
}

TEST(System, RStoreLandsInOwnerCache)
{
    CxlSystem sys(manualOptions(2, 1, true));
    sys.rstore(1, 0, 9);
    EXPECT_EQ(sys.peekCache(0, 0), 9);
    EXPECT_EQ(sys.peekCache(1, 0), kBottom);
    EXPECT_EQ(sys.peekMemory(0), 0);
}

TEST(System, LFlushMovesLineOneHop)
{
    CxlSystem sys(manualOptions(2, 1, true));
    // Non-owner flush pushes the line to the owner's cache only
    // (litmus test 4's insufficiency).
    sys.lstore(1, 0, 3);
    sys.lflush(1, 0);
    EXPECT_EQ(sys.peekCache(1, 0), kBottom);
    EXPECT_EQ(sys.peekCache(0, 0), 3);
    EXPECT_EQ(sys.peekMemory(0), 0);
    // The owner's LFlush forces vertical propagation to memory.
    sys.lflush(0, 0);
    EXPECT_EQ(sys.peekCache(0, 0), kBottom);
    EXPECT_EQ(sys.peekMemory(0), 3);
}

TEST(System, RFlushForcesFullPersistence)
{
    CxlSystem sys(manualOptions(2, 1, true));
    sys.lstore(1, 0, 4);
    sys.rflush(1, 0);
    EXPECT_EQ(sys.peekMemory(0), 4);
    EXPECT_EQ(sys.peekCache(0, 0), kBottom);
    EXPECT_EQ(sys.peekCache(1, 0), kBottom);
}

TEST(System, GpfDrainsEverything)
{
    CxlSystem sys(manualOptions(2, 2, true));
    sys.lstore(0, 0, 1);
    sys.lstore(0, 2, 2); // node 1's address
    sys.lstore(1, 3, 3);
    sys.gpf(0);
    EXPECT_EQ(sys.peekMemory(0), 1);
    EXPECT_EQ(sys.peekMemory(2), 2);
    EXPECT_EQ(sys.peekMemory(3), 3);
    EXPECT_TRUE(sys.invariantHolds());
}

TEST(System, CasSemantics)
{
    CxlSystem sys(manualOptions(1, 1, true));
    auto r1 = sys.casL(0, 0, 0, 5);
    EXPECT_TRUE(r1.success);
    EXPECT_EQ(r1.previous, 0);
    auto r2 = sys.casL(0, 0, 0, 6);
    EXPECT_FALSE(r2.success);
    EXPECT_EQ(r2.previous, 5);
    EXPECT_EQ(sys.load(0, 0), 5);
}

TEST(System, CasMPersists)
{
    CxlSystem sys(manualOptions(2, 1, true));
    EXPECT_TRUE(sys.casM(1, 0, 0, 8).success);
    EXPECT_EQ(sys.peekMemory(0), 8);
}

TEST(System, FaaAccumulates)
{
    CxlSystem sys(manualOptions(1, 1, true));
    EXPECT_EQ(sys.faaL(0, 0, 3), 0);
    EXPECT_EQ(sys.faaL(0, 0, 4), 3);
    EXPECT_EQ(sys.load(0, 0), 7);
}

TEST(System, EagerPolicyDrainsEveryStore)
{
    SystemOptions o(SystemConfig::uniform(2, 1, true));
    o.policy = PropagationPolicy::Eager;
    CxlSystem sys(std::move(o));
    sys.lstore(1, 0, 6);
    EXPECT_EQ(sys.peekMemory(0), 6);
}

TEST(System, RandomPolicyEventuallyDrains)
{
    SystemOptions o(SystemConfig::uniform(2, 1, true));
    o.policy = PropagationPolicy::Random;
    o.evictionChancePct = 50;
    o.seed = 3;
    CxlSystem sys(std::move(o));
    sys.lstore(1, 0, 2);
    // Loads trigger eviction opportunities; eventually memory sees it.
    for (int k = 0; k < 200 && sys.peekMemory(0) != 2; ++k)
        sys.load(1, 0);
    EXPECT_EQ(sys.peekMemory(0), 2);
}

TEST(System, ClockAccumulatesCosts)
{
    CxlSystem sys(manualOptions(2, 1, true));
    double c0 = sys.clockNs();
    sys.lstore(0, 0, 1);
    double c1 = sys.clockNs();
    EXPECT_GT(c1, c0);
    sys.mstore(1, 0, 2); // remote MStore is the most expensive
    double c2 = sys.clockNs();
    EXPECT_GT(c2 - c1, c1 - c0);
    EXPECT_EQ(sys.opCount(), 2u);
}

TEST(System, RemoteAccessCostsMoreThanLocal)
{
    CxlSystem a(manualOptions(2, 1, true));
    CxlSystem b(manualOptions(2, 1, true));
    a.mstore(0, 0, 1); // owner: local persist
    b.mstore(1, 0, 1); // non-owner: remote persist
    EXPECT_LT(a.clockNs(), b.clockNs());
}

TEST(System, TopologyRestrictionsEnforced)
{
    using cxl0::model::makeSharedPool;
    auto m = makeSharedPool(2, 2, false); // bypass pool
    SystemOptions o(m.config());
    o.policy = PropagationPolicy::Manual;
    CxlSystem sys(std::move(o));
    // The runtime itself built from a plain config allows LStore; use
    // the restricted config path: stores via model must be permitted.
    // (Here we just check the unrestricted system accepts it, and the
    // restricted model path is covered in model tests.)
    sys.mstore(0, 0, 1);
    EXPECT_EQ(sys.load(1, 0), 1);
}

TEST(System, InvariantHoldsAfterMixedWorkload)
{
    SystemOptions o(SystemConfig::uniform(3, 2, true));
    o.policy = PropagationPolicy::Random;
    o.seed = 11;
    CxlSystem sys(std::move(o));
    cxl0::Rng rng(5);
    for (int k = 0; k < 500; ++k) {
        cxl0::NodeId by = static_cast<cxl0::NodeId>(rng.nextBelow(3));
        cxl0::Addr x = static_cast<cxl0::Addr>(rng.nextBelow(6));
        switch (rng.nextBelow(6)) {
          case 0: sys.lstore(by, x, rng.nextInRange(0, 9)); break;
          case 1: sys.rstore(by, x, rng.nextInRange(0, 9)); break;
          case 2: sys.mstore(by, x, rng.nextInRange(0, 9)); break;
          case 3: sys.load(by, x); break;
          case 4: sys.rflush(by, x); break;
          case 5: sys.faaL(by, x, 1); break;
        }
        ASSERT_TRUE(sys.invariantHolds());
    }
}

} // namespace
