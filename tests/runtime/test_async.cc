#include <gtest/gtest.h>

#include "runtime/system.hh"

namespace
{

using namespace cxl0::runtime;
using cxl0::kBottom;
using cxl0::model::SystemConfig;

SystemOptions
manual()
{
    SystemOptions o(SystemConfig::uniform(2, 8, true));
    o.policy = PropagationPolicy::Manual;
    return o;
}

TEST(AsyncFlush, NoEffectUntilFence)
{
    CxlSystem sys(manual());
    sys.lstore(1, 0, 5); // addr 0 owned by node 0
    sys.rflushAsync(1, 0);
    EXPECT_EQ(sys.peekMemory(0), 0);
    EXPECT_EQ(sys.peekCache(1, 0), 5);
    EXPECT_EQ(sys.pendingAsyncFlushes(1), 1u);
    sys.fence(1);
    EXPECT_EQ(sys.peekMemory(0), 5);
    EXPECT_EQ(sys.pendingAsyncFlushes(1), 0u);
}

TEST(AsyncFlush, BatchDrainsAllMarkedLines)
{
    CxlSystem sys(manual());
    for (cxl0::Addr x = 0; x < 4; ++x) {
        sys.lstore(1, x, 10 + x);
        sys.rflushAsync(1, x);
    }
    EXPECT_EQ(sys.pendingAsyncFlushes(1), 4u);
    sys.fence(1);
    for (cxl0::Addr x = 0; x < 4; ++x)
        EXPECT_EQ(sys.peekMemory(x), 10 + static_cast<cxl0::Value>(x));
}

TEST(AsyncFlush, BatchConfirmationIsAmortized)
{
    // N async flushes + one fence must charge less simulated time
    // than N synchronous RFlushes (the §3.2 motivation for adding
    // asynchronous flushes to the specification).
    SystemOptions o1 = manual(), o2 = manual();
    CxlSystem sync_sys(std::move(o1)), async_sys(std::move(o2));
    for (cxl0::Addr x = 0; x < 4; ++x) {
        sync_sys.lstore(1, x, 1);
        sync_sys.rflush(1, x);
        async_sys.lstore(1, x, 1);
        async_sys.rflushAsync(1, x);
    }
    async_sys.fence(1);
    EXPECT_LT(async_sys.clockNs(), sync_sys.clockNs());
    // Both end fully persistent.
    for (cxl0::Addr x = 0; x < 4; ++x) {
        EXPECT_EQ(sync_sys.peekMemory(x), 1);
        EXPECT_EQ(async_sys.peekMemory(x), 1);
    }
}

TEST(AsyncFlush, PendingFlushesDieWithTheMachine)
{
    CxlSystem sys(manual());
    sys.lstore(1, 0, 5);
    sys.rflushAsync(1, 0);
    sys.crash(1); // the issuer dies before fencing
    EXPECT_EQ(sys.pendingAsyncFlushes(1), 0u);
    EXPECT_EQ(sys.peekMemory(0), 0); // nothing persisted
}

TEST(AsyncFlush, FenceWithNothingPendingIsCheapNoOp)
{
    CxlSystem sys(manual());
    double before = sys.clockNs();
    sys.fence(0);
    EXPECT_DOUBLE_EQ(sys.clockNs(), before);
}

TEST(AsyncFlush, FenceFlushesLatestValue)
{
    // CLFLUSHOPT semantics: the fence persists whatever the line
    // holds at fence time, even if overwritten after the mark.
    CxlSystem sys(manual());
    sys.lstore(1, 0, 5);
    sys.rflushAsync(1, 0);
    sys.lstore(1, 0, 6);
    sys.fence(1);
    EXPECT_EQ(sys.peekMemory(0), 6);
}

TEST(AsyncFlush, PerNodeQueuesAreIndependent)
{
    CxlSystem sys(manual());
    sys.lstore(0, 0, 1);
    sys.rflushAsync(0, 0);
    sys.lstore(1, 4, 2); // addr 4 owned by node 1
    sys.rflushAsync(1, 4);
    sys.fence(0);
    EXPECT_EQ(sys.peekMemory(0), 1);
    EXPECT_EQ(sys.peekMemory(4), 0); // node 1 has not fenced
    sys.fence(1);
    EXPECT_EQ(sys.peekMemory(4), 2);
}

} // namespace
