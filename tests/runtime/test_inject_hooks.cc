/**
 * @file
 * Tests for the crash-injection hooks on CxlSystem (armed crashes,
 * step tracing, eviction record/replay) and for the determinism
 * guarantee the campaign rests on: identical options produce
 * byte-identical traces, histories, and cost totals.
 */

#include <gtest/gtest.h>

#include "ds/queue.hh"
#include "ds/stack.hh"
#include "runtime/system.hh"

namespace
{

using namespace cxl0::runtime;
using cxl0::NodeId;
using cxl0::Value;
using cxl0::model::Op;
using cxl0::model::SystemConfig;

SystemOptions
manual(SystemConfig cfg)
{
    SystemOptions o(std::move(cfg));
    o.policy = PropagationPolicy::Manual;
    return o;
}

SystemOptions
random_(SystemConfig cfg, uint64_t seed)
{
    SystemOptions o(std::move(cfg));
    o.policy = PropagationPolicy::Random;
    o.evictionChancePct = 50; // make propagation events likely
    o.seed = seed;
    return o;
}

TEST(ArmCrash, KillsIssuerAtArmedStep)
{
    CxlSystem sys(manual(SystemConfig::uniform(2, 2, true)));
    sys.enableStepTrace(true);
    sys.lstore(0, 0, 1); // step 0
    sys.armCrash(1, 0);  // fire before step 1
    EXPECT_FALSE(sys.armedCrashesFired());
    bool killed = false;
    try {
        sys.lstore(0, 1, 2); // step 1, issued by the crashed machine
    } catch (const ThreadKilled &k) {
        killed = true;
        EXPECT_EQ(k.node, 0);
        EXPECT_EQ(k.step, 1u);
    }
    EXPECT_TRUE(killed);
    EXPECT_TRUE(sys.armedCrashesFired());
    EXPECT_EQ(sys.epoch(0), 1u);
    // The preempted primitive is still recorded, so the campaign can
    // name the crashed-at primitive kind.
    auto trace = sys.stepTrace();
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[1].op, Op::LStore);
    // The preempted store must NOT have executed.
    EXPECT_EQ(sys.load(1, 1), 0);
}

TEST(ArmCrash, OtherMachinesIssuerSurvives)
{
    CxlSystem sys(manual(SystemConfig::uniform(2, 2, true)));
    sys.lstore(0, 0, 1); // step 0
    sys.armCrash(1, 1);  // crash machine 1 before step 1
    // Step 1 is issued by machine 0: the crash applies, but the
    // primitive proceeds (its issuer survived).
    EXPECT_NO_THROW(sys.lstore(0, 1, 2));
    EXPECT_TRUE(sys.armedCrashesFired());
    EXPECT_EQ(sys.epoch(1), 1u);
    EXPECT_EQ(sys.epoch(0), 0u);
    EXPECT_EQ(sys.peekCache(0, 1), 2);
}

TEST(ArmCrash, UnreachedStepNeverFires)
{
    CxlSystem sys(manual(SystemConfig::uniform(2, 1, true)));
    sys.armCrash(100, 0);
    sys.lstore(0, 0, 1);
    EXPECT_FALSE(sys.armedCrashesFired());
    EXPECT_EQ(sys.epoch(0), 0u);
}

TEST(EvictionReplay, ReproducesRecordedSchedule)
{
    SystemConfig cfg = SystemConfig::uniform(2, 4, true);
    auto program = [](CxlSystem &sys) {
        for (int round = 0; round < 8; ++round) {
            sys.lstore(1, static_cast<cxl0::Addr>(round % 4),
                       round + 1);
            sys.load(1, static_cast<cxl0::Addr>(round % 4));
        }
    };

    // Record a random propagation schedule...
    CxlSystem rec(random_(cfg, 42));
    rec.enableStepTrace(true);
    program(rec);
    std::vector<EvictEvent> schedule = rec.evictionTrace();
    ASSERT_FALSE(schedule.empty())
        << "chance 50% over 16 ops should evict at least once";

    // ...and replay it on a Manual-policy system: the end states
    // agree, which only happens when the schedule actually drove the
    // same propagation.
    CxlSystem rep(manual(cfg));
    rep.setEvictionReplay(schedule);
    program(rep);
    for (cxl0::Addr x = 0; x < 4; ++x) {
        EXPECT_EQ(rep.peekMemory(x), rec.peekMemory(x)) << "addr " << x;
        for (NodeId n = 0; n < 2; ++n)
            EXPECT_EQ(rep.peekCache(n, x), rec.peekCache(n, x))
                << "node " << n << " addr " << x;
    }
}

TEST(EvictionReplay, SkipsEventsWhoseLineIsGone)
{
    CxlSystem sys(manual(SystemConfig::uniform(2, 2, true)));
    // Event for a line that will not be cached: replay must skip it
    // gracefully rather than fault.
    sys.setEvictionReplay({EvictEvent{0, 1, 1}});
    sys.lstore(0, 0, 5);
    EXPECT_EQ(sys.peekCache(0, 0), 5);
    EXPECT_EQ(sys.load(0, 0), 5);
}

/**
 * One seeded stack workload; returns (step trace, evictions, clock,
 * opCount) for determinism comparison.
 */
struct RunFingerprint
{
    std::vector<StepRecord> steps;
    std::vector<EvictEvent> evictions;
    double clockNs = 0.0;
    uint64_t ops = 0;

    bool operator==(const RunFingerprint &other) const
    {
        return steps == other.steps && evictions == other.evictions &&
               clockNs == other.clockNs && ops == other.ops;
    }
};

template <typename Workload>
RunFingerprint
fingerprint(uint64_t seed, Workload &&workload)
{
    SystemOptions o(SystemConfig::uniform(2, 64, true));
    o.policy = PropagationPolicy::Random;
    o.evictionChancePct = 30;
    o.seed = seed;
    CxlSystem sys(o);
    sys.enableStepTrace(true);
    workload(sys);
    RunFingerprint fp;
    fp.steps = sys.stepTrace();
    fp.evictions = sys.evictionTrace();
    fp.clockNs = sys.clockNs();
    fp.ops = sys.opCount();
    return fp;
}

TEST(Determinism, StackSameSeedSameRun)
{
    auto workload = [](CxlSystem &sys) {
        cxl0::flit::FlitRuntime rt(sys,
                                   cxl0::flit::PersistMode::FlitCxl0);
        cxl0::ds::TreiberStack stack(rt, 0);
        for (Value v = 1; v <= 6; ++v)
            stack.push(1, v);
        for (int i = 0; i < 3; ++i)
            stack.pop(0);
    };
    for (uint64_t seed : {7ull, 1234ull}) {
        RunFingerprint a = fingerprint(seed, workload);
        RunFingerprint b = fingerprint(seed, workload);
        EXPECT_TRUE(a == b) << "seed " << seed;
        EXPECT_GT(a.ops, 0u);
        EXPECT_GT(a.clockNs, 0.0) << "calibrated cost model charges";
    }
    // Different seeds must (here: do) give different schedules — the
    // fingerprint is sensitive enough to distinguish them.
    auto w7 = fingerprint(7, workload);
    auto w1234 = fingerprint(1234, workload);
    EXPECT_FALSE(w7.evictions == w1234.evictions);
}

TEST(Determinism, QueueSameSeedSameRun)
{
    auto workload = [](CxlSystem &sys) {
        cxl0::flit::FlitRuntime rt(sys,
                                   cxl0::flit::PersistMode::PersistAll);
        cxl0::ds::MsQueue queue(rt, 0);
        for (Value v = 1; v <= 6; ++v)
            queue.enqueue(1, v);
        for (int i = 0; i < 3; ++i)
            queue.dequeue(0);
    };
    for (uint64_t seed : {3ull, 99ull}) {
        RunFingerprint a = fingerprint(seed, workload);
        RunFingerprint b = fingerprint(seed, workload);
        EXPECT_TRUE(a == b) << "seed " << seed;
        EXPECT_GT(a.ops, 0u);
        EXPECT_GT(a.clockNs, 0.0);
    }
}

} // namespace
