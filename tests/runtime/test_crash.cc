#include <gtest/gtest.h>

#include "runtime/system.hh"

namespace
{

using namespace cxl0::runtime;
using cxl0::kBottom;
using cxl0::model::MachineConfig;
using cxl0::model::ModelVariant;
using cxl0::model::SystemConfig;

SystemOptions
manual(SystemConfig cfg)
{
    SystemOptions o(std::move(cfg));
    o.policy = PropagationPolicy::Manual;
    return o;
}

TEST(Crash, CacheLostMemoryKeptWhenPersistent)
{
    CxlSystem sys(manual(SystemConfig::uniform(2, 1, true)));
    sys.mstore(0, 0, 5);
    sys.lstore(0, 0, 9); // newer value only in cache
    sys.crash(0);
    EXPECT_EQ(sys.peekCache(0, 0), kBottom);
    EXPECT_EQ(sys.load(0, 0), 5); // rolled back to persisted value
}

TEST(Crash, VolatileMemoryResets)
{
    CxlSystem sys(manual(SystemConfig::uniform(2, 1, false)));
    sys.mstore(0, 0, 5);
    sys.crash(0);
    EXPECT_EQ(sys.load(0, 0), 0);
}

TEST(Crash, RemoteCrashDoesNotAffectLocalMemory)
{
    CxlSystem sys(manual(SystemConfig::uniform(2, 1, false)));
    sys.mstore(0, 0, 5); // addr 0 owned by node 0
    sys.crash(1);
    EXPECT_EQ(sys.load(0, 0), 5);
}

TEST(Crash, EpochAdvances)
{
    CxlSystem sys(manual(SystemConfig::uniform(2, 1, true)));
    EXPECT_EQ(sys.epoch(0), 0u);
    sys.crash(0);
    sys.crash(0);
    sys.crash(1);
    EXPECT_EQ(sys.epoch(0), 2u);
    EXPECT_EQ(sys.epoch(1), 1u);
}

TEST(Crash, ReproducesLitmusTest1)
{
    // RStore1(x1,1); E1; Load1(x1,0) is executable on the runtime.
    CxlSystem sys(manual(SystemConfig::uniform(1, 1, true)));
    sys.rstore(0, 0, 1);
    sys.crash(0);
    EXPECT_EQ(sys.load(0, 0), 0);
}

TEST(Crash, ReproducesLitmusTest2)
{
    // MStore survives the crash.
    CxlSystem sys(manual(SystemConfig::uniform(1, 1, true)));
    sys.mstore(0, 0, 1);
    sys.crash(0);
    EXPECT_EQ(sys.load(0, 0), 1);
}

TEST(Crash, ReproducesLitmusTest4And5)
{
    // LFlush to a remote owner's cache does not survive the owner's
    // crash; RFlush does.
    SystemConfig cfg = SystemConfig::uniform(2, 1, true); // x on node 0
    {
        CxlSystem sys(manual(cfg));
        sys.lstore(1, 0, 1);
        sys.lflush(1, 0);
        sys.crash(0);
        EXPECT_EQ(sys.load(1, 0), 0); // test 4: value lost
    }
    {
        CxlSystem sys(manual(cfg));
        sys.lstore(1, 0, 1);
        sys.rflush(1, 0);
        sys.crash(0);
        EXPECT_EQ(sys.load(1, 0), 1); // test 5: value persisted
    }
}

TEST(Crash, PsnPoisonsRemoteCopies)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    SystemOptions o(cfg);
    o.policy = PropagationPolicy::Manual;
    o.variant = ModelVariant::Psn;
    CxlSystem sys(std::move(o));
    sys.lstore(1, 0, 1); // node 1 caches node 0's line
    sys.crash(0);
    EXPECT_EQ(sys.peekCache(1, 0), kBottom); // poisoned
    EXPECT_EQ(sys.load(1, 0), 0);
}

TEST(Crash, BaseKeepsRemoteCopies)
{
    CxlSystem sys(manual(SystemConfig::uniform(2, 1, true)));
    sys.lstore(1, 0, 1);
    sys.crash(0);
    EXPECT_EQ(sys.peekCache(1, 0), 1);
    EXPECT_EQ(sys.load(1, 0), 1);
}

TEST(Crash, LwbLoadWaitsForDrain)
{
    SystemConfig cfg = SystemConfig::uniform(2, 1, true);
    SystemOptions o(cfg);
    o.policy = PropagationPolicy::Manual;
    o.variant = ModelVariant::Lwb;
    CxlSystem sys(std::move(o));
    sys.lstore(1, 0, 1);
    // Node 0's load blocks on node 1's copy; the runtime performs the
    // drain, so the load returns the (now persistent) value.
    EXPECT_EQ(sys.load(0, 0), 1);
    EXPECT_EQ(sys.peekMemory(0), 1);
    // After the forced drain, the owner's crash cannot lose it.
    sys.crash(0);
    EXPECT_EQ(sys.load(1, 0), 1);
}

TEST(Crash, MotivatingExampleOnRuntime)
{
    // §6's program: x=1; r1=x; r2=x with x on a remote machine that
    // crashes in between — r1 != r2 is observable on the runtime.
    CxlSystem sys(manual(SystemConfig::uniform(2, 1, true)));
    sys.lstore(1, 0, 1);         // M1 stores to x (on M2 = node 0)
    cxl0::Value r1 = sys.load(1, 0);
    sys.evictOne();              // the line drifts to the owner's cache
    sys.crash(0);                // M2 crashes before it persists
    cxl0::Value r2 = sys.load(1, 0);
    EXPECT_EQ(r1, 1);
    EXPECT_EQ(r2, 0);            // assertion r1 == r2 violated
}

TEST(Crash, UnknownNodeRejected)
{
    CxlSystem sys(manual(SystemConfig::uniform(1, 1, true)));
    EXPECT_THROW(sys.crash(7), std::invalid_argument);
}

} // namespace
