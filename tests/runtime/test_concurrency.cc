#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/system.hh"

namespace
{

using namespace cxl0::runtime;
using cxl0::Value;
using cxl0::model::SystemConfig;

TEST(Concurrency, FaaFromManyThreadsIsExact)
{
    SystemOptions o(SystemConfig::uniform(2, 1, true));
    o.policy = PropagationPolicy::Random;
    o.seed = 7;
    CxlSystem sys(std::move(o));

    constexpr int kThreads = 4;
    constexpr int kIncrs = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&sys, t] {
            cxl0::NodeId by = static_cast<cxl0::NodeId>(t % 2);
            for (int k = 0; k < kIncrs; ++k)
                sys.faaL(by, 0, 1);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(sys.load(0, 0), kThreads * kIncrs);
    EXPECT_TRUE(sys.invariantHolds());
}

TEST(Concurrency, CasWinnersAreUnique)
{
    SystemOptions o(SystemConfig::uniform(2, 1, true));
    o.policy = PropagationPolicy::Random;
    o.seed = 13;
    CxlSystem sys(std::move(o));

    constexpr int kThreads = 8;
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&sys, &winners, t] {
            cxl0::NodeId by = static_cast<cxl0::NodeId>(t % 2);
            if (sys.casL(by, 0, 0, t + 1).success)
                winners.fetch_add(1);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(winners.load(), 1);
}

TEST(Concurrency, CoherenceUnderMixedTraffic)
{
    SystemOptions o(SystemConfig::uniform(3, 2, true));
    o.policy = PropagationPolicy::Random;
    o.evictionChancePct = 30;
    o.seed = 23;
    CxlSystem sys(std::move(o));

    std::atomic<bool> broken{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&sys, &broken, t] {
            cxl0::Rng rng(100 + t);
            cxl0::NodeId by = static_cast<cxl0::NodeId>(t);
            for (int k = 0; k < 300; ++k) {
                cxl0::Addr x =
                    static_cast<cxl0::Addr>(rng.nextBelow(6));
                switch (rng.nextBelow(5)) {
                  case 0: sys.lstore(by, x, rng.nextInRange(1, 5));
                          break;
                  case 1: sys.mstore(by, x, rng.nextInRange(1, 5));
                          break;
                  case 2: sys.load(by, x); break;
                  case 3: sys.rflush(by, x); break;
                  case 4: sys.faaL(by, x, 1); break;
                }
                if (!sys.invariantHolds())
                    broken.store(true);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_FALSE(broken.load());
}

TEST(Concurrency, CrashDuringTrafficKeepsInvariant)
{
    SystemOptions o(SystemConfig::uniform(2, 2, true));
    o.policy = PropagationPolicy::Random;
    o.seed = 31;
    CxlSystem sys(std::move(o));

    std::atomic<bool> stop{false};
    std::thread mutator([&] {
        cxl0::Rng rng(41);
        while (!stop.load()) {
            cxl0::Addr x = static_cast<cxl0::Addr>(rng.nextBelow(4));
            sys.lstore(1, x, rng.nextInRange(1, 9));
            sys.load(1, x);
        }
    });
    for (int k = 0; k < 20; ++k) {
        sys.crash(0);
        EXPECT_TRUE(sys.invariantHolds());
        std::this_thread::yield();
    }
    stop.store(true);
    mutator.join();
    EXPECT_EQ(sys.epoch(0), 20u);
    EXPECT_TRUE(sys.invariantHolds());
}

TEST(Concurrency, ReadsNeverObserveTornOrForeignValues)
{
    // Writers only ever write their own tag; readers must only
    // observe written tags or the initial 0.
    SystemOptions o(SystemConfig::uniform(2, 1, true));
    o.policy = PropagationPolicy::Random;
    o.seed = 53;
    CxlSystem sys(std::move(o));

    std::atomic<bool> stop{false};
    std::atomic<bool> bad{false};
    std::thread w1([&] {
        while (!stop.load())
            sys.lstore(0, 0, 100);
    });
    std::thread w2([&] {
        while (!stop.load())
            sys.mstore(1, 0, 200);
    });
    std::thread r([&] {
        for (int k = 0; k < 2000; ++k) {
            Value v = sys.load(1, 0);
            if (v != 0 && v != 100 && v != 200)
                bad.store(true);
        }
        stop.store(true);
    });
    w1.join();
    w2.join();
    r.join();
    EXPECT_FALSE(bad.load());
}

} // namespace
