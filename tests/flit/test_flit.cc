#include <gtest/gtest.h>

#include "flit/flit.hh"

namespace
{

using namespace cxl0::flit;
using namespace cxl0::runtime;
using cxl0::kBottom;
using cxl0::Value;
using cxl0::model::SystemConfig;

CxlSystem
makeSystem()
{
    SystemOptions o(SystemConfig::uniform(2, 16, true));
    o.policy = PropagationPolicy::Manual;
    return CxlSystem(std::move(o));
}

TEST(Flit, ModeNamesAndDurabilityFlags)
{
    EXPECT_STREQ(persistModeName(PersistMode::FlitCxl0), "flit-cxl0");
    EXPECT_STREQ(persistModeName(PersistMode::PersistAll),
                 "persist-all");
    EXPECT_TRUE(modeIsDurable(PersistMode::FlitCxl0));
    EXPECT_TRUE(modeIsDurable(PersistMode::FlitCxl0AddrOpt));
    EXPECT_TRUE(modeIsDurable(PersistMode::PersistAll));
    EXPECT_FALSE(modeIsDurable(PersistMode::None));
    EXPECT_FALSE(modeIsDurable(PersistMode::FlitOriginal));
}

TEST(Flit, CounterAllocatedOnlyWhenNeeded)
{
    CxlSystem sys = makeSystem();
    FlitRuntime flit_rt(sys, PersistMode::FlitCxl0);
    FlitRuntime none_rt(sys, PersistMode::None);
    EXPECT_NE(flit_rt.allocateShared(0).counter, cxl0::kNullAddr);
    EXPECT_EQ(none_rt.allocateShared(0).counter, cxl0::kNullAddr);
}

TEST(Flit, SharedStorePersistsUnderFlitCxl0)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    SharedWord w = rt.allocateShared(0);
    rt.sharedStore(1, w, 42); // non-owner writes
    // Alg. 2: LStore + RFlush — the value must be in owner memory.
    EXPECT_EQ(sys.peekMemory(w.data), 42);
}

TEST(Flit, SharedStoreWithoutPflagStaysInCache)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    SharedWord w = rt.allocateShared(0);
    rt.sharedStore(1, w, 42, /*pflag=*/false);
    EXPECT_EQ(sys.peekMemory(w.data), 0);
    EXPECT_EQ(sys.peekCache(1, w.data), 42);
}

TEST(Flit, FlitOriginalLeavesRemoteValueUnpersisted)
{
    // The ported Alg. 1 only reaches the owner's *cache* for remote
    // addresses (litmus test 4's gap).
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitOriginal);
    SharedWord w = rt.allocateShared(0);
    rt.sharedStore(1, w, 42);
    EXPECT_EQ(sys.peekMemory(w.data), 0);      // not persistent!
    EXPECT_EQ(sys.peekCache(0, w.data), 42);   // owner's cache only
}

TEST(Flit, AddrOptPersistsForBothOwnerAndRemote)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0AddrOpt);
    SharedWord w0 = rt.allocateShared(0);
    SharedWord w1 = rt.allocateShared(1);
    rt.sharedStore(0, w0, 7);  // owner path: LFlush
    rt.sharedStore(0, w1, 8);  // remote path: RFlush
    EXPECT_EQ(sys.peekMemory(w0.data), 7);
    EXPECT_EQ(sys.peekMemory(w1.data), 8);
}

TEST(Flit, PersistAllUsesMStore)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::PersistAll);
    SharedWord w = rt.allocateShared(0);
    rt.sharedStore(1, w, 9);
    EXPECT_EQ(sys.peekMemory(w.data), 9);
    EXPECT_EQ(rt.flushCount(), 0u); // no explicit flushes needed
}

TEST(Flit, NoneModeNeverFlushes)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::None);
    SharedWord w = rt.allocateShared(0);
    rt.sharedStore(1, w, 9);
    EXPECT_EQ(sys.peekMemory(w.data), 0);
    EXPECT_EQ(rt.flushCount(), 0u);
}

TEST(Flit, CounterReturnsToZeroAfterStore)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    SharedWord w = rt.allocateShared(0);
    rt.sharedStore(1, w, 5);
    EXPECT_EQ(sys.load(0, w.counter), 0);
}

TEST(Flit, SharedLoadHelpsWhenCounterPositive)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    SharedWord w = rt.allocateShared(0);
    // Simulate an in-flight store: counter raised, value only cached.
    sys.faaL(1, w.counter, 1);
    sys.lstore(1, w.data, 33);
    uint64_t flushes_before = rt.flushCount();
    Value v = rt.sharedLoad(0, w);
    EXPECT_EQ(v, 33);
    EXPECT_EQ(rt.flushCount(), flushes_before + 1); // helped
    EXPECT_EQ(sys.peekMemory(w.data), 33);          // persisted
}

TEST(Flit, SharedLoadSkipsHelpWhenCounterZero)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    SharedWord w = rt.allocateShared(0);
    rt.sharedStore(1, w, 5);
    uint64_t flushes_before = rt.flushCount();
    rt.sharedLoad(0, w);
    EXPECT_EQ(rt.flushCount(), flushes_before);
}

TEST(Flit, SharedCasPersistsOnSuccessOnly)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    SharedWord w = rt.allocateShared(0);
    EXPECT_FALSE(rt.sharedCas(1, w, 5, 6).success);
    EXPECT_EQ(sys.peekMemory(w.data), 0);
    EXPECT_TRUE(rt.sharedCas(1, w, 0, 6).success);
    EXPECT_EQ(sys.peekMemory(w.data), 6);
}

TEST(Flit, SharedFaaPersists)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    SharedWord w = rt.allocateShared(0);
    EXPECT_EQ(rt.sharedFaa(1, w, 4), 0);
    EXPECT_EQ(rt.sharedFaa(0, w, 3), 4);
    EXPECT_EQ(sys.peekMemory(w.data), 7);
}

TEST(Flit, PrivateStoreRespectsPflag)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    cxl0::Addr a = sys.allocate(0);
    rt.privateStore(1, a, 3, /*pflag=*/true);
    EXPECT_EQ(sys.peekMemory(a), 3);
    cxl0::Addr b = sys.allocate(0);
    rt.privateStore(1, b, 4, /*pflag=*/false);
    EXPECT_EQ(sys.peekMemory(b), 0);
    EXPECT_EQ(rt.privateLoad(1, b), 4);
}

TEST(Flit, AddrOptFlushesCheaperForOwnedWords)
{
    // The §6.1 optimization saves simulated time on owned locations.
    CxlSystem sys_plain = makeSystem();
    CxlSystem sys_opt = makeSystem();
    FlitRuntime plain(sys_plain, PersistMode::FlitCxl0);
    FlitRuntime opt(sys_opt, PersistMode::FlitCxl0AddrOpt);
    SharedWord wp = plain.allocateShared(0);
    SharedWord wo = opt.allocateShared(0);
    for (int k = 0; k < 50; ++k) {
        plain.sharedStore(0, wp, k);
        opt.sharedStore(0, wo, k);
    }
    EXPECT_LE(sys_opt.clockNs(), sys_plain.clockNs());
}

} // namespace
