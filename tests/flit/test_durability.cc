/**
 * @file
 * Crash-durability behaviour of the transformation modes (§6).
 *
 * The central claims: the adapted FliT (Alg. 2) makes completed
 * operations survive any single-machine crash, the naive port of the
 * original FliT does not, and the always-MStore baseline is also safe.
 */

#include <gtest/gtest.h>

#include "ds/kv.hh"
#include "flit/flit.hh"

namespace
{

using namespace cxl0::flit;
using namespace cxl0::runtime;
using cxl0::Value;
using cxl0::model::SystemConfig;

CxlSystem
makeSystem(uint64_t seed = 1)
{
    SystemOptions o(SystemConfig::uniform(2, 2048, true));
    o.policy = PropagationPolicy::Manual;
    o.seed = seed;
    return CxlSystem(std::move(o));
}

/** Write by a remote machine, crash the owner, read back. */
Value
writeCrashRead(PersistMode mode)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, mode);
    cxl0::ds::DurableRegister reg(rt, /*home=*/0);
    reg.write(/*by=*/1, 77);
    // Let the cache line drift toward the owner (worst case for
    // non-durable modes), then crash the owner.
    sys.drainAll();          // harmless for durable modes
    sys.crash(0);
    return reg.read(1);
}

TEST(Durability, FlitCxl0SurvivesOwnerCrash)
{
    EXPECT_EQ(writeCrashRead(PersistMode::FlitCxl0), 77);
}

TEST(Durability, AddrOptSurvivesOwnerCrash)
{
    EXPECT_EQ(writeCrashRead(PersistMode::FlitCxl0AddrOpt), 77);
}

TEST(Durability, PersistAllSurvivesOwnerCrash)
{
    EXPECT_EQ(writeCrashRead(PersistMode::PersistAll), 77);
}

/** The unsound modes: value lost when it was still mid-propagation. */
Value
writeEvictCrashRead(PersistMode mode)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, mode);
    cxl0::ds::DurableRegister reg(rt, 0);
    reg.write(1, 77);
    // One propagation hop: writer cache -> owner cache. A FliT
    // original "flush" already did exactly this much.
    sys.evictOne();
    sys.crash(0);
    return reg.read(1);
}

TEST(Durability, FlitOriginalLosesCompletedWrite)
{
    // The operation COMPLETED (write returned), yet the value is gone
    // — a durable-linearizability violation of the naive port.
    EXPECT_EQ(writeEvictCrashRead(PersistMode::FlitOriginal), 0);
}

TEST(Durability, NoneModeLosesCompletedWrite)
{
    EXPECT_EQ(writeEvictCrashRead(PersistMode::None), 0);
}

TEST(Durability, FlitOriginalIsExactlyLitmusTest4)
{
    // Make the correspondence explicit: original-FliT write ==
    // LStore + LFlush, which test 4 shows is insufficient when the
    // owner crashes.
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitOriginal);
    SharedWord w = rt.allocateShared(0);
    rt.sharedStore(1, w, 1);             // LStore1 + LFlush1
    EXPECT_EQ(sys.peekCache(0, w.data), 1); // owner cache has it
    sys.crash(0);                        // E_owner
    EXPECT_EQ(sys.load(1, w.data), 0);   // Load1(x, 0) — allowed
}

TEST(Durability, ObservedValuePersistsBeforeDependentWrite)
{
    // Litmus test 8/9's lesson through the transformation: with
    // FliT-CXL0, reading a value *helps persist it* when its store is
    // still in flight, so a dependent write cannot outlive it.
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    SharedWord x = rt.allocateShared(1); // x on machine 1
    SharedWord y = rt.allocateShared(0); // y on machine 0

    // Machine 0 starts a store to x but crashes mid-operation: the
    // counter is raised and the value is cached but not yet flushed.
    sys.faaL(0, x.counter, 1);
    sys.lstore(0, x.data, 1);

    // Machine 1 reads x (sees 1, helps persist), then writes y=x.
    Value rx = rt.sharedLoad(1, x);
    EXPECT_EQ(rx, 1);
    rt.sharedStore(1, y, rx);

    // Now machine 0 (the writer) and machine 1 both crash.
    sys.crash(0);
    sys.crash(1);

    // Recovery must not observe y=1 with x=0 (test 8's anomaly).
    Value x_after = sys.load(0, x.data);
    Value y_after = sys.load(0, y.data);
    EXPECT_FALSE(y_after == 1 && x_after == 0)
        << "dependent write persisted without its source";
    EXPECT_EQ(x_after, 1);
    EXPECT_EQ(y_after, 1);
}

TEST(Durability, KvStoreSurvivesCrashWithFlit)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::FlitCxl0);
    cxl0::ds::KvStore kv(rt, 0, 8);
    for (Value k = 1; k <= 10; ++k)
        kv.put(1, k, k * 100);
    kv.remove(1, 3);
    sys.crash(0); // the home node crashes
    sys.crash(1); // and the writer too
    EXPECT_EQ(kv.size(0), 9);
    for (Value k = 1; k <= 10; ++k) {
        auto v = kv.get(0, k);
        if (k == 3) {
            EXPECT_FALSE(v.has_value());
        } else {
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ(*v, k * 100);
        }
    }
}

TEST(Durability, KvStoreCorruptsWithoutDurability)
{
    CxlSystem sys = makeSystem();
    FlitRuntime rt(sys, PersistMode::None);
    cxl0::ds::KvStore kv(rt, 0, 8);
    for (Value k = 1; k <= 5; ++k)
        kv.put(1, k, k * 100);
    // Push the writer's lines one hop (into the owner's cache), then
    // crash the owner before anything reaches memory.
    sys.evictCacheOf(1);
    sys.crash(0);
    size_t survivors = 0;
    for (Value k = 1; k <= 5; ++k)
        survivors += kv.get(1, k).has_value();
    EXPECT_LT(survivors, 5u);
}

} // namespace
