/**
 * @file
 * Corpus quickstart: author a scenario in the DSL, run it, lock it.
 *
 * Walks the full loop the corpus is built on: parse a scenario text,
 * explore it through the unified check API, compare the reachable
 * outcomes against the declared anchors, and print the canonical
 * form a corpus file would carry. The same loop batch-drives whole
 * directories via the cxl0check CLI:
 *
 *   cxl0check --corpus corpus/litmus --threads 2
 *
 *   ./corpus_quickstart
 */

#include <cstdio>

#include "lang/run.hh"
#include "lang/scenario.hh"

using namespace cxl0;

namespace
{

// Litmus test 4 in the DSL: LStore + LFlush only reach the remote
// owner's cache, so the owner's crash may lose the value. The expect
// block locks both read-backs as the exact reachable set.
const char *kScenario = R"(litmus "quickstart: LFlush to remote cache"

machine 0 nvmm
machine 1 nvmm
addr x @ 1

registers 1
crash node 1 max 1

thread 0 on 0 {
  lstore x 1
  lflush x
  r0 = load x
}

expect exact {
  ( 0 )
  ( 1 )
}
)";

} // namespace

int
main()
{
    // 1. Parse. Errors come back as file:line:col diagnostics.
    lang::ParseResult parsed = lang::parseScenario(kScenario);
    if (!parsed.ok()) {
        std::fprintf(stderr, "parse error: %s\n",
                     parsed.error->render("quickstart").c_str());
        return 1;
    }
    const lang::Scenario &sc = parsed.scenario;
    std::printf("parsed \"%s\": %zu machine(s), %zu location(s), "
                "%zu thread(s)\n",
                sc.name.c_str(), sc.machinePersistent.size(),
                sc.addrNames.size(), sc.program.threads.size());

    // 2. Run: the explorer enumerates every interleaving, tau
    // placement, and crash schedule, then the declared anchors are
    // checked against the reachable outcome set.
    lang::RunOptions opts;
    opts.numThreads = 2;
    lang::RunResult run = lang::runScenario(sc, opts);
    std::printf("%s\n", run.describe().c_str());
    for (const check::Outcome &o : run.report.outcomes)
        std::printf("  reachable: %s\n", o.describe().c_str());

    // 3. Dump the canonical form — what `cxl0check --export` writes
    // into corpus/litmus/ and the anti-drift test pins.
    std::printf("\ncanonical form:\n%s",
                lang::dumpScenario(sc).c_str());
    return run.pass ? 0 : 1;
}
