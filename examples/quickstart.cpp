/**
 * @file
 * Quickstart: the CXL0 primitives on a two-machine system.
 *
 * Walks through the store/flush hierarchy of §3.2 — LStore vs RStore
 * vs MStore, LFlush vs RFlush — a crash, and the FliT-transformed
 * durable register of §6 that makes the anomaly impossible.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "ds/kv.hh"
#include "flit/flit.hh"
#include "runtime/system.hh"

using namespace cxl0;

int
main()
{
    // Two machines with non-volatile memory, 16 cells each. Manual
    // propagation: cache lines move only when flushed (worst case).
    runtime::SystemOptions opts(
        model::SystemConfig::uniform(2, 16, true));
    opts.policy = runtime::PropagationPolicy::Manual;
    runtime::CxlSystem sys(std::move(opts));

    // x lives on machine 0; machine 1 will write to it.
    Addr x = sys.allocate(0);
    std::printf("allocated x on machine %u\n", sys.config().ownerOf(x));

    // 1. LStore completes in the writer's cache: fast but fragile.
    sys.lstore(1, x, 41);
    std::printf("after LStore1(x,41):  cache(M1)=%lld, memory=%lld\n",
                static_cast<long long>(sys.peekCache(1, x)),
                static_cast<long long>(sys.peekMemory(x)));

    // 2. RFlush forces the value all the way to the owner's memory.
    sys.rflush(1, x);
    std::printf("after RFlush1(x):     cache(M1)=bottom, memory=%lld\n",
                static_cast<long long>(sys.peekMemory(x)));

    // 3. MStore persists in one step.
    sys.mstore(1, x, 42);
    std::printf("after MStore1(x,42):  memory=%lld\n",
                static_cast<long long>(sys.peekMemory(x)));

    // 4. A crash of machine 0 wipes its cache; NVMM survives.
    sys.lstore(0, x, 99); // newer value, cached only
    sys.crash(0);
    std::printf("after LStore0(x,99) and a crash of machine 0: "
                "load=%lld (99 was lost, 42 persisted)\n",
                static_cast<long long>(sys.load(1, x)));

    // 5. The §6 transformation makes durability automatic: every
    //    completed write survives any single-machine crash.
    flit::FlitRuntime rt(sys, flit::PersistMode::FlitCxl0);
    ds::DurableRegister reg(rt, 0);
    reg.write(1, 7);
    sys.crash(0);
    sys.crash(1);
    std::printf("durable register after crashing both machines: "
                "read=%lld\n",
                static_cast<long long>(reg.read(0)));

    std::printf("quickstart done\n");
    return 0;
}
