/**
 * @file
 * Disaggregated memory pools (Fig. 4b) in both flavours.
 *
 * Part 1 — partitioned pool: each host extends its memory with a
 * private partition that survives the host's own crash (checkpoint /
 * restart pattern).
 *
 * Part 2 — shared pool without coherence: only the cache-bypassing
 * primitives are available (§4); we run a work-queue handoff between
 * two hosts through the pool using M-RMWs.
 *
 *   ./memory_pool
 */

#include <cstdio>

#include "model/topology.hh"
#include "runtime/system.hh"

using namespace cxl0;

namespace
{

void
partitionedPoolDemo()
{
    std::printf("-- partitioned pool: per-host checkpointing --\n");
    // Two hosts, 8 cells of pool partition each; partitions live in
    // an external failure domain.
    model::Cxl0Model m = model::makePartitionedPool(2, 8);
    runtime::SystemOptions opts = runtime::SystemOptions::fromModel(m);
    opts.policy = runtime::PropagationPolicy::Manual;
    runtime::CxlSystem sys(std::move(opts));

    // Host 0 computes a running sum, checkpointing every step with
    // MStore (its partition's cells persist across its crashes).
    Addr checkpoint = sys.allocate(0);
    Value sum = 0;
    for (Value step = 1; step <= 5; ++step) {
        sum += step;
        sys.mstore(0, checkpoint, sum);
    }
    std::printf("host 0 checkpointed sum=%lld, then crashes...\n",
                static_cast<long long>(sum));
    sys.crash(0);
    Value recovered = sys.load(0, checkpoint);
    std::printf("host 0 recovers sum=%lld from its partition\n\n",
                static_cast<long long>(recovered));
}

void
sharedPoolDemo()
{
    std::printf("-- shared pool (non-coherent): M-RMW work handoff --\n");
    // Two hosts + a pool node owning every cell; no coherent caching,
    // so the runtime uses only MStore / LOAD-from-M / M-RMW.
    model::Cxl0Model m = model::makeSharedPool(2, 8, /*coherent=*/false);
    runtime::SystemOptions opts = runtime::SystemOptions::fromModel(m);
    opts.policy = runtime::PropagationPolicy::Manual;
    runtime::CxlSystem sys(std::move(opts));

    Addr lock = sys.allocate(2);   // 0 = free, else holder+1
    Addr work = sys.allocate(2);   // the shared accumulator

    // Each host grabs the lock with an M-RMW (the only atomic
    // available without coherence), bumps the accumulator, releases.
    for (int round = 0; round < 6; ++round) {
        NodeId host = static_cast<NodeId>(round % 2);
        while (!sys.casM(host, lock, 0, host + 1).success) {
            // spin: in the bypass pool every retry is a memory RMW
        }
        Value v = sys.load(host, work);
        sys.mstore(host, work, v + 1);
        sys.mstore(host, lock, 0);
    }
    std::printf("6 critical sections later: work=%lld\n",
                static_cast<long long>(sys.load(0, work)));

    // Even a crash of both hosts loses nothing: everything already
    // lives in pool memory.
    sys.crash(0);
    sys.crash(1);
    std::printf("after both hosts crash: work=%lld (pool is its own "
                "failure domain)\n\n",
                static_cast<long long>(sys.load(1, work)));
}

} // namespace

int
main()
{
    partitionedPoolDemo();
    sharedPoolDemo();
    std::printf("memory_pool done\n");
    return 0;
}
