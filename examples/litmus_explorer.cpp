/**
 * @file
 * Interactive litmus-test explorer for the CXL0 model.
 *
 * Runs the paper's 13 litmus tests under all three model variants and
 * prints the verdict matrix; with a test number as argument it also
 * shows the reachable states after each prefix of the trace — a
 * debugging view of how a value propagates (or dies) step by step.
 *
 *   ./litmus_explorer        # the full matrix
 *   ./litmus_explorer 4      # step-through of test 4
 */

#include <cstdio>
#include <cstdlib>

#include "check/litmus.hh"
#include "common/stats.hh"

using namespace cxl0;
using namespace cxl0::check;
using model::ModelVariant;

namespace
{

const char *
mark(Verdict v)
{
    return v == Verdict::Allowed ? "v" : "x";
}

void
stepThrough(const LitmusTest &t, ModelVariant variant)
{
    std::printf("test %d (%s) under %s:\n", t.id, t.name.c_str(),
                model::variantName(variant));
    std::printf("config: %s\n", t.config.describe().c_str());
    model::Cxl0Model m(t.config, variant);

    // The unified Request/Report API in one line: verdict, stats,
    // and (for infeasible traces) the blocking label.
    CheckReport report = checkTraceFeasible(m, t.trace);
    std::printf("report: %s\n\n", report.describe().c_str());

    TraceChecker checker(m);
    for (size_t len = 0; len <= t.trace.size(); ++len) {
        std::vector<model::Label> prefix(t.trace.begin(),
                                         t.trace.begin() + len);
        auto states = checker.statesAfter(m.initialState(), prefix);
        if (len > 0)
            std::printf("after %s:\n",
                        t.trace[len - 1].describe().c_str());
        else
            std::printf("initially:\n");
        if (states.empty()) {
            std::printf("  (no reachable state: trace infeasible "
                        "from here)\n");
            break;
        }
        size_t shown = 0;
        for (const auto &s : states) {
            std::printf("  %s\n", s.describe().c_str());
            if (++shown == 6 && states.size() > 6) {
                std::printf("  ... and %zu more\n", states.size() - 6);
                break;
            }
        }
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    auto tests = allTests();

    if (argc > 1) {
        int id = std::atoi(argv[1]);
        for (const LitmusTest &t : tests) {
            if (t.id == id) {
                stepThrough(t, ModelVariant::Base);
                return 0;
            }
        }
        std::printf("no test %d (valid: 1-13)\n", id);
        return 1;
    }

    TextTable table({"#", "trace", "CXL0", "LWB", "PSN", "paper"});
    for (const LitmusTest &t : tests) {
        std::string paper = std::string(mark(t.expectBase)) + "," +
                            mark(t.expectLwb) + "," + mark(t.expectPsn);
        table.addRow({std::to_string(t.id),
                      model::describeTrace(t.trace),
                      mark(runLitmus(t, ModelVariant::Base)),
                      mark(runLitmus(t, ModelVariant::Lwb)),
                      mark(runLitmus(t, ModelVariant::Psn)), paper});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("v = behaviour allowed, x = forbidden. Run with a "
                "test number (1-13) for a step-through.\n");
    return 0;
}
