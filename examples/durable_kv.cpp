/**
 * @file
 * A crash-tolerant key-value store on disaggregated CXL memory.
 *
 * The intro's motivating scenario: compute nodes keep session data in
 * a KV store whose cells live on a remote memory node. Machines crash
 * at random while clients keep issuing puts/gets; thanks to the §6
 * transformation, every *completed* operation survives, and we verify
 * the final state against a shadow model maintained outside the
 * crashy system.
 *
 *   ./durable_kv [seed]
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/rng.hh"
#include "ds/kv.hh"
#include "flit/flit.hh"
#include "runtime/system.hh"

using namespace cxl0;

int
main(int argc, char **argv)
{
    uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

    // Three machines: two compute nodes and one memory node holding
    // the KV cells (all persistent — the pool is its own failure
    // domain, Fig. 4b).
    runtime::SystemOptions opts(
        model::SystemConfig::uniform(3, 1 << 16, true));
    opts.policy = runtime::PropagationPolicy::Random;
    opts.seed = seed;
    runtime::CxlSystem sys(std::move(opts));
    flit::FlitRuntime rt(sys, flit::PersistMode::FlitCxl0);
    ds::KvStore kv(rt, /*home=*/2, /*buckets=*/64);

    std::map<Value, Value> shadow; // completed operations only
    Rng rng(seed);

    std::printf("running 400 operations with random crashes "
                "(seed %llu)...\n",
                static_cast<unsigned long long>(seed));
    int crashes = 0;
    for (int op = 0; op < 400; ++op) {
        NodeId client = static_cast<NodeId>(rng.nextBelow(2));
        Value key = rng.nextInRange(0, 31);
        if (rng.chance(3, 100)) {
            // A machine dies: compute node or even the memory node.
            NodeId victim = static_cast<NodeId>(rng.nextBelow(3));
            sys.crash(victim);
            ++crashes;
            continue;
        }
        switch (rng.nextBelow(3)) {
          case 0: {
            Value val = rng.nextInRange(1, 999);
            kv.put(client, key, val);
            shadow[key] = val; // the put completed
            break;
          }
          case 1:
            kv.remove(client, key);
            shadow.erase(key);
            break;
          case 2: {
            auto got = kv.get(client, key);
            auto want = shadow.find(key);
            bool match = want == shadow.end()
                             ? !got.has_value()
                             : (got && *got == want->second);
            if (!match) {
                std::printf("CONSISTENCY VIOLATION at op %d key %lld\n",
                            op, static_cast<long long>(key));
                return 1;
            }
            break;
          }
        }
    }

    std::printf("survived %d crashes; verifying final state...\n",
                crashes);
    sys.crash(0); // one last crash of everything compute-side
    sys.crash(1);

    size_t checked = 0;
    for (const auto &[key, val] : shadow) {
        auto got = kv.get(0, key);
        if (!got || *got != val) {
            std::printf("LOST completed put: key %lld\n",
                        static_cast<long long>(key));
            return 1;
        }
        ++checked;
    }
    if (static_cast<size_t>(kv.size(0)) != shadow.size()) {
        std::printf("size mismatch: kv=%lld shadow=%zu\n",
                    static_cast<long long>(kv.size(0)), shadow.size());
        return 1;
    }
    std::printf("all %zu completed entries recovered intact "
                "(kv size %lld)\n",
                checked, static_cast<long long>(kv.size(0)));
    std::printf("simulated time: %.1f us over %llu primitives\n",
                sys.clockNs() / 1000.0,
                static_cast<unsigned long long>(sys.opCount()));
    return 0;
}
