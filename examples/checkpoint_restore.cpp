/**
 * @file
 * Checkpoint / rollback with GPF snapshots (paper §3.2's note that
 * "a carefully designed algorithm may still employ GPF for snapshots,
 * thanks to its global and blocking properties").
 *
 * A two-machine pipeline computes in stages over shared CXL memory.
 * Before each stage it takes a global snapshot; when a stage is
 * interrupted by a crash (detected via the node epoch), it rolls back
 * to the last snapshot and re-executes — coarse-grained fault
 * tolerance with zero per-object instrumentation, complementing the
 * fine-grained FliT transformation of §6.
 *
 *   ./checkpoint_restore [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "common/rng.hh"
#include "runtime/snapshot.hh"
#include "runtime/system.hh"

using namespace cxl0;
using runtime::CxlSystem;
using runtime::MemoryImage;

namespace
{

constexpr int kStages = 6;
constexpr int kCellsPerStage = 8;

/** One pipeline stage: derive stage s values from stage s-1. */
void
runStage(CxlSystem &sys, int stage)
{
    for (int k = 0; k < kCellsPerStage; ++k) {
        Addr src = static_cast<Addr>((stage - 1) * kCellsPerStage + k);
        Addr dst = static_cast<Addr>(stage * kCellsPerStage + k);
        Value v = stage == 0 ? k + 1 : sys.load(0, src);
        // LStores only: fast, but vulnerable until the next snapshot.
        sys.lstore(0, dst, v * 2 + 1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
    Rng rng(seed);

    // Machine 0 computes; machine 1 owns the shared memory.
    runtime::SystemOptions opts(model::SystemConfig(
        {model::MachineConfig{false}, model::MachineConfig{true}},
        std::vector<NodeId>(kStages * kCellsPerStage, 1)));
    opts.policy = runtime::PropagationPolicy::Manual;
    CxlSystem sys(std::move(opts));

    MemoryImage checkpoint = runtime::takeSnapshot(sys, 0);
    int crashes_survived = 0;

    for (int stage = 0; stage < kStages; ++stage) {
        for (;;) {
            uint64_t epoch_before = sys.epoch(1);
            runStage(sys, stage);
            // A crash may strike before the stage's snapshot: here,
            // injected with 40% probability per attempt.
            if (rng.chance(2, 5)) {
                // The stage's uncommitted LStores drift toward the
                // memory owner... which then dies mid-pipeline.
                sys.evictCacheOf(0);
                sys.crash(1);
                ++crashes_survived;
            }
            if (sys.epoch(1) != epoch_before) {
                std::printf("stage %d interrupted by a crash — "
                            "rolling back\n", stage);
                runtime::restoreSnapshot(sys, 0, checkpoint);
                continue; // re-execute the stage
            }
            // Stage completed: commit it with a global snapshot.
            checkpoint = runtime::takeSnapshot(sys, 0);
            std::printf("stage %d committed (snapshot of %zu cells)\n",
                        stage, checkpoint.memory.size());
            break;
        }
    }

    // Verify the pipeline result: value(stage s) = 2*value(s-1)+1.
    bool ok = true;
    for (int k = 0; k < kCellsPerStage; ++k) {
        Value expect = k + 1;
        for (int stage = 0; stage < kStages; ++stage)
            expect = expect * 2 + 1;
        // runStage(0) already applies one doubling to k+1.
        Addr final_cell =
            static_cast<Addr>((kStages - 1) * kCellsPerStage + k);
        Value got = sys.load(0, final_cell);
        if (got != expect) {
            std::printf("cell %d: got %lld, want %lld\n", k,
                        static_cast<long long>(got),
                        static_cast<long long>(expect));
            ok = false;
        }
    }
    std::printf("%s after %d injected crashes\n",
                ok ? "pipeline result correct" : "PIPELINE CORRUPTED",
                crashes_survived);
    return ok ? 0 : 1;
}
