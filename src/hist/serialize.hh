/**
 * @file
 * Plain-text history serialization for campaign artifacts.
 *
 * The crash-injection campaign (src/inject) persists every shrunk
 * failure as a replayable artifact; the history section uses this
 * format so a human can read the counterexample and the replayer can
 * re-check it without re-executing the workload. One op per line:
 *
 *   op <threadId> <name> <arg> <arg2> <invokeStamp> <respStamp|-> <ret|->
 *
 * `-` marks a pending operation (no response). Blank lines and lines
 * starting with `#` are skipped.
 */

#ifndef CXL0_HIST_SERIALIZE_HH
#define CXL0_HIST_SERIALIZE_HH

#include <optional>
#include <string>
#include <vector>

#include "hist/history.hh"

namespace cxl0::hist
{

/** Render `ops` in the artifact line format (one op per line). */
std::string dumpHistory(const std::vector<OpRecord> &ops);

/**
 * Parse a history dump produced by dumpHistory.
 *
 * @param text the serialized history (possibly with comments)
 * @param error when parsing fails, receives a "line N: ..."
 *        diagnostic (may be nullptr)
 * @return the parsed ops, or nullopt on malformed input
 */
std::optional<std::vector<OpRecord>>
parseHistory(const std::string &text, std::string *error);

} // namespace cxl0::hist

#endif // CXL0_HIST_SERIALIZE_HH
