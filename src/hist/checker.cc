#include "hist/checker.hh"

#include <chrono>
#include <limits>
#include <unordered_set>

#include "common/logging.hh"

namespace cxl0::hist
{

namespace
{

class Search
{
  public:
    Search(const std::vector<OpRecord> &ops, const SequentialSpec &spec,
           uint64_t time_budget_ms)
        : ops_(ops), root_(spec.clone())
    {
        if (time_budget_ms > 0) {
            hasDeadline_ = true;
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(time_budget_ms);
        }
    }

    bool
    run(std::vector<std::string> &witness)
    {
        return dfs(0, *root_, witness);
    }

    bool timedOut() const { return timedOut_; }

  private:
    bool
    outOfTime()
    {
        if (!hasDeadline_ || timedOut_)
            return timedOut_;
        // Amortize the clock read over a batch of DFS nodes.
        if (++sinceCheck_ < 256)
            return false;
        sinceCheck_ = 0;
        if (std::chrono::steady_clock::now() >= deadline_)
            timedOut_ = true;
        return timedOut_;
    }

    bool
    dfs(uint64_t handled, SequentialSpec &spec,
        std::vector<std::string> &witness)
    {
        if (handled == (uint64_t{1} << ops_.size()) - 1)
            return true;
        if (outOfTime())
            return false;
        std::string key =
            std::to_string(handled) + "|" + spec.fingerprint();
        if (!visited_.insert(key).second)
            return false;

        // Minimal-response stamp among unhandled completed ops: an op
        // may linearize next only if it was invoked before every
        // unhandled response.
        uint64_t min_resp = std::numeric_limits<uint64_t>::max();
        for (size_t i = 0; i < ops_.size(); ++i) {
            if (handled & (uint64_t{1} << i))
                continue;
            if (ops_[i].responseStamp)
                min_resp = std::min(min_resp, *ops_[i].responseStamp);
        }

        for (size_t i = 0; i < ops_.size(); ++i) {
            if (handled & (uint64_t{1} << i))
                continue;
            if (ops_[i].invokeStamp >= min_resp)
                continue;
            uint64_t next = handled | (uint64_t{1} << i);
            // Branch 1: take the operation.
            std::unique_ptr<SequentialSpec> copy = spec.clone();
            if (copy->apply(ops_[i])) {
                witness.push_back(ops_[i].describe());
                if (dfs(next, *copy, witness))
                    return true;
                witness.pop_back();
            }
            // Branch 2: drop it (legal only for pending invocations).
            if (ops_[i].pending()) {
                witness.push_back(ops_[i].describe() + " [omitted]");
                if (dfs(next, spec, witness))
                    return true;
                witness.pop_back();
            }
        }
        return false;
    }

    const std::vector<OpRecord> &ops_;
    std::unique_ptr<SequentialSpec> root_;
    std::unordered_set<std::string> visited_;
    bool hasDeadline_ = false;
    bool timedOut_ = false;
    uint32_t sinceCheck_ = 0;
    std::chrono::steady_clock::time_point deadline_;
};

} // namespace

LinResult
checkLinearizable(const std::vector<OpRecord> &ops,
                  const SequentialSpec &spec, const LinOptions &options)
{
    LinResult result;
    size_t bound = std::min<size_t>(options.maxOps, 63);
    if (ops.size() > bound) {
        result.linearizable = false;
        result.truncated = true;
        result.explanation = "history too large for exhaustive check (" +
                             std::to_string(ops.size()) + " ops, bound " +
                             std::to_string(bound) + ")";
        return result;
    }
    Search search(ops, spec, options.timeBudgetMs);
    std::vector<std::string> witness;
    if (search.run(witness)) {
        result.linearizable = true;
        result.witness = std::move(witness);
    } else if (search.timedOut()) {
        result.linearizable = false;
        result.truncated = true;
        result.explanation = "search exceeded time budget (" +
                             std::to_string(options.timeBudgetMs) +
                             " ms, " + std::to_string(ops.size()) +
                             " ops)";
    } else {
        result.linearizable = false;
        result.explanation =
            "no valid linearization of:\n" + describeHistory(ops);
    }
    return result;
}

} // namespace cxl0::hist
