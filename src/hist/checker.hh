/**
 * @file
 * Wing-Gong style linearizability checker with pending-op handling.
 *
 * Durable linearizability (§6, after Izraelevitz et al.) of a crashy
 * history reduces to plain linearizability of the same history with
 * crash events removed; operations whose thread died stay pending, and
 * the definition permits completing a pending invocation with any
 * legal result or omitting it. checkLinearizable implements exactly
 * that: completed operations must all be placed in real-time order,
 * pending operations may be placed (unconstrained result) or dropped.
 */

#ifndef CXL0_HIST_CHECKER_HH
#define CXL0_HIST_CHECKER_HH

#include <string>
#include <vector>

#include "hist/history.hh"
#include "hist/spec.hh"

namespace cxl0::hist
{

/** Checker outcome. */
struct LinResult
{
    bool linearizable = false;
    /**
     * The search did not complete: the history exceeded the op bound
     * or the time budget ran out mid-DFS. When set, `linearizable`
     * is false but means "unknown", not "violation".
     */
    bool truncated = false;
    /** A witness linearization (op descriptions) when found. */
    std::vector<std::string> witness;
    /** Diagnostic when not linearizable or truncated. */
    std::string explanation;
};

/** Resource bounds for the (exponential) linearizability search. */
struct LinOptions
{
    /** Histories with more operations yield a truncated result. */
    size_t maxOps = 24;
    /** Wall-clock cap on the search in milliseconds; 0 = unbounded. */
    uint64_t timeBudgetMs = 0;
};

/**
 * Decide linearizability of `ops` against `spec`.
 *
 * @param ops the recorded history (completed + pending operations)
 * @param spec the sequential specification (not mutated)
 * @param options resource bounds; exceeding them produces a result
 *        with `truncated` set rather than an error
 */
LinResult checkLinearizable(const std::vector<OpRecord> &ops,
                            const SequentialSpec &spec,
                            const LinOptions &options);

/** Convenience overload bounding only the op count. */
inline LinResult
checkLinearizable(const std::vector<OpRecord> &ops,
                  const SequentialSpec &spec, size_t max_ops = 24)
{
    LinOptions options;
    options.maxOps = max_ops;
    return checkLinearizable(ops, spec, options);
}

/**
 * Durable-linearizability convenience wrapper: crash events were
 * already removed by construction (HistoryRecorder never records
 * them); this simply documents intent at call sites.
 */
inline LinResult
checkDurablyLinearizable(const std::vector<OpRecord> &ops,
                         const SequentialSpec &spec, size_t max_ops = 24)
{
    return checkLinearizable(ops, spec, max_ops);
}

/** Durable-linearizability wrapper with full resource bounds. */
inline LinResult
checkDurablyLinearizable(const std::vector<OpRecord> &ops,
                         const SequentialSpec &spec,
                         const LinOptions &options)
{
    return checkLinearizable(ops, spec, options);
}

} // namespace cxl0::hist

#endif // CXL0_HIST_CHECKER_HH
