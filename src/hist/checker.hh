/**
 * @file
 * Wing-Gong style linearizability checker with pending-op handling.
 *
 * Durable linearizability (§6, after Izraelevitz et al.) of a crashy
 * history reduces to plain linearizability of the same history with
 * crash events removed; operations whose thread died stay pending, and
 * the definition permits completing a pending invocation with any
 * legal result or omitting it. checkLinearizable implements exactly
 * that: completed operations must all be placed in real-time order,
 * pending operations may be placed (unconstrained result) or dropped.
 */

#ifndef CXL0_HIST_CHECKER_HH
#define CXL0_HIST_CHECKER_HH

#include <string>
#include <vector>

#include "hist/history.hh"
#include "hist/spec.hh"

namespace cxl0::hist
{

/** Checker outcome. */
struct LinResult
{
    bool linearizable = false;
    /** A witness linearization (op descriptions) when found. */
    std::vector<std::string> witness;
    /** Diagnostic when not linearizable. */
    std::string explanation;
};

/**
 * Decide linearizability of `ops` against `spec`.
 *
 * @param ops the recorded history (completed + pending operations)
 * @param spec the sequential specification (not mutated)
 * @param max_ops safety bound; histories larger than this are
 *        rejected with an error (the search is exponential)
 */
LinResult checkLinearizable(const std::vector<OpRecord> &ops,
                            const SequentialSpec &spec,
                            size_t max_ops = 24);

/**
 * Durable-linearizability convenience wrapper: crash events were
 * already removed by construction (HistoryRecorder never records
 * them); this simply documents intent at call sites.
 */
inline LinResult
checkDurablyLinearizable(const std::vector<OpRecord> &ops,
                         const SequentialSpec &spec, size_t max_ops = 24)
{
    return checkLinearizable(ops, spec, max_ops);
}

} // namespace cxl0::hist

#endif // CXL0_HIST_CHECKER_HH
