/**
 * @file
 * Sequential specifications for the objects in src/ds.
 *
 * A spec is a small state machine: apply() attempts one operation with
 * a return-value constraint and reports whether it is legal in the
 * current state (mutating the state when it is). A nullopt constraint
 * (pending operation taken by the checker) accepts any legal result.
 */

#ifndef CXL0_HIST_SPEC_HH
#define CXL0_HIST_SPEC_HH

#include <memory>
#include <optional>
#include <string>

#include "common/types.hh"
#include "hist/history.hh"

namespace cxl0::hist
{

/** Interface all sequential specifications implement. */
class SequentialSpec
{
  public:
    virtual ~SequentialSpec() = default;

    /** Deep copy for checker branching. */
    virtual std::unique_ptr<SequentialSpec> clone() const = 0;

    /**
     * Try one operation.
     * @param op operation record (ret may be nullopt = unconstrained)
     * @return whether the operation with that result is legal here
     */
    virtual bool apply(const OpRecord &op) = 0;

    /** Canonical state encoding for checker memoization. */
    virtual std::string fingerprint() const = 0;
};

/** LIFO stack: push(v)=0, pop()=v | kEmptyRet. */
std::unique_ptr<SequentialSpec> makeStackSpec();

/** FIFO queue: enqueue(v)=0, dequeue()=v | kEmptyRet. */
std::unique_ptr<SequentialSpec> makeQueueSpec();

/** Set: add(v)=0|1, remove(v)=0|1, contains(v)=0|1. */
std::unique_ptr<SequentialSpec> makeSetSpec();

/** Map: put(k,v)=0, get(k)=v | kEmptyRet, remove(k)=0|1. */
std::unique_ptr<SequentialSpec> makeMapSpec();

/** Register: write(v)=0, read()=v. */
std::unique_ptr<SequentialSpec> makeRegisterSpec(Value initial = 0);

/** Counter: add(d)=old, read()=v. */
std::unique_ptr<SequentialSpec> makeCounterSpec(Value initial = 0);

/**
 * Append-only log with crash holes: append(v)=slot | kEmptyRet when
 * full, get(slot)=v | kEmptyRet. A pending append burns the next slot
 * in an undetermined (limbo) state; the first get observing it pins
 * the outcome.
 */
std::unique_ptr<SequentialSpec> makeLogSpec(size_t capacity);

/** KV store facade: put(k,v)=fresh?1:0, get(k)=v | kEmptyRet,
 *  remove(k)=present?1:0. */
std::unique_ptr<SequentialSpec> makeKvSpec();

} // namespace cxl0::hist

#endif // CXL0_HIST_SPEC_HH
