#include "hist/serialize.hh"

#include <sstream>

namespace cxl0::hist
{

namespace
{

/** A bare op name must survive a whitespace-tokenized round trip. */
bool
nameSerializable(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name)
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            return false;
    return true;
}

} // namespace

std::string
dumpHistory(const std::vector<OpRecord> &ops)
{
    std::ostringstream os;
    for (const OpRecord &op : ops) {
        os << "op " << op.threadId << " "
           << (nameSerializable(op.op) ? op.op : std::string("?")) << " "
           << op.arg << " " << op.arg2 << " " << op.invokeStamp << " ";
        if (op.responseStamp)
            os << *op.responseStamp;
        else
            os << "-";
        os << " ";
        if (op.ret)
            os << *op.ret;
        else
            os << "-";
        os << "\n";
    }
    return os.str();
}

std::optional<std::vector<OpRecord>>
parseHistory(const std::string &text, std::string *error)
{
    auto fail = [&](size_t line, const std::string &why)
        -> std::optional<std::vector<OpRecord>> {
        if (error)
            *error = "line " + std::to_string(line) + ": " + why;
        return std::nullopt;
    };

    std::vector<OpRecord> ops;
    std::istringstream is(text);
    std::string line;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        lineno += 1;
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag) || tag[0] == '#')
            continue;
        if (tag != "op")
            return fail(lineno, "expected 'op', got '" + tag + "'");
        OpRecord op;
        std::string resp;
        std::string ret;
        if (!(ls >> op.threadId >> op.op >> op.arg >> op.arg2 >>
              op.invokeStamp >> resp >> ret))
            return fail(lineno, "malformed op record");
        std::string extra;
        if (ls >> extra)
            return fail(lineno, "trailing token '" + extra + "'");
        if (resp != "-") {
            uint64_t stamp = 0;
            std::istringstream rs(resp);
            if (!(rs >> stamp) || !rs.eof())
                return fail(lineno, "bad response stamp '" + resp + "'");
            op.responseStamp = stamp;
        }
        if (ret != "-") {
            Value v = 0;
            std::istringstream vs(ret);
            if (!(vs >> v) || !vs.eof())
                return fail(lineno, "bad return value '" + ret + "'");
            op.ret = v;
        }
        if (op.responseStamp.has_value() != op.ret.has_value())
            return fail(lineno,
                        "response stamp and return must both be set "
                        "or both pending");
        ops.push_back(std::move(op));
    }
    return ops;
}

} // namespace cxl0::hist
