/**
 * @file
 * Concurrent-history recording (paper §6: abstract histories).
 *
 * A history is a sequence of invocation and response events (crash
 * events are handled by *removing* them, per the durable
 * linearizability definition of Izraelevitz et al. that §6 adopts:
 * a history is durably linearizable iff it is well formed and
 * linearizable after all crash events are removed). Operations whose
 * thread died before responding stay *pending*; the linearizability
 * definition lets the checker either complete them with any legal
 * result or omit them.
 */

#ifndef CXL0_HIST_HISTORY_HH
#define CXL0_HIST_HISTORY_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cxl0::hist
{

/** The recorded return of a stack pop on empty / absent map get. */
constexpr Value kEmptyRet = -1;

/** One high-level operation in a history. */
struct OpRecord
{
    int threadId = 0;
    std::string op;      //!< e.g. "push", "pop", "put", "get"
    Value arg = 0;       //!< operation argument (0 when none)
    Value arg2 = 0;      //!< second argument (map put value)
    /** Response value; nullopt = pending (thread crashed or still
     *  running). Void operations record 0. */
    std::optional<Value> ret;
    uint64_t invokeStamp = 0;
    /** Response stamp; nullopt while pending. */
    std::optional<uint64_t> responseStamp;

    bool pending() const { return !responseStamp.has_value(); }

    std::string describe() const;
};

/** Thread-safe recorder producing totally-stamped histories. */
class HistoryRecorder
{
  public:
    /**
     * Record an invocation; returns the op handle to pass to
     * respond().
     */
    size_t invoke(int thread_id, std::string op, Value arg = 0,
                  Value arg2 = 0);

    /** Record the matching response. */
    void respond(size_t handle, Value ret);

    /** Number of operations recorded (completed + pending). */
    size_t size() const;

    /** Snapshot of the history so far. */
    std::vector<OpRecord> snapshot() const;

    /** Pending operation count (threads that never responded). */
    size_t pendingCount() const;

  private:
    mutable std::mutex mu_;
    std::vector<OpRecord> ops_;
    uint64_t stamp_ = 0;
};

/** Render a history, one op per line (diagnostics). */
std::string describeHistory(const std::vector<OpRecord> &ops);

} // namespace cxl0::hist

#endif // CXL0_HIST_HISTORY_HH
