#include "hist/spec.hh"

#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace cxl0::hist
{

namespace
{

/** Accept when the constraint is absent or equals the actual result. */
bool
retMatches(const std::optional<Value> &constraint, Value actual)
{
    return !constraint || *constraint == actual;
}

class StackSpec : public SequentialSpec
{
  public:
    std::unique_ptr<SequentialSpec>
    clone() const override
    {
        return std::make_unique<StackSpec>(*this);
    }

    bool
    apply(const OpRecord &op) override
    {
        if (op.op == "push") {
            if (!retMatches(op.ret, 0))
                return false;
            items_.push_back(op.arg);
            return true;
        }
        if (op.op == "pop") {
            if (items_.empty())
                return retMatches(op.ret, kEmptyRet);
            if (!retMatches(op.ret, items_.back()))
                return false;
            items_.pop_back();
            return true;
        }
        return false;
    }

    std::string
    fingerprint() const override
    {
        std::ostringstream os;
        os << "stk:";
        for (Value v : items_)
            os << v << ",";
        return os.str();
    }

  private:
    std::vector<Value> items_;
};

class QueueSpec : public SequentialSpec
{
  public:
    std::unique_ptr<SequentialSpec>
    clone() const override
    {
        return std::make_unique<QueueSpec>(*this);
    }

    bool
    apply(const OpRecord &op) override
    {
        if (op.op == "enqueue") {
            if (!retMatches(op.ret, 0))
                return false;
            items_.push_back(op.arg);
            return true;
        }
        if (op.op == "dequeue") {
            if (items_.empty())
                return retMatches(op.ret, kEmptyRet);
            if (!retMatches(op.ret, items_.front()))
                return false;
            items_.pop_front();
            return true;
        }
        return false;
    }

    std::string
    fingerprint() const override
    {
        std::ostringstream os;
        os << "q:";
        for (Value v : items_)
            os << v << ",";
        return os.str();
    }

  private:
    std::deque<Value> items_;
};

class SetSpec : public SequentialSpec
{
  public:
    std::unique_ptr<SequentialSpec>
    clone() const override
    {
        return std::make_unique<SetSpec>(*this);
    }

    bool
    apply(const OpRecord &op) override
    {
        bool present = items_.count(op.arg) > 0;
        if (op.op == "add") {
            if (!retMatches(op.ret, present ? 0 : 1))
                return false;
            items_.insert(op.arg);
            return true;
        }
        if (op.op == "remove") {
            if (!retMatches(op.ret, present ? 1 : 0))
                return false;
            items_.erase(op.arg);
            return true;
        }
        if (op.op == "contains")
            return retMatches(op.ret, present ? 1 : 0);
        return false;
    }

    std::string
    fingerprint() const override
    {
        std::ostringstream os;
        os << "set:";
        for (Value v : items_)
            os << v << ",";
        return os.str();
    }

  private:
    std::set<Value> items_;
};

class MapSpec : public SequentialSpec
{
  public:
    std::unique_ptr<SequentialSpec>
    clone() const override
    {
        return std::make_unique<MapSpec>(*this);
    }

    bool
    apply(const OpRecord &op) override
    {
        auto it = items_.find(op.arg);
        if (op.op == "put") {
            if (!retMatches(op.ret, 0))
                return false;
            items_[op.arg] = op.arg2;
            return true;
        }
        if (op.op == "get") {
            Value expect = it == items_.end() ? kEmptyRet : it->second;
            return retMatches(op.ret, expect);
        }
        if (op.op == "remove") {
            bool present = it != items_.end();
            if (!retMatches(op.ret, present ? 1 : 0))
                return false;
            if (present)
                items_.erase(it);
            return true;
        }
        return false;
    }

    std::string
    fingerprint() const override
    {
        std::ostringstream os;
        os << "map:";
        for (const auto &[k, v] : items_)
            os << k << "=" << v << ",";
        return os.str();
    }

  private:
    std::map<Value, Value> items_;
};

class RegisterSpec : public SequentialSpec
{
  public:
    explicit RegisterSpec(Value initial) : value_(initial) {}

    std::unique_ptr<SequentialSpec>
    clone() const override
    {
        return std::make_unique<RegisterSpec>(*this);
    }

    bool
    apply(const OpRecord &op) override
    {
        if (op.op == "write") {
            if (!retMatches(op.ret, 0))
                return false;
            value_ = op.arg;
            return true;
        }
        if (op.op == "read")
            return retMatches(op.ret, value_);
        if (op.op == "cas") {
            bool ok = value_ == op.arg;
            if (!retMatches(op.ret, ok ? 1 : 0))
                return false;
            if (ok)
                value_ = op.arg2;
            return true;
        }
        return false;
    }

    std::string
    fingerprint() const override
    {
        return "reg:" + std::to_string(value_);
    }

  private:
    Value value_;
};

class CounterSpec : public SequentialSpec
{
  public:
    explicit CounterSpec(Value initial) : value_(initial) {}

    std::unique_ptr<SequentialSpec>
    clone() const override
    {
        return std::make_unique<CounterSpec>(*this);
    }

    bool
    apply(const OpRecord &op) override
    {
        if (op.op == "add") {
            if (!retMatches(op.ret, value_))
                return false;
            value_ += op.arg;
            return true;
        }
        if (op.op == "read")
            return retMatches(op.ret, value_);
        return false;
    }

    std::string
    fingerprint() const override
    {
        return "ctr:" + std::to_string(value_);
    }

  private:
    Value value_;
};

/**
 * Append-only log with crash holes (ds::DurableLog). Slot reservation
 * order IS linearization order (the FAA on the tail), so a completed
 * append's returned index must equal the next slot. An appender that
 * died between reservation and publication leaves the slot in limbo:
 * taking its pending append burns the next slot with an undetermined
 * content, and the first get() observing that slot collapses it to
 * published (saw the value) or hole (saw empty) — both are legal
 * outcomes of the interrupted publish.
 */
class LogSpec : public SequentialSpec
{
  public:
    explicit LogSpec(size_t capacity) : capacity_(capacity) {}

    std::unique_ptr<SequentialSpec>
    clone() const override
    {
        return std::make_unique<LogSpec>(*this);
    }

    bool
    apply(const OpRecord &op) override
    {
        if (op.op == "append") {
            if (next_ >= capacity_) {
                // Full: the reservation is burned either way.
                if (!retMatches(op.ret, kEmptyRet))
                    return false;
                next_ += 1;
                return true;
            }
            size_t slot = next_;
            if (op.ret) {
                // Completed append: must land on the next slot.
                if (*op.ret != static_cast<Value>(slot))
                    return false;
                slots_.push_back(
                    Slot{State::Published, op.arg});
            } else {
                // Pending append taken by the checker: the publish
                // may or may not have reached durable state.
                slots_.push_back(Slot{State::Limbo, op.arg});
            }
            next_ += 1;
            return true;
        }
        if (op.op == "get") {
            if (op.arg < 0 ||
                static_cast<size_t>(op.arg) >= slots_.size())
                return retMatches(op.ret, kEmptyRet);
            Slot &s = slots_[static_cast<size_t>(op.arg)];
            switch (s.state) {
            case State::Hole:
                return retMatches(op.ret, kEmptyRet);
            case State::Published:
                return retMatches(op.ret, s.value);
            case State::Limbo:
                // First observation pins the slot's fate.
                if (retMatches(op.ret, s.value)) {
                    s.state = State::Published;
                    return true;
                }
                if (retMatches(op.ret, kEmptyRet)) {
                    s.state = State::Hole;
                    return true;
                }
                return false;
            }
            return false;
        }
        return false;
    }

    std::string
    fingerprint() const override
    {
        std::ostringstream os;
        os << "log:" << next_ << ";";
        for (const Slot &s : slots_) {
            switch (s.state) {
            case State::Hole:
                os << "H,";
                break;
            case State::Published:
                os << "P" << s.value << ",";
                break;
            case State::Limbo:
                os << "L" << s.value << ",";
                break;
            }
        }
        return os.str();
    }

  private:
    enum class State
    {
        Hole,
        Published,
        Limbo,
    };

    struct Slot
    {
        State state;
        Value value;
    };

    size_t capacity_;
    size_t next_ = 0;
    std::vector<Slot> slots_;
};

/**
 * KV store viewed through its map facade (ds::KvStore): put reports
 * whether the key was fresh, unlike MapSpec's HashMap encoding.
 */
class KvSpec : public SequentialSpec
{
  public:
    std::unique_ptr<SequentialSpec>
    clone() const override
    {
        return std::make_unique<KvSpec>(*this);
    }

    bool
    apply(const OpRecord &op) override
    {
        auto it = items_.find(op.arg);
        bool present = it != items_.end();
        if (op.op == "put") {
            if (!retMatches(op.ret, present ? 0 : 1))
                return false;
            items_[op.arg] = op.arg2;
            return true;
        }
        if (op.op == "get") {
            Value expect = present ? it->second : kEmptyRet;
            return retMatches(op.ret, expect);
        }
        if (op.op == "remove") {
            if (!retMatches(op.ret, present ? 1 : 0))
                return false;
            if (present)
                items_.erase(it);
            return true;
        }
        return false;
    }

    std::string
    fingerprint() const override
    {
        std::ostringstream os;
        os << "kv:";
        for (const auto &[k, v] : items_)
            os << k << "=" << v << ",";
        return os.str();
    }

  private:
    std::map<Value, Value> items_;
};

} // namespace

std::unique_ptr<SequentialSpec>
makeStackSpec()
{
    return std::make_unique<StackSpec>();
}

std::unique_ptr<SequentialSpec>
makeQueueSpec()
{
    return std::make_unique<QueueSpec>();
}

std::unique_ptr<SequentialSpec>
makeSetSpec()
{
    return std::make_unique<SetSpec>();
}

std::unique_ptr<SequentialSpec>
makeMapSpec()
{
    return std::make_unique<MapSpec>();
}

std::unique_ptr<SequentialSpec>
makeRegisterSpec(Value initial)
{
    return std::make_unique<RegisterSpec>(initial);
}

std::unique_ptr<SequentialSpec>
makeCounterSpec(Value initial)
{
    return std::make_unique<CounterSpec>(initial);
}

std::unique_ptr<SequentialSpec>
makeLogSpec(size_t capacity)
{
    return std::make_unique<LogSpec>(capacity);
}

std::unique_ptr<SequentialSpec>
makeKvSpec()
{
    return std::make_unique<KvSpec>();
}

} // namespace cxl0::hist
