#include "hist/history.hh"

#include <sstream>

#include "common/logging.hh"

namespace cxl0::hist
{

std::string
OpRecord::describe() const
{
    std::ostringstream os;
    os << "T" << threadId << ":" << op << "(" << arg;
    if (op == "put")
        os << "," << arg2;
    os << ")";
    if (ret)
        os << "=" << *ret;
    else
        os << "=?";
    if (pending())
        os << " [pending]";
    return os.str();
}

size_t
HistoryRecorder::invoke(int thread_id, std::string op, Value arg,
                        Value arg2)
{
    std::lock_guard<std::mutex> guard(mu_);
    OpRecord rec;
    rec.threadId = thread_id;
    rec.op = std::move(op);
    rec.arg = arg;
    rec.arg2 = arg2;
    rec.invokeStamp = ++stamp_;
    ops_.push_back(std::move(rec));
    return ops_.size() - 1;
}

void
HistoryRecorder::respond(size_t handle, Value ret)
{
    std::lock_guard<std::mutex> guard(mu_);
    CXL0_ASSERT(handle < ops_.size(), "bad history handle");
    CXL0_ASSERT(!ops_[handle].responseStamp, "double response");
    ops_[handle].ret = ret;
    ops_[handle].responseStamp = ++stamp_;
}

size_t
HistoryRecorder::size() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return ops_.size();
}

std::vector<OpRecord>
HistoryRecorder::snapshot() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return ops_;
}

size_t
HistoryRecorder::pendingCount() const
{
    std::lock_guard<std::mutex> guard(mu_);
    size_t n = 0;
    for (const OpRecord &op : ops_)
        if (op.pending())
            ++n;
    return n;
}

std::string
describeHistory(const std::vector<OpRecord> &ops)
{
    std::ostringstream os;
    for (const OpRecord &op : ops)
        os << op.describe() << "\n";
    return os.str();
}

} // namespace cxl0::hist
