/**
 * @file
 * Segmented (chunked) growable arrays whose elements never move.
 *
 * The concurrent interning tables (model/state_table.hh) and the
 * shared search memos (check/engine.hh) need arrays that grow while
 * other threads read already-published elements. A std::vector cannot
 * do that: reallocation moves every element under the readers' feet.
 * A SegmentedArray instead allocates geometrically sized segments —
 * segment s holds (2^BaseBits << s) elements — behind a fixed
 * directory of atomic pointers, so
 *
 *   - an element's address is stable for the container's lifetime,
 *   - locating index i costs one bit_width and one subtraction,
 *   - growth allocates a fresh segment and CAS-publishes its pointer;
 *     concurrent ensure() calls race benignly (the loser frees).
 *
 * Synchronization contract: ensure() makes the *storage* for an index
 * range exist; it does not order element contents. A writer must
 * publish an index through its own synchronization (a mutex, a
 * release store, a queue handoff) before another thread reads the
 * element — exactly the discipline the interning tables follow.
 *
 * Out-of-core mode: when a process-global SpillArena is installed
 * (common/spill.hh), segments of trivially-destructible element
 * types above a size threshold are allocated as file-backed
 * MAP_SHARED mappings instead of heap arrays. Addresses stay exactly
 * as stable, and fresh file pages read as zero — the same
 * value-initialized contents `new T[]()` produces for these element
 * types — so nothing else changes; but SpillArena::shed() can then
 * evict the cold pages from the resident set. The arena must outlive
 * every container that allocated from it.
 */

#ifndef CXL0_COMMON_SEGMENTED_HH
#define CXL0_COMMON_SEGMENTED_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/spill.hh"

namespace cxl0
{

namespace detail
{

/** Heap-or-arena segment allocation shared by the segmented
 *  containers. Returns value-initialized storage for `elems`
 *  elements; `*mapped` reports which allocator provided it and
 *  `*arena` is set when mapped (the free path must match). */
template <typename T>
T *
allocSegmentStorage(size_t elems, bool *mapped, SpillArena **arena)
{
    /** Tiny segments stay on the heap: a file + mapping per 64-entry
     *  segment would cost more than it could ever shed. */
    constexpr size_t kSpillMinBytes = 256 * 1024;
    *mapped = false;
    if constexpr (std::is_trivially_destructible_v<T>) {
        if (SpillArena *a = SpillArena::installed()) {
            if (elems * sizeof(T) >= kSpillMinBytes) {
                // Zero file pages match new T[]() for the tables'
                // element types (plain integers and std::atomic
                // wrappers whose all-zero representation is the
                // sentinel "unset" the tables encode around).
                void *p = a->map(elems * sizeof(T));
                if (p) {
                    *mapped = true;
                    *arena = a;
                    return static_cast<T *>(p);
                }
            }
        }
    }
    return new T[elems]();
}

template <typename T>
void
freeSegmentStorage(T *p, size_t elems, bool mapped, SpillArena *arena)
{
    if (!p)
        return;
    if (mapped)
        arena->unmap(p, elems * sizeof(T));
    else
        delete[] p;
}

} // namespace detail

/** Shared geometry: capacities, start offsets, index→segment. */
template <unsigned BaseBits>
struct SegmentGeometry
{
    static constexpr size_t kBase = size_t{1} << BaseBits;
    /** 28 doubling segments cover > 2^32 elements even from a 64-entry
     *  first segment: every 32-bit id space fits. The tiny first
     *  segments matter — idle tables must cost close to nothing, and
     *  the checkers report resident bytes honestly. */
    static constexpr size_t kMaxSegments = 28;

    static constexpr size_t capacityOf(size_t seg)
    {
        return kBase << seg;
    }

    static constexpr size_t startOf(size_t seg)
    {
        return kBase * ((size_t{1} << seg) - 1);
    }

    static void locate(size_t i, size_t &seg, size_t &off)
    {
        seg = static_cast<size_t>(std::bit_width(i + kBase)) -
              BaseBits - 1;
        off = i - startOf(seg);
    }
};

/**
 * Growable array of T with stable element addresses and lock-free
 * element access. T is value-initialized at segment allocation
 * (std::atomic members therefore start at zero — encode sentinels
 * around that, e.g. "id + 1, 0 = unset").
 */
template <typename T, unsigned BaseBits = 10>
class SegmentedArray
{
    using Geo = SegmentGeometry<BaseBits>;

  public:
    SegmentedArray() = default;
    SegmentedArray(const SegmentedArray &) = delete;
    SegmentedArray &operator=(const SegmentedArray &) = delete;

    ~SegmentedArray()
    {
        uint32_t mapped =
            mappedMask_.load(std::memory_order_relaxed);
        for (size_t s = 0; s < Geo::kMaxSegments; ++s)
            detail::freeSegmentStorage(
                segs_[s].load(std::memory_order_relaxed),
                Geo::capacityOf(s), (mapped >> s) & 1,
                arena_.load(std::memory_order_relaxed));
    }

    /** Make storage for indices [0, n) exist. Thread-safe. */
    void ensure(size_t n)
    {
        if (n == 0)
            return;
        size_t seg, off;
        Geo::locate(n - 1, seg, off);
        // Fast path: segments are published in ascending order, so a
        // visible top segment implies every lower one is visible too
        // (the publisher observed them before its release-CAS).
        if (segs_[seg].load(std::memory_order_acquire))
            return;
        for (size_t s = 0; s <= seg; ++s) {
            if (segs_[s].load(std::memory_order_acquire))
                continue;
            bool mapped = false;
            SpillArena *arena = nullptr;
            T *fresh = detail::allocSegmentStorage<T>(
                Geo::capacityOf(s), &mapped, &arena);
            T *expected = nullptr;
            if (segs_[s].compare_exchange_strong(
                    expected, fresh, std::memory_order_release,
                    std::memory_order_acquire)) {
                if (mapped) {
                    mappedMask_.fetch_or(uint32_t{1} << s,
                                         std::memory_order_relaxed);
                    arena_.store(arena,
                                 std::memory_order_relaxed);
                }
                bytes_.fetch_add(Geo::capacityOf(s) * sizeof(T),
                                 std::memory_order_relaxed);
            } else {
                detail::freeSegmentStorage(
                    fresh, Geo::capacityOf(s), mapped, arena);
            }
        }
    }

    T &operator[](size_t i)
    {
        size_t seg, off;
        Geo::locate(i, seg, off);
        return segs_[seg].load(std::memory_order_acquire)[off];
    }

    const T &operator[](size_t i) const
    {
        size_t seg, off;
        Geo::locate(i, seg, off);
        return segs_[seg].load(std::memory_order_acquire)[off];
    }

    /** Allocated segment bytes (excludes the fixed directory). */
    size_t bytes() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

    /**
     * Invoke fn on every element of every *allocated* segment
     * (including never-written, still value-initialized elements).
     * For teardown walks — does not allocate anything.
     */
    template <typename Fn>
    void forEachAllocated(Fn &&fn)
    {
        for (size_t s = 0; s < Geo::kMaxSegments; ++s) {
            T *seg = segs_[s].load(std::memory_order_acquire);
            if (!seg)
                continue;
            for (size_t i = 0; i < Geo::capacityOf(s); ++i)
                fn(seg[i]);
        }
    }

  private:
    std::atomic<T *> segs_[Geo::kMaxSegments] = {};
    std::atomic<size_t> bytes_{0};
    /** Bit s set: segment s is arena-mapped, not heap-allocated. */
    std::atomic<uint32_t> mappedMask_{0};
    std::atomic<SpillArena *> arena_{nullptr};
};

/**
 * As SegmentedArray, but each index holds a fixed-length span of
 * `stride` Ts (set once at construction): segment s stores
 * capacityOf(s) * stride contiguous elements, so a span never
 * straddles a segment boundary.
 */
template <typename T, unsigned BaseBits = 10>
class SegmentedSpans
{
    using Geo = SegmentGeometry<BaseBits>;

  public:
    explicit SegmentedSpans(size_t stride) : stride_(stride) {}
    SegmentedSpans(const SegmentedSpans &) = delete;
    SegmentedSpans &operator=(const SegmentedSpans &) = delete;

    ~SegmentedSpans()
    {
        uint32_t mapped =
            mappedMask_.load(std::memory_order_relaxed);
        for (size_t s = 0; s < Geo::kMaxSegments; ++s)
            detail::freeSegmentStorage(
                segs_[s].load(std::memory_order_relaxed),
                Geo::capacityOf(s) * stride_, (mapped >> s) & 1,
                arena_.load(std::memory_order_relaxed));
    }

    size_t stride() const { return stride_; }

    /** Make storage for span indices [0, n) exist. Thread-safe. */
    void ensure(size_t n)
    {
        if (n == 0)
            return;
        size_t seg, off;
        Geo::locate(n - 1, seg, off);
        // Fast path: see SegmentedArray::ensure — ascending
        // publication makes the top segment's visibility imply all.
        if (segs_[seg].load(std::memory_order_acquire))
            return;
        for (size_t s = 0; s <= seg; ++s) {
            if (segs_[s].load(std::memory_order_acquire))
                continue;
            size_t elems = Geo::capacityOf(s) * stride_;
            bool mapped = false;
            SpillArena *arena = nullptr;
            T *fresh = detail::allocSegmentStorage<T>(elems, &mapped,
                                                      &arena);
            T *expected = nullptr;
            if (segs_[s].compare_exchange_strong(
                    expected, fresh, std::memory_order_release,
                    std::memory_order_acquire)) {
                if (mapped) {
                    mappedMask_.fetch_or(uint32_t{1} << s,
                                         std::memory_order_relaxed);
                    arena_.store(arena,
                                 std::memory_order_relaxed);
                }
                bytes_.fetch_add(elems * sizeof(T),
                                 std::memory_order_relaxed);
            } else {
                detail::freeSegmentStorage(fresh, elems, mapped,
                                           arena);
            }
        }
    }

    T *at(size_t i)
    {
        size_t seg, off;
        Geo::locate(i, seg, off);
        return segs_[seg].load(std::memory_order_acquire) +
               off * stride_;
    }

    const T *at(size_t i) const
    {
        size_t seg, off;
        Geo::locate(i, seg, off);
        return segs_[seg].load(std::memory_order_acquire) +
               off * stride_;
    }

    /** Allocated segment bytes (excludes the fixed directory). */
    size_t bytes() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

  private:
    size_t stride_;
    std::atomic<T *> segs_[Geo::kMaxSegments] = {};
    std::atomic<size_t> bytes_{0};
    /** Bit s set: segment s is arena-mapped, not heap-allocated. */
    std::atomic<uint32_t> mappedMask_{0};
    std::atomic<SpillArena *> arena_{nullptr};
};

} // namespace cxl0

#endif // CXL0_COMMON_SEGMENTED_HH
