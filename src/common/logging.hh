/**
 * @file
 * Error reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration of a system or
 * workload); panic() is for internal invariant violations — e.g. the
 * CXL0 global cache invariant breaking would be a bug in this library,
 * never a user mistake.
 */

#ifndef CXL0_COMMON_LOGGING_HH
#define CXL0_COMMON_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace cxl0
{

/** Abort with a message: something that should never happen happened. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a message: the caller supplied an invalid configuration. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr and continue. */
void warnImpl(const char *file, int line, const std::string &msg);

/**
 * RAII mute for the stderr line panic()/fatal() print before
 * throwing. For harnesses (the crash-injection campaign) that
 * *expect* to trigger panics by the hundred and convert each into a
 * recorded verdict: the exception still carries the message; only the
 * per-throw stderr line is suppressed. Thread-local, nests.
 *
 * Every suppressed line is *counted*, never discarded silently:
 * muted() reports how many panics/fatals this scope muted so far, and
 * the process-wide mutedPanicTotal() lets drivers surface a
 * contained-corruption storm (the campaign reports it as
 * `muted_panics`).
 */
class ScopedQuietErrors
{
  public:
    ScopedQuietErrors();
    ~ScopedQuietErrors();
    ScopedQuietErrors(const ScopedQuietErrors &) = delete;
    ScopedQuietErrors &operator=(const ScopedQuietErrors &) = delete;

    /** Panics/fatals muted on this thread since this scope opened. */
    uint64_t muted() const;

  private:
    uint64_t start_;
};

/** Panics/fatals muted on this thread since it started. */
uint64_t mutedPanicCount();

/** Panics/fatals muted process-wide (all threads, all time). */
uint64_t mutedPanicTotal();

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

} // namespace cxl0

#define CXL0_PANIC(...) \
    ::cxl0::panicImpl(__FILE__, __LINE__, ::cxl0::detail::concat(__VA_ARGS__))

#define CXL0_FATAL(...) \
    ::cxl0::fatalImpl(__FILE__, __LINE__, ::cxl0::detail::concat(__VA_ARGS__))

#define CXL0_WARN(...) \
    ::cxl0::warnImpl(__FILE__, __LINE__, ::cxl0::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define CXL0_ASSERT(cond, ...)                                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            CXL0_PANIC("assertion failed: " #cond " ",                     \
                       ::cxl0::detail::concat(__VA_ARGS__));               \
        }                                                                  \
    } while (0)

#endif // CXL0_COMMON_LOGGING_HH
