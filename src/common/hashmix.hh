/**
 * @file
 * Shared hashing primitives.
 *
 * One definition of the splitmix64-style avalanche finalizer and the
 * per-slot Zobrist term built on it. The incremental State hash, the
 * span interning tables, and the explorer's packed-config hash all
 * combine through these, which is what keeps their digests mutually
 * consistent (and keeps the constants in one place).
 */

#ifndef CXL0_COMMON_HASHMIX_HH
#define CXL0_COMMON_HASHMIX_HH

#include <cstddef>
#include <cstdint>

namespace cxl0
{

/** splitmix64 finalizer: full-avalanche mix of one 64-bit word. */
constexpr uint64_t
mixBits(uint64_t z)
{
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
}

/**
 * Independent per-(slot, value) Zobrist term. XORing these over a
 * container's slots yields a path-independent content digest that can
 * be updated in O(1) when one slot changes.
 */
constexpr uint64_t
hashSlot(uint64_t slot, int64_t value)
{
    return mixBits((slot + 1) * 0x9e3779b97f4a7c15ULL ^
                   static_cast<uint64_t>(value));
}

} // namespace cxl0

#endif // CXL0_COMMON_HASHMIX_HH
