/**
 * @file
 * File-backed memory for out-of-core search: SpillArena + SpillFile.
 *
 * Long searches are bounded by resident memory, not CPU: the
 * interning arenas and visited sets grow monotonically, but most of
 * their pages go cold as the search moves on. A SpillArena maps
 * zero-initialized MAP_SHARED regions over created-then-unlinked
 * files in a caller-chosen directory, so
 *
 *   - addresses are exactly as stable as heap allocations (the
 *     segmented arenas' contract is unchanged),
 *   - shed() can MADV_DONTNEED every mapping: cold pages leave the
 *     resident set and migrate to the page cache / backing file,
 *     and a later touch refaults them — a minor fault, not a
 *     recompute — so peak RSS tracks the hot working set, and
 *   - unlinking at creation makes cleanup automatic on any exit,
 *     including SIGKILL.
 *
 * The arena is installed process-globally (install()): the segmented
 * arenas and visited sets pick it up without threading a pointer
 * through every table constructor. Installation must happen before
 * the search constructs its tables and must outlive them.
 *
 * SpillFile is the sequential sibling: an append/pread byte file for
 * frontier spill blocks and checkpoint payloads. It keeps its fd
 * (optionally unlinked) so spilled blocks survive only as long as
 * the run needs them.
 */

#ifndef CXL0_COMMON_SPILL_HH
#define CXL0_COMMON_SPILL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cxl0
{

/** Create `dir` (and parents) if missing. False on failure. */
bool ensureDir(const std::string &dir);

/**
 * mmap-backed allocator over unlinked files in one directory.
 * Thread-safe. Mappings are zero-initialized (fresh file pages),
 * matching the value-initialization the segmented arenas rely on
 * for their trivially-constructible element types.
 */
class SpillArena
{
  public:
    explicit SpillArena(std::string dir);
    SpillArena(const SpillArena &) = delete;
    SpillArena &operator=(const SpillArena &) = delete;
    ~SpillArena();

    /** Whether the backing directory is usable. A failed arena
     *  returns null from map() and callers fall back to the heap. */
    bool valid() const { return valid_; }

    /** Map `bytes` of zeroed file-backed memory; null on failure. */
    void *map(size_t bytes);

    /** Release a mapping previously returned by map(). */
    void unmap(void *p, size_t bytes);

    /**
     * Drop every mapping's resident pages (MADV_DONTNEED on a
     * MAP_SHARED file mapping writes nothing back synchronously;
     * dirty pages move to the page cache and refault on demand).
     * Safe to call concurrently with readers/writers of the mapped
     * memory: the kernel refaults transparently.
     */
    void shed();

    /** Total bytes currently mapped through this arena. */
    size_t mappedBytes() const
    {
        return mappedBytes_.load(std::memory_order_relaxed);
    }

    const std::string &dir() const { return dir_; }

    /** Install `a` as the process-global arena (null to clear). */
    static void install(SpillArena *a);

    /** The installed arena, or null when search is in-memory. */
    static SpillArena *installed();

  private:
    std::string dir_;
    bool valid_ = false;
    mutable std::mutex m_;
    struct Mapping
    {
        void *p;
        size_t bytes;
    };
    std::vector<Mapping> mappings_;
    std::atomic<size_t> mappedBytes_{0};
};

/** RAII install/uninstall of a process-global SpillArena. */
class ScopedSpillArena
{
  public:
    explicit ScopedSpillArena(const std::string &dir)
        : arena_(dir)
    {
        if (arena_.valid())
            SpillArena::install(&arena_);
    }
    ~ScopedSpillArena() { SpillArena::install(nullptr); }
    ScopedSpillArena(const ScopedSpillArena &) = delete;
    ScopedSpillArena &operator=(const ScopedSpillArena &) = delete;

    SpillArena &arena() { return arena_; }

  private:
    SpillArena arena_;
};

/**
 * Append/pread byte file for frontier spill blocks and checkpoint
 * payloads. Not thread-safe: one owner at a time (the shard lock for
 * frontier spill files, the checkpoint leader for snapshots).
 */
class SpillFile
{
  public:
    SpillFile() = default;
    SpillFile(const SpillFile &) = delete;
    SpillFile &operator=(const SpillFile &) = delete;
    ~SpillFile();

    /**
     * Create/truncate `path`. When `unlinkAfter`, the name is
     * removed immediately — the file lives exactly as long as this
     * object (crash-safe cleanup). False on failure.
     */
    bool open(const std::string &path, bool unlinkAfter);

    bool valid() const { return fd_ >= 0; }

    /** Append `n` bytes; returns the offset they start at. */
    uint64_t append(const void *data, size_t n);

    /** Read exactly `n` bytes at `off`; false on short read. */
    bool readAt(uint64_t off, void *out, size_t n) const;

    /** Overwrite `n` bytes at `off` (must be already-appended
     *  range); false on short write. size() is unchanged. */
    bool writeAt(uint64_t off, const void *data, size_t n);

    /** Reset to empty (logical truncate; reuses the file). */
    void clear();

    /** Bytes appended since open/clear. */
    uint64_t size() const { return size_; }

    void close();

  private:
    int fd_ = -1;
    uint64_t size_ = 0;
};

} // namespace cxl0

#endif // CXL0_COMMON_SPILL_HH
