#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cxl0
{

namespace
{

thread_local int quiet_depth = 0;
thread_local uint64_t muted_count = 0;
std::atomic<uint64_t> muted_total{0};

/** Count a panic/fatal whose stderr line a quiet scope swallowed. */
void
noteMuted()
{
    ++muted_count;
    muted_total.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

ScopedQuietErrors::ScopedQuietErrors() : start_(muted_count)
{
    ++quiet_depth;
}

ScopedQuietErrors::~ScopedQuietErrors()
{
    --quiet_depth;
}

uint64_t
ScopedQuietErrors::muted() const
{
    return muted_count - start_;
}

uint64_t
mutedPanicCount()
{
    return muted_count;
}

uint64_t
mutedPanicTotal()
{
    return muted_total.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (quiet_depth == 0) {
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
        std::fflush(stderr);
    } else {
        noteMuted();
    }
    // Throwing (rather than abort()) lets the test suite exercise the
    // panic paths of precondition checks.
    throw std::logic_error(msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (quiet_depth == 0) {
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
        std::fflush(stderr);
    } else {
        noteMuted();
    }
    throw std::invalid_argument(msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace cxl0
