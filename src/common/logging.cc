#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cxl0
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets the test suite exercise the
    // panic paths of precondition checks.
    throw std::logic_error(msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::invalid_argument(msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace cxl0
