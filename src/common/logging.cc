#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cxl0
{

namespace
{

thread_local int quiet_depth = 0;

} // namespace

ScopedQuietErrors::ScopedQuietErrors()
{
    ++quiet_depth;
}

ScopedQuietErrors::~ScopedQuietErrors()
{
    --quiet_depth;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (quiet_depth == 0) {
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
        std::fflush(stderr);
    }
    // Throwing (rather than abort()) lets the test suite exercise the
    // panic paths of precondition checks.
    throw std::logic_error(msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (quiet_depth == 0) {
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
        std::fflush(stderr);
    }
    throw std::invalid_argument(msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace cxl0
