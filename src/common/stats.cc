#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace cxl0
{

void
Accumulator::add(double sample)
{
    samples_.push_back(sample);
}

double
Accumulator::sum() const
{
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double
Accumulator::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum() / static_cast<double>(samples_.size());
}

double
Accumulator::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Accumulator::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Accumulator::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

std::vector<double>
Accumulator::sorted() const
{
    std::vector<double> copy = samples_;
    std::sort(copy.begin(), copy.end());
    return copy;
}

double
Accumulator::median() const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> s = sorted();
    size_t n = s.size();
    if (n % 2 == 1)
        return s[n / 2];
    return 0.5 * (s[n / 2 - 1] + s[n / 2]);
}

double
Accumulator::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> s = sorted();
    if (p <= 0.0)
        return s.front();
    if (p >= 100.0)
        return s.back();
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(s.size())));
    if (rank == 0)
        rank = 1;
    return s[rank - 1];
}

void
Accumulator::reset()
{
    samples_.clear();
}

std::string
Accumulator::summary() const
{
    std::ostringstream os;
    os << "n=" << count() << " median=" << formatDouble(median())
       << " mean=" << formatDouble(mean())
       << " min=" << formatDouble(min())
       << " max=" << formatDouble(max());
    return os.str();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    row.resize(headers_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::ostringstream &os) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "| " << row[c]
               << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        os << "|\n";
    };

    std::ostringstream os;
    emit_row(headers_, os);
    for (size_t c = 0; c < headers_.size(); ++c)
        os << "|" << std::string(widths[c] + 2, '-');
    os << "|\n";
    for (const auto &row : rows_)
        emit_row(row, os);
    return os.str();
}

std::string
formatDouble(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

} // namespace cxl0
