/**
 * @file
 * Lightweight statistics accumulators used by the benchmark harness.
 *
 * The paper reports medians over 1000 measurements (§5.2); the
 * Accumulator supports exact order statistics over the sample sets we
 * collect, plus the usual mean / min / max / stddev summaries.
 */

#ifndef CXL0_COMMON_STATS_HH
#define CXL0_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace cxl0
{

/** Collects scalar samples and answers summary queries. */
class Accumulator
{
  public:
    /** Record one sample. */
    void add(double sample);

    /** Number of samples recorded. */
    size_t count() const { return samples_.size(); }

    /** Sum of all samples; 0 when empty. */
    double sum() const;

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /** Population standard deviation; 0 when fewer than 2 samples. */
    double stddev() const;

    /** Median (the paper's headline statistic); 0 when empty. */
    double median() const;

    /**
     * Exact percentile via nearest-rank on the sorted samples.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Drop all samples. */
    void reset();

    /** One-line human readable summary. */
    std::string summary() const;

  private:
    /** Sorted copy helper for order statistics. */
    std::vector<double> sorted() const;

    std::vector<double> samples_;
};

/**
 * Fixed-width text table writer for bench output. Produces the same
 * row/column shape as the paper's tables so EXPERIMENTS.md can quote
 * bench output directly.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> row);

    /** Render with padded columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper for table cells). */
std::string formatDouble(double v, int precision = 1);

} // namespace cxl0

#endif // CXL0_COMMON_STATS_HH
