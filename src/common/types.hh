/**
 * @file
 * Fundamental value types shared across all cxl0 libraries.
 *
 * The CXL0 model (paper §3.3) works with a finite set of machines
 * (nodes), a set of shared memory locations partitioned among the
 * machines, and an abstract value domain that contains a distinguished
 * initial value 0. These aliases pin down the concrete representations
 * used throughout the reproduction.
 */

#ifndef CXL0_COMMON_TYPES_HH
#define CXL0_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace cxl0
{

/** Identifier of a machine (node) in the CXL fabric. */
using NodeId = uint16_t;

/** Index of a shared memory location (one abstract cache line). */
using Addr = uint32_t;

/** Abstract value stored at a location. */
using Value = int64_t;

/** The distinguished initial value of every location (paper §3.3). */
constexpr Value kInitValue = 0;

/**
 * Sentinel used inside cache maps for the invalid entry, written
 * "bottom" in the paper. It is deliberately outside the value range
 * data structures use, and asserting on it catches accidental leaks of
 * the sentinel into user-visible results.
 */
constexpr Value kBottom = std::numeric_limits<Value>::min();

/** Sentinel for "no node". */
constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/** Sentinel for "no address" (used as a null pointer by src/ds). */
constexpr Addr kNullAddr = std::numeric_limits<Addr>::max();

} // namespace cxl0

#endif // CXL0_COMMON_TYPES_HH
