#include "common/rng.hh"

namespace cxl0
{

uint64_t
Rng::next()
{
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    // Rejection sampling to avoid modulo bias; bound is tiny in all of
    // our uses so the loop nearly never retries.
    uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextInRange(int64_t lo, int64_t hi)
{
    return lo + static_cast<int64_t>(
        nextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

bool
Rng::chance(uint64_t num, uint64_t den)
{
    return nextBelow(den) < num;
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace cxl0
