/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of nondeterminism in the reproduction (propagation
 * scheduling, crash injection, workload generation) draws from a
 * seeded SplitMix64 stream so that test failures and benchmark runs
 * are exactly reproducible.
 */

#ifndef CXL0_COMMON_RNG_HH
#define CXL0_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cxl0
{

/**
 * SplitMix64 generator. Small state, good statistical quality for
 * simulation purposes, and trivially seedable.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound). bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextInRange(int64_t lo, int64_t hi);

    /** Bernoulli trial with probability num/den. */
    bool chance(uint64_t num, uint64_t den);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        if (v.size() < 2)
            return;
        for (size_t i = v.size() - 1; i > 0; --i) {
            size_t j = nextBelow(i + 1);
            std::swap(v[i], v[j]);
        }
    }

    /** Derive an independent child stream (for per-thread RNGs). */
    Rng split();

  private:
    uint64_t state_;
};

} // namespace cxl0

#endif // CXL0_COMMON_RNG_HH
