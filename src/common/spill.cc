#include "common/spill.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"

namespace cxl0
{

namespace
{

std::atomic<SpillArena *> g_arena{nullptr};

} // namespace

bool
ensureDir(const std::string &dir)
{
    if (dir.empty())
        return false;
    std::string partial;
    partial.reserve(dir.size());
    for (size_t i = 0; i <= dir.size(); ++i) {
        if (i < dir.size() && dir[i] != '/') {
            partial.push_back(dir[i]);
            continue;
        }
        if (i < dir.size())
            partial.push_back('/');
        if (partial.empty() || partial == "/")
            continue;
        if (mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    struct stat st{};
    return stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

SpillArena::SpillArena(std::string dir) : dir_(std::move(dir))
{
    valid_ = ensureDir(dir_);
    if (!valid_)
        CXL0_WARN("spill: cannot use directory '", dir_, "' (",
                  std::strerror(errno),
                  "); falling back to in-memory allocation");
}

SpillArena::~SpillArena()
{
    std::lock_guard<std::mutex> lock(m_);
    for (const Mapping &m : mappings_)
        ::munmap(m.p, m.bytes);
    mappings_.clear();
}

void *
SpillArena::map(size_t bytes)
{
    if (!valid_ || bytes == 0)
        return nullptr;
    static std::atomic<uint64_t> seq{0};
    char name[64];
    std::snprintf(name, sizeof name, "/seg-%d-%llu.bin", getpid(),
                  static_cast<unsigned long long>(
                      seq.fetch_add(1, std::memory_order_relaxed)));
    std::string path = dir_ + name;
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
    if (fd < 0) {
        CXL0_WARN("spill: open('", path, "') failed: ",
                  std::strerror(errno));
        return nullptr;
    }
    // Unlink immediately: the mapping keeps the inode alive, and any
    // exit — including SIGKILL — reclaims the space automatically.
    ::unlink(path.c_str());
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
        CXL0_WARN("spill: ftruncate(", bytes, ") failed: ",
                  std::strerror(errno));
        ::close(fd);
        return nullptr;
    }
    void *p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
    ::close(fd); // the mapping holds its own reference
    if (p == MAP_FAILED) {
        CXL0_WARN("spill: mmap(", bytes, ") failed: ",
                  std::strerror(errno));
        return nullptr;
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        mappings_.push_back(Mapping{p, bytes});
    }
    mappedBytes_.fetch_add(bytes, std::memory_order_relaxed);
    return p;
}

void
SpillArena::unmap(void *p, size_t bytes)
{
    if (!p)
        return;
    {
        std::lock_guard<std::mutex> lock(m_);
        for (size_t i = 0; i < mappings_.size(); ++i) {
            if (mappings_[i].p == p) {
                mappings_[i] = mappings_.back();
                mappings_.pop_back();
                break;
            }
        }
    }
    ::munmap(p, bytes);
    mappedBytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void
SpillArena::shed()
{
    std::lock_guard<std::mutex> lock(m_);
    for (const Mapping &m : mappings_)
        ::madvise(m.p, m.bytes, MADV_DONTNEED);
}

void
SpillArena::install(SpillArena *a)
{
    g_arena.store(a, std::memory_order_release);
}

SpillArena *
SpillArena::installed()
{
    return g_arena.load(std::memory_order_acquire);
}

// ------------------------------------------------------------------
// SpillFile
// ------------------------------------------------------------------

SpillFile::~SpillFile()
{
    close();
}

bool
SpillFile::open(const std::string &path, bool unlinkAfter)
{
    close();
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    if (fd_ < 0) {
        CXL0_WARN("spill: open('", path, "') failed: ",
                  std::strerror(errno));
        return false;
    }
    if (unlinkAfter)
        ::unlink(path.c_str());
    size_ = 0;
    return true;
}

uint64_t
SpillFile::append(const void *data, size_t n)
{
    CXL0_ASSERT(fd_ >= 0, "append on a closed spill file");
    uint64_t off = size_;
    const char *p = static_cast<const char *>(data);
    size_t left = n;
    while (left > 0) {
        ssize_t w = ::pwrite(fd_, p, left,
                             static_cast<off_t>(off + (n - left)));
        if (w <= 0) {
            if (w < 0 && errno == EINTR)
                continue;
            CXL0_ASSERT(false, "spill file write failed");
        }
        p += w;
        left -= static_cast<size_t>(w);
    }
    size_ += n;
    return off;
}

bool
SpillFile::writeAt(uint64_t off, const void *data, size_t n)
{
    if (fd_ < 0 || off + n > size_)
        return false;
    const char *p = static_cast<const char *>(data);
    size_t left = n;
    while (left > 0) {
        ssize_t w = ::pwrite(fd_, p, left,
                             static_cast<off_t>(off + (n - left)));
        if (w < 0 && errno == EINTR)
            continue;
        if (w <= 0)
            return false;
        p += w;
        left -= static_cast<size_t>(w);
    }
    return true;
}

bool
SpillFile::readAt(uint64_t off, void *out, size_t n) const
{
    if (fd_ < 0)
        return false;
    char *p = static_cast<char *>(out);
    size_t left = n;
    while (left > 0) {
        ssize_t r = ::pread(fd_, p, left,
                            static_cast<off_t>(off + (n - left)));
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0)
            return false;
        p += r;
        left -= static_cast<size_t>(r);
    }
    return true;
}

void
SpillFile::clear()
{
    if (fd_ >= 0) {
        // Physical truncation returns the blocks; logical size
        // tracking restarts from zero either way.
        (void)::ftruncate(fd_, 0);
    }
    size_ = 0;
}

void
SpillFile::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
    size_ = 0;
}

} // namespace cxl0
