/**
 * @file
 * Delta-debugging shrinker for diverging scenarios.
 *
 * Same discipline as the campaign's op shrinker (src/inject/
 * shrink.hh): greedily try structural simplifications, keep a
 * candidate only when the differential gates *still* fail on it, and
 * iterate to a fixpoint under an attempt cap. The moves are
 * scenario-shaped instead of history-shaped: drop a whole thread,
 * drop one instruction, zero the crash budget, shrink immediates
 * toward 0, drop unused locations (with address compaction), and
 * drop unused machines (with node renumbering). Every candidate is
 * a well-formed Scenario, so the minimized artifact is directly a
 * committable `.cxl0` corpus case.
 *
 * The predicate intentionally requires the *same kind* of failure to
 * persist — still-diverging or still-crashing, not skipped — so a
 * shrink step can never "succeed" by making the scenario too big to
 * compare.
 */

#ifndef CXL0_FUZZ_SHRINK_HH
#define CXL0_FUZZ_SHRINK_HH

#include "fuzz/differential.hh"

namespace cxl0::fuzz
{

struct ShrinkLimits
{
    /** Cap on differential re-runs (each candidate costs one). */
    size_t maxAttempts = 300;
};

struct ShrinkResult
{
    lang::Scenario minimized;
    /** The differential result of the minimized scenario. */
    DiffResult outcome;
    size_t attempts = 0;
    size_t instrsDropped = 0;
    size_t threadsDropped = 0;
};

/**
 * Shrink `sc` (which must currently fail the gates under `opts`) to
 * a smaller scenario that still fails them.
 */
ShrinkResult shrinkScenario(const lang::Scenario &sc,
                            const DiffOptions &opts,
                            const ShrinkLimits &limits = {});

} // namespace cxl0::fuzz

#endif // CXL0_FUZZ_SHRINK_HH
