/**
 * @file
 * Seeded random scenario generation for the fuzzing farm.
 *
 * generateScenario(seed) builds a random *well-formed* Scenario —
 * machines with random persistence, locations with random owners, a
 * random multi-threaded program over every instruction kind the DSL
 * can express (loads, l/r/m stores, flushes, GPF, FAA/CAS RMWs with
 * immediate or register operands), a random model variant, and a
 * random crash budget/placement. Everything is drawn from one
 * common::Rng stream, so a scenario is fully determined by its seed:
 * any finding replays from `(seed, GenOptions)` alone, and the farm
 * records the seed in every artifact.
 *
 * The default bounds are sized so the differential gates complete
 * without truncation on the default config budget (small programs
 * explore thousands to a few hundred thousand configs depending on
 * crash placement); the bounds are options, not constants, so a
 * soak run can push them up.
 *
 * Generated scenarios satisfy the canonical-dump invariants
 * (ordered machines/threads, unique location names, padded outcome
 * rows are absent), so `parse(dump(sc)) == sc` — the round-trip
 * differential gate — holds by construction unless a bug breaks it.
 */

#ifndef CXL0_FUZZ_GENERATE_HH
#define CXL0_FUZZ_GENERATE_HH

#include <cstdint>

#include "lang/scenario.hh"

namespace cxl0::fuzz
{

struct GenOptions
{
    size_t maxMachines = 3;
    size_t maxAddrs = 2;
    size_t maxThreads = 3;
    size_t maxInstrsPerThread = 4;
    int maxRegs = 3;
    /** Store/RMW immediates are drawn from [0, maxValue]. */
    Value maxValue = 2;
    /** Permit a crash budget (any-node or one pinned node). */
    bool allowCrash = true;
    /** Draw the model variant (base/lwb/psn) instead of base-only. */
    bool allowVariants = true;
    /** Permit FAA/CAS instructions. */
    bool allowRmw = true;

    bool operator==(const GenOptions &other) const = default;
};

/** The scenario fully determined by (seed, options). */
lang::Scenario generateScenario(uint64_t seed,
                                const GenOptions &opts = {});

/** The per-index scenario seed of a farm run (replayable alone). */
uint64_t scenarioSeed(uint64_t farmSeed, size_t index);

} // namespace cxl0::fuzz

#endif // CXL0_FUZZ_GENERATE_HH
