/**
 * @file
 * The fuzzing farm: seeded scenario generation at scale.
 *
 * runFarm drives `count` generated scenarios (seeds derived from one
 * farm seed via scenarioSeed, so any single case replays standalone)
 * through the differential gates, shrinks every finding to a minimal
 * committable `.cxl0` artifact, exports the `keep` most interesting
 * clean scenarios as exact-anchored corpus files (regression seeds
 * for `--corpus corpus/fuzz`), and finishes with a cache trial: each
 * comparable scenario runs twice through one ScenarioService with
 * verify-hits on, so the second pass must hit the cache AND the hit
 * must be byte-identical to a recompute. farmJson renders the report
 * in the tracked BENCH_*.json shape (`"bench": "fuzz"`).
 */

#ifndef CXL0_FUZZ_FARM_HH
#define CXL0_FUZZ_FARM_HH

#include "fuzz/generate.hh"
#include "fuzz/shrink.hh"
#include "lang/service.hh"

namespace cxl0::fuzz
{

struct FarmOptions
{
    uint64_t seed = 1;
    size_t count = 100;
    GenOptions gen;
    DiffOptions diff;
    /** Shrink findings before reporting them. */
    bool shrink = true;
    ShrinkLimits shrinkLimits;
    /**
     * Export the N clean scenarios whose baselines visited the most
     * configurations, exact outcome anchors locked in — the farm's
     * contribution to corpus/fuzz/. 0 disables.
     */
    size_t keep = 0;
    /** Run the two-pass verify-hits cache trial over clean cases. */
    bool cacheTrial = true;
    size_t cacheCapacity = 4096;
    /** Non-empty enables the trial's on-disk store. */
    std::string cacheDir;
};

struct FarmFinding
{
    uint64_t seed = 0;        //!< generateScenario seed (replayable)
    std::string gate;         //!< first failing gate
    std::string detail;       //!< first divergence description
    bool crashed = false;     //!< a checker threw
    std::string filename;     //!< suggested artifact name
    std::string artifact;     //!< minimized scenario, canonical dump
    size_t shrinkAttempts = 0;
};

struct FarmReport
{
    size_t generated = 0;
    size_t clean = 0;   //!< all gates agreed
    size_t skipped = 0; //!< baseline truncated/timed out: incomparable
    size_t diverged = 0;
    size_t crashed = 0;
    size_t gatesRun = 0;
    std::vector<FarmFinding> findings;
    /** Anchored keep-N exports (filename + canonical text). */
    std::vector<lang::CorpusFile> kept;

    // Cache-trial results.
    size_t cacheLookups = 0;
    size_t cacheHits = 0;
    bool cacheByteIdentical = true;

    double seconds = 0.0;

    /** No divergences, no crashes, cache hits byte-identical. */
    bool pass() const
    {
        return findings.empty() && cacheByteIdentical;
    }
};

/** Run the farm; deterministic for a fixed (options, seed). */
FarmReport runFarm(const FarmOptions &opts);

/** Render the report in the tracked bench JSON shape. */
std::string farmJson(const FarmOptions &opts, const FarmReport &report,
                     bool stable);

} // namespace cxl0::fuzz

#endif // CXL0_FUZZ_FARM_HH
