#include "fuzz/shrink.hh"

#include "common/logging.hh"

namespace cxl0::fuzz
{

using lang::Scenario;

namespace
{

/** Drop locations no instruction touches, compacting addresses. */
bool
dropUnusedAddrs(Scenario &sc)
{
    std::vector<bool> used(sc.addrNames.size(), false);
    for (const check::ProgThread &t : sc.program.threads)
        for (const check::ProgInstr &i : t.code)
            if (i.kind != check::ProgInstr::Kind::Gpf &&
                i.addr < used.size())
                used[i.addr] = true;
    // Trace labels also reference addresses (generated scenarios are
    // program-only, but the shrinker accepts any scenario).
    for (const std::vector<model::Label> *tr :
         {&sc.trace, &sc.traceLhs, &sc.traceRhs})
        for (const model::Label &l : *tr)
            if (l.addr < used.size())
                used[l.addr] = true;
    if (sc.addrNames.size() <= 1)
        return false;
    std::vector<Addr> remap(sc.addrNames.size(), 0);
    Scenario out = sc;
    out.addrNames.clear();
    out.addrOwner.clear();
    bool dropped = false;
    for (size_t a = 0; a < sc.addrNames.size(); ++a) {
        if (!used[a]) {
            dropped = true;
            continue;
        }
        remap[a] = static_cast<Addr>(out.addrNames.size());
        out.addrNames.push_back(sc.addrNames[a]);
        out.addrOwner.push_back(sc.addrOwner[a]);
    }
    if (!dropped || out.addrNames.empty())
        return false;
    for (check::ProgThread &t : out.program.threads)
        for (check::ProgInstr &i : t.code)
            if (i.kind != check::ProgInstr::Kind::Gpf)
                i.addr = remap[i.addr];
    for (std::vector<model::Label> *tr :
         {&out.trace, &out.traceLhs, &out.traceRhs})
        for (model::Label &l : *tr)
            l.addr = remap[l.addr];
    sc = std::move(out);
    return true;
}

/** Drop machines nothing references (threads, owners, crash pins,
 *  trace labels), renumbering the nodes above them. */
bool
dropUnusedMachines(Scenario &sc)
{
    size_t nmachines = sc.machinePersistent.size();
    if (nmachines <= 1)
        return false;
    std::vector<bool> used(nmachines, false);
    for (const check::ProgThread &t : sc.program.threads)
        used[t.node] = true;
    for (NodeId n : sc.addrOwner)
        used[n] = true;
    for (NodeId n : sc.request.crashableNodes)
        used[n] = true;
    for (const std::vector<model::Label> *tr :
         {&sc.trace, &sc.traceLhs, &sc.traceRhs})
        for (const model::Label &l : *tr)
            used[l.node] = true;
    std::vector<NodeId> remap(nmachines, 0);
    Scenario out = sc;
    out.machinePersistent.clear();
    bool dropped = false;
    for (size_t n = 0; n < nmachines; ++n) {
        if (!used[n]) {
            dropped = true;
            continue;
        }
        remap[n] = static_cast<NodeId>(out.machinePersistent.size());
        out.machinePersistent.push_back(sc.machinePersistent[n]);
    }
    if (!dropped || out.machinePersistent.empty())
        return false;
    for (check::ProgThread &t : out.program.threads)
        t.node = remap[t.node];
    for (NodeId &n : out.addrOwner)
        n = remap[n];
    for (NodeId &n : out.request.crashableNodes)
        n = remap[n];
    for (std::vector<model::Label> *tr :
         {&out.trace, &out.traceLhs, &out.traceRhs})
        for (model::Label &l : *tr)
            l.node = remap[l.node];
    sc = std::move(out);
    return true;
}

} // namespace

ShrinkResult
shrinkScenario(const Scenario &sc, const DiffOptions &opts,
               const ShrinkLimits &limits)
{
    ShrinkResult res;
    res.minimized = sc;
    res.outcome = runDifferential(sc, opts);
    if (res.outcome.clean() || res.outcome.skipped) {
        CXL0_WARN("shrinkScenario called on a scenario that does "
                  "not fail the gates; returning it unchanged");
        return res;
    }

    // A candidate counts only when the failure *persists* (not
    // clean, not skipped-into-incomparability).
    auto stillFails = [&](const Scenario &cand,
                          DiffResult &out) -> bool {
        if (res.attempts >= limits.maxAttempts)
            return false;
        ++res.attempts;
        out = runDifferential(cand, opts);
        return !out.skipped && !out.clean();
    };

    bool progress = true;
    while (progress && res.attempts < limits.maxAttempts) {
        progress = false;

        // Pass 1: drop whole threads (largest cuts first).
        for (size_t t = 0;
             t < res.minimized.program.threads.size() &&
             res.minimized.program.threads.size() > 1;) {
            Scenario cand = res.minimized;
            cand.program.threads.erase(
                cand.program.threads.begin() + t);
            DiffResult out;
            if (stillFails(cand, out)) {
                res.minimized = std::move(cand);
                res.outcome = std::move(out);
                ++res.threadsDropped;
                progress = true;
            } else {
                ++t;
            }
        }

        // Pass 2: drop single instructions.
        for (size_t t = 0;
             t < res.minimized.program.threads.size(); ++t) {
            for (size_t i = 0;
                 i < res.minimized.program.threads[t].code.size();) {
                Scenario cand = res.minimized;
                auto &code = cand.program.threads[t].code;
                code.erase(code.begin() + i);
                DiffResult out;
                if (stillFails(cand, out)) {
                    res.minimized = std::move(cand);
                    res.outcome = std::move(out);
                    ++res.instrsDropped;
                    progress = true;
                } else {
                    ++i;
                }
            }
        }

        // Pass 3: zero the crash budget.
        if (res.minimized.request.maxCrashesPerNode > 0) {
            Scenario cand = res.minimized;
            cand.request.maxCrashesPerNode = 0;
            cand.request.crashableNodes.clear();
            DiffResult out;
            if (stillFails(cand, out)) {
                res.minimized = std::move(cand);
                res.outcome = std::move(out);
                progress = true;
            }
        }

        // Pass 4: shrink immediates toward 0. Re-read the operand
        // through res.minimized on every attempt: accepting a
        // candidate move-assigns the scenario and frees the code
        // vector any cached reference points into.
        for (size_t t = 0;
             t < res.minimized.program.threads.size(); ++t) {
            for (size_t i = 0;
                 i < res.minimized.program.threads[t].code.size();
                 ++i) {
                for (check::Operand check::ProgInstr::*field :
                     {&check::ProgInstr::value,
                      &check::ProgInstr::expected}) {
                    for (;;) {
                        const check::Operand &op =
                            res.minimized.program.threads[t]
                                .code[i].*field;
                        if (op.isReg || op.imm == 0)
                            break;
                        Scenario cand = res.minimized;
                        check::Operand &cop =
                            cand.program.threads[t].code[i].*field;
                        cop.imm = cop.imm > 1 ? cop.imm / 2 : 0;
                        DiffResult out;
                        if (!stillFails(cand, out))
                            break;
                        res.minimized = std::move(cand);
                        res.outcome = std::move(out);
                        progress = true;
                    }
                }
            }
        }

        // Pass 5: structural cleanup (unused addrs / machines).
        for (bool (*cleanup)(Scenario &) :
             {&dropUnusedAddrs, &dropUnusedMachines}) {
            Scenario cand = res.minimized;
            if (!cleanup(cand))
                continue;
            DiffResult out;
            if (stillFails(cand, out)) {
                res.minimized = std::move(cand);
                res.outcome = std::move(out);
                progress = true;
            }
        }
    }
    return res;
}

} // namespace cxl0::fuzz
