#include "fuzz/generate.hh"

#include "common/hashmix.hh"
#include "common/rng.hh"

namespace cxl0::fuzz
{

using check::Operand;
using check::ProgInstr;
using lang::Scenario;
using model::Op;

namespace
{

Operand
randomOperand(Rng &rng, const GenOptions &g, int numRegs)
{
    // Mostly immediates: register operands read whatever an earlier
    // load left, which is often 0 anyway in tiny programs.
    if (rng.chance(3, 10))
        return Operand::regRef(
            static_cast<int>(rng.nextBelow(numRegs)));
    return Operand::immediate(static_cast<Value>(
        rng.nextBelow(static_cast<uint64_t>(g.maxValue) + 1)));
}

ProgInstr
randomInstr(Rng &rng, const GenOptions &g, size_t naddrs,
            int numRegs)
{
    Addr x = static_cast<Addr>(rng.nextBelow(naddrs));
    int dest = static_cast<int>(rng.nextBelow(numRegs));
    // Weighted kinds: reads and writes dominate, flushes matter for
    // crash scenarios, GPF and RMWs season the mix.
    uint64_t roll = rng.nextBelow(100);
    if (roll < 25)
        return ProgInstr::load(x, dest);
    if (roll < 50) {
        static const Op kStores[] = {Op::LStore, Op::RStore,
                                     Op::MStore};
        return ProgInstr::store(kStores[rng.nextBelow(3)], x,
                                randomOperand(rng, g, numRegs));
    }
    if (roll < 65)
        return ProgInstr::flush(
            rng.chance(1, 2) ? Op::LFlush : Op::RFlush, x);
    if (roll < 70 || !g.allowRmw)
        return ProgInstr::gpf();
    static const Op kRmws[] = {Op::LRmw, Op::RRmw, Op::MRmw};
    Op flavour = kRmws[rng.nextBelow(3)];
    if (roll < 85)
        return ProgInstr::faa(flavour, x,
                              randomOperand(rng, g, numRegs), dest);
    return ProgInstr::cas(flavour, x, randomOperand(rng, g, numRegs),
                          randomOperand(rng, g, numRegs), dest);
}

} // namespace

Scenario
generateScenario(uint64_t seed, const GenOptions &g)
{
    Rng rng(mixBits(seed ^ 0xf02277a4fc3de1afULL));
    Scenario sc;
    sc.name = "fuzz-" + std::to_string(seed);

    if (g.allowVariants) {
        uint64_t v = rng.nextBelow(4);
        sc.variant = v == 2   ? model::ModelVariant::Lwb
                     : v == 3 ? model::ModelVariant::Psn
                              : model::ModelVariant::Base;
    }

    size_t nmachines = 1 + rng.nextBelow(g.maxMachines);
    for (size_t n = 0; n < nmachines; ++n)
        sc.machinePersistent.push_back(rng.chance(3, 4));

    size_t naddrs = 1 + rng.nextBelow(g.maxAddrs);
    for (size_t a = 0; a < naddrs; ++a) {
        sc.addrNames.push_back("x" + std::to_string(a));
        sc.addrOwner.push_back(
            static_cast<NodeId>(rng.nextBelow(nmachines)));
    }

    sc.program.numRegs =
        1 + static_cast<int>(rng.nextBelow(g.maxRegs));
    size_t nthreads = 1 + rng.nextBelow(g.maxThreads);
    for (size_t t = 0; t < nthreads; ++t) {
        check::ProgThread thread;
        thread.node = static_cast<NodeId>(rng.nextBelow(nmachines));
        size_t ninstrs = 1 + rng.nextBelow(g.maxInstrsPerThread);
        for (size_t i = 0; i < ninstrs; ++i)
            thread.code.push_back(
                randomInstr(rng, g, naddrs, sc.program.numRegs));
        sc.program.threads.push_back(std::move(thread));
    }

    if (g.allowCrash && rng.chance(1, 2)) {
        sc.request.maxCrashesPerNode = 1;
        if (!rng.chance(1, 2))
            sc.request.crashableNodes.push_back(
                static_cast<NodeId>(rng.nextBelow(nmachines)));
    }
    return sc;
}

uint64_t
scenarioSeed(uint64_t farmSeed, size_t index)
{
    return mixBits(farmSeed +
                   0x9e3779b97f4a7c15ULL * (index + 1));
}

} // namespace cxl0::fuzz
