/**
 * @file
 * Differential oracles over one scenario.
 *
 * A fuzzer needs an oracle, and the checker stack carries several
 * implementations of the same semantics that are *proven or tested
 * to agree*; any disagreement on any well-formed scenario is a bug
 * by construction. runDifferential drives one scenario through every
 * gate:
 *
 *  - round-trip: parse(dump(sc)) == sc (the canonical-form
 *    guarantee the corpus and the result cache key both lean on);
 *  - determinism + serde: re-running the baseline reproduces a
 *    byte-identical deterministic report projection, and
 *    parseReport(serializeReport(r)) re-serializes identically
 *    (the cache's storage contract);
 *  - reduction: outcome sets under `none`, `tau`, and `ample` must
 *    be identical (the partial-order-reduction soundness claims);
 *  - threads: numThreads 1 vs N must agree (work-stealing /
 *    admission-pinning invariance);
 *  - frontier: DFS vs BFS must agree (visit-order invariance);
 *  - reference: the interned packed-config search vs the deep-copy
 *    reference explorer (Explorer::checkReference) must agree.
 *
 * A baseline run that truncates or times out makes the scenario
 * *not comparable* (truncated outcome subsets are schedule- and
 * order-dependent by design), so it is counted as skipped, never as
 * a divergence; the same applies per-gate when only the wider
 * `none`-reduction graph overflows the budget. Any exception thrown
 * by a checker (CXL0_FATAL/PANIC) is caught and reported as a crash
 * finding.
 */

#ifndef CXL0_FUZZ_DIFFERENTIAL_HH
#define CXL0_FUZZ_DIFFERENTIAL_HH

#include <string>
#include <vector>

#include "lang/run.hh"

namespace cxl0::fuzz
{

struct DiffOptions
{
    /** Per-run config budget (driver override; keeps a pathological
     *  generated scenario from eating the farm's wall clock). */
    size_t maxConfigs = 250000;
    /** The N of the threads-1-vs-N gate. */
    size_t altThreads = 4;
    /** Per-run wall-clock budget in ms; 0 = none. */
    uint64_t timeBudgetMs = 0;
    /** Run the deep-copy reference explorer gate. */
    bool runReference = true;
    /**
     * Skip the reference gate when the unreduced graph visited more
     * configs than this (the deep-copy path re-expands that graph
     * with full State copies — quadratic pain on big scenarios).
     */
    size_t referenceConfigCap = 50000;

    bool operator==(const DiffOptions &other) const = default;
};

struct DiffFinding
{
    std::string gate;   //!< "roundtrip", "reduction-none", ...
    std::string detail; //!< human-readable divergence description
};

struct DiffResult
{
    /** Baseline truncated/timed out: gates not comparable. */
    bool skipped = false;
    /** A checker threw (contained); findings carries the what(). */
    bool crashed = false;
    std::vector<DiffFinding> findings;
    /** Gates individually skipped (e.g. none-graph over budget). */
    std::vector<std::string> gatesSkipped;
    /** The ample/1-thread/DFS baseline report. */
    check::CheckReport baseline;
    size_t gatesRun = 0;

    bool clean() const { return !crashed && findings.empty(); }
};

/** Drive one scenario through every differential gate. */
DiffResult runDifferential(const lang::Scenario &sc,
                           const DiffOptions &opts = {});

} // namespace cxl0::fuzz

#endif // CXL0_FUZZ_DIFFERENTIAL_HH
