#include "fuzz/differential.hh"

#include <exception>
#include <sstream>

#include "check/cache.hh"
#include "obs/progress.hh"
#include "obs/telemetry.hh"

namespace cxl0::fuzz
{

using check::CheckReport;
using check::Outcome;
using lang::Scenario;

namespace
{

lang::RunOptions
exploreOptions(const DiffOptions &d, check::Reduction red,
               size_t threads, check::FrontierPolicy policy)
{
    lang::RunOptions o;
    o.checker = lang::CheckerKind::Explore;
    o.numThreads = threads;
    o.maxConfigs = d.maxConfigs;
    if (d.timeBudgetMs)
        o.timeBudgetMs = d.timeBudgetMs;
    o.reduction = red;
    o.policy = policy;
    return o;
}

/** First element of `a` not in `b`, described; empty when none. */
std::string
firstMissing(const std::set<Outcome> &a, const std::set<Outcome> &b)
{
    for (const Outcome &o : a)
        if (!b.count(o))
            return o.describe();
    return "";
}

bool
compareReports(const CheckReport &base, const CheckReport &other,
               const char *gate, std::vector<DiffFinding> &findings)
{
    bool ok = true;
    if (base.verdict != other.verdict) {
        std::ostringstream os;
        os << "verdict flip: baseline "
           << check::checkVerdictName(base.verdict) << ", " << gate
           << " " << check::checkVerdictName(other.verdict);
        findings.push_back({gate, os.str()});
        ok = false;
    }
    if (base.outcomes != other.outcomes) {
        std::ostringstream os;
        os << "outcome-set divergence: baseline "
           << base.outcomes.size() << " outcomes, " << gate << " "
           << other.outcomes.size();
        std::string lost = firstMissing(base.outcomes,
                                        other.outcomes);
        std::string extra = firstMissing(other.outcomes,
                                         base.outcomes);
        if (!lost.empty())
            os << "; lost " << lost;
        if (!extra.empty())
            os << "; extra " << extra;
        findings.push_back({gate, os.str()});
        ok = false;
    }
    return ok;
}

} // namespace

DiffResult
runDifferential(const Scenario &sc, const DiffOptions &d)
{
    DiffResult res;
    const char *gate = "baseline";
    try {
        // ---- round-trip gate ----------------------------------------
        gate = "roundtrip";
        ++res.gatesRun;
        {
            std::string text = lang::dumpScenario(sc);
            lang::ParseResult parsed = lang::parseScenario(text);
            if (!parsed.ok()) {
                res.findings.push_back(
                    {gate, "canonical dump does not re-parse: " +
                               parsed.error->render()});
                return res;
            }
            if (!(parsed.scenario == sc)) {
                res.findings.push_back(
                    {gate,
                     "parse(dump(sc)) != sc (field drift through "
                     "the serializer)"});
                return res;
            }
        }

        // ---- baseline: ample, 1 thread, DFS -------------------------
        gate = "baseline";
        lang::RunResult base = lang::runScenario(
            sc, exploreOptions(d, check::Reduction::Ample, 1,
                               check::FrontierPolicy::DepthFirst));
        res.baseline = base.report;
        if (!base.error.empty()) {
            res.crashed = true;
            res.findings.push_back(
                {gate, "driver error: " + base.error});
            return res;
        }
        if (base.report.truncated || base.report.timedOut) {
            // Truncated outcome subsets depend on visit order and
            // scheduling by design: not comparable, not a bug.
            res.skipped = true;
            return res;
        }

        // ---- determinism + cache serde ------------------------------
        gate = "determinism";
        ++res.gatesRun;
        {
            std::string bytes = check::serializeReport(base.report);
            lang::RunResult again = lang::runScenario(
                sc,
                exploreOptions(d, check::Reduction::Ample, 1,
                               check::FrontierPolicy::DepthFirst));
            if (check::serializeReport(again.report) != bytes)
                res.findings.push_back(
                    {gate, "re-run of the identical request "
                           "serialized differently"});
            CheckReport parsed;
            if (!check::parseReport(bytes, parsed) ||
                check::serializeReport(parsed) != bytes)
                res.findings.push_back(
                    {"serde", "serializeReport/parseReport do not "
                              "round-trip"});
        }

        // ---- telemetry gate -----------------------------------------
        // Telemetry must be metadata, never identity: the identical
        // request re-run with tracing, metric publication, and a live
        // progress sampler produces a byte-identical report
        // projection and the same interned-config count. This is the
        // fuzz-scale version of the obs byte-identity tests.
        gate = "telemetry";
        ++res.gatesRun;
        {
            obs::TelemetryOptions topt;
            topt.trace = true;
            topt.ringCapacity = 1 << 12;
            obs::Telemetry tel(topt);
            lang::RunResult traced;
            {
                const obs::ScopedTelemetry scope(&tel);
                obs::ProgressOptions popt;
                popt.intervalMs = 5;
                obs::ProgressSampler sampler(tel, popt);
                sampler.start();
                traced = lang::runScenario(
                    sc,
                    exploreOptions(d, check::Reduction::Ample, 1,
                                   check::FrontierPolicy::DepthFirst));
                sampler.stop();
            }
            if (check::serializeReport(traced.report) !=
                check::serializeReport(base.report))
                res.findings.push_back(
                    {gate, "telemetry-on run serialized differently "
                           "from the telemetry-off baseline"});
            if (traced.report.stats.configsInterned !=
                base.report.stats.configsInterned) {
                std::ostringstream os;
                os << "configsInterned drift under telemetry: off "
                   << base.report.stats.configsInterned << ", on "
                   << traced.report.stats.configsInterned;
                res.findings.push_back({gate, os.str()});
            }
            compareReports(base.report, traced.report, gate,
                           res.findings);
        }

        // ---- reduction gates ----------------------------------------
        // Every tier of the reduction stack must reproduce the ample
        // baseline's verdict and outcome set exactly: the unreduced
        // and tau-only graphs from below, and the crash-ample /
        // sleep-set / full (symmetry) stack from above. The upper
        // tiers add state quotients (dead-address canonicalization,
        // dead-pc canonicalization, machine-orbit renaming), so this
        // is the gate that catches an unsound quotient on arbitrary
        // fuzzed programs and model variants.
        bool none_comparable = false;
        CheckReport none_report;
        for (check::Reduction red :
             {check::Reduction::None, check::Reduction::Tau,
              check::Reduction::CrashAmple, check::Reduction::Sleep,
              check::Reduction::Full}) {
            gate = red == check::Reduction::None ? "reduction-none"
                   : red == check::Reduction::Tau ? "reduction-tau"
                   : red == check::Reduction::CrashAmple
                       ? "reduction-crash-ample"
                   : red == check::Reduction::Sleep
                       ? "reduction-sleep"
                       : "reduction-full";
            lang::RunResult r = lang::runScenario(
                sc, exploreOptions(d, red, 1,
                                   check::FrontierPolicy::DepthFirst));
            if (r.report.truncated || r.report.timedOut) {
                // The unreduced graph can overflow a budget the
                // ample graph fits in; that is the reduction
                // working, not a divergence.
                res.gatesSkipped.push_back(gate);
                continue;
            }
            ++res.gatesRun;
            compareReports(base.report, r.report, gate,
                           res.findings);
            if (red == check::Reduction::None) {
                none_comparable = true;
                none_report = r.report;
            }
        }

        // ---- thread-count gates -------------------------------------
        // Run both the baseline mode and the full reduction stack
        // under work-stealing: sleep-word merging and the state
        // quotients must give the same answers on every steal
        // schedule.
        if (d.altThreads > 1) {
            for (check::Reduction red : {check::Reduction::Ample,
                                         check::Reduction::Full}) {
                gate = red == check::Reduction::Ample
                           ? "threads"
                           : "threads-full";
                lang::RunResult r = lang::runScenario(
                    sc,
                    exploreOptions(d, red, d.altThreads,
                                   check::FrontierPolicy::DepthFirst));
                if (r.report.truncated || r.report.timedOut) {
                    res.gatesSkipped.push_back(gate);
                } else {
                    ++res.gatesRun;
                    compareReports(base.report, r.report, gate,
                                   res.findings);
                }
            }
        }

        // ---- frontier-policy gate -----------------------------------
        gate = "frontier";
        {
            lang::RunResult r = lang::runScenario(
                sc, exploreOptions(d, check::Reduction::Ample, 1,
                                   check::FrontierPolicy::BreadthFirst));
            if (r.report.truncated || r.report.timedOut) {
                res.gatesSkipped.push_back(gate);
            } else {
                ++res.gatesRun;
                compareReports(base.report, r.report, gate,
                               res.findings);
            }
        }

        // ---- deep-copy reference gate -------------------------------
        gate = "reference";
        if (d.runReference) {
            if (!none_comparable ||
                none_report.stats.configsVisited >
                    d.referenceConfigCap) {
                res.gatesSkipped.push_back(gate);
            } else {
                check::CheckRequest req = sc.request;
                req.maxConfigs = d.maxConfigs;
                if (d.timeBudgetMs)
                    req.timeBudgetMs = d.timeBudgetMs;
                model::Cxl0Model model(sc.config(), sc.variant);
                CheckReport ref =
                    check::Explorer(model, sc.program, req)
                        .checkReference();
                if (ref.truncated || ref.timedOut) {
                    res.gatesSkipped.push_back(gate);
                } else {
                    ++res.gatesRun;
                    compareReports(base.report, ref, gate,
                                   res.findings);
                }
            }
        }
    } catch (const std::exception &e) {
        res.crashed = true;
        res.findings.push_back(
            {gate, std::string("checker threw: ") + e.what()});
    }
    return res;
}

} // namespace cxl0::fuzz
