#include "fuzz/farm.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.hh"
#include "obs/telemetry.hh"

namespace cxl0::fuzz
{

using lang::Scenario;

namespace
{

/** The farm's canonical run: ample, 1 thread, DFS (the baseline the
 *  differential gates compare everything against, and a fully
 *  deterministic request the cache trial can verify byte-wise). */
lang::RunOptions
baselineOptions(const DiffOptions &d)
{
    lang::RunOptions o;
    o.checker = lang::CheckerKind::Explore;
    o.numThreads = 1;
    o.maxConfigs = d.maxConfigs;
    if (d.timeBudgetMs)
        o.timeBudgetMs = d.timeBudgetMs;
    o.reduction = check::Reduction::Ample;
    o.policy = check::FrontierPolicy::DepthFirst;
    return o;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

std::string
findingArtifact(uint64_t seed, const DiffResult &outcome,
                const Scenario &minimized)
{
    std::ostringstream os;
    os << "# fuzz finding (seed " << seed << "): the differential\n";
    os << "# gates disagree on this scenario. Replay with\n";
    os << "#   cxl0check fuzz --replay <this directory>\n";
    for (const DiffFinding &f : outcome.findings)
        os << "# " << f.gate << ": " << f.detail << "\n";
    os << lang::dumpScenario(minimized);
    return os.str();
}

} // namespace

FarmReport
runFarm(const FarmOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();
    FarmReport report;

    struct CleanCase
    {
        uint64_t seed;
        size_t configsVisited;
        Scenario sc;
        std::set<check::Outcome> outcomes;
    };
    std::vector<CleanCase> cleanCases;

    for (size_t i = 0; i < opts.count; ++i) {
        uint64_t seed = scenarioSeed(opts.seed, i);
        const obs::ScopedSpan caseSpan(obs::threadRing(),
                                       "fuzz:case");
        Scenario sc = generateScenario(seed, opts.gen);
        DiffResult r = runDifferential(sc, opts.diff);
        ++report.generated;
        report.gatesRun += r.gatesRun;
        if (r.skipped) {
            ++report.skipped;
            continue;
        }
        if (r.clean()) {
            ++report.clean;
            cleanCases.push_back({seed,
                                  r.baseline.stats.configsVisited,
                                  std::move(sc),
                                  r.baseline.outcomes});
            continue;
        }

        if (r.crashed)
            ++report.crashed;
        else
            ++report.diverged;
        FarmFinding finding;
        finding.seed = seed;
        finding.crashed = r.crashed;
        if (!r.findings.empty()) {
            finding.gate = r.findings.front().gate;
            finding.detail = r.findings.front().detail;
        }
        Scenario minimized = sc;
        DiffResult outcome = r;
        if (opts.shrink) {
            const obs::ScopedSpan shrinkSpan(obs::threadRing(),
                                             "fuzz:shrink");
            ShrinkResult shrunk =
                shrinkScenario(sc, opts.diff, opts.shrinkLimits);
            finding.shrinkAttempts = shrunk.attempts;
            minimized = std::move(shrunk.minimized);
            outcome = std::move(shrunk.outcome);
        }
        finding.filename =
            "finding-" + std::to_string(seed) + ".cxl0";
        finding.artifact = findingArtifact(seed, outcome, minimized);
        CXL0_WARN("fuzz finding at seed ", seed, ": [",
                  finding.gate, "] ", finding.detail);
        report.findings.push_back(std::move(finding));
    }

    // ---- keep-N exports ---------------------------------------------
    if (opts.keep > 0 && !cleanCases.empty()) {
        std::sort(cleanCases.begin(), cleanCases.end(),
                  [](const CleanCase &a, const CleanCase &b) {
                      if (a.configsVisited != b.configsVisited)
                          return a.configsVisited > b.configsVisited;
                      return a.seed < b.seed;
                  });
        size_t n = std::min(opts.keep, cleanCases.size());
        for (size_t k = 0; k < n; ++k) {
            CleanCase &c = cleanCases[k];
            Scenario anchored = c.sc;
            anchored.expectKind = lang::AnchorKind::Exact;
            anchored.expected.assign(c.outcomes.begin(),
                                     c.outcomes.end());
            std::ostringstream os;
            os << "# fuzz farm export (seed " << c.seed << "): the\n";
            os << "# exact outcome set below is the baseline the\n";
            os << "# differential gates agreed on.\n";
            os << lang::dumpScenario(anchored);
            report.kept.push_back(
                {"fuzz-" + std::to_string(c.seed) + ".cxl0",
                 os.str()});
        }
    }

    // ---- cache trial ------------------------------------------------
    if (opts.cacheTrial && !cleanCases.empty()) {
        const obs::ScopedSpan cacheSpan(obs::threadRing(),
                                        "fuzz:cache-trial");
        lang::ServiceOptions so;
        so.run = baselineOptions(opts.diff);
        so.cacheCapacity = opts.cacheCapacity;
        so.cacheDir = opts.cacheDir;
        so.verifyHits = true;
        lang::ScenarioService service(so);
        for (int pass = 0; pass < 2; ++pass) {
            for (const CleanCase &c : cleanCases) {
                lang::ScenarioService::Response resp =
                    service.handle(c.sc);
                if (!resp.byteIdentical) {
                    report.cacheByteIdentical = false;
                    CXL0_WARN("cache hit not byte-identical to "
                              "recompute at seed ", c.seed);
                }
            }
        }
        const check::CacheStats &cs = service.cacheStats();
        report.cacheLookups = cs.hits + cs.misses;
        report.cacheHits = cs.hits;
    }

    report.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return report;
}

std::string
farmJson(const FarmOptions &opts, const FarmReport &report,
         bool stable)
{
    std::ostringstream os;
    double secs = stable ? 0.0 : report.seconds;
    double rate = (stable || report.seconds <= 0.0)
                      ? 0.0
                      : static_cast<double>(report.generated) /
                            report.seconds;
    double hitRate =
        report.cacheLookups == 0
            ? 0.0
            : static_cast<double>(report.cacheHits) /
                  static_cast<double>(report.cacheLookups);
    os << "{\n";
    os << "  \"bench\": \"fuzz\",\n";
    os << "  \"seed\": " << opts.seed << ",\n";
    os << "  \"count\": " << opts.count << ",\n";
    os << "  \"max_configs\": " << opts.diff.maxConfigs << ",\n";
    os << "  \"alt_threads\": " << opts.diff.altThreads << ",\n";
    os << "  \"generated\": " << report.generated << ",\n";
    os << "  \"clean\": " << report.clean << ",\n";
    os << "  \"skipped\": " << report.skipped << ",\n";
    os << "  \"diverged\": " << report.diverged << ",\n";
    os << "  \"crashed\": " << report.crashed << ",\n";
    os << "  \"gates_run\": " << report.gatesRun << ",\n";
    os << "  \"findings\": [\n";
    for (size_t i = 0; i < report.findings.size(); ++i) {
        const FarmFinding &f = report.findings[i];
        os << "    {\"seed\": " << f.seed << ", \"gate\": \""
           << jsonEscape(f.gate) << "\", \"crashed\": "
           << (f.crashed ? "true" : "false")
           << ", \"shrink_attempts\": " << f.shrinkAttempts
           << ", \"artifact\": \"" << jsonEscape(f.filename)
           << "\", \"detail\": \"" << jsonEscape(f.detail) << "\"}";
        os << (i + 1 == report.findings.size() ? "\n" : ",\n");
    }
    os << "  ],\n";
    os << "  \"kept\": [";
    for (size_t i = 0; i < report.kept.size(); ++i)
        os << (i ? ", " : "") << "\""
           << jsonEscape(report.kept[i].filename) << "\"";
    os << "],\n";
    os << "  \"cache\": {\"lookups\": " << report.cacheLookups
       << ", \"hits\": " << report.cacheHits << ", \"hit_rate\": "
       << hitRate << ", \"byte_identical\": "
       << (report.cacheByteIdentical ? "true" : "false") << "},\n";
    os << "  \"all_pass\": " << (report.pass() ? "true" : "false")
       << ",\n";
    os << "  \"seconds\": " << secs << ",\n";
    os << "  \"scenarios_per_sec\": " << rate << "\n";
    os << "}\n";
    return os.str();
}

} // namespace cxl0::fuzz
