/**
 * @file
 * The crash-injection campaign: enumerate crash points, run every
 * plan, bucket failures, shrink them, and emit corpus artifacts.
 *
 * For each (structure, persistence mode) unit the campaign generates
 * a seeded workload, discovers its persist boundaries with one
 * instrumented crash-free run, then arms an owner crash before every
 * discovered step — exhaustively when the boundary count fits the
 * budget, from a seeded sample otherwise. Violations are bucketed by
 * schedule shape (crashed primitive kind × structure × op mix); the
 * first violation per bucket is delta-debugged to a minimal plan and
 * written as a replayable artifact under the corpus directory.
 */

#ifndef CXL0_INJECT_CAMPAIGN_HH
#define CXL0_INJECT_CAMPAIGN_HH

#include <map>
#include <string>
#include <vector>

#include "inject/plan.hh"
#include "inject/shrink.hh"

namespace cxl0::inject
{

/** Campaign configuration. */
struct CampaignOptions
{
    std::vector<Structure> structures = allStructures();
    std::vector<flit::PersistMode> modes = {
        flit::PersistMode::FlitCxl0};
    model::ModelVariant variant = model::ModelVariant::Base;
    /**
     * Force one propagation policy for every unit; by default each
     * mode gets defaultPolicyFor(mode): deterministic Manual for the
     * blocking-flush modes (whose store-to-flush window is a genuine
     * model behaviour under Random propagation, see
     * src/inject/README.md), Random for the modes that close it.
     */
    std::optional<runtime::PropagationPolicy> policyOverride;
    uint64_t seed = 1;
    size_t nodes = 2;
    size_t cellsPerNode = 256;
    size_t logCapacity = 8;
    WorkloadParams params;
    /** Crash points per unit: exhaustive below, seeded sample above. */
    size_t crashBudget = 64;
    RunLimits limits;
    ShrinkLimits shrink;
    /** Shrink + serialize the first violation of each bucket. */
    bool shrinkViolations = true;
    /** Artifact output directory; empty = don't write artifacts. */
    std::string corpusDir;
    /** Additionally run this structure under the LWB variant. */
    std::optional<Structure> lwbStructure;
};

/**
 * The propagation policy a mode is verified under by default (see
 * CampaignOptions::policyOverride).
 */
runtime::PropagationPolicy defaultPolicyFor(flit::PersistMode mode);

/** Sorted unique op names joined with '+', e.g. "pop+push". */
std::string opMixSignature(const std::vector<WorkloadOp> &ops);

/**
 * Failure bucket key:
 * `<structure>/<mode>/<crashed-primitive>/<op-mix>`.
 */
std::string bucketKey(const CampaignCase &c, model::Op crash_kind);

/** Per-bucket verdict tallies. */
struct BucketStats
{
    size_t cases = 0;
    size_t pass = 0;
    size_t violations = 0;
    size_t truncated = 0;
    size_t skipped = 0;
};

/** One shrunk violation and its artifact. */
struct ShrunkRecord
{
    std::string bucket;
    CampaignCase minimized;
    CaseOutcome outcome;
    /** Where the artifact was written; empty if corpusDir was unset. */
    std::string artifactPath;
    size_t attempts = 0;
    size_t opsDropped = 0;
};

/** Aggregated campaign results. */
struct CampaignReport
{
    size_t cases = 0;
    size_t pass = 0;
    size_t violations = 0;
    /** Violations in modes that claim durable linearizability. */
    size_t durableViolations = 0;
    size_t truncated = 0;
    size_t skipped = 0;
    std::map<std::string, BucketStats> buckets;
    /** Keyed by structure name (suffixed "@lwb"/"@psn" off-Base). */
    std::map<std::string, BucketStats> perStructure;
    std::vector<ShrunkRecord> shrunk;
    /** No durable-mode case produced a violation. */
    bool allDurablePass = true;
    /** Panics muted inside the cases' quiet scopes, summed — a
     *  contained-corruption storm shows up here, not on stderr. */
    uint64_t mutedPanics = 0;
};

/** Run the whole campaign. Deterministic in `opts`. */
CampaignReport runCampaign(const CampaignOptions &opts);

/**
 * Render the report in the tracked bench JSON shape
 * (BENCH_campaign.json). With `stable`, wall-clock fields are zeroed
 * so two runs from the same seed compare bit-identically.
 */
std::string campaignJson(const CampaignOptions &opts,
                         const CampaignReport &report, double seconds,
                         bool stable);

} // namespace cxl0::inject

#endif // CXL0_INJECT_CAMPAIGN_HH
