#include "inject/campaign.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "model/label.hh"
#include "obs/telemetry.hh"

namespace cxl0::inject
{

namespace
{

const char *
variantSuffix(model::ModelVariant v)
{
    switch (v) {
      case model::ModelVariant::Base: return "";
      case model::ModelVariant::Lwb: return "@lwb";
      case model::ModelVariant::Psn: return "@psn";
    }
    return "";
}

/** One (structure, mode, variant) verification unit. */
struct Unit
{
    Structure structure;
    flit::PersistMode mode;
    model::ModelVariant variant;
};

/**
 * The crash steps to test for one unit: every step in
 * [setupSteps, totalSteps) when that fits the budget, otherwise a
 * seeded sample without replacement (sorted, so runs stay ordered).
 */
std::vector<uint64_t>
crashSteps(const Discovery &d, size_t budget, uint64_t sample_seed)
{
    std::vector<uint64_t> steps;
    for (uint64_t s = d.setupSteps; s < d.totalSteps; ++s)
        steps.push_back(s);
    if (budget == 0 || steps.size() <= budget)
        return steps;
    Rng rng(sample_seed);
    rng.shuffle(steps);
    steps.resize(budget);
    std::sort(steps.begin(), steps.end());
    return steps;
}

std::string
sanitizeForFilename(std::string s)
{
    for (char &c : s)
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
              c == '_' || c == '.'))
            c = '-';
    return s;
}

void
accumulate(BucketStats &b, CaseOutcome::Verdict v)
{
    b.cases += 1;
    switch (v) {
      case CaseOutcome::Verdict::Pass: b.pass += 1; break;
      case CaseOutcome::Verdict::Violation: b.violations += 1; break;
      case CaseOutcome::Verdict::Truncated: b.truncated += 1; break;
      case CaseOutcome::Verdict::Skipped: b.skipped += 1; break;
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

} // namespace

runtime::PropagationPolicy
defaultPolicyFor(flit::PersistMode mode)
{
    switch (mode) {
    case flit::PersistMode::PersistAll:
    case flit::PersistMode::FlitVerified:
        // These close the store-to-flush window, so they hold up (and
        // are verified) under adversarial random propagation.
        return runtime::PropagationPolicy::Random;
    case flit::PersistMode::None:
    case flit::PersistMode::FlitCxl0:
    case flit::PersistMode::FlitCxl0AddrOpt:
    case flit::PersistMode::FlitOriginal:
    case flit::PersistMode::FlitAsync:
        // Deterministic propagation: the blocking-flush modes lose a
        // mid-propagation line when its owner crashes between a store
        // and the matching flush (a genuine CXL0 behaviour, not an
        // implementation bug — see src/inject/README.md), so their
        // durable-linearizability claim is scoped to Manual here.
        return runtime::PropagationPolicy::Manual;
    }
    return runtime::PropagationPolicy::Manual;
}

std::string
opMixSignature(const std::vector<WorkloadOp> &ops)
{
    std::set<std::string> names;
    for (const WorkloadOp &op : ops)
        names.insert(op.name);
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += "+";
        out += n;
    }
    return out.empty() ? "none" : out;
}

std::string
bucketKey(const CampaignCase &c, model::Op crash_kind)
{
    std::string key = structureName(c.structure);
    key += variantSuffix(c.variant);
    key += "/";
    key += flit::persistModeName(c.mode);
    key += "/";
    key += model::opName(crash_kind);
    key += "/";
    key += opMixSignature(c.ops);
    return key;
}

CampaignReport
runCampaign(const CampaignOptions &opts)
{
    CampaignReport report;

    std::vector<Unit> units;
    for (Structure s : opts.structures)
        for (flit::PersistMode m : opts.modes)
            units.push_back(Unit{s, m, opts.variant});
    if (opts.lwbStructure)
        for (flit::PersistMode m : opts.modes)
            units.push_back(
                Unit{*opts.lwbStructure, m, model::ModelVariant::Lwb});

    size_t unit_index = 0;
    for (const Unit &unit : units) {
        unit_index += 1;
        const obs::ScopedSpan unitSpan(obs::threadRing(),
                                       "campaign:unit");
        CampaignCase base;
        base.structure = unit.structure;
        base.mode = unit.mode;
        base.variant = unit.variant;
        base.policy = opts.policyOverride
                          ? *opts.policyOverride
                          : defaultPolicyFor(unit.mode);
        base.seed = opts.seed;
        base.nodes = opts.nodes;
        base.cellsPerNode = opts.cellsPerNode;
        base.logCapacity = opts.logCapacity;
        base.params = opts.params;
        generateOps(base);

        Discovery d = discover(base);
        uint64_t sample_seed =
            opts.seed * 0x9e3779b97f4a7c15ULL + unit_index;
        std::string structure_key =
            std::string(structureName(unit.structure)) +
            variantSuffix(unit.variant);
        std::set<std::string> shrunk_buckets;

        for (uint64_t step :
             crashSteps(d, opts.crashBudget, sample_seed)) {
            CampaignCase c = base;
            c.hasCrash = true;
            c.crashStep = step;
            c.crashNode = 0; // owner crash: the structure's home node
            CaseOutcome out = runCase(c, opts.limits);
            report.mutedPanics += out.mutedPanics;
            if (out.mutedPanics > 0) {
                if (obs::Telemetry *t = obs::current())
                    t->countMutedPanics(out.mutedPanics);
            }

            std::string bucket = bucketKey(c, out.crashOpKind);
            accumulate(report.buckets[bucket], out.verdict);
            accumulate(report.perStructure[structure_key], out.verdict);
            report.cases += 1;
            switch (out.verdict) {
              case CaseOutcome::Verdict::Pass:
                report.pass += 1;
                break;
              case CaseOutcome::Verdict::Violation:
                report.violations += 1;
                break;
              case CaseOutcome::Verdict::Truncated:
                report.truncated += 1;
                break;
              case CaseOutcome::Verdict::Skipped:
                report.skipped += 1;
                break;
            }

            if (out.verdict != CaseOutcome::Verdict::Violation)
                continue;
            if (flit::modeIsDurable(unit.mode)) {
                report.durableViolations += 1;
                report.allDurablePass = false;
            }
            if (!opts.shrinkViolations ||
                !shrunk_buckets.insert(bucket).second)
                continue;

            // First violation of this bucket: minimize it and emit a
            // replayable artifact.
            ShrinkLimits slimits = opts.shrink;
            slimits.run = opts.limits;
            const obs::ScopedSpan shrinkSpan(obs::threadRing(),
                                             "campaign:shrink");
            ShrinkResult sres = shrinkCase(c, slimits);
            ShrunkRecord rec;
            rec.bucket = bucket;
            rec.minimized = sres.minimized;
            rec.outcome = sres.outcome;
            rec.attempts = sres.attempts;
            rec.opsDropped = sres.opsDropped;
            // Pin the propagation schedule so the artifact replays
            // bit-identically regardless of the RNG behind Random.
            rec.minimized.evictions = sres.outcome.evictions;
            rec.minimized.replayEvictions =
                !rec.minimized.evictions.empty();
            if (!opts.corpusDir.empty()) {
                std::filesystem::create_directories(opts.corpusDir);
                std::string name =
                    sanitizeForFilename(bucket) + "-seed" +
                    std::to_string(opts.seed) + ".txt";
                std::filesystem::path path =
                    std::filesystem::path(opts.corpusDir) / name;
                std::ofstream f(path);
                f << writeArtifactText(rec.minimized, rec.outcome);
                rec.artifactPath = path.string();
            }
            report.shrunk.push_back(std::move(rec));
        }
    }
    return report;
}

std::string
campaignJson(const CampaignOptions &opts, const CampaignReport &report,
             double seconds, bool stable)
{
    std::ostringstream os;
    double secs = stable ? 0.0 : seconds;
    double rate =
        (stable || seconds <= 0.0)
            ? 0.0
            : static_cast<double>(report.cases) / seconds;
    os << "{\n";
    os << "  \"bench\": \"campaign\",\n";
    os << "  \"seed\": " << opts.seed << ",\n";
    os << "  \"variant\": \"" << model::variantName(opts.variant)
       << "\",\n";
    os << "  \"structures\": [";
    for (size_t i = 0; i < opts.structures.size(); ++i)
        os << (i ? ", " : "") << "\""
           << structureName(opts.structures[i]) << "\"";
    os << "],\n";
    os << "  \"modes\": [";
    for (size_t i = 0; i < opts.modes.size(); ++i)
        os << (i ? ", " : "") << "\""
           << flit::persistModeName(opts.modes[i]) << "\"";
    os << "],\n";
    os << "  \"cases\": " << report.cases << ",\n";
    os << "  \"pass\": " << report.pass << ",\n";
    os << "  \"violations\": " << report.violations << ",\n";
    os << "  \"durable_violations\": " << report.durableViolations
       << ",\n";
    os << "  \"truncated\": " << report.truncated << ",\n";
    os << "  \"skipped\": " << report.skipped << ",\n";
    os << "  \"muted_panics\": " << report.mutedPanics << ",\n";
    os << "  \"all_durable_pass\": "
       << (report.allDurablePass ? "true" : "false") << ",\n";
    os << "  \"seconds\": " << secs << ",\n";
    os << "  \"cases_per_sec\": " << rate << ",\n";
    os << "  \"buckets\": {\n";
    size_t i = 0;
    for (const auto &[key, b] : report.buckets) {
        os << "    \"" << jsonEscape(key) << "\": {\"cases\": "
           << b.cases << ", \"pass\": " << b.pass
           << ", \"violations\": " << b.violations
           << ", \"truncated\": " << b.truncated << "}";
        os << (++i == report.buckets.size() ? "\n" : ",\n");
    }
    os << "  },\n";
    os << "  \"per_structure\": {\n";
    i = 0;
    for (const auto &[key, b] : report.perStructure) {
        os << "    \"" << jsonEscape(key) << "\": {\"cases\": "
           << b.cases << ", \"pass\": " << b.pass
           << ", \"violations\": " << b.violations
           << ", \"truncated\": " << b.truncated << "}";
        os << (++i == report.perStructure.size() ? "\n" : ",\n");
    }
    os << "  },\n";
    os << "  \"shrunk\": [\n";
    for (size_t k = 0; k < report.shrunk.size(); ++k) {
        const ShrunkRecord &r = report.shrunk[k];
        os << "    {\"bucket\": \"" << jsonEscape(r.bucket)
           << "\", \"ops\": " << r.minimized.ops.size()
           << ", \"crash_step\": " << r.minimized.crashStep
           << ", \"ops_dropped\": " << r.opsDropped
           << ", \"attempts\": " << r.attempts << ", \"artifact\": \""
           << jsonEscape(r.artifactPath) << "\"}";
        os << (k + 1 == report.shrunk.size() ? "\n" : ",\n");
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace cxl0::inject
