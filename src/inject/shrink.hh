/**
 * @file
 * Delta-debugging shrinker for violating crash plans.
 *
 * Given a case whose execution produced a durable-linearizability
 * violation, the shrinker searches for a smaller case that still
 * violates, along three axes:
 *   1. drop workload operations (greedy one-at-a-time removal),
 *   2. shrink argument values toward 1 (the smallest non-initial
 *      value),
 *   3. crash as early as possible (the first violating crash step of
 *      the reduced workload).
 * Every candidate is re-validated by a full re-discovery + execution,
 * so the minimized plan is violating by construction, and the total
 * number of case executions is capped to keep shrinking bounded.
 */

#ifndef CXL0_INJECT_SHRINK_HH
#define CXL0_INJECT_SHRINK_HH

#include "inject/plan.hh"

namespace cxl0::inject
{

/** Shrinking knobs. */
struct ShrinkLimits
{
    /** Cap on total case executions across the whole shrink. */
    size_t maxAttempts = 2000;
    /** Per-case resource limits for candidate validation. */
    RunLimits run;
};

/** Result of shrinking one violating case. */
struct ShrinkResult
{
    /** The minimized, still-violating case. */
    CampaignCase minimized;
    /** Outcome of the minimized case's final validation run. */
    CaseOutcome outcome;
    /** Case executions spent. */
    size_t attempts = 0;
    /** Ops dropped from the original workload. */
    size_t opsDropped = 0;
};

/**
 * Minimize `violating` (which must have produced a Violation verdict).
 * Always returns a case that violates — at worst the input itself.
 */
ShrinkResult shrinkCase(const CampaignCase &violating,
                        const ShrinkLimits &limits);

} // namespace cxl0::inject

#endif // CXL0_INJECT_SHRINK_HH
