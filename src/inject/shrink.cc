#include "inject/shrink.hh"

namespace cxl0::inject
{

namespace
{

/**
 * Re-discover the boundaries of `base`'s workload and scan crash
 * steps in ascending order; returns the first violating case (which
 * therefore has the earliest violating crash) or nullopt.
 */
std::optional<std::pair<CampaignCase, CaseOutcome>>
firstViolation(const CampaignCase &base, const ShrinkLimits &limits,
               size_t &attempts)
{
    CampaignCase probe = base;
    probe.hasCrash = false;
    Discovery d = discover(probe);
    attempts += 1;
    for (uint64_t step = d.setupSteps; step < d.totalSteps; ++step) {
        if (attempts >= limits.maxAttempts)
            return std::nullopt;
        CampaignCase cand = base;
        cand.hasCrash = true;
        cand.crashStep = step;
        CaseOutcome out = runCase(cand, limits.run);
        attempts += 1;
        if (out.verdict == CaseOutcome::Verdict::Violation)
            return std::make_pair(std::move(cand), std::move(out));
    }
    return std::nullopt;
}

} // namespace

ShrinkResult
shrinkCase(const CampaignCase &violating, const ShrinkLimits &limits)
{
    ShrinkResult res;
    res.minimized = violating;
    res.outcome = runCase(violating, limits.run);
    res.attempts = 1;
    if (res.outcome.verdict != CaseOutcome::Verdict::Violation)
        return res; // nothing to shrink; report the input as-is

    // Axis 3 first: pull the crash as early as the full workload
    // allows, so op removal below starts from the earliest failure.
    if (auto hit = firstViolation(res.minimized, limits, res.attempts)) {
        res.minimized = std::move(hit->first);
        res.outcome = std::move(hit->second);
    }

    // Axis 1: greedy one-at-a-time op removal; every successful drop
    // re-finds the earliest violating crash for the reduced workload.
    bool progress = true;
    while (progress && res.attempts < limits.maxAttempts) {
        progress = false;
        for (size_t i = 0; i < res.minimized.ops.size(); ++i) {
            if (res.minimized.ops.size() <= 1 ||
                res.attempts >= limits.maxAttempts)
                break;
            CampaignCase cand = res.minimized;
            cand.ops.erase(cand.ops.begin() +
                           static_cast<ptrdiff_t>(i));
            if (auto hit = firstViolation(cand, limits, res.attempts)) {
                res.minimized = std::move(hit->first);
                res.outcome = std::move(hit->second);
                res.opsDropped += 1;
                progress = true;
                break;
            }
        }
    }

    // Axis 2: shrink argument values toward 1. Arguments can steer
    // control flow (fresh vs. overwrite paths), so each change
    // re-validates with a full re-discovery.
    for (size_t i = 0;
         i < res.minimized.ops.size() && res.attempts < limits.maxAttempts;
         ++i) {
        for (Value WorkloadOp::*field :
             {&WorkloadOp::arg, &WorkloadOp::arg2}) {
            if (res.minimized.ops[i].*field <= 1)
                continue;
            CampaignCase cand = res.minimized;
            cand.ops[i].*field = 1;
            if (auto hit = firstViolation(cand, limits, res.attempts)) {
                res.minimized = std::move(hit->first);
                res.outcome = std::move(hit->second);
            }
        }
    }
    return res;
}

} // namespace cxl0::inject
