#include "inject/plan.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "hist/serialize.hh"
#include "obs/telemetry.hh"
#include "lang/scenario.hh"
#include "model/label.hh"

namespace cxl0::inject
{

namespace
{

const char *
variantWord(model::ModelVariant v)
{
    switch (v) {
      case model::ModelVariant::Base: return "base";
      case model::ModelVariant::Lwb: return "lwb";
      case model::ModelVariant::Psn: return "psn";
    }
    return "?";
}

const char *
policyWord(runtime::PropagationPolicy p)
{
    switch (p) {
      case runtime::PropagationPolicy::Manual: return "manual";
      case runtime::PropagationPolicy::Random: return "random";
      case runtime::PropagationPolicy::Eager: return "eager";
    }
    return "?";
}

std::optional<runtime::PropagationPolicy>
policyFromWord(const std::string &word)
{
    if (word == "manual")
        return runtime::PropagationPolicy::Manual;
    if (word == "random")
        return runtime::PropagationPolicy::Random;
    if (word == "eager")
        return runtime::PropagationPolicy::Eager;
    return std::nullopt;
}

/** A constructed system + transformation runtime for one case. */
struct Rig
{
    std::unique_ptr<runtime::CxlSystem> sys;
    std::unique_ptr<flit::FlitRuntime> rt;
};

Rig
buildRig(const CampaignCase &c)
{
    runtime::SystemOptions o(model::SystemConfig::uniform(
        c.nodes, c.cellsPerNode, /*persistent=*/true));
    o.variant = c.variant;
    o.policy = c.policy;
    o.seed = c.seed;
    o.cost = runtime::CostModel::zero();
    Rig rig;
    rig.sys = std::make_unique<runtime::CxlSystem>(std::move(o));
    rig.rt = std::make_unique<flit::FlitRuntime>(*rig.sys, c.mode);
    return rig;
}

NodeId
nodeOfThread(const CampaignCase &c, int thread)
{
    return static_cast<NodeId>(static_cast<size_t>(thread) % c.nodes);
}

NodeId
recoveryNode(const CampaignCase &c)
{
    if (!c.hasCrash)
        return 0;
    for (size_t n = 0; n < c.nodes; ++n)
        if (static_cast<NodeId>(n) != c.crashNode)
            return static_cast<NodeId>(n);
    return 0;
}

} // namespace

void
generateOps(CampaignCase &c)
{
    c.ops = makeWorkload(c.structure, c.seed, c.params);
}

Discovery
discover(const CampaignCase &c)
{
    Rig rig = buildRig(c);
    if (c.replayEvictions)
        rig.sys->setEvictionReplay(c.evictions);
    rig.sys->enableStepTrace(true);
    std::unique_ptr<Subject> subject =
        makeSubject(c.structure, *rig.rt, /*home=*/0, c.logCapacity);
    Discovery d;
    d.setupSteps = rig.sys->opCount();
    for (const WorkloadOp &op : c.ops)
        subject->execute(nodeOfThread(c, op.thread), op);
    d.totalSteps = rig.sys->opCount();
    d.trace = rig.sys->stepTrace();
    d.evictions = rig.sys->evictionTrace();
    return d;
}

CaseOutcome
runCase(const CampaignCase &c, const RunLimits &limits)
{
    CaseOutcome outcome;
    const uint64_t mutedBefore = mutedPanicCount();
    Rig rig = buildRig(c);
    if (c.replayEvictions)
        rig.sys->setEvictionReplay(c.evictions);
    rig.sys->enableStepTrace(true);
    std::unique_ptr<Subject> subject =
        makeSubject(c.structure, *rig.rt, /*home=*/0, c.logCapacity);
    if (c.hasCrash)
        rig.sys->armCrash(c.crashStep, c.crashNode);

    std::vector<uint64_t> epoch0(c.nodes);
    for (size_t n = 0; n < c.nodes; ++n)
        epoch0[n] = rig.sys->epoch(static_cast<NodeId>(n));

    // Main phase: one high-level op at a time; crash windows are the
    // primitives *within* an op. Threads on a crashed machine die:
    // the in-flight op stays pending, later ops never start.
    hist::HistoryRecorder rec;
    try {
        // Panics in here are expected outcomes (corruption verdicts
        // below), not bugs — don't let each one spam stderr.
        const ScopedQuietErrors quiet;
        for (const WorkloadOp &op : c.ops) {
            NodeId node = nodeOfThread(c, op.thread);
            if (rig.sys->epoch(node) != epoch0[node])
                continue;
            size_t handle =
                rec.invoke(op.thread, op.name, op.arg, op.arg2);
            try {
                Value ret = subject->execute(node, op);
                rec.respond(handle, ret);
            } catch (const runtime::ThreadKilled &) {
                // Pending forever: the issuing machine crashed mid-op.
            }
        }

        if (c.hasCrash && !rig.sys->armedCrashesFired()) {
            // The (possibly shrunk) workload never reached the armed
            // step; nothing was tested.
            outcome.verdict = CaseOutcome::Verdict::Skipped;
            outcome.evictions = rig.sys->evictionTrace();
            outcome.mutedPanics = mutedPanicCount() - mutedBefore;
            return outcome;
        }

        // Recovery + observation run on a surviving machine.
        const obs::ScopedSpan recoverSpan(obs::threadRing(),
                                          "recover");
        NodeId rnode = recoveryNode(c);
        subject->recover(rnode);
        for (const WorkloadOp &op :
             makeObservers(c.structure, c.params)) {
            size_t handle =
                rec.invoke(op.thread, op.name, op.arg, op.arg2);
            rec.respond(handle, subject->execute(rnode, op));
        }
    } catch (const std::logic_error &e) {
        // A structure invariant panicked: under an unsound persist
        // mode a crash can lose a store the structure's pointers rely
        // on, and the recovered structure faults (e.g. a dangling
        // queue pointer). That is the durability violation itself,
        // not a harness error — record it as one so the shrinker and
        // buckets see it like any linearizability failure.
        outcome.history = rec.snapshot();
        outcome.evictions = rig.sys->evictionTrace();
        std::vector<runtime::StepRecord> tr = rig.sys->stepTrace();
        if (c.hasCrash && c.crashStep < tr.size())
            outcome.crashOpKind = tr[c.crashStep].op;
        outcome.verdict = CaseOutcome::Verdict::Violation;
        outcome.lin.linearizable = false;
        outcome.lin.explanation =
            std::string("structure corrupted after crash: ") +
            e.what();
        outcome.mutedPanics = mutedPanicCount() - mutedBefore;
        return outcome;
    }

    outcome.history = rec.snapshot();
    outcome.evictions = rig.sys->evictionTrace();
    std::vector<runtime::StepRecord> trace = rig.sys->stepTrace();
    if (c.hasCrash && c.crashStep < trace.size())
        outcome.crashOpKind = trace[c.crashStep].op;

    std::unique_ptr<hist::SequentialSpec> spec =
        makeSpec(c.structure, c.logCapacity);
    hist::LinOptions lopt;
    lopt.maxOps = limits.histMaxOps;
    lopt.timeBudgetMs = limits.caseTimeBudgetMs;
    outcome.lin =
        hist::checkDurablyLinearizable(outcome.history, *spec, lopt);
    // A history can exceed the op bound spuriously (observers on top
    // of a long workload); widen the bound a bounded number of times.
    for (size_t retry = 0;
         outcome.lin.truncated && retry < limits.retries &&
         outcome.history.size() > lopt.maxOps && lopt.maxOps < 63;
         ++retry) {
        lopt.maxOps = std::min<size_t>(63, lopt.maxOps + 8);
        outcome.lin =
            hist::checkDurablyLinearizable(outcome.history, *spec, lopt);
    }

    if (outcome.lin.linearizable)
        outcome.verdict = CaseOutcome::Verdict::Pass;
    else if (outcome.lin.truncated)
        outcome.verdict = CaseOutcome::Verdict::Truncated;
    else
        outcome.verdict = CaseOutcome::Verdict::Violation;
    outcome.mutedPanics = mutedPanicCount() - mutedBefore;
    return outcome;
}

const char *
verdictName(CaseOutcome::Verdict v)
{
    switch (v) {
      case CaseOutcome::Verdict::Pass: return "pass";
      case CaseOutcome::Verdict::Violation: return "violation";
      case CaseOutcome::Verdict::Truncated: return "truncated";
      case CaseOutcome::Verdict::Skipped: return "skipped";
    }
    return "?";
}

std::string
writeArtifactText(const CampaignCase &c, const CaseOutcome &outcome)
{
    std::ostringstream os;
    os << "# cxl0 campaign artifact v1\n";
    os << "structure " << structureName(c.structure) << "\n";
    os << "mode " << flit::persistModeName(c.mode) << "\n";
    os << "variant " << variantWord(c.variant) << "\n";
    os << "policy " << policyWord(c.policy) << "\n";
    os << "seed " << c.seed << "\n";
    os << "nodes " << c.nodes << "\n";
    os << "cells " << c.cellsPerNode << "\n";
    os << "log-capacity " << c.logCapacity << "\n";
    os << "threads " << c.params.numThreads << "\n";
    os << "num-ops " << c.params.numOps << "\n";
    os << "max-value " << c.params.maxValue << "\n";
    if (c.hasCrash) {
        os << "crash-step " << c.crashStep << "\n";
        os << "crash-node " << c.crashNode << "\n";
    }
    os << "replay-evictions " << (c.replayEvictions ? 1 : 0) << "\n";
    for (const WorkloadOp &op : c.ops)
        os << "op " << op.thread << " " << op.name << " " << op.arg
           << " " << op.arg2 << "\n";
    for (const runtime::EvictEvent &e : c.evictions)
        os << "evict " << e.step << " " << e.node << " " << e.addr
           << "\n";
    os << "end\n";

    // Informational diagnosis; the parser stops at "end".
    os << "#\n# verdict: " << verdictName(outcome.verdict) << "\n";
    if (outcome.verdict != CaseOutcome::Verdict::Skipped && c.hasCrash)
        os << "# crash primitive: " << model::opName(outcome.crashOpKind)
           << "\n";
    os << "# history:\n";
    std::istringstream hist(hist::dumpHistory(outcome.history));
    std::string line;
    while (std::getline(hist, line))
        os << "#   " << line << "\n";
    if (!outcome.lin.explanation.empty()) {
        os << "# explanation:\n";
        std::istringstream expl(outcome.lin.explanation);
        while (std::getline(expl, line))
            os << "#   " << line << "\n";
    }
    return os.str();
}

std::optional<CampaignCase>
parseArtifact(const std::string &text, std::string *error)
{
    auto fail = [&](size_t line, const std::string &why)
        -> std::optional<CampaignCase> {
        if (error)
            *error = "line " + std::to_string(line) + ": " + why;
        return std::nullopt;
    };

    CampaignCase c;
    bool saw_end = false;
    std::istringstream is(text);
    std::string line;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        lineno += 1;
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key) || key[0] == '#')
            continue;
        if (key == "end") {
            saw_end = true;
            break;
        }
        if (key == "op") {
            WorkloadOp op;
            if (!(ls >> op.thread >> op.name >> op.arg >> op.arg2))
                return fail(lineno, "malformed op line");
            c.ops.push_back(std::move(op));
            continue;
        }
        if (key == "evict") {
            runtime::EvictEvent e;
            uint64_t node = 0;
            if (!(ls >> e.step >> node >> e.addr))
                return fail(lineno, "malformed evict line");
            e.node = static_cast<NodeId>(node);
            c.evictions.push_back(e);
            continue;
        }
        std::string word;
        if (!(ls >> word))
            return fail(lineno, "missing value for '" + key + "'");
        auto asNumber = [&](uint64_t &out) {
            std::istringstream ws(word);
            return static_cast<bool>(ws >> out) && ws.eof();
        };
        uint64_t num = 0;
        if (key == "structure") {
            auto s = structureFromName(word);
            if (!s)
                return fail(lineno, "unknown structure '" + word + "'");
            c.structure = *s;
        } else if (key == "mode") {
            auto m = persistModeFromName(word);
            if (!m)
                return fail(lineno, "unknown mode '" + word + "'");
            c.mode = *m;
        } else if (key == "variant") {
            if (!lang::variantFromWord(word, c.variant))
                return fail(lineno, "unknown variant '" + word + "'");
        } else if (key == "policy") {
            auto p = policyFromWord(word);
            if (!p)
                return fail(lineno, "unknown policy '" + word + "'");
            c.policy = *p;
        } else if (key == "seed") {
            if (!asNumber(c.seed))
                return fail(lineno, "bad seed '" + word + "'");
        } else if (key == "nodes") {
            if (!asNumber(num) || num < 1)
                return fail(lineno, "bad node count '" + word + "'");
            c.nodes = num;
        } else if (key == "cells") {
            if (!asNumber(num) || num < 1)
                return fail(lineno, "bad cell count '" + word + "'");
            c.cellsPerNode = num;
        } else if (key == "log-capacity") {
            if (!asNumber(num) || num < 1)
                return fail(lineno, "bad log capacity '" + word + "'");
            c.logCapacity = num;
        } else if (key == "threads") {
            if (!asNumber(num) || num < 1)
                return fail(lineno, "bad thread count '" + word + "'");
            c.params.numThreads = static_cast<int>(num);
        } else if (key == "num-ops") {
            if (!asNumber(num))
                return fail(lineno, "bad op count '" + word + "'");
            c.params.numOps = num;
        } else if (key == "max-value") {
            if (!asNumber(num) || num < 1)
                return fail(lineno, "bad max value '" + word + "'");
            c.params.maxValue = static_cast<Value>(num);
        } else if (key == "crash-step") {
            if (!asNumber(c.crashStep))
                return fail(lineno, "bad crash step '" + word + "'");
            c.hasCrash = true;
        } else if (key == "crash-node") {
            if (!asNumber(num))
                return fail(lineno, "bad crash node '" + word + "'");
            c.crashNode = static_cast<NodeId>(num);
            c.hasCrash = true;
        } else if (key == "replay-evictions") {
            if (!asNumber(num) || num > 1)
                return fail(lineno, "bad replay flag '" + word + "'");
            c.replayEvictions = num == 1;
        } else {
            return fail(lineno, "unknown key '" + key + "'");
        }
    }
    if (!saw_end)
        return fail(lineno, "missing 'end' terminator");
    if (c.crashNode >= c.nodes)
        return fail(lineno, "crash node out of range");
    return c;
}

} // namespace cxl0::inject
