#include "inject/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "ds/kv.hh"
#include "ds/log.hh"
#include "ds/map.hh"
#include "ds/queue.hh"
#include "ds/set.hh"
#include "ds/stack.hh"

namespace cxl0::inject
{

const char *
structureName(Structure s)
{
    switch (s) {
      case Structure::Register: return "register";
      case Structure::Counter: return "counter";
      case Structure::Kv: return "kv";
      case Structure::Queue: return "queue";
      case Structure::Stack: return "stack";
      case Structure::Set: return "set";
      case Structure::Log: return "log";
      case Structure::Map: return "map";
    }
    return "?";
}

std::optional<Structure>
structureFromName(const std::string &name)
{
    for (Structure s : allStructures())
        if (name == structureName(s))
            return s;
    return std::nullopt;
}

std::vector<Structure>
allStructures()
{
    return {Structure::Register, Structure::Counter, Structure::Kv,
            Structure::Queue,    Structure::Stack,   Structure::Set,
            Structure::Log,      Structure::Map};
}

std::optional<flit::PersistMode>
persistModeFromName(const std::string &name)
{
    using flit::PersistMode;
    for (PersistMode m :
         {PersistMode::None, PersistMode::FlitCxl0,
          PersistMode::FlitCxl0AddrOpt, PersistMode::FlitOriginal,
          PersistMode::PersistAll, PersistMode::FlitAsync,
          PersistMode::FlitVerified})
        if (name == flit::persistModeName(m))
            return m;
    return std::nullopt;
}

std::vector<WorkloadOp>
makeWorkload(Structure s, uint64_t seed, const WorkloadParams &params)
{
    // Mix the structure into the stream so different structures get
    // different programs from the same campaign seed.
    Rng rng(seed * 2654435761ULL + static_cast<uint64_t>(s) + 1);
    std::vector<WorkloadOp> ops;
    auto value = [&] {
        return static_cast<Value>(rng.nextInRange(1, params.maxValue));
    };
    for (size_t k = 0; k < params.numOps; ++k) {
        WorkloadOp op;
        op.thread = static_cast<int>(rng.nextBelow(
            static_cast<uint64_t>(params.numThreads)));
        switch (s) {
        case Structure::Register:
            // Mutation-heavy: mostly writes, occasional CAS/read.
            switch (rng.nextBelow(4)) {
            case 0:
                op.name = "read";
                break;
            case 1:
                op.name = "cas";
                op.arg = value();
                op.arg2 = value();
                break;
            default:
                op.name = "write";
                op.arg = value();
                break;
            }
            break;
        case Structure::Counter:
            if (rng.chance(1, 4)) {
                op.name = "read";
            } else {
                op.name = "add";
                op.arg = value();
            }
            break;
        case Structure::Kv:
        case Structure::Map:
            switch (rng.nextBelow(4)) {
            case 0:
                op.name = "get";
                op.arg = value();
                break;
            case 1:
                op.name = "remove";
                op.arg = value();
                break;
            default:
                op.name = "put";
                op.arg = value();
                op.arg2 = value();
                break;
            }
            break;
        case Structure::Queue:
            if (rng.chance(1, 3)) {
                op.name = "dequeue";
            } else {
                op.name = "enqueue";
                op.arg = value();
            }
            break;
        case Structure::Stack:
            if (rng.chance(1, 3)) {
                op.name = "pop";
            } else {
                op.name = "push";
                op.arg = value();
            }
            break;
        case Structure::Set:
            switch (rng.nextBelow(4)) {
            case 0:
                op.name = "contains";
                op.arg = value();
                break;
            case 1:
                op.name = "remove";
                op.arg = value();
                break;
            default:
                op.name = "add";
                op.arg = value();
                break;
            }
            break;
        case Structure::Log:
            if (rng.chance(1, 4)) {
                op.name = "get";
                op.arg = static_cast<Value>(
                    rng.nextBelow(params.numOps));
            } else {
                op.name = "append";
                op.arg = value();
            }
            break;
        }
        ops.push_back(std::move(op));
    }
    return ops;
}

std::vector<WorkloadOp>
makeObservers(Structure s, const WorkloadParams &params)
{
    // Observers run as a fresh post-crash thread; keep the count small
    // so workload + observers stays within the checker's op bound.
    constexpr int kObserverThread = 100;
    std::vector<WorkloadOp> ops;
    auto push = [&](std::string name, Value arg = 0) {
        WorkloadOp op;
        op.thread = kObserverThread;
        op.name = std::move(name);
        op.arg = arg;
        ops.push_back(std::move(op));
    };
    Value domain = std::min<Value>(params.maxValue, 3);
    switch (s) {
    case Structure::Register:
    case Structure::Counter:
        push("read");
        push("read");
        break;
    case Structure::Kv:
    case Structure::Map:
        for (Value k = 1; k <= domain; ++k)
            push("get", k);
        break;
    case Structure::Queue:
        for (size_t k = 0; k < params.numOps + 1 && k < 8; ++k)
            push("dequeue");
        break;
    case Structure::Stack:
        for (size_t k = 0; k < params.numOps + 1 && k < 8; ++k)
            push("pop");
        break;
    case Structure::Set:
        for (Value k = 1; k <= domain; ++k)
            push("contains", k);
        break;
    case Structure::Log:
        for (size_t k = 0; k < params.numOps && k < 6; ++k)
            push("get", static_cast<Value>(k));
        break;
    }
    return ops;
}

std::unique_ptr<hist::SequentialSpec>
makeSpec(Structure s, size_t log_capacity)
{
    switch (s) {
      case Structure::Register: return hist::makeRegisterSpec();
      case Structure::Counter: return hist::makeCounterSpec();
      case Structure::Kv: return hist::makeKvSpec();
      case Structure::Queue: return hist::makeQueueSpec();
      case Structure::Stack: return hist::makeStackSpec();
      case Structure::Set: return hist::makeSetSpec();
      case Structure::Log: return hist::makeLogSpec(log_capacity);
      case Structure::Map: return hist::makeMapSpec();
    }
    CXL0_PANIC("unknown structure");
}

namespace
{

using hist::kEmptyRet;

class RegisterSubject : public Subject
{
  public:
    RegisterSubject(flit::FlitRuntime &rt, NodeId home) : reg_(rt, home)
    {
    }

    Value
    execute(NodeId by, const WorkloadOp &op) override
    {
        if (op.name == "write") {
            reg_.write(by, op.arg);
            return 0;
        }
        if (op.name == "read")
            return reg_.read(by);
        if (op.name == "cas")
            return reg_.compareExchange(by, op.arg, op.arg2) ? 1 : 0;
        CXL0_FATAL("register: unknown op '", op.name, "'");
    }

    void recover(NodeId by) override { reg_.recover(by); }

  private:
    ds::DurableRegister reg_;
};

class CounterSubject : public Subject
{
  public:
    CounterSubject(flit::FlitRuntime &rt, NodeId home) : ctr_(rt, home)
    {
    }

    Value
    execute(NodeId by, const WorkloadOp &op) override
    {
        if (op.name == "add")
            return ctr_.fetchAdd(by, op.arg);
        if (op.name == "read")
            return ctr_.read(by);
        CXL0_FATAL("counter: unknown op '", op.name, "'");
    }

    void recover(NodeId by) override { ctr_.recover(by); }

  private:
    ds::DurableCounter ctr_;
};

class KvSubject : public Subject
{
  public:
    KvSubject(flit::FlitRuntime &rt, NodeId home) : kv_(rt, home, 8) {}

    Value
    execute(NodeId by, const WorkloadOp &op) override
    {
        if (op.name == "put")
            return kv_.put(by, op.arg, op.arg2) ? 1 : 0;
        if (op.name == "get") {
            auto v = kv_.get(by, op.arg);
            return v ? *v : kEmptyRet;
        }
        if (op.name == "remove")
            return kv_.remove(by, op.arg) ? 1 : 0;
        CXL0_FATAL("kv: unknown op '", op.name, "'");
    }

    void recover(NodeId by) override { kv_.recover(by); }

  private:
    ds::KvStore kv_;
};

class QueueSubject : public Subject
{
  public:
    QueueSubject(flit::FlitRuntime &rt, NodeId home) : q_(rt, home) {}

    Value
    execute(NodeId by, const WorkloadOp &op) override
    {
        if (op.name == "enqueue") {
            q_.enqueue(by, op.arg);
            return 0;
        }
        if (op.name == "dequeue") {
            auto v = q_.dequeue(by);
            return v ? *v : kEmptyRet;
        }
        CXL0_FATAL("queue: unknown op '", op.name, "'");
    }

    void recover(NodeId by) override { q_.recover(by); }

  private:
    ds::MsQueue q_;
};

class StackSubject : public Subject
{
  public:
    StackSubject(flit::FlitRuntime &rt, NodeId home) : st_(rt, home) {}

    Value
    execute(NodeId by, const WorkloadOp &op) override
    {
        if (op.name == "push") {
            st_.push(by, op.arg);
            return 0;
        }
        if (op.name == "pop") {
            auto v = st_.pop(by);
            return v ? *v : kEmptyRet;
        }
        CXL0_FATAL("stack: unknown op '", op.name, "'");
    }

    void recover(NodeId by) override { st_.recover(by); }

  private:
    ds::TreiberStack st_;
};

class SetSubject : public Subject
{
  public:
    SetSubject(flit::FlitRuntime &rt, NodeId home) : set_(rt, home) {}

    Value
    execute(NodeId by, const WorkloadOp &op) override
    {
        if (op.name == "add")
            return set_.add(by, op.arg) ? 1 : 0;
        if (op.name == "remove")
            return set_.remove(by, op.arg) ? 1 : 0;
        if (op.name == "contains")
            return set_.contains(by, op.arg) ? 1 : 0;
        CXL0_FATAL("set: unknown op '", op.name, "'");
    }

    void recover(NodeId by) override { set_.recover(by); }

  private:
    ds::SortedListSet set_;
};

class LogSubject : public Subject
{
  public:
    LogSubject(flit::FlitRuntime &rt, NodeId home, size_t capacity)
        : log_(rt, home, capacity)
    {
    }

    Value
    execute(NodeId by, const WorkloadOp &op) override
    {
        if (op.name == "append") {
            auto slot = log_.append(by, op.arg);
            return slot ? static_cast<Value>(*slot) : kEmptyRet;
        }
        if (op.name == "get") {
            auto v = log_.get(by, static_cast<size_t>(op.arg));
            return v ? *v : kEmptyRet;
        }
        CXL0_FATAL("log: unknown op '", op.name, "'");
    }

    void recover(NodeId by) override { log_.recover(by); }

  private:
    ds::DurableLog log_;
};

class MapSubject : public Subject
{
  public:
    MapSubject(flit::FlitRuntime &rt, NodeId home) : map_(rt, home, 8)
    {
    }

    Value
    execute(NodeId by, const WorkloadOp &op) override
    {
        if (op.name == "put") {
            map_.put(by, op.arg, op.arg2);
            return 0;
        }
        if (op.name == "get") {
            auto v = map_.get(by, op.arg);
            return v ? *v : kEmptyRet;
        }
        if (op.name == "remove")
            return map_.remove(by, op.arg) ? 1 : 0;
        CXL0_FATAL("map: unknown op '", op.name, "'");
    }

    void recover(NodeId by) override { map_.recover(by); }

  private:
    ds::HashMap map_;
};

} // namespace

std::unique_ptr<Subject>
makeSubject(Structure s, flit::FlitRuntime &rt, NodeId home,
            size_t log_capacity)
{
    switch (s) {
    case Structure::Register:
        return std::make_unique<RegisterSubject>(rt, home);
    case Structure::Counter:
        return std::make_unique<CounterSubject>(rt, home);
    case Structure::Kv:
        return std::make_unique<KvSubject>(rt, home);
    case Structure::Queue:
        return std::make_unique<QueueSubject>(rt, home);
    case Structure::Stack:
        return std::make_unique<StackSubject>(rt, home);
    case Structure::Set:
        return std::make_unique<SetSubject>(rt, home);
    case Structure::Log:
        return std::make_unique<LogSubject>(rt, home, log_capacity);
    case Structure::Map:
        return std::make_unique<MapSubject>(rt, home);
    }
    CXL0_PANIC("unknown structure");
}

} // namespace cxl0::inject
