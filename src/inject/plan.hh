/**
 * @file
 * Crash plans: one fully-specified campaign case and its execution.
 *
 * A plan pins everything needed to reproduce a run bit-for-bit — the
 * structure, persistence mode, model variant, propagation policy,
 * seed, the explicit workload program, the crash point (a step index
 * into the system's primitive sequence plus the machine to kill), and
 * optionally a recorded propagation schedule to replay. Plans are
 * produced by the enumerator (discover + enumerate), consumed by
 * runCase, minimized by the shrinker, and serialized as replayable
 * corpus artifacts.
 *
 * Execution phases of a case:
 *   1. setup       — construct the structure (crashes never land here)
 *   2. main        — run the workload ops sequentially; an armed crash
 *                    preempts some primitive, killing threads on the
 *                    crashed machine (their op stays pending)
 *   3. recovery    — a surviving machine runs the structure's recovery
 *   4. observation — the surviving machine runs read-mostly ops
 * The recorded history (main + observation) is then checked for
 * durable linearizability.
 */

#ifndef CXL0_INJECT_PLAN_HH
#define CXL0_INJECT_PLAN_HH

#include <optional>
#include <string>
#include <vector>

#include "hist/checker.hh"
#include "hist/history.hh"
#include "inject/workload.hh"
#include "runtime/system.hh"

namespace cxl0::inject
{

/** One fully-specified campaign case. */
struct CampaignCase
{
    Structure structure = Structure::Register;
    flit::PersistMode mode = flit::PersistMode::FlitCxl0;
    model::ModelVariant variant = model::ModelVariant::Base;
    runtime::PropagationPolicy policy =
        runtime::PropagationPolicy::Manual;
    uint64_t seed = 1;
    size_t nodes = 2;
    size_t cellsPerNode = 256;
    size_t logCapacity = 8;
    WorkloadParams params;
    /** The explicit workload program (threads map to node t%nodes). */
    std::vector<WorkloadOp> ops;

    bool hasCrash = false;
    /** Step index to crash at (against opCount() at primitive start). */
    uint64_t crashStep = 0;
    NodeId crashNode = 0;

    /** Replay this propagation schedule instead of the policy RNG. */
    bool replayEvictions = false;
    std::vector<runtime::EvictEvent> evictions;
};

/** Fill `c.ops` from its seed and params (non-shrunk cases). */
void generateOps(CampaignCase &c);

/** What a crash-free instrumented run of the workload discovered. */
struct Discovery
{
    /** Primitives consumed by structure construction. */
    uint64_t setupSteps = 0;
    /** Primitives after the full workload ran. */
    uint64_t totalSteps = 0;
    /** Every primitive, indexed by step. */
    std::vector<runtime::StepRecord> trace;
    /** Policy-driven propagation events (Random policy only). */
    std::vector<runtime::EvictEvent> evictions;
};

/**
 * Run `c`'s workload without any crash, tracing every primitive. The
 * crash-point range for this workload is [setupSteps, totalSteps).
 */
Discovery discover(const CampaignCase &c);

/** Resource limits for one case execution. */
struct RunLimits
{
    /** History op bound handed to the checker. */
    size_t histMaxOps = 24;
    /** Wall-clock budget per linearizability check; 0 = unbounded. */
    uint64_t caseTimeBudgetMs = 2000;
    /** Retries with a widened op bound on max_ops truncation. */
    size_t retries = 2;
};

/** Outcome of one executed case. */
struct CaseOutcome
{
    enum class Verdict
    {
        Pass,      //!< history durably linearizable
        Violation, //!< checker found no linearization
        Truncated, //!< resource bound hit; result unknown
        Skipped,   //!< armed crash step never reached (divergence)
    };

    Verdict verdict = Verdict::Skipped;
    hist::LinResult lin;
    /** The recorded history (main + observation phases). */
    std::vector<hist::OpRecord> history;
    /** The primitive the crash preempted (Tau when no crash fired). */
    model::Op crashOpKind = model::Op::Tau;
    /** Propagation events recorded during the run (for artifacts). */
    std::vector<runtime::EvictEvent> evictions;
    /** Panics the case's quiet scope muted (contained corruption —
     *  each one became a verdict, but the count stays visible). */
    uint64_t mutedPanics = 0;
};

/** Execute one case end to end and check the resulting history. */
CaseOutcome runCase(const CampaignCase &c, const RunLimits &limits);

/** Short verdict name ("pass", "violation", "truncated", "skipped"). */
const char *verdictName(CaseOutcome::Verdict v);

/**
 * Render a replayable artifact: a machine-parseable plan section
 * terminated by `end`, followed by an informational diagnosis section
 * (history dump + checker explanation) in comments.
 */
std::string writeArtifactText(const CampaignCase &c,
                              const CaseOutcome &outcome);

/**
 * Parse an artifact produced by writeArtifactText back into a plan.
 *
 * @param error receives a "line N: ..." diagnostic on failure (may be
 *        nullptr)
 */
std::optional<CampaignCase> parseArtifact(const std::string &text,
                                          std::string *error);

} // namespace cxl0::inject

#endif // CXL0_INJECT_PLAN_HH
