/**
 * @file
 * Workload programs for the crash-injection campaign.
 *
 * A workload is a short program of high-level operations against one
 * durable structure from src/ds. The campaign generates workloads
 * deterministically from a seed, executes them through a Subject (the
 * structure behind a uniform interface), and records every operation
 * with hist::HistoryRecorder so the outcome can be checked for durable
 * linearizability against the matching hist::SequentialSpec.
 *
 * Arguments are drawn from [1, maxValue] — never 0, which is the
 * model's initial memory value and would mask lost-write bugs.
 */

#ifndef CXL0_INJECT_WORKLOAD_HH
#define CXL0_INJECT_WORKLOAD_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flit/flit.hh"
#include "hist/spec.hh"

namespace cxl0::inject
{

/** The durable structures the campaign can verify (all of src/ds). */
enum class Structure
{
    Register, //!< ds::DurableRegister
    Counter,  //!< ds::DurableCounter
    Kv,       //!< ds::KvStore (map facade; see KvSpec)
    Queue,    //!< ds::MsQueue
    Stack,    //!< ds::TreiberStack
    Set,      //!< ds::SortedListSet
    Log,      //!< ds::DurableLog
    Map,      //!< ds::HashMap
};

/** Short display name, e.g. "stack". */
const char *structureName(Structure s);

/** Inverse of structureName; nullopt for unknown names. */
std::optional<Structure> structureFromName(const std::string &name);

/** Every Structure value, in declaration order. */
std::vector<Structure> allStructures();

/** Inverse of flit::persistModeName; nullopt for unknown names. */
std::optional<flit::PersistMode> persistModeFromName(const std::string &name);

/** One high-level operation in a workload program. */
struct WorkloadOp
{
    int thread = 0;   //!< logical thread; runs on node (thread % nodes)
    std::string name; //!< spec op name ("push", "get", ...)
    Value arg = 0;
    Value arg2 = 0;

    bool operator==(const WorkloadOp &other) const = default;
};

/** Parameters for deterministic workload generation. */
struct WorkloadParams
{
    size_t numOps = 6;
    Value maxValue = 3;
    int numThreads = 2;
};

/**
 * Generate a seeded workload for `s`: a mutation-heavy op mix over the
 * small value domain, identical for identical (s, seed, params).
 */
std::vector<WorkloadOp> makeWorkload(Structure s, uint64_t seed,
                                     const WorkloadParams &params);

/**
 * Post-crash observation program: completed read-mostly operations a
 * surviving thread runs after recovery, sized so the combined history
 * stays within the checker's op bound. Deterministic in (s, params).
 */
std::vector<WorkloadOp> makeObservers(Structure s,
                                      const WorkloadParams &params);

/** The sequential specification matching a Structure's op encoding. */
std::unique_ptr<hist::SequentialSpec> makeSpec(Structure s,
                                               size_t log_capacity);

/**
 * A constructed structure instance behind a uniform execute/recover
 * interface. execute() may throw runtime::ThreadKilled when an armed
 * crash preempts one of the operation's primitives.
 */
class Subject
{
  public:
    virtual ~Subject() = default;

    /** Run one op as machine `by`; returns the spec-encoded result. */
    virtual Value execute(NodeId by, const WorkloadOp &op) = 0;

    /** Run the structure's post-crash recovery as machine `by`. */
    virtual void recover(NodeId by) = 0;
};

/**
 * Construct structure `s` on `rt` with its cells homed at `home`.
 * Construction issues primitives (allocation + initial stores); the
 * campaign excludes those steps from the crash range.
 */
std::unique_ptr<Subject> makeSubject(Structure s, flit::FlitRuntime &rt,
                                     NodeId home, size_t log_capacity);

} // namespace cxl0::inject

#endif // CXL0_INJECT_WORKLOAD_HH
