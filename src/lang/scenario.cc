/**
 * @file
 * Scenario helpers: system-config assembly, the LitmusProgram
 * exporter behind the corpus, and outcome-anchor checking.
 */

#include "lang/scenario.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace cxl0::lang
{

using check::Outcome;

std::string
Diagnostic::render(const std::string &file) const
{
    std::string out;
    if (!file.empty())
        out += file + ":";
    out += std::to_string(loc.line) + ":" + std::to_string(loc.col) +
           ": " + message;
    return out;
}

const char *
variantWord(model::ModelVariant v)
{
    switch (v) {
    case model::ModelVariant::Base:
        return "base";
    case model::ModelVariant::Lwb:
        return "lwb";
    case model::ModelVariant::Psn:
        return "psn";
    }
    return "base";
}

bool
variantFromWord(std::string_view word, model::ModelVariant &out)
{
    if (word == "base")
        out = model::ModelVariant::Base;
    else if (word == "lwb")
        out = model::ModelVariant::Lwb;
    else if (word == "psn")
        out = model::ModelVariant::Psn;
    else
        return false;
    return true;
}

model::SystemConfig
Scenario::config() const
{
    std::vector<model::MachineConfig> machines;
    machines.reserve(machinePersistent.size());
    for (bool p : machinePersistent)
        machines.push_back(model::MachineConfig{p});
    return model::SystemConfig(std::move(machines), addrOwner);
}

Scenario
scenarioFromLitmusProgram(const check::LitmusProgram &lp)
{
    Scenario sc;
    sc.name = lp.name;
    sc.id = lp.id;
    sc.variant = lp.variant;
    for (size_t i = 0; i < lp.config.numNodes(); ++i)
        sc.machinePersistent.push_back(
            lp.config.isPersistent(static_cast<NodeId>(i)));
    for (size_t a = 0; a < lp.config.numAddrs(); ++a) {
        sc.addrNames.push_back("x" + std::to_string(a));
        sc.addrOwner.push_back(
            lp.config.ownerOf(static_cast<Addr>(a)));
    }
    sc.program = lp.program;
    sc.request = lp.options;
    // Runtime knobs belong to the driver, not the file: the DSL never
    // serializes them, so they must hold their defaults for the
    // round-trip guarantee (and so a corpus file means the same
    // search as the in-binary program at any driver setting).
    const check::CheckRequest defaults;
    sc.request.reduction = defaults.reduction;
    sc.request.frontier = defaults.frontier;
    sc.request.numThreads = defaults.numThreads;
    return sc;
}

std::vector<CorpusFile>
exportBuiltinCorpus()
{
    std::vector<CorpusFile> files;
    for (const check::LitmusProgram &lp : check::explorerPrograms()) {
        Scenario sc = scenarioFromLitmusProgram(lp);
        model::Cxl0Model model(sc.config(), sc.variant);
        check::CheckReport res =
            check::Explorer(model, sc.program, sc.request).check();
        CXL0_ASSERT(!res.truncated,
                    "built-in litmus programs must explore fully");
        sc.expectKind = AnchorKind::Exact;
        sc.expected.assign(res.outcomes.begin(), res.outcomes.end());
        char name[32];
        std::snprintf(name, sizeof name, "litmus%02d.cxl0", sc.id);
        files.push_back({name, dumpScenario(sc)});
    }
    std::sort(files.begin(), files.end(),
              [](const CorpusFile &a, const CorpusFile &b) {
                  return a.filename < b.filename;
              });
    return files;
}

AnchorReport
checkOutcomeAnchors(const Scenario &sc,
                    const std::set<Outcome> &outcomes)
{
    AnchorReport report;
    auto complain = [&](const std::string &msg) {
        report.pass = false;
        report.failures.push_back(msg);
    };

    if (sc.expectKind != AnchorKind::None) {
        std::set<Outcome> declared(sc.expected.begin(),
                                   sc.expected.end());
        for (const Outcome &o : declared)
            if (!outcomes.count(o))
                complain("expected outcome not reached: " +
                         o.describe());
        if (sc.expectKind == AnchorKind::Exact)
            for (const Outcome &o : outcomes)
                if (!declared.count(o))
                    complain("outcome outside the exact anchor set: " +
                             o.describe());
    }
    for (const Outcome &o : sc.forbidden)
        if (outcomes.count(o))
            complain("forbidden outcome reached: " + o.describe());
    return report;
}

} // namespace cxl0::lang
