/**
 * @file
 * Driving a parsed Scenario through the four checkers.
 *
 * runScenario routes one scenario through the unified
 * CheckRequest/CheckReport API: the explorer over the scenario's
 * program (with outcome-anchor checking), trace feasibility over its
 * serialized trace (with the declared verdict as the anchor), bounded
 * refinement between two model variants over its system shape, or
 * trace inclusion between its lhs/rhs traces over every enumerated
 * state. RunOptions carries the driver-level overrides (worker
 * threads, budgets, crash cap, frontier policy) that the cxl0check
 * CLI flags map onto; scenario-pinned knobs are used when no override
 * is given.
 */

#ifndef CXL0_LANG_RUN_HH
#define CXL0_LANG_RUN_HH

#include <optional>
#include <string>
#include <vector>

#include "check/checkpoint.hh"
#include "check/service.hh"
#include "lang/scenario.hh"

namespace cxl0::lang
{

/** Which checker to route the scenario through. */
enum class CheckerKind
{
    Auto,       //!< explorer when a program exists, else feasibility
    Explore,    //!< reachable outcome set of the program
    Feasible,   //!< feasibility of the serialized trace
    Refinement, //!< bounded refinement spec ⊑ impl over the config
    Inclusion,  //!< lhs-trace post-states ⊆ rhs-trace post-states
};

/** "explore" / "feasible" / "refinement" / "inclusion". */
const char *checkerKindName(CheckerKind k);

/** Driver-level overrides; unset fields use the scenario's values. */
struct RunOptions
{
    CheckerKind checker = CheckerKind::Auto;
    size_t numThreads = 1;
    std::optional<size_t> maxConfigs;
    std::optional<size_t> maxDepth;
    /** Per-case wall-clock budget in ms; crossing it truncates the
     *  search gracefully (verdict degrades to inconclusive). */
    std::optional<uint64_t> timeBudgetMs;
    std::optional<int> maxCrashesPerNode;
    std::optional<check::FrontierPolicy> policy;
    /** Explorer partial-order reduction (none | tau | ample). */
    std::optional<check::Reduction> reduction;

    /**
     * Refinement endpoints (variants instantiated over the
     * scenario's system configuration). Precedence: these overrides
     * > the scenario's `variant spec=/impl=` clause > the defaults
     * (spec base, impl lwb).
     */
    std::optional<model::ModelVariant> refineSpec;
    std::optional<model::ModelVariant> refineImpl;
    /** Depth bound used for refinement when the scenario pins none. */
    size_t refineDefaultDepth = 3;

    /** Value bound for inclusion's state enumeration. */
    Value inclusionMaxValue = 1;

    /**
     * Out-of-core execution plumbing (--spill-dir /
     * --checkpoint-every / --resume). Deliberately not part of the
     * CheckRequest: where a search spills or snapshots never changes
     * its report, so it must not change its cache key either. The
     * explorer consumes the full set; the other checkers honour
     * checkpointDir/resumeFrom through the driver's final-report
     * shortcut (a conclusive run leaves its deterministic projection
     * as `<checkpointDir>/final.report`, and a resume re-judges that
     * instead of re-searching).
     */
    check::OutOfCoreOptions ooc;
};

/** The outcome of driving one scenario through one checker. */
struct RunResult
{
    CheckerKind checker = CheckerKind::Explore;
    check::CheckReport report;
    AnchorReport anchors;
    /** Anchors hold and the verdict is conclusive. */
    bool pass = false;
    /** Set when the scenario cannot feed the requested checker. */
    std::string error;

    /** One-line human summary. */
    std::string describe() const;
};

/** Drive `sc` through the checker selected by `opts`. */
RunResult runScenario(const Scenario &sc, const RunOptions &opts);

/**
 * As above, but models and interning tables come from (and persist
 * in) `pool` — the `cxl0check serve` seam. Reports differ from the
 * pooled-free form only in table-size statistics (see
 * check/service.hh); the deterministic projection the result cache
 * stores is identical.
 */
RunResult runScenario(const Scenario &sc, const RunOptions &opts,
                      check::ContextPool &pool);

/** Resolve CheckerKind::Auto against the scenario's contents. */
CheckerKind resolveChecker(const Scenario &sc, const RunOptions &opts);

/**
 * The scenario's request with the driver overrides folded in (for
 * refinement routes this includes the default depth bound when
 * neither the file nor the driver pins one).
 */
check::CheckRequest effectiveRequest(const Scenario &sc,
                                     const RunOptions &opts,
                                     CheckerKind kind);

/** Refinement endpoints after precedence (driver > file > default). */
model::ModelVariant effectiveRefineSpec(const Scenario &sc,
                                        const RunOptions &opts);
model::ModelVariant effectiveRefineImpl(const Scenario &sc,
                                        const RunOptions &opts);

/**
 * Judge a previously computed report (a cache hit) exactly as
 * runScenario would have judged a fresh one: anchors, pass bit, and
 * checker-specific tolerance (refinement's depth-bound cut). `kind`
 * must be concrete (not Auto).
 */
RunResult judgeReport(const Scenario &sc, const RunOptions &opts,
                      CheckerKind kind, check::CheckReport report);

} // namespace cxl0::lang

#endif // CXL0_LANG_RUN_HH
