/**
 * @file
 * Driving a parsed Scenario through the four checkers.
 *
 * runScenario routes one scenario through the unified
 * CheckRequest/CheckReport API: the explorer over the scenario's
 * program (with outcome-anchor checking), trace feasibility over its
 * serialized trace (with the declared verdict as the anchor), bounded
 * refinement between two model variants over its system shape, or
 * trace inclusion between its lhs/rhs traces over every enumerated
 * state. RunOptions carries the driver-level overrides (worker
 * threads, budgets, crash cap, frontier policy) that the cxl0check
 * CLI flags map onto; scenario-pinned knobs are used when no override
 * is given.
 */

#ifndef CXL0_LANG_RUN_HH
#define CXL0_LANG_RUN_HH

#include <optional>
#include <string>
#include <vector>

#include "lang/scenario.hh"

namespace cxl0::lang
{

/** Which checker to route the scenario through. */
enum class CheckerKind
{
    Auto,       //!< explorer when a program exists, else feasibility
    Explore,    //!< reachable outcome set of the program
    Feasible,   //!< feasibility of the serialized trace
    Refinement, //!< bounded refinement spec ⊑ impl over the config
    Inclusion,  //!< lhs-trace post-states ⊆ rhs-trace post-states
};

/** "explore" / "feasible" / "refinement" / "inclusion". */
const char *checkerKindName(CheckerKind k);

/** Driver-level overrides; unset fields use the scenario's values. */
struct RunOptions
{
    CheckerKind checker = CheckerKind::Auto;
    size_t numThreads = 1;
    std::optional<size_t> maxConfigs;
    std::optional<size_t> maxDepth;
    /** Per-case wall-clock budget in ms; crossing it truncates the
     *  search gracefully (verdict degrades to inconclusive). */
    std::optional<uint64_t> timeBudgetMs;
    std::optional<int> maxCrashesPerNode;
    std::optional<check::FrontierPolicy> policy;
    /** Explorer partial-order reduction (none | tau | ample). */
    std::optional<check::Reduction> reduction;

    /** Refinement endpoints (variants instantiated over the
     *  scenario's system configuration). */
    model::ModelVariant refineSpec = model::ModelVariant::Base;
    model::ModelVariant refineImpl = model::ModelVariant::Lwb;
    /** Depth bound used for refinement when the scenario pins none. */
    size_t refineDefaultDepth = 3;

    /** Value bound for inclusion's state enumeration. */
    Value inclusionMaxValue = 1;
};

/** The outcome of driving one scenario through one checker. */
struct RunResult
{
    CheckerKind checker = CheckerKind::Explore;
    check::CheckReport report;
    AnchorReport anchors;
    /** Anchors hold and the verdict is conclusive. */
    bool pass = false;
    /** Set when the scenario cannot feed the requested checker. */
    std::string error;

    /** One-line human summary. */
    std::string describe() const;
};

/** Drive `sc` through the checker selected by `opts`. */
RunResult runScenario(const Scenario &sc, const RunOptions &opts);

} // namespace cxl0::lang

#endif // CXL0_LANG_RUN_HH
