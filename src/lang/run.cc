#include "lang/run.hh"

#include <cstdio>
#include <stdexcept>

#include "check/cache.hh"
#include "check/refinement.hh"
#include "check/simulation.hh"
#include "check/trace.hh"
#include "common/spill.hh"
#include "obs/telemetry.hh"

namespace cxl0::lang
{

using check::CheckReport;
using check::CheckRequest;
using check::CheckVerdict;
using model::Cxl0Model;

const char *
checkerKindName(CheckerKind k)
{
    switch (k) {
    case CheckerKind::Auto:
        return "auto";
    case CheckerKind::Explore:
        return "explore";
    case CheckerKind::Feasible:
        return "feasible";
    case CheckerKind::Refinement:
        return "refinement";
    case CheckerKind::Inclusion:
        return "inclusion";
    }
    return "?";
}

CheckerKind
resolveChecker(const Scenario &sc, const RunOptions &opts)
{
    CheckerKind kind = opts.checker;
    if (kind != CheckerKind::Auto)
        return kind;
    if (!sc.program.threads.empty())
        return CheckerKind::Explore;
    if (!sc.trace.empty())
        return CheckerKind::Feasible;
    if (!sc.traceLhs.empty() && !sc.traceRhs.empty())
        return CheckerKind::Inclusion;
    if (sc.refineSpec.has_value() && sc.refineImpl.has_value())
        return CheckerKind::Refinement;
    return CheckerKind::Feasible; // reports a useful error
}

model::ModelVariant
effectiveRefineSpec(const Scenario &sc, const RunOptions &opts)
{
    if (opts.refineSpec)
        return *opts.refineSpec;
    return sc.refineSpec.value_or(model::ModelVariant::Base);
}

model::ModelVariant
effectiveRefineImpl(const Scenario &sc, const RunOptions &opts)
{
    if (opts.refineImpl)
        return *opts.refineImpl;
    return sc.refineImpl.value_or(model::ModelVariant::Lwb);
}

CheckRequest
effectiveRequest(const Scenario &sc, const RunOptions &opts,
                 CheckerKind kind)
{
    CheckRequest req = sc.request;
    req.numThreads = opts.numThreads;
    if (opts.maxConfigs)
        req.maxConfigs = *opts.maxConfigs;
    if (opts.maxDepth)
        req.maxDepth = *opts.maxDepth;
    if (opts.timeBudgetMs)
        req.timeBudgetMs = *opts.timeBudgetMs;
    if (opts.maxCrashesPerNode)
        req.maxCrashesPerNode = *opts.maxCrashesPerNode;
    if (opts.policy)
        req.frontier = *opts.policy;
    if (opts.reduction)
        req.reduction = *opts.reduction;
    if (kind == CheckerKind::Refinement && req.maxDepth == 0)
        req.maxDepth = opts.refineDefaultDepth;
    return req;
}

namespace
{

/**
 * Anchor a Pass/Fail verdict against the scenario's `verdict`
 * directive: `forbidden` declares the property violated (Fail
 * expected); anything else expects Pass. Inconclusive never passes.
 */
AnchorReport
verdictAnchor(const Scenario &sc, const CheckReport &report)
{
    AnchorReport a;
    if (report.verdict == CheckVerdict::Inconclusive) {
        a.pass = false;
        a.failures.push_back("search truncated before a verdict");
        return a;
    }
    CheckVerdict want =
        sc.expectedVerdict == check::Verdict::Forbidden
            ? CheckVerdict::Fail
            : CheckVerdict::Pass;
    if (report.verdict != want) {
        a.pass = false;
        a.failures.push_back(
            std::string("expected verdict ") +
            check::checkVerdictName(want) + ", observed " +
            check::checkVerdictName(report.verdict));
    }
    return a;
}

// ------------------------------------------------- compute the report

CheckReport
computeExplore(const Scenario &sc, const RunOptions &opts,
               check::ContextPool *pool)
{
    CheckRequest req = effectiveRequest(sc, opts,
                                        CheckerKind::Explore);
    if (pool) {
        check::ContextPool::Entry &e =
            pool->acquire(sc.config(), sc.variant);
        return check::Explorer(e.model, sc.program, req)
            .check(&e.ctx, &opts.ooc);
    }
    Cxl0Model model(sc.config(), sc.variant);
    return check::Explorer(model, sc.program, req)
        .check(nullptr, &opts.ooc);
}

CheckReport
computeFeasible(const Scenario &sc, const RunOptions &opts,
                check::ContextPool *pool)
{
    CheckRequest req = effectiveRequest(sc, opts,
                                        CheckerKind::Feasible);
    if (pool) {
        check::ContextPool::Entry &e =
            pool->acquire(sc.config(), sc.variant);
        return check::checkTraceFeasible(e.model, sc.trace, req,
                                         &e.ctx);
    }
    Cxl0Model model(sc.config(), sc.variant);
    return check::checkTraceFeasible(model, sc.trace, req);
}

CheckReport
computeRefinement(const Scenario &sc, const RunOptions &opts,
                  check::ContextPool *pool)
{
    CheckRequest req = effectiveRequest(sc, opts,
                                        CheckerKind::Refinement);
    model::SystemConfig cfg = sc.config();
    check::Alphabet alphabet = check::Alphabet::standard(cfg);
    if (req.maxCrashesPerNode > 0)
        alphabet.maxCrashesPerNode = req.maxCrashesPerNode;
    model::ModelVariant specv = effectiveRefineSpec(sc, opts);
    model::ModelVariant implv = effectiveRefineImpl(sc, opts);
    if (pool) {
        check::ContextPool::Entry &se = pool->acquire(cfg, specv);
        check::ContextPool::Entry &ie = pool->acquire(cfg, implv);
        return check::checkRefinement(se.model, ie.model, alphabet,
                                      req, &se.ctx, &ie.ctx);
    }
    Cxl0Model spec(cfg, specv);
    Cxl0Model impl(cfg, implv);
    return check::checkRefinement(spec, impl, alphabet, req);
}

CheckReport
computeInclusion(const Scenario &sc, const RunOptions &opts,
                 check::ContextPool *pool)
{
    CheckRequest req = effectiveRequest(sc, opts,
                                        CheckerKind::Inclusion);
    model::SystemConfig cfg = sc.config();
    std::vector<model::State> states =
        check::enumerateStates(cfg, opts.inclusionMaxValue);
    if (pool) {
        check::ContextPool::Entry &e =
            pool->acquire(cfg, sc.variant);
        return check::checkTraceInclusion(e.model, states,
                                          sc.traceLhs, sc.traceRhs,
                                          req, &e.ctx);
    }
    Cxl0Model model(cfg, sc.variant);
    return check::checkTraceInclusion(model, states, sc.traceLhs,
                                      sc.traceRhs, req);
}

// ----------------------------------------------- final-report files

/** Whole-file read; false when the file cannot be opened/read. */
bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char chunk[1 << 15];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        out.append(chunk, n);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

/**
 * Persist the conclusive run's deterministic projection as
 * `<dir>/final.report` (tmp + rename so a killed writer never leaves
 * a half-written file). Best-effort: a failed write only costs the
 * next resume a deterministic re-search.
 */
void
writeFinalReport(const std::string &dir, const std::string &text)
{
    if (!ensureDir(dir))
        return;
    const std::string path = dir + "/final.report";
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return;
    bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fflush(f) == 0 && ok;
    std::fclose(f);
    if (ok)
        std::rename(tmp.c_str(), path.c_str());
    else
        std::remove(tmp.c_str());
}

/** The input the requested checker cannot run without; empty = ok. */
std::string
inputError(const Scenario &sc, CheckerKind kind)
{
    switch (kind) {
    case CheckerKind::Explore:
        if (sc.program.threads.empty())
            return "scenario has no thread blocks to explore";
        break;
    case CheckerKind::Feasible:
        if (sc.trace.empty())
            return "scenario has no trace block to check";
        break;
    case CheckerKind::Inclusion:
        if (sc.traceLhs.empty() || sc.traceRhs.empty())
            return "inclusion needs both trace lhs and trace rhs "
                   "blocks";
        break;
    case CheckerKind::Refinement:
    case CheckerKind::Auto:
        break;
    }
    return "";
}

RunResult
runWith(const Scenario &sc, const RunOptions &opts,
        check::ContextPool *pool)
{
    CheckerKind kind = resolveChecker(sc, opts);
    RunResult r;
    r.checker = kind;
    r.error = inputError(sc, kind);
    if (!r.error.empty())
        return r;

    // Resume shortcut, valid for all four checkers: a prior run that
    // finished conclusively left its deterministic projection as
    // final.report, so re-judging that beats re-searching. When the
    // file is absent the explorer resumes from its mid-run snapshot;
    // the other checkers deterministically rerun.
    if (!opts.ooc.resumeFrom.empty()) {
        std::string text;
        if (readWholeFile(opts.ooc.resumeFrom + "/final.report",
                          text)) {
            check::CheckReport parsed;
            if (!check::parseReport(text, parsed)) {
                r.error = "final report in '" + opts.ooc.resumeFrom +
                          "' is corrupt (not a cxl0report "
                          "projection); delete it to re-run";
                return r;
            }
            return judgeReport(sc, opts, kind, std::move(parsed));
        }
    }

    // One driver-level span per scenario run; the checkers add their
    // own per-shard "search:*" spans under it.
    const char *span_name = "run:scenario";
    switch (kind) {
    case CheckerKind::Explore: span_name = "run:explore"; break;
    case CheckerKind::Feasible: span_name = "run:feasible"; break;
    case CheckerKind::Refinement: span_name = "run:refinement"; break;
    case CheckerKind::Inclusion: span_name = "run:inclusion"; break;
    case CheckerKind::Auto: break;
    }
    const obs::ScopedSpan runSpan(obs::threadRing(), span_name);
    CheckReport report;
    try {
        switch (kind) {
        case CheckerKind::Explore:
            report = computeExplore(sc, opts, pool);
            break;
        case CheckerKind::Feasible:
            report = computeFeasible(sc, opts, pool);
            break;
        case CheckerKind::Refinement:
            report = computeRefinement(sc, opts, pool);
            break;
        case CheckerKind::Inclusion:
            report = computeInclusion(sc, opts, pool);
            break;
        case CheckerKind::Auto:
            r.error = "unreachable checker kind";
            return r;
        }
    } catch (const std::exception &e) {
        // Missing/corrupt/mismatched checkpoints surface here as a
        // clean per-scenario diagnostic instead of aborting a batch.
        r.error = e.what();
        return r;
    }

    // A conclusive run records its projection so a later --resume
    // (of any checker kind) can short-circuit the search.
    if (!opts.ooc.checkpointDir.empty() &&
        report.verdict != CheckVerdict::Inconclusive)
        writeFinalReport(opts.ooc.checkpointDir,
                         check::serializeReport(report));

    return judgeReport(sc, opts, kind, std::move(report));
}

} // namespace

// --------------------------------------------------- judge the report

RunResult
judgeReport(const Scenario &sc, const RunOptions &opts,
            CheckerKind kind, CheckReport report)
{
    RunResult r;
    r.checker = kind;
    r.report = std::move(report);
    switch (kind) {
    case CheckerKind::Explore:
        r.anchors = checkOutcomeAnchors(sc, r.report.outcomes);
        r.pass = r.anchors.pass &&
                 r.report.verdict == CheckVerdict::Pass &&
                 !r.report.truncated;
        return r;
    case CheckerKind::Feasible:
        if (r.report.verdict == CheckVerdict::Inconclusive) {
            r.anchors.pass = false;
            r.anchors.failures.push_back(
                "feasibility truncated by a config or time budget");
        } else if (sc.expectedVerdict.has_value()) {
            check::Verdict observed =
                r.report.verdict == CheckVerdict::Pass
                    ? check::Verdict::Allowed
                    : check::Verdict::Forbidden;
            if (observed != *sc.expectedVerdict) {
                r.anchors.pass = false;
                r.anchors.failures.push_back(
                    "declared verdict " +
                    check::verdictName(*sc.expectedVerdict) +
                    ", observed " + check::verdictName(observed));
            }
        }
        r.pass = r.anchors.pass;
        return r;
    case CheckerKind::Refinement: {
        CheckRequest req = effectiveRequest(sc, opts, kind);
        if (r.report.verdict == CheckVerdict::Inconclusive &&
            r.report.counterexample.empty() && !r.report.timedOut &&
            r.report.stats.configsInterned < req.maxConfigs &&
            sc.expectedVerdict != check::Verdict::Forbidden) {
            // Bounded refinement over a standard alphabet always runs
            // into its depth bound; "no violation within the bound" is
            // its conclusive-enough success (the verdict stays visible
            // as "inconclusive" in the report). A search cut by the
            // *config budget* is different — it may have stopped short
            // of a reachable counterexample and must not pass. The
            // interned-count proxy errs strict: a run whose pair count
            // exactly fills the budget is treated as budget-cut (a
            // noisy failure, never a false pass). A run cut by the
            // *time budget* is equally unfinished and must not pass.
            r.anchors = AnchorReport{};
        } else {
            r.anchors = verdictAnchor(sc, r.report);
        }
        r.pass = r.anchors.pass;
        return r;
    }
    case CheckerKind::Inclusion:
        r.anchors = verdictAnchor(sc, r.report);
        r.pass = r.anchors.pass;
        return r;
    case CheckerKind::Auto:
        break;
    }
    r.error = "unreachable checker kind";
    return r;
}

RunResult
runScenario(const Scenario &sc, const RunOptions &opts)
{
    return runWith(sc, opts, nullptr);
}

RunResult
runScenario(const Scenario &sc, const RunOptions &opts,
            check::ContextPool &pool)
{
    return runWith(sc, opts, &pool);
}

std::string
RunResult::describe() const
{
    if (!error.empty())
        return std::string("error: ") + error;
    std::string out = checkerKindName(checker);
    out += ": ";
    out += pass ? "pass" : "FAIL";
    out += " (verdict ";
    out += check::checkVerdictName(report.verdict);
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  ", %zu configs, %zu outcomes, %.3fs)",
                  report.stats.configsVisited, report.outcomes.size(),
                  report.stats.seconds);
    out += buf;
    for (const std::string &f : anchors.failures)
        out += "\n    " + f;
    return out;
}

} // namespace cxl0::lang
