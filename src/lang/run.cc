#include "lang/run.hh"

#include <cstdio>

#include "check/refinement.hh"
#include "check/simulation.hh"
#include "check/trace.hh"

namespace cxl0::lang
{

using check::CheckReport;
using check::CheckRequest;
using check::CheckVerdict;
using model::Cxl0Model;

const char *
checkerKindName(CheckerKind k)
{
    switch (k) {
    case CheckerKind::Auto:
        return "auto";
    case CheckerKind::Explore:
        return "explore";
    case CheckerKind::Feasible:
        return "feasible";
    case CheckerKind::Refinement:
        return "refinement";
    case CheckerKind::Inclusion:
        return "inclusion";
    }
    return "?";
}

namespace
{

/** The scenario's request with the driver overrides folded in. */
CheckRequest
effectiveRequest(const Scenario &sc, const RunOptions &opts)
{
    CheckRequest req = sc.request;
    req.numThreads = opts.numThreads;
    if (opts.maxConfigs)
        req.maxConfigs = *opts.maxConfigs;
    if (opts.maxDepth)
        req.maxDepth = *opts.maxDepth;
    if (opts.timeBudgetMs)
        req.timeBudgetMs = *opts.timeBudgetMs;
    if (opts.maxCrashesPerNode)
        req.maxCrashesPerNode = *opts.maxCrashesPerNode;
    if (opts.policy)
        req.frontier = *opts.policy;
    if (opts.reduction)
        req.reduction = *opts.reduction;
    return req;
}

RunResult
runExplore(const Scenario &sc, const RunOptions &opts)
{
    RunResult r;
    r.checker = CheckerKind::Explore;
    if (sc.program.threads.empty()) {
        r.error = "scenario has no thread blocks to explore";
        return r;
    }
    Cxl0Model model(sc.config(), sc.variant);
    r.report = check::Explorer(model, sc.program,
                               effectiveRequest(sc, opts))
                   .check();
    r.anchors = checkOutcomeAnchors(sc, r.report.outcomes);
    r.pass = r.anchors.pass &&
             r.report.verdict == CheckVerdict::Pass &&
             !r.report.truncated;
    return r;
}

RunResult
runFeasible(const Scenario &sc, const RunOptions &opts)
{
    RunResult r;
    r.checker = CheckerKind::Feasible;
    if (sc.trace.empty()) {
        r.error = "scenario has no trace block to check";
        return r;
    }
    Cxl0Model model(sc.config(), sc.variant);
    r.report = check::checkTraceFeasible(model, sc.trace,
                                         effectiveRequest(sc, opts));
    if (r.report.verdict == CheckVerdict::Inconclusive) {
        r.anchors.pass = false;
        r.anchors.failures.push_back(
            "feasibility truncated by a config or time budget");
    } else if (sc.expectedVerdict.has_value()) {
        check::Verdict observed =
            r.report.verdict == CheckVerdict::Pass
                ? check::Verdict::Allowed
                : check::Verdict::Forbidden;
        if (observed != *sc.expectedVerdict) {
            r.anchors.pass = false;
            r.anchors.failures.push_back(
                "declared verdict " +
                check::verdictName(*sc.expectedVerdict) +
                ", observed " + check::verdictName(observed));
        }
    }
    r.pass = r.anchors.pass;
    return r;
}

/**
 * Anchor a Pass/Fail verdict against the scenario's `verdict`
 * directive: `forbidden` declares the property violated (Fail
 * expected); anything else expects Pass. Inconclusive never passes.
 */
AnchorReport
verdictAnchor(const Scenario &sc, const CheckReport &report)
{
    AnchorReport a;
    if (report.verdict == CheckVerdict::Inconclusive) {
        a.pass = false;
        a.failures.push_back("search truncated before a verdict");
        return a;
    }
    CheckVerdict want =
        sc.expectedVerdict == check::Verdict::Forbidden
            ? CheckVerdict::Fail
            : CheckVerdict::Pass;
    if (report.verdict != want) {
        a.pass = false;
        a.failures.push_back(
            std::string("expected verdict ") +
            check::checkVerdictName(want) + ", observed " +
            check::checkVerdictName(report.verdict));
    }
    return a;
}

RunResult
runRefinement(const Scenario &sc, const RunOptions &opts)
{
    RunResult r;
    r.checker = CheckerKind::Refinement;
    CheckRequest req = effectiveRequest(sc, opts);
    if (req.maxDepth == 0)
        req.maxDepth = opts.refineDefaultDepth;
    model::SystemConfig cfg = sc.config();
    Cxl0Model spec(cfg, opts.refineSpec);
    Cxl0Model impl(cfg, opts.refineImpl);
    check::Alphabet alphabet = check::Alphabet::standard(cfg);
    if (req.maxCrashesPerNode > 0)
        alphabet.maxCrashesPerNode = req.maxCrashesPerNode;
    r.report = check::checkRefinement(spec, impl, alphabet, req);
    if (r.report.verdict == CheckVerdict::Inconclusive &&
        r.report.counterexample.empty() && !r.report.timedOut &&
        r.report.stats.configsInterned < req.maxConfigs &&
        sc.expectedVerdict != check::Verdict::Forbidden) {
        // Bounded refinement over a standard alphabet always runs
        // into its depth bound; "no violation within the bound" is
        // its conclusive-enough success (the verdict stays visible
        // as "inconclusive" in the report). A search cut by the
        // *config budget* is different — it may have stopped short
        // of a reachable counterexample and must not pass. The
        // interned-count proxy errs strict: a run whose pair count
        // exactly fills the budget is treated as budget-cut (a
        // noisy failure, never a false pass). A run cut by the
        // *time budget* is equally unfinished and must not pass.
        r.anchors = AnchorReport{};
    } else {
        r.anchors = verdictAnchor(sc, r.report);
    }
    r.pass = r.anchors.pass;
    return r;
}

RunResult
runInclusion(const Scenario &sc, const RunOptions &opts)
{
    RunResult r;
    r.checker = CheckerKind::Inclusion;
    if (sc.traceLhs.empty() || sc.traceRhs.empty()) {
        r.error = "inclusion needs both trace lhs and trace rhs "
                  "blocks";
        return r;
    }
    model::SystemConfig cfg = sc.config();
    Cxl0Model model(cfg, sc.variant);
    std::vector<model::State> states =
        check::enumerateStates(cfg, opts.inclusionMaxValue);
    r.report = check::checkTraceInclusion(model, states, sc.traceLhs,
                                          sc.traceRhs,
                                          effectiveRequest(sc, opts));
    r.anchors = verdictAnchor(sc, r.report);
    r.pass = r.anchors.pass;
    return r;
}

} // namespace

RunResult
runScenario(const Scenario &sc, const RunOptions &opts)
{
    CheckerKind kind = opts.checker;
    if (kind == CheckerKind::Auto) {
        if (!sc.program.threads.empty())
            kind = CheckerKind::Explore;
        else if (!sc.trace.empty())
            kind = CheckerKind::Feasible;
        else if (!sc.traceLhs.empty() && !sc.traceRhs.empty())
            kind = CheckerKind::Inclusion;
        else
            kind = CheckerKind::Feasible; // reports a useful error
    }
    switch (kind) {
    case CheckerKind::Explore:
        return runExplore(sc, opts);
    case CheckerKind::Feasible:
        return runFeasible(sc, opts);
    case CheckerKind::Refinement:
        return runRefinement(sc, opts);
    case CheckerKind::Inclusion:
        return runInclusion(sc, opts);
    case CheckerKind::Auto:
        break;
    }
    RunResult r;
    r.error = "unreachable checker kind";
    return r;
}

std::string
RunResult::describe() const
{
    if (!error.empty())
        return std::string("error: ") + error;
    std::string out = checkerKindName(checker);
    out += ": ";
    out += pass ? "pass" : "FAIL";
    out += " (verdict ";
    out += check::checkVerdictName(report.verdict);
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  ", %zu configs, %zu outcomes, %.3fs)",
                  report.stats.configsVisited, report.outcomes.size(),
                  report.stats.seconds);
    out += buf;
    for (const std::string &f : anchors.failures)
        out += "\n    " + f;
    return out;
}

} // namespace cxl0::lang
