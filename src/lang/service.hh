/**
 * @file
 * The scenario service: cache- and pool-fronted runScenario.
 *
 * `cxl0check serve` (and the fuzz farm's cache trial) multiplex many
 * scenario requests through one ScenarioService, which composes the
 * two batch seams:
 *
 *  - a check::ContextPool keying one persistent ModelContext per
 *    (SystemConfig, variant), so interning tables and tau/crash/
 *    closure memos survive across requests, and
 *  - a check::ResultCache keyed on the canonical request text
 *    (cacheKey below): the scenario's canonical dump — which the
 *    round-trip guarantee makes a content address — concatenated
 *    with the resolved checker route and every effective
 *    CheckRequest knob. Same scenario + same knobs = same key;
 *    any knob change (threads, budgets, reduction, endpoints) keys
 *    a distinct entry.
 *
 * A hit re-judges the cached deterministic report projection through
 * the same anchor logic a fresh run uses (lang::judgeReport), so
 * pass/fail is identical either way; the optional verify-hits mode
 * recomputes every hit and checks byte-identity of the serialized
 * projection — the cache's correctness gate.
 *
 * Not thread-safe: one service per serving thread.
 */

#ifndef CXL0_LANG_SERVICE_HH
#define CXL0_LANG_SERVICE_HH

#include <string>

#include "check/cache.hh"
#include "check/service.hh"
#include "lang/run.hh"

namespace cxl0::lang
{

/**
 * The canonical cache key for running `sc` under `opts`: a versioned
 * header naming the resolved checker and every effective request
 * knob, followed by the scenario's canonical dump.
 */
std::string cacheKey(const Scenario &sc, const RunOptions &opts);

/** 64-bit content address of (scenario, options). */
uint64_t scenarioHash(const Scenario &sc,
                      const RunOptions &opts = {});

struct ServiceOptions
{
    RunOptions run;
    size_t cacheCapacity = 1024;
    /** Non-empty enables the on-disk store. */
    std::string cacheDir;
    /** Recompute every hit and require byte-identity (the
     *  correctness gate; roughly doubles the work on hits). */
    bool verifyHits = false;
};

class ScenarioService
{
  public:
    explicit ScenarioService(ServiceOptions so = {});

    struct Response
    {
        RunResult result;
        bool cacheHit = false;
        /** Only meaningful under verifyHits (true otherwise). */
        bool byteIdentical = true;
        uint64_t key = 0;
    };

    /** Run under the service's own RunOptions. */
    Response handle(const Scenario &sc);

    /** Run under per-request options (still pooled + cached). */
    Response handle(const Scenario &sc, const RunOptions &opts);

    const check::CacheStats &cacheStats() const
    {
        return cache_.stats();
    }
    const check::ContextPool &contexts() const { return pool_; }
    const ServiceOptions &options() const { return so_; }

  private:
    ServiceOptions so_;
    check::ContextPool pool_;
    check::ResultCache cache_;
};

} // namespace cxl0::lang

#endif // CXL0_LANG_SERVICE_HH
