/**
 * @file
 * Recursive-descent parser for the scenario DSL.
 *
 * The language is line-oriented: one directive, instruction, label,
 * or outcome row per line, with `{ ... }` blocks for threads, traces,
 * and anchors. The lexer attaches a 1-based (line, col) to every
 * token and the parser fails fast with one located diagnostic, so
 * malformed corpus files point at the offending token, not at a
 * generic "syntax error". The grammar is specified in
 * src/lang/README.md; dump.cc emits exactly this language back.
 */

#include "lang/scenario.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace cxl0::lang
{

namespace
{

using check::Operand;
using check::ProgInstr;
using model::Label;
using model::Op;

struct Token
{
    enum class Kind
    {
        Ident,
        Int,
        String,
        Punct,
        Newline,
        End,
    };

    Kind kind = Kind::End;
    std::string text; //!< ident text / punct char / string contents
    long long ival = 0;
    SourceLoc loc;

    /** How the token reads in an error message. */
    std::string show() const
    {
        switch (kind) {
        case Kind::Ident:
        case Kind::Punct:
            return "'" + text + "'";
        case Kind::Int:
            return "'" + std::to_string(ival) + "'";
        case Kind::String:
            return "string \"" + text + "\"";
        case Kind::Newline:
            return "end of line";
        case Kind::End:
            return "end of file";
        }
        return "?";
    }
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-';
}

/** Whether an identifier names a register (r0, r1, ...). */
bool
isRegToken(const std::string &s)
{
    if (s.size() < 2 || s[0] != 'r')
        return false;
    for (size_t i = 1; i < s.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
    return true;
}

class Lexer
{
  public:
    explicit Lexer(std::string_view text) : text_(text) {}

    /** Tokenize everything; false + diagnostic on a bad character. */
    bool run(std::vector<Token> &out, Diagnostic &err)
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n') {
                out.push_back({Token::Kind::Newline, "\n", 0, loc()});
                advance();
                continue;
            }
            if (c == ' ' || c == '\t' || c == '\r') {
                advance();
                continue;
            }
            if (c == '#') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    advance();
                continue;
            }
            if (c == '"') {
                if (!lexString(out, err))
                    return false;
                continue;
            }
            if (std::string("{}()|=@,").find(c) != std::string::npos) {
                out.push_back(
                    {Token::Kind::Punct, std::string(1, c), 0, loc()});
                advance();
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c)) ||
                (c == '-' && pos_ + 1 < text_.size() &&
                 std::isdigit(
                     static_cast<unsigned char>(text_[pos_ + 1])))) {
                if (!lexInt(out, err))
                    return false;
                continue;
            }
            if (isIdentStart(c)) {
                lexIdent(out);
                continue;
            }
            if (std::isprint(static_cast<unsigned char>(c))) {
                err = {loc(), std::string("unexpected character '") +
                                  c + "'"};
            } else {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\x%02x",
                              static_cast<unsigned char>(c));
                err = {loc(),
                       std::string("unexpected character '") + hex +
                           "'"};
            }
            return false;
        }
        out.push_back({Token::Kind::End, "", 0, loc()});
        return true;
    }

  private:
    SourceLoc loc() const { return {line_, col_}; }

    void advance()
    {
        if (text_[pos_] == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        ++pos_;
    }

    bool lexString(std::vector<Token> &out, Diagnostic &err)
    {
        SourceLoc start = loc();
        advance(); // opening quote
        std::string s;
        while (pos_ < text_.size() && text_[pos_] != '"' &&
               text_[pos_] != '\n') {
            s += text_[pos_];
            advance();
        }
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            err = {start, "unterminated string"};
            return false;
        }
        advance(); // closing quote
        out.push_back({Token::Kind::String, std::move(s), 0, start});
        return true;
    }

    bool lexInt(std::vector<Token> &out, Diagnostic &err)
    {
        SourceLoc start = loc();
        std::string s;
        if (text_[pos_] == '-') {
            s += '-';
            advance();
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            s += text_[pos_];
            advance();
        }
        errno = 0;
        long long v = std::strtoll(s.c_str(), nullptr, 10);
        if (errno == ERANGE) {
            err = {start, "integer literal " + s +
                              " out of range (64-bit)"};
            return false;
        }
        out.push_back({Token::Kind::Int, s, v, start});
        return true;
    }

    void lexIdent(std::vector<Token> &out)
    {
        SourceLoc start = loc();
        std::string s;
        while (pos_ < text_.size() && isIdentChar(text_[pos_])) {
            s += text_[pos_];
            advance();
        }
        out.push_back({Token::Kind::Ident, std::move(s), 0, start});
    }

    std::string_view text_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks))
    {
    }

    ParseResult run()
    {
        parseTop();
        ParseResult r;
        if (failed_) {
            r.error = err_;
        } else {
            r.scenario = std::move(sc_);
        }
        return r;
    }

  private:
    // ----------------------------------------------------- utilities

    const Token &peek() const { return toks_[pos_]; }

    Token next() { return toks_[pos_ == last() ? pos_ : pos_++]; }

    size_t last() const { return toks_.size() - 1; }

    void fail(SourceLoc loc, std::string msg)
    {
        if (!failed_) {
            failed_ = true;
            err_ = {loc, std::move(msg)};
        }
    }

    void skipNewlines()
    {
        while (peek().kind == Token::Kind::Newline)
            ++pos_;
    }

    /** Consume an end-of-line (or end-of-file). */
    bool endOfLine()
    {
        const Token &t = peek();
        if (t.kind == Token::Kind::End)
            return true;
        if (t.kind == Token::Kind::Newline) {
            ++pos_;
            return true;
        }
        fail(t.loc, "unexpected " + t.show() + " at end of line");
        return false;
    }

    bool expectPunct(char c)
    {
        Token t = next();
        if (t.kind != Token::Kind::Punct || t.text[0] != c) {
            fail(t.loc, std::string("expected '") + c + "', got " +
                            t.show());
            return false;
        }
        return true;
    }

    bool expectInt(long long &out)
    {
        Token t = next();
        if (t.kind != Token::Kind::Int) {
            fail(t.loc, "expected a number, got " + t.show());
            return false;
        }
        out = t.ival;
        return true;
    }

    bool expectIdent(Token &out)
    {
        out = next();
        if (out.kind != Token::Kind::Ident) {
            fail(out.loc, "expected an identifier, got " + out.show());
            return false;
        }
        return true;
    }

    bool nodeId(NodeId &out)
    {
        Token t = peek();
        long long v;
        if (!expectInt(v))
            return false;
        if (v < 0 ||
            v >= static_cast<long long>(sc_.machinePersistent.size())) {
            fail(t.loc, "node " + std::to_string(v) +
                            " out of range (" +
                            std::to_string(
                                sc_.machinePersistent.size()) +
                            " machine(s))");
            return false;
        }
        out = static_cast<NodeId>(v);
        return true;
    }

    bool addrByName(Addr &out)
    {
        Token t;
        if (!expectIdent(t))
            return false;
        auto it = addrs_.find(t.text);
        if (it == addrs_.end()) {
            fail(t.loc, "undeclared location '" + t.text + "'");
            return false;
        }
        out = it->second;
        return true;
    }

    bool regIndex(const Token &t, int &out)
    {
        // strtoll saturates on overflow, so absurd indices (r10^19)
        // land in the out-of-range branch instead of wrapping.
        long long v = std::strtoll(t.text.c_str() + 1, nullptr, 10);
        if (v >= sc_.program.numRegs) {
            fail(t.loc, "register " + t.text +
                            " out of range (registers " +
                            std::to_string(sc_.program.numRegs) + ")");
            return false;
        }
        out = static_cast<int>(v);
        return true;
    }

    bool operand(Operand &out)
    {
        Token t = next();
        if (t.kind == Token::Kind::Int) {
            out = Operand::immediate(t.ival);
            return true;
        }
        if (t.kind == Token::Kind::Ident && isRegToken(t.text)) {
            int r;
            if (!regIndex(t, r))
                return false;
            out = Operand::regRef(r);
            return true;
        }
        fail(t.loc, "expected a value or register, got " + t.show());
        return false;
    }

    /** Consume `{` NEWLINE opening a block. */
    bool openBlock()
    {
        return expectPunct('{') && endOfLine();
    }

    /**
     * Inside a block: skip blank lines; true when a body line
     * follows, false at `}` (consumed, with its newline) or on error
     * ("unexpected end of file inside <what> block").
     */
    bool bodyLine(const char *what, bool &done)
    {
        skipNewlines();
        const Token &t = peek();
        if (t.kind == Token::Kind::End) {
            fail(t.loc, std::string(
                            "unexpected end of file inside ") +
                            what + " block");
            return false;
        }
        if (t.kind == Token::Kind::Punct && t.text[0] == '}') {
            ++pos_;
            done = true;
            return endOfLine();
        }
        done = false;
        return true;
    }

    // ---------------------------------------------------- directives

    void parseTop()
    {
        skipNewlines();
        while (!failed_ && peek().kind != Token::Kind::End) {
            Token t;
            if (!expectIdent(t))
                return;
            if (t.text == "litmus")
                directiveLitmus(t);
            else if (t.text == "id")
                directiveId();
            else if (t.text == "variant")
                directiveVariant();
            else if (t.text == "machine")
                directiveMachine();
            else if (t.text == "addr")
                directiveAddr();
            else if (t.text == "registers")
                directiveRegisters(t);
            else if (t.text == "crash")
                directiveCrash(t);
            else if (t.text == "max-configs")
                directiveMaxConfigs();
            else if (t.text == "max-depth")
                directiveMaxDepth();
            else if (t.text == "thread")
                threadBlock();
            else if (t.text == "trace")
                traceBlock(t);
            else if (t.text == "verdict")
                directiveVerdict();
            else if (t.text == "expect")
                expectBlock(t);
            else if (t.text == "forbid")
                forbidBlock(t);
            else
                fail(t.loc, "unknown directive '" + t.text + "'");
            skipNewlines();
        }
        if (!failed_)
            finalize();
    }

    void directiveLitmus(const Token &kw)
    {
        if (seenName_) {
            fail(kw.loc, "duplicate litmus directive");
            return;
        }
        Token t = next();
        if (t.kind != Token::Kind::String) {
            fail(t.loc, "expected a quoted name, got " + t.show());
            return;
        }
        sc_.name = t.text;
        seenName_ = true;
        endOfLine();
    }

    void directiveId()
    {
        long long v;
        if (!expectInt(v))
            return;
        sc_.id = static_cast<int>(v);
        endOfLine();
    }

    void directiveVariant()
    {
        Token t;
        if (!expectIdent(t))
            return;
        if (t.text == "spec") {
            // `variant spec=<v> impl=<v>`: refinement endpoints
            // pinned in-file (both required, spec first).
            if (sc_.refineSpec.has_value()) {
                fail(t.loc, "duplicate variant spec=/impl= clause");
                return;
            }
            model::ModelVariant spec, impl;
            if (!expectPunct('='))
                return;
            Token sv;
            if (!expectIdent(sv))
                return;
            if (!variantFromWord(sv.text, spec)) {
                fail(sv.loc, "unknown variant '" + sv.text +
                                 "' (base, lwb, or psn)");
                return;
            }
            Token ik;
            if (!expectIdent(ik))
                return;
            if (ik.text != "impl") {
                fail(ik.loc, "expected 'impl', got " + ik.show());
                return;
            }
            if (!expectPunct('='))
                return;
            Token iv;
            if (!expectIdent(iv))
                return;
            if (!variantFromWord(iv.text, impl)) {
                fail(iv.loc, "unknown variant '" + iv.text +
                                 "' (base, lwb, or psn)");
                return;
            }
            sc_.refineSpec = spec;
            sc_.refineImpl = impl;
            endOfLine();
            return;
        }
        if (!variantFromWord(t.text, sc_.variant)) {
            fail(t.loc, "unknown variant '" + t.text +
                            "' (base, lwb, or psn)");
            return;
        }
        endOfLine();
    }

    void directiveMachine()
    {
        Token idx = peek();
        long long v;
        if (!expectInt(v))
            return;
        if (v != static_cast<long long>(sc_.machinePersistent.size())) {
            fail(idx.loc,
                 "machine " + std::to_string(v) +
                     " declared out of order (expected machine " +
                     std::to_string(sc_.machinePersistent.size()) +
                     ")");
            return;
        }
        Token kind;
        if (!expectIdent(kind))
            return;
        if (kind.text == "nvmm")
            sc_.machinePersistent.push_back(true);
        else if (kind.text == "volatile")
            sc_.machinePersistent.push_back(false);
        else {
            fail(kind.loc, "unknown memory kind '" + kind.text +
                               "' (nvmm or volatile)");
            return;
        }
        endOfLine();
    }

    void directiveAddr()
    {
        Token name;
        if (!expectIdent(name))
            return;
        if (isRegToken(name.text)) {
            fail(name.loc, "location name '" + name.text +
                               "' would shadow a register");
            return;
        }
        if (addrs_.count(name.text)) {
            fail(name.loc, "duplicate location '" + name.text + "'");
            return;
        }
        if (!expectPunct('@'))
            return;
        NodeId owner;
        if (!nodeId(owner))
            return;
        addrs_[name.text] = static_cast<Addr>(sc_.addrNames.size());
        sc_.addrNames.push_back(name.text);
        sc_.addrOwner.push_back(owner);
        endOfLine();
    }

    void directiveRegisters(const Token &kw)
    {
        if (!sc_.program.threads.empty() ||
            sc_.expectKind != AnchorKind::None ||
            !sc_.forbidden.empty()) {
            fail(kw.loc, "registers must be declared before thread "
                         "and anchor blocks");
            return;
        }
        Token cnt = peek();
        long long v;
        if (!expectInt(v))
            return;
        if (v < 1 || v > 64) {
            fail(cnt.loc, "register count must be between 1 and 64");
            return;
        }
        sc_.program.numRegs = static_cast<int>(v);
        endOfLine();
    }

    void directiveCrash(const Token &kw)
    {
        Token which;
        if (!expectIdent(which))
            return;
        bool any = false;
        NodeId node = 0;
        if (which.text == "any") {
            any = true;
        } else if (which.text == "node") {
            if (!nodeId(node))
                return;
        } else {
            fail(which.loc, "expected 'any' or 'node', got " +
                                which.show());
            return;
        }
        Token maxKw;
        if (!expectIdent(maxKw))
            return;
        if (maxKw.text != "max") {
            fail(maxKw.loc, "expected 'max', got " + maxKw.show());
            return;
        }
        Token budget = peek();
        long long v;
        if (!expectInt(v))
            return;
        if (v < 1) {
            fail(budget.loc, "crash budget must be at least 1");
            return;
        }
        if (sc_.request.maxCrashesPerNode != 0 &&
            sc_.request.maxCrashesPerNode != static_cast<int>(v)) {
            fail(budget.loc,
                 "conflicting crash budgets (max " +
                     std::to_string(sc_.request.maxCrashesPerNode) +
                     " vs max " + std::to_string(v) + ")");
            return;
        }
        if (any && !sc_.request.crashableNodes.empty()) {
            fail(kw.loc, "crash any conflicts with earlier crash "
                         "node directives");
            return;
        }
        if (!any && crashAny_) {
            fail(kw.loc, "crash node conflicts with an earlier crash "
                         "any directive");
            return;
        }
        sc_.request.maxCrashesPerNode = static_cast<int>(v);
        if (any)
            crashAny_ = true;
        else
            sc_.request.crashableNodes.push_back(node);
        endOfLine();
    }

    void directiveMaxConfigs()
    {
        Token t = peek();
        long long v;
        if (!expectInt(v))
            return;
        if (v < 1) {
            fail(t.loc, "max-configs must be at least 1");
            return;
        }
        sc_.request.maxConfigs = static_cast<size_t>(v);
        endOfLine();
    }

    void directiveMaxDepth()
    {
        Token t = peek();
        long long v;
        if (!expectInt(v))
            return;
        if (v < 0) {
            fail(t.loc, "max-depth must be non-negative");
            return;
        }
        sc_.request.maxDepth = static_cast<size_t>(v);
        endOfLine();
    }

    void directiveVerdict()
    {
        Token t;
        if (!expectIdent(t))
            return;
        if (t.text == "allowed")
            sc_.expectedVerdict = check::Verdict::Allowed;
        else if (t.text == "forbidden")
            sc_.expectedVerdict = check::Verdict::Forbidden;
        else {
            fail(t.loc, "unknown verdict '" + t.text +
                            "' (allowed or forbidden)");
            return;
        }
        endOfLine();
    }

    // -------------------------------------------------- thread block

    void threadBlock()
    {
        Token idTok = peek();
        long long id;
        if (!expectInt(id))
            return;
        long long want =
            static_cast<long long>(sc_.program.threads.size());
        if (want >= 32) {
            // The packed-config explorer (and the crashedThreads
            // bitmask) cap programs at 32 threads.
            fail(idTok.loc, "too many threads (max 32)");
            return;
        }
        if (id < want) {
            fail(idTok.loc, "duplicate thread id " +
                                std::to_string(id));
            return;
        }
        if (id > want) {
            fail(idTok.loc, "thread id " + std::to_string(id) +
                                " out of order (expected thread " +
                                std::to_string(want) + ")");
            return;
        }
        Token onKw;
        if (!expectIdent(onKw))
            return;
        if (onKw.text != "on") {
            fail(onKw.loc, "expected 'on', got " + onKw.show());
            return;
        }
        NodeId node;
        if (!nodeId(node))
            return;
        if (!openBlock())
            return;
        check::ProgThread thread{node, {}};
        for (;;) {
            bool done;
            if (!bodyLine("thread", done))
                return;
            if (done)
                break;
            if (!instruction(thread.code))
                return;
        }
        sc_.program.threads.push_back(std::move(thread));
    }

    bool instruction(std::vector<ProgInstr> &code)
    {
        Token t;
        if (!expectIdent(t))
            return false;
        if (isRegToken(t.text)) {
            int dest;
            if (!regIndex(t, dest))
                return false;
            if (!expectPunct('='))
                return false;
            Token op;
            if (!expectIdent(op))
                return false;
            if (op.text == "load") {
                Addr x;
                if (!addrByName(x))
                    return false;
                code.push_back(ProgInstr::load(x, dest));
            } else if (op.text == "faa.l" || op.text == "faa.r" ||
                       op.text == "faa.m") {
                Addr x;
                Operand delta;
                if (!addrByName(x) || !operand(delta))
                    return false;
                code.push_back(ProgInstr::faa(
                    rmwFlavour(op.text), x, delta, dest));
            } else if (op.text == "cas.l" || op.text == "cas.r" ||
                       op.text == "cas.m") {
                Addr x;
                Operand exp, des;
                if (!addrByName(x) || !operand(exp) || !operand(des))
                    return false;
                code.push_back(ProgInstr::cas(
                    rmwFlavour(op.text), x, exp, des, dest));
            } else {
                fail(op.loc, "unknown op '" + op.text + "'");
                return false;
            }
            return endOfLine();
        }
        if (t.text == "lstore" || t.text == "rstore" ||
            t.text == "mstore") {
            Addr x;
            Operand v;
            if (!addrByName(x) || !operand(v))
                return false;
            Op flavour = t.text[0] == 'l'   ? Op::LStore
                         : t.text[0] == 'r' ? Op::RStore
                                            : Op::MStore;
            code.push_back(ProgInstr::store(flavour, x, v));
            return endOfLine();
        }
        if (t.text == "lflush" || t.text == "rflush") {
            Addr x;
            if (!addrByName(x))
                return false;
            code.push_back(ProgInstr::flush(
                t.text[0] == 'l' ? Op::LFlush : Op::RFlush, x));
            return endOfLine();
        }
        if (t.text == "gpf") {
            code.push_back(ProgInstr::gpf());
            return endOfLine();
        }
        fail(t.loc, "unknown op '" + t.text + "'");
        return false;
    }

    /** Flavour suffix of faa.l / cas.m / ... to the Rmw op. */
    static Op rmwFlavour(const std::string &op)
    {
        char f = op[op.size() - 1];
        return f == 'l' ? Op::LRmw : f == 'r' ? Op::RRmw : Op::MRmw;
    }

    // --------------------------------------------------- trace block

    void traceBlock(const Token &kw)
    {
        std::vector<Label> *dst = &sc_.trace;
        const char *what = "trace";
        if (peek().kind == Token::Kind::Ident) {
            Token side = next();
            if (side.text == "lhs") {
                dst = &sc_.traceLhs;
                what = "trace lhs";
            } else if (side.text == "rhs") {
                dst = &sc_.traceRhs;
                what = "trace rhs";
            } else {
                fail(side.loc, "expected 'lhs', 'rhs', or '{', got " +
                                   side.show());
                return;
            }
        }
        if (!dst->empty()) {
            fail(kw.loc, std::string("duplicate ") + what + " block");
            return;
        }
        if (!openBlock())
            return;
        for (;;) {
            bool done;
            if (!bodyLine("trace", done))
                return;
            if (done)
                break;
            if (!traceLabel(*dst))
                return;
        }
    }

    bool traceLabel(std::vector<Label> &trace)
    {
        Token t;
        if (!expectIdent(t))
            return false;
        NodeId node;
        if (t.text == "gpf") {
            if (!nodeId(node))
                return false;
            trace.push_back(Label::gpf(node));
            return endOfLine();
        }
        if (t.text == "crash") {
            if (!nodeId(node))
                return false;
            trace.push_back(Label::crash(node));
            return endOfLine();
        }
        if (t.text == "lflush" || t.text == "rflush") {
            Addr x;
            if (!nodeId(node) || !addrByName(x))
                return false;
            trace.push_back(t.text[0] == 'l' ? Label::lflush(node, x)
                                             : Label::rflush(node, x));
            return endOfLine();
        }
        if (t.text == "load" || t.text == "lstore" ||
            t.text == "rstore" || t.text == "mstore") {
            Addr x;
            long long v;
            if (!nodeId(node) || !addrByName(x) || !expectInt(v))
                return false;
            if (t.text == "load")
                trace.push_back(Label::load(node, x, v));
            else if (t.text == "lstore")
                trace.push_back(Label::lstore(node, x, v));
            else if (t.text == "rstore")
                trace.push_back(Label::rstore(node, x, v));
            else
                trace.push_back(Label::mstore(node, x, v));
            return endOfLine();
        }
        if (t.text == "lrmw" || t.text == "rrmw" || t.text == "mrmw") {
            Addr x;
            long long oldv, newv;
            if (!nodeId(node) || !addrByName(x) || !expectInt(oldv) ||
                !expectInt(newv))
                return false;
            if (t.text == "lrmw")
                trace.push_back(Label::lrmw(node, x, oldv, newv));
            else if (t.text == "rrmw")
                trace.push_back(Label::rrmw(node, x, oldv, newv));
            else
                trace.push_back(Label::mrmw(node, x, oldv, newv));
            return endOfLine();
        }
        fail(t.loc, "unknown op '" + t.text + "'");
        return false;
    }

    // ------------------------------------------------- anchor blocks

    void expectBlock(const Token &kw)
    {
        if (sc_.expectKind != AnchorKind::None) {
            fail(kw.loc, "duplicate expect block");
            return;
        }
        Token kind;
        if (!expectIdent(kind))
            return;
        if (kind.text == "exact")
            sc_.expectKind = AnchorKind::Exact;
        else if (kind.text == "subset")
            sc_.expectKind = AnchorKind::Subset;
        else {
            fail(kind.loc, "expected 'exact' or 'subset', got " +
                               kind.show());
            return;
        }
        anchorRows("expect", sc_.expected);
    }

    void forbidBlock(const Token &kw)
    {
        if (!sc_.forbidden.empty()) {
            fail(kw.loc, "duplicate forbid block");
            return;
        }
        anchorRows("forbid", sc_.forbidden);
    }

    void anchorRows(const char *what, std::vector<check::Outcome> &out)
    {
        if (!openBlock())
            return;
        for (;;) {
            bool done;
            if (!bodyLine(what, done))
                return;
            if (done)
                break;
            check::Outcome o;
            if (!outcomeRow(o))
                return;
            out.push_back(std::move(o));
        }
    }

    bool outcomeRow(check::Outcome &out)
    {
        Token open = peek();
        if (!expectPunct('('))
            return false;
        out.regs.clear();
        out.regs.emplace_back();
        for (;;) {
            const Token &t = peek();
            if (t.kind == Token::Kind::Int) {
                if (out.regs.back().size() >=
                    static_cast<size_t>(sc_.program.numRegs)) {
                    fail(t.loc,
                         "anchor references undeclared register r" +
                             std::to_string(out.regs.back().size()) +
                             " (registers " +
                             std::to_string(sc_.program.numRegs) +
                             ")");
                    return false;
                }
                out.regs.back().push_back(t.ival);
                ++pos_;
                continue;
            }
            if (t.kind == Token::Kind::Punct && t.text[0] == '|') {
                out.regs.emplace_back();
                ++pos_;
                continue;
            }
            if (t.kind == Token::Kind::Punct && t.text[0] == ')') {
                ++pos_;
                break;
            }
            fail(t.loc, "expected a value, '|', or ')', got " +
                            t.show());
            return false;
        }
        if (out.regs.size() != sc_.program.threads.size()) {
            fail(open.loc,
                 "outcome row has " + std::to_string(out.regs.size()) +
                     " thread section(s), program has " +
                     std::to_string(sc_.program.threads.size()) +
                     " thread(s)");
            return false;
        }
        for (auto &regs : out.regs)
            regs.resize(static_cast<size_t>(sc_.program.numRegs), 0);
        out.crashedThreads = 0;
        if (peek().kind == Token::Kind::Punct &&
            peek().text[0] == '@') {
            ++pos_;
            Token kw;
            if (!expectIdent(kw))
                return false;
            if (kw.text != "crashed") {
                fail(kw.loc, "expected 'crashed', got " + kw.show());
                return false;
            }
            bool any = false;
            for (;;) {
                const Token &t = peek();
                if (t.kind == Token::Kind::Punct &&
                    t.text[0] == ',') {
                    ++pos_;
                    continue;
                }
                if (t.kind != Token::Kind::Int)
                    break;
                if (t.ival < 0 ||
                    t.ival >= static_cast<long long>(
                                  sc_.program.threads.size())) {
                    fail(t.loc, "crashed thread " +
                                    std::to_string(t.ival) +
                                    " out of range");
                    return false;
                }
                out.crashedThreads |= 1u << t.ival;
                any = true;
                ++pos_;
            }
            if (!any) {
                fail(peek().loc,
                     "expected at least one crashed thread index");
                return false;
            }
        }
        return endOfLine();
    }

    // ----------------------------------------------------- finish-up

    void finalize()
    {
        const Token &eof = toks_[last()];
        if (!seenName_) {
            fail(eof.loc,
                 "scenario is missing the litmus name directive");
            return;
        }
        if (sc_.machinePersistent.empty()) {
            fail(eof.loc, "scenario declares no machines");
            return;
        }
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
    Scenario sc_;
    Diagnostic err_;
    bool failed_ = false;
    bool seenName_ = false;
    bool crashAny_ = false;
    std::map<std::string, Addr> addrs_;
};

} // namespace

ParseResult
parseScenario(std::string_view text)
{
    std::vector<Token> toks;
    Diagnostic err;
    if (!Lexer(text).run(toks, err)) {
        ParseResult r;
        r.error = err;
        return r;
    }
    return Parser(std::move(toks)).run();
}

} // namespace cxl0::lang
