/**
 * @file
 * Serializer for the scenario DSL: the canonical text form.
 *
 * dumpScenario emits exactly the language parser.cc accepts, in a
 * fixed directive order with fixed spacing, so a dumped scenario is
 * both re-parseable (parse(dump(s)) == s, tested for every built-in
 * LitmusProgram) and byte-stable (the corpus anti-drift test compares
 * the tracked files against a fresh export byte-for-byte).
 */

#include "lang/scenario.hh"

#include <cstdarg>
#include <cstdio>

namespace cxl0::lang
{

namespace
{

using check::Operand;
using check::ProgInstr;
using model::Label;
using model::Op;

void
append(std::string &out, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    char buf[256];
    int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return;
    }
    if (n < static_cast<int>(sizeof buf)) {
        out.append(buf, static_cast<size_t>(n));
    } else {
        // Longer line (e.g. a long location name): size exactly.
        std::string big(static_cast<size_t>(n) + 1, '\0');
        std::vsnprintf(big.data(), big.size(), fmt, ap2);
        out.append(big.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
}

/**
 * The grammar has no string escapes: quotes become apostrophes and
 * control characters spaces, so a programmatically built name always
 * dumps to a line the parser accepts.
 */
std::string
sanitizedName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == '"')
            c = '\'';
        else if (static_cast<unsigned char>(c) < 0x20)
            c = ' ';
    }
    return out;
}

/** DSL flavour suffix of an RMW op. */
char
rmwSuffix(Op op)
{
    return op == Op::LRmw ? 'l' : op == Op::RRmw ? 'r' : 'm';
}

std::string
operandText(const Operand &o)
{
    if (o.isReg)
        return "r" + std::to_string(o.reg);
    return std::to_string(o.imm);
}

void
dumpInstr(std::string &out, const Scenario &sc, const ProgInstr &i)
{
    const std::string &x =
        i.addr < sc.addrNames.size() ? sc.addrNames[i.addr] : "?";
    switch (i.kind) {
    case ProgInstr::Kind::Load:
        append(out, "  r%d = load %s\n", i.dest, x.c_str());
        break;
    case ProgInstr::Kind::Store:
        append(out, "  %cstore %s %s\n",
               i.op == Op::LStore   ? 'l'
               : i.op == Op::RStore ? 'r'
                                    : 'm',
               x.c_str(), operandText(i.value).c_str());
        break;
    case ProgInstr::Kind::Flush:
        append(out, "  %cflush %s\n", i.op == Op::LFlush ? 'l' : 'r',
               x.c_str());
        break;
    case ProgInstr::Kind::Gpf:
        out += "  gpf\n";
        break;
    case ProgInstr::Kind::Faa:
        append(out, "  r%d = faa.%c %s %s\n", i.dest, rmwSuffix(i.op),
               x.c_str(), operandText(i.value).c_str());
        break;
    case ProgInstr::Kind::Cas:
        append(out, "  r%d = cas.%c %s %s %s\n", i.dest,
               rmwSuffix(i.op), x.c_str(),
               operandText(i.expected).c_str(),
               operandText(i.value).c_str());
        break;
    }
}

void
dumpLabel(std::string &out, const Scenario &sc, const Label &l)
{
    const std::string &x =
        l.addr < sc.addrNames.size() ? sc.addrNames[l.addr] : "?";
    switch (l.op) {
    case Op::Load:
        append(out, "  load %u %s %lld\n", l.node, x.c_str(),
               static_cast<long long>(l.value));
        break;
    case Op::LStore:
    case Op::RStore:
    case Op::MStore:
        append(out, "  %cstore %u %s %lld\n",
               l.op == Op::LStore   ? 'l'
               : l.op == Op::RStore ? 'r'
                                    : 'm',
               l.node, x.c_str(), static_cast<long long>(l.value));
        break;
    case Op::LFlush:
    case Op::RFlush:
        append(out, "  %cflush %u %s\n",
               l.op == Op::LFlush ? 'l' : 'r', l.node, x.c_str());
        break;
    case Op::Gpf:
        append(out, "  gpf %u\n", l.node);
        break;
    case Op::LRmw:
    case Op::RRmw:
    case Op::MRmw:
        append(out, "  %crmw %u %s %lld %lld\n",
               l.op == Op::LRmw   ? 'l'
               : l.op == Op::RRmw ? 'r'
                                  : 'm',
               l.node, x.c_str(), static_cast<long long>(l.expected),
               static_cast<long long>(l.value));
        break;
    case Op::Crash:
        append(out, "  crash %u\n", l.node);
        break;
    case Op::Tau:
        // Tau is never serialized: the checkers interleave it.
        break;
    }
}

void
dumpRow(std::string &out, const check::Outcome &o)
{
    out += "  (";
    for (size_t t = 0; t < o.regs.size(); ++t) {
        if (t)
            out += " |";
        for (Value v : o.regs[t])
            append(out, " %lld", static_cast<long long>(v));
    }
    out += " )";
    if (o.crashedThreads) {
        out += " @crashed";
        for (size_t t = 0; t < o.regs.size() && t < 32; ++t)
            if (o.crashedThreads & (1u << t))
                append(out, " %zu", t);
    }
    out += "\n";
}

void
dumpTrace(std::string &out, const Scenario &sc, const char *head,
          const std::vector<Label> &trace)
{
    if (trace.empty())
        return;
    out += "\n";
    out += head;
    out += " {\n";
    for (const Label &l : trace)
        dumpLabel(out, sc, l);
    out += "}\n";
}

} // namespace

std::string
dumpScenario(const Scenario &sc)
{
    const check::CheckRequest defaults;
    std::string out;
    out += "litmus \"" + sanitizedName(sc.name) + "\"\n";
    if (sc.id != 0)
        append(out, "id %d\n", sc.id);
    if (sc.variant != model::ModelVariant::Base)
        append(out, "variant %s\n", variantWord(sc.variant));
    if (sc.refineSpec.has_value() && sc.refineImpl.has_value())
        append(out, "variant spec=%s impl=%s\n",
               variantWord(*sc.refineSpec),
               variantWord(*sc.refineImpl));

    out += "\n";
    for (size_t i = 0; i < sc.machinePersistent.size(); ++i)
        append(out, "machine %zu %s\n", i,
               sc.machinePersistent[i] ? "nvmm" : "volatile");
    for (size_t a = 0; a < sc.addrNames.size(); ++a)
        append(out, "addr %s @ %u\n", sc.addrNames[a].c_str(),
               sc.addrOwner[a]);

    out += "\n";
    append(out, "registers %d\n", sc.program.numRegs);
    if (sc.request.maxCrashesPerNode > 0) {
        if (sc.request.crashableNodes.empty()) {
            append(out, "crash any max %d\n",
                   sc.request.maxCrashesPerNode);
        } else {
            for (NodeId n : sc.request.crashableNodes)
                append(out, "crash node %u max %d\n", n,
                       sc.request.maxCrashesPerNode);
        }
    }
    if (sc.request.maxConfigs != defaults.maxConfigs)
        append(out, "max-configs %zu\n", sc.request.maxConfigs);
    if (sc.request.maxDepth != defaults.maxDepth)
        append(out, "max-depth %zu\n", sc.request.maxDepth);

    for (size_t t = 0; t < sc.program.threads.size(); ++t) {
        const check::ProgThread &thread = sc.program.threads[t];
        append(out, "\nthread %zu on %u {\n", t, thread.node);
        for (const ProgInstr &i : thread.code)
            dumpInstr(out, sc, i);
        out += "}\n";
    }

    dumpTrace(out, sc, "trace", sc.trace);
    dumpTrace(out, sc, "trace lhs", sc.traceLhs);
    dumpTrace(out, sc, "trace rhs", sc.traceRhs);
    if (sc.expectedVerdict.has_value())
        append(out, "\nverdict %s\n",
               *sc.expectedVerdict == check::Verdict::Allowed
                   ? "allowed"
                   : "forbidden");

    if (sc.expectKind != AnchorKind::None) {
        append(out, "\nexpect %s {\n",
               sc.expectKind == AnchorKind::Exact ? "exact"
                                                  : "subset");
        for (const check::Outcome &o : sc.expected)
            dumpRow(out, o);
        out += "}\n";
    }
    if (!sc.forbidden.empty()) {
        out += "\nforbid {\n";
        for (const check::Outcome &o : sc.forbidden)
            dumpRow(out, o);
        out += "}\n";
    }
    return out;
}

} // namespace cxl0::lang
