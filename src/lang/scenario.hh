/**
 * @file
 * The scenario frontend: a litmus/program DSL over the CXL0 checkers.
 *
 * Every scenario the checkers could examine used to be a hand-written
 * C++ Program compiled into the binary. This subsystem turns scenario
 * authoring into editing a text file: a small line-oriented DSL
 * describes the system shape (machines, owned locations), a
 * multi-threaded program and/or serialized label traces, crash
 * budgets, and the expected outcome set — and a recursive-descent
 * parser turns it into the existing check::Program / trace inputs with
 * precise source-located diagnostics. A serializer (dumpScenario)
 * emits the canonical text form, which is how the in-binary
 * LitmusPrograms are exported into corpus/litmus/ and kept drift-free
 * against it (parse(dump(p)) == p is a tested guarantee).
 *
 * The grammar is documented in full in src/lang/README.md; the
 * cxl0check CLI (tools/cxl0check.cc) is the batch driver over files
 * and corpus directories.
 */

#ifndef CXL0_LANG_SCENARIO_HH
#define CXL0_LANG_SCENARIO_HH

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "check/engine.hh"
#include "check/explorer.hh"
#include "check/litmus.hh"
#include "model/config.hh"
#include "model/semantics.hh"

namespace cxl0::lang
{

/** A position in the scenario source text (1-based). */
struct SourceLoc
{
    int line = 0;
    int col = 0;

    bool operator==(const SourceLoc &other) const = default;
};

/** One located parse or validation error. */
struct Diagnostic
{
    SourceLoc loc;
    std::string message;

    /** "file:line:col: message" (file omitted when empty). */
    std::string render(const std::string &file = "") const;
};

/** How a declared outcome set anchors the explored one. */
enum class AnchorKind
{
    None,   //!< no expect block
    Exact,  //!< explored outcome set must equal the declared rows
    Subset, //!< every declared row must be reachable
};

/**
 * One parsed scenario: the system shape, the program and/or traces,
 * the shared CheckRequest knobs the file pins (budgets, crash
 * settings), and the declared outcome anchors. Field-wise equality is
 * the round-trip guarantee's notion of "the same scenario".
 */
struct Scenario
{
    /** Display name (the `litmus "..."` directive). */
    std::string name;
    /** Litmus test id the scenario derives from (0 = none). */
    int id = 0;
    model::ModelVariant variant = model::ModelVariant::Base;

    /**
     * Refinement endpoints pinned in-file by a
     * `variant spec=<v> impl=<v>` clause (always set or unset
     * together). A scenario with pinned endpoints and no program or
     * trace auto-routes to the refinement checker; driver-level
     * --spec/--impl overrides still win.
     */
    std::optional<model::ModelVariant> refineSpec;
    std::optional<model::ModelVariant> refineImpl;

    /** Per-machine persistence; index = NodeId. */
    std::vector<bool> machinePersistent;
    /** Declared location names; index = Addr. */
    std::vector<std::string> addrNames;
    /** Owner machine of each location; index = Addr. */
    std::vector<NodeId> addrOwner;

    /** The program (explorer input); empty when trace-only. */
    check::Program program;

    /**
     * The request knobs the file pins: maxConfigs, maxDepth,
     * maxCrashesPerNode, crashableNodes. Runtime knobs (numThreads,
     * frontier policy, reduction) keep their defaults here and are
     * overridden by the driver.
     */
    check::CheckRequest request;

    /** Serialized label trace (feasibility input); may be empty. */
    std::vector<model::Label> trace;
    /** lhs/rhs traces for inclusion checking; may be empty. */
    std::vector<model::Label> traceLhs;
    std::vector<model::Label> traceRhs;

    /** Expected feasibility verdict for the serialized trace. */
    std::optional<check::Verdict> expectedVerdict;

    /** Outcome anchors (explorer checkers). */
    AnchorKind expectKind = AnchorKind::None;
    std::vector<check::Outcome> expected;
    std::vector<check::Outcome> forbidden;

    /** The SystemConfig the declarations describe. */
    model::SystemConfig config() const;

    bool operator==(const Scenario &other) const = default;
};

/** Result of parsing one scenario text. */
struct ParseResult
{
    Scenario scenario;
    /** Set when parsing failed; scenario is then meaningless. */
    std::optional<Diagnostic> error;

    bool ok() const { return !error.has_value(); }
};

/** Parse one scenario source text (fail-fast, located diagnostics). */
ParseResult parseScenario(std::string_view text);

/**
 * Canonical text form; parseScenario(dumpScenario(s)) == s for every
 * scenario the parser can produce. Names are sanitized on the way
 * out (the grammar has no string escapes, so a programmatically
 * built name containing quotes or control characters is rewritten
 * rather than emitted as unparseable text).
 */
std::string dumpScenario(const Scenario &sc);

/** "base" / "lwb" / "psn" — the DSL's variant vocabulary. */
const char *variantWord(model::ModelVariant v);

/** Inverse of variantWord; false when the word is unknown. */
bool variantFromWord(std::string_view word, model::ModelVariant &out);

/**
 * Recast an in-binary LitmusProgram as a Scenario (locations named
 * x0, x1, ... in address order; no anchors — see exportBuiltinCorpus
 * for the anchored form).
 */
Scenario scenarioFromLitmusProgram(const check::LitmusProgram &lp);

/** One exported corpus file. */
struct CorpusFile
{
    std::string filename; //!< e.g. "litmus04.cxl0"
    std::string text;     //!< canonical dump, anchors locked
};

/**
 * Every built-in LitmusProgram exported through the serializer with
 * its exact reachable outcome set locked in as an `expect exact`
 * anchor (computed by running the explorer). The tracked files under
 * corpus/litmus/ are byte-for-byte this output — the anti-drift gate
 * between litmus.cc and the corpus.
 */
std::vector<CorpusFile> exportBuiltinCorpus();

/** Result of checking declared anchors against explored outcomes. */
struct AnchorReport
{
    bool pass = true;
    /** Human-readable violations (missing / unexpected / forbidden). */
    std::vector<std::string> failures;
};

/** Check the scenario's expect/forbid anchors against `outcomes`. */
AnchorReport checkOutcomeAnchors(const Scenario &sc,
                                 const std::set<check::Outcome> &outcomes);

} // namespace cxl0::lang

#endif // CXL0_LANG_SCENARIO_HH
