#include "lang/service.hh"

#include <sstream>

namespace cxl0::lang
{

namespace
{

const char *
frontierWord(check::FrontierPolicy p)
{
    return p == check::FrontierPolicy::BreadthFirst ? "bfs" : "dfs";
}

} // namespace

std::string
cacheKey(const Scenario &sc, const RunOptions &opts)
{
    CheckerKind kind = resolveChecker(sc, opts);
    check::CheckRequest req = effectiveRequest(sc, opts, kind);
    std::ostringstream os;
    os << "cxl0check-cache v1\n";
    os << "checker " << checkerKindName(kind) << "\n";
    os << "threads " << req.numThreads << "\n";
    os << "max-configs " << req.maxConfigs << "\n";
    os << "max-depth " << req.maxDepth << "\n";
    os << "time-budget-ms " << req.timeBudgetMs << "\n";
    os << "crash-max " << req.maxCrashesPerNode << "\n";
    os << "crash-nodes";
    if (req.crashableNodes.empty()) {
        os << " any";
    } else {
        for (NodeId n : req.crashableNodes)
            os << " " << n;
    }
    os << "\n";
    os << "reduction " << check::reductionName(req.reduction)
       << "\n";
    os << "frontier " << frontierWord(req.frontier) << "\n";
    if (kind == CheckerKind::Refinement) {
        os << "spec "
           << variantWord(effectiveRefineSpec(sc, opts)) << "\n";
        os << "impl "
           << variantWord(effectiveRefineImpl(sc, opts)) << "\n";
    }
    if (kind == CheckerKind::Inclusion)
        os << "inclusion-max-value " << opts.inclusionMaxValue
           << "\n";
    os << "--- scenario ---\n";
    os << dumpScenario(sc);
    return os.str();
}

uint64_t
scenarioHash(const Scenario &sc, const RunOptions &opts)
{
    return check::hashKey(cacheKey(sc, opts));
}

ScenarioService::ScenarioService(ServiceOptions so)
    : so_(std::move(so)),
      cache_(so_.cacheCapacity, so_.cacheDir)
{
}

ScenarioService::Response
ScenarioService::handle(const Scenario &sc)
{
    return handle(sc, so_.run);
}

ScenarioService::Response
ScenarioService::handle(const Scenario &sc, const RunOptions &opts)
{
    Response resp;
    CheckerKind kind = resolveChecker(sc, opts);
    std::string key = cacheKey(sc, opts);
    resp.key = check::hashKey(key);

    if (std::optional<std::string> hit = cache_.lookup(key)) {
        check::CheckReport cached;
        if (check::parseReport(*hit, cached)) {
            resp.cacheHit = true;
            if (so_.verifyHits) {
                // The correctness gate: recompute and require the
                // deterministic projection to match byte for byte.
                RunResult fresh = runScenario(sc, opts, pool_);
                resp.byteIdentical =
                    check::serializeReport(fresh.report) == *hit;
                resp.result = std::move(fresh);
            } else {
                resp.result =
                    judgeReport(sc, opts, kind, std::move(cached));
            }
            return resp;
        }
        // An unparseable in-memory entry can't happen (we wrote it);
        // a disk entry that parsed as a cache file but carries a
        // malformed report falls through to a recompute.
    }

    resp.result = runScenario(sc, opts, pool_);
    // Only complete, wall-clock-independent reports are cacheable: a
    // timed-out run is not reproducible, and a budget-truncated run
    // at numThreads > 1 depends on scheduling.
    if (resp.result.error.empty() && !resp.result.report.timedOut &&
        !resp.result.report.truncated)
        cache_.store(key,
                     check::serializeReport(resp.result.report));
    return resp;
}

} // namespace cxl0::lang
