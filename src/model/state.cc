#include "model/state.hh"

#include <sstream>

namespace cxl0::model
{

State::State(size_t num_nodes, size_t num_addrs)
    : numNodes_(num_nodes), numAddrs_(num_addrs),
      cache_(num_nodes * num_addrs, kBottom),
      mem_(num_addrs, kInitValue)
{
    hash_ = recomputeHash();
}

void
State::invalidateEverywhere(Addr x)
{
    for (NodeId j = 0; j < numNodes_; ++j)
        setCache(j, x, kBottom);
}

void
State::invalidateOthers(NodeId i, Addr x)
{
    for (NodeId j = 0; j < numNodes_; ++j)
        if (j != i)
            setCache(j, x, kBottom);
}

void
State::clearCache(NodeId i)
{
    for (Addr x = 0; x < numAddrs_; ++x)
        setCache(i, x, kBottom);
}

Value
State::anyCached(Addr x) const
{
    for (NodeId j = 0; j < numNodes_; ++j) {
        Value v = cache(j, x);
        if (v != kBottom)
            return v;
    }
    return kBottom;
}

bool
State::allCachesEmpty() const
{
    for (Value v : cache_)
        if (v != kBottom)
            return false;
    return true;
}

bool
State::invariantHolds() const
{
    for (Addr x = 0; x < numAddrs_; ++x) {
        Value seen = kBottom;
        for (NodeId j = 0; j < numNodes_; ++j) {
            Value v = cache(j, x);
            if (v == kBottom)
                continue;
            if (seen != kBottom && v != seen)
                return false;
            seen = v;
        }
    }
    return true;
}

uint64_t
State::recomputeHash() const
{
    uint64_t h = 0;
    for (size_t i = 0; i < cache_.size(); ++i)
        h ^= slotMix(i, cache_[i]);
    for (size_t x = 0; x < mem_.size(); ++x)
        h ^= slotMix(cache_.size() + x, mem_[x]);
    return h;
}

std::string
State::describe() const
{
    std::ostringstream os;
    for (NodeId i = 0; i < numNodes_; ++i) {
        os << "C" << i << "={";
        bool first = true;
        for (Addr x = 0; x < numAddrs_; ++x) {
            if (!cacheValid(i, x))
                continue;
            os << (first ? "" : ",") << "x" << x << "=" << cache(i, x);
            first = false;
        }
        os << "} ";
    }
    os << "M={";
    for (Addr x = 0; x < numAddrs_; ++x)
        os << (x ? "," : "") << "x" << x << "=" << memory(x);
    os << "}";
    return os.str();
}

} // namespace cxl0::model
