#include "model/config.hh"

#include <sstream>

#include "common/logging.hh"

namespace cxl0::model
{

SystemConfig::SystemConfig(std::vector<MachineConfig> machines,
                           std::vector<NodeId> owner)
    : machines_(std::move(machines)), owner_(std::move(owner))
{
    if (machines_.empty())
        CXL0_FATAL("a system needs at least one machine");
    for (NodeId o : owner_) {
        if (o >= machines_.size())
            CXL0_FATAL("address owner ", o, " out of range (",
                       machines_.size(), " machines)");
    }
}

SystemConfig
SystemConfig::uniform(size_t num_nodes, size_t addrs_per_node,
                      bool persistent)
{
    std::vector<MachineConfig> machines(num_nodes,
                                        MachineConfig{persistent});
    std::vector<NodeId> owner;
    owner.reserve(num_nodes * addrs_per_node);
    for (size_t n = 0; n < num_nodes; ++n)
        for (size_t a = 0; a < addrs_per_node; ++a)
            owner.push_back(static_cast<NodeId>(n));
    return SystemConfig(std::move(machines), std::move(owner));
}

std::vector<Addr>
SystemConfig::addrsOwnedBy(NodeId i) const
{
    std::vector<Addr> out;
    for (Addr x = 0; x < owner_.size(); ++x)
        if (owner_[x] == i)
            out.push_back(x);
    return out;
}

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << numNodes() << " machines, " << numAddrs() << " addrs;";
    for (NodeId i = 0; i < numNodes(); ++i) {
        os << " M" << i << (isPersistent(i) ? "(nv)" : "(v)") << "={";
        bool first = true;
        for (Addr x : addrsOwnedBy(i)) {
            os << (first ? "" : ",") << "x" << x;
            first = false;
        }
        os << "}";
    }
    return os.str();
}

} // namespace cxl0::model
