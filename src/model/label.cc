#include "model/label.hh"

#include <sstream>

namespace cxl0::model
{

bool
isStore(Op op)
{
    return op == Op::LStore || op == Op::RStore || op == Op::MStore;
}

bool
isRmw(Op op)
{
    return op == Op::LRmw || op == Op::RRmw || op == Op::MRmw;
}

bool
isFlush(Op op)
{
    return op == Op::LFlush || op == Op::RFlush || op == Op::Gpf;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Load: return "Load";
      case Op::LStore: return "LStore";
      case Op::RStore: return "RStore";
      case Op::MStore: return "MStore";
      case Op::LFlush: return "LFlush";
      case Op::RFlush: return "RFlush";
      case Op::Gpf: return "GPF";
      case Op::LRmw: return "L-RMW";
      case Op::RRmw: return "R-RMW";
      case Op::MRmw: return "M-RMW";
      case Op::Crash: return "E";
      case Op::Tau: return "tau";
    }
    return "?";
}

std::string
Label::describe() const
{
    std::ostringstream os;
    os << opName(op) << node;
    switch (op) {
      case Op::Load:
      case Op::LStore:
      case Op::RStore:
      case Op::MStore:
        os << "(x" << addr << "," << value << ")";
        break;
      case Op::LFlush:
      case Op::RFlush:
        os << "(x" << addr << ")";
        break;
      case Op::LRmw:
      case Op::RRmw:
      case Op::MRmw:
        os << "(x" << addr << "," << expected << "->" << value << ")";
        break;
      case Op::Gpf:
      case Op::Crash:
      case Op::Tau:
        break;
    }
    return os.str();
}

Label
Label::load(NodeId i, Addr x, Value v)
{
    return Label{Op::Load, i, x, v, 0};
}

Label
Label::lstore(NodeId i, Addr x, Value v)
{
    return Label{Op::LStore, i, x, v, 0};
}

Label
Label::rstore(NodeId i, Addr x, Value v)
{
    return Label{Op::RStore, i, x, v, 0};
}

Label
Label::mstore(NodeId i, Addr x, Value v)
{
    return Label{Op::MStore, i, x, v, 0};
}

Label
Label::lflush(NodeId i, Addr x)
{
    return Label{Op::LFlush, i, x, 0, 0};
}

Label
Label::rflush(NodeId i, Addr x)
{
    return Label{Op::RFlush, i, x, 0, 0};
}

Label
Label::gpf(NodeId i)
{
    return Label{Op::Gpf, i, 0, 0, 0};
}

Label
Label::lrmw(NodeId i, Addr x, Value old_v, Value new_v)
{
    return Label{Op::LRmw, i, x, new_v, old_v};
}

Label
Label::rrmw(NodeId i, Addr x, Value old_v, Value new_v)
{
    return Label{Op::RRmw, i, x, new_v, old_v};
}

Label
Label::mrmw(NodeId i, Addr x, Value old_v, Value new_v)
{
    return Label{Op::MRmw, i, x, new_v, old_v};
}

Label
Label::crash(NodeId i)
{
    return Label{Op::Crash, i, 0, 0, 0};
}

Label
Label::tau()
{
    return Label{Op::Tau, 0, 0, 0, 0};
}

std::string
describeTrace(const std::vector<Label> &trace)
{
    std::ostringstream os;
    for (size_t k = 0; k < trace.size(); ++k)
        os << (k ? "; " : "") << trace[k].describe();
    return os.str();
}

} // namespace cxl0::model
