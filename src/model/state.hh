/**
 * @file
 * CXL0 abstract system states (paper §3.3).
 *
 * A state gamma = (C, M) maps each machine i to a cache
 * C_i : Loc -> Val + {bottom} and to a memory M_i : Loc_i -> Val.
 * Because the Loc_i are pairwise disjoint, the union of all M_i is a
 * single total function Loc -> Val, which is how we store it.
 *
 * The representation is flat (two value vectors) so states hash and
 * compare quickly inside the model checkers.
 */

#ifndef CXL0_MODEL_STATE_HH
#define CXL0_MODEL_STATE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"
#include "model/config.hh"

namespace cxl0::model
{

/** One abstract CXL0 state: all caches plus all owner memories. */
class State
{
  public:
    /**
     * The initial state: all caches empty (bottom everywhere), all
     * memories zero (paper: C_i = \x.bottom, M_i = \x.0).
     */
    State(size_t num_nodes, size_t num_addrs);

    size_t numNodes() const { return numNodes_; }
    size_t numAddrs() const { return numAddrs_; }

    /** C_i(x); kBottom encodes the invalid entry. */
    Value cache(NodeId i, Addr x) const
    {
        return cache_[index(i, x)];
    }

    /** Whether C_i(x) is a valid (non-bottom) entry. */
    bool cacheValid(NodeId i, Addr x) const
    {
        return cache(i, x) != kBottom;
    }

    /** Set C_i(x) := v (v may be kBottom to invalidate). */
    void setCache(NodeId i, Addr x, Value v)
    {
        cache_[index(i, x)] = v;
    }

    /** Invalidate x in every cache. */
    void invalidateEverywhere(Addr x);

    /** Invalidate x in every cache except machine i. */
    void invalidateOthers(NodeId i, Addr x);

    /** Drop every entry of C_i (crash step). */
    void clearCache(NodeId i);

    /** M_k(x) where k owns x; callers index by address only. */
    Value memory(Addr x) const { return mem_[x]; }

    /** Set the owner memory entry for x. */
    void setMemory(Addr x, Value v) { mem_[x] = v; }

    /**
     * The unique valid cached value of x across all machines, or
     * kBottom when no cache holds x. Relies on the global invariant.
     */
    Value anyCached(Addr x) const;

    /** Whether any cache holds a valid entry for x. */
    bool cachedAnywhere(Addr x) const
    {
        return anyCached(x) != kBottom;
    }

    /** Whether no cache at all holds a valid entry (GPF precondition). */
    bool allCachesEmpty() const;

    /**
     * The CXL0 global cache invariant (§3.3): any two valid cache
     * entries for the same address agree on the value.
     */
    bool invariantHolds() const;

    /** Structural hash for checker visited-sets. */
    size_t hash() const;

    bool operator==(const State &other) const = default;

    /** Compact rendering, e.g. "C0={x0=1} C1={} M={x0=0,x1=0}". */
    std::string describe() const;

  private:
    size_t index(NodeId i, Addr x) const
    {
        return static_cast<size_t>(i) * numAddrs_ + x;
    }

    size_t numNodes_;
    size_t numAddrs_;
    std::vector<Value> cache_;
    std::vector<Value> mem_;
};

/** Hash functor so State can key unordered containers. */
struct StateHash
{
    size_t operator()(const State &s) const { return s.hash(); }
};

} // namespace cxl0::model

#endif // CXL0_MODEL_STATE_HH
