/**
 * @file
 * CXL0 abstract system states (paper §3.3).
 *
 * A state gamma = (C, M) maps each machine i to a cache
 * C_i : Loc -> Val + {bottom} and to a memory M_i : Loc_i -> Val.
 * Because the Loc_i are pairwise disjoint, the union of all M_i is a
 * single total function Loc -> Val, which is how we store it.
 *
 * The representation is flat (two value vectors) and the structural
 * hash is maintained *incrementally*: every slot contributes an
 * independent Zobrist-style term, XORed into a running digest on each
 * mutation. hash() is therefore O(1), which is what makes hash-consed
 * interning (model/state_table.hh) and the checker visited-sets cheap.
 */

#ifndef CXL0_MODEL_STATE_HH
#define CXL0_MODEL_STATE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hashmix.hh"
#include "common/types.hh"
#include "model/config.hh"

namespace cxl0::model
{

/** One abstract CXL0 state: all caches plus all owner memories. */
class State
{
  public:
    /**
     * The initial state: all caches empty (bottom everywhere), all
     * memories zero (paper: C_i = \x.bottom, M_i = \x.0).
     */
    State(size_t num_nodes, size_t num_addrs);

    size_t numNodes() const { return numNodes_; }
    size_t numAddrs() const { return numAddrs_; }

    /** C_i(x); kBottom encodes the invalid entry. */
    Value cache(NodeId i, Addr x) const
    {
        return cache_[index(i, x)];
    }

    /** Whether C_i(x) is a valid (non-bottom) entry. */
    bool cacheValid(NodeId i, Addr x) const
    {
        return cache(i, x) != kBottom;
    }

    /** Set C_i(x) := v (v may be kBottom to invalidate). */
    void setCache(NodeId i, Addr x, Value v)
    {
        size_t idx = index(i, x);
        hash_ ^= slotMix(idx, cache_[idx]) ^ slotMix(idx, v);
        cache_[idx] = v;
    }

    /** Invalidate x in every cache. */
    void invalidateEverywhere(Addr x);

    /** Invalidate x in every cache except machine i. */
    void invalidateOthers(NodeId i, Addr x);

    /** Drop every entry of C_i (crash step). */
    void clearCache(NodeId i);

    /** M_k(x) where k owns x; callers index by address only. */
    Value memory(Addr x) const { return mem_[x]; }

    /** Set the owner memory entry for x. */
    void setMemory(Addr x, Value v)
    {
        size_t idx = cache_.size() + x;
        hash_ ^= slotMix(idx, mem_[x]) ^ slotMix(idx, v);
        mem_[x] = v;
    }

    /**
     * The unique valid cached value of x across all machines, or
     * kBottom when no cache holds x. Relies on the global invariant.
     */
    Value anyCached(Addr x) const;

    /** Whether any cache holds a valid entry for x. */
    bool cachedAnywhere(Addr x) const
    {
        return anyCached(x) != kBottom;
    }

    /** Whether no cache at all holds a valid entry (GPF precondition). */
    bool allCachesEmpty() const;

    /**
     * The CXL0 global cache invariant (§3.3): any two valid cache
     * entries for the same address agree on the value.
     */
    bool invariantHolds() const;

    /** Structural hash for checker visited-sets. O(1): maintained
     *  incrementally by every mutator. */
    size_t hash() const { return static_cast<size_t>(hash_); }

    /**
     * The hash recomputed by a full scan of both vectors. Always equal
     * to hash(); exists so tests can validate the incremental
     * maintenance under arbitrary mutation sequences.
     */
    uint64_t recomputeHash() const;

    bool operator==(const State &other) const = default;

    /** Compact rendering, e.g. "C0={x0=1} C1={} M={x0=0,x1=0}". */
    std::string describe() const;

    /** Read-only access to the flat cache vector (interning/debug). */
    const std::vector<Value> &cacheLines() const { return cache_; }

    /** Read-only access to the flat memory vector (interning/debug). */
    const std::vector<Value> &memLines() const { return mem_; }

  private:
    friend class StateTable;

    size_t index(NodeId i, Addr x) const
    {
        return static_cast<size_t>(i) * numAddrs_ + x;
    }

    /**
     * Per-slot Zobrist term (common/hashmix.hh): each slot's
     * contribution is independent and the XOR of all of them is
     * path-independent (any mutation order reaching the same content
     * yields the same digest).
     */
    static uint64_t slotMix(uint64_t slot, Value v)
    {
        return hashSlot(slot, v);
    }

    size_t numNodes_;
    size_t numAddrs_;
    std::vector<Value> cache_;
    std::vector<Value> mem_;
    uint64_t hash_ = 0;
};

/** Hash functor so State can key unordered containers. */
struct StateHash
{
    size_t operator()(const State &s) const { return s.hash(); }
};

} // namespace cxl0::model

#endif // CXL0_MODEL_STATE_HH
