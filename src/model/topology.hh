/**
 * @file
 * The system-model variations of paper §4 as concrete configurations.
 *
 * Each factory returns a fully configured Cxl0Model whose Restrictions
 * encode exactly the primitive availability the paper derives from the
 * CXL specification for that deployment stage:
 *
 *  - host-device pair (Fig. 4a): host cannot issue RStore, LFlush, or
 *    remote RMWs; the device can issue all stores but no LFlush or
 *    remote RMWs;
 *  - partitioned disaggregated memory pool (Fig. 4b): no RStore, no
 *    LOAD-from-C, no Propagate-C-C, no remote RMWs;
 *  - shared disaggregated memory pool, coherent: RStore, LOAD-from-C,
 *    LFlush, Propagate-C-C and remote RMWs excluded;
 *  - shared pool, non-coherent: only MStore, LOAD-from-M, and M-RMW
 *    (cache bypass), since CXL0's coherence assumption fails.
 */

#ifndef CXL0_MODEL_TOPOLOGY_HH
#define CXL0_MODEL_TOPOLOGY_HH

#include <cstddef>

#include "model/semantics.hh"

namespace cxl0::model
{

/** Deployment stages from §4. */
enum class Topology
{
    General,           //!< unrestricted CXL0
    HostDevicePair,    //!< Fig. 4a
    PartitionedPool,   //!< Fig. 4b, disjoint partitions
    SharedPoolCoherent,//!< Fig. 4b, coherent sharing (CXL 3.0+)
    SharedPoolBypass,  //!< Fig. 4b, non-coherent pool, cache bypass
};

/** Short name for a topology. */
const char *topologyName(Topology t);

/** Bitmask with every operation allowed. */
uint32_t allOpsMask();

/**
 * Host-device pair: machine 0 is the host, machine 1 the device, each
 * owning its addresses per cfg.
 */
Cxl0Model makeHostDevicePair(SystemConfig cfg,
                             ModelVariant variant = ModelVariant::Base);

/**
 * Partitioned pool: machines 0..num_hosts-1 are compute nodes (owning
 * no shared memory), machines num_hosts..2*num_hosts-1 are memory
 * partitions in a separate failure domain; partition i is used
 * exclusively by host i. addrs_per_partition addresses per partition,
 * all persistent from the hosts' viewpoint (the pool is an external
 * failure domain).
 */
Cxl0Model makePartitionedPool(size_t num_hosts, size_t addrs_per_partition,
                              ModelVariant variant = ModelVariant::Base);

/**
 * Shared pool: machines 0..num_hosts-1 are compute nodes, machine
 * num_hosts is the pool owning every address.
 * @param coherent build the envisioned coherent pool; otherwise the
 *        realistic non-coherent pool restricted to cache-bypassing
 *        primitives.
 */
Cxl0Model makeSharedPool(size_t num_hosts, size_t num_addrs, bool coherent,
                         ModelVariant variant = ModelVariant::Base);

/**
 * Restrictions for a given topology over an existing configuration
 * (used by tests to cross-check the factories).
 */
Restrictions restrictionsFor(Topology t, const SystemConfig &cfg);

} // namespace cxl0::model

#endif // CXL0_MODEL_TOPOLOGY_HH
