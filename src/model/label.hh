/**
 * @file
 * Transition labels of the CXL0 LTS (paper §3.3).
 *
 * Labels cover the machine-emitted actions (loads, the three store
 * flavours, the two flush flavours, GPF, and the six RMW flavours),
 * the silent propagation step tau, and the per-machine crash E_i.
 */

#ifndef CXL0_MODEL_LABEL_HH
#define CXL0_MODEL_LABEL_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace cxl0::model
{

/** Kinds of CXL0 transitions. */
enum class Op
{
    Load,    //!< Load_i(x, v): v is the value the load must observe
    LStore,  //!< LStore_i(x, v): complete once in the local cache
    RStore,  //!< RStore_i(x, v): complete once at the owner's cache
    MStore,  //!< MStore_i(x, v): complete once in the owner's memory
    LFlush,  //!< LFlush_i(x): write back the local copy one level
    RFlush,  //!< RFlush_i(x): write back to the owner's memory
    Gpf,     //!< GPF_i: global persistent flush (drain all caches)
    LRmw,    //!< L-RMW_i(x, old, new): atomic load + LStore
    RRmw,    //!< R-RMW_i(x, old, new): atomic load + RStore
    MRmw,    //!< M-RMW_i(x, old, new): atomic load + MStore
    Crash,   //!< E_i: machine i crashes
    Tau,     //!< silent nondeterministic propagation
};

/** Whether an op is one of the three plain stores. */
bool isStore(Op op);

/** Whether an op is one of the three RMW flavours. */
bool isRmw(Op op);

/** Whether an op is a flush (LFlush, RFlush, or GPF). */
bool isFlush(Op op);

/** Short name, e.g. "LStore". */
const char *opName(Op op);

/**
 * One transition label. Unused fields are zero; `value` holds the
 * loaded value for Load, the stored value for stores, and the *new*
 * value for RMWs whose expected old value lives in `expected`.
 */
struct Label
{
    Op op = Op::Tau;
    NodeId node = 0;
    Addr addr = 0;
    Value value = 0;
    Value expected = 0;

    bool operator==(const Label &other) const = default;

    /** Paper-style rendering, e.g. "LStore1(x2,1)". */
    std::string describe() const;

    // Named constructors mirroring the paper's notation.
    static Label load(NodeId i, Addr x, Value v);
    static Label lstore(NodeId i, Addr x, Value v);
    static Label rstore(NodeId i, Addr x, Value v);
    static Label mstore(NodeId i, Addr x, Value v);
    static Label lflush(NodeId i, Addr x);
    static Label rflush(NodeId i, Addr x);
    static Label gpf(NodeId i);
    static Label lrmw(NodeId i, Addr x, Value old_v, Value new_v);
    static Label rrmw(NodeId i, Addr x, Value old_v, Value new_v);
    static Label mrmw(NodeId i, Addr x, Value old_v, Value new_v);
    static Label crash(NodeId i);
    static Label tau();
};

/** Render a label sequence as "a; b; c". */
std::string describeTrace(const std::vector<Label> &trace);

} // namespace cxl0::model

#endif // CXL0_MODEL_LABEL_HH
