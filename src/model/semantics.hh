/**
 * @file
 * Operational semantics of CXL0 and its variants (paper Fig. 2, §3.5).
 *
 * The model is a labeled transition system over model::State. All
 * nondeterminism is explicit: tau propagation steps are enumerated by
 * tauSuccessors(), and crashes are ordinary labels. Checkers in
 * src/check explore the LTS; the runtime in src/runtime executes it
 * with a scheduling policy.
 */

#ifndef CXL0_MODEL_SEMANTICS_HH
#define CXL0_MODEL_SEMANTICS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "model/config.hh"
#include "model/label.hh"
#include "model/state.hh"

namespace cxl0::model
{

/** The three model flavours of §3.3 and §3.5. */
enum class ModelVariant
{
    Base, //!< plain CXL0
    Psn,  //!< CXL0_PSN: crash poisons the crashed machine's lines
    Lwb,  //!< CXL0_LWB: remote loads are served from memory only
};

/** Short name for a variant ("CXL0", "CXL0_PSN", "CXL0_LWB"). */
const char *variantName(ModelVariant v);

/**
 * Primitive-availability restrictions for the system configurations of
 * §4. A default-constructed Restrictions allows everything (the
 * general model).
 */
struct Restrictions
{
    /** Propagate-C-C steps permitted (excluded in pool settings). */
    bool allowCacheToCache = true;

    /**
     * Whether a load by machine i may be served from another
     * machine's cache (the LOAD-from-C rule with j != i). When false,
     * a load with the line valid only in a remote cache blocks until
     * propagation clears it, like the LWB variant.
     */
    bool serveLoadFromRemoteCache = true;

    /**
     * Per-node allowed operation bitmask (1 << static_cast<int>(Op)).
     * Empty means every operation is allowed on every node. Crash and
     * Tau are always allowed.
     */
    std::vector<uint32_t> allowedOps;

    /** Whether node i may emit op. */
    bool allows(NodeId i, Op op) const;
};

/** Bit for an Op inside Restrictions::allowedOps. */
constexpr uint32_t
opBit(Op op)
{
    return 1u << static_cast<int>(op);
}

/**
 * One silent propagation step, in enumerable form. Checkers that
 * generate successors in place (explorer hot path) first enumerate
 * the enabled moves with Cxl0Model::tauMoves and then apply each with
 * applyTauInPlace, avoiding a State copy per candidate.
 */
struct TauMove
{
    Addr addr = 0;
    /** Source cache of a Propagate-C-C move (unused for C-M). */
    NodeId from = 0;
    /** True: Propagate-C-M (owner cache drains to owner memory).
     *  False: Propagate-C-C (non-owner copy moves to owner cache). */
    bool toMemory = false;
};

/**
 * The CXL0 LTS. Stateless apart from its configuration; all methods
 * are const and thread-safe.
 */
class Cxl0Model
{
  public:
    explicit Cxl0Model(SystemConfig cfg,
                       ModelVariant variant = ModelVariant::Base,
                       Restrictions restrictions = Restrictions{});

    const SystemConfig &config() const { return cfg_; }
    ModelVariant variant() const { return variant_; }
    const Restrictions &restrictions() const { return restrictions_; }

    /** The initial state for this configuration. */
    State initialState() const;

    /**
     * The value a load by machine i on x would observe in this state,
     * or nullopt when the load is blocked (LWB / restricted settings
     * with the line valid only in a remote cache).
     *
     * In Base/PSN the load is never blocked and the result is unique
     * thanks to the global cache invariant.
     */
    std::optional<Value> loadable(const State &s, NodeId i, Addr x) const;

    /**
     * Apply one non-tau label. Returns the successor state, or nullopt
     * when the label is not enabled: a flush whose drain precondition
     * does not hold yet, a Load/RMW whose observed value differs from
     * the label's, or an operation the restrictions forbid.
     */
    std::optional<State> apply(const State &s, const Label &label) const;

    /**
     * In-place variant of apply: mutate `s` into the successor and
     * return true, or return false leaving `s` untouched when the
     * label is not enabled. All preconditions are checked before the
     * first mutation, so a false return never corrupts `s`. This is
     * the allocation-free path the explorer's successor generation
     * uses; apply() is a copying wrapper around it.
     */
    bool applyInPlace(State &s, const Label &label) const;

    /** All successor states of single tau propagation steps. */
    std::vector<State> tauSuccessors(const State &s) const;

    /**
     * Enumerate the enabled silent propagation steps without building
     * successor states. Appends to `out` (which is cleared first) in
     * the same order tauSuccessors produces its states.
     */
    void tauMoves(const State &s, std::vector<TauMove> &out) const;

    /** Apply one enumerated tau move in place (must be enabled). */
    void applyTauInPlace(State &s, const TauMove &m) const;

    /** Every state reachable via zero or more tau steps (BFS). */
    std::vector<State> tauClosure(const State &s) const;

    /** Crash of machine i (also reachable through apply). */
    State applyCrash(const State &s, NodeId i) const;

    /** In-place crash of machine i (always enabled). */
    void applyCrashInPlace(State &s, NodeId i) const;

    /**
     * Enumerate all enabled non-tau, non-crash labels from s over a
     * bounded value domain [0, max_value]. Used by the refinement
     * checker to build trace sets.
     */
    std::vector<Label> enabledLabels(const State &s, Value max_value) const;

  private:
    bool applyLoadInPlace(State &s, const Label &l) const;
    bool applyRmwInPlace(State &s, const Label &l) const;
    void applyStoreEffectInPlace(State &s, Op op, NodeId i, Addr x,
                                 Value v) const;

    SystemConfig cfg_;
    ModelVariant variant_;
    Restrictions restrictions_;
};

} // namespace cxl0::model

#endif // CXL0_MODEL_SEMANTICS_HH
