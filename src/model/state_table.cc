#include "model/state_table.hh"

#include <algorithm>
#include <cstring>

#include "common/hashmix.hh"
#include "common/logging.hh"

namespace cxl0::model
{

uint64_t
hashValueSpan(const Value *data, size_t n)
{
    uint64_t h = 0;
    for (size_t i = 0; i < n; ++i)
        h ^= hashSlot(i, data[i]);
    return h;
}

uint64_t
updateValueSpanHash(uint64_t hash, size_t idx, Value old_v, Value new_v)
{
    return hash ^ hashSlot(idx, old_v) ^ hashSlot(idx, new_v);
}

StripedIdIndex::StripedIdIndex()
{
    for (Stripe &st : stripes_)
        st.slots.assign(kStripeInitialSlots, kNoStateId);
    bytes_.store(kStripes * kStripeInitialSlots * sizeof(uint32_t),
                 std::memory_order_relaxed);
}

ValueSpanTable::ValueSpanTable(size_t stride) : spans_(stride)
{
    CXL0_ASSERT(stride > 0, "span stride must be positive");
}

uint32_t
ValueSpanTable::intern(const Value *data, uint64_t hash, bool *is_new)
{
    return intern2(data, stride(), data + stride(), hash, is_new);
}

uint32_t
ValueSpanTable::intern2(const Value *a, size_t na, const Value *b,
                        uint64_t hash, bool *is_new)
{
    CXL0_ASSERT(na <= stride(), "first piece exceeds the stride");
    const size_t nb = stride() - na;
    return index_.intern(
        hash,
        [&](uint32_t id) {
            const Value *have = spans_.at(id);
            return hashes_[id] == hash &&
                   std::memcmp(have, a, na * sizeof(Value)) == 0 &&
                   std::memcmp(have + na, b, nb * sizeof(Value)) == 0;
        },
        [&]() {
            // Reserve a dense id; the slot is exclusively ours until
            // the index publishes it (same-stripe probes are held off
            // by the stripe lock, other threads learn the id only
            // through a later synchronization edge).
            uint32_t id = size_.fetch_add(1, std::memory_order_acq_rel);
            spans_.ensure(id + 1);
            hashes_.ensure(id + 1);
            Value *dst = spans_.at(id);
            std::memcpy(dst, a, na * sizeof(Value));
            std::memcpy(dst + na, b, nb * sizeof(Value));
            hashes_[id] = hash;
            return id;
        },
        [&](uint32_t id) { return hashes_[id]; }, is_new);
}

size_t
ValueSpanTable::bytes() const
{
    return spans_.bytes() + hashes_.bytes() + index_.bytes();
}

StateTable::StateTable(size_t num_nodes, size_t num_addrs)
    : numNodes_(num_nodes), numAddrs_(num_addrs),
      cacheLen_(num_nodes * num_addrs),
      spans_(num_nodes * num_addrs + num_addrs)
{
}

StateId
StateTable::intern(const State &s, bool *is_new)
{
    CXL0_ASSERT(s.numNodes() == numNodes_ && s.numAddrs() == numAddrs_,
                "state shape does not match the table");
    return spans_.intern2(s.cacheLines().data(), cacheLen_,
                          s.memLines().data(), s.hash(), is_new);
}

void
StateTable::materialize(StateId id, State &out) const
{
    CXL0_ASSERT(out.numNodes() == numNodes_ &&
                    out.numAddrs() == numAddrs_,
                "output state shape does not match the table");
    const Value *base = spans_.at(id);
    std::copy(base, base + cacheLen_, out.cache_.begin());
    std::copy(base + cacheLen_, base + spans_.stride(),
              out.mem_.begin());
    out.hash_ = spans_.hashOf(id);
}

State
StateTable::materialize(StateId id) const
{
    State out(numNodes_, numAddrs_);
    materialize(id, out);
    return out;
}

namespace
{

/** Content hash of a sorted StateId span (order-sensitive is fine:
 *  frames are canonical, so equal sets hash identically). */
uint64_t
hashFrame(const StateId *data, size_t n)
{
    uint64_t h = mixBits(n + 0x51ed270b0a1cull);
    for (size_t i = 0; i < n; ++i)
        h = mixBits(h ^ (data[i] + 0x9e3779b97f4a7c15ULL));
    return h;
}

} // namespace

FrameTable::FrameTable()
{
    // Pre-allocate the first arena segment so begin() of the empty
    // frame always has a valid address to return.
    arena_.ensure(1);
}

FrameId
FrameTable::intern(std::vector<StateId> &ids, bool *is_new)
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return internSorted(ids.data(), ids.size(), is_new);
}

uint64_t
FrameTable::allocSpan(size_t n)
{
    using Geo = SegmentGeometry<kArenaBaseBits>;
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
        uint64_t start = tail;
        size_t seg, off;
        Geo::locate(start, seg, off);
        if (off + n > Geo::capacityOf(seg)) {
            size_t s = seg + 1;
            while (Geo::capacityOf(s) < n)
                ++s;
            start = Geo::startOf(s);
        }
        if (tail_.compare_exchange_weak(tail, start + n,
                                        std::memory_order_relaxed))
            return start;
    }
}

FrameId
FrameTable::internSorted(const StateId *data, size_t n, bool *is_new)
{
    uint64_t hash = hashFrame(data, n);
    return index_.intern(
        hash,
        [&](FrameId id) {
            // n == 0 short-circuits: memcmp takes nonnull pointers,
            // and an empty input span has data == nullptr.
            return hashes_[id] == hash && lens_[id] == n &&
                   (n == 0 ||
                    std::memcmp(begin(id), data,
                                n * sizeof(StateId)) == 0);
        },
        [&]() {
            uint64_t start = n == 0 ? 0 : allocSpan(n);
            if (n != 0) {
                arena_.ensure(start + n);
                std::memcpy(&arena_[start], data,
                            n * sizeof(StateId));
            }
            FrameId id = size_.fetch_add(1, std::memory_order_acq_rel);
            starts_.ensure(id + 1);
            lens_.ensure(id + 1);
            hashes_.ensure(id + 1);
            starts_[id] = start;
            lens_[id] = static_cast<uint32_t>(n);
            hashes_[id] = hash;
            return id;
        },
        [&](FrameId id) { return hashes_[id]; }, is_new);
}

size_t
FrameTable::bytes() const
{
    return arena_.bytes() + starts_.bytes() + lens_.bytes() +
           hashes_.bytes() + index_.bytes();
}

// ------------------------------------------------------------------
// MachineSymmetry
// ------------------------------------------------------------------

MachineSymmetry::MachineSymmetry(const SystemConfig &cfg,
                                 const std::vector<bool> &hostsThread)
{
    CXL0_ASSERT(hostsThread.size() == cfg.numNodes(),
                "hostsThread must cover every machine");
    std::vector<bool> owns(cfg.numNodes(), false);
    for (Addr x = 0; x < cfg.numAddrs(); ++x)
        owns[cfg.ownerOf(x)] = true;
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        // A machine that hosts no thread never issues an operation
        // (so its restriction row and persistence flag are
        // unobservable) and, owning no address, has no memory row;
        // renaming two such machines permutes only their cache rows
        // and crash budgets.
        if (!hostsThread[n] && !owns[n])
            orbit_.push_back(n);
    }
    // Degenerate orbits buy nothing; absurdly wide ones (> 64
    // machines) would outgrow the fixed canonicalization buffers —
    // fall back to no renaming rather than limp.
    if (orbit_.size() < 2 || orbit_.size() > 64)
        orbit_.clear();
}

bool
MachineSymmetry::canonicalize(State &s, int *budgets,
                              uint8_t *aux) const
{
    if (orbit_.empty())
        return false;
    const size_t na = s.numAddrs();
    // Sort orbit member indices by (cache row, budget, aux)
    // lexicographically; rows are read straight out of the state.
    NodeId order[64];
    const size_t k = orbit_.size();
    CXL0_ASSERT(k <= 64, "symmetry orbit larger than 64 machines");
    for (size_t i = 0; i < k; ++i)
        order[i] = orbit_[i];
    auto less = [&](NodeId a, NodeId b) {
        for (Addr x = 0; x < na; ++x) {
            Value va = s.cache(a, x), vb = s.cache(b, x);
            if (va != vb)
                return va < vb;
        }
        if (budgets[a] != budgets[b])
            return budgets[a] < budgets[b];
        if (aux && aux[a] != aux[b])
            return aux[a] < aux[b];
        return false;
    };
    std::stable_sort(order, order + k, less);
    bool identity = true;
    for (size_t i = 0; i < k; ++i)
        identity &= order[i] == orbit_[i];
    if (identity)
        return false;
    // Apply: slot orbit_[i] receives the triple of machine order[i].
    Value rows[64];
    int bud[64];
    uint8_t ax[64];
    for (Addr x = 0; x < na; ++x) {
        for (size_t i = 0; i < k; ++i)
            rows[i] = s.cache(order[i], x);
        for (size_t i = 0; i < k; ++i)
            if (s.cache(orbit_[i], x) != rows[i])
                s.setCache(orbit_[i], x, rows[i]);
    }
    for (size_t i = 0; i < k; ++i) {
        bud[i] = budgets[order[i]];
        ax[i] = aux ? aux[order[i]] : 0;
    }
    for (size_t i = 0; i < k; ++i) {
        budgets[orbit_[i]] = bud[i];
        if (aux)
            aux[orbit_[i]] = ax[i];
    }
    return true;
}

} // namespace cxl0::model
