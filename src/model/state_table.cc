#include "model/state_table.hh"

#include <algorithm>
#include <cstring>

#include "common/hashmix.hh"
#include "common/logging.hh"

namespace cxl0::model
{

namespace
{

/** Initial probe-index capacity (power of two). */
constexpr size_t kInitialSlots = 64;

} // namespace

uint64_t
hashValueSpan(const Value *data, size_t n)
{
    uint64_t h = 0;
    for (size_t i = 0; i < n; ++i)
        h ^= hashSlot(i, data[i]);
    return h;
}

uint64_t
updateValueSpanHash(uint64_t hash, size_t idx, Value old_v, Value new_v)
{
    return hash ^ hashSlot(idx, old_v) ^ hashSlot(idx, new_v);
}

ValueSpanTable::ValueSpanTable(size_t stride)
    : stride_(stride), slots_(kInitialSlots, kNoStateId),
      mask_(kInitialSlots - 1)
{
    CXL0_ASSERT(stride > 0, "span stride must be positive");
}

uint32_t
ValueSpanTable::intern(const Value *data, uint64_t hash, bool *is_new)
{
    return intern2(data, stride_, data + stride_, hash, is_new);
}

uint32_t
ValueSpanTable::intern2(const Value *a, size_t na, const Value *b,
                        uint64_t hash, bool *is_new)
{
    CXL0_ASSERT(na <= stride_, "first piece exceeds the stride");
    const size_t nb = stride_ - na;
    size_t i = hash & mask_;
    while (slots_[i] != kNoStateId) {
        uint32_t id = slots_[i];
        const Value *have = at(id);
        if (hashes_[id] == hash &&
            std::memcmp(have, a, na * sizeof(Value)) == 0 &&
            std::memcmp(have + na, b, nb * sizeof(Value)) == 0) {
            if (is_new)
                *is_new = false;
            return id;
        }
        i = (i + 1) & mask_;
    }
    uint32_t id = static_cast<uint32_t>(hashes_.size());
    arena_.insert(arena_.end(), a, a + na);
    arena_.insert(arena_.end(), b, b + nb);
    hashes_.push_back(hash);
    slots_[i] = id;
    if (is_new)
        *is_new = true;
    // Keep the load factor below ~0.7 so probes stay short.
    if ((hashes_.size() + 1) * 10 > slots_.size() * 7)
        grow();
    return id;
}

void
ValueSpanTable::grow()
{
    std::vector<uint32_t> bigger(slots_.size() * 2, kNoStateId);
    size_t mask = bigger.size() - 1;
    for (uint32_t id = 0; id < hashes_.size(); ++id) {
        size_t i = hashes_[id] & mask;
        while (bigger[i] != kNoStateId)
            i = (i + 1) & mask;
        bigger[i] = id;
    }
    slots_ = std::move(bigger);
    mask_ = mask;
}

size_t
ValueSpanTable::bytes() const
{
    return arena_.capacity() * sizeof(Value) +
           hashes_.capacity() * sizeof(uint64_t) +
           slots_.capacity() * sizeof(uint32_t);
}

StateTable::StateTable(size_t num_nodes, size_t num_addrs)
    : numNodes_(num_nodes), numAddrs_(num_addrs),
      cacheLen_(num_nodes * num_addrs),
      spans_(num_nodes * num_addrs + num_addrs)
{
}

StateId
StateTable::intern(const State &s, bool *is_new)
{
    CXL0_ASSERT(s.numNodes() == numNodes_ && s.numAddrs() == numAddrs_,
                "state shape does not match the table");
    return spans_.intern2(s.cacheLines().data(), cacheLen_,
                          s.memLines().data(), s.hash(), is_new);
}

void
StateTable::materialize(StateId id, State &out) const
{
    CXL0_ASSERT(out.numNodes() == numNodes_ &&
                    out.numAddrs() == numAddrs_,
                "output state shape does not match the table");
    const Value *base = spans_.at(id);
    std::copy(base, base + cacheLen_, out.cache_.begin());
    std::copy(base + cacheLen_, base + spans_.stride(),
              out.mem_.begin());
    out.hash_ = spans_.hashOf(id);
}

State
StateTable::materialize(StateId id) const
{
    State out(numNodes_, numAddrs_);
    materialize(id, out);
    return out;
}

namespace
{

/** Content hash of a sorted StateId span (order-sensitive is fine:
 *  frames are canonical, so equal sets hash identically). */
uint64_t
hashFrame(const StateId *data, size_t n)
{
    uint64_t h = mixBits(n + 0x51ed270b0a1cull);
    for (size_t i = 0; i < n; ++i)
        h = mixBits(h ^ (data[i] + 0x9e3779b97f4a7c15ULL));
    return h;
}

} // namespace

FrameTable::FrameTable()
    : offsets_{0}, slots_(kInitialSlots, kNoFrameId),
      mask_(kInitialSlots - 1)
{
}

FrameId
FrameTable::intern(std::vector<StateId> &ids, bool *is_new)
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return internSorted(ids.data(), ids.size(), is_new);
}

FrameId
FrameTable::internSorted(const StateId *data, size_t n, bool *is_new)
{
    uint64_t hash = hashFrame(data, n);
    size_t i = hash & mask_;
    while (slots_[i] != kNoFrameId) {
        FrameId id = slots_[i];
        // n == 0 short-circuits: memcmp takes nonnull pointers, and
        // an empty input span has data == nullptr.
        if (hashes_[id] == hash && sizeOf(id) == n &&
            (n == 0 ||
             std::memcmp(begin(id), data, n * sizeof(StateId)) == 0)) {
            if (is_new)
                *is_new = false;
            return id;
        }
        i = (i + 1) & mask_;
    }
    FrameId id = static_cast<FrameId>(hashes_.size());
    arena_.insert(arena_.end(), data, data + n);
    offsets_.push_back(arena_.size());
    hashes_.push_back(hash);
    slots_[i] = id;
    if (is_new)
        *is_new = true;
    if ((hashes_.size() + 1) * 10 > slots_.size() * 7)
        grow();
    return id;
}

void
FrameTable::grow()
{
    std::vector<FrameId> bigger(slots_.size() * 2, kNoFrameId);
    size_t mask = bigger.size() - 1;
    for (FrameId id = 0; id < hashes_.size(); ++id) {
        size_t i = hashes_[id] & mask;
        while (bigger[i] != kNoFrameId)
            i = (i + 1) & mask;
        bigger[i] = id;
    }
    slots_ = std::move(bigger);
    mask_ = mask;
}

size_t
FrameTable::bytes() const
{
    return arena_.capacity() * sizeof(StateId) +
           offsets_.capacity() * sizeof(size_t) +
           hashes_.capacity() * sizeof(uint64_t) +
           slots_.capacity() * sizeof(FrameId);
}

} // namespace cxl0::model
