/**
 * @file
 * Hash-consed interning of CXL0 states — safe for concurrent interning.
 *
 * The model checkers visit the same abstract states astronomically
 * often: every interleaving prefix, tau placement, and crash placement
 * re-derives states that differ in a handful of slots. A StateTable
 * stores each distinct state exactly once in a segmented value arena
 * and hands out dense 32-bit StateIds, so visited-sets and search
 * frontiers can hold 4-byte ids instead of multi-vector State objects,
 * and state equality becomes an id comparison.
 *
 * Since the sharded-search refactor all three tables here are safe
 * for *concurrent interning*: the parallel checkers share one table
 * between worker threads, and a StateId/FrameId minted by one worker
 * is meaningful to every other. The design:
 *
 *   - arenas are SegmentedArray/SegmentedSpans (common/segmented.hh):
 *     an interned entry's address is stable for the table's lifetime,
 *     so readers never chase a reallocating vector;
 *
 *   - the probe index is striped: 16 independently locked
 *     open-addressed stripes, selected by the *top* hash bits (probe
 *     positions use the low bits, so stripe choice and probe order
 *     stay decorrelated). Equal contents hash equally and therefore
 *     serialize on the same stripe — no duplicate ids, ever;
 *
 *   - ids come from one atomic counter, reserved only after a miss is
 *     confirmed under the stripe lock, so ids stay *dense* as well as
 *     stable.
 *
 * Reading an entry (materialize/at/begin) takes no lock. The
 * publication contract: an id returned by intern() on thread A may be
 * read on thread B once any synchronization edge A→B exists (the
 * cross-shard handoff queues of the sharded frontier provide it); the
 * content was fully written before the id was published.
 *
 * ValueSpanTable is the underlying shape-agnostic interner for flat
 * spans of Values; the explorer reuses it for register files.
 * FrameTable interns *frames*: sorted, duplicate-free spans of
 * StateIds, i.e. whole state sets, in canonical form, so set equality
 * is an id comparison.
 */

#ifndef CXL0_MODEL_STATE_TABLE_HH
#define CXL0_MODEL_STATE_TABLE_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/segmented.hh"
#include "common/types.hh"
#include "model/state.hh"

namespace cxl0::model
{

/**
 * Content hash of a flat span of Values, with the same per-slot
 * avalanche quality the incremental State hash uses. Callers interning
 * non-State spans (e.g. register files) into a ValueSpanTable use this
 * to produce the hash intern() requires.
 */
uint64_t hashValueSpan(const Value *data, size_t n);

/**
 * Update a hashValueSpan digest for a single slot changing from
 * old_v to new_v. O(1); the digest is an XOR of independent per-slot
 * terms, so updates commute and are order-independent.
 */
uint64_t updateValueSpanHash(uint64_t hash, size_t idx, Value old_v,
                             Value new_v);

/** Dense id of an interned state (index into the arena). */
using StateId = uint32_t;

/** Sentinel: no state / empty table slot. */
constexpr StateId kNoStateId = static_cast<StateId>(-1);

/**
 * The striped, mutex-guarded probe index shared by the interning
 * tables: maps content hashes to dense 32-bit ids. Each stripe is an
 * independently locked open-addressed table (linear probing,
 * power-of-two capacity, no deletion); a hash always probes the same
 * stripe, so equal contents serialize and duplicates are impossible.
 */
class StripedIdIndex
{
  public:
    StripedIdIndex();

    /**
     * Find-or-insert under the owning stripe's lock. `equals(id)`
     * decides whether candidate `id` matches the probing content;
     * `make()` reserves a fresh id and fully writes its content +
     * hash (called at most once, still under the lock); `hashOf(id)`
     * recovers the hash of an id for rehashing on stripe growth.
     */
    template <typename Eq, typename Make, typename HashOf>
    uint32_t intern(uint64_t hash, Eq &&equals, Make &&make,
                    HashOf &&hashOf, bool *is_new)
    {
        Stripe &st = stripes_[stripeOf(hash)];
        std::lock_guard<std::mutex> lock(st.m);
        size_t i = hash & st.mask;
        while (st.slots[i] != kNoStateId) {
            uint32_t id = st.slots[i];
            if (equals(id)) {
                if (is_new)
                    *is_new = false;
                return id;
            }
            i = (i + 1) & st.mask;
        }
        uint32_t id = make();
        st.slots[i] = id;
        ++st.count;
        if (is_new)
            *is_new = true;
        // Keep the stripe's load factor below ~0.7.
        if ((st.count + 1) * 10 > st.slots.size() * 7)
            grow(st, hashOf);
        return id;
    }

    /** Resident bytes of every stripe's slot vector. */
    size_t bytes() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

  private:
    static constexpr size_t kStripes = 16; //!< power of two
    static constexpr size_t kStripeInitialSlots = 8;

    struct alignas(64) Stripe
    {
        std::mutex m;
        std::vector<uint32_t> slots; //!< kNoStateId = empty
        size_t mask = kStripeInitialSlots - 1;
        size_t count = 0;
    };

    static size_t stripeOf(uint64_t hash)
    {
        // Top bits: the probe position inside the stripe uses the low
        // bits, so stripe choice must not correlate with them.
        return (hash >> 58) & (kStripes - 1);
    }

    template <typename HashOf>
    void grow(Stripe &st, HashOf &&hashOf)
    {
        std::vector<uint32_t> bigger(st.slots.size() * 2, kNoStateId);
        size_t mask = bigger.size() - 1;
        for (uint32_t id : st.slots) {
            if (id == kNoStateId)
                continue;
            size_t i = hashOf(id) & mask;
            while (bigger[i] != kNoStateId)
                i = (i + 1) & mask;
            bigger[i] = id;
        }
        bytes_.fetch_add(
            (bigger.capacity() - st.slots.capacity()) *
                sizeof(uint32_t),
            std::memory_order_relaxed);
        st.slots = std::move(bigger);
        st.mask = mask;
    }

    std::array<Stripe, kStripes> stripes_;
    std::atomic<size_t> bytes_{0};
};

/**
 * Interns fixed-stride spans of Values. Ids are dense and stable; an
 * interned entry's contents never move. Concurrent intern() calls are
 * safe; reads of interned ids take no lock.
 */
class ValueSpanTable
{
  public:
    explicit ValueSpanTable(size_t stride);

    /**
     * Intern `stride()` values starting at `data` with the given
     * content hash. Returns the existing id when an equal span is
     * already present; `is_new` (optional) reports which case ran.
     * The hash must be a pure function of the span's contents.
     */
    uint32_t intern(const Value *data, uint64_t hash,
                    bool *is_new = nullptr);

    /**
     * Intern a span given as two consecutive pieces (sizes must sum
     * to stride()). Lets StateTable intern a State's cache and memory
     * vectors without first flattening them into one buffer.
     */
    uint32_t intern2(const Value *a, size_t na, const Value *b,
                     uint64_t hash, bool *is_new = nullptr);

    /** Start of the interned span for `id` (stable address). */
    const Value *at(uint32_t id) const { return spans_.at(id); }

    /** Content hash the span was interned under. */
    uint64_t hashOf(uint32_t id) const { return hashes_[id]; }

    /** Number of distinct spans interned. */
    size_t size() const
    {
        return size_.load(std::memory_order_acquire);
    }

    /** Values per span. */
    size_t stride() const { return spans_.stride(); }

    /** Resident bytes: arena + hashes + probe index. */
    size_t bytes() const;

  private:
    /** 64-entry first segments: an idle table costs ~2 KiB, and the
     *  geometric doubling amortizes growth identically to a vector. */
    static constexpr unsigned kSpanBaseBits = 6;

    SegmentedSpans<Value, kSpanBaseBits> spans_;
    SegmentedArray<uint64_t, kSpanBaseBits> hashes_;
    std::atomic<uint32_t> size_{0};
    StripedIdIndex index_;
};

/**
 * Hash-consing table for model::State. All states must share one shape
 * (numNodes, numAddrs); the shape is fixed at construction. Safe for
 * concurrent interning; materialize takes no lock.
 */
class StateTable
{
  public:
    StateTable(size_t num_nodes, size_t num_addrs);

    /**
     * Intern a state, returning its dense id. Idempotent: equal states
     * always map to the same id, from any thread. `is_new` (optional)
     * is set to whether this call inserted a fresh entry.
     */
    StateId intern(const State &s, bool *is_new = nullptr);

    /**
     * Rebuild the state for `id` into `out`, which must have the
     * table's shape (reuses out's buffers; no allocation).
     */
    void materialize(StateId id, State &out) const;

    /** Convenience: a freshly allocated copy of state `id`. */
    State materialize(StateId id) const;

    /** Content hash of state `id` (equals materialize(id).hash()). */
    uint64_t hashOf(StateId id) const { return spans_.hashOf(id); }

    /**
     * Flat interned span of state `id` (cache rows then memory rows;
     * rawStride() values, stable address). Checkpointing serializes
     * states through this view and restores them with internRaw() in
     * id order — re-interning into a fresh table reassigns the same
     * dense ids, which is what makes a resumed search bit-identical.
     */
    const Value *rawSpan(StateId id) const { return spans_.at(id); }

    /** Values per raw span (cacheLen + numAddrs). */
    size_t rawStride() const { return spans_.stride(); }

    /** Intern a raw span under its recorded content hash. */
    StateId internRaw(const Value *span, uint64_t hash,
                      bool *is_new = nullptr)
    {
        return spans_.intern(span, hash, is_new);
    }

    /** Number of distinct states interned. */
    size_t size() const { return spans_.size(); }

    /** Resident bytes of the arena and index. */
    size_t bytes() const { return spans_.bytes(); }

    size_t numNodes() const { return numNodes_; }
    size_t numAddrs() const { return numAddrs_; }

  private:
    size_t numNodes_;
    size_t numAddrs_;
    size_t cacheLen_; //!< numNodes * numAddrs
    ValueSpanTable spans_;
};

/** Dense id of an interned frame (state set). */
using FrameId = uint32_t;

/** Sentinel: no frame / empty successor set. */
constexpr FrameId kNoFrameId = static_cast<FrameId>(-1);

/**
 * Interns variable-length frames of StateIds in a segmented arena. A
 * frame is stored in canonical form (sorted, duplicate-free), so two
 * state sets are equal iff their FrameIds are equal. Ids are dense
 * and stable; an interned frame's contents never move. Safe for
 * concurrent interning; begin/end/sizeOf take no lock.
 */
class FrameTable
{
  public:
    FrameTable();

    /**
     * Intern the canonical form of `ids`. The vector is sorted and
     * deduplicated in place (it is scratch, not kept). `is_new`
     * (optional) reports whether a fresh entry was inserted. An empty
     * input interns the (valid) empty frame.
     */
    FrameId intern(std::vector<StateId> &ids, bool *is_new = nullptr);

    /** Intern an already sorted, duplicate-free span. */
    FrameId internSorted(const StateId *data, size_t n,
                         bool *is_new = nullptr);

    /** Start of frame `id`'s states (sorted ascending). */
    const StateId *begin(FrameId id) const
    {
        return &arena_[starts_[id]];
    }

    /** One past the last state of frame `id`. */
    const StateId *end(FrameId id) const
    {
        return begin(id) + lens_[id];
    }

    /** Number of states in frame `id`. */
    size_t sizeOf(FrameId id) const { return lens_[id]; }

    /** Content hash the frame was interned under. */
    uint64_t hashOf(FrameId id) const { return hashes_[id]; }

    /** Number of distinct frames interned. */
    size_t size() const
    {
        return size_.load(std::memory_order_acquire);
    }

    /** Resident bytes: arena + offsets + hashes + probe index. */
    size_t bytes() const;

  private:
    /** Frame spans live in 256-entry-based segments (doubling): the
     *  idle floor is one 1 KiB segment, and boundary padding is
     *  bounded by one span per segment. */
    static constexpr unsigned kArenaBaseBits = 8;

    /** Frame metadata grows from 64-entry segments like the state
     *  tables — idle tables must stay near-free. */
    static constexpr unsigned kMetaBaseBits = 6;

    /**
     * Reserve a contiguous arena span of n ids (CAS bump). A span
     * never straddles a segment boundary: when the current segment's
     * tail cannot hold it, the span starts at the next segment that
     * can (the skipped tail stays dead — bounded by one span).
     */
    uint64_t allocSpan(size_t n);

    SegmentedArray<StateId, kArenaBaseBits> arena_;
    std::atomic<uint64_t> tail_{0}; //!< arena bump pointer
    /** frame id -> arena start */
    SegmentedArray<uint64_t, kMetaBaseBits> starts_;
    /** frame id -> member count */
    SegmentedArray<uint32_t, kMetaBaseBits> lens_;
    SegmentedArray<uint64_t, kMetaBaseBits> hashes_;
    std::atomic<uint32_t> size_{0};
    StripedIdIndex index_;
};

/**
 * Machine-renaming symmetry for crash-budget canonicalization.
 *
 * Two machines are *interchangeable* when renaming them cannot change
 * any observable of a search: neither hosts a program thread (an
 * Outcome names threads, and threads never migrate), and neither owns
 * an address (the owner map is part of the configuration identity, so
 * renaming an owner would rename addresses). Such machines never
 * issue operations and own no memory; their entire dynamic footprint
 * is one cache row and one remaining crash budget. Configurations
 * that differ only in how budgets (and rows) are distributed over an
 * orbit of interchangeable machines are therefore reachable from each
 * other's futures by the same traces up to renaming, with identical
 * outcomes.
 *
 * canonicalize() picks the orbit representative: within each orbit
 * the members' (cache row, budget, aux) triples are sorted
 * lexicographically and written back in ascending machine order. The
 * result is a pure function of the input, so a checker that
 * canonicalizes every successor before interning merges each orbit
 * into one configuration regardless of worker scheduling.
 */
class MachineSymmetry
{
  public:
    /**
     * @param cfg the system configuration
     * @param hostsThread per-machine flag: true when any program
     *        thread is placed there (such machines are never renamed)
     */
    MachineSymmetry(const SystemConfig &cfg,
                    const std::vector<bool> &hostsThread);

    /** Whether any orbit has at least two interchangeable machines. */
    bool any() const { return !orbit_.empty(); }

    /** The interchangeable machines, ascending (empty or >= 2). */
    const std::vector<NodeId> &orbit() const { return orbit_; }

    /**
     * Canonicalize in place: sort the orbit members' (cache row,
     * budget, aux) triples and reassign them to the orbit's machine
     * slots in ascending order. `budgets` and `aux` are per-machine
     * arrays of size cfg.numNodes(); `aux` carries any extra
     * per-machine search bit that must travel with the renaming (the
     * explorer passes its crash-sleep bits) and may be null. Returns
     * true when the permutation was not the identity.
     */
    bool canonicalize(State &s, int *budgets, uint8_t *aux) const;

  private:
    std::vector<NodeId> orbit_;
};

} // namespace cxl0::model

#endif // CXL0_MODEL_STATE_TABLE_HH
