/**
 * @file
 * Hash-consed interning of CXL0 states.
 *
 * The model checkers visit the same abstract states astronomically
 * often: every interleaving prefix, tau placement, and crash placement
 * re-derives states that differ in a handful of slots. A StateTable
 * stores each distinct state exactly once in a flat value arena and
 * hands out dense 32-bit StateIds, so visited-sets and search frontiers
 * can hold 4-byte ids instead of multi-vector State objects, and state
 * equality becomes an id comparison.
 *
 * The index is open-addressed (linear probing, power-of-two capacity)
 * and keyed by State::hash(), which is maintained incrementally by the
 * State mutators — interning a successor state never rescans the
 * vectors except for the final equality confirmation on a hash hit.
 *
 * ValueSpanTable is the underlying shape-agnostic interner for flat
 * spans of Values; the explorer reuses it for register files.
 *
 * FrameTable interns *frames*: sorted, duplicate-free spans of
 * StateIds, i.e. whole state sets. Subset-construction checkers
 * (trace feasibility, refinement) previously deep-copied a
 * vector<State> per search step; with frames interned in one arena a
 * state set is a 4-byte FrameId, set equality is an id comparison,
 * and the per-step copies disappear.
 */

#ifndef CXL0_MODEL_STATE_TABLE_HH
#define CXL0_MODEL_STATE_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "model/state.hh"

namespace cxl0::model
{

/**
 * Content hash of a flat span of Values, with the same per-slot
 * avalanche quality the incremental State hash uses. Callers interning
 * non-State spans (e.g. register files) into a ValueSpanTable use this
 * to produce the hash intern() requires.
 */
uint64_t hashValueSpan(const Value *data, size_t n);

/**
 * Update a hashValueSpan digest for a single slot changing from
 * old_v to new_v. O(1); the digest is an XOR of independent per-slot
 * terms, so updates commute and are order-independent.
 */
uint64_t updateValueSpanHash(uint64_t hash, size_t idx, Value old_v,
                             Value new_v);

/** Dense id of an interned state (index into the arena). */
using StateId = uint32_t;

/** Sentinel: no state / empty table slot. */
constexpr StateId kNoStateId = static_cast<StateId>(-1);

/**
 * Interns fixed-stride spans of Values. Ids are dense and stable; the
 * arena never shrinks or moves an interned entry's contents.
 */
class ValueSpanTable
{
  public:
    explicit ValueSpanTable(size_t stride);

    /**
     * Intern `stride()` values starting at `data` with the given
     * content hash. Returns the existing id when an equal span is
     * already present; `is_new` (optional) reports which case ran.
     * The hash must be a pure function of the span's contents.
     */
    uint32_t intern(const Value *data, uint64_t hash,
                    bool *is_new = nullptr);

    /**
     * Intern a span given as two consecutive pieces (sizes must sum
     * to stride()). Lets StateTable intern a State's cache and memory
     * vectors without first flattening them into one buffer.
     */
    uint32_t intern2(const Value *a, size_t na, const Value *b,
                     uint64_t hash, bool *is_new = nullptr);

    /** Start of the interned span for `id`. */
    const Value *at(uint32_t id) const
    {
        return arena_.data() + static_cast<size_t>(id) * stride_;
    }

    /** Content hash the span was interned under. */
    uint64_t hashOf(uint32_t id) const { return hashes_[id]; }

    /** Number of distinct spans interned. */
    size_t size() const { return hashes_.size(); }

    /** Values per span. */
    size_t stride() const { return stride_; }

    /** Resident bytes: arena + hashes + probe index. */
    size_t bytes() const;

  private:
    void grow();

    size_t stride_;
    std::vector<Value> arena_;
    std::vector<uint64_t> hashes_;
    std::vector<uint32_t> slots_; //!< open-addressed; kNoStateId = empty
    size_t mask_ = 0;             //!< slots_.size() - 1
};

/**
 * Hash-consing table for model::State. All states must share one shape
 * (numNodes, numAddrs); the shape is fixed at construction.
 */
class StateTable
{
  public:
    StateTable(size_t num_nodes, size_t num_addrs);

    /**
     * Intern a state, returning its dense id. Idempotent: equal states
     * always map to the same id. `is_new` (optional) is set to whether
     * this call inserted a fresh entry.
     */
    StateId intern(const State &s, bool *is_new = nullptr);

    /**
     * Rebuild the state for `id` into `out`, which must have the
     * table's shape (reuses out's buffers; no allocation).
     */
    void materialize(StateId id, State &out) const;

    /** Convenience: a freshly allocated copy of state `id`. */
    State materialize(StateId id) const;

    /** Content hash of state `id` (equals materialize(id).hash()). */
    uint64_t hashOf(StateId id) const { return spans_.hashOf(id); }

    /** Number of distinct states interned. */
    size_t size() const { return spans_.size(); }

    /** Resident bytes of the arena and index. */
    size_t bytes() const { return spans_.bytes(); }

    size_t numNodes() const { return numNodes_; }
    size_t numAddrs() const { return numAddrs_; }

  private:
    size_t numNodes_;
    size_t numAddrs_;
    size_t cacheLen_; //!< numNodes * numAddrs
    ValueSpanTable spans_;
};

/** Dense id of an interned frame (state set). */
using FrameId = uint32_t;

/** Sentinel: no frame / empty successor set. */
constexpr FrameId kNoFrameId = static_cast<FrameId>(-1);

/**
 * Interns variable-length frames of StateIds in a flat arena. A frame
 * is stored in canonical form (sorted, duplicate-free), so two state
 * sets are equal iff their FrameIds are equal. Ids are dense and
 * stable; the arena never moves an interned frame's contents.
 */
class FrameTable
{
  public:
    FrameTable();

    /**
     * Intern the canonical form of `ids`. The vector is sorted and
     * deduplicated in place (it is scratch, not kept). `is_new`
     * (optional) reports whether a fresh entry was inserted. An empty
     * input interns the (valid) empty frame.
     */
    FrameId intern(std::vector<StateId> &ids, bool *is_new = nullptr);

    /** Intern an already sorted, duplicate-free span. */
    FrameId internSorted(const StateId *data, size_t n,
                         bool *is_new = nullptr);

    /** Start of frame `id`'s states (sorted ascending). */
    const StateId *begin(FrameId id) const
    {
        return arena_.data() + offsets_[id];
    }

    /** One past the last state of frame `id`. */
    const StateId *end(FrameId id) const
    {
        return arena_.data() + offsets_[id + 1];
    }

    /** Number of states in frame `id`. */
    size_t sizeOf(FrameId id) const
    {
        return offsets_[id + 1] - offsets_[id];
    }

    /** Content hash the frame was interned under. */
    uint64_t hashOf(FrameId id) const { return hashes_[id]; }

    /** Number of distinct frames interned. */
    size_t size() const { return hashes_.size(); }

    /** Resident bytes: arena + offsets + hashes + probe index. */
    size_t bytes() const;

  private:
    void grow();

    std::vector<StateId> arena_;
    std::vector<size_t> offsets_; //!< size()+1 entries; [i, i+1) spans
    std::vector<uint64_t> hashes_;
    std::vector<FrameId> slots_; //!< open-addressed; kNoFrameId = empty
    size_t mask_ = 0;            //!< slots_.size() - 1
};

} // namespace cxl0::model

#endif // CXL0_MODEL_STATE_TABLE_HH
