/**
 * @file
 * Static configuration of a CXL0 system (paper §3.1, §3.3).
 *
 * A system is N machines, each with volatile or non-volatile memory,
 * plus a partition of the shared address space assigning every
 * location to exactly one owner machine (Loc_1 ... Loc_N pairwise
 * disjoint, Loc their union).
 */

#ifndef CXL0_MODEL_CONFIG_HH
#define CXL0_MODEL_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cxl0::model
{

/** Per-machine static properties. */
struct MachineConfig
{
    /**
     * Whether M_i survives a crash of machine i. The paper assumes
     * each M_i is either entirely volatile or entirely non-volatile
     * (§3.3); mixed machines can be modeled as two co-located nodes.
     */
    bool persistentMemory = false;
};

/**
 * Immutable system configuration: machines and the owner map.
 *
 * Addresses are dense indices 0..numAddrs-1; ownerOf maps each to its
 * owner machine.
 */
class SystemConfig
{
  public:
    /**
     * @param machines per-machine configs (size = machine count)
     * @param owner owner machine of each address; every entry must be
     *              a valid machine index
     */
    SystemConfig(std::vector<MachineConfig> machines,
                 std::vector<NodeId> owner);

    /** Convenience: n machines, addrsPerNode addresses owned by each. */
    static SystemConfig uniform(size_t num_nodes, size_t addrs_per_node,
                                bool persistent);

    size_t numNodes() const { return machines_.size(); }
    size_t numAddrs() const { return owner_.size(); }

    /** Owner machine of address x (the k with x in Loc_k). */
    NodeId ownerOf(Addr x) const { return owner_[x]; }

    /** Whether machine i keeps its memory across crashes. */
    bool isPersistent(NodeId i) const
    {
        return machines_[i].persistentMemory;
    }

    /** All addresses owned by machine i (Loc_i). */
    std::vector<Addr> addrsOwnedBy(NodeId i) const;

    /** Human-readable description for diagnostics. */
    std::string describe() const;

  private:
    std::vector<MachineConfig> machines_;
    std::vector<NodeId> owner_;
};

} // namespace cxl0::model

#endif // CXL0_MODEL_CONFIG_HH
