#include "model/topology.hh"

#include "common/logging.hh"

namespace cxl0::model
{

const char *
topologyName(Topology t)
{
    switch (t) {
      case Topology::General: return "general";
      case Topology::HostDevicePair: return "host-device pair";
      case Topology::PartitionedPool: return "partitioned pool";
      case Topology::SharedPoolCoherent: return "shared pool (coherent)";
      case Topology::SharedPoolBypass: return "shared pool (bypass)";
    }
    return "?";
}

uint32_t
allOpsMask()
{
    uint32_t mask = 0;
    for (Op op : {Op::Load, Op::LStore, Op::RStore, Op::MStore, Op::LFlush,
                  Op::RFlush, Op::Gpf, Op::LRmw, Op::RRmw, Op::MRmw})
        mask |= opBit(op);
    return mask;
}

Restrictions
restrictionsFor(Topology t, const SystemConfig &cfg)
{
    Restrictions r;
    switch (t) {
      case Topology::General:
        break;
      case Topology::HostDevicePair: {
        if (cfg.numNodes() != 2)
            CXL0_FATAL("host-device pair needs exactly 2 machines");
        // Host (node 0): everything but RStore, LFlush, R-RMW, M-RMW.
        uint32_t host = allOpsMask() & ~opBit(Op::RStore) &
                        ~opBit(Op::LFlush) & ~opBit(Op::RRmw) &
                        ~opBit(Op::MRmw);
        // Device (node 1): all stores, but no LFlush or remote RMWs.
        uint32_t dev = allOpsMask() & ~opBit(Op::LFlush) &
                       ~opBit(Op::RRmw) & ~opBit(Op::MRmw);
        r.allowedOps = {host, dev};
        break;
      }
      case Topology::PartitionedPool: {
        // No inter-host interaction: exclude RStore, remote RMWs,
        // LOAD-from-C across machines, and Propagate-C-C.
        uint32_t compute = allOpsMask() & ~opBit(Op::RStore) &
                           ~opBit(Op::RRmw) & ~opBit(Op::MRmw);
        r.allowedOps.assign(cfg.numNodes(), compute);
        r.allowCacheToCache = false;
        r.serveLoadFromRemoteCache = false;
        break;
      }
      case Topology::SharedPoolCoherent: {
        // Interactions with remote caches are unavailable: exclude
        // RStore, LOAD-from-C, LFlush, and remote RMWs. The paper also
        // excludes Propagate-C-C *between hosts*; in this model C-C
        // propagation only ever moves a line toward its owner (the
        // pool), which is the physical drain path to pool memory, so
        // it stays enabled — inter-host transfers cannot occur anyway
        // because no host owns shared addresses.
        uint32_t compute = allOpsMask() & ~opBit(Op::RStore) &
                           ~opBit(Op::LFlush) & ~opBit(Op::RRmw) &
                           ~opBit(Op::MRmw);
        r.allowedOps.assign(cfg.numNodes(), compute);
        r.serveLoadFromRemoteCache = false;
        break;
      }
      case Topology::SharedPoolBypass: {
        // Without coherence only cache-bypassing primitives remain
        // correct: MStore, LOAD-from-M, M-RMW.
        uint32_t compute =
            opBit(Op::Load) | opBit(Op::MStore) | opBit(Op::MRmw);
        r.allowedOps.assign(cfg.numNodes(), compute);
        r.allowCacheToCache = false;
        r.serveLoadFromRemoteCache = false;
        break;
      }
    }
    return r;
}

Cxl0Model
makeHostDevicePair(SystemConfig cfg, ModelVariant variant)
{
    Restrictions r = restrictionsFor(Topology::HostDevicePair, cfg);
    return Cxl0Model(std::move(cfg), variant, std::move(r));
}

Cxl0Model
makePartitionedPool(size_t num_hosts, size_t addrs_per_partition,
                    ModelVariant variant)
{
    // §4: "conceptually similar to a set of isolated machines with
    // NVMM". We model partition i as host i's owned memory, marked
    // persistent because the pool is an external failure domain: a
    // host crash loses its cache but never the partition contents.
    std::vector<MachineConfig> machines(num_hosts,
                                        MachineConfig{true});
    std::vector<NodeId> owner;
    for (size_t h = 0; h < num_hosts; ++h)
        for (size_t a = 0; a < addrs_per_partition; ++a)
            owner.push_back(static_cast<NodeId>(h));
    SystemConfig cfg(std::move(machines), std::move(owner));
    Restrictions r = restrictionsFor(Topology::PartitionedPool, cfg);
    return Cxl0Model(std::move(cfg), variant, std::move(r));
}

Cxl0Model
makeSharedPool(size_t num_hosts, size_t num_addrs, bool coherent,
               ModelVariant variant)
{
    std::vector<MachineConfig> machines;
    for (size_t h = 0; h < num_hosts; ++h)
        machines.push_back(MachineConfig{false});
    machines.push_back(MachineConfig{true}); // the pool node
    std::vector<NodeId> owner(num_addrs, static_cast<NodeId>(num_hosts));
    SystemConfig cfg(std::move(machines), std::move(owner));
    Restrictions r = restrictionsFor(coherent
                                         ? Topology::SharedPoolCoherent
                                         : Topology::SharedPoolBypass,
                                     cfg);
    r.allowedOps[num_hosts] = 0; // the pool emits no operations
    return Cxl0Model(std::move(cfg), variant, std::move(r));
}

} // namespace cxl0::model
