#include "model/semantics.hh"

#include "common/logging.hh"
#include "model/state_table.hh"

namespace cxl0::model
{

const char *
variantName(ModelVariant v)
{
    switch (v) {
      case ModelVariant::Base: return "CXL0";
      case ModelVariant::Psn: return "CXL0_PSN";
      case ModelVariant::Lwb: return "CXL0_LWB";
    }
    return "?";
}

bool
Restrictions::allows(NodeId i, Op op) const
{
    if (op == Op::Crash || op == Op::Tau)
        return true;
    if (allowedOps.empty())
        return true;
    if (i >= allowedOps.size())
        return false;
    return (allowedOps[i] & opBit(op)) != 0;
}

Cxl0Model::Cxl0Model(SystemConfig cfg, ModelVariant variant,
                     Restrictions restrictions)
    : cfg_(std::move(cfg)), variant_(variant),
      restrictions_(std::move(restrictions))
{
    if (!restrictions_.allowedOps.empty() &&
        restrictions_.allowedOps.size() != cfg_.numNodes()) {
        CXL0_FATAL("restriction mask count (",
                   restrictions_.allowedOps.size(),
                   ") must match machine count (", cfg_.numNodes(), ")");
    }
}

State
Cxl0Model::initialState() const
{
    return State(cfg_.numNodes(), cfg_.numAddrs());
}

std::optional<Value>
Cxl0Model::loadable(const State &s, NodeId i, Addr x) const
{
    bool own_only = (variant_ == ModelVariant::Lwb) ||
                    !restrictions_.serveLoadFromRemoteCache;
    if (own_only) {
        // LOAD-from-C(LWB): only the issuer's own cache may serve.
        Value own = s.cache(i, x);
        if (own != kBottom)
            return own;
        // Any other valid cached copy blocks the load until the
        // nondeterministic propagation drains it to memory.
        if (s.cachedAnywhere(x))
            return std::nullopt;
        return s.memory(x);
    }
    Value cached = s.anyCached(x);
    if (cached != kBottom)
        return cached;
    return s.memory(x);
}

void
Cxl0Model::applyStoreEffectInPlace(State &s, Op op, NodeId i, Addr x,
                                   Value v) const
{
    NodeId k = cfg_.ownerOf(x);
    switch (op) {
      case Op::LStore:
      case Op::LRmw:
        // C'_i = C_i[x -> v]; all other caches invalidate x.
        s.setCache(i, x, v);
        s.invalidateOthers(i, x);
        break;
      case Op::RStore:
      case Op::RRmw:
        // C'_k = C_k[x -> v]; all other caches invalidate x.
        s.setCache(k, x, v);
        s.invalidateOthers(k, x);
        break;
      case Op::MStore:
      case Op::MRmw:
        // M'_k = M_k[x -> v]; every cache invalidates x.
        s.setMemory(x, v);
        s.invalidateEverywhere(x);
        break;
      default:
        CXL0_PANIC("applyStoreEffect on non-store op ", opName(op));
    }
}

bool
Cxl0Model::applyLoadInPlace(State &s, const Label &l) const
{
    std::optional<Value> v = loadable(s, l.node, l.addr);
    if (!v || *v != l.value)
        return false;
    bool own_only = (variant_ == ModelVariant::Lwb) ||
                    !restrictions_.serveLoadFromRemoteCache;
    if (own_only) {
        // LWB-style loads never change the state: either the issuer's
        // own cache already holds the line, or the value came from
        // memory.
        return true;
    }
    if (s.cachedAnywhere(l.addr)) {
        // LOAD-from-C: copy the value into the issuer's cache so a
        // future LFlush by the issuer affects this line (§3.3).
        s.setCache(l.node, l.addr, *v);
    }
    // LOAD-from-M: no state change.
    return true;
}

bool
Cxl0Model::applyRmwInPlace(State &s, const Label &l) const
{
    // RMW = atomic load + store with no interference in between
    // (§3.3). A failed RMW is equivalent to a plain read and is
    // modeled by the caller issuing a Load label instead.
    std::optional<Value> v = loadable(s, l.node, l.addr);
    if (!v || *v != l.expected)
        return false;
    applyStoreEffectInPlace(s, l.op, l.node, l.addr, l.value);
    return true;
}

bool
Cxl0Model::applyInPlace(State &s, const Label &l) const
{
    if (!restrictions_.allows(l.node, l.op))
        return false;
    switch (l.op) {
      case Op::Load:
        return applyLoadInPlace(s, l);
      case Op::LStore:
      case Op::RStore:
      case Op::MStore:
        applyStoreEffectInPlace(s, l.op, l.node, l.addr, l.value);
        return true;
      case Op::LFlush:
        // Blocking formulation: enabled only once the issuer's own
        // copy has drained (like MFENCE modeling in TSO, §3.3).
        return !s.cacheValid(l.node, l.addr);
      case Op::RFlush:
        return !s.cachedAnywhere(l.addr);
      case Op::Gpf:
        return s.allCachesEmpty();
      case Op::LRmw:
      case Op::RRmw:
      case Op::MRmw:
        return applyRmwInPlace(s, l);
      case Op::Crash:
        applyCrashInPlace(s, l.node);
        return true;
      case Op::Tau:
        return false;
    }
    return false;
}

std::optional<State>
Cxl0Model::apply(const State &s, const Label &l) const
{
    State next = s;
    if (!applyInPlace(next, l))
        return std::nullopt;
    return next;
}

State
Cxl0Model::applyCrash(const State &s, NodeId i) const
{
    State next = s;
    applyCrashInPlace(next, i);
    return next;
}

void
Cxl0Model::applyCrashInPlace(State &s, NodeId i) const
{
    s.clearCache(i);
    if (!cfg_.isPersistent(i)) {
        for (Addr x = 0; x < cfg_.numAddrs(); ++x)
            if (cfg_.ownerOf(x) == i)
                s.setMemory(x, kInitValue);
    }
    if (variant_ == ModelVariant::Psn) {
        // Crash(PSN): the crashed machine's addresses are poisoned in
        // every other cache (§3.5).
        for (Addr x = 0; x < cfg_.numAddrs(); ++x) {
            if (cfg_.ownerOf(x) != i)
                continue;
            for (NodeId j = 0; j < cfg_.numNodes(); ++j)
                s.setCache(j, x, kBottom);
        }
    }
}

void
Cxl0Model::tauMoves(const State &s, std::vector<TauMove> &out) const
{
    out.clear();
    for (Addr x = 0; x < cfg_.numAddrs(); ++x) {
        NodeId k = cfg_.ownerOf(x);
        // Propagate-C-C: a non-owner's copy moves to the owner's cache.
        if (restrictions_.allowCacheToCache) {
            for (NodeId i = 0; i < cfg_.numNodes(); ++i) {
                if (i == k || s.cache(i, x) == kBottom)
                    continue;
                out.push_back(TauMove{x, i, false});
            }
        }
        // Propagate-C-M: the owner's copy drains to the owner's memory
        // and every cache invalidates the line.
        if (s.cache(k, x) != kBottom)
            out.push_back(TauMove{x, k, true});
    }
}

void
Cxl0Model::applyTauInPlace(State &s, const TauMove &m) const
{
    NodeId k = cfg_.ownerOf(m.addr);
    if (m.toMemory) {
        Value v = s.cache(k, m.addr);
        CXL0_ASSERT(v != kBottom, "C-M tau move on an empty owner line");
        s.invalidateEverywhere(m.addr);
        s.setMemory(m.addr, v);
    } else {
        Value v = s.cache(m.from, m.addr);
        CXL0_ASSERT(v != kBottom, "C-C tau move on an empty line");
        s.setCache(m.from, m.addr, kBottom);
        s.setCache(k, m.addr, v);
    }
}

std::vector<State>
Cxl0Model::tauSuccessors(const State &s) const
{
    std::vector<TauMove> moves;
    tauMoves(s, moves);
    std::vector<State> out;
    out.reserve(moves.size());
    for (const TauMove &m : moves) {
        State next = s;
        applyTauInPlace(next, m);
        out.push_back(std::move(next));
    }
    return out;
}

std::vector<State>
Cxl0Model::tauClosure(const State &s) const
{
    StateTable table(s.numNodes(), s.numAddrs());
    table.intern(s);
    std::vector<State> frontier{s};
    std::vector<State> out{s};
    std::vector<TauMove> moves;
    while (!frontier.empty()) {
        State cur = std::move(frontier.back());
        frontier.pop_back();
        tauMoves(cur, moves);
        for (const TauMove &m : moves) {
            State next = cur;
            applyTauInPlace(next, m);
            bool fresh = false;
            table.intern(next, &fresh);
            if (fresh) {
                out.push_back(next);
                frontier.push_back(std::move(next));
            }
        }
    }
    return out;
}

std::vector<Label>
Cxl0Model::enabledLabels(const State &s, Value max_value) const
{
    std::vector<Label> out;
    auto consider = [&](const Label &l) {
        if (apply(s, l))
            out.push_back(l);
    };
    for (NodeId i = 0; i < cfg_.numNodes(); ++i) {
        for (Addr x = 0; x < cfg_.numAddrs(); ++x) {
            if (auto v = loadable(s, i, x))
                consider(Label::load(i, x, *v));
            for (Value v = 0; v <= max_value; ++v) {
                consider(Label::lstore(i, x, v));
                consider(Label::rstore(i, x, v));
                consider(Label::mstore(i, x, v));
                for (Value old_v = 0; old_v <= max_value; ++old_v) {
                    consider(Label::lrmw(i, x, old_v, v));
                    consider(Label::rrmw(i, x, old_v, v));
                    consider(Label::mrmw(i, x, old_v, v));
                }
            }
            consider(Label::lflush(i, x));
            consider(Label::rflush(i, x));
        }
        consider(Label::gpf(i));
        consider(Label::crash(i));
    }
    return out;
}

} // namespace cxl0::model
