#include "flit/flit.hh"

#include "common/logging.hh"

namespace cxl0::flit
{

const char *
persistModeName(PersistMode m)
{
    switch (m) {
      case PersistMode::None: return "none";
      case PersistMode::FlitCxl0: return "flit-cxl0";
      case PersistMode::FlitCxl0AddrOpt: return "flit-cxl0-addropt";
      case PersistMode::FlitOriginal: return "flit-original";
      case PersistMode::PersistAll: return "persist-all";
      case PersistMode::FlitAsync: return "flit-async";
      case PersistMode::FlitVerified: return "flit-verified";
    }
    return "?";
}

bool
modeIsDurable(PersistMode m)
{
    switch (m) {
      case PersistMode::FlitCxl0:
      case PersistMode::FlitCxl0AddrOpt:
      case PersistMode::PersistAll:
      case PersistMode::FlitAsync:
      case PersistMode::FlitVerified:
        return true;
      case PersistMode::None:
      case PersistMode::FlitOriginal:
        return false;
    }
    return false;
}

FlitRuntime::FlitRuntime(CxlSystem &sys, PersistMode mode)
    : sys_(sys), mode_(mode)
{
}

SharedWord
FlitRuntime::allocateShared(NodeId owner)
{
    SharedWord w;
    w.data = sys_.allocate(owner);
    switch (mode_) {
      case PersistMode::FlitCxl0:
      case PersistMode::FlitCxl0AddrOpt:
      case PersistMode::FlitOriginal:
      case PersistMode::FlitAsync:
      case PersistMode::FlitVerified:
        w.counter = sys_.allocate(owner);
        break;
      case PersistMode::None:
      case PersistMode::PersistAll:
        break; // no counter needed
    }
    return w;
}

void
FlitRuntime::flush(NodeId by, Addr x)
{
    ++flushes_;
    switch (mode_) {
      case PersistMode::FlitCxl0:
        sys_.rflush(by, x);
        break;
      case PersistMode::FlitCxl0AddrOpt:
        // §6.1: RFlush may become LFlush for owned locations — the
        // owner's LFlush already forces vertical propagation.
        if (sys_.config().ownerOf(x) == by)
            sys_.lflush(by, x);
        else
            sys_.rflush(by, x);
        break;
      case PersistMode::FlitOriginal:
        // The original FliT's Flush only pushes one hierarchy level —
        // on CXL0 that is an LFlush, which does NOT reach remote
        // persistence (litmus test 4). Deliberately unsound here.
        sys_.lflush(by, x);
        break;
      case PersistMode::FlitAsync:
        // Fire-and-forget; a later fence() confirms persistence.
        sys_.rflushAsync(by, x);
        break;
      case PersistMode::FlitVerified:
        sys_.rflush(by, x);
        break;
      case PersistMode::None:
      case PersistMode::PersistAll:
        CXL0_PANIC("flush not used in mode ", persistModeName(mode_));
    }
}

void
FlitRuntime::flushVerified(NodeId by, Addr x, Value expect)
{
    // Close the store-to-flush crash window: if a crash consumed the
    // line before it reached the owner's memory, the post-flush
    // persistent value differs from what we stored — replay until the
    // value sticks. Bounded in practice by the crash rate; the loop
    // always terminates once no crash interferes.
    for (;;) {
        flush(by, x);
        if (mode_ != PersistMode::FlitVerified)
            return;
        if (sys_.load(by, x) == expect)
            return;
        sys_.lstore(by, x, expect);
    }
}

Value
FlitRuntime::privateLoad(NodeId by, Addr x)
{
    return sys_.load(by, x);
}

void
FlitRuntime::privateStore(NodeId by, Addr x, Value v, bool pflag)
{
    switch (mode_) {
      case PersistMode::None:
        sys_.lstore(by, x, v);
        return;
      case PersistMode::PersistAll:
        sys_.mstore(by, x, v);
        return;
      default:
        break;
    }
    sys_.lstore(by, x, v);
    if (pflag) {
        flushVerified(by, x, v);
        if (mode_ == PersistMode::FlitAsync)
            sys_.fence(by);
    }
}

Value
FlitRuntime::sharedLoad(NodeId by, const SharedWord &w, bool pflag)
{
    Value val = sys_.load(by, w.data);
    if (pflag && w.counter != kNullAddr &&
        sys_.load(by, w.counter) > 0) {
        // Help persist the in-flight store (Alg. 2 line 43).
        flush(by, w.data);
    }
    return val;
}

void
FlitRuntime::sharedStore(NodeId by, const SharedWord &w, Value v,
                         bool pflag)
{
    switch (mode_) {
      case PersistMode::None:
        sys_.lstore(by, w.data, v);
        return;
      case PersistMode::PersistAll:
        sys_.mstore(by, w.data, v);
        return;
      default:
        break;
    }
    if (!pflag) {
        sys_.lstore(by, w.data, v);
        return;
    }
    sys_.faaL(by, w.counter, 1);
    sys_.lstore(by, w.data, v);
    flushVerified(by, w.data, v);
    if (mode_ == PersistMode::FlitAsync)
        sys_.fence(by); // persistence must precede the decrement
    sys_.faaL(by, w.counter, -1);
}

RmwResult
FlitRuntime::sharedCas(NodeId by, const SharedWord &w, Value expected,
                       Value desired, bool pflag)
{
    switch (mode_) {
      case PersistMode::None:
        return sys_.casL(by, w.data, expected, desired);
      case PersistMode::PersistAll:
        return sys_.casM(by, w.data, expected, desired);
      default:
        break;
    }
    if (!pflag)
        return sys_.casL(by, w.data, expected, desired);
    sys_.faaL(by, w.counter, 1);
    RmwResult r = sys_.casL(by, w.data, expected, desired);
    if (r.success) {
        // Replaying the desired value is safe: the CAS already won.
        flushVerified(by, w.data, desired);
        if (mode_ == PersistMode::FlitAsync)
            sys_.fence(by);
    }
    sys_.faaL(by, w.counter, -1);
    return r;
}

Value
FlitRuntime::sharedFaa(NodeId by, const SharedWord &w, Value delta,
                       bool pflag)
{
    switch (mode_) {
      case PersistMode::None:
        return sys_.faaL(by, w.data, delta);
      case PersistMode::PersistAll:
        return sys_.faaM(by, w.data, delta);
      default:
        break;
    }
    if (!pflag)
        return sys_.faaL(by, w.data, delta);
    sys_.faaL(by, w.counter, 1);
    Value old = sys_.faaL(by, w.data, delta);
    flushVerified(by, w.data, old + delta);
    if (mode_ == PersistMode::FlitAsync)
        sys_.fence(by);
    sys_.faaL(by, w.counter, -1);
    return old;
}

void
FlitRuntime::completeOp(NodeId by)
{
    // Alg. 2: empty for the synchronous modes (synchronous flushes
    // plus in-order execution make the original FliT's trailing
    // MFENCE unnecessary). The async extension fences here to retire
    // helping flushes issued by shared loads.
    if (mode_ == PersistMode::FlitAsync)
        sys_.fence(by);
}

} // namespace cxl0::flit
