/**
 * @file
 * The FliT transformation adapted to CXL0 (paper §6, Alg. 2).
 *
 * FliT (Wei et al., PPoPP'22) makes any linearizable object durably
 * linearizable by wrapping its memory accesses. The paper adapts it to
 * the partial-crash CXL0 model: every store becomes an LStore followed
 * by an RFlush, shared loads help flush pending stores when the
 * per-word FliT counter is positive, and completeOp becomes empty.
 *
 * This module implements the adapted transformation plus three
 * comparison points:
 *  - FlitOriginal: the original Alg. 1 ported naively — its flush only
 *    reaches the *local* hierarchy (LFlush), which is insufficient in
 *    the partial-crash model (litmus test 4); used to demonstrate the
 *    motivating gap of §6;
 *  - PersistAll: every store is an MStore (the always-correct,
 *    slowest baseline mentioned in §6.1);
 *  - None: no persistence (the raw linearizable object).
 * Plus the §6.1 address-based optimization: RFlush is replaced by
 * LFlush for locations the writing machine owns.
 */

#ifndef CXL0_FLIT_FLIT_HH
#define CXL0_FLIT_FLIT_HH

#include <string>

#include "runtime/system.hh"

namespace cxl0::flit
{

using runtime::CxlSystem;
using runtime::RmwResult;

/** Persistence strategies for wrapped objects. */
enum class PersistMode
{
    None,            //!< raw linearizable object, not durable
    FlitCxl0,        //!< Alg. 2: LStore + RFlush with FliT counters
    FlitCxl0AddrOpt, //!< Alg. 2 + LFlush-when-owner optimization
    FlitOriginal,    //!< Alg. 1 ported naively (LFlush only) — unsound
    PersistAll,      //!< every store is an MStore
    /** Alg. 2 rebuilt on the asynchronous flush + fence extension the
     *  paper proposes as future work (§3.2): stores issue
     *  fire-and-forget flushes and fence before completing, loads
     *  help with unfenced flushes that completeOp's fence retires.
     *  Durable, with the confirmation round trip amortized. */
    FlitAsync,
    /** Alg. 2 hardened against the store-to-flush crash window: the
     *  blocking RFlush only waits until no cache holds the line, so
     *  an owner crash that consumes the line mid-propagation lets the
     *  flush return with the value lost. This mode validates the
     *  persistent value after each flush and replays the store until
     *  it sticks (safe: the store's exclusivity was already decided). */
    FlitVerified,
};

/** Short display name, e.g. "flit-cxl0". */
const char *persistModeName(PersistMode m);

/** Whether the mode guarantees durable linearizability under CXL0. */
bool modeIsDurable(PersistMode m);

/** One shared word managed by the transformation. */
struct SharedWord
{
    Addr data = kNullAddr;
    Addr counter = kNullAddr; //!< FliT counter cell (kNullAddr if none)
};

/**
 * The transformation runtime: a thin wrapper over CxlSystem whose
 * methods mirror Alg. 2 (private_load / private_store / shared_load /
 * shared_store / completeOp) plus RMW variants the data structures
 * need. Thread-safe (the underlying system serializes steps).
 */
class FlitRuntime
{
  public:
    FlitRuntime(CxlSystem &sys, PersistMode mode);

    CxlSystem &system() { return sys_; }
    PersistMode mode() const { return mode_; }

    /**
     * Allocate one shared word (and its FliT counter when the mode
     * needs one) owned by `owner`.
     */
    SharedWord allocateShared(NodeId owner);

    /** Alg. 2 private_load. */
    Value privateLoad(NodeId by, Addr x);

    /** Alg. 2 private_store. */
    void privateStore(NodeId by, Addr x, Value v, bool pflag = true);

    /** Alg. 2 shared_load. */
    Value sharedLoad(NodeId by, const SharedWord &w, bool pflag = true);

    /** Alg. 2 shared_store. */
    void sharedStore(NodeId by, const SharedWord &w, Value v,
                     bool pflag = true);

    /**
     * CAS through the transformation: the store half follows the
     * shared_store discipline (counter, store flavour, flush).
     */
    RmwResult sharedCas(NodeId by, const SharedWord &w, Value expected,
                        Value desired, bool pflag = true);

    /** Fetch-and-add through the transformation. */
    Value sharedFaa(NodeId by, const SharedWord &w, Value delta,
                    bool pflag = true);

    /**
     * Alg. 2 completeOp — empty for the CXL0 adaptation (synchronous
     * flushes + in-order execution); kept for API fidelity and for
     * modes that need a trailing barrier.
     */
    void completeOp(NodeId by);

    /** Flush statistics (for the ablation bench). */
    uint64_t flushCount() const { return flushes_; }

  private:
    /** The mode's flush of one address by one machine. */
    void flush(NodeId by, Addr x);

    /** Flush and, in FlitVerified mode, validate-and-replay. */
    void flushVerified(NodeId by, Addr x, Value expect);

    CxlSystem &sys_;
    PersistMode mode_;
    uint64_t flushes_ = 0;
};

} // namespace cxl0::flit

#endif // CXL0_FLIT_FLIT_HH
