#include "sim/transaction.hh"

#include <sstream>

namespace cxl0::sim
{

const char *
transactionName(Transaction t)
{
    switch (t) {
      case Transaction::None: return "None";
      case Transaction::SnpInv: return "SnpInv";
      case Transaction::MemRdData: return "MemRdData";
      case Transaction::MemRd: return "MemRd";
      case Transaction::MemWr: return "MemWr";
      case Transaction::MemInv: return "MemInv";
      case Transaction::RdShared: return "RdShared";
      case Transaction::RdOwn: return "RdOwn";
      case Transaction::ItoMWr: return "ItoMWr";
      case Transaction::CleanEvict: return "CleanEvict";
      case Transaction::DirtyEvict: return "DirtyEvict";
      case Transaction::WOWrInvF: return "WOWrInv/F";
      case Transaction::WrInv: return "WrInv";
    }
    return "?";
}

const char *
channelName(Channel c)
{
    switch (c) {
      case Channel::None: return "local";
      case Channel::CacheH2D: return "CXL.cache H2D";
      case Channel::CacheD2H: return "CXL.cache D2H";
      case Channel::MemM2S: return "CXL.mem M2S";
    }
    return "?";
}

std::string
ObservedTransaction::describe() const
{
    if (type == Transaction::None)
        return "None";
    std::ostringstream os;
    os << transactionName(type);
    return os.str();
}

std::string
describeTransactions(const std::vector<ObservedTransaction> &ts)
{
    if (ts.empty())
        return "None";
    std::ostringstream os;
    bool first = true;
    for (const ObservedTransaction &t : ts) {
        if (t.type == Transaction::None)
            continue;
        os << (first ? "" : " + ") << t.describe();
        first = false;
    }
    std::string s = os.str();
    return s.empty() ? "None" : s;
}

} // namespace cxl0::sim
