/**
 * @file
 * Simulated protocol analyzer (the Teledyne LeCroy T516's role in §5).
 *
 * The analyzer passively records every transaction crossing the
 * simulated link. Benchmarks use it to regenerate Table 1: run one
 * CXL0 primitive from a prepared coherence state, then ask what was
 * observed on the wire.
 */

#ifndef CXL0_SIM_ANALYZER_HH
#define CXL0_SIM_ANALYZER_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sim/transaction.hh"

namespace cxl0::sim
{

/** Passive capture buffer for link transactions. */
class ProtocolAnalyzer
{
  public:
    /** Record one transaction (called by the fabric). */
    void record(Channel channel, Transaction type);

    /** Transactions captured since the last clear, in order. */
    const std::vector<ObservedTransaction> &capture() const
    {
        return trace_;
    }

    /** Number of captured transactions (None entries excluded). */
    size_t count() const;

    /** Clear the capture buffer (start a new observation window). */
    void clear();

    /** Histogram of transaction types over the whole capture. */
    std::map<Transaction, size_t> histogram() const;

    /** Render the capture like Table 1's cells. */
    std::string describe() const;

  private:
    std::vector<ObservedTransaction> trace_;
};

} // namespace cxl0::sim

#endif // CXL0_SIM_ANALYZER_HH
