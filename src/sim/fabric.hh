/**
 * @file
 * Simulated host + Type-2 device CXL fabric (paper §5's testbed).
 *
 * The fabric keeps MESI coherence state for both agents on every cache
 * line, generates the CXL.cache / CXL.mem transactions of Table 1 on
 * each CXL0 primitive, records them in the protocol analyzer, and
 * charges latency from the calibrated model. Addresses below
 * numHmLines are host-attached memory (HM); the rest are host-managed
 * device memory (HDM) with a per-line bias mode.
 */

#ifndef CXL0_SIM_FABRIC_HH
#define CXL0_SIM_FABRIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/analyzer.hh"
#include "sim/latency.hh"

namespace cxl0::sim
{

/** The two agents of the host-device pairing. */
enum class AgentKind
{
    Host,
    Device,
};

/** Memory targets as Table 1 distinguishes them. */
enum class MemKind
{
    HM,  //!< host-attached memory
    HDM, //!< host-managed device memory
};

/** Bias modes for HDM pages (§2.1). */
enum class BiasMode
{
    HostBias,
    DeviceBias,
};

/** MESI state of one line in one agent's cache. */
enum class CacheState
{
    M,
    E,
    S,
    I,
};

/** One-letter name ("M"/"E"/"S"/"I"). */
const char *cacheStateName(CacheState s);
/** Display name ("Host"/"Device"). */
const char *agentName(AgentKind k);
/** Display name ("HM"/"HDM"). */
const char *memKindName(MemKind k);
/** Display name ("host-bias"/"device-bias"). */
const char *biasModeName(BiasMode b);

/** Per-line simulator bookkeeping. */
struct LineInfo
{
    CacheState host = CacheState::I;
    CacheState device = CacheState::I;
    BiasMode bias = BiasMode::HostBias; //!< meaningful for HDM lines
    Value latest = kInitValue;          //!< newest value anywhere
    Value memValue = kInitValue;        //!< value in backing memory
};

/** Fabric configuration. */
struct FabricConfig
{
    size_t numHmLines = 8;
    size_t numHdmLines = 8;
    uint64_t rngSeed = 1;
};

/**
 * The simulated link + two coherent agents. All operations return the
 * charged latency in nanoseconds and leave a transaction capture in
 * the analyzer.
 */
class FabricSim
{
  public:
    explicit FabricSim(FabricConfig cfg = FabricConfig{});

    size_t numLines() const { return lines_.size(); }

    /** Whether addr belongs to host-managed device memory. */
    MemKind memKindOf(Addr x) const;

    /** Which Fig. 5 access category an (agent, addr) pair falls in. */
    AccessCategory categoryOf(AgentKind agent, Addr x) const;

    /** CXL0 Read. */
    double read(AgentKind agent, Addr x, Value *out = nullptr);

    /** CXL0 LStore (store into the agent's own cache). */
    double lstore(AgentKind agent, Addr x, Value v);

    /**
     * CXL0 RStore. Unavailable from the host (Table 1 "???"):
     * throws std::invalid_argument when agent == Host.
     */
    double rstore(AgentKind agent, Addr x, Value v);

    /** CXL0 MStore (persist before completing). */
    double mstore(AgentKind agent, Addr x, Value v);

    /**
     * CXL0 LFlush: unavailable from either side under CXL 1.1
     * (Table 1 "???"); always throws std::invalid_argument.
     */
    double lflush(AgentKind agent, Addr x);

    /** CXL0 RFlush (CLFlush): write the line back to its memory. */
    double rflush(AgentKind agent, Addr x);

    /**
     * Whether an agent can generate a primitive at all on CXL 1.1
     * hardware (Table 1's "???" rows are unavailable: RStore from the
     * host, LFlush from either side).
     */
    static bool primitiveAvailable(AgentKind agent, MeasuredPrimitive p);

    /** Flip an HDM line's bias (no-op + fatal for HM lines). */
    void setBias(Addr x, BiasMode mode);

    /** Direct state manipulation for Table 1 sweeps. */
    void setLineState(Addr x, CacheState host, CacheState device);

    /** State inspection. */
    CacheState hostState(Addr x) const { return line(x).host; }
    CacheState deviceState(Addr x) const { return line(x).device; }
    BiasMode bias(Addr x) const { return line(x).bias; }
    Value memValue(Addr x) const { return line(x).memValue; }
    Value latestValue(Addr x) const { return line(x).latest; }

    /**
     * The single-writer / multi-reader MESI invariant: never two
     * agents in writable or mixed valid/M states.
     */
    bool coherenceInvariantHolds() const;

    /** The attached protocol analyzer. */
    ProtocolAnalyzer &analyzer() { return analyzer_; }
    const ProtocolAnalyzer &analyzer() const { return analyzer_; }

    /** The latency model (mutable for calibration studies). */
    LatencyModel &latency() { return latency_; }

    /** Simulated wall clock (ns accumulated over all operations). */
    double clockNs() const { return clock_; }

  private:
    LineInfo &line(Addr x);
    const LineInfo &line(Addr x) const;

    /** Record + return a latency sample for the op just performed. */
    double charge(AgentKind agent, Addr x, MeasuredPrimitive p);

    void emit(Channel c, Transaction t);

    /** Invalidate the other agent's copy, emitting snoop traffic. */
    void snoopInvalidate(AgentKind requester, Addr x);

    FabricConfig cfg_;
    std::vector<LineInfo> lines_;
    ProtocolAnalyzer analyzer_;
    LatencyModel latency_;
    Rng rng_;
    double clock_ = 0.0;
};

} // namespace cxl0::sim

#endif // CXL0_SIM_FABRIC_HH
