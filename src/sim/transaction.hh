/**
 * @file
 * CXL link-level transaction vocabulary (paper §5.1, Table 1).
 *
 * These are the concrete CXL.cache / CXL.mem transactions the paper
 * observed with a protocol analyzer between an x86 host and an FPGA
 * Type-2 device. Our simulated fabric emits the same vocabulary so the
 * Table 1 mapping can be regenerated.
 */

#ifndef CXL0_SIM_TRANSACTION_HH
#define CXL0_SIM_TRANSACTION_HH

#include <string>
#include <vector>

namespace cxl0::sim
{

/** Which wire / direction a transaction travels on. */
enum class Channel
{
    None,       //!< no link traffic (cache hit or local access)
    CacheH2D,   //!< CXL.cache host-to-device
    CacheD2H,   //!< CXL.cache device-to-host
    MemM2S,     //!< CXL.mem master-to-subordinate
};

/** Concrete CXL transactions (the subset Table 1 reports). */
enum class Transaction
{
    None,       //!< no CXL transaction observed
    SnpInv,     //!< CXL.cache H2D snoop-invalidate
    MemRdData,  //!< CXL.mem M2S read returning data
    MemRd,      //!< CXL.mem M2S read (ownership / upgrade)
    MemWr,      //!< CXL.mem M2S write
    MemInv,     //!< CXL.mem M2S invalidate
    RdShared,   //!< CXL.cache D2H caching read (shared)
    RdOwn,      //!< CXL.cache D2H read-for-ownership
    ItoMWr,     //!< CXL.cache D2H push write (invalid-to-modified)
    CleanEvict, //!< CXL.cache D2H clean writeback
    DirtyEvict, //!< CXL.cache D2H dirty writeback
    WOWrInvF,   //!< CXL.cache D2H weakly-ordered write-invalidate (full)
    WrInv,      //!< CXL.cache D2H write-invalidate
};

/** Short name, e.g. "SnpInv". */
const char *transactionName(Transaction t);

/** Short channel name, e.g. "CXL.cache H2D". */
const char *channelName(Channel c);

/** One transaction as seen on the link. */
struct ObservedTransaction
{
    Channel channel = Channel::None;
    Transaction type = Transaction::None;

    bool operator==(const ObservedTransaction &o) const = default;
    bool operator<(const ObservedTransaction &o) const
    {
        if (channel != o.channel)
            return channel < o.channel;
        return type < o.type;
    }

    std::string describe() const;
};

/** Render a sequence like "RdOwn + DirtyEvict" (or "None"). */
std::string
describeTransactions(const std::vector<ObservedTransaction> &ts);

} // namespace cxl0::sim

#endif // CXL0_SIM_TRANSACTION_HH
