#include "sim/fabric.hh"

#include "common/logging.hh"

namespace cxl0::sim
{

const char *
cacheStateName(CacheState s)
{
    switch (s) {
      case CacheState::M: return "M";
      case CacheState::E: return "E";
      case CacheState::S: return "S";
      case CacheState::I: return "I";
    }
    return "?";
}

const char *
agentName(AgentKind k)
{
    return k == AgentKind::Host ? "Host" : "Device";
}

const char *
memKindName(MemKind k)
{
    return k == MemKind::HM ? "HM" : "HDM";
}

const char *
biasModeName(BiasMode b)
{
    return b == BiasMode::HostBias ? "host-bias" : "device-bias";
}

FabricSim::FabricSim(FabricConfig cfg)
    : cfg_(cfg), lines_(cfg.numHmLines + cfg.numHdmLines),
      rng_(cfg.rngSeed)
{
    if (lines_.empty())
        CXL0_FATAL("fabric needs at least one line");
}

LineInfo &
FabricSim::line(Addr x)
{
    if (x >= lines_.size())
        CXL0_FATAL("address ", x, " out of range (", lines_.size(),
                   " lines)");
    return lines_[x];
}

const LineInfo &
FabricSim::line(Addr x) const
{
    if (x >= lines_.size())
        CXL0_FATAL("address ", x, " out of range (", lines_.size(),
                   " lines)");
    return lines_[x];
}

MemKind
FabricSim::memKindOf(Addr x) const
{
    return x < cfg_.numHmLines ? MemKind::HM : MemKind::HDM;
}

AccessCategory
FabricSim::categoryOf(AgentKind agent, Addr x) const
{
    if (agent == AgentKind::Host) {
        return memKindOf(x) == MemKind::HM ? AccessCategory::HostToHM
                                           : AccessCategory::HostToHDM;
    }
    if (memKindOf(x) == MemKind::HM)
        return AccessCategory::DevToHM;
    return line(x).bias == BiasMode::HostBias
               ? AccessCategory::DevToHDMHostBias
               : AccessCategory::DevToHDMDevBias;
}

double
FabricSim::charge(AgentKind agent, Addr x, MeasuredPrimitive p)
{
    double ns = latency_.sample(categoryOf(agent, x), p, rng_);
    clock_ += ns;
    return ns;
}

void
FabricSim::emit(Channel c, Transaction t)
{
    analyzer_.record(c, t);
}

void
FabricSim::snoopInvalidate(AgentKind requester, Addr x)
{
    LineInfo &l = line(x);
    if (requester == AgentKind::Host) {
        if (l.device != CacheState::I) {
            emit(Channel::CacheH2D, Transaction::SnpInv);
            if (l.device == CacheState::M)
                l.memValue = l.latest; // dirty snoop writes back
            l.device = CacheState::I;
        }
    } else {
        if (l.host != CacheState::I) {
            if (l.host == CacheState::M)
                l.memValue = l.latest;
            l.host = CacheState::I;
        }
    }
}

double
FabricSim::read(AgentKind agent, Addr x, Value *out)
{
    LineInfo &l = line(x);
    MemKind mem = memKindOf(x);

    if (agent == AgentKind::Host) {
        if (mem == MemKind::HM) {
            // Table 1: (*, I) -> None; otherwise H2D SnpInv.
            if (l.device != CacheState::I) {
                emit(Channel::CacheH2D, Transaction::SnpInv);
                if (l.device == CacheState::M)
                    l.memValue = l.latest;
                l.device = CacheState::I;
                l.host = CacheState::E;
            } else if (l.host == CacheState::I) {
                l.host = CacheState::E; // silent fill from local DRAM
            }
        } else {
            // HDM: (I, *) -> MemRdData; else None. A writable device
            // copy is downgraded to shared (dirty data written back).
            if (l.host == CacheState::I) {
                emit(Channel::MemM2S, Transaction::MemRdData);
                if (l.device == CacheState::M)
                    l.memValue = l.latest;
                if (l.device == CacheState::M ||
                    l.device == CacheState::E) {
                    l.device = CacheState::S;
                }
                l.host = CacheState::S;
            }
        }
    } else { // Device
        if (mem == MemKind::HM) {
            if (l.device == CacheState::I) {
                emit(Channel::CacheD2H, Transaction::RdShared);
                if (l.host == CacheState::M) {
                    l.memValue = l.latest;
                    l.host = CacheState::S;
                } else if (l.host == CacheState::E) {
                    l.host = CacheState::S;
                }
                l.device = CacheState::S;
            }
        } else if (l.bias == BiasMode::HostBias) {
            if (l.device == CacheState::I) {
                emit(Channel::CacheD2H, Transaction::RdShared);
                if (l.host == CacheState::M) {
                    l.memValue = l.latest;
                    l.host = CacheState::S;
                } else if (l.host == CacheState::E) {
                    l.host = CacheState::S;
                }
                l.device = CacheState::S;
            }
        } else {
            // Device-bias: direct access, no link traffic.
            if (l.device == CacheState::I)
                l.device = CacheState::E;
        }
    }

    if (out)
        *out = l.latest;
    CXL0_ASSERT(coherenceInvariantHolds(), "read broke coherence");
    return charge(agent, x, MeasuredPrimitive::Read);
}

double
FabricSim::lstore(AgentKind agent, Addr x, Value v)
{
    LineInfo &l = line(x);
    MemKind mem = memKindOf(x);

    if (agent == AgentKind::Host) {
        if (mem == MemKind::HM) {
            // Table 1: None when the device has no copy, else SnpInv.
            if (l.host != CacheState::M && l.host != CacheState::E)
                snoopInvalidate(AgentKind::Host, x);
            l.host = CacheState::M;
        } else {
            // HDM: I -> MemRdData (RFO); S -> MemRd (upgrade);
            // E/M -> None.
            if (l.host == CacheState::I)
                emit(Channel::MemM2S, Transaction::MemRdData);
            else if (l.host == CacheState::S)
                emit(Channel::MemM2S, Transaction::MemRd);
            l.host = CacheState::M;
            l.device = CacheState::I; // host-managed coherence
        }
    } else { // Device caching write
        if (mem == MemKind::HM) {
            if (l.device != CacheState::M && l.device != CacheState::E) {
                emit(Channel::CacheD2H, Transaction::RdOwn);
                snoopInvalidate(AgentKind::Device, x);
            }
            l.device = CacheState::M;
        } else if (l.bias == BiasMode::HostBias) {
            if (l.device != CacheState::M && l.device != CacheState::E) {
                emit(Channel::CacheD2H, Transaction::RdOwn);
                snoopInvalidate(AgentKind::Device, x);
            }
            l.device = CacheState::M;
        } else {
            snoopInvalidate(AgentKind::Device, x);
            l.device = CacheState::M;
        }
    }

    l.latest = v;
    CXL0_ASSERT(coherenceInvariantHolds(), "lstore broke coherence");
    return charge(agent, x, MeasuredPrimitive::LStore);
}

double
FabricSim::rstore(AgentKind agent, Addr x, Value v)
{
    if (agent == AgentKind::Host) {
        // §5.1: no x86 instruction sequence generates an RStore.
        CXL0_FATAL("RStore is not generatable from the host (Table 1)");
    }
    LineInfo &l = line(x);
    MemKind mem = memKindOf(x);

    if (mem == MemKind::HM) {
        // Push the write into the host's coherence domain.
        emit(Channel::CacheD2H, Transaction::ItoMWr);
        if (l.device == CacheState::M)
            l.memValue = l.latest;
        l.device = CacheState::I;
        l.host = CacheState::M;
    } else {
        // The device owns HDM: RStore coincides with LStore
        // (Proposition 1 item 2). Table 1 lists "Caching Write".
        if (l.bias == BiasMode::HostBias &&
            l.device != CacheState::M && l.device != CacheState::E) {
            emit(Channel::CacheD2H, Transaction::RdOwn);
        }
        snoopInvalidate(AgentKind::Device, x);
        l.device = CacheState::M;
    }

    l.latest = v;
    CXL0_ASSERT(coherenceInvariantHolds(), "rstore broke coherence");
    return charge(agent, x, MeasuredPrimitive::RStore);
}

double
FabricSim::mstore(AgentKind agent, Addr x, Value v)
{
    LineInfo &l = line(x);
    MemKind mem = memKindOf(x);

    if (agent == AgentKind::Host) {
        if (mem == MemKind::HM) {
            // Non-temporal store + fence: unconditional snoop.
            emit(Channel::CacheH2D, Transaction::SnpInv);
            l.device = CacheState::I;
            l.host = CacheState::I;
        } else {
            emit(Channel::MemM2S, Transaction::MemWr);
            l.host = CacheState::I;
            l.device = CacheState::I;
        }
    } else { // Device: caching write + CLFlush
        if (mem == MemKind::HM) {
            switch (l.device) {
              case CacheState::I:
              case CacheState::S:
                emit(Channel::CacheD2H, Transaction::RdOwn);
                snoopInvalidate(AgentKind::Device, x);
                emit(Channel::CacheD2H, Transaction::DirtyEvict);
                break;
              case CacheState::E:
                emit(Channel::CacheD2H, Transaction::WOWrInvF);
                break;
              case CacheState::M:
                emit(Channel::CacheD2H, Transaction::WrInv);
                break;
            }
            l.device = CacheState::I;
            l.host = CacheState::I;
        } else if (l.bias == BiasMode::HostBias) {
            // Table 1: "None, MemRd" — the host's copy must be
            // recalled before the device write reaches memory.
            if (l.host != CacheState::I) {
                emit(Channel::MemM2S, Transaction::MemRd);
                if (l.host == CacheState::M)
                    l.memValue = l.latest;
                l.host = CacheState::I;
            }
            l.device = CacheState::I;
        } else {
            snoopInvalidate(AgentKind::Device, x);
            l.device = CacheState::I;
        }
    }

    l.latest = v;
    l.memValue = v;
    CXL0_ASSERT(coherenceInvariantHolds(), "mstore broke coherence");
    return charge(agent, x, MeasuredPrimitive::MStore);
}

double
FabricSim::lflush(AgentKind agent, Addr x)
{
    (void)x;
    // §5.1: neither the CPU nor the FPGA IP can issue an LFlush; the
    // primitive exists in CXL0 but not on CXL 1.1 silicon.
    CXL0_FATAL("LFlush is not generatable from the ", agentName(agent),
               " (Table 1)");
}

double
FabricSim::rflush(AgentKind agent, Addr x)
{
    LineInfo &l = line(x);
    MemKind mem = memKindOf(x);

    if (agent == AgentKind::Host) {
        if (mem == MemKind::HM) {
            // CLFlush: None when the device has no copy, else SnpInv.
            if (l.device != CacheState::I) {
                emit(Channel::CacheH2D, Transaction::SnpInv);
                if (l.device == CacheState::M)
                    l.memValue = l.latest;
                l.device = CacheState::I;
            }
            if (l.host == CacheState::M)
                l.memValue = l.latest;
            l.host = CacheState::I;
        } else {
            switch (l.host) {
              case CacheState::M:
                emit(Channel::MemM2S, Transaction::MemWr);
                l.memValue = l.latest;
                break;
              case CacheState::E:
              case CacheState::S:
                emit(Channel::MemM2S, Transaction::MemInv);
                break;
              case CacheState::I:
                break;
            }
            l.host = CacheState::I;
        }
    } else { // Device CLFlush
        if (mem == MemKind::HM) {
            switch (l.device) {
              case CacheState::M:
                emit(Channel::CacheD2H, Transaction::DirtyEvict);
                l.memValue = l.latest;
                break;
              case CacheState::E:
              case CacheState::S:
                emit(Channel::CacheD2H, Transaction::CleanEvict);
                break;
              case CacheState::I:
                break;
            }
            l.device = CacheState::I;
        } else if (l.bias == BiasMode::HostBias) {
            // Table 1: "None, MemRd" — recall the host's copy, then
            // the local writeback needs no link traffic.
            if (l.host != CacheState::I) {
                emit(Channel::MemM2S, Transaction::MemRd);
                if (l.host == CacheState::M)
                    l.memValue = l.latest;
                l.host = CacheState::I;
            }
            if (l.device == CacheState::M)
                l.memValue = l.latest;
            l.device = CacheState::I;
        } else {
            if (l.device == CacheState::M)
                l.memValue = l.latest;
            l.device = CacheState::I;
        }
    }

    CXL0_ASSERT(coherenceInvariantHolds(), "rflush broke coherence");
    return charge(agent, x, MeasuredPrimitive::RFlush);
}

bool
FabricSim::primitiveAvailable(AgentKind agent, MeasuredPrimitive p)
{
    if (p == MeasuredPrimitive::LFlush)
        return false;
    if (p == MeasuredPrimitive::RStore && agent == AgentKind::Host)
        return false;
    return true;
}

void
FabricSim::setBias(Addr x, BiasMode mode)
{
    if (memKindOf(x) != MemKind::HDM)
        CXL0_FATAL("bias modes apply to HDM lines only");
    line(x).bias = mode;
}

void
FabricSim::setLineState(Addr x, CacheState host, CacheState device)
{
    bool host_writable =
        host == CacheState::M || host == CacheState::E;
    bool dev_writable =
        device == CacheState::M || device == CacheState::E;
    if (host_writable && device != CacheState::I)
        CXL0_FATAL("illegal MESI pair ", cacheStateName(host), "/",
                   cacheStateName(device));
    if (dev_writable && host != CacheState::I)
        CXL0_FATAL("illegal MESI pair ", cacheStateName(host), "/",
                   cacheStateName(device));
    line(x).host = host;
    line(x).device = device;
}

bool
FabricSim::coherenceInvariantHolds() const
{
    for (const LineInfo &l : lines_) {
        bool host_writable =
            l.host == CacheState::M || l.host == CacheState::E;
        bool dev_writable =
            l.device == CacheState::M || l.device == CacheState::E;
        if (host_writable && l.device != CacheState::I)
            return false;
        if (dev_writable && l.host != CacheState::I)
            return false;
    }
    return true;
}

} // namespace cxl0::sim
