/**
 * @file
 * Calibrated latency model for CXL0 primitives (paper §5.2, Fig. 5).
 *
 * We do not have the paper's silicon; we reproduce the *shape* of
 * Fig. 5 with a latency table whose defaults are calibrated to the
 * relations the paper reports:
 *
 *  - host remote (HDM) loads/MStores are 2.34x their local (HM) cost;
 *  - device remote (HM) accesses are 1.94x device-bias local ones;
 *  - for device writes to HM: LStore < RStore (2.08x) < MStore
 *    (1.45x over RStore);
 *  - RFlush latency is nearly identical to MStore;
 *  - host LStores are fastest (write buffers); device LStores to HM
 *    are slower than to HDM (two differently sized IP caches);
 *  - RStore and LFlush are not measurable from the host, LFlush not
 *    measurable from either side (Table 1 "???" rows).
 */

#ifndef CXL0_SIM_LATENCY_HH
#define CXL0_SIM_LATENCY_HH

#include <cstddef>
#include <string>

#include "common/rng.hh"

namespace cxl0::sim
{

/** The five access categories of Fig. 5. */
enum class AccessCategory
{
    HostToHM,        //!< host to host-attached memory (local)
    HostToHDM,       //!< host to host-managed device memory (remote)
    DevToHM,         //!< device to host-attached memory (remote)
    DevToHDMHostBias,//!< device to own memory, host-bias (permission)
    DevToHDMDevBias, //!< device to own memory, device-bias (local)
};

constexpr size_t kNumAccessCategories = 5;

/** The six primitives Fig. 5 measures. */
enum class MeasuredPrimitive
{
    Read,
    LStore,
    RStore,
    MStore,
    LFlush,
    RFlush,
};

constexpr size_t kNumMeasuredPrimitives = 6;

/** Display name, e.g. "Device to HDM in Host-Bias". */
const char *accessCategoryName(AccessCategory c);

/** Display name, e.g. "MStore". */
const char *measuredPrimitiveName(MeasuredPrimitive p);

/** Latency table with jittered sampling for median statistics. */
class LatencyModel
{
  public:
    /** Defaults calibrated to the paper's reported ratios. */
    LatencyModel();

    /** Whether (category, primitive) is measurable (Table 1 "???"). */
    bool measurable(AccessCategory c, MeasuredPrimitive p) const;

    /** Nominal latency in nanoseconds; 0 when not measurable. */
    double ns(AccessCategory c, MeasuredPrimitive p) const;

    /** Override one table entry (for what-if studies). */
    void set(AccessCategory c, MeasuredPrimitive p, double nanos);

    /**
     * One jittered sample (+-5% uniform) as a real measurement run
     * would produce; medians over many samples converge to ns().
     */
    double sample(AccessCategory c, MeasuredPrimitive p, Rng &rng) const;

    /** Ratio helper: ns(a,p) / ns(b,p). */
    double ratio(AccessCategory a, AccessCategory b,
                 MeasuredPrimitive p) const;

  private:
    size_t index(AccessCategory c, MeasuredPrimitive p) const;

    double table_[kNumAccessCategories * kNumMeasuredPrimitives];
    bool measurable_[kNumAccessCategories * kNumMeasuredPrimitives];
};

} // namespace cxl0::sim

#endif // CXL0_SIM_LATENCY_HH
