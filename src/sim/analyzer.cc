#include "sim/analyzer.hh"

namespace cxl0::sim
{

void
ProtocolAnalyzer::record(Channel channel, Transaction type)
{
    trace_.push_back(ObservedTransaction{channel, type});
}

size_t
ProtocolAnalyzer::count() const
{
    size_t n = 0;
    for (const ObservedTransaction &t : trace_)
        if (t.type != Transaction::None)
            ++n;
    return n;
}

void
ProtocolAnalyzer::clear()
{
    trace_.clear();
}

std::map<Transaction, size_t>
ProtocolAnalyzer::histogram() const
{
    std::map<Transaction, size_t> h;
    for (const ObservedTransaction &t : trace_)
        if (t.type != Transaction::None)
            ++h[t.type];
    return h;
}

std::string
ProtocolAnalyzer::describe() const
{
    return describeTransactions(trace_);
}

} // namespace cxl0::sim
