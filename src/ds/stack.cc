#include "ds/stack.hh"

#include "common/logging.hh"

namespace cxl0::ds
{

TreiberStack::TreiberStack(FlitRuntime &rt, NodeId home)
    : rt_(rt), home_(home), top_(rt.allocateShared(home))
{
    std::lock_guard<std::mutex> guard(tableMu_);
    records_.emplace_back(); // index 0 is the null sentinel
}

TreiberStack::Record &
TreiberStack::record(Value ptr)
{
    std::lock_guard<std::mutex> guard(tableMu_);
    CXL0_ASSERT(ptr > 0 && static_cast<size_t>(ptr) < records_.size(),
                "dangling stack pointer ", ptr);
    return records_[static_cast<size_t>(ptr)];
}

Value
TreiberStack::newRecord(NodeId by, Value v)
{
    Value ptr;
    Record *rec;
    {
        std::lock_guard<std::mutex> guard(tableMu_);
        ptr = static_cast<Value>(records_.size());
        records_.emplace_back();
        rec = &records_.back();
        rec->value = rt_.allocateShared(home_);
        rec->next = rt_.allocateShared(home_);
    }
    rt_.sharedStore(by, rec->value, v);
    return ptr;
}

void
TreiberStack::push(NodeId by, Value v)
{
    Value ptr = newRecord(by, v);
    for (;;) {
        Value t = rt_.sharedLoad(by, top_);
        rt_.sharedStore(by, record(ptr).next, t);
        if (rt_.sharedCas(by, top_, t, ptr).success)
            break;
    }
    rt_.completeOp(by);
}

std::optional<Value>
TreiberStack::pop(NodeId by)
{
    for (;;) {
        Value t = rt_.sharedLoad(by, top_);
        if (t == 0) {
            rt_.completeOp(by);
            return std::nullopt;
        }
        Record &rec = record(t);
        Value nxt = rt_.sharedLoad(by, rec.next);
        Value v = rt_.sharedLoad(by, rec.value);
        if (rt_.sharedCas(by, top_, t, nxt).success) {
            rt_.completeOp(by);
            return v;
        }
    }
}

bool
TreiberStack::empty(NodeId by)
{
    Value t = rt_.sharedLoad(by, top_);
    rt_.completeOp(by);
    return t == 0;
}

size_t
TreiberStack::recover(NodeId by)
{
    size_t count = 0;
    Value cur = rt_.sharedLoad(by, top_);
    while (cur != 0) {
        Record &rec = record(cur);
        rt_.sharedLoad(by, rec.value);
        cur = rt_.sharedLoad(by, rec.next);
        count += 1;
    }
    rt_.completeOp(by);
    return count;
}

std::vector<Value>
TreiberStack::unsafeSnapshot(NodeId by)
{
    std::vector<Value> out;
    Value cur = rt_.sharedLoad(by, top_);
    while (cur != 0) {
        Record &rec = record(cur);
        out.push_back(rt_.sharedLoad(by, rec.value));
        cur = rt_.sharedLoad(by, rec.next);
    }
    return out;
}

} // namespace cxl0::ds
