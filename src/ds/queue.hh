/**
 * @file
 * Michael-Scott queue over the FliT-transformed CXL0 runtime.
 *
 * The classic lock-free FIFO queue with a sentinel node, tail helping,
 * and all memory accesses routed through flit::FlitRuntime (same
 * durability story as ds/stack.hh).
 */

#ifndef CXL0_DS_QUEUE_HH
#define CXL0_DS_QUEUE_HH

#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "flit/flit.hh"

namespace cxl0::ds
{

using flit::FlitRuntime;
using flit::SharedWord;

/** Lock-free FIFO queue. */
class MsQueue
{
  public:
    MsQueue(FlitRuntime &rt, NodeId home);

    /** Enqueue v at the tail. */
    void enqueue(NodeId by, Value v);

    /** Dequeue from the head; nullopt when empty. */
    std::optional<Value> dequeue(NodeId by);

    /** Whether the queue is observably empty right now. */
    bool empty(NodeId by);

    /**
     * Post-crash recovery entry point (run quiescently by a surviving
     * machine): finishes the one repair an MS queue can need — an
     * enqueuer may have died between linking its node and swinging the
     * tail, so the tail is helped forward until it points at the last
     * node. Returns the number of reachable elements.
     */
    size_t recover(NodeId by);

    /** Read-only head-to-tail traversal (quiescent use only). */
    std::vector<Value> unsafeSnapshot(NodeId by);

  private:
    struct Record
    {
        SharedWord value;
        SharedWord next;
    };

    Record &record(Value ptr);
    Value newRecord(NodeId by, Value v);

    FlitRuntime &rt_;
    NodeId home_;
    SharedWord head_;
    SharedWord tail_;

    std::mutex tableMu_;
    std::deque<Record> records_;
};

} // namespace cxl0::ds

#endif // CXL0_DS_QUEUE_HH
