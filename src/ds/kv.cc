#include "ds/kv.hh"

namespace cxl0::ds
{

DurableRegister::DurableRegister(FlitRuntime &rt, NodeId home)
    : rt_(rt), word_(rt.allocateShared(home))
{
}

void
DurableRegister::write(NodeId by, Value v)
{
    rt_.sharedStore(by, word_, v);
    rt_.completeOp(by);
}

Value
DurableRegister::read(NodeId by)
{
    Value v = rt_.sharedLoad(by, word_);
    rt_.completeOp(by);
    return v;
}

bool
DurableRegister::compareExchange(NodeId by, Value expected, Value desired)
{
    bool ok = rt_.sharedCas(by, word_, expected, desired).success;
    rt_.completeOp(by);
    return ok;
}

DurableCounter::DurableCounter(FlitRuntime &rt, NodeId home)
    : rt_(rt), word_(rt.allocateShared(home))
{
}

Value
DurableCounter::fetchAdd(NodeId by, Value delta)
{
    Value old = rt_.sharedFaa(by, word_, delta);
    rt_.completeOp(by);
    return old;
}

Value
DurableCounter::read(NodeId by)
{
    Value v = rt_.sharedLoad(by, word_);
    rt_.completeOp(by);
    return v;
}

KvStore::KvStore(FlitRuntime &rt, NodeId home, size_t buckets)
    : map_(rt, home, buckets), size_(rt, home)
{
}

bool
KvStore::put(NodeId by, Value key, Value value)
{
    bool fresh = !map_.get(by, key).has_value();
    map_.put(by, key, value);
    if (fresh)
        size_.fetchAdd(by, 1);
    return fresh;
}

std::optional<Value>
KvStore::get(NodeId by, Value key)
{
    return map_.get(by, key);
}

bool
KvStore::remove(NodeId by, Value key)
{
    bool removed = map_.remove(by, key);
    if (removed)
        size_.fetchAdd(by, -1);
    return removed;
}

Value
KvStore::size(NodeId by)
{
    return size_.read(by);
}

size_t
KvStore::recover(NodeId by)
{
    size_t live = map_.recover(by);
    Value drift = static_cast<Value>(live) - size_.read(by);
    if (drift != 0)
        size_.fetchAdd(by, drift);
    return live;
}

std::vector<std::pair<Value, Value>>
KvStore::unsafeSnapshot(NodeId by)
{
    return map_.unsafeSnapshot(by);
}

} // namespace cxl0::ds
