/**
 * @file
 * Durable append-only log over the FliT-transformed CXL0 runtime.
 *
 * The classic journal pattern for disaggregated memory: appenders
 * reserve a slot with a fetch-and-add on the tail, write the payload,
 * then set the slot's publish flag. Readers and recovery only trust
 * published slots, so an appender dying mid-append leaves a hole that
 * scans skip — its pending operation is correctly "omitted" in the
 * durable-linearizability sense, while every published append
 * survives any crash when a durable PersistMode is used.
 */

#ifndef CXL0_DS_LOG_HH
#define CXL0_DS_LOG_HH

#include <optional>
#include <vector>

#include "flit/flit.hh"

namespace cxl0::ds
{

using flit::FlitRuntime;
using flit::SharedWord;

/** Fixed-capacity multi-producer append-only log. */
class DurableLog
{
  public:
    /**
     * @param capacity slot count; all cells are allocated up front so
     *        appends never race on allocation
     */
    DurableLog(FlitRuntime &rt, NodeId home, size_t capacity);

    size_t capacity() const { return slots_.size(); }

    /**
     * Append v; returns the slot index, or nullopt when the log is
     * full (the reservation is burned either way, as in real
     * sequence-number based logs).
     */
    std::optional<size_t> append(NodeId by, Value v);

    /** Read one slot; nullopt if unpublished (hole or out of range). */
    std::optional<Value> get(NodeId by, size_t index);

    /**
     * Crash-injection hook: reserve a slot and stop, exactly the
     * footprint of an appender that died between its FAA and its
     * publish store. Returns the orphaned slot index.
     */
    std::optional<size_t> reserveOnly(NodeId by);

    /** Number of reserved slots (published or not). */
    size_t reserved(NodeId by);

    /**
     * Post-crash recovery entry point: scans the reserved prefix and
     * counts published slots — holes left by appenders that died
     * between reservation and publication are skipped forever after.
     * Returns the number of published entries.
     */
    size_t recover(NodeId by);

    /**
     * All published entries in slot order, skipping holes left by
     * appenders that died between reservation and publication.
     */
    std::vector<Value> scan(NodeId by);

  private:
    struct Slot
    {
        SharedWord value;
        SharedWord published;
    };

    FlitRuntime &rt_;
    SharedWord tail_;
    std::vector<Slot> slots_;
};

} // namespace cxl0::ds

#endif // CXL0_DS_LOG_HH
