/**
 * @file
 * Small durable primitives: register, counter, and a KV-store facade.
 *
 * These are the "legacy linearizable objects" §6 transforms: a
 * multi-reader multi-writer register, a fetch-and-add counter, and a
 * KV store combining a HashMap with a live-size counter. With a
 * durable PersistMode they are durably linearizable out of the box.
 */

#ifndef CXL0_DS_KV_HH
#define CXL0_DS_KV_HH

#include <optional>

#include "ds/map.hh"

namespace cxl0::ds
{

/** MRMW register through the transformation. */
class DurableRegister
{
  public:
    DurableRegister(FlitRuntime &rt, NodeId home);

    void write(NodeId by, Value v);
    Value read(NodeId by);
    /** CAS on the register; returns success. */
    bool compareExchange(NodeId by, Value expected, Value desired);

    /** Post-crash recovery: a single word needs only a re-read;
     *  returns the recovered value. */
    Value recover(NodeId by) { return read(by); }

  private:
    FlitRuntime &rt_;
    SharedWord word_;
};

/** Fetch-and-add counter through the transformation. */
class DurableCounter
{
  public:
    DurableCounter(FlitRuntime &rt, NodeId home);

    /** Add delta; returns the previous value. */
    Value fetchAdd(NodeId by, Value delta);
    Value read(NodeId by);

    /** Post-crash recovery: a single word needs only a re-read;
     *  returns the recovered value. */
    Value recover(NodeId by) { return read(by); }

  private:
    FlitRuntime &rt_;
    SharedWord word_;
};

/**
 * KV store: HashMap plus a durable size counter, demonstrating §6's
 * composability claim — durable linearizability is local, so composing
 * two durably linearizable objects needs no extra reasoning.
 */
class KvStore
{
  public:
    KvStore(FlitRuntime &rt, NodeId home, size_t buckets = 32);

    /** Insert or overwrite; returns true when the key was fresh. */
    bool put(NodeId by, Value key, Value value);
    std::optional<Value> get(NodeId by, Value key);
    /** Remove; false when absent. */
    bool remove(NodeId by, Value key);
    /** Live key count. */
    Value size(NodeId by);

    /**
     * Post-crash recovery: re-reads the map and repairs the live-size
     * counter, which can drift when a writer dies between the map
     * update and the counter bump (put/remove span two objects and are
     * not crash-atomic as a pair). Returns the live key count.
     */
    size_t recover(NodeId by);

    /** All live pairs (quiescent use only, e.g. after recovery). */
    std::vector<std::pair<Value, Value>> unsafeSnapshot(NodeId by);

  private:
    HashMap map_;
    DurableCounter size_;
};

} // namespace cxl0::ds

#endif // CXL0_DS_KV_HH
