#include "ds/log.hh"

#include "common/logging.hh"

namespace cxl0::ds
{

DurableLog::DurableLog(FlitRuntime &rt, NodeId home, size_t capacity)
    : rt_(rt), tail_(rt.allocateShared(home))
{
    CXL0_ASSERT(capacity > 0, "log needs at least one slot");
    slots_.reserve(capacity);
    for (size_t k = 0; k < capacity; ++k) {
        Slot s;
        s.value = rt_.allocateShared(home);
        s.published = rt_.allocateShared(home);
        slots_.push_back(s);
    }
}

std::optional<size_t>
DurableLog::append(NodeId by, Value v)
{
    Value idx = rt_.sharedFaa(by, tail_, 1);
    if (idx < 0 || static_cast<size_t>(idx) >= slots_.size()) {
        rt_.completeOp(by);
        return std::nullopt;
    }
    Slot &slot = slots_[static_cast<size_t>(idx)];
    rt_.sharedStore(by, slot.value, v);
    rt_.sharedStore(by, slot.published, 1);
    rt_.completeOp(by);
    return static_cast<size_t>(idx);
}

std::optional<size_t>
DurableLog::reserveOnly(NodeId by)
{
    Value idx = rt_.sharedFaa(by, tail_, 1);
    if (idx < 0 || static_cast<size_t>(idx) >= slots_.size())
        return std::nullopt;
    return static_cast<size_t>(idx);
}

std::optional<Value>
DurableLog::get(NodeId by, size_t index)
{
    if (index >= slots_.size())
        return std::nullopt;
    Slot &slot = slots_[index];
    if (rt_.sharedLoad(by, slot.published) != 1) {
        rt_.completeOp(by);
        return std::nullopt;
    }
    Value v = rt_.sharedLoad(by, slot.value);
    rt_.completeOp(by);
    return v;
}

size_t
DurableLog::reserved(NodeId by)
{
    Value t = rt_.sharedLoad(by, tail_);
    rt_.completeOp(by);
    if (t < 0)
        return 0;
    return std::min(static_cast<size_t>(t), slots_.size());
}

size_t
DurableLog::recover(NodeId by)
{
    size_t count = 0;
    size_t upto = reserved(by);
    for (size_t k = 0; k < upto; ++k) {
        if (rt_.sharedLoad(by, slots_[k].published) == 1)
            count += 1;
    }
    rt_.completeOp(by);
    return count;
}

std::vector<Value>
DurableLog::scan(NodeId by)
{
    std::vector<Value> out;
    size_t upto = reserved(by);
    for (size_t k = 0; k < upto; ++k) {
        Slot &slot = slots_[k];
        if (rt_.sharedLoad(by, slot.published) == 1)
            out.push_back(rt_.sharedLoad(by, slot.value));
    }
    rt_.completeOp(by);
    return out;
}

} // namespace cxl0::ds
