/**
 * @file
 * Bucketed hash map over the FliT-transformed CXL0 runtime.
 *
 * Each bucket is a prepend-only CAS list; a put prepends a fresh
 * (key, value) record and a get returns the first (newest) match, so
 * every operation linearizes at a single CAS or load. Removal prepends
 * a tombstone record. Records are never unlinked (arena semantics, see
 * ds/set.hh).
 */

#ifndef CXL0_DS_MAP_HH
#define CXL0_DS_MAP_HH

#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "flit/flit.hh"

namespace cxl0::ds
{

using flit::FlitRuntime;
using flit::SharedWord;

/** Lock-free hash map from Value keys to Value values. */
class HashMap
{
  public:
    /**
     * @param buckets bucket count (fixed; choose >= expected keys for
     *        short chains)
     */
    HashMap(FlitRuntime &rt, NodeId home, size_t buckets = 16);

    /** Insert or overwrite key. */
    void put(NodeId by, Value key, Value value);

    /** Current mapping; nullopt when absent. */
    std::optional<Value> get(NodeId by, Value key);

    /** Remove key; false when it was absent. */
    bool remove(NodeId by, Value key);

    /**
     * Post-crash recovery entry point: re-reads every bucket chain
     * (records are never unlinked, so the chains are always intact).
     * Returns the number of live keys.
     */
    size_t recover(NodeId by);

    /** All live (key, value) pairs (quiescent use only). */
    std::vector<std::pair<Value, Value>> unsafeSnapshot(NodeId by);

  private:
    struct Record
    {
        SharedWord key;
        SharedWord value;
        SharedWord dead; //!< 1 marks a tombstone record
        SharedWord next;
    };

    Record &record(Value ptr);
    Value newRecord(NodeId by, Value key, Value value, bool dead,
                    Value next_ptr);
    size_t bucketOf(Value key) const;

    /** First record matching key from the bucket head, or 0. */
    Value findNewest(NodeId by, Value bucket_head, Value key);

    FlitRuntime &rt_;
    NodeId home_;
    std::vector<SharedWord> buckets_;

    std::mutex tableMu_;
    std::deque<Record> records_;
};

} // namespace cxl0::ds

#endif // CXL0_DS_MAP_HH
