/**
 * @file
 * Treiber stack over the FliT-transformed CXL0 runtime.
 *
 * The stack is the textbook linearizable lock-free stack; every memory
 * access goes through flit::FlitRuntime, so instantiating it with a
 * durable mode (FlitCxl0 / FlitCxl0AddrOpt / PersistAll) yields a
 * durably linearizable stack per §6, while None / FlitOriginal expose
 * the non-durable behaviours the paper warns about.
 *
 * Records live in an arena owned by a "home" node; pointers are record
 * indices (0 = null, matching the model's zero-initialized memory).
 */

#ifndef CXL0_DS_STACK_HH
#define CXL0_DS_STACK_HH

#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "flit/flit.hh"

namespace cxl0::ds
{

using flit::FlitRuntime;
using flit::SharedWord;

/** Lock-free LIFO stack. */
class TreiberStack
{
  public:
    /**
     * @param rt transformation runtime to route accesses through
     * @param home node whose memory holds the stack cells
     */
    TreiberStack(FlitRuntime &rt, NodeId home);

    /** Push v (executed by machine `by`). */
    void push(NodeId by, Value v);

    /** Pop the top element; nullopt when empty. */
    std::optional<Value> pop(NodeId by);

    /** Whether the stack is observably empty right now. */
    bool empty(NodeId by);

    /**
     * Post-crash recovery entry point (run quiescently by a surviving
     * machine): re-reads the top pointer and walks the list, which is
     * all a Treiber stack needs — its single-word top is always
     * consistent. Returns the number of reachable elements.
     */
    size_t recover(NodeId by);

    /**
     * Read-only traversal top-to-bottom (not linearizable with
     * concurrent mutators; used by tests after quiescence/recovery).
     */
    std::vector<Value> unsafeSnapshot(NodeId by);

  private:
    struct Record
    {
        SharedWord value;
        SharedWord next;
    };

    Record &record(Value ptr);
    Value newRecord(NodeId by, Value v);

    FlitRuntime &rt_;
    NodeId home_;
    SharedWord top_;

    std::mutex tableMu_;
    std::deque<Record> records_; // index 0 unused (0 == null)
};

} // namespace cxl0::ds

#endif // CXL0_DS_STACK_HH
