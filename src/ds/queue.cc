#include "ds/queue.hh"

#include "common/logging.hh"

namespace cxl0::ds
{

MsQueue::MsQueue(FlitRuntime &rt, NodeId home)
    : rt_(rt), home_(home), head_(rt.allocateShared(home)),
      tail_(rt.allocateShared(home))
{
    {
        std::lock_guard<std::mutex> guard(tableMu_);
        records_.emplace_back(); // index 0 == null
    }
    // Install the sentinel node.
    Value sentinel = newRecord(0, 0);
    rt_.sharedStore(0, head_, sentinel);
    rt_.sharedStore(0, tail_, sentinel);
    rt_.completeOp(0);
}

MsQueue::Record &
MsQueue::record(Value ptr)
{
    std::lock_guard<std::mutex> guard(tableMu_);
    CXL0_ASSERT(ptr > 0 && static_cast<size_t>(ptr) < records_.size(),
                "dangling queue pointer ", ptr);
    return records_[static_cast<size_t>(ptr)];
}

Value
MsQueue::newRecord(NodeId by, Value v)
{
    Value ptr;
    Record *rec;
    {
        std::lock_guard<std::mutex> guard(tableMu_);
        ptr = static_cast<Value>(records_.size());
        records_.emplace_back();
        rec = &records_.back();
        rec->value = rt_.allocateShared(home_);
        rec->next = rt_.allocateShared(home_);
    }
    rt_.sharedStore(by, rec->value, v);
    return ptr;
}

void
MsQueue::enqueue(NodeId by, Value v)
{
    Value ptr = newRecord(by, v);
    for (;;) {
        Value t = rt_.sharedLoad(by, tail_);
        Value tn = rt_.sharedLoad(by, record(t).next);
        if (tn != 0) {
            // Help swing the lagging tail.
            rt_.sharedCas(by, tail_, t, tn);
            continue;
        }
        if (rt_.sharedCas(by, record(t).next, 0, ptr).success) {
            rt_.sharedCas(by, tail_, t, ptr);
            rt_.completeOp(by);
            return;
        }
    }
}

std::optional<Value>
MsQueue::dequeue(NodeId by)
{
    for (;;) {
        Value h = rt_.sharedLoad(by, head_);
        Value t = rt_.sharedLoad(by, tail_);
        Value hn = rt_.sharedLoad(by, record(h).next);
        if (h == t) {
            if (hn == 0) {
                rt_.completeOp(by);
                return std::nullopt;
            }
            rt_.sharedCas(by, tail_, t, hn);
            continue;
        }
        Value v = rt_.sharedLoad(by, record(hn).value);
        if (rt_.sharedCas(by, head_, h, hn).success) {
            rt_.completeOp(by);
            return v;
        }
    }
}

bool
MsQueue::empty(NodeId by)
{
    Value h = rt_.sharedLoad(by, head_);
    Value hn = rt_.sharedLoad(by, record(h).next);
    rt_.completeOp(by);
    return hn == 0;
}

size_t
MsQueue::recover(NodeId by)
{
    // Help the tail forward past any node linked by a dead enqueuer.
    for (;;) {
        Value t = rt_.sharedLoad(by, tail_);
        Value tn = rt_.sharedLoad(by, record(t).next);
        if (tn == 0)
            break;
        rt_.sharedCas(by, tail_, t, tn);
    }
    size_t count = 0;
    Value h = rt_.sharedLoad(by, head_);
    Value cur = rt_.sharedLoad(by, record(h).next);
    while (cur != 0) {
        Record &rec = record(cur);
        rt_.sharedLoad(by, rec.value);
        cur = rt_.sharedLoad(by, rec.next);
        count += 1;
    }
    rt_.completeOp(by);
    return count;
}

std::vector<Value>
MsQueue::unsafeSnapshot(NodeId by)
{
    std::vector<Value> out;
    Value h = rt_.sharedLoad(by, head_);
    Value cur = rt_.sharedLoad(by, record(h).next);
    while (cur != 0) {
        Record &rec = record(cur);
        out.push_back(rt_.sharedLoad(by, rec.value));
        cur = rt_.sharedLoad(by, rec.next);
    }
    return out;
}

} // namespace cxl0::ds
