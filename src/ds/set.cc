#include "ds/set.hh"

#include "common/logging.hh"

namespace cxl0::ds
{

SortedListSet::SortedListSet(FlitRuntime &rt, NodeId home)
    : rt_(rt), home_(home), head_(rt.allocateShared(home))
{
    std::lock_guard<std::mutex> guard(tableMu_);
    records_.emplace_back(); // index 0 == null
}

SortedListSet::Record &
SortedListSet::record(Value ptr)
{
    std::lock_guard<std::mutex> guard(tableMu_);
    CXL0_ASSERT(ptr > 0 && static_cast<size_t>(ptr) < records_.size(),
                "dangling set pointer ", ptr);
    return records_[static_cast<size_t>(ptr)];
}

Value
SortedListSet::newRecord(NodeId by, Value key, Value next_ptr)
{
    Value ptr;
    Record *rec;
    {
        std::lock_guard<std::mutex> guard(tableMu_);
        ptr = static_cast<Value>(records_.size());
        records_.emplace_back();
        rec = &records_.back();
        rec->key = rt_.allocateShared(home_);
        rec->present = rt_.allocateShared(home_);
        rec->next = rt_.allocateShared(home_);
    }
    rt_.sharedStore(by, rec->key, key);
    rt_.sharedStore(by, rec->present, 1);
    rt_.sharedStore(by, rec->next, next_ptr);
    return ptr;
}

void
SortedListSet::find(NodeId by, Value key, SharedWord &pred_next,
                    Value &curr)
{
    pred_next = head_;
    curr = rt_.sharedLoad(by, head_);
    while (curr != 0) {
        Record &rec = record(curr);
        Value k = rt_.sharedLoad(by, rec.key);
        if (k >= key)
            return;
        pred_next = rec.next;
        curr = rt_.sharedLoad(by, rec.next);
    }
}

bool
SortedListSet::add(NodeId by, Value key)
{
    for (;;) {
        SharedWord pred_next;
        Value curr;
        find(by, key, pred_next, curr);
        if (curr != 0 &&
            rt_.sharedLoad(by, record(curr).key) == key) {
            // Key has a record: membership is the presence flag.
            bool added =
                rt_.sharedCas(by, record(curr).present, 0, 1).success;
            rt_.completeOp(by);
            return added;
        }
        Value fresh = newRecord(by, key, curr);
        if (rt_.sharedCas(by, pred_next, curr, fresh).success) {
            rt_.completeOp(by);
            return true;
        }
        // Lost a race: a record was inserted after pred; retry. The
        // orphaned `fresh` record stays in the arena (no reclamation).
    }
}

bool
SortedListSet::remove(NodeId by, Value key)
{
    SharedWord pred_next;
    Value curr;
    find(by, key, pred_next, curr);
    if (curr == 0 || rt_.sharedLoad(by, record(curr).key) != key) {
        rt_.completeOp(by);
        return false;
    }
    bool removed = rt_.sharedCas(by, record(curr).present, 1, 0).success;
    rt_.completeOp(by);
    return removed;
}

bool
SortedListSet::contains(NodeId by, Value key)
{
    SharedWord pred_next;
    Value curr;
    find(by, key, pred_next, curr);
    bool present =
        curr != 0 && rt_.sharedLoad(by, record(curr).key) == key &&
        rt_.sharedLoad(by, record(curr).present) == 1;
    rt_.completeOp(by);
    return present;
}

size_t
SortedListSet::recover(NodeId by)
{
    size_t count = 0;
    Value cur = rt_.sharedLoad(by, head_);
    while (cur != 0) {
        Record &rec = record(cur);
        if (rt_.sharedLoad(by, rec.present) == 1)
            count += 1;
        cur = rt_.sharedLoad(by, rec.next);
    }
    rt_.completeOp(by);
    return count;
}

std::vector<Value>
SortedListSet::unsafeSnapshot(NodeId by)
{
    std::vector<Value> out;
    Value cur = rt_.sharedLoad(by, head_);
    while (cur != 0) {
        Record &rec = record(cur);
        if (rt_.sharedLoad(by, rec.present) == 1)
            out.push_back(rt_.sharedLoad(by, rec.key));
        cur = rt_.sharedLoad(by, rec.next);
    }
    return out;
}

} // namespace cxl0::ds
