#include "ds/map.hh"

#include "common/logging.hh"

namespace cxl0::ds
{

HashMap::HashMap(FlitRuntime &rt, NodeId home, size_t buckets)
    : rt_(rt), home_(home)
{
    CXL0_ASSERT(buckets > 0, "need at least one bucket");
    for (size_t b = 0; b < buckets; ++b)
        buckets_.push_back(rt_.allocateShared(home));
    std::lock_guard<std::mutex> guard(tableMu_);
    records_.emplace_back(); // index 0 == null
}

HashMap::Record &
HashMap::record(Value ptr)
{
    std::lock_guard<std::mutex> guard(tableMu_);
    CXL0_ASSERT(ptr > 0 && static_cast<size_t>(ptr) < records_.size(),
                "dangling map pointer ", ptr);
    return records_[static_cast<size_t>(ptr)];
}

Value
HashMap::newRecord(NodeId by, Value key, Value value, bool dead,
                   Value next_ptr)
{
    Value ptr;
    Record *rec;
    {
        std::lock_guard<std::mutex> guard(tableMu_);
        ptr = static_cast<Value>(records_.size());
        records_.emplace_back();
        rec = &records_.back();
        rec->key = rt_.allocateShared(home_);
        rec->value = rt_.allocateShared(home_);
        rec->dead = rt_.allocateShared(home_);
        rec->next = rt_.allocateShared(home_);
    }
    rt_.sharedStore(by, rec->key, key);
    rt_.sharedStore(by, rec->value, value);
    rt_.sharedStore(by, rec->dead, dead ? 1 : 0);
    rt_.sharedStore(by, rec->next, next_ptr);
    return ptr;
}

size_t
HashMap::bucketOf(Value key) const
{
    uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(h >> 33) % buckets_.size();
}

Value
HashMap::findNewest(NodeId by, Value bucket_head, Value key)
{
    Value cur = bucket_head;
    while (cur != 0) {
        Record &rec = record(cur);
        if (rt_.sharedLoad(by, rec.key) == key)
            return cur;
        cur = rt_.sharedLoad(by, rec.next);
    }
    return 0;
}

void
HashMap::put(NodeId by, Value key, Value value)
{
    const SharedWord &bucket = buckets_[bucketOf(key)];
    for (;;) {
        Value head = rt_.sharedLoad(by, bucket);
        Value fresh = newRecord(by, key, value, false, head);
        if (rt_.sharedCas(by, bucket, head, fresh).success) {
            rt_.completeOp(by);
            return;
        }
    }
}

std::optional<Value>
HashMap::get(NodeId by, Value key)
{
    const SharedWord &bucket = buckets_[bucketOf(key)];
    Value head = rt_.sharedLoad(by, bucket);
    Value hit = findNewest(by, head, key);
    std::optional<Value> out;
    if (hit != 0 && rt_.sharedLoad(by, record(hit).dead) == 0)
        out = rt_.sharedLoad(by, record(hit).value);
    rt_.completeOp(by);
    return out;
}

bool
HashMap::remove(NodeId by, Value key)
{
    const SharedWord &bucket = buckets_[bucketOf(key)];
    for (;;) {
        Value head = rt_.sharedLoad(by, bucket);
        Value hit = findNewest(by, head, key);
        if (hit == 0 || rt_.sharedLoad(by, record(hit).dead) == 1) {
            rt_.completeOp(by);
            return false;
        }
        Value tomb = newRecord(by, key, 0, true, head);
        if (rt_.sharedCas(by, bucket, head, tomb).success) {
            rt_.completeOp(by);
            return true;
        }
    }
}

size_t
HashMap::recover(NodeId by)
{
    size_t count = 0;
    for (const SharedWord &bucket : buckets_) {
        std::vector<Value> seen;
        Value cur = rt_.sharedLoad(by, bucket);
        while (cur != 0) {
            Record &rec = record(cur);
            Value k = rt_.sharedLoad(by, rec.key);
            bool already = false;
            for (Value s : seen)
                already |= (s == k);
            if (!already) {
                seen.push_back(k);
                if (rt_.sharedLoad(by, rec.dead) == 0)
                    count += 1;
            }
            cur = rt_.sharedLoad(by, rec.next);
        }
    }
    rt_.completeOp(by);
    return count;
}

std::vector<std::pair<Value, Value>>
HashMap::unsafeSnapshot(NodeId by)
{
    std::vector<std::pair<Value, Value>> out;
    for (const SharedWord &bucket : buckets_) {
        std::vector<Value> seen;
        Value cur = rt_.sharedLoad(by, bucket);
        while (cur != 0) {
            Record &rec = record(cur);
            Value k = rt_.sharedLoad(by, rec.key);
            bool already = false;
            for (Value s : seen)
                already |= (s == k);
            if (!already) {
                seen.push_back(k);
                if (rt_.sharedLoad(by, rec.dead) == 0)
                    out.emplace_back(k, rt_.sharedLoad(by, rec.value));
            }
            cur = rt_.sharedLoad(by, rec.next);
        }
    }
    return out;
}

} // namespace cxl0::ds
