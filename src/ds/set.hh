/**
 * @file
 * Sorted linked-list set over the FliT-transformed CXL0 runtime.
 *
 * Lock-free design with a stability twist that suits persistent
 * arenas: each key gets at most one record, inserted in sorted order
 * via CAS on the predecessor's next pointer, and membership is a
 * per-record presence flag flipped by CAS. Records are never unlinked,
 * so traversals need no hazard management and recovery after a crash
 * is a plain re-read. add/remove linearize at the flag CAS (or the
 * insertion CAS), contains at the flag load.
 */

#ifndef CXL0_DS_SET_HH
#define CXL0_DS_SET_HH

#include <deque>
#include <mutex>
#include <vector>

#include "flit/flit.hh"

namespace cxl0::ds
{

using flit::FlitRuntime;
using flit::SharedWord;

/** Lock-free sorted set of Values. */
class SortedListSet
{
  public:
    SortedListSet(FlitRuntime &rt, NodeId home);

    /** Insert key; false if already present. */
    bool add(NodeId by, Value key);

    /** Remove key; false if absent. */
    bool remove(NodeId by, Value key);

    /** Membership test. */
    bool contains(NodeId by, Value key);

    /**
     * Post-crash recovery entry point: records are never unlinked, so
     * recovery is a plain re-read of the list (see file header).
     * Returns the number of present keys.
     */
    size_t recover(NodeId by);

    /** Present keys in ascending order (quiescent use only). */
    std::vector<Value> unsafeSnapshot(NodeId by);

  private:
    struct Record
    {
        SharedWord key;
        SharedWord present;
        SharedWord next;
    };

    Record &record(Value ptr);
    Value newRecord(NodeId by, Value key, Value next_ptr);

    /**
     * Locate key's position: on return `curr` is the record with the
     * smallest key >= `key` (or 0), and `pred_next` the next-word to
     * CAS for an insertion before `curr`.
     */
    void find(NodeId by, Value key, SharedWord &pred_next, Value &curr);

    FlitRuntime &rt_;
    NodeId home_;
    SharedWord head_; //!< pointer word to the first record

    std::mutex tableMu_;
    std::deque<Record> records_;
};

} // namespace cxl0::ds

#endif // CXL0_DS_SET_HH
